# patchsec_add_module(<name> SOURCES <src...> [DEPS <patchsec::dep...>])
#
# Declares the static library `patchsec_<name>` with alias `patchsec::<name>`,
# a public include dir at <module>/include, and the shared warning flags.
function(patchsec_add_module name)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPS" ${ARGN})
  if(NOT ARG_SOURCES)
    message(FATAL_ERROR "patchsec_add_module(${name}): no SOURCES given")
  endif()

  set(target patchsec_${name})
  add_library(${target} STATIC ${ARG_SOURCES})
  add_library(patchsec::${name} ALIAS ${target})

  target_include_directories(${target} PUBLIC
    $<BUILD_INTERFACE:${CMAKE_CURRENT_SOURCE_DIR}/include>)
  target_compile_features(${target} PUBLIC cxx_std_20)
  target_link_libraries(${target}
    PUBLIC ${ARG_DEPS}
    PRIVATE patchsec_warnings patchsec_werror)
  set_target_properties(${target} PROPERTIES
    EXPORT_NAME ${name}
    POSITION_INDEPENDENT_CODE ON)
endfunction()
