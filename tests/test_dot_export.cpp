// Tests for the Graphviz exporters (SRN, HARM upper layer, attack trees).

#include <gtest/gtest.h>

#include "patchsec/avail/server_srn.hpp"
#include "patchsec/enterprise/network.hpp"
#include "patchsec/harm/dot_export.hpp"
#include "patchsec/petri/dot_export.hpp"

namespace av = patchsec::avail;
namespace ent = patchsec::enterprise;
namespace hm = patchsec::harm;
namespace pt = patchsec::petri;

TEST(SrnDot, ContainsPlacesTransitionsAndArcs) {
  pt::SrnModel net;
  const auto p = net.add_place("Pup", 1);
  const auto q = net.add_place("Pdown", 0);
  const auto t = net.add_timed_transition("Tfail", 1.0);
  net.add_input_arc(t, p);
  net.add_output_arc(t, q);
  const auto imm = net.add_immediate_transition("Troute");
  net.add_input_arc(imm, q, 2);
  net.add_output_arc(imm, p, 2);
  const auto inh = net.add_timed_transition("Tguarded", 2.0);
  net.add_input_arc(inh, p);
  net.add_output_arc(inh, p);
  net.add_inhibitor_arc(inh, q);
  net.set_guard(inh, [](const pt::Marking&) { return true; });

  const std::string dot = pt::to_dot(net, "demo");
  EXPECT_NE(dot.find("digraph \"demo\""), std::string::npos);
  EXPECT_NE(dot.find("Pup"), std::string::npos);
  EXPECT_NE(dot.find("Tfail"), std::string::npos);
  EXPECT_NE(dot.find("arrowhead=odot"), std::string::npos);      // inhibitor
  EXPECT_NE(dot.find("label=\"2\""), std::string::npos);          // multiplicity
  EXPECT_NE(dot.find("Tguarded +"), std::string::npos);           // guard marker
  EXPECT_NE(dot.find("(1)"), std::string::npos);                  // initial token
}

TEST(SrnDot, ServerSrnExportsCompletely) {
  const av::ServerSrn srn =
      av::build_server_srn(ent::paper_server_specs().at(ent::ServerRole::kDns));
  const std::string dot = pt::to_dot(srn.model, "dns_server");
  for (const char* name : {"Phwup", "Posup", "Psvcup", "Pclock", "Thwd", "Tosp", "Tsvcprb",
                           "Tinterval", "Tpolicy", "Treset"}) {
    EXPECT_NE(dot.find(name), std::string::npos) << name;
  }
}

TEST(HarmDot, BeforeAndAfterPatchDiffer) {
  const hm::Harm before = ent::example_network().build_harm();
  const hm::Harm after = before.after_critical_patch();
  const std::string dot_before = hm::to_dot(before, "before");
  const std::string dot_after = hm::to_dot(after, "after");
  EXPECT_NE(dot_before.find("dns1"), std::string::npos);
  EXPECT_NE(dot_before.find("shape=diamond"), std::string::npos);        // attacker
  EXPECT_NE(dot_before.find("shape=doublecircle"), std::string::npos);   // target
  EXPECT_EQ(dot_before.find("style=dashed"), std::string::npos);         // all attackable
  EXPECT_NE(dot_after.find("style=dashed"), std::string::npos);          // dns dropped out
  EXPECT_NE(dot_before.find("aim=12.9"), std::string::npos);             // web annotation
}

TEST(AttackTreeDot, GatesAndLeavesRendered) {
  const auto specs = ent::paper_server_specs();
  const auto& web = specs.at(ent::ServerRole::kWeb);
  const std::string dot = hm::to_dot(web.attack_tree, "web_at");
  EXPECT_NE(dot.find("label=\"OR\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"AND\""), std::string::npos);
  EXPECT_NE(dot.find("CVE-2016-4448"), std::string::npos);
  EXPECT_NE(dot.find("(10.0, 1.00)"), std::string::npos);
}

TEST(AttackTreeDot, InfeasibleTreeRendered) {
  const hm::AttackTree empty;
  EXPECT_NE(hm::to_dot(empty).find("(infeasible)"), std::string::npos);
}

TEST(AttackTreeDot, PrunedNodesDisappear) {
  const auto specs = ent::paper_server_specs();
  const auto& dns = specs.at(ent::ServerRole::kDns);
  const std::string after = hm::to_dot(dns.attack_tree.after_critical_patch());
  EXPECT_EQ(after.find("CVE-2016-3227"), std::string::npos);
  EXPECT_NE(after.find("(infeasible)"), std::string::npos);
}
