// Tests for the enterprise module: server specs (critical counts, patch
// durations), redundancy designs, reachability policy and HARM construction
// across all five paper designs.

#include <gtest/gtest.h>

#include <array>

#include "patchsec/enterprise/network.hpp"

namespace ent = patchsec::enterprise;
namespace hm = patchsec::harm;

TEST(ServerRole, Names) {
  EXPECT_STREQ(ent::to_string(ent::ServerRole::kDns), "DNS");
  EXPECT_STREQ(ent::to_string(ent::ServerRole::kWeb), "WEB");
  EXPECT_STREQ(ent::to_string(ent::ServerRole::kApp), "APP");
  EXPECT_STREQ(ent::to_string(ent::ServerRole::kDb), "DB");
}

TEST(RedundancyDesign, NamesFollowPaperConvention) {
  EXPECT_EQ((ent::RedundancyDesign{{1, 1, 1, 1}}.name()), "1 DNS + 1 WEB + 1 APP + 1 DB");
  EXPECT_EQ((ent::RedundancyDesign{{1, 1, 2, 1}}.name()), "1 DNS + 1 WEB + 2 APP + 1 DB");
  EXPECT_EQ(ent::example_network_design().name(), "1 DNS + 2 WEB + 2 APP + 1 DB");
}

TEST(RedundancyDesign, TotalsAndCounts) {
  const ent::RedundancyDesign d{{2, 1, 3, 1}};
  EXPECT_EQ(d.total_servers(), 7u);
  EXPECT_EQ(d.count(ent::ServerRole::kDns), 2u);
  EXPECT_EQ(d.count(ent::ServerRole::kApp), 3u);
}

TEST(RedundancyDesign, PaperDesignsAreTheFiveChoices) {
  const auto designs = ent::paper_designs();
  ASSERT_EQ(designs.size(), 5u);
  EXPECT_EQ(designs[0].total_servers(), 4u);
  for (std::size_t i = 1; i < designs.size(); ++i) {
    EXPECT_EQ(designs[i].total_servers(), 5u);
  }
  // Design i (i>=1) doubles role i-1.
  EXPECT_EQ(designs[1].count(ent::ServerRole::kDns), 2u);
  EXPECT_EQ(designs[2].count(ent::ServerRole::kWeb), 2u);
  EXPECT_EQ(designs[3].count(ent::ServerRole::kApp), 2u);
  EXPECT_EQ(designs[4].count(ent::ServerRole::kDb), 2u);
}

// ---------- paper server specs -------------------------------------------------

class PaperSpecs : public ::testing::Test {
 protected:
  std::map<ent::ServerRole, ent::ServerSpec> specs_ = ent::paper_server_specs();
};

TEST_F(PaperSpecs, AllRolesPresent) {
  EXPECT_EQ(specs_.size(), 4u);
}

TEST_F(PaperSpecs, ExploitableCounts) {
  EXPECT_EQ(specs_.at(ent::ServerRole::kDns).exploitable_count(), 1u);
  EXPECT_EQ(specs_.at(ent::ServerRole::kWeb).exploitable_count(), 5u);
  EXPECT_EQ(specs_.at(ent::ServerRole::kApp).exploitable_count(), 5u);
  EXPECT_EQ(specs_.at(ent::ServerRole::kDb).exploitable_count(), 5u);
}

TEST_F(PaperSpecs, CriticalCountsDrivePatchDurations) {
  using patchsec::nvd::SoftwareLayer;
  // DNS: 1 critical app vuln (5 min), 2 critical OS vulns (20 min) —
  // exactly the Sec. III-D1 narrative.
  const auto& dns = specs_.at(ent::ServerRole::kDns);
  EXPECT_EQ(dns.critical_count(SoftwareLayer::kApplication), 1u);
  EXPECT_EQ(dns.critical_count(SoftwareLayer::kOs), 2u);
  EXPECT_NEAR(dns.app_patch_hours() * 60.0, 5.0, 1e-12);
  EXPECT_NEAR(dns.os_patch_hours() * 60.0, 20.0, 1e-12);

  // Web: 2 app (PHP), 1 OS (libxml2) => 10 + 10 minutes.
  const auto& web = specs_.at(ent::ServerRole::kWeb);
  EXPECT_EQ(web.critical_count(SoftwareLayer::kApplication), 2u);
  EXPECT_EQ(web.critical_count(SoftwareLayer::kOs), 1u);

  // App: 3 app (WebLogic), 3 OS => 15 + 30 minutes (the most critical
  // vulnerabilities, hence the longest MTTR in Table V).
  const auto& app = specs_.at(ent::ServerRole::kApp);
  EXPECT_EQ(app.critical_count(SoftwareLayer::kApplication), 3u);
  EXPECT_EQ(app.critical_count(SoftwareLayer::kOs), 3u);

  // DB: 2 app (MySQL), 3 OS => 10 + 30 minutes.
  const auto& db = specs_.at(ent::ServerRole::kDb);
  EXPECT_EQ(db.critical_count(SoftwareLayer::kApplication), 2u);
  EXPECT_EQ(db.critical_count(SoftwareLayer::kOs), 3u);
}

TEST_F(PaperSpecs, TotalPatchDowntimeMatchesTableFive) {
  // downtime = app patch + OS patch + OS reboot (10') + service reboot (5').
  const auto downtime_minutes = [](const ent::ServerSpec& s) {
    return (s.app_patch_hours() + s.os_patch_hours() + s.times.os_reboot + s.times.svc_reboot) *
           60.0;
  };
  EXPECT_NEAR(downtime_minutes(specs_.at(ent::ServerRole::kDns)), 40.0, 1e-9);
  EXPECT_NEAR(downtime_minutes(specs_.at(ent::ServerRole::kWeb)), 35.0, 1e-9);
  EXPECT_NEAR(downtime_minutes(specs_.at(ent::ServerRole::kApp)), 60.0, 1e-9);
  EXPECT_NEAR(downtime_minutes(specs_.at(ent::ServerRole::kDb)), 55.0, 1e-9);
}

TEST_F(PaperSpecs, FailureTimesMatchTableFour) {
  const auto& t = specs_.at(ent::ServerRole::kDns).times;
  EXPECT_DOUBLE_EQ(t.hw_mtbf, 87600.0);
  EXPECT_DOUBLE_EQ(t.hw_mttr, 1.0);
  EXPECT_DOUBLE_EQ(t.os_mtbf, 1440.0);
  EXPECT_DOUBLE_EQ(t.os_mttr, 1.0);
  EXPECT_NEAR(t.os_reboot * 60.0, 10.0, 1e-12);
  EXPECT_DOUBLE_EQ(t.svc_mtbf, 336.0);
  EXPECT_DOUBLE_EQ(t.svc_mttr, 0.5);
  EXPECT_NEAR(t.svc_reboot * 60.0, 5.0, 1e-12);
}

// ---------- reachability policy / network model ---------------------------------

TEST(ReachabilityPolicy, ThreeTierRules) {
  const auto p = ent::ReachabilityPolicy::three_tier();
  EXPECT_TRUE(p.attacker_reaches(ent::ServerRole::kDns));
  EXPECT_TRUE(p.attacker_reaches(ent::ServerRole::kWeb));
  EXPECT_FALSE(p.attacker_reaches(ent::ServerRole::kApp));
  EXPECT_FALSE(p.attacker_reaches(ent::ServerRole::kDb));
  EXPECT_TRUE(p.reaches(ent::ServerRole::kDns, ent::ServerRole::kWeb));
  EXPECT_TRUE(p.reaches(ent::ServerRole::kWeb, ent::ServerRole::kApp));
  EXPECT_TRUE(p.reaches(ent::ServerRole::kApp, ent::ServerRole::kDb));
  EXPECT_FALSE(p.reaches(ent::ServerRole::kWeb, ent::ServerRole::kDb));
  EXPECT_FALSE(p.reaches(ent::ServerRole::kDb, ent::ServerRole::kWeb));
  EXPECT_EQ(p.target_role, ent::ServerRole::kDb);
}

TEST(NetworkModel, MissingSpecRejected) {
  std::map<ent::ServerRole, ent::ServerSpec> specs;  // empty
  EXPECT_THROW(ent::NetworkModel(ent::RedundancyDesign{{1, 0, 0, 0}}, specs,
                                 ent::ReachabilityPolicy::three_tier()),
               std::invalid_argument);
}

TEST(NetworkModel, ExploitableCountScalesWithDesign) {
  EXPECT_EQ(ent::paper_network({{1, 1, 1, 1}}).exploitable_vulnerability_count(), 16u);
  EXPECT_EQ(ent::paper_network({{2, 1, 1, 1}}).exploitable_vulnerability_count(), 17u);
  EXPECT_EQ(ent::paper_network({{1, 2, 1, 1}}).exploitable_vulnerability_count(), 21u);
  EXPECT_EQ(ent::example_network().exploitable_vulnerability_count(), 26u);
}

TEST(NetworkModel, WithDesignSwapsOnlyCounts) {
  const auto base = ent::paper_network({{1, 1, 1, 1}});
  const auto doubled = base.with_design({{1, 1, 2, 1}});
  EXPECT_EQ(doubled.design().count(ent::ServerRole::kApp), 2u);
  EXPECT_EQ(doubled.spec(ent::ServerRole::kApp).service_name, "Oracle WebLogic");
}

struct DesignPathCounts {
  std::array<unsigned, 4> counts;
  std::size_t paths_before, entries_before, paths_after, entries_after;
};

class DesignHarmShape : public ::testing::TestWithParam<DesignPathCounts> {};

TEST_P(DesignHarmShape, PathAndEntryCounts) {
  const auto& c = GetParam();
  const auto network = ent::paper_network(ent::RedundancyDesign{c.counts});
  const hm::Harm before = network.build_harm();
  const hm::Harm after = before.after_critical_patch();
  EXPECT_EQ(before.evaluate().attack_paths, c.paths_before);
  EXPECT_EQ(before.evaluate().entry_points, c.entries_before);
  EXPECT_EQ(after.evaluate().attack_paths, c.paths_after);
  EXPECT_EQ(after.evaluate().entry_points, c.entries_after);
}

// Fig. 7 radar values: NoAP/NoEP for all five designs, before and after.
INSTANTIATE_TEST_SUITE_P(
    PaperDesigns, DesignHarmShape,
    ::testing::Values(DesignPathCounts{{1, 1, 1, 1}, 2, 2, 1, 1},
                      DesignPathCounts{{2, 1, 1, 1}, 3, 3, 1, 1},
                      DesignPathCounts{{1, 2, 1, 1}, 4, 3, 2, 2},
                      DesignPathCounts{{1, 1, 2, 1}, 4, 2, 2, 1},
                      DesignPathCounts{{1, 1, 1, 2}, 4, 2, 2, 1},
                      // The Fig. 2 example network (Table II row).
                      DesignPathCounts{{1, 2, 2, 1}, 8, 3, 4, 2}));

TEST(NetworkModel, HarmNodeNamesFollowConvention) {
  const auto g = ent::example_network().build_harm().graph();
  EXPECT_NO_THROW((void)g.node("attacker"));
  EXPECT_NO_THROW((void)g.node("dns1"));
  EXPECT_NO_THROW((void)g.node("web1"));
  EXPECT_NO_THROW((void)g.node("web2"));
  EXPECT_NO_THROW((void)g.node("app1"));
  EXPECT_NO_THROW((void)g.node("app2"));
  EXPECT_NO_THROW((void)g.node("db1"));
  EXPECT_EQ(g.node_count(), 7u);
}
