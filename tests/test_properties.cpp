// Randomized cross-validation properties: the analytic pipeline (SRN ->
// reachability -> CTMC -> steady state) against the Monte-Carlo simulator
// and against closed forms, over families of randomly generated nets; plus
// monotonicity sweeps over the paper's model parameters.

#include <gtest/gtest.h>

#include <random>

#include "patchsec/avail/network_srn.hpp"
#include "patchsec/core/session.hpp"
#include "patchsec/linalg/steady_state.hpp"
#include "patchsec/petri/reachability.hpp"
#include "patchsec/sim/srn_simulator.hpp"

namespace av = patchsec::avail;
namespace core = patchsec::core;
namespace ent = patchsec::enterprise;
namespace la = patchsec::linalg;
namespace pt = patchsec::petri;
namespace sm = patchsec::sim;

namespace {

/// Random cyclic "ring with chords" SRN: n places in a ring with one token
/// circulating, random extra shortcut transitions.  Always irreducible.
pt::SrnModel random_ring_net(std::mt19937_64& rng, std::size_t n) {
  std::uniform_real_distribution<double> rate(0.2, 5.0);
  pt::SrnModel net;
  std::vector<pt::PlaceId> places;
  for (std::size_t i = 0; i < n; ++i) {
    // Built via append (not operator+ on a temporary) to dodge a GCC 12
    // -Wrestrict false positive at -O3 (same workaround as
    // heterogeneous_coa.cpp).
    std::string name = "p";
    name += std::to_string(i);
    places.push_back(net.add_place(std::move(name), i == 0 ? 1 : 0));
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::string name = "ring";
    name += std::to_string(i);
    const auto t = net.add_timed_transition(std::move(name), rate(rng));
    net.add_input_arc(t, places[i]);
    net.add_output_arc(t, places[(i + 1) % n]);
  }
  // Chords: forward jumps.
  std::uniform_int_distribution<std::size_t> pick(0, n - 1);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const std::size_t from = pick(rng);
    std::size_t to = pick(rng);
    if (to == from) to = (to + 1) % n;
    const auto t = net.add_timed_transition("chord" + std::to_string(k), rate(rng));
    net.add_input_arc(t, places[from]);
    net.add_output_arc(t, places[to]);
  }
  return net;
}

}  // namespace

class RandomNetCrossValidation : public ::testing::TestWithParam<int> {};

TEST_P(RandomNetCrossValidation, AnalyticMatchesSimulation) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 7919u + 13u);
  std::uniform_int_distribution<std::size_t> size(3, 7);
  const pt::SrnModel net = random_ring_net(rng, size(rng));

  const pt::SrnAnalyzer analyzer(net);
  const pt::PlaceId watch = 0;
  const double analytic =
      analyzer.probability([watch](const pt::Marking& m) { return m[watch] == 1; });

  sm::SrnSimulator simulator(net);
  sm::SimulationOptions opt;
  opt.seed = static_cast<std::uint64_t>(GetParam()) + 1;
  opt.warmup_hours = 200.0;
  opt.batch_hours = 4000.0;
  opt.batches = 8;
  const auto est = simulator.steady_state_probability(
      [watch](const pt::Marking& m) { return m[watch] == 1; }, opt);
  EXPECT_NEAR(est.mean, analytic, 4.0 * std::max(est.half_width_95, 2e-3))
      << "analytic=" << analytic;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNetCrossValidation, ::testing::Range(0, 8));

class RandomChainSolvers : public ::testing::TestWithParam<int> {};

TEST_P(RandomChainSolvers, AllMethodsAgreeOnRandomGenerators) {
  // Random irreducible generator: ring + random extra edges.
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 104729u + 7u);
  std::uniform_int_distribution<std::size_t> size(2, 12);
  std::uniform_real_distribution<double> rate(0.05, 20.0);
  const std::size_t n = size(rng);
  std::vector<la::Triplet> entries;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = (i + 1) % n;
    const double r = rate(rng);
    entries.push_back({i, j, r});
    entries.push_back({i, i, -r});
  }
  std::uniform_int_distribution<std::size_t> pick(0, n - 1);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = pick(rng);
    std::size_t j = pick(rng);
    if (i == j) j = (j + 1) % n;
    const double r = rate(rng);
    entries.push_back({i, j, r});
    entries.push_back({i, i, -r});
  }
  const la::CsrMatrix q(n, n, entries);

  la::SteadyStateOptions opt;
  opt.method = la::SteadyStateMethod::kGaussSeidel;
  const auto gs = la::solve_steady_state(q, opt);
  opt.method = la::SteadyStateMethod::kPower;
  const auto pw = la::solve_steady_state(q, opt);
  ASSERT_EQ(gs.distribution.size(), pw.distribution.size());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(gs.distribution[i], pw.distribution[i], 1e-7) << "state " << i;
  }
  EXPECT_LT(gs.residual, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomChainSolvers, ::testing::Range(0, 12));

// ---------- model-level monotonicity sweeps --------------------------------------

class PatchIntervalSweep : public ::testing::TestWithParam<double> {};

TEST_P(PatchIntervalSweep, CoaAndDownProbabilityBehave) {
  const double interval = GetParam();
  const auto specs = ent::paper_server_specs();
  const av::AggregatedRates r = av::aggregate_server(specs.at(ent::ServerRole::kDb), interval);
  EXPECT_NEAR(r.lambda_eq, 1.0 / interval, 1e-15);
  // p_pd ~= mttr / (interval + mttr), within 3%.
  EXPECT_NEAR(r.p_patch_down, r.mttr_hours() / (interval + r.mttr_hours()),
              r.p_patch_down * 0.03);
  const double coa = av::capacity_oriented_availability(ent::example_network_design(), specs,
                                                        interval);
  EXPECT_GT(coa, 0.0);
  EXPECT_LT(coa, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Intervals, PatchIntervalSweep,
                         ::testing::Values(24.0, 72.0, 168.0, 336.0, 720.0, 2160.0));

TEST(Monotonicity, CoaStrictlyIncreasesWithInterval) {
  const auto specs = ent::paper_server_specs();
  double prev = 0.0;
  for (double interval : {24.0, 72.0, 168.0, 336.0, 720.0, 2160.0}) {
    const double coa =
        av::capacity_oriented_availability(ent::example_network_design(), specs, interval);
    EXPECT_GT(coa, prev) << "interval " << interval;
    prev = coa;
  }
}

TEST(Monotonicity, AspNeverIncreasesWithPatching) {
  // For every design: after-patch metrics <= before-patch metrics.
  const auto evals = core::Session(core::Scenario::paper_case_study()).evaluate_all();
  for (const auto& e : evals) {
    EXPECT_LE(e.after_patch.attack_success_probability,
              e.before_patch.attack_success_probability);
    EXPECT_LE(e.after_patch.attack_impact, e.before_patch.attack_impact);
    EXPECT_LE(e.after_patch.exploitable_vulnerabilities,
              e.before_patch.exploitable_vulnerabilities);
    EXPECT_LE(e.after_patch.attack_paths, e.before_patch.attack_paths);
    EXPECT_LE(e.after_patch.entry_points, e.before_patch.entry_points);
  }
}

TEST(Monotonicity, MoreRedundancyNeverReducesAttackSurface) {
  const core::Session session(core::Scenario::paper_case_study());
  const auto base = session.evaluate(ent::RedundancyDesign{{1, 1, 1, 1}});
  for (unsigned extra_role = 0; extra_role < 4; ++extra_role) {
    ent::RedundancyDesign d{{1, 1, 1, 1}};
    d.counts[extra_role] = 2;
    const auto e = session.evaluate(d);
    EXPECT_GE(e.before_patch.exploitable_vulnerabilities,
              base.before_patch.exploitable_vulnerabilities);
    EXPECT_GE(e.before_patch.attack_paths, base.before_patch.attack_paths);
    EXPECT_GE(e.before_patch.attack_success_probability,
              base.before_patch.attack_success_probability - 1e-12);
    EXPECT_GE(e.coa, base.coa);  // redundancy always helps COA at n=2
  }
}
