// Tests for the core evaluation pipeline: joint metrics per design, the
// decision functions Eq. (3)/(4) against the paper's published regions, and
// the report emitters.

#include <gtest/gtest.h>

#include <sstream>

#include "patchsec/core/decision.hpp"
#include "patchsec/core/report.hpp"
#include "patchsec/core/session.hpp"

namespace core = patchsec::core;
namespace ent = patchsec::enterprise;

namespace {

const core::Session& session() {
  static const core::Session s(core::Scenario::paper_case_study());
  return s;
}

const std::vector<core::EvalReport>& five_designs() {
  static const auto reports = session().evaluate_all();
  return reports;
}

}  // namespace

TEST(Session, AggregatesAllFourRoles) {
  EXPECT_EQ(session().aggregated_rates().size(), 4u);
  EXPECT_DOUBLE_EQ(session().scenario().patch_interval_hours(), 720.0);
}

TEST(Session, EvaluatesDesignJointly) {
  const core::EvalReport e = session().evaluate(ent::example_network_design());
  EXPECT_DOUBLE_EQ(e.before_patch.attack_impact, 52.2);
  EXPECT_DOUBLE_EQ(e.after_patch.attack_impact, 42.2);
  EXPECT_NEAR(e.coa, 0.99707, 5e-6);
}

TEST(Session, EvaluateAllPreservesOrder) {
  const auto& evals = five_designs();
  ASSERT_EQ(evals.size(), 5u);
  const auto designs = ent::paper_designs();
  for (std::size_t i = 0; i < evals.size(); ++i) {
    EXPECT_EQ(evals[i].design, designs[i]);
  }
}

TEST(Session, BeforePatchAspIsMaximalEverywhere) {
  // Fig. 6(a): every design sits at ASP = 1.0 before the patch.
  for (const auto& e : five_designs()) {
    EXPECT_DOUBLE_EQ(e.before_patch.attack_success_probability, 1.0) << e.design.name();
  }
}

TEST(Session, AimIdenticalAcrossDesigns) {
  // Fig. 7 observation: AIM does not change across design choices (identical
  // longest path), before or after patch.
  for (const auto& e : five_designs()) {
    EXPECT_DOUBLE_EQ(e.before_patch.attack_impact, 52.2) << e.design.name();
    EXPECT_DOUBLE_EQ(e.after_patch.attack_impact, 42.2) << e.design.name();
  }
}

TEST(Session, DnsRedundancyIsSecurityFree) {
  // Paper: designs 1 and 2 share ASP/NoAP/NoEV after patch because the DNS
  // server has no exploitable vulnerability once patched.
  const auto& base = five_designs()[0].after_patch;
  const auto& dns2 = five_designs()[1].after_patch;
  EXPECT_DOUBLE_EQ(base.attack_success_probability, dns2.attack_success_probability);
  EXPECT_EQ(base.attack_paths, dns2.attack_paths);
  EXPECT_EQ(base.exploitable_vulnerabilities, dns2.exploitable_vulnerabilities);
  EXPECT_EQ(base.entry_points, dns2.entry_points);
}

TEST(Session, OtherRedundancyHurtsSecurity) {
  const auto& base = five_designs()[0].after_patch;
  for (std::size_t i = 2; i < 5; ++i) {
    const auto& m = five_designs()[i].after_patch;
    EXPECT_GT(m.attack_success_probability, base.attack_success_probability)
        << five_designs()[i].design.name();
    EXPECT_GT(m.attack_paths, base.attack_paths);
    EXPECT_GT(m.exploitable_vulnerabilities, base.exploitable_vulnerabilities);
  }
  // Only the 2-WEB design adds an entry point after patch (Fig. 7(b)).
  EXPECT_GT(five_designs()[2].after_patch.entry_points, base.entry_points);
  EXPECT_EQ(five_designs()[3].after_patch.entry_points, base.entry_points);
  EXPECT_EQ(five_designs()[4].after_patch.entry_points, base.entry_points);
}

// ---------- decision regions: Sec. IV-A (Eq. 3) --------------------------------

TEST(DecisionTwoMetric, RegionOneSelectsAppAndDbRedundancy) {
  // phi = 0.2, psi = 0.9962 -> {1+1+2APP+1, 1+1+1+2DB} (paper Sec. IV-A).
  const core::TwoMetricBounds bounds{.asp_upper = 0.2, .coa_lower = 0.9962};
  const auto selected = core::filter_designs(five_designs(), bounds);
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_EQ(selected[0].design.name(), "1 DNS + 1 WEB + 2 APP + 1 DB");
  EXPECT_EQ(selected[1].design.name(), "1 DNS + 1 WEB + 1 APP + 2 DB");
}

TEST(DecisionTwoMetric, RegionTwoSelectsDnsRedundancy) {
  // phi = 0.1, psi = 0.9961 -> {2DNS+1+1+1} (paper Sec. IV-A).
  const core::TwoMetricBounds bounds{.asp_upper = 0.1, .coa_lower = 0.9961};
  const auto selected = core::filter_designs(five_designs(), bounds);
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0].design.name(), "2 DNS + 1 WEB + 1 APP + 1 DB");
}

TEST(DecisionTwoMetric, UnboundedAcceptsEverything) {
  EXPECT_EQ(core::filter_designs(five_designs(), core::TwoMetricBounds{}).size(), 5u);
}

TEST(DecisionTwoMetric, ImpossibleBoundsRejectEverything) {
  const core::TwoMetricBounds bounds{.asp_upper = 0.0, .coa_lower = 1.0};
  EXPECT_TRUE(core::filter_designs(five_designs(), bounds).empty());
}

// ---------- decision regions: Sec. IV-B (Eq. 4) --------------------------------

TEST(DecisionMultiMetric, RegionOneSelectsOnlyAppRedundancy) {
  // phi=0.2, xi=9, omega=2, kappa=1, psi=0.9962 -> {1+1+2APP+1} only: the
  // 2-DB design is now excluded by NoEV (10 > 9).
  const core::MultiMetricBounds bounds{.asp_upper = 0.2,
                                       .noev_upper = 9,
                                       .noap_upper = 2,
                                       .noep_upper = 1,
                                       .coa_lower = 0.9962};
  const auto selected = core::filter_designs(five_designs(), bounds);
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0].design.name(), "1 DNS + 1 WEB + 2 APP + 1 DB");
}

TEST(DecisionMultiMetric, RegionTwoSelectsDnsRedundancy) {
  // phi=0.1, xi=7, omega=1, kappa=1, psi=0.9961 -> {2DNS+1+1+1}.
  const core::MultiMetricBounds bounds{.asp_upper = 0.1,
                                       .noev_upper = 7,
                                       .noap_upper = 1,
                                       .noep_upper = 1,
                                       .coa_lower = 0.9961};
  const auto selected = core::filter_designs(five_designs(), bounds);
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0].design.name(), "2 DNS + 1 WEB + 1 APP + 1 DB");
}

TEST(DecisionMultiMetric, EachBoundBitesIndividually) {
  // Start from bounds every design meets, then tighten one dimension at a
  // time and observe the candidate set shrink.
  core::MultiMetricBounds loose;
  loose.coa_lower = 0.0;
  EXPECT_EQ(core::filter_designs(five_designs(), loose).size(), 5u);

  auto b1 = loose;
  b1.asp_upper = 0.06;  // only the two dns-equivalent designs (asp ~0.059)
  EXPECT_EQ(core::filter_designs(five_designs(), b1).size(), 2u);

  auto b2 = loose;
  b2.noev_upper = 9;  // drops the 2-DB design (10)
  EXPECT_EQ(core::filter_designs(five_designs(), b2).size(), 4u);

  auto b3 = loose;
  b3.noap_upper = 1;  // drops all designs with 2 after-patch paths
  EXPECT_EQ(core::filter_designs(five_designs(), b3).size(), 2u);

  auto b4 = loose;
  b4.noep_upper = 1;  // drops the 2-WEB design
  EXPECT_EQ(core::filter_designs(five_designs(), b4).size(), 4u);

  auto b5 = loose;
  b5.coa_lower = 0.9964;  // only the 2-APP design
  EXPECT_EQ(core::filter_designs(five_designs(), b5).size(), 1u);
}

TEST(DecisionFunctions, SatisfiesMatchesFilter) {
  const core::TwoMetricBounds bounds{.asp_upper = 0.2, .coa_lower = 0.9962};
  std::size_t count = 0;
  for (const auto& e : five_designs()) {
    if (core::satisfies(e, bounds)) ++count;
  }
  EXPECT_EQ(count, core::filter_designs(five_designs(), bounds).size());
}

// ---------- report emitters -----------------------------------------------------

TEST(Report, ScatterCsvShape) {
  std::ostringstream out;
  core::write_scatter_csv(out, five_designs());
  const std::string csv = out.str();
  EXPECT_NE(csv.find("design,asp_before,asp_after,coa"), std::string::npos);
  // Header + 5 rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 6);
  EXPECT_NE(csv.find("1 DNS + 1 WEB + 2 APP + 1 DB"), std::string::npos);
}

TEST(Report, RadarCsvHasBeforeAndAfterRows) {
  std::ostringstream out;
  core::write_radar_csv(out, five_designs());
  const std::string csv = out.str();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 11);  // header + 10 rows
  EXPECT_NE(csv.find(",before,"), std::string::npos);
  EXPECT_NE(csv.find(",after,"), std::string::npos);
}

TEST(Report, TableContainsAllDesigns) {
  std::ostringstream out;
  core::write_table(out, five_designs());
  const std::string table = out.str();
  for (const auto& e : five_designs()) {
    EXPECT_NE(table.find(e.design.name()), std::string::npos);
  }
}

TEST(Report, SummaryLineMentionsAspAndCoa) {
  const std::string line = core::summary_line(five_designs()[0]);
  EXPECT_NE(line.find("ASP"), std::string::npos);
  EXPECT_NE(line.find("COA"), std::string::npos);
  EXPECT_NE(line.find("1 DNS + 1 WEB + 1 APP + 1 DB"), std::string::npos);
}
