// Scenario generator + differential runner units: determinism and
// reproduction-from-seed contracts, scenario validity, degenerate-shape
// coverage, and the JSON report shape.  The full 50-scenario differential
// sweep lives in test_differential.cpp (ctest label `differential`).

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "patchsec/core/session.hpp"
#include "patchsec/testgen/differential_runner.hpp"
#include "patchsec/testgen/scenario_generator.hpp"

namespace core = patchsec::core;
namespace tg = patchsec::testgen;

TEST(ScenarioGenerator, FixedSeedReproducesIdenticalScenarios) {
  tg::GeneratorOptions options;
  options.seed = 555;
  tg::ScenarioGenerator a(options);
  tg::ScenarioGenerator b(options);
  for (int i = 0; i < 20; ++i) {
    const tg::GeneratedScenario sa = a.next();
    const tg::GeneratedScenario sb = b.next();
    EXPECT_EQ(sa.scenario_seed, sb.scenario_seed);
    EXPECT_EQ(sa.label, sb.label);
    EXPECT_EQ(sa.design, sb.design);
    EXPECT_EQ(sa.shape, sb.shape);
    ASSERT_EQ(sa.scenario.patch_intervals().size(), sb.scenario.patch_intervals().size());
    EXPECT_DOUBLE_EQ(sa.scenario.patch_interval_hours(), sb.scenario.patch_interval_hours());
    // Spec perturbations must reproduce bit-exactly too.
    for (const auto& [role, spec] : sa.scenario.specs()) {
      const auto& other = sb.scenario.specs().at(role);
      EXPECT_DOUBLE_EQ(spec.times.svc_mtbf, other.times.svc_mtbf);
      EXPECT_DOUBLE_EQ(spec.times.os_reboot, other.times.os_reboot);
      EXPECT_DOUBLE_EQ(spec.times.hw_mttr, other.times.hw_mttr);
    }
  }
}

TEST(ScenarioGenerator, FromSeedRebuildsTheLoggedScenario) {
  tg::GeneratorOptions options;
  options.seed = 9001;
  tg::ScenarioGenerator generator(options);
  for (int i = 0; i < 10; ++i) {
    const tg::GeneratedScenario original = generator.next();
    const tg::GeneratedScenario replayed =
        tg::ScenarioGenerator::from_seed(original.scenario_seed, options);
    EXPECT_EQ(replayed.scenario_seed, original.scenario_seed);
    EXPECT_EQ(replayed.label, original.label);
    EXPECT_EQ(replayed.design, original.design);
    EXPECT_DOUBLE_EQ(replayed.scenario.patch_interval_hours(),
                     original.scenario.patch_interval_hours());
  }
}

TEST(ScenarioGenerator, EveryScenarioIsValidAndEvaluable) {
  tg::ScenarioGenerator generator;
  for (int i = 0; i < 30; ++i) {
    const tg::GeneratedScenario generated = generator.next();
    EXPECT_NO_THROW(generated.scenario.validate()) << generated.label;
    ASSERT_EQ(generated.scenario.designs().size(), 1u);
    EXPECT_EQ(generated.scenario.designs().front(), generated.design);
    EXPECT_GE(generated.design.total_servers(), 4u);
    EXPECT_GT(generated.scenario.patch_interval_hours(), 0.0);
  }
}

TEST(ScenarioGenerator, DegenerateShapesAppear) {
  tg::GeneratorOptions options;
  options.degenerate_fraction = 0.5;  // make coverage fast
  tg::ScenarioGenerator generator(options);
  std::set<tg::DegenerateShape> seen;
  for (int i = 0; i < 200; ++i) seen.insert(generator.next().shape);
  EXPECT_TRUE(seen.count(tg::DegenerateShape::kNone));
  EXPECT_TRUE(seen.count(tg::DegenerateShape::kSingleHost));
  EXPECT_TRUE(seen.count(tg::DegenerateShape::kGlacialRepair));
  EXPECT_TRUE(seen.count(tg::DegenerateShape::kSaturatedCapacity));
  EXPECT_TRUE(seen.count(tg::DegenerateShape::kRapidCadence));
}

TEST(ScenarioGenerator, OptionValidation) {
  tg::GeneratorOptions options;
  options.max_servers_per_role = 0;
  EXPECT_THROW(tg::ScenarioGenerator{options}, std::invalid_argument);
  options = {};
  options.min_patch_interval_hours = -1.0;
  EXPECT_THROW(tg::ScenarioGenerator{options}, std::invalid_argument);
  options = {};
  options.rate_perturbation_factor = 0.5;
  EXPECT_THROW(tg::ScenarioGenerator{options}, std::invalid_argument);
  options = {};
  options.degenerate_fraction = 1.5;
  EXPECT_THROW(tg::ScenarioGenerator{options}, std::invalid_argument);
}

namespace {

// Small-but-real budget: fast enough for the unit label, big enough that the
// CI check is meaningful.
tg::DifferentialOptions small_budget() {
  tg::DifferentialOptions options;
  options.scenarios = 6;
  options.simulation.replications = 12;
  options.simulation.warmup_hours = 1000.0;
  options.simulation.horizon_hours = 6000.0;
  options.simulation.threads = 1;
  return options;
}

}  // namespace

TEST(DifferentialRunner, RunIsDeterministicAcrossThreadCounts) {
  tg::DifferentialOptions options = small_budget();
  const tg::DifferentialReport serial = tg::DifferentialRunner(options).run();
  options.simulation.threads = 5;
  const tg::DifferentialReport threaded = tg::DifferentialRunner(options).run();
  ASSERT_EQ(serial.cases.size(), threaded.cases.size());
  for (std::size_t i = 0; i < serial.cases.size(); ++i) {
    EXPECT_EQ(serial.cases[i].scenario_seed, threaded.cases[i].scenario_seed);
    EXPECT_DOUBLE_EQ(serial.cases[i].analytic_coa, threaded.cases[i].analytic_coa);
    EXPECT_DOUBLE_EQ(serial.cases[i].simulated_coa, threaded.cases[i].simulated_coa);
    EXPECT_DOUBLE_EQ(serial.cases[i].half_width_95, threaded.cases[i].half_width_95);
    EXPECT_EQ(serial.cases[i].inside_ci, threaded.cases[i].inside_ci);
  }
  EXPECT_EQ(serial.misses, threaded.misses);
}

TEST(DifferentialRunner, RunOneReplaysALoggedCase) {
  const tg::DifferentialOptions options = small_budget();
  const tg::DifferentialReport report = tg::DifferentialRunner(options).run();
  ASSERT_FALSE(report.cases.empty());
  for (const auto& c : {report.cases.front(), report.cases.back()}) {
    const tg::DifferentialCase replay = tg::DifferentialRunner::run_one(c.scenario_seed, options);
    EXPECT_EQ(replay.label, c.label);
    EXPECT_DOUBLE_EQ(replay.analytic_coa, c.analytic_coa);
    EXPECT_DOUBLE_EQ(replay.simulated_coa, c.simulated_coa);
    EXPECT_DOUBLE_EQ(replay.half_width_95, c.half_width_95);
    EXPECT_EQ(replay.inside_ci, c.inside_ci);
  }
}

TEST(DifferentialRunner, ReportShapeAndJson) {
  const tg::DifferentialOptions options = small_budget();
  const tg::DifferentialReport report = tg::DifferentialRunner(options).run();
  ASSERT_EQ(report.cases.size(), options.scenarios);
  std::size_t misses = 0;
  for (const auto& c : report.cases) {
    EXPECT_GT(c.half_width_95, 0.0) << c.label;
    EXPECT_GT(c.simulated_coa, 0.0) << c.label;
    EXPECT_TRUE(c.analytic_converged) << c.label;
    if (!c.inside_ci) ++misses;
  }
  EXPECT_EQ(report.misses, misses);
  EXPECT_TRUE(report.passed(report.misses));
  EXPECT_FALSE(report.misses > 0 && report.passed(report.misses - 1));

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"schema_version\""), std::string::npos);
  EXPECT_NE(json.find("\"misses\": " + std::to_string(report.misses)), std::string::npos);
  EXPECT_NE(json.find("\"cases\""), std::string::npos);
  EXPECT_NE(json.find("\"analytic_coa\""), std::string::npos);
}

TEST(DifferentialRunner, OptionValidation) {
  tg::DifferentialOptions options;
  options.scenarios = 0;
  EXPECT_THROW(tg::DifferentialRunner{options}, std::invalid_argument);
  options = {};
  options.z = 0.0;
  EXPECT_THROW(tg::DifferentialRunner{options}, std::invalid_argument);
  options = {};
  options.simulation.replications = 0;
  EXPECT_THROW(tg::DifferentialRunner{options}, std::invalid_argument);
}
