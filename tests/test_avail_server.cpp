// Tests for the lower-layer server SRN (Fig. 5) and the aggregation
// equations (Eqs. 1-2): structural sanity, behavioural invariants on the
// reachable state space, and the Table IV/V reproductions.

#include <gtest/gtest.h>

#include "patchsec/avail/aggregation.hpp"
#include "patchsec/avail/server_srn.hpp"
#include "patchsec/enterprise/network.hpp"
#include "patchsec/petri/reachability.hpp"

namespace av = patchsec::avail;
namespace ent = patchsec::enterprise;
namespace pt = patchsec::petri;

namespace {

const std::map<ent::ServerRole, ent::ServerSpec>& specs() {
  static const auto s = ent::paper_server_specs();
  return s;
}

}  // namespace

TEST(ServerSrnParameters, DnsMatchesTableFour) {
  const av::ServerSrnParameters p =
      av::server_srn_parameters(specs().at(ent::ServerRole::kDns));
  EXPECT_DOUBLE_EQ(p.hw_mtbf, 87600.0);
  EXPECT_DOUBLE_EQ(p.hw_mttr, 1.0);
  EXPECT_DOUBLE_EQ(p.os_mtbf, 1440.0);
  EXPECT_DOUBLE_EQ(p.os_mttr, 1.0);
  EXPECT_NEAR(p.os_patch * 60.0, 20.0, 1e-12);            // 2 critical OS vulns
  EXPECT_NEAR(p.os_reboot_after_patch * 60.0, 10.0, 1e-12);
  EXPECT_NEAR(p.os_reboot_after_failure * 60.0, 10.0, 1e-12);
  EXPECT_DOUBLE_EQ(p.svc_mtbf, 336.0);
  EXPECT_DOUBLE_EQ(p.svc_mttr, 0.5);
  EXPECT_NEAR(p.svc_patch * 60.0, 5.0, 1e-12);             // 1 critical app vuln
  EXPECT_NEAR(p.svc_reboot_after_patch * 60.0, 5.0, 1e-12);
  EXPECT_DOUBLE_EQ(p.patch_interval, 720.0);
}

TEST(ServerSrn, StructuralShape) {
  const av::ServerSrn srn = av::build_server_srn(specs().at(ent::ServerRole::kDns));
  EXPECT_EQ(srn.model.place_count(), 16u);
  // 2 hw + 9 os + 10 svc + 3 clock transitions.
  EXPECT_EQ(srn.model.transition_count(), 24u);
  // Spot-check Table III-named transitions exist with the right kind.
  EXPECT_EQ(srn.model.transition_kind(srn.model.transition("Thwd")), pt::TransitionKind::kTimed);
  EXPECT_EQ(srn.model.transition_kind(srn.model.transition("Tosd")),
            pt::TransitionKind::kImmediate);
  EXPECT_EQ(srn.model.transition_kind(srn.model.transition("Tsvcrrb")),
            pt::TransitionKind::kImmediate);
  EXPECT_EQ(srn.model.transition_kind(srn.model.transition("Tinterval")),
            pt::TransitionKind::kTimed);
  EXPECT_EQ(srn.model.transition_kind(srn.model.transition("Tpolicy")),
            pt::TransitionKind::kImmediate);
}

TEST(ServerSrn, InitialMarkingIsAllUp) {
  const av::ServerSrn srn = av::build_server_srn(specs().at(ent::ServerRole::kWeb));
  const pt::Marking m0 = srn.model.initial_marking();
  EXPECT_EQ(m0[srn.hw_up], 1u);
  EXPECT_EQ(m0[srn.os_up], 1u);
  EXPECT_EQ(m0[srn.svc_up], 1u);
  EXPECT_EQ(m0[srn.clock_idle], 1u);
  EXPECT_TRUE(srn.service_up(m0));
  EXPECT_FALSE(srn.in_patch_window(m0));
}

class ServerSrnInvariants : public ::testing::TestWithParam<ent::ServerRole> {};

TEST_P(ServerSrnInvariants, ReachableMarkingsAreOneSafeAndConsistent) {
  const av::ServerSrn srn = av::build_server_srn(specs().at(GetParam()));
  const pt::ReachabilityGraph graph = pt::build_reachability_graph(srn.model);
  ASSERT_GT(graph.tangible_count(), 4u);
  ASSERT_LT(graph.tangible_count(), 200u);

  for (const pt::Marking& m : graph.tangible_markings) {
    // Component token conservation: exactly one token per sub-model.
    EXPECT_EQ(m[srn.hw_up] + m[srn.hw_down], 1u);
    EXPECT_EQ(m[srn.os_up] + m[srn.os_down] + m[srn.os_failed] + m[srn.os_ready_to_patch] +
                  m[srn.os_patched],
              1u);
    EXPECT_EQ(m[srn.svc_up] + m[srn.svc_down] + m[srn.svc_failed] + m[srn.svc_ready_to_patch] +
                  m[srn.svc_patched] + m[srn.svc_ready_to_reboot],
              1u);
    EXPECT_EQ(m[srn.clock_idle] + m[srn.clock_armed] + m[srn.clock_triggered], 1u);

    // Paper assumption: no hardware failure during the patch window.
    if (srn.in_patch_window(m)) {
      EXPECT_EQ(m[srn.hw_down], 0u) << pt::to_string(m);
    }
    // OS patches strictly after the service patch: while the OS is being
    // patched the service sits in its patched state (or later reboot state).
    if (m[srn.os_ready_to_patch] == 1 || m[srn.os_patched] == 1) {
      EXPECT_EQ(m[srn.svc_patched] + m[srn.svc_ready_to_reboot], 1u) << pt::to_string(m);
    }
    // The clock trigger is only pending while a patch round is in flight.
    if (m[srn.clock_triggered] == 1) {
      EXPECT_TRUE(srn.service_patch_down(m) || m[srn.svc_up] == 1) << pt::to_string(m);
    }
  }
}

TEST_P(ServerSrnInvariants, ChainIsIrreducible) {
  const av::ServerSrn srn = av::build_server_srn(specs().at(GetParam()));
  const pt::ReachabilityGraph graph = pt::build_reachability_graph(srn.model);
  EXPECT_TRUE(graph.chain.is_irreducible());
}

INSTANTIATE_TEST_SUITE_P(AllRoles, ServerSrnInvariants,
                         ::testing::Values(ent::ServerRole::kDns, ent::ServerRole::kWeb,
                                           ent::ServerRole::kApp, ent::ServerRole::kDb));

// ---------- aggregation: Table V -----------------------------------------------

struct TableFiveRow {
  ent::ServerRole role;
  double mttr_hours;   // paper value
  double recovery_rate;  // paper value
};

class TableFive : public ::testing::TestWithParam<TableFiveRow> {};

TEST_P(TableFive, AggregatedRatesMatchPaper) {
  const TableFiveRow& row = GetParam();
  const av::AggregatedRates r = av::aggregate_server(specs().at(row.role));
  // All services share the monthly patch rate (Eq. 1).
  EXPECT_NEAR(r.lambda_eq, 1.0 / 720.0, 1e-15);
  EXPECT_NEAR(r.mttp_hours(), 720.0, 1e-9);
  // Paper values carry small failure-interaction corrections (e.g. 1.49992
  // instead of 1.5); we assert agreement to 0.1%.
  EXPECT_NEAR(r.mu_eq, row.recovery_rate, row.recovery_rate * 1e-3);
  EXPECT_NEAR(r.mttr_hours(), row.mttr_hours, row.mttr_hours * 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, TableFive,
    ::testing::Values(TableFiveRow{ent::ServerRole::kDns, 0.6667, 1.49992},
                      TableFiveRow{ent::ServerRole::kWeb, 0.5834, 1.71420},
                      TableFiveRow{ent::ServerRole::kApp, 1.0001, 0.99995},
                      TableFiveRow{ent::ServerRole::kDb, 0.9167, 1.09085}));

TEST(Aggregation, ClosedFormAgreesWithSrn) {
  for (const auto& [role, spec] : specs()) {
    const double closed = av::mu_eq_closed_form(spec);
    const double srn = av::aggregate_server(spec).mu_eq;
    EXPECT_NEAR(srn, closed, closed * 1e-3) << ent::to_string(role);
  }
}

TEST(Aggregation, ProbabilitiesArePlausible) {
  // p_pd ~ downtime/(interval + downtime): about 9e-4 for the DNS server
  // (the paper reports 0.00092506).
  const av::AggregatedRates r = av::aggregate_server(specs().at(ent::ServerRole::kDns));
  EXPECT_NEAR(r.p_patch_down, 0.00092506, 2e-5);
  EXPECT_NEAR(r.p_reboot_enabled, 0.00011563, 5e-6);
  EXPECT_GT(r.p_patch_down, r.p_reboot_enabled);
}

TEST(Aggregation, ShorterIntervalIncreasesDownProbability) {
  const auto& spec = specs().at(ent::ServerRole::kApp);
  const av::AggregatedRates monthly = av::aggregate_server(spec, 720.0);
  const av::AggregatedRates weekly = av::aggregate_server(spec, 168.0);
  EXPECT_GT(weekly.p_patch_down, monthly.p_patch_down);
  EXPECT_NEAR(weekly.lambda_eq, 1.0 / 168.0, 1e-15);
  // Recovery is a property of patch durations, not of the schedule.
  EXPECT_NEAR(weekly.mu_eq, monthly.mu_eq, monthly.mu_eq * 5e-3);
}

TEST(Aggregation, MttrOrderingMatchesCriticality) {
  // App server has the most critical vulnerabilities -> longest MTTR
  // (Sec. III-D2 observation), then DB, DNS, Web.
  const double app = av::aggregate_server(specs().at(ent::ServerRole::kApp)).mttr_hours();
  const double db = av::aggregate_server(specs().at(ent::ServerRole::kDb)).mttr_hours();
  const double dns = av::aggregate_server(specs().at(ent::ServerRole::kDns)).mttr_hours();
  const double web = av::aggregate_server(specs().at(ent::ServerRole::kWeb)).mttr_hours();
  EXPECT_GT(app, db);
  EXPECT_GT(db, dns);
  EXPECT_GT(dns, web);
}

TEST(Aggregation, InvalidIntervalThrows) {
  EXPECT_THROW((void)av::aggregate_server(specs().at(ent::ServerRole::kDns), 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)av::aggregate_server(specs().at(ent::ServerRole::kDns), -5.0),
               std::invalid_argument);
}

TEST(ServerSrn, NoCriticalVulnerabilityRejected) {
  ent::ServerSpec bare;
  bare.role = ent::ServerRole::kWeb;
  EXPECT_THROW((void)av::build_server_srn(bare), std::invalid_argument);
}
