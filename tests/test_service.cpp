// The evaluation service layer (src/service): canonical request hashing,
// the sharded byte-budgeted LRU result cache, in-flight coalescing, the
// same-structure transient grouping, and end-to-end determinism of the
// worker pool — cached replies must be bit-identical to fresh solves.
//
// The concurrency suites run under BOTH sanitizer jobs (label `service` is
// in the ASan and TSan ctest filters), so every lock-ordering or lifetime
// mistake in the queue/coalescing path is caught here, not in production.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "patchsec/core/scenario.hpp"
#include "patchsec/service/eval_service.hpp"
#include "patchsec/service/request_hash.hpp"
#include "patchsec/service/result_cache.hpp"

namespace core = patchsec::core;
namespace ent = patchsec::enterprise;
namespace svc = patchsec::service;

namespace {

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Bitwise payload equality (metrics + curve; wall-time diagnostics differ
/// by nature and are excluded).
bool payload_bit_identical(const core::EvalReport& a, const core::EvalReport& b) {
  if (!(a.design == b.design) || !same_bits(a.coa, b.coa) ||
      !same_bits(a.patch_interval_hours, b.patch_interval_hours)) {
    return false;
  }
  if (!same_bits(a.before_patch.attack_success_probability,
                 b.before_patch.attack_success_probability) ||
      !same_bits(a.after_patch.attack_success_probability,
                 b.after_patch.attack_success_probability)) {
    return false;
  }
  if (a.transient.coa.size() != b.transient.coa.size()) return false;
  for (std::size_t j = 0; j < a.transient.coa.size(); ++j) {
    if (!same_bits(a.transient.coa[j], b.transient.coa[j])) return false;
  }
  return same_bits(a.transient.accumulated_coa_hours, b.transient.accumulated_coa_hours);
}

svc::EvalRequest steady_request(const ent::RedundancyDesign& design, double cadence = 0.0) {
  svc::EvalRequest request;
  request.design = design;
  request.patch_interval_hours = cadence;
  return request;
}

}  // namespace

// ---------- request hashing -------------------------------------------------

TEST(RequestHash, ScenarioHashIsDeterministicAcrossValueEqualCopies) {
  const core::Scenario a = core::Scenario::paper_case_study();
  const core::Scenario b = core::Scenario::paper_case_study();
  EXPECT_EQ(svc::hash_scenario(a), svc::hash_scenario(b));
  EXPECT_EQ(svc::hash_engine_options(a.engine()), svc::hash_engine_options(b.engine()));
}

TEST(RequestHash, ResultAffectingKnobsChangeTheHash) {
  const core::Scenario base = core::Scenario::paper_case_study();
  const std::uint64_t reference = svc::hash_scenario(base);

  core::EngineOptions engine = base.engine();
  engine.steady_state.tolerance = 1e-8;
  EXPECT_NE(svc::hash_scenario(core::Scenario(base).with_engine(engine)), reference);

  engine = base.engine();
  engine.lumping = true;
  EXPECT_NE(svc::hash_scenario(core::Scenario(base).with_engine(engine)), reference);

  engine = base.engine();
  engine.backend = core::EvalBackend::kSimulation;
  EXPECT_NE(svc::hash_scenario(core::Scenario(base).with_engine(engine)), reference);

  // The kernel selector IS result-affecting (panel reduction order differs
  // from scalar at the ulp level) and must split cache entries.
  engine = base.engine();
  engine.uniformization.kernel = patchsec::ctmc::TransientOptions::Kernel::kScalar;
  EXPECT_NE(svc::hash_scenario(core::Scenario(base).with_engine(engine)), reference);

  // A schedule change and a spec change both reach the hash.
  EXPECT_NE(svc::hash_scenario(core::Scenario(base).with_patch_interval(168.0)), reference);
  core::Scenario respecced = base;
  auto specs = respecced.specs();
  specs.at(ent::ServerRole::kWeb).times.hw_mtbf *= 2.0;
  respecced.with_specs(std::move(specs));
  EXPECT_NE(svc::hash_scenario(respecced), reference);
}

TEST(RequestHash, SchedulingOnlyKnobsDoNotChangeTheHash) {
  // Each exclusion is result-invariant by a contract proven elsewhere
  // (request_hash.hpp lists the proofs); the hash must NOT split cache
  // entries over them or a duplicate-heavy mixed-client load loses its hits.
  const core::Scenario base = core::Scenario::paper_case_study();
  const std::uint64_t reference = svc::hash_scenario(base);

  core::EngineOptions engine = base.engine();
  engine.parallel = true;
  engine.threads = 8;
  engine.simulation.threads = 4;
  engine.uniformization.reduction_threads = 4;
  engine.reachability.reserve_markings = 10000;
  EXPECT_EQ(svc::hash_scenario(core::Scenario(base).with_engine(engine)), reference);
}

TEST(RequestHash, NegativeZeroCanonicalizesAndNanThrows) {
  svc::HashStream plus;
  plus.f64(0.0);
  svc::HashStream minus;
  minus.f64(-0.0);
  EXPECT_EQ(plus.digest(), minus.digest());
  svc::HashStream nan_stream;
  EXPECT_THROW(nan_stream.f64(std::nan("")), std::invalid_argument);
}

TEST(RequestHash, RequestKeySeparatesKindDesignCadenceAndWave) {
  const std::uint64_t scenario_hash =
      svc::hash_scenario(core::Scenario::paper_case_study());
  svc::EvalRequest request = steady_request(ent::example_network_design(), 720.0);
  const std::uint64_t reference = svc::request_key(scenario_hash, request);

  svc::EvalRequest other = request;
  other.design.counts[1] += 1;
  EXPECT_NE(svc::request_key(scenario_hash, other), reference);

  other = request;
  other.patch_interval_hours = 168.0;
  EXPECT_NE(svc::request_key(scenario_hash, other), reference);

  other = request;
  other.kind = svc::RequestKind::kTransient;
  EXPECT_NE(svc::request_key(scenario_hash, other), reference);

  // The wave distinguishes transient requests but is excluded for steady.
  svc::EvalRequest transient = request;
  transient.kind = svc::RequestKind::kTransient;
  svc::EvalRequest waved = transient;
  waved.wave.emplace(ent::ServerRole::kWeb, 1u);
  EXPECT_NE(svc::request_key(scenario_hash, waved), svc::request_key(scenario_hash, transient));
  svc::EvalRequest steady_waved = request;
  steady_waved.wave.emplace(ent::ServerRole::kWeb, 1u);
  EXPECT_EQ(svc::request_key(scenario_hash, steady_waved), reference);
}

TEST(RequestHash, RequestKeyRequiresAResolvedCadence) {
  const std::uint64_t scenario_hash =
      svc::hash_scenario(core::Scenario::paper_case_study());
  EXPECT_THROW((void)svc::request_key(scenario_hash,
                                      steady_request(ent::example_network_design(), 0.0)),
               std::invalid_argument);
  EXPECT_THROW((void)svc::request_key(scenario_hash,
                                      steady_request(ent::example_network_design(), -720.0)),
               std::invalid_argument);
}

// ---------- result cache ----------------------------------------------------

namespace {

/// One real report to populate cache entries with (footprints are equal for
/// copies, which makes byte-budget arithmetic exact).
const core::EvalReport& seed_report() {
  static const core::EvalReport report = [] {
    const core::Session session(core::Scenario::paper_case_study());
    return session.evaluate(ent::example_network_design());
  }();
  return report;
}

}  // namespace

TEST(ResultCache, EvictsLeastRecentlyUsedUnderBytePressure) {
  const std::size_t footprint = svc::ResultCache::report_footprint(seed_report());
  ASSERT_GT(footprint, 0u);
  // Budget for three entries (single shard so the arithmetic is exact).
  svc::ResultCache cache(3 * footprint + footprint / 2, 1);
  for (std::uint64_t key = 1; key <= 4; ++key) cache.insert(key, seed_report());

  const svc::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 4u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_LE(stats.bytes, stats.byte_budget);

  core::EvalReport out;
  EXPECT_FALSE(cache.lookup(1, out));  // the oldest entry was the victim
  EXPECT_TRUE(cache.lookup(2, out));
  EXPECT_TRUE(cache.lookup(3, out));
  EXPECT_TRUE(cache.lookup(4, out));
  EXPECT_TRUE(payload_bit_identical(out, seed_report()));
}

TEST(ResultCache, LookupPromotesToMostRecentlyUsed) {
  const std::size_t footprint = svc::ResultCache::report_footprint(seed_report());
  svc::ResultCache cache(2 * footprint + footprint / 2, 1);
  cache.insert(1, seed_report());
  cache.insert(2, seed_report());
  core::EvalReport out;
  ASSERT_TRUE(cache.lookup(1, out));  // promote 1; 2 becomes the LRU tail
  cache.insert(3, seed_report());
  EXPECT_TRUE(cache.lookup(1, out));
  EXPECT_FALSE(cache.lookup(2, out));
  EXPECT_TRUE(cache.lookup(3, out));
}

TEST(ResultCache, ZeroBudgetRejectsEveryInsert) {
  svc::ResultCache cache(0, 4);
  cache.insert(1, seed_report());
  core::EvalReport out;
  EXPECT_FALSE(cache.lookup(1, out));
  const svc::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.insertions, 0u);
}

// ---------- the service -----------------------------------------------------

TEST(EvalService, CachedReplyIsBitIdenticalToTheFreshSolve) {
  svc::EvalService service(core::Scenario::paper_case_study(), {});
  const svc::ServiceReply first = service.evaluate(steady_request(ent::example_network_design()));
  const svc::ServiceReply second =
      service.evaluate(steady_request(ent::example_network_design()));
  EXPECT_EQ(first.source, svc::ReplySource::kSolve);
  EXPECT_EQ(second.source, svc::ReplySource::kCache);
  EXPECT_EQ(first.key, second.key);
  EXPECT_TRUE(payload_bit_identical(first.report, second.report));

  // And bit-identical to an untouched Session's solve of the same request —
  // the warm-workspace reuse contract (solvers cold-start their iterates).
  const core::Session solo(core::Scenario::paper_case_study());
  EXPECT_TRUE(payload_bit_identical(second.report, solo.evaluate(ent::example_network_design())));
  // A default-cadence request and the explicit scenario cadence share a key.
  const svc::ServiceReply explicit_cadence =
      service.evaluate(steady_request(ent::example_network_design(), 720.0));
  EXPECT_EQ(explicit_cadence.source, svc::ReplySource::kCache);
  EXPECT_EQ(explicit_cadence.key, first.key);
}

TEST(EvalService, CoalescesIdenticalConcurrentRequestsIntoOneSolve) {
  constexpr std::size_t kWaiters = 6;
  svc::ServiceOptions options;
  options.workers = 2;
  options.cache_bytes = 0;       // storage off: coalescing alone must carry this
  options.start_workers = false;  // everything enqueued before a worker looks
  svc::EvalService service(core::Scenario::paper_case_study(), options);

  std::vector<std::future<svc::ServiceReply>> futures;
  for (std::size_t i = 0; i < kWaiters; ++i) {
    futures.push_back(service.submit(steady_request(ent::example_network_design())));
  }
  service.start();

  std::size_t solve_replies = 0;
  std::size_t coalesced_replies = 0;
  std::vector<svc::ServiceReply> replies;
  for (std::future<svc::ServiceReply>& future : futures) replies.push_back(future.get());
  for (const svc::ServiceReply& reply : replies) {
    solve_replies += reply.source == svc::ReplySource::kSolve ? 1 : 0;
    coalesced_replies += reply.source == svc::ReplySource::kCoalesced ? 1 : 0;
    EXPECT_TRUE(payload_bit_identical(reply.report, replies.front().report));
  }
  EXPECT_EQ(solve_replies, 1u);
  EXPECT_EQ(coalesced_replies, kWaiters - 1);

  const svc::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.solves, 1u);      // K identical requests paid ONE solve
  EXPECT_EQ(stats.coalesced, kWaiters - 1);
  EXPECT_EQ(stats.cache.hits, 0u);  // storage was off, so these were not hits
}

TEST(EvalService, GroupsSameStructureTransientJobsIntoOnePanel) {
  constexpr std::size_t kWaves = 4;
  svc::ServiceOptions options;
  options.workers = 1;
  options.start_workers = false;
  options.max_batch = kWaves;
  svc::EvalService service(core::Scenario::paper_case_study(), options);

  std::vector<std::future<svc::ServiceReply>> futures;
  for (std::size_t i = 0; i < kWaves; ++i) {
    svc::EvalRequest request = steady_request(ent::example_network_design());
    request.kind = svc::RequestKind::kTransient;
    request.wave.emplace(static_cast<ent::ServerRole>(i), 1u);
    futures.push_back(service.submit(std::move(request)));
  }
  service.start();
  std::vector<svc::ServiceReply> replies;
  for (std::future<svc::ServiceReply>& future : futures) replies.push_back(future.get());

  EXPECT_EQ(service.stats().solves, 1u);  // one panel retired all waves
  for (const svc::ServiceReply& reply : replies) {
    EXPECT_EQ(reply.batch_width, kWaves);
    EXPECT_EQ(reply.source, svc::ReplySource::kSolve);
    EXPECT_FALSE(reply.report.transient.empty());
  }

  // The grouped curves match the Session's own batch API bit-for-bit: the
  // service solved through the very same evaluate_transient_batch panel.
  const core::Session solo(core::Scenario::paper_case_study());
  std::vector<std::map<ent::ServerRole, unsigned>> waves;
  for (std::size_t i = 0; i < kWaves; ++i) {
    waves.push_back({{static_cast<ent::ServerRole>(i), 1u}});
  }
  const std::vector<core::EvalReport> oracle =
      solo.evaluate_transient_batch(ent::example_network_design(), waves);
  for (std::size_t i = 0; i < kWaves; ++i) {
    EXPECT_TRUE(payload_bit_identical(replies[i].report, oracle[i]));
  }
}

TEST(EvalService, ConcurrentMixedLoadIsDeterministic) {
  // Several submitter threads hammer a small design set through one service;
  // every reply — whatever its source — must be bit-identical to a fresh
  // solo-Session solve of the same design.  (The `service` label puts this
  // under TSan, which additionally vets the queue/coalescing locking.)
  const std::vector<ent::RedundancyDesign> designs = {
      ent::RedundancyDesign{{1, 1, 1, 1}},
      ent::example_network_design(),
      ent::RedundancyDesign{{1, 2, 1, 2}},
  };
  const core::Session solo(core::Scenario::paper_case_study());
  std::vector<core::EvalReport> oracle;
  oracle.reserve(designs.size());
  for (const ent::RedundancyDesign& design : designs) oracle.push_back(solo.evaluate(design));

  svc::ServiceOptions options;
  options.workers = 2;
  svc::EvalService service(core::Scenario::paper_case_study(), options);
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 12;
  std::vector<std::thread> submitters;
  std::vector<int> mismatches(kThreads, 0);
  for (std::size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (std::size_t n = 0; n < kPerThread; ++n) {
        const std::size_t which = (t + n) % designs.size();
        const svc::ServiceReply reply = service.evaluate(steady_request(designs[which]));
        if (!payload_bit_identical(reply.report, oracle[which])) ++mismatches[t];
      }
    });
  }
  for (std::thread& submitter : submitters) submitter.join();
  for (std::size_t t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0) << "thread " << t;

  const svc::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, kThreads * kPerThread);
  // Every request beyond the first per design was a hit or a coalesce.
  EXPECT_EQ(stats.solves + stats.coalesced + stats.cache.hits, kThreads * kPerThread);
}

TEST(EvalService, GracefulShutdownFulfillsQueuedWork) {
  svc::ServiceOptions options;
  options.start_workers = false;  // nothing will ever run the queue...
  svc::EvalService service(core::Scenario::paper_case_study(), options);
  std::future<svc::ServiceReply> queued =
      service.submit(steady_request(ent::example_network_design()));
  service.shutdown();  // ...so shutdown itself must drain it
  const svc::ServiceReply reply = queued.get();
  EXPECT_EQ(reply.source, svc::ReplySource::kSolve);
  EXPECT_GT(reply.report.coa, 0.9);
  EXPECT_THROW((void)service.submit(steady_request(ent::example_network_design())),
               std::runtime_error);
}

TEST(EvalService, SolveErrorsPropagateThroughTheFuture) {
  core::EngineOptions starved;
  starved.steady_state.max_iterations = 1;
  starved.throw_on_divergence = true;
  svc::EvalService service(core::Scenario::paper_case_study().with_engine(starved), {});
  EXPECT_THROW((void)service.evaluate(steady_request(ent::RedundancyDesign{{2, 2, 2, 2}})),
               std::runtime_error);
  // The service survives the failed solve and keeps serving.
  const svc::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache.insertions, 0u);
}

TEST(EvalService, WorkspaceSlotsArePinnedPerWorker) {
  // Each worker thread owns its own SolverWorkspaces slot inside the
  // service's Session — N workers, N slots, none shared with this thread.
  svc::ServiceOptions options;
  options.workers = 2;
  svc::EvalService service(core::Scenario::paper_case_study(), options);
  std::vector<std::future<svc::ServiceReply>> futures;
  for (unsigned k = 1; k <= 4; ++k) {
    futures.push_back(service.submit(steady_request(ent::RedundancyDesign{{k, 1, 1, 1}})));
  }
  for (std::future<svc::ServiceReply>& future : futures) (void)future.get();
  const core::Session::WorkspaceCounters counters = service.session().workspace_counters();
  EXPECT_GE(counters.thread_slots, 1u);
  EXPECT_LE(counters.thread_slots, options.workers);
  EXPECT_GT(counters.availability_solves, 0u);
}
