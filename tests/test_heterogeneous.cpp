// Tests for heterogeneous redundancy (Sec. V "systems" extension): mixed
// server specs within a tier, per-instance attack trees in the HARM, and
// per-instance availability chains in the COA model.

#include <gtest/gtest.h>

#include "patchsec/avail/heterogeneous_coa.hpp"
#include "patchsec/enterprise/heterogeneous.hpp"

namespace av = patchsec::avail;
namespace ent = patchsec::enterprise;
namespace hm = patchsec::harm;
namespace nv = patchsec::nvd;

namespace {

nv::Vulnerability vuln(const char* id, const char* vector, bool critical_full = true) {
  nv::Vulnerability v;
  v.cve_id = id;
  v.product = "x";
  v.vector = patchsec::cvss::CvssV2Vector::parse(vector);
  v.remotely_exploitable = true;
  (void)critical_full;
  return v;
}

/// A web spec with one critical (patched away) and one surviving local vuln.
ent::ServerSpec spec_with_survivor(const char* prefix) {
  ent::ServerSpec s;
  s.role = ent::ServerRole::kWeb;
  s.os_name = "os";
  s.service_name = prefix;
  const auto crit = vuln((std::string(prefix) + "-crit").c_str(), "AV:N/AC:L/Au:N/C:C/I:C/A:C");
  const auto local = vuln((std::string(prefix) + "-local").c_str(), "AV:L/AC:L/Au:N/C:C/I:C/A:C");
  s.vulnerabilities = {crit, local};
  s.attack_tree = hm::make_or_tree({crit, local});
  return s;
}

/// A web spec that becomes unattackable after patching.
ent::ServerSpec spec_fully_patchable(const char* prefix) {
  ent::ServerSpec s;
  s.role = ent::ServerRole::kWeb;
  s.os_name = "os";
  s.service_name = prefix;
  const auto crit = vuln((std::string(prefix) + "-crit").c_str(), "AV:N/AC:L/Au:N/C:C/I:C/A:C");
  s.vulnerabilities = {crit};
  s.attack_tree = hm::make_or_tree({crit});
  return s;
}

ent::ServerSpec target_spec() {
  ent::ServerSpec s = spec_with_survivor("db");
  s.role = ent::ServerRole::kDb;
  return s;
}

ent::ReachabilityPolicy two_tier_policy() {
  ent::ReachabilityPolicy p;
  p.attacker_reaches = [](ent::ServerRole r) { return r == ent::ServerRole::kWeb; };
  p.reaches = [](ent::ServerRole from, ent::ServerRole to) {
    return from == ent::ServerRole::kWeb && to == ent::ServerRole::kDb;
  };
  p.target_role = ent::ServerRole::kDb;
  return p;
}

}  // namespace

TEST(HeterogeneousNetwork, Validation) {
  EXPECT_THROW(ent::HeterogeneousNetwork({}, two_tier_policy()), std::invalid_argument);
  EXPECT_THROW(ent::HeterogeneousNetwork(
                   {{"", ent::ServerRole::kWeb, spec_with_survivor("a")}}, two_tier_policy()),
               std::invalid_argument);
  EXPECT_THROW(
      ent::HeterogeneousNetwork({{"a", ent::ServerRole::kWeb, spec_with_survivor("a")},
                                 {"a", ent::ServerRole::kWeb, spec_with_survivor("b")}},
                                two_tier_policy()),
      std::invalid_argument);
  // No target-role instance.
  EXPECT_THROW(ent::HeterogeneousNetwork(
                   {{"w", ent::ServerRole::kWeb, spec_with_survivor("w")}}, two_tier_policy()),
               std::invalid_argument);
}

TEST(HeterogeneousNetwork, MixedTierSurvivesPatchOnOneBoxOnly) {
  // Tier of two *different* web servers: one fully patchable (apache-like),
  // one with a surviving local vuln (nginx-like).  After patch only one
  // remains attackable — the headline benefit of heterogeneous redundancy.
  const ent::HeterogeneousNetwork network(
      {{"web-a", ent::ServerRole::kWeb, spec_fully_patchable("a")},
       {"web-b", ent::ServerRole::kWeb, spec_with_survivor("b")},
       {"db1", ent::ServerRole::kDb, target_spec()}},
      two_tier_policy());

  const hm::Harm before = network.build_harm();
  const hm::Harm after = before.after_critical_patch();
  EXPECT_EQ(before.evaluate().attack_paths, 2u);
  EXPECT_EQ(before.evaluate().entry_points, 2u);
  EXPECT_EQ(after.evaluate().attack_paths, 1u);  // web-a dropped out
  EXPECT_EQ(after.evaluate().entry_points, 1u);
  EXPECT_FALSE(after.attackable(after.graph().node("web-a")));
  EXPECT_TRUE(after.attackable(after.graph().node("web-b")));
}

TEST(HeterogeneousNetwork, CountsAndVulnerabilities) {
  const ent::HeterogeneousNetwork network(
      {{"web-a", ent::ServerRole::kWeb, spec_fully_patchable("a")},
       {"web-b", ent::ServerRole::kWeb, spec_with_survivor("b")},
       {"db1", ent::ServerRole::kDb, target_spec()}},
      two_tier_policy());
  EXPECT_EQ(network.count(ent::ServerRole::kWeb), 2u);
  EXPECT_EQ(network.count(ent::ServerRole::kDb), 1u);
  EXPECT_EQ(network.count(ent::ServerRole::kDns), 0u);
  EXPECT_EQ(network.exploitable_vulnerability_count(), 1u + 2u + 2u);
}

// ---------- heterogeneous COA ----------------------------------------------------

TEST(HeterogeneousCoa, MatchesClosedFormOnMixedRates) {
  const std::vector<av::InstanceRates> instances = {
      {ent::ServerRole::kWeb, {.lambda_eq = 1.0 / 720.0, .mu_eq = 1.7}},
      {ent::ServerRole::kWeb, {.lambda_eq = 1.0 / 720.0, .mu_eq = 0.8}},  // slower box
      {ent::ServerRole::kDb, {.lambda_eq = 1.0 / 720.0, .mu_eq = 1.1}},
  };
  const double srn = av::heterogeneous_coa(instances);
  const double closed = av::heterogeneous_coa_closed_form(instances);
  EXPECT_NEAR(srn, closed, 1e-10);
  EXPECT_GT(srn, 0.99);
  EXPECT_LT(srn, 1.0);
}

TEST(HeterogeneousCoa, DegeneratesToHomogeneousModel) {
  // Identical instances must reproduce the homogeneous per-tier model.
  const av::AggregatedRates r{.lambda_eq = 1.0 / 720.0, .mu_eq = 1.0};
  const std::vector<av::InstanceRates> instances = {
      {ent::ServerRole::kApp, r}, {ent::ServerRole::kApp, r}};
  const double het = av::heterogeneous_coa(instances);
  // Homogeneous 2-server tier: E[up]/2 with the all-down state scoring 0.
  const double a = r.mu_eq / (r.mu_eq + r.lambda_eq);
  const double expected = (2.0 * a) / 2.0;  // E[up*1{alive}]/2 = E[up]/2
  EXPECT_NEAR(het, expected, 1e-10);
}

TEST(HeterogeneousCoa, FasterReplacementBoxImprovesCoa) {
  const av::AggregatedRates slow{.lambda_eq = 1.0 / 720.0, .mu_eq = 0.5};
  const av::AggregatedRates fast{.lambda_eq = 1.0 / 720.0, .mu_eq = 2.0};
  const std::vector<av::InstanceRates> slow_pair = {
      {ent::ServerRole::kWeb, slow}, {ent::ServerRole::kWeb, slow}};
  const std::vector<av::InstanceRates> mixed = {
      {ent::ServerRole::kWeb, slow}, {ent::ServerRole::kWeb, fast}};
  EXPECT_GT(av::heterogeneous_coa(mixed), av::heterogeneous_coa(slow_pair));
}

TEST(HeterogeneousCoa, EndToEndFromNetwork) {
  const ent::HeterogeneousNetwork network(
      {{"web-a", ent::ServerRole::kWeb, spec_fully_patchable("a")},
       {"web-b", ent::ServerRole::kWeb, spec_with_survivor("b")},
       {"db1", ent::ServerRole::kDb, target_spec()}},
      two_tier_policy());
  const double coa = av::heterogeneous_coa(network, 720.0);
  EXPECT_GT(coa, 0.99);
  EXPECT_LT(coa, 1.0);
}

TEST(HeterogeneousCoa, Validation) {
  EXPECT_THROW((void)av::heterogeneous_coa(std::vector<av::InstanceRates>{}),
               std::invalid_argument);
  EXPECT_THROW((void)av::heterogeneous_coa_closed_form({}), std::invalid_argument);
  EXPECT_THROW((void)av::build_heterogeneous_srn(
                   {{ent::ServerRole::kWeb, {.lambda_eq = 0.0, .mu_eq = 1.0}}}),
               std::invalid_argument);
}
