// Tests for the CTMC layer: model construction, steady state, rewards,
// transient uniformization and absorbing analysis against closed forms.

#include <gtest/gtest.h>

#include <cmath>

#include "patchsec/ctmc/absorbing.hpp"
#include "patchsec/ctmc/ctmc.hpp"
#include "patchsec/ctmc/transient.hpp"

namespace ct = patchsec::ctmc;

namespace {

/// Up/down chain: 0=up fails at rate a, 1=down repairs at rate b.
ct::Ctmc up_down(double a, double b) {
  ct::Ctmc c;
  c.add_state("up");
  c.add_state("down");
  c.add_transition(0, 1, a);
  c.add_transition(1, 0, b);
  return c;
}

}  // namespace

TEST(Ctmc, ConstructionAndLabels) {
  ct::Ctmc c;
  const auto s0 = c.add_state("alpha");
  const auto s1 = c.add_state("beta");
  EXPECT_EQ(c.state_count(), 2u);
  EXPECT_EQ(c.label(s0), "alpha");
  EXPECT_EQ(c.label(s1), "beta");
}

TEST(Ctmc, RejectsBadTransitions) {
  ct::Ctmc c;
  c.add_states(2);
  EXPECT_THROW(c.add_transition(0, 0, 1.0), std::invalid_argument);  // self loop
  EXPECT_THROW(c.add_transition(0, 1, 0.0), std::invalid_argument);  // zero rate
  EXPECT_THROW(c.add_transition(0, 1, -2.0), std::invalid_argument);
  EXPECT_THROW(c.add_transition(0, 5, 1.0), std::out_of_range);
}

TEST(Ctmc, GeneratorRowsSumToZero) {
  const ct::Ctmc c = up_down(0.25, 4.0);
  const auto q = c.generator();
  EXPECT_NEAR(q.row_sum(0), 0.0, 1e-15);
  EXPECT_NEAR(q.row_sum(1), 0.0, 1e-15);
  EXPECT_DOUBLE_EQ(q.at(0, 1), 0.25);
  EXPECT_DOUBLE_EQ(q.at(1, 0), 4.0);
}

TEST(Ctmc, SteadyStateAvailability) {
  const double lambda = 1.0 / 336.0, mu = 2.0;
  const ct::Ctmc c = up_down(lambda, mu);
  const auto ss = c.steady_state();
  EXPECT_NEAR(ss.distribution[0], mu / (mu + lambda), 1e-10);
}

TEST(Ctmc, ExpectedRewardIsAvailability) {
  const ct::Ctmc c = up_down(0.1, 0.9);
  const double availability = c.expected_steady_state_reward({1.0, 0.0});
  EXPECT_NEAR(availability, 0.9, 1e-10);
}

TEST(Ctmc, RewardSizeMismatchThrows) {
  const ct::Ctmc c = up_down(1.0, 1.0);
  EXPECT_THROW((void)c.expected_steady_state_reward({1.0}), std::invalid_argument);
}

TEST(Ctmc, ExitRate) {
  ct::Ctmc c;
  c.add_states(3);
  c.add_transition(0, 1, 2.0);
  c.add_transition(0, 2, 3.0);
  EXPECT_DOUBLE_EQ(c.exit_rate(0), 5.0);
  EXPECT_DOUBLE_EQ(c.exit_rate(1), 0.0);
}

TEST(Ctmc, ReachabilityAndIrreducibility) {
  ct::Ctmc c;
  c.add_states(3);
  c.add_transition(0, 1, 1.0);
  c.add_transition(1, 0, 1.0);
  const auto reach = c.reachable_from(0);
  EXPECT_TRUE(reach[0]);
  EXPECT_TRUE(reach[1]);
  EXPECT_FALSE(reach[2]);
  EXPECT_FALSE(c.is_irreducible());

  c.add_transition(1, 2, 1.0);
  c.add_transition(2, 0, 1.0);
  EXPECT_TRUE(c.is_irreducible());
}

// ---------- transient --------------------------------------------------------

TEST(Transient, TwoStateClosedForm) {
  // pi_up(t) = mu/(l+mu) + l/(l+mu) e^{-(l+mu)t} starting from up.
  const double l = 0.7, mu = 1.3;
  const ct::Ctmc c = up_down(l, mu);
  for (double t : {0.0, 0.1, 0.5, 1.0, 3.0, 10.0}) {
    const auto pi = ct::transient_distribution(c, {1.0, 0.0}, t);
    const double expected = mu / (l + mu) + l / (l + mu) * std::exp(-(l + mu) * t);
    EXPECT_NEAR(pi[0], expected, 1e-9) << "t=" << t;
    EXPECT_NEAR(pi[0] + pi[1], 1.0, 1e-12);
  }
}

TEST(Transient, ConvergesToSteadyState) {
  const ct::Ctmc c = up_down(0.4, 0.6);
  const auto pi = ct::transient_distribution(c, {0.0, 1.0}, 200.0);
  EXPECT_NEAR(pi[0], 0.6, 1e-8);
  EXPECT_NEAR(pi[1], 0.4, 1e-8);
}

TEST(Transient, ZeroTimeReturnsInitial) {
  const ct::Ctmc c = up_down(1.0, 1.0);
  const auto pi = ct::transient_distribution(c, {0.25, 0.75}, 0.0);
  EXPECT_DOUBLE_EQ(pi[0], 0.25);
}

TEST(Transient, NegativeTimeThrows) {
  const ct::Ctmc c = up_down(1.0, 1.0);
  EXPECT_THROW(ct::transient_distribution(c, {1.0, 0.0}, -1.0), std::invalid_argument);
}

TEST(Transient, InitialSizeMismatchThrows) {
  const ct::Ctmc c = up_down(1.0, 1.0);
  EXPECT_THROW(ct::transient_distribution(c, {1.0}, 1.0), std::invalid_argument);
}

TEST(Transient, StiffChainStaysStochastic) {
  const ct::Ctmc c = up_down(1e-4, 1e3);
  const auto pi = ct::transient_distribution(c, {0.0, 1.0}, 0.01);
  EXPECT_NEAR(pi[0] + pi[1], 1.0, 1e-12);
  EXPECT_GT(pi[0], 0.99);  // repair rate 1e3: nearly surely up after 0.01
}

TEST(Transient, InstantaneousRewardMatchesDistribution) {
  const ct::Ctmc c = up_down(0.5, 1.5);
  const double r = ct::transient_reward(c, {1.0, 0.0}, {1.0, 0.0}, 0.8);
  const auto pi = ct::transient_distribution(c, {1.0, 0.0}, 0.8);
  EXPECT_NEAR(r, pi[0], 1e-12);
}

TEST(Transient, AccumulatedRewardIntervalAvailability) {
  // With no repair (mu -> 0 unreachable here, use tiny), expected uptime over
  // [0,t] of a failing component ~ (1 - e^{-lt})/l.
  const double l = 0.3;
  ct::Ctmc c;
  c.add_states(2);
  c.add_transition(0, 1, l);
  const double t = 2.0;
  const double up_time = ct::accumulated_reward(c, {1.0, 0.0}, {1.0, 0.0}, t, 512);
  const double expected = (1.0 - std::exp(-l * t)) / l;
  EXPECT_NEAR(up_time, expected, 1e-4);
}

TEST(Transient, AccumulatedRewardZeroSteps) {
  const ct::Ctmc c = up_down(1.0, 1.0);
  EXPECT_THROW((void)ct::accumulated_reward(c, {1.0, 0.0}, {1.0, 0.0}, 1.0, 0), std::invalid_argument);
}

// ---------- absorbing --------------------------------------------------------

TEST(Absorbing, SingleTransitionMtta) {
  ct::Ctmc c;
  c.add_states(2);
  c.add_transition(0, 1, 0.25);  // mean 4
  const auto a = ct::analyze_absorbing(c);
  ASSERT_EQ(a.absorbing_states.size(), 1u);
  EXPECT_EQ(a.absorbing_states[0], 1u);
  EXPECT_NEAR(a.mean_time_to_absorption[0], 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(a.mean_time_to_absorption[1], 0.0);
}

TEST(Absorbing, SequentialPhasesSumMeans) {
  // 0 ->(a) 1 ->(b) 2 ->(c) 3; MTTA(0) = 1/a + 1/b + 1/c.  This mirrors the
  // patch pipeline: app patch, OS patch, reboots in sequence.
  ct::Ctmc c;
  c.add_states(4);
  c.add_transition(0, 1, 12.0);
  c.add_transition(1, 2, 3.0);
  c.add_transition(2, 3, 6.0);
  const auto a = ct::analyze_absorbing(c);
  EXPECT_NEAR(a.mean_time_to_absorption[0], 1.0 / 12 + 1.0 / 3 + 1.0 / 6, 1e-12);
}

TEST(Absorbing, NoAbsorbingStateThrows) {
  ct::Ctmc c = ct::Ctmc();
  c.add_states(2);
  c.add_transition(0, 1, 1.0);
  c.add_transition(1, 0, 1.0);
  EXPECT_THROW(ct::analyze_absorbing(c), std::domain_error);
}

TEST(Absorbing, UnreachableAbsorptionThrows) {
  ct::Ctmc c;
  c.add_states(4);
  // 0 <-> 1 closed loop; 2 -> 3 absorbing elsewhere.
  c.add_transition(0, 1, 1.0);
  c.add_transition(1, 0, 1.0);
  c.add_transition(2, 3, 1.0);
  EXPECT_THROW(ct::analyze_absorbing(c), std::domain_error);
}

TEST(Absorbing, MeanFirstPassageUpDown) {
  // First passage up -> down is 1/lambda.
  const ct::Ctmc c = up_down(0.2, 5.0);
  EXPECT_NEAR(ct::mean_first_passage_time(c, 0, {1}), 5.0, 1e-12);
  EXPECT_DOUBLE_EQ(ct::mean_first_passage_time(c, 1, {1}), 0.0);
}

TEST(Absorbing, MeanFirstPassageBranching) {
  // 0 -> 1 (rate 1), 0 -> 2 (rate 1); target {1,2}: MTTA = 1/2.
  ct::Ctmc c;
  c.add_states(3);
  c.add_transition(0, 1, 1.0);
  c.add_transition(0, 2, 1.0);
  EXPECT_NEAR(ct::mean_first_passage_time(c, 0, {1, 2}), 0.5, 1e-12);
}

TEST(Absorbing, EmptyTargetsThrow) {
  const ct::Ctmc c = up_down(1.0, 1.0);
  EXPECT_THROW((void)ct::mean_first_passage_time(c, 0, {}), std::invalid_argument);
}
