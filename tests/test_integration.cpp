// Cross-module integration tests: the analytic pipeline (SRN -> CTMC ->
// steady state -> rewards) validated end-to-end against the discrete-event
// simulator, plus full-pipeline consistency checks mirroring the paper's
// workflow (Fig. 1).

#include <gtest/gtest.h>

#include "patchsec/avail/network_srn.hpp"
#include "patchsec/avail/server_srn.hpp"
#include "patchsec/core/decision.hpp"
#include "patchsec/core/session.hpp"
#include "patchsec/petri/reachability.hpp"
#include "patchsec/sim/srn_simulator.hpp"

namespace av = patchsec::avail;
namespace core = patchsec::core;
namespace ent = patchsec::enterprise;
namespace pt = patchsec::petri;
namespace sm = patchsec::sim;

TEST(Integration, ServerSrnSimulationMatchesAnalyticServiceUp) {
  // Shrink the patch interval to 72 h so patches happen often enough for a
  // simulation to observe many cycles in bounded time.
  const auto spec = ent::paper_server_specs().at(ent::ServerRole::kApp);
  const av::ServerSrn srn = av::build_server_srn(spec, 72.0);

  const pt::SrnAnalyzer analyzer(srn.model);
  const double analytic_up =
      analyzer.probability([&srn](const pt::Marking& m) { return srn.service_up(m); });

  sm::SrnSimulator simulator(srn.model);
  sm::SimulationOptions opt;
  opt.seed = 2024;
  opt.warmup_hours = 2000.0;
  opt.batch_hours = 40000.0;
  opt.batches = 10;
  const auto est = simulator.steady_state_probability(
      [&srn](const pt::Marking& m) { return srn.service_up(m); }, opt);

  EXPECT_NEAR(est.mean, analytic_up, 4.0 * std::max(est.half_width_95, 2e-4))
      << "analytic=" << analytic_up << " simulated=" << est.mean << " +/- " << est.half_width_95;
}

TEST(Integration, NetworkSrnSimulationMatchesAnalyticCoa) {
  // Faster-patching variant of the example network for simulation turnaround.
  std::map<ent::ServerRole, av::AggregatedRates> rates;
  for (const auto& [role, spec] : ent::paper_server_specs()) {
    rates.emplace(role, av::aggregate_server(spec, 72.0));
  }
  const av::NetworkSrn net = av::build_network_srn(ent::example_network_design(), rates);
  const double analytic = av::capacity_oriented_availability(ent::example_network_design(), rates);

  sm::SrnSimulator simulator(net.model);
  sm::SimulationOptions opt;
  opt.seed = 31337;
  opt.warmup_hours = 2000.0;
  opt.batch_hours = 50000.0;
  opt.batches = 10;
  const auto est = simulator.steady_state_reward(net.coa_reward(), opt);
  EXPECT_NEAR(est.mean, analytic, 4.0 * std::max(est.half_width_95, 2e-4))
      << "analytic=" << analytic << " simulated=" << est.mean << " +/- " << est.half_width_95;
}

TEST(Integration, AggregationConsistentWithDowntimeFraction) {
  // Steady-state patch-downtime fraction must equal
  // (downtime per cycle) / (cycle length) with downtime = 1/mu_eq and cycle
  // ~= interval + downtime (the clock pauses during the patch).
  for (const auto& [role, spec] : ent::paper_server_specs()) {
    const av::AggregatedRates r = av::aggregate_server(spec, 720.0);
    const double downtime = r.mttr_hours();
    const double expected_fraction = downtime / (720.0 + downtime);
    EXPECT_NEAR(r.p_patch_down, expected_fraction, expected_fraction * 0.02)
        << ent::to_string(role);
  }
}

TEST(Integration, TwoStateAbstractionMatchesDetailedServiceDown) {
  // The up/down-due-to-patch abstraction (lambda_eq, mu_eq) must reproduce
  // the detailed model's patch-down probability: lambda/(lambda+mu) vs p_pd.
  for (const auto& [role, spec] : ent::paper_server_specs()) {
    const av::AggregatedRates r = av::aggregate_server(spec);
    const double two_state_down = r.lambda_eq / (r.lambda_eq + r.mu_eq);
    EXPECT_NEAR(two_state_down, r.p_patch_down, r.p_patch_down * 0.02) << ent::to_string(role);
  }
}

TEST(Integration, FullPipelineStability) {
  // Evaluating twice must give identical results (pure functions of inputs).
  const core::Session session(core::Scenario::paper_case_study());
  const auto a = session.evaluate(ent::example_network_design());
  const auto b = session.evaluate(ent::example_network_design());
  EXPECT_DOUBLE_EQ(a.coa, b.coa);
  EXPECT_DOUBLE_EQ(a.after_patch.attack_success_probability,
                   b.after_patch.attack_success_probability);
  EXPECT_EQ(a.after_patch.exploitable_vulnerabilities, b.after_patch.exploitable_vulnerabilities);
}

TEST(Integration, SecurityAvailabilityTradeoffExists) {
  // The paper's headline: redundancy designs that raise COA (other than DNS)
  // also raise after-patch ASP — high security and high availability cannot
  // both be maximized.
  const core::Session session(core::Scenario::paper_case_study());
  const auto evals = session.evaluate_all();
  const auto& base = evals[0];
  for (std::size_t i = 2; i < evals.size(); ++i) {  // web/app/db redundancy
    EXPECT_GT(evals[i].coa, base.coa);
    EXPECT_GT(evals[i].after_patch.attack_success_probability,
              base.after_patch.attack_success_probability);
  }
  // DNS redundancy is the exception: COA up, security unchanged.
  EXPECT_GT(evals[1].coa, base.coa);
  EXPECT_DOUBLE_EQ(evals[1].after_patch.attack_success_probability,
                   base.after_patch.attack_success_probability);
}

TEST(Integration, HeterogeneousPatchIntervalEvaluators) {
  // One session can evaluate under different schedules; the result is
  // independent per cadence and monotone: the faster the patch cadence, the
  // lower the COA.
  const core::Session session(core::Scenario::paper_case_study());
  const double coa_m = session.evaluate(ent::example_network_design(), 720.0).coa;
  const double coa_w = session.evaluate(ent::example_network_design(), 168.0).coa;
  EXPECT_GT(coa_m, coa_w);
}
