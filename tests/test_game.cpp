// Game-layer tests: the hand-solvable 2x2 oracle equilibrium, the
// deviation-check certificate under a seeded randomized spec sweep,
// best-response memoization through the EvalService cache (T iterations pay
// ~N+M lower-layer solves plus N*M cached upper-layer solves, not T*N*M),
// determinism across runs and service worker counts, and spec validation.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "patchsec/game/best_response.hpp"

namespace game = patchsec::game;
namespace core = patchsec::core;
namespace ent = patchsec::enterprise;
namespace svc = patchsec::service;

namespace {

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// The hand-solvable 2x2 game: designs {base, 2-APP} x cadences {360, 720}.
///
/// Solved by inspection:
///  * window factors are 0.5 (360 h) and 1.0 (720 h); both path classes have
///    before-patch success ~1, so exposure ~ window * (total effort).  With
///    the bound at 0.6 and effort budget 1, the 720 h column is infeasible
///    and the 360 h column is feasible no matter how the attacker splits.
///  * among the feasible column the defender takes the COA maximizer: the
///    2-APP design (COA 0.9929 > 0.9913).
///  * the attacker fills the per-class cap 0.6 on the higher-utility class
///    first: dns-web-app-db has the same success but strictly larger
///    impact than web-app-db, so the split is exactly (0.6, 0.4).
game::GameSpec oracle_2x2_spec() {
  game::GameSpec spec;
  spec.scenario = core::Scenario::paper_case_study()
                      .with_designs({ent::RedundancyDesign{{1, 1, 1, 1}},
                                     ent::RedundancyDesign{{1, 1, 2, 1}}})
                      .with_patch_schedule({360.0, 720.0});
  spec.defender.cost_budget = 5.0;
  spec.defender.exposure_bound = 0.6;
  spec.attacker.effort_budget = 1.0;
  spec.attacker.per_path_cap = 0.6;
  return spec;
}

bool equilibria_bit_identical(const game::EquilibriumResult& a,
                              const game::EquilibriumResult& b) {
  if (!(a.defender == b.defender) || a.converged != b.converged ||
      a.iterations != b.iterations ||
      a.attacker.weights.size() != b.attacker.weights.size()) {
    return false;
  }
  for (std::size_t c = 0; c < a.attacker.weights.size(); ++c) {
    if (!same_bits(a.attacker.weights[c], b.attacker.weights[c])) return false;
  }
  return same_bits(a.defender_payoff, b.defender_payoff) &&
         same_bits(a.attacker_payoff, b.attacker_payoff) && same_bits(a.exposure, b.exposure);
}

std::uint64_t splitmix(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t x = state;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double uniform01(std::uint64_t& state) {
  return static_cast<double>(splitmix(state) >> 11) * 0x1.0p-53;
}

}  // namespace

TEST(Game, OracleEquilibrium2x2) {
  game::BestResponseSolver solver(oracle_2x2_spec());
  const game::EquilibriumResult result = solver.solve();

  ASSERT_TRUE(result.converged);
  EXPECT_EQ(result.defender.design_index, 1u);  // the 2-APP design...
  EXPECT_EQ(result.defender.cadence_index, 0u); // ...at the 360 h cadence.
  EXPECT_DOUBLE_EQ(result.cadence_hours, 360.0);

  ASSERT_EQ(result.class_names.size(), 2u);
  EXPECT_EQ(result.class_names[0], "dns-web-app-db");
  EXPECT_EQ(result.class_names[1], "web-app-db");
  EXPECT_NEAR(result.attacker.weights[0], 0.6, 1e-12);
  EXPECT_NEAR(result.attacker.weights[1], 0.4, 1e-12);

  // The certificate is verified, not assumed: both deviation bounds hold
  // and every grid cell was actually checked.
  EXPECT_TRUE(result.certificate.verified);
  EXPECT_TRUE(result.certificate.defender_ok);
  EXPECT_TRUE(result.certificate.attacker_ok);
  EXPECT_LE(result.certificate.defender_best_gain, 1e-9);
  EXPECT_LE(result.certificate.attacker_best_gain, 1e-9);
  EXPECT_EQ(result.certificate.defender_strategies_checked, 4u);

  // Frontier covers the grid; the infeasible 720 h column is marked.
  ASSERT_EQ(result.frontier.size(), 4u);
  for (const game::FrontierPoint& p : result.frontier) {
    EXPECT_EQ(p.exposure_feasible, p.cadence_hours < 700.0);
    EXPECT_EQ(p.equilibrium,
              p.design_index == 1 && p.cadence_index == 0);
  }
}

TEST(Game, CertificateHoldsOnEveryConvergedRunOfSeededSweep) {
  // 12 seeded random specs over the paper designs: random exposure bounds,
  // caps, payoff mixes and budgets.  Every converged run must carry a fully
  // verified deviation-check certificate; non-converged runs must surface a
  // bounded trace instead of looping.
  std::uint64_t state = 0xA5A5F00DDEADBEEFull;
  std::size_t converged_runs = 0;
  for (int trial = 0; trial < 12; ++trial) {
    game::GameSpec spec;
    spec.scenario = core::Scenario::paper_case_study().with_patch_schedule(
        {168.0, 360.0, 720.0, 1440.0});
    spec.defender.cost_budget = 4.0 + 2.0 * uniform01(state);
    spec.defender.exposure_bound = 0.15 + 1.05 * uniform01(state);
    spec.attacker.per_path_cap = 0.3 + 0.7 * uniform01(state);
    spec.attacker.effort_budget = 0.5 + uniform01(state);
    spec.payoff.impact_weight = uniform01(state);
    spec.seed = splitmix(state);

    game::BestResponseSolver solver(spec);
    const game::EquilibriumResult result = solver.solve();
    EXPECT_LE(result.iterations, spec.max_iterations);
    EXPECT_EQ(result.frontier.size(),
              spec.scenario.designs().size() * spec.scenario.patch_intervals().size());
    if (result.converged) {
      ++converged_runs;
      EXPECT_TRUE(result.certificate.verified)
          << "trial " << trial << ": converged without a verified certificate "
          << "(defender gain " << result.certificate.defender_best_gain << ", attacker gain "
          << result.certificate.attacker_best_gain << ")";
    }
  }
  // The sweep must actually exercise the certificate path.
  EXPECT_GE(converged_runs, 6u);
}

TEST(Game, BestResponseSweepsAreMemoizedNotResolved) {
  // T Gauss-Seidel rounds over an N x M grid submit T*N*M evaluations but
  // pay for at most N*M Session solves (the service cache returns the rest)
  // and at most M * kRoleCount lower-layer aggregations (the Session
  // memoizes per cadence) — the N+M structure of the sweep, not T*N*M.
  const game::GameSpec spec = game::GameSpec::paper_case_study();
  const std::size_t cells =
      spec.scenario.designs().size() * spec.scenario.patch_intervals().size();

  game::BestResponseSolver solver(spec);
  const game::EquilibriumResult first = solver.solve();
  const game::EquilibriumResult second = solver.solve();  // warm re-solve.
  ASSERT_TRUE(first.converged);
  ASSERT_TRUE(second.converged);

  const std::size_t total_rounds = first.iterations + second.iterations;
  ASSERT_GE(total_rounds, 3u);

  const svc::ServiceStats stats = solver.service().stats();
  EXPECT_EQ(stats.submitted, total_rounds * cells);
  EXPECT_LE(stats.solves, cells);  // every re-sweep is served from the cache...
  EXPECT_GE(stats.cache.hits, (total_rounds - 1) * cells);  // ...as cache hits.
  EXPECT_GE(stats.cache.hit_rate(), 0.5);

  const core::Session::WorkspaceCounters counters = solver.service().session().workspace_counters();
  EXPECT_LE(counters.aggregation_solves,
            spec.scenario.patch_intervals().size() * ent::kRoleCount);
  EXPECT_LE(counters.availability_solves, cells);
}

TEST(Game, DeterministicAcrossRunsAndWorkerCounts) {
  const game::GameSpec spec = game::GameSpec::paper_case_study();
  svc::ServiceOptions solo;
  solo.workers = 1;
  svc::ServiceOptions pooled;
  pooled.workers = 4;

  game::BestResponseSolver a(spec, solo);
  game::BestResponseSolver b(spec, solo);
  game::BestResponseSolver c(spec, pooled);
  const game::EquilibriumResult ra = a.solve();
  const game::EquilibriumResult rb = b.solve();
  const game::EquilibriumResult rc = c.solve();

  ASSERT_TRUE(ra.converged);
  EXPECT_TRUE(ra.certificate.verified);
  EXPECT_TRUE(equilibria_bit_identical(ra, rb));
  EXPECT_TRUE(equilibria_bit_identical(ra, rc));
}

TEST(Game, InfeasibleExposureBoundReportsNoEquilibrium) {
  // A bound below the tightest achievable exposure leaves the defender with
  // no feasible cell: the solver must terminate within the round budget,
  // report converged = false, and flag the fallback rounds.
  game::GameSpec spec = oracle_2x2_spec();
  spec.defender.exposure_bound = 1e-6;
  spec.max_iterations = 8;
  game::BestResponseSolver solver(spec);
  const game::EquilibriumResult result = solver.solve();
  EXPECT_FALSE(result.converged);
  EXPECT_FALSE(result.certificate.verified);
  EXPECT_LE(result.iterations, spec.max_iterations);
  ASSERT_FALSE(result.trace.empty());
  for (const game::IterationRecord& rec : result.trace) {
    EXPECT_FALSE(rec.defender_feasible);
  }
}

TEST(Game, SpecValidationRejectsBadKnobs) {
  const game::GameSpec good = game::GameSpec::paper_case_study();
  EXPECT_NO_THROW(good.validate());

  game::GameSpec spec = good;
  spec.attacker.effort_budget = 0.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = good;
  spec.payoff.impact_weight = 1.5;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = good;
  spec.damping = 0.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = good;
  spec.max_iterations = 1;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = good;
  spec.scenario = core::Scenario::paper_case_study().with_designs({});
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}
