// Golden-value regression suite: pins the reproduced paper case-study
// outputs (per-design capacity-oriented availability, Table V aggregated
// rates, and the before/after HARM security metrics of Sec. IV) to committed
// constants with explicit tolerances, so solver or reachability refactors
// cannot silently drift the numbers the repository exists to reproduce.
//
// If a deliberate modeling change moves these values, update the constants
// in the same commit and say why in the commit message.  Tolerances are a
// few orders of magnitude above the solver's convergence tolerance, so a
// legitimate solver swap (Gauss-Seidel <-> power <-> SOR) stays green while
// a modeling drift trips the suite.

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <vector>

#include "patchsec/core/session.hpp"

namespace core = patchsec::core;
namespace ent = patchsec::enterprise;

namespace {

constexpr double kCoaTol = 1e-8;    // COA is a probability ~0.995; solver tol 1e-10
constexpr double kRateTol = 1e-9;   // Table V rates (1/h)
constexpr double kMetricTol = 1e-9; // HARM metrics are exact rational arithmetic

struct GoldenDesign {
  std::array<unsigned, ent::kRoleCount> counts;
  double coa;
  // Before the critical patch (all exploitable vulnerabilities present).
  double aim_before;
  double asp_before;
  std::size_t noev_before, noap_before, noep_before;
  // After the critical patch.
  double aim_after;
  double asp_after;
  std::size_t noev_after, noap_after, noep_after;
};

// The five Sec. IV designs at the paper's monthly (720 h) cadence.
const std::vector<GoldenDesign> kGolden = {
    {{1, 1, 1, 1}, 0.995614028250, 52.2, 1.0, 16, 2, 2, 42.2, 0.059319, 7, 1, 1},
    {{2, 1, 1, 1}, 0.996166635482, 52.2, 1.0, 17, 3, 3, 42.2, 0.059319, 7, 1, 1},
    {{1, 2, 1, 1}, 0.996097615497, 52.2, 1.0, 21, 4, 3, 42.2, 0.11511926, 9, 2, 2},
    {{1, 1, 2, 1}, 0.996442555875, 52.2, 1.0, 21, 4, 2, 42.2, 0.11511926, 9, 2, 1},
    {{1, 1, 1, 2}, 0.996373599697, 52.2, 1.0, 21, 4, 2, 42.2, 0.11511926, 10, 2, 1},
};

}  // namespace

TEST(PaperGolden, DesignCoaAndSecurityMetricsPinned) {
  const core::Session session(core::Scenario::paper_case_study());
  const std::vector<core::EvalReport> reports = session.evaluate_all();
  ASSERT_EQ(reports.size(), kGolden.size());

  for (std::size_t i = 0; i < kGolden.size(); ++i) {
    const GoldenDesign& golden = kGolden[i];
    const core::EvalReport& report = reports[i];
    SCOPED_TRACE(report.design.name());
    EXPECT_EQ(report.design.counts, golden.counts);
    EXPECT_TRUE(report.converged());
    EXPECT_NEAR(report.coa, golden.coa, kCoaTol);

    EXPECT_NEAR(report.before_patch.attack_impact, golden.aim_before, kMetricTol);
    EXPECT_NEAR(report.before_patch.attack_success_probability, golden.asp_before, 1e-8);
    EXPECT_EQ(report.before_patch.exploitable_vulnerabilities, golden.noev_before);
    EXPECT_EQ(report.before_patch.attack_paths, golden.noap_before);
    EXPECT_EQ(report.before_patch.entry_points, golden.noep_before);

    EXPECT_NEAR(report.after_patch.attack_impact, golden.aim_after, kMetricTol);
    EXPECT_NEAR(report.after_patch.attack_success_probability, golden.asp_after, 1e-8);
    EXPECT_EQ(report.after_patch.exploitable_vulnerabilities, golden.noev_after);
    EXPECT_EQ(report.after_patch.attack_paths, golden.noap_after);
    EXPECT_EQ(report.after_patch.entry_points, golden.noep_after);
  }
}

TEST(PaperGolden, TableVAggregatedRatesPinned) {
  const core::Session session(core::Scenario::paper_case_study());
  const auto& rates = session.aggregated_rates();
  ASSERT_EQ(rates.size(), 4u);

  const auto expect_role = [&rates](ent::ServerRole role, double mu_eq, double p_pd,
                                    double p_prrb) {
    SCOPED_TRACE(ent::to_string(role));
    const auto it = rates.find(role);
    ASSERT_NE(it, rates.end());
    // lambda_eq = tau_p = 1/720 h for every role (Eq. 1).
    EXPECT_NEAR(it->second.lambda_eq, 1.0 / 720.0, kRateTol);
    EXPECT_NEAR(it->second.mu_eq, mu_eq, kRateTol);
    EXPECT_NEAR(it->second.p_patch_down, p_pd, kRateTol);
    EXPECT_NEAR(it->second.p_reboot_enabled, p_prrb, kRateTol);
  };
  expect_role(ent::ServerRole::kDns, 1.5, 0.000925067438, 0.000115633430);
  expect_role(ent::ServerRole::kWeb, 12.0 / 7.0, 0.000809527617, 0.000115646802);
  expect_role(ent::ServerRole::kApp, 1.0, 0.001386959641, 0.000115579970);
  expect_role(ent::ServerRole::kDb, 12.0 / 11.0, 0.001271526634, 0.000115593330);
}
