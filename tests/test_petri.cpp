// Tests for the SRN/GSPN engine: net semantics (arcs, guards, priorities,
// weights, marking-dependent rates), reachability generation with vanishing
// elimination, and the analyzer against hand-solved chains.

#include <gtest/gtest.h>

#include "patchsec/petri/reachability.hpp"
#include "patchsec/petri/srn_model.hpp"

namespace pt = patchsec::petri;

// ---------- model semantics --------------------------------------------------

TEST(SrnModel, PlaceAndTransitionLookup) {
  pt::SrnModel net;
  const auto p = net.add_place("P1", 2);
  const auto t = net.add_timed_transition("T1", 1.5);
  EXPECT_EQ(net.place("P1"), p);
  EXPECT_EQ(net.transition("T1"), t);
  EXPECT_THROW((void)net.place("nope"), std::out_of_range);
  EXPECT_THROW((void)net.transition("nope"), std::out_of_range);
  EXPECT_EQ(net.initial_marking()[p], 2u);
}

TEST(SrnModel, DuplicateNamesRejected) {
  pt::SrnModel net;
  net.add_place("P", 0);
  EXPECT_THROW(net.add_place("P", 1), std::invalid_argument);
  net.add_timed_transition("T", 1.0);
  EXPECT_THROW(net.add_timed_transition("T", 2.0), std::invalid_argument);
  EXPECT_THROW(net.add_immediate_transition("T"), std::invalid_argument);
}

TEST(SrnModel, InvalidRatesAndWeightsRejected) {
  pt::SrnModel net;
  EXPECT_THROW(net.add_timed_transition("T0", 0.0), std::invalid_argument);
  EXPECT_THROW(net.add_timed_transition("T1", -1.0), std::invalid_argument);
  EXPECT_THROW(net.add_immediate_transition("T2", 0.0), std::invalid_argument);
}

TEST(SrnModel, EnablingRequiresInputTokens) {
  pt::SrnModel net;
  const auto p = net.add_place("P", 1);
  const auto q = net.add_place("Q", 0);
  const auto t = net.add_timed_transition("T", 1.0);
  net.add_input_arc(t, p, 2);
  net.add_output_arc(t, q);
  EXPECT_FALSE(net.is_enabled(t, net.initial_marking()));  // needs 2, has 1
}

TEST(SrnModel, InhibitorArcDisables) {
  pt::SrnModel net;
  const auto p = net.add_place("P", 1);
  const auto h = net.add_place("H", 1);
  const auto t = net.add_timed_transition("T", 1.0);
  net.add_input_arc(t, p);
  net.add_inhibitor_arc(t, h);
  EXPECT_FALSE(net.is_enabled(t, net.initial_marking()));
  pt::Marking m = net.initial_marking();
  m[h] = 0;
  EXPECT_TRUE(net.is_enabled(t, m));
}

TEST(SrnModel, InhibitorMultiplicityThreshold) {
  pt::SrnModel net;
  const auto p = net.add_place("P", 1);
  const auto h = net.add_place("H", 1);
  const auto t = net.add_timed_transition("T", 1.0);
  net.add_input_arc(t, p);
  net.add_inhibitor_arc(t, h, 2);  // blocks only at >= 2 tokens
  EXPECT_TRUE(net.is_enabled(t, net.initial_marking()));
  pt::Marking m = net.initial_marking();
  m[h] = 2;
  EXPECT_FALSE(net.is_enabled(t, m));
}

TEST(SrnModel, GuardDisables) {
  pt::SrnModel net;
  const auto p = net.add_place("P", 1);
  const auto g = net.add_place("G", 0);
  const auto t = net.add_timed_transition("T", 1.0);
  net.add_input_arc(t, p);
  net.set_guard(t, [g](const pt::Marking& m) { return m[g] >= 1; });
  EXPECT_FALSE(net.is_enabled(t, net.initial_marking()));
  pt::Marking m = net.initial_marking();
  m[g] = 1;
  EXPECT_TRUE(net.is_enabled(t, m));
}

TEST(SrnModel, FireMovesTokens) {
  pt::SrnModel net;
  const auto p = net.add_place("P", 2);
  const auto q = net.add_place("Q", 0);
  const auto t = net.add_timed_transition("T", 1.0);
  net.add_input_arc(t, p, 2);
  net.add_output_arc(t, q, 3);
  const pt::Marking next = net.fire(t, net.initial_marking());
  EXPECT_EQ(next[p], 0u);
  EXPECT_EQ(next[q], 3u);
}

TEST(SrnModel, FireDisabledThrows) {
  pt::SrnModel net;
  const auto p = net.add_place("P", 0);
  const auto t = net.add_timed_transition("T", 1.0);
  net.add_input_arc(t, p);
  EXPECT_THROW((void)net.fire(t, net.initial_marking()), std::logic_error);
}

TEST(SrnModel, MarkingDependentRate) {
  pt::SrnModel net;
  const auto p = net.add_place("P", 3);
  const auto t = net.add_timed_transition(
      "T", [p](const pt::Marking& m) { return 0.5 * static_cast<double>(m[p]); });
  net.add_input_arc(t, p);
  EXPECT_DOUBLE_EQ(net.rate(t, net.initial_marking()), 1.5);
}

TEST(SrnModel, NonPositiveRateEvaluationThrows) {
  pt::SrnModel net;
  const auto p = net.add_place("P", 0);
  const auto t = net.add_timed_transition("T", [p](const pt::Marking& m) {
    return static_cast<double>(m[p]);  // 0 in the initial marking
  });
  net.add_output_arc(t, p);
  EXPECT_THROW((void)net.rate(t, net.initial_marking()), std::domain_error);
}

TEST(SrnModel, RateOnImmediateThrows) {
  pt::SrnModel net;
  net.add_place("P", 1);
  const auto t = net.add_immediate_transition("T");
  EXPECT_THROW((void)net.rate(t, net.initial_marking()), std::logic_error);
  EXPECT_DOUBLE_EQ(net.weight(t), 1.0);
}

TEST(SrnModel, ImmediatePriorityPreemption) {
  pt::SrnModel net;
  const auto p = net.add_place("P", 1);
  const auto lo = net.add_immediate_transition("lo", 1.0, 1);
  const auto hi = net.add_immediate_transition("hi", 1.0, 5);
  net.add_input_arc(lo, p);
  net.add_input_arc(hi, p);
  const auto enabled = net.enabled_immediates(net.initial_marking());
  ASSERT_EQ(enabled.size(), 1u);
  EXPECT_EQ(enabled[0], hi);
}

TEST(SrnModel, VanishingDetection) {
  pt::SrnModel net;
  const auto p = net.add_place("P", 1);
  const auto t = net.add_immediate_transition("T");
  net.add_input_arc(t, p);
  EXPECT_TRUE(net.is_vanishing(net.initial_marking()));
  pt::Marking m = net.initial_marking();
  m[p] = 0;
  EXPECT_FALSE(net.is_vanishing(m));
}

// ---------- reachability + vanishing elimination ------------------------------

TEST(Reachability, UpDownNetMatchesClosedForm) {
  pt::SrnModel net;
  const auto up = net.add_place("up", 1);
  const auto down = net.add_place("down", 0);
  const auto fail = net.add_timed_transition("fail", 0.2);
  net.add_input_arc(fail, up);
  net.add_output_arc(fail, down);
  const auto repair = net.add_timed_transition("repair", 1.8);
  net.add_input_arc(repair, down);
  net.add_output_arc(repair, up);

  const pt::SrnAnalyzer analyzer(net);
  EXPECT_EQ(analyzer.graph().tangible_count(), 2u);
  const double availability =
      analyzer.probability([up](const pt::Marking& m) { return m[up] == 1; });
  EXPECT_NEAR(availability, 0.9, 1e-9);
  EXPECT_NEAR(analyzer.mean_tokens(up), 0.9, 1e-9);
}

TEST(Reachability, VanishingMarkingsAreEliminated) {
  // up -fail-> broken (vanishing) -route-> down -repair-> up.  The broken
  // marking must not appear among tangibles.
  pt::SrnModel net;
  const auto up = net.add_place("up", 1);
  const auto broken = net.add_place("broken", 0);
  const auto down = net.add_place("down", 0);
  const auto fail = net.add_timed_transition("fail", 1.0);
  net.add_input_arc(fail, up);
  net.add_output_arc(fail, broken);
  const auto route = net.add_immediate_transition("route");
  net.add_input_arc(route, broken);
  net.add_output_arc(route, down);
  const auto repair = net.add_timed_transition("repair", 1.0);
  net.add_input_arc(repair, down);
  net.add_output_arc(repair, up);

  const auto graph = pt::build_reachability_graph(net);
  EXPECT_EQ(graph.tangible_count(), 2u);
  EXPECT_GE(graph.vanishing_markings_seen, 1u);
}

TEST(Reachability, ImmediateWeightsSplitProbability) {
  // A timed transition leads to a vanishing marking resolved 25/75 into two
  // tangible states; their mean sojourn mass must follow the weights.
  pt::SrnModel net;
  const auto src = net.add_place("src", 1);
  const auto mid = net.add_place("mid", 0);
  const auto a = net.add_place("a", 0);
  const auto b = net.add_place("b", 0);

  const auto go = net.add_timed_transition("go", 1.0);
  net.add_input_arc(go, src);
  net.add_output_arc(go, mid);

  const auto pick_a = net.add_immediate_transition("pick_a", 1.0);
  net.add_input_arc(pick_a, mid);
  net.add_output_arc(pick_a, a);
  const auto pick_b = net.add_immediate_transition("pick_b", 3.0);
  net.add_input_arc(pick_b, mid);
  net.add_output_arc(pick_b, b);

  // Return to src at equal rates so the stationary masses of a and b are
  // proportional to the branch probabilities.
  const auto back_a = net.add_timed_transition("back_a", 1.0);
  net.add_input_arc(back_a, a);
  net.add_output_arc(back_a, src);
  const auto back_b = net.add_timed_transition("back_b", 1.0);
  net.add_input_arc(back_b, b);
  net.add_output_arc(back_b, src);

  const pt::SrnAnalyzer analyzer(net);
  const double pa = analyzer.probability([a](const pt::Marking& m) { return m[a] == 1; });
  const double pb = analyzer.probability([b](const pt::Marking& m) { return m[b] == 1; });
  EXPECT_NEAR(pb / pa, 3.0, 1e-6);
}

TEST(Reachability, VanishingLoopDetected) {
  pt::SrnModel net;
  const auto p = net.add_place("P", 1);
  const auto q = net.add_place("Q", 0);
  const auto t1 = net.add_immediate_transition("T1");
  net.add_input_arc(t1, p);
  net.add_output_arc(t1, q);
  const auto t2 = net.add_immediate_transition("T2");
  net.add_input_arc(t2, q);
  net.add_output_arc(t2, p);
  EXPECT_THROW(pt::build_reachability_graph(net), std::runtime_error);
}

TEST(Reachability, StateSpaceBoundEnforced) {
  // Unbounded net: a source transition pumps tokens forever.
  pt::SrnModel net;
  const auto p = net.add_place("P", 1);
  const auto t = net.add_timed_transition("T", 1.0);
  net.add_input_arc(t, p);
  net.add_output_arc(t, p, 2);  // strictly grows
  pt::ReachabilityOptions opt;
  opt.max_tangible_markings = 64;
  EXPECT_THROW(pt::build_reachability_graph(net, opt), std::runtime_error);
}

TEST(Reachability, VanishingInitialMarkingResolved) {
  pt::SrnModel net;
  const auto p = net.add_place("P", 1);
  const auto q = net.add_place("Q", 0);
  const auto imm = net.add_immediate_transition("imm");
  net.add_input_arc(imm, p);
  net.add_output_arc(imm, q);
  const auto back = net.add_timed_transition("back", 1.0);
  net.add_input_arc(back, q);
  net.add_output_arc(back, q);  // hmm: self loop in SRN is fine; produces none
  // Replace with a proper cycle to keep the chain alive.
  const auto graph = pt::build_reachability_graph(net);
  ASSERT_EQ(graph.tangible_count(), 1u);
  EXPECT_EQ(graph.tangible_markings[0][q], 1u);
  EXPECT_DOUBLE_EQ(graph.initial_distribution[0], 1.0);
}

TEST(Reachability, MarkingDependentRatesEnterChain) {
  // Two tokens drain from P at rate #P; the tangible chain is 2 -> 1 -> 0
  // with rates 2 and 1.
  pt::SrnModel net;
  const auto p = net.add_place("P", 2);
  const auto t = net.add_timed_transition(
      "T", [p](const pt::Marking& m) { return static_cast<double>(m[p]); });
  net.add_input_arc(t, p);

  const auto graph = pt::build_reachability_graph(net);
  ASSERT_EQ(graph.tangible_count(), 3u);
  const std::size_t s2 = graph.index_of({2});
  const std::size_t s1 = graph.index_of({1});
  const auto q = graph.chain.generator();
  EXPECT_DOUBLE_EQ(q.at(s2, s1), 2.0);
}

TEST(Analyzer, NullRewardThrows) {
  pt::SrnModel net;
  const auto p = net.add_place("P", 1);
  const auto t = net.add_timed_transition("T", 1.0);
  net.add_input_arc(t, p);
  net.add_output_arc(t, p, 1);  // no-op cycle? input+output same: net stays {1}
  // Build a 2-state cycle instead to avoid a degenerate self-loop-only chain.
  const auto q2 = net.add_place("Q", 0);
  (void)q2;
  const pt::SrnAnalyzer analyzer(net);
  EXPECT_THROW((void)analyzer.expected_reward(nullptr), std::invalid_argument);
  EXPECT_THROW((void)analyzer.probability(nullptr), std::invalid_argument);
}
