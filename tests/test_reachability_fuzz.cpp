// Property-based fuzz test for the reachability explorer's marking interner:
// randomized nets that overflow the packed-u64 fast path (more than 8 places
// and token counts beyond the per-place bit budget) must fall back to the
// general map and still produce the same reachability graph — state count,
// marking set, edge multiset and initial distribution — as a naive reference
// explorer built directly on the SrnModel semantics API.
//
// Two overflow modes are exercised: nets whose *initial* marking is already
// unpackable (the interner flips to the fallback on the very first lookup)
// and nets that start packable but cross the token limit mid-exploration
// (the fallback map is materialized from the markings discovered so far).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <random>
#include <set>
#include <utility>
#include <vector>

#include "patchsec/petri/reachability.hpp"
#include "patchsec/petri/srn_model.hpp"

namespace pt = patchsec::petri;

namespace {

// ---------------------------------------------------------------------------
// Naive reference explorer: std::map-based BFS with recursive vanishing
// elimination, written against the slow SrnModel API only (fire/enabled_*),
// sharing no code with build_reachability_graph.
// ---------------------------------------------------------------------------

struct RefGraph {
  std::vector<pt::Marking> markings;  // tangible, discovery order
  std::map<pt::Marking, std::size_t> index;
  std::map<std::pair<std::size_t, std::size_t>, double> edges;  // (from,to) -> rate
  std::map<pt::Marking, double> initial;
};

void ref_resolve(const pt::SrnModel& model, const pt::Marking& m, double probability,
                 std::size_t depth, std::map<pt::Marking, double>& out) {
  ASSERT_LT(depth, 4096u) << "reference explorer: vanishing loop";
  const std::vector<pt::TransitionId> immediates = model.enabled_immediates(m);
  if (immediates.empty()) {
    out[m] += probability;
    return;
  }
  double total_weight = 0.0;
  for (pt::TransitionId t : immediates) total_weight += model.weight(t);
  for (pt::TransitionId t : immediates) {
    ref_resolve(model, model.fire(t, m), probability * (model.weight(t) / total_weight),
                depth + 1, out);
  }
}

RefGraph ref_explore(const pt::SrnModel& model) {
  RefGraph graph;
  const auto intern = [&graph](const pt::Marking& m) -> std::size_t {
    const auto [it, inserted] = graph.index.try_emplace(m, graph.markings.size());
    if (inserted) graph.markings.push_back(m);
    return it->second;
  };

  ref_resolve(model, model.initial_marking(), 1.0, 0, graph.initial);
  std::vector<std::size_t> frontier;
  for (const auto& [m, p] : graph.initial) frontier.push_back(intern(m));

  std::set<std::size_t> expanded;
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const std::size_t from = frontier[head];
    if (!expanded.insert(from).second) continue;
    const pt::Marking current = graph.markings[from];
    for (pt::TransitionId t : model.enabled_timed(current)) {
      const double rate = model.rate(t, current);
      std::map<pt::Marking, double> successors;
      ref_resolve(model, model.fire(t, current), 1.0, 0, successors);
      for (const auto& [m2, p] : successors) {
        const std::size_t to = intern(m2);
        if (expanded.find(to) == expanded.end()) frontier.push_back(to);
        if (to == from) continue;  // net self loop: dropped, as in production
        graph.edges[{from, to}] += rate * p;
      }
    }
  }
  return graph;
}

// ---------------------------------------------------------------------------
// Random net shapes.  All nets have > 8 places (so the packed key gets at
// most 7 bits per place, limit 127 tokens) and a token population chosen to
// overflow that limit either immediately or mid-exploration, while the
// reachable state space stays small: a "bank" place holds the bulk of the
// tokens and only a handful of mobile tokens move.
// ---------------------------------------------------------------------------

struct FuzzNet {
  pt::SrnModel model;
  bool overflow_from_start = false;
};

FuzzNet random_net(std::mt19937_64& rng) {
  FuzzNet result;
  pt::SrnModel& net = result.model;
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_real_distribution<double> rate_dist(0.25, 5.0);
  std::uniform_real_distribution<double> weight_dist(0.5, 4.0);

  result.overflow_from_start = coin(rng) == 1;

  // Bank + feeder: either the bank starts beyond the 7-bit limit (127), or
  // it starts below and a pump transition pushes it across mid-exploration.
  // Token counts beyond 255 are exercised by the from-start variant.
  std::uniform_int_distribution<pt::TokenCount> big(260, 900);
  const pt::TokenCount bank_start =
      result.overflow_from_start ? big(rng) : static_cast<pt::TokenCount>(120);
  const auto bank = net.add_place("bank", bank_start);
  const auto feeder = net.add_place("feeder", 3);

  // Mobile cycle m0 -> m1 -> m2 -> m0 with one token.
  const auto m0 = net.add_place("m0", 1);
  const auto m1 = net.add_place("m1", 0);
  const auto m2 = net.add_place("m2", 0);
  const auto choice = net.add_place("choice", 0);
  // Padding places so place_count > 8 (bits = 64 / place_count <= 7).
  std::uniform_int_distribution<int> pad_dist(3, 6);
  const int pads = pad_dist(rng);
  for (int i = 0; i < pads; ++i) net.add_place("pad" + std::to_string(i), i == 0 ? 1 : 0);

  const auto t01 = net.add_timed_transition("t01", rate_dist(rng));
  net.add_input_arc(t01, m0);
  net.add_output_arc(t01, m1);
  const auto t12 = net.add_timed_transition("t12", rate_dist(rng));
  net.add_input_arc(t12, m1);
  net.add_output_arc(t12, m2);
  const auto t20 = net.add_timed_transition("t20", rate_dist(rng));
  net.add_input_arc(t20, m2);
  net.add_output_arc(t20, m0);

  // Pump: drains the feeder, adding 10 tokens to the bank per firing — in
  // the mid-exploration variant the bank crosses 127 on the first firing.
  const auto pump = net.add_timed_transition("pump", rate_dist(rng));
  net.add_input_arc(pump, feeder);
  net.add_output_arc(pump, bank, 10);

  // Branch through a vanishing marking: m0 -> choice, then immediates split
  // choice back to m1 / m2 by random weight.  Every second net gives the
  // second branch higher priority (it must then win outright).
  const auto go = net.add_timed_transition("go", rate_dist(rng));
  net.add_input_arc(go, m0);
  net.add_output_arc(go, choice);
  const bool priority_race = coin(rng) == 1;
  const auto ia = net.add_immediate_transition("ia", weight_dist(rng), 1);
  net.add_input_arc(ia, choice);
  net.add_output_arc(ia, m1);
  const auto ib = net.add_immediate_transition("ib", weight_dist(rng), priority_race ? 2 : 1);
  net.add_input_arc(ib, choice);
  net.add_output_arc(ib, m2);

  // A marking-dependent rate, a guard and an inhibitor arc, so the fallback
  // path sees every enabling feature: shortcut m1 -> m0, rate growing with
  // the bank, guarded off until the pump has started draining the feeder,
  // inhibited once the feeder is empty.
  const auto shortcut = net.add_timed_transition(
      "shortcut", [](const pt::Marking& m) { return 0.5 + 0.001 * static_cast<double>(m[0]); });
  net.add_input_arc(shortcut, m1);
  net.add_output_arc(shortcut, m0);
  net.add_inhibitor_arc(shortcut, feeder, 4);  // feeder <= 3 everywhere: never blocks
  net.set_guard(shortcut, [](const pt::Marking& m) { return m[1] <= 2; });  // feeder drained a bit

  // Occasionally a transition whose firing has zero net effect (produces a
  // pure self loop, which both explorers must drop).
  if (coin(rng) == 1) {
    const auto pad0 = net.place("pad0");
    const auto park = net.add_timed_transition("park", rate_dist(rng));
    net.add_input_arc(park, pad0);
    net.add_output_arc(park, pad0);
  }
  return result;
}

void expect_graphs_equal(const pt::SrnModel& model) {
  const pt::ReachabilityGraph graph = pt::build_reachability_graph(model);
  const RefGraph ref = ref_explore(model);

  ASSERT_EQ(graph.tangible_count(), ref.markings.size());

  // Same marking set.
  std::set<pt::Marking> production_set(graph.tangible_markings.begin(),
                                       graph.tangible_markings.end());
  std::set<pt::Marking> reference_set(ref.markings.begin(), ref.markings.end());
  ASSERT_EQ(production_set, reference_set);

  // Same edge multiset, keyed by (from-marking, to-marking), rates summed.
  std::map<std::pair<pt::Marking, pt::Marking>, double> production_edges;
  for (const auto& t : graph.chain.transitions()) {
    production_edges[{graph.tangible_markings[t.from], graph.tangible_markings[t.to]}] += t.rate;
  }
  std::map<std::pair<pt::Marking, pt::Marking>, double> reference_edges;
  for (const auto& [key, rate] : ref.edges) {
    reference_edges[{ref.markings[key.first], ref.markings[key.second]}] += rate;
  }
  ASSERT_EQ(production_edges.size(), reference_edges.size());
  for (const auto& [key, rate] : reference_edges) {
    const auto it = production_edges.find(key);
    ASSERT_NE(it, production_edges.end())
        << "missing edge " << pt::to_string(key.first) << " -> " << pt::to_string(key.second);
    EXPECT_NEAR(it->second, rate, 1e-9 * std::max(1.0, std::abs(rate)));
  }

  // Same initial distribution.
  double mass = 0.0;
  for (std::size_t i = 0; i < graph.tangible_count(); ++i) {
    const double p = graph.initial_distribution[i];
    mass += p;
    const auto it = ref.initial.find(graph.tangible_markings[i]);
    if (it == ref.initial.end()) {
      EXPECT_EQ(p, 0.0);
    } else {
      EXPECT_NEAR(p, it->second, 1e-12);
    }
  }
  EXPECT_NEAR(mass, 1.0, 1e-12);
}

}  // namespace

TEST(ReachabilityFuzz, OverflowingNetsMatchNaiveReference) {
  std::mt19937_64 rng(20170626);
  int from_start = 0, mid_exploration = 0;
  for (int iteration = 0; iteration < 60; ++iteration) {
    FuzzNet fuzz = random_net(rng);
    (fuzz.overflow_from_start ? from_start : mid_exploration) += 1;

    // The packed fast path must actually be overflowed: > 8 places caps the
    // per-place budget at 7 bits (limit 127), and the reachable space holds
    // a marking beyond it.
    const pt::ReachabilityGraph graph = pt::build_reachability_graph(fuzz.model);
    pt::TokenCount max_tokens = 0;
    for (const pt::Marking& m : graph.tangible_markings) {
      for (pt::TokenCount t : m) max_tokens = std::max(max_tokens, t);
    }
    ASSERT_GT(fuzz.model.place_count(), 8u);
    ASSERT_GT(max_tokens, 127u) << "net failed to overflow the packed-u64 limit";
    if (fuzz.overflow_from_start) {
      ASSERT_GT(max_tokens, 255u);
    }

    expect_graphs_equal(fuzz.model);
    if (::testing::Test::HasFatalFailure()) {
      ADD_FAILURE() << "failing iteration " << iteration << " (rerun with this index)";
      return;
    }
  }
  // Both overflow modes must have been exercised.
  EXPECT_GT(from_start, 0);
  EXPECT_GT(mid_exploration, 0);
}

// Control: a same-shaped family that stays below the packing limit (bank
// peaks at 90 < 127 tokens across > 8 places) keeps the fast path and must
// agree with the reference too — guards against the fallback being silently
// always-on.
TEST(ReachabilityFuzz, PackableControlNetsMatchNaiveReference) {
  for (int iteration = 0; iteration < 20; ++iteration) {
    pt::SrnModel net;
    const auto bank = net.add_place("bank", 60);
    const auto feeder = net.add_place("feeder", 3);
    const auto m0 = net.add_place("m0", 1);
    const auto m1 = net.add_place("m1", 0);
    for (int i = 0; i < 6; ++i) net.add_place("pad" + std::to_string(i), 0);
    const auto t01 = net.add_timed_transition("t01", 1.0 + iteration);
    net.add_input_arc(t01, m0);
    net.add_output_arc(t01, m1);
    const auto t10 = net.add_timed_transition("t10", 2.0);
    net.add_input_arc(t10, m1);
    net.add_output_arc(t10, m0);
    const auto pump = net.add_timed_transition("pump", 0.5);
    net.add_input_arc(pump, feeder);
    net.add_output_arc(pump, bank, 10);
    expect_graphs_equal(net);
    if (::testing::Test::HasFatalFailure()) return;
  }
}
