// Guards the committed benchmark snapshot: BENCH_RESULTS.json is regenerated
// by hand (bench/README.md documents the workflow) and nothing else would
// notice a stale or truncated commit.  This suite asserts the snapshot at the
// repo root parses, carries the current schema version, and contains every
// benchmark id the schema requires — in particular the lumped_* rows whose
// flat-vs-lumped state counts are the PR-facing evidence of the symmetry
// lumping speedup, and the service_* rows whose throughput/hit-rate floors
// are the PR-facing evidence of the evaluation-service layer.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

constexpr int kSchemaVersion = 7;

std::string snapshot_text() {
  const std::string path = std::string(PATCHSEC_SOURCE_DIR) + "/BENCH_RESULTS.json";
  std::ifstream in(path);
  EXPECT_TRUE(in) << "missing committed snapshot: " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Value of a top-level `"key": <integer>` field; -1 when absent.
long field_value(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return -1;
  return std::stol(text.substr(at + needle.size()));
}

/// Value of a top-level `"key": <number>` field as a double; -1 when absent.
double field_double(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return -1.0;
  return std::stod(text.substr(at + needle.size()));
}

/// The row object (up to the closing brace) of one benchmark id; empty when
/// the id is not present in the snapshot.
std::string bench_row(const std::string& text, const std::string& name) {
  const std::string needle = "\"name\": \"" + name + "\"";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return {};
  const std::size_t end = text.find('}', at);
  return text.substr(at, end == std::string::npos ? std::string::npos : end - at);
}

/// Every id run_benchmarks emits, in emission order.  Extending the runner
/// without extending this list (and regenerating the snapshot) fails here.
const std::vector<std::string>& required_benchmarks() {
  static const std::vector<std::string> ids = {
      "evaluate_uniform_k2",
      "evaluate_uniform_k4",
      "evaluate_uniform_k6",
      "reachability_network_k6",
      "steady_state_k6_cold",
      "steady_state_k6_warm",
      "server_srn_aggregation",
      "sim_replications_serial",
      "sim_replications_threaded8",
      "transient_curve_k6_cold",
      "transient_curve_k6_warm",
      "transient_curve_k6_simd",
      "transient_batch8_k6",
      "transient_session_paper",
      "sim_transient_curve_threaded8",
      "lumped_k6_evaluate",
      "lumped_k50_evaluate",
      "lumped_k50_transient",
      "schedule_sweep_5x6",
      "service_throughput_k6",
      "service_transient_batch_k6",
      "game_equilibrium_k6",
  };
  return ids;
}

}  // namespace

TEST(BenchResults, CommittedSnapshotMatchesSchema) {
  const std::string text = snapshot_text();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(field_value(text, "schema_version"), kSchemaVersion);
  EXPECT_GT(field_value(text, "repetitions"), 0);
  EXPECT_NE(text.find("\"unit\": \"seconds\""), std::string::npos);

  for (const std::string& id : required_benchmarks()) {
    EXPECT_FALSE(bench_row(text, id).empty()) << "snapshot is missing benchmark: " << id
                                              << " — regenerate BENCH_RESULTS.json "
                                                 "(see bench/README.md)";
  }
}

TEST(BenchResults, EveryRowConvergedWithPositiveTimings) {
  const std::string text = snapshot_text();
  for (const std::string& id : required_benchmarks()) {
    const std::string row = bench_row(text, id);
    if (row.empty()) continue;  // reported by the schema test above
    EXPECT_NE(row.find("\"converged\": true"), std::string::npos) << id;
    EXPECT_EQ(row.find("\"wall_seconds_best\": 0,"), std::string::npos) << id;
    EXPECT_NE(row.find("\"wall_seconds_best\": "), std::string::npos) << id;
  }
}

TEST(BenchResults, SimdRowsRecordThePanelSpeedup) {
  const std::string text = snapshot_text();
  const std::string scalar = bench_row(text, "transient_curve_k6_warm");
  const std::string simd = bench_row(text, "transient_curve_k6_simd");
  const std::string batch = bench_row(text, "transient_batch8_k6");
  ASSERT_FALSE(scalar.empty());
  ASSERT_FALSE(simd.empty());
  ASSERT_FALSE(batch.empty());
  EXPECT_EQ(field_value(scalar, "rhs_count"), 1);
  EXPECT_EQ(field_value(simd, "rhs_count"), 8);
  EXPECT_EQ(field_value(batch, "rhs_count"), 8);

  const double scalar_best = field_double(scalar, "wall_seconds_best");
  const double simd_best = field_double(simd, "wall_seconds_best");
  const double batch_best = field_double(batch, "wall_seconds_best");
  ASSERT_GT(scalar_best, 0.0);
  ASSERT_GT(simd_best, 0.0);
  ASSERT_GT(batch_best, 0.0);
  // The ISSUE 8 acceptance ratio: warm-curve work >= 4x faster on the
  // SIMD+panel path.  The simd row reports PER-CURVE time of an 8-wide
  // panel (bench/README.md); its in-bench `converged` flag asserts this
  // same bound at generation time, so a regenerated snapshot that misses
  // the target fails EveryRowConvergedWithPositiveTimings too.
  EXPECT_GE(scalar_best / simd_best, 4.0)
      << "SIMD+panel per-curve time " << simd_best << "s vs scalar " << scalar_best << "s";
  // The batched 8-wave sweep beats 8 sequential curve solves (in-bench the
  // row's `converged` compares against 8 sequential SIMD solves — stronger
  // than the scalar bound re-checked here).
  EXPECT_LT(batch_best, 8.0 * scalar_best);
  // Work accounting stays honest: the panel rows did the same number of
  // matrix SWEEPS as the single-vector row while advancing 8 curves.
  EXPECT_EQ(field_value(simd, "solver_iterations"), field_value(scalar, "solver_iterations"));
  EXPECT_EQ(field_value(batch, "solver_iterations"), field_value(scalar, "solver_iterations"));
}

TEST(BenchResults, LumpedRowsRecordTheStateReduction) {
  const std::string text = snapshot_text();
  for (const std::string& id : {"lumped_k50_evaluate", "lumped_k50_transient"}) {
    const std::string row = bench_row(text, id);
    ASSERT_FALSE(row.empty()) << id;
    const long states = field_value(row, "tangible_states");
    const long flat = field_value(row, "flat_states");
    ASSERT_GT(states, 0) << id;
    ASSERT_GT(flat, 0) << id;
    EXPECT_EQ(states, 204) << id;            // 4 tiers x 51 counting states
    EXPECT_EQ(flat, 6765201) << id;          // 51^4 joint states avoided
    EXPECT_GE(flat / states, 100) << id;     // the ISSUE acceptance ratio
  }
}

TEST(BenchResults, ServiceRowsRecordThroughputAndHitRate) {
  const std::string text = snapshot_text();
  const std::string throughput = bench_row(text, "service_throughput_k6");
  const std::string batch = bench_row(text, "service_transient_batch_k6");
  ASSERT_FALSE(throughput.empty());
  ASSERT_FALSE(batch.empty());
  // The ISSUE 9 acceptance floors.  The rows' in-bench `converged` flags
  // additionally assert cache/solo bit-identity (throughput) and full-width
  // panel grouping with 1e-10 solo agreement (batch) at generation time, so
  // EveryRowConvergedWithPositiveTimings re-checks those transitively.
  EXPECT_GE(field_double(throughput, "evals_per_second"), 5000.0)
      << "service throughput below the 5,000 evals/s acceptance floor";
  EXPECT_GE(field_double(throughput, "cache_hit_rate"), 0.8)
      << "cache hit rate below the 0.8 acceptance floor";
  // The 90%-repeat load makes the hit rate exactly 0.9 by construction.
  EXPECT_NEAR(field_double(throughput, "cache_hit_rate"), 0.9, 1e-9);
  // The grouped transient row rode a full-width panel.
  EXPECT_EQ(field_value(batch, "rhs_count"), 8);
  EXPECT_GT(field_double(batch, "evals_per_second"), 0.0);
}

TEST(BenchResults, GameRowRecordsConvergedEquilibriumWithWarmCache) {
  const std::string text = snapshot_text();
  const std::string row = bench_row(text, "game_equilibrium_k6");
  ASSERT_FALSE(row.empty());
  // The ISSUE 10 acceptance floor: the equilibrium row must be converged
  // (the in-bench flag additionally asserts the deviation-check certificate
  // and the bit-identical warm re-solve at generation time) with a cache
  // hit rate >= 0.5 across its best-response sweeps.  The two-solve load
  // makes the hit rate exactly 0.75 by construction.
  EXPECT_GE(field_double(row, "cache_hit_rate"), 0.5)
      << "game sweep cache hit rate below the 0.5 acceptance floor";
  EXPECT_NEAR(field_double(row, "cache_hit_rate"), 0.75, 1e-9);
  // solver_iterations carries the Gauss-Seidel round count; a fixed point
  // needs at least the witnessing repeat round.
  EXPECT_GE(field_value(row, "solver_iterations"), 2);
  EXPECT_GT(field_double(row, "evals_per_second"), 0.0);
  // tangible_states carries the defender grid size: 6 designs x 4 cadences.
  EXPECT_EQ(field_value(row, "tangible_states"), 24);
}
