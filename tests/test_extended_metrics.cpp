// Tests for the extended HARM metrics and the patch-prioritization ranking,
// plus the SRN structural analyzer.

#include <gtest/gtest.h>

#include "patchsec/avail/server_srn.hpp"
#include "patchsec/enterprise/network.hpp"
#include "patchsec/harm/extended_metrics.hpp"
#include "patchsec/petri/structural.hpp"

namespace av = patchsec::avail;
namespace ent = patchsec::enterprise;
namespace hm = patchsec::harm;
namespace pt = patchsec::petri;

// ---------- extended HARM metrics -------------------------------------------------

TEST(ExtendedMetrics, ExampleNetworkBeforePatch) {
  const hm::Harm before = ent::example_network().build_harm();
  const hm::ExtendedMetrics m = hm::evaluate_extended(before);
  // Paths: 4 direct (web->app->db, length 3) and 4 via dns (length 4).
  EXPECT_EQ(m.shortest_path_length, 3u);
  EXPECT_EQ(m.longest_path_length, 4u);
  // Every node has a probability-1 vulnerability before patch.
  EXPECT_DOUBLE_EQ(m.mean_path_probability, 1.0);
  // Risk: 4 paths of impact 42.2 + 4 paths of 52.2, all probability 1.
  EXPECT_NEAR(m.total_risk, 4.0 * 42.2 + 4.0 * 52.2, 1e-9);
  EXPECT_DOUBLE_EQ(m.riskiest_path.impact, 52.2);
}

TEST(ExtendedMetrics, ExampleNetworkAfterPatch) {
  const hm::Harm after = ent::example_network().build_harm().after_critical_patch();
  const hm::ExtendedMetrics m = hm::evaluate_extended(after);
  EXPECT_EQ(m.shortest_path_length, 3u);
  EXPECT_EQ(m.longest_path_length, 3u);  // dns paths gone
  const double path_prob = 0.39 * 0.39 * 0.39;
  EXPECT_NEAR(m.mean_path_probability, path_prob, 1e-12);
  EXPECT_NEAR(m.total_risk, 4.0 * 42.2 * path_prob, 1e-9);
}

TEST(ExtendedMetrics, EmptyHarmYieldsZeroes) {
  hm::AttackGraph g;
  const auto attacker = g.add_node("attacker");
  const auto target = g.add_node("t");
  g.set_attacker(attacker);
  g.add_target(target);
  g.add_edge(attacker, target);
  hm::Harm model(std::move(g));
  model.attach_tree(target, hm::AttackTree{});  // unattackable
  const hm::ExtendedMetrics m = hm::evaluate_extended(model);
  EXPECT_EQ(m.shortest_path_length, 0u);
  EXPECT_DOUBLE_EQ(m.total_risk, 0.0);
}

TEST(Criticality, SharedBottleneckRanksFirst) {
  // db1 lies on all 8 before-patch paths of the example network: patching it
  // out removes all risk, so it must rank top.
  const hm::Harm before = ent::example_network().build_harm();
  const auto ranking = hm::rank_node_criticality(before);
  ASSERT_FALSE(ranking.empty());
  EXPECT_EQ(ranking.front().name, "db1");
  EXPECT_DOUBLE_EQ(ranking.front().path_fraction, 1.0);
  const double total = hm::evaluate_extended(before).total_risk;
  EXPECT_NEAR(ranking.front().risk_reduction, total, 1e-9);
}

TEST(Criticality, RedundantInstancesShareLoad) {
  const hm::Harm before = ent::example_network().build_harm();
  const auto ranking = hm::rank_node_criticality(before);
  double web1_fraction = -1.0, web2_fraction = -1.0;
  for (const auto& c : ranking) {
    if (c.name == "web1") web1_fraction = c.path_fraction;
    if (c.name == "web2") web2_fraction = c.path_fraction;
  }
  EXPECT_DOUBLE_EQ(web1_fraction, 0.5);
  EXPECT_DOUBLE_EQ(web2_fraction, 0.5);
}

TEST(Criticality, UnattackableNodesExcluded) {
  const hm::Harm after = ent::example_network().build_harm().after_critical_patch();
  for (const auto& c : hm::rank_node_criticality(after)) {
    EXPECT_NE(c.name, "dns1");
  }
}

// ---------- SRN structural analysis ------------------------------------------------

TEST(Structural, ServerSrnIsConservativeAndBounded) {
  const auto specs = ent::paper_server_specs();
  for (const auto& [role, spec] : specs) {
    const av::ServerSrn srn = av::build_server_srn(spec);
    const pt::StructuralReport report = pt::analyze_structure(srn.model);
    // 4 sub-models, one token each.
    EXPECT_EQ(report.max_total_tokens, 4u) << ent::to_string(role);
    EXPECT_TRUE(report.conservative) << ent::to_string(role);
    for (pt::PlaceId p = 0; p < srn.model.place_count(); ++p) {
      EXPECT_LE(report.place_bounds[p], 1u) << srn.model.place_name(p);
    }
  }
}

TEST(Structural, ImpossibleGuardTransitionsAreDeadByDesign) {
  // The hw-down handlers inside the patch window (Tosrpd, Tospd, Tsvcrpd,
  // Tsvcrrbd) can never fire: hardware is forbidden from failing during the
  // patch.  The structural analyzer must report exactly those as dead.
  const auto specs = ent::paper_server_specs();
  const av::ServerSrn srn = av::build_server_srn(specs.at(ent::ServerRole::kDns));
  const pt::StructuralReport report = pt::analyze_structure(srn.model);
  std::vector<std::string> dead_names;
  for (pt::TransitionId t : report.dead_transitions) {
    dead_names.push_back(srn.model.transition_name(t));
  }
  EXPECT_NE(std::find(dead_names.begin(), dead_names.end(), "Tosrpd"), dead_names.end());
  EXPECT_NE(std::find(dead_names.begin(), dead_names.end(), "Tospd"), dead_names.end());
  // Everything else must be live.
  for (const std::string& name : dead_names) {
    EXPECT_TRUE(name == "Tosrpd" || name == "Tospd" || name == "Tsvcrpd" || name == "Tsvcrrbd")
        << "unexpected dead transition " << name;
  }
}

TEST(Structural, DetectsNonConservativeNet) {
  pt::SrnModel net;
  const auto p = net.add_place("p", 1);
  const auto q = net.add_place("q", 0);
  const auto split = net.add_timed_transition("split", 1.0);
  net.add_input_arc(split, p);
  net.add_output_arc(split, q, 2);  // 1 token in, 2 out
  const auto merge = net.add_timed_transition("merge", 1.0);
  net.add_input_arc(merge, q, 2);
  net.add_output_arc(merge, p);
  const pt::StructuralReport report = pt::analyze_structure(net);
  EXPECT_FALSE(report.conservative);
  EXPECT_EQ(report.max_total_tokens, 2u);
}

TEST(Structural, DetectsDeadTimedTransition) {
  pt::SrnModel net;
  const auto p = net.add_place("p", 1);
  const auto q = net.add_place("q", 0);
  const auto cycle = net.add_timed_transition("cycle", 1.0);
  net.add_input_arc(cycle, p);
  net.add_output_arc(cycle, p);
  const auto never = net.add_timed_transition("never", 1.0);
  net.add_input_arc(never, q);  // q never marked
  net.add_output_arc(never, p);
  const pt::StructuralReport report = pt::analyze_structure(net);
  ASSERT_EQ(report.dead_transitions.size(), 1u);
  EXPECT_EQ(report.dead_transitions[0], never);
  (void)cycle;
}
