// Tests for the patch-policy variants (reboot-free patching), the COA
// sensitivity analysis and the JSON report output.

#include <gtest/gtest.h>

#include <sstream>

#include "patchsec/avail/aggregation.hpp"
#include "patchsec/avail/server_srn.hpp"
#include "patchsec/core/report.hpp"
#include "patchsec/core/sensitivity.hpp"
#include "patchsec/enterprise/network.hpp"
#include "patchsec/petri/reachability.hpp"

namespace av = patchsec::avail;
namespace core = patchsec::core;
namespace ent = patchsec::enterprise;
namespace pt = patchsec::petri;

namespace {

const std::map<ent::ServerRole, ent::ServerSpec>& specs() {
  static const auto s = ent::paper_server_specs();
  return s;
}

const std::map<ent::ServerRole, av::AggregatedRates>& rates() {
  static const auto r = [] {
    std::map<ent::ServerRole, av::AggregatedRates> out;
    for (const auto& [role, spec] : specs()) out.emplace(role, av::aggregate_server(spec));
    return out;
  }();
  return r;
}

double service_up_probability(const av::ServerSrn& srn) {
  const pt::SrnAnalyzer analyzer(srn.model);
  return analyzer.probability([&srn](const pt::Marking& m) { return srn.service_up(m); });
}

}  // namespace

// ---------- reboot-free patch policy ----------------------------------------------

TEST(PatchPolicy, RebootFreePatchingShortensDowntime) {
  // DNS: with reboots the patch takes 40 min; without, only 25 min of patch
  // work remain.  Availability must improve accordingly.
  av::ServerSrnOptions with_reboot;
  av::ServerSrnOptions without_reboot;
  without_reboot.reboot_required = false;

  const av::ServerSrn srn_with =
      av::build_server_srn(specs().at(ent::ServerRole::kDns), with_reboot);
  const av::ServerSrn srn_without =
      av::build_server_srn(specs().at(ent::ServerRole::kDns), without_reboot);
  EXPECT_GT(service_up_probability(srn_without), service_up_probability(srn_with));

  // Patch-downtime ratio check (failure downtime is policy-independent):
  // 25 min of patch work vs 40 min including reboots.
  const auto patch_down = [](const av::ServerSrn& srn) {
    const pt::SrnAnalyzer analyzer(srn.model);
    return analyzer.probability(
        [&srn](const pt::Marking& m) { return srn.service_patch_down(m); });
  };
  EXPECT_NEAR(patch_down(srn_without) / patch_down(srn_with), 25.0 / 40.0, 0.03);
}

TEST(PatchPolicy, RebootFreeNetStaysConsistent) {
  av::ServerSrnOptions opt;
  opt.reboot_required = false;
  const av::ServerSrn srn = av::build_server_srn(specs().at(ent::ServerRole::kApp), opt);
  const pt::ReachabilityGraph graph = pt::build_reachability_graph(srn.model);
  EXPECT_TRUE(graph.chain.is_irreducible());
  for (const pt::Marking& m : graph.tangible_markings) {
    // The post-patch states vanish under the reboot-free policy: Posp and
    // Psvcprrb are resolved immediately.
    EXPECT_EQ(m[srn.os_patched], 0u) << pt::to_string(m);
    EXPECT_EQ(m[srn.svc_ready_to_reboot], 0u) << pt::to_string(m);
  }
}

TEST(PatchPolicy, OptionsDefaultMatchesLegacyBuilder) {
  const av::ServerSrn a = av::build_server_srn(specs().at(ent::ServerRole::kWeb), 720.0);
  const av::ServerSrn b =
      av::build_server_srn(specs().at(ent::ServerRole::kWeb), av::ServerSrnOptions{});
  EXPECT_NEAR(service_up_probability(a), service_up_probability(b), 1e-12);
}

// ---------- sensitivity -------------------------------------------------------------

TEST(Sensitivity, AppTierDominatesExampleNetwork) {
  const auto entries = core::coa_sensitivity(ent::example_network_design(), rates());
  ASSERT_EQ(entries.size(), 8u);  // 4 tiers x {mu, lambda}
  // The most influential parameters belong to the patch process; signs are
  // physical: mu raises COA, lambda lowers it.
  for (const auto& e : entries) {
    if (e.parameter.rfind("mu_eq", 0) == 0) {
      EXPECT_GT(e.derivative, 0.0) << e.parameter;
    } else {
      EXPECT_LT(e.derivative, 0.0) << e.parameter;
    }
  }
  // Sorted by |elasticity| descending.
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_GE(std::abs(entries[i - 1].elasticity), std::abs(entries[i].elasticity));
  }
}

TEST(Sensitivity, SingleServerTiersOutweighRedundantOnes) {
  // In the example network the db/dns tiers are single-server: their rate
  // perturbations hit COA via the outage term, so their elasticities beat
  // the doubled web/app tiers'.
  const auto entries = core::coa_sensitivity(ent::example_network_design(), rates());
  double best_single = 0.0, best_redundant = 0.0;
  for (const auto& e : entries) {
    const bool redundant = e.parameter.find("WEB") != std::string::npos ||
                           e.parameter.find("APP") != std::string::npos;
    (redundant ? best_redundant : best_single) =
        std::max(redundant ? best_redundant : best_single, std::abs(e.elasticity));
  }
  EXPECT_GT(best_single, best_redundant);
}

TEST(Sensitivity, StepValidation) {
  EXPECT_THROW((void)core::coa_sensitivity(ent::example_network_design(), rates(), 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)core::coa_sensitivity(ent::example_network_design(), rates(), 1.0),
               std::invalid_argument);
}

// ---------- JSON report --------------------------------------------------------------

TEST(JsonReport, WellFormedAndComplete) {
  const core::Session session(core::Scenario::paper_case_study());
  const std::vector<core::DesignEvaluation> evals = [&] {
    std::vector<core::DesignEvaluation> out;
    for (const core::EvalReport& r : session.evaluate_all()) out.push_back(r.metrics());
    return out;
  }();
  std::ostringstream out;
  core::write_json(out, evals);
  const std::string json = out.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            5 * 3);  // design + before + after per design
  EXPECT_NE(json.find("\"design\":\"1 DNS + 1 WEB + 2 APP + 1 DB\""), std::string::npos);
  EXPECT_NE(json.find("\"coa\":0.99"), std::string::npos);
  EXPECT_NE(json.find("\"noev\":"), std::string::npos);
  // Balanced braces/brackets.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'), std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['), std::count(json.begin(), json.end(), ']'));
}
