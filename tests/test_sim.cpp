// Monte-Carlo simulator tests: agreement with closed forms and with the
// analytic SRN solver on small nets (the independent-oracle property), the
// threaded independent-replication engine's determinism contract, and
// SimulationOptions validation.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "patchsec/petri/reachability.hpp"
#include "patchsec/sim/srn_simulator.hpp"

namespace pt = patchsec::petri;
namespace sm = patchsec::sim;

namespace {

pt::SrnModel up_down_net(double fail_rate, double repair_rate) {
  pt::SrnModel net;
  const auto up = net.add_place("up", 1);
  const auto down = net.add_place("down", 0);
  const auto fail = net.add_timed_transition("fail", fail_rate);
  net.add_input_arc(fail, up);
  net.add_output_arc(fail, down);
  const auto repair = net.add_timed_transition("repair", repair_rate);
  net.add_input_arc(repair, down);
  net.add_output_arc(repair, up);
  return net;
}

}  // namespace

TEST(Simulator, UpDownAvailabilityWithinConfidenceInterval) {
  const double lambda = 0.05, mu = 0.45;
  const pt::SrnModel net = up_down_net(lambda, mu);
  sm::SrnSimulator simulator(net);
  sm::SimulationOptions opt;
  opt.seed = 1234;
  opt.warmup_hours = 100.0;
  opt.batch_hours = 2000.0;
  opt.batches = 16;
  const auto est = simulator.steady_state_probability(
      [&net](const pt::Marking& m) { return m[net.place("up")] == 1; }, opt);
  const double expected = mu / (lambda + mu);
  EXPECT_NEAR(est.mean, expected, 3.0 * std::max(est.half_width_95, 1e-3));
  EXPECT_GT(est.half_width_95, 0.0);
  EXPECT_EQ(est.batches, 16u);
}

TEST(Simulator, AgreesWithAnalyticSolverOnThreeStateNet) {
  // Cycle a -> b -> c -> a with distinct rates.
  pt::SrnModel net;
  const auto a = net.add_place("a", 1);
  const auto b = net.add_place("b", 0);
  const auto c = net.add_place("c", 0);
  const auto t1 = net.add_timed_transition("t1", 1.0);
  net.add_input_arc(t1, a);
  net.add_output_arc(t1, b);
  const auto t2 = net.add_timed_transition("t2", 2.0);
  net.add_input_arc(t2, b);
  net.add_output_arc(t2, c);
  const auto t3 = net.add_timed_transition("t3", 4.0);
  net.add_input_arc(t3, c);
  net.add_output_arc(t3, a);

  const pt::SrnAnalyzer analyzer(net);
  const double analytic =
      analyzer.probability([a](const pt::Marking& m) { return m[a] == 1; });

  sm::SrnSimulator simulator(net);
  sm::SimulationOptions opt;
  opt.seed = 99;
  opt.warmup_hours = 50.0;
  opt.batch_hours = 1500.0;
  opt.batches = 12;
  const auto est = simulator.steady_state_probability(
      [a](const pt::Marking& m) { return m[a] == 1; }, opt);
  EXPECT_NEAR(est.mean, analytic, 3.0 * std::max(est.half_width_95, 1e-3));
}

TEST(Simulator, ImmediateBranchWeightsRespected) {
  // src -(timed)-> mid, mid resolves 1:3 into a/b; both return to src.
  pt::SrnModel net;
  const auto src = net.add_place("src", 1);
  const auto mid = net.add_place("mid", 0);
  const auto a = net.add_place("a", 0);
  const auto b = net.add_place("b", 0);
  const auto go = net.add_timed_transition("go", 1.0);
  net.add_input_arc(go, src);
  net.add_output_arc(go, mid);
  const auto pa = net.add_immediate_transition("pa", 1.0);
  net.add_input_arc(pa, mid);
  net.add_output_arc(pa, a);
  const auto pb = net.add_immediate_transition("pb", 3.0);
  net.add_input_arc(pb, mid);
  net.add_output_arc(pb, b);
  const auto ra = net.add_timed_transition("ra", 1.0);
  net.add_input_arc(ra, a);
  net.add_output_arc(ra, src);
  const auto rb = net.add_timed_transition("rb", 1.0);
  net.add_input_arc(rb, b);
  net.add_output_arc(rb, src);

  sm::SrnSimulator simulator(net);
  sm::SimulationOptions opt;
  opt.seed = 7;
  opt.warmup_hours = 50.0;
  opt.batch_hours = 1000.0;
  opt.batches = 10;
  const auto pa_est = simulator.steady_state_probability(
      [a](const pt::Marking& m) { return m[a] == 1; }, opt);
  const auto pb_est = simulator.steady_state_probability(
      [b](const pt::Marking& m) { return m[b] == 1; }, opt);
  EXPECT_NEAR(pb_est.mean / pa_est.mean, 3.0, 0.35);
}

TEST(Simulator, DeadMarkingHoldsRewardForever) {
  // One-shot net: token drains and nothing else can fire; availability of
  // the drained state converges to ~1 over a long horizon.
  pt::SrnModel net;
  const auto p = net.add_place("p", 1);
  const auto q = net.add_place("q", 0);
  const auto t = net.add_timed_transition("t", 10.0);
  net.add_input_arc(t, p);
  net.add_output_arc(t, q);

  sm::SrnSimulator simulator(net);
  sm::SimulationOptions opt;
  opt.seed = 3;
  opt.warmup_hours = 10.0;
  opt.batch_hours = 100.0;
  opt.batches = 4;
  const auto est = simulator.steady_state_probability(
      [q](const pt::Marking& m) { return m[q] == 1; }, opt);
  EXPECT_GT(est.mean, 0.999);
}

TEST(Simulator, OptionValidation) {
  const pt::SrnModel net = up_down_net(1.0, 1.0);
  sm::SrnSimulator simulator(net);
  sm::SimulationOptions opt;
  opt.batches = 1;
  EXPECT_THROW((void)simulator.steady_state_reward([](const pt::Marking&) { return 1.0; }, opt),
               std::invalid_argument);
  opt.batches = 4;
  opt.batch_hours = 0.0;
  EXPECT_THROW((void)simulator.steady_state_reward([](const pt::Marking&) { return 1.0; }, opt),
               std::invalid_argument);
  EXPECT_THROW((void)simulator.steady_state_reward(nullptr, {}), std::invalid_argument);
  EXPECT_THROW((void)simulator.steady_state_probability(nullptr, {}), std::invalid_argument);
}

// Every unusable knob throws std::invalid_argument from validate() with a
// message naming the knob — one case per satellite requirement.
TEST(SimulationOptions, ValidateRejectsEachBadKnob) {
  const auto expect_throw = [](sm::SimulationOptions opt, const std::string& fragment) {
    try {
      opt.validate();
      FAIL() << "expected std::invalid_argument mentioning '" << fragment << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos) << e.what();
    }
  };
  sm::SimulationOptions opt;
  EXPECT_NO_THROW(opt.validate());

  opt = {};
  opt.batches = 1;
  expect_throw(opt, "batches");
  opt = {};
  opt.batches = 0;
  expect_throw(opt, "batches");

  opt = {};
  opt.warmup_hours = 0.0;
  expect_throw(opt, "warmup_hours");
  opt = {};
  opt.warmup_hours = -10.0;
  expect_throw(opt, "warmup_hours");
  opt = {};
  opt.warmup_hours = std::nan("");
  expect_throw(opt, "warmup_hours");

  opt = {};
  opt.batch_hours = 0.0;
  expect_throw(opt, "batch_hours");
  opt = {};
  opt.batch_hours = -1.0;
  expect_throw(opt, "batch_hours");

  opt = {};
  opt.replications = 0;
  expect_throw(opt, "replications");
  opt = {};
  opt.replications = 1;
  expect_throw(opt, "replications");

  opt = {};
  opt.horizon_hours = 0.0;
  expect_throw(opt, "horizon_hours");
}

TEST(SimulationOptions, ReplicatedEngineValidates) {
  const pt::SrnModel net = up_down_net(1.0, 1.0);
  sm::SrnSimulator simulator(net);
  sm::SimulationOptions opt;
  opt.replications = 0;
  EXPECT_THROW(
      (void)simulator.steady_state_reward_replicated([](const pt::Marking&) { return 1.0; }, opt),
      std::invalid_argument);
  EXPECT_THROW((void)simulator.steady_state_reward_replicated(nullptr, {}),
               std::invalid_argument);
  EXPECT_THROW((void)simulator.steady_state_probability_replicated(nullptr, {}),
               std::invalid_argument);
}

TEST(ReplicationEngine, UpDownAvailabilityWithinConfidenceInterval) {
  const double lambda = 0.05, mu = 0.45;
  const pt::SrnModel net = up_down_net(lambda, mu);
  sm::SrnSimulator simulator(net);
  sm::SimulationOptions opt;
  opt.seed = 1234;
  opt.warmup_hours = 200.0;
  opt.horizon_hours = 2000.0;
  opt.replications = 24;
  opt.threads = 1;
  const auto est = simulator.steady_state_probability_replicated(
      [&net](const pt::Marking& m) { return m[net.place("up")] == 1; }, opt);
  const double expected = mu / (lambda + mu);
  EXPECT_NEAR(est.mean, expected, 3.0 * std::max(est.half_width_95, 1e-3));
  EXPECT_GT(est.half_width_95, 0.0);
  EXPECT_EQ(est.batches, 24u);
  EXPECT_EQ(est.diagnostics.replications, 24u);
  EXPECT_GT(est.diagnostics.events_fired, 0u);
  EXPECT_GE(est.diagnostics.wall_time_seconds, 0.0);
  EXPECT_EQ(est.diagnostics.threads_used, 1u);
  EXPECT_DOUBLE_EQ(est.total_time, 24.0 * 2200.0);
}

// The determinism contract of the tentpole: for a fixed seed the replicated
// estimate (mean, half width, events) is bit-identical regardless of thread
// count, and repeated runs reproduce it.
TEST(ReplicationEngine, BitIdenticalAcrossThreadCounts) {
  const pt::SrnModel net = up_down_net(0.3, 1.1);
  sm::SrnSimulator simulator(net);
  sm::SimulationOptions opt;
  opt.seed = 77;
  opt.warmup_hours = 50.0;
  opt.horizon_hours = 500.0;
  opt.replications = 12;
  const auto reward = [&net](const pt::Marking& m) { return m[net.place("up")] == 1; };

  opt.threads = 1;
  const auto serial = simulator.steady_state_probability_replicated(reward, opt);
  const auto serial_again = simulator.steady_state_probability_replicated(reward, opt);
  for (unsigned threads : {2u, 3u, 8u}) {
    opt.threads = threads;
    const auto threaded = simulator.steady_state_probability_replicated(reward, opt);
    EXPECT_DOUBLE_EQ(threaded.mean, serial.mean) << threads << " threads";
    EXPECT_DOUBLE_EQ(threaded.half_width_95, serial.half_width_95) << threads << " threads";
    EXPECT_EQ(threaded.diagnostics.events_fired, serial.diagnostics.events_fired)
        << threads << " threads";
  }
  EXPECT_DOUBLE_EQ(serial_again.mean, serial.mean);
  EXPECT_DOUBLE_EQ(serial_again.half_width_95, serial.half_width_95);
}

TEST(ReplicationEngine, AgreesWithAnalyticSolverOnThreeStateNet) {
  pt::SrnModel net;
  const auto a = net.add_place("a", 1);
  const auto b = net.add_place("b", 0);
  const auto c = net.add_place("c", 0);
  const auto t1 = net.add_timed_transition("t1", 1.0);
  net.add_input_arc(t1, a);
  net.add_output_arc(t1, b);
  const auto t2 = net.add_timed_transition("t2", 2.0);
  net.add_input_arc(t2, b);
  net.add_output_arc(t2, c);
  const auto t3 = net.add_timed_transition("t3", 4.0);
  net.add_input_arc(t3, c);
  net.add_output_arc(t3, a);

  const pt::SrnAnalyzer analyzer(net);
  const double analytic = analyzer.probability([a](const pt::Marking& m) { return m[a] == 1; });

  sm::SrnSimulator simulator(net);
  sm::SimulationOptions opt;
  opt.seed = 99;
  opt.warmup_hours = 20.0;
  opt.horizon_hours = 400.0;
  opt.replications = 32;
  opt.threads = 2;
  const auto est = simulator.steady_state_probability_replicated(
      [a](const pt::Marking& m) { return m[a] == 1; }, opt);
  EXPECT_NEAR(est.mean, analytic, 3.0 * std::max(est.half_width_95, 1e-3));
  EXPECT_TRUE(est.contains(est.mean));
  EXPECT_TRUE(est.contains(est.mean + est.half_width_95 * 0.99));
  EXPECT_FALSE(est.contains(est.mean + est.half_width_95 * 1.01));
  // Rescaling the CI to a wider z admits more.
  EXPECT_TRUE(est.contains(est.mean + est.half_width_95 * 1.01, 3.0));
}

TEST(Simulator, Deterministic) {
  const pt::SrnModel net = up_down_net(0.2, 1.0);
  sm::SrnSimulator simulator(net);
  sm::SimulationOptions opt;
  opt.seed = 42;
  opt.warmup_hours = 10.0;
  opt.batch_hours = 200.0;
  opt.batches = 4;
  const auto reward = [&net](const pt::Marking& m) { return m[net.place("up")] == 1; };
  const auto e1 = simulator.steady_state_probability(reward, opt);
  const auto e2 = simulator.steady_state_probability(reward, opt);
  EXPECT_DOUBLE_EQ(e1.mean, e2.mean);
  EXPECT_DOUBLE_EQ(e1.half_width_95, e2.half_width_95);
}

TEST(Simulator, TransientReplicationsMatchUniformization) {
  // Up/down net from a known start: P(up at t) has a closed form, and the
  // analytic uniformization path must agree with replications.
  const double lambda = 0.8, mu = 1.6;
  const pt::SrnModel net = up_down_net(lambda, mu);
  sm::SrnSimulator simulator(net);
  const auto up_place = net.place("up");
  const auto reward = [up_place](const pt::Marking& m) { return m[up_place] == 1 ? 1.0 : 0.0; };
  for (double t : {0.1, 0.5, 2.0}) {
    const double closed =
        mu / (lambda + mu) + lambda / (lambda + mu) * std::exp(-(lambda + mu) * t);
    const auto est = simulator.transient_reward(reward, t, 4000, 7);
    EXPECT_NEAR(est.mean, closed, 3.0 * std::max(est.half_width_95, 1e-3)) << "t=" << t;
  }
}

TEST(Simulator, TransientValidation) {
  const pt::SrnModel net = up_down_net(1.0, 1.0);
  sm::SrnSimulator simulator(net);
  EXPECT_THROW((void)simulator.transient_reward(nullptr, 1.0), std::invalid_argument);
  EXPECT_THROW((void)simulator.transient_reward([](const pt::Marking&) { return 1.0; }, -1.0),
               std::invalid_argument);
  EXPECT_THROW((void)simulator.transient_reward([](const pt::Marking&) { return 1.0; }, 1.0, 1),
               std::invalid_argument);
}

// ---------- finite-horizon transient curve estimator -------------------------

TEST(TransientCurve, MatchesClosedFormAtEveryGridPoint) {
  const double lambda = 0.8, mu = 1.6;
  const pt::SrnModel net = up_down_net(lambda, mu);
  sm::SrnSimulator simulator(net);
  const auto up_place = net.place("up");
  const auto reward = [up_place](const pt::Marking& m) { return m[up_place] == 1 ? 1.0 : 0.0; };
  sm::SimulationOptions opt;
  opt.seed = 99;
  opt.replications = 4000;
  const std::vector<double> grid = {0.0, 0.1, 0.5, 2.0, 5.0};
  const sm::TransientCurveEstimate est = simulator.transient_reward_curve(reward, grid, opt);
  ASSERT_EQ(est.mean.size(), grid.size());
  ASSERT_EQ(est.half_width_95.size(), grid.size());
  EXPECT_EQ(est.time_points, grid);
  for (std::size_t j = 0; j < grid.size(); ++j) {
    const double t = grid[j];
    const double closed =
        mu / (lambda + mu) + lambda / (lambda + mu) * std::exp(-(lambda + mu) * t);
    EXPECT_NEAR(est.mean[j], closed, 3.0 * std::max(est.half_width_95[j], 1e-3)) << "t=" << t;
  }
  // t = 0 is the (deterministic) start state.
  EXPECT_DOUBLE_EQ(est.mean[0], 1.0);
  // Interval availability over [0, 5]: (1/T) int_0^T P(up at s) ds, closed
  // form from integrating the expression above.
  const double t_back = grid.back();
  const double closed_interval =
      mu / (lambda + mu) +
      lambda / ((lambda + mu) * (lambda + mu) * t_back) *
          (1.0 - std::exp(-(lambda + mu) * t_back));
  EXPECT_NEAR(est.interval_mean, closed_interval,
              3.0 * std::max(est.interval_half_width_95, 1e-3));
  EXPECT_GT(est.diagnostics.events_fired, 0u);
  EXPECT_EQ(est.diagnostics.replications, 4000u);
}

TEST(TransientCurve, BitIdenticalAcrossThreadCounts) {
  const pt::SrnModel net = up_down_net(0.3, 0.9);
  sm::SrnSimulator simulator(net);
  const auto up_place = net.place("up");
  const auto reward = [up_place](const pt::Marking& m) { return m[up_place] == 1 ? 1.0 : 0.0; };
  sm::SimulationOptions opt;
  opt.seed = 20170626;
  opt.replications = 64;
  const std::vector<double> grid = {0.5, 1.5, 4.0};

  opt.threads = 1;
  const auto serial = simulator.transient_reward_curve(reward, grid, opt);
  for (unsigned threads : {2u, 4u, 8u}) {
    opt.threads = threads;
    const auto threaded = simulator.transient_reward_curve(reward, grid, opt);
    for (std::size_t j = 0; j < grid.size(); ++j) {
      EXPECT_EQ(serial.mean[j], threaded.mean[j]) << "threads=" << threads << " j=" << j;
      EXPECT_EQ(serial.half_width_95[j], threaded.half_width_95[j])
          << "threads=" << threads << " j=" << j;
    }
    EXPECT_EQ(serial.interval_mean, threaded.interval_mean) << "threads=" << threads;
    EXPECT_EQ(serial.diagnostics.events_fired, threaded.diagnostics.events_fired)
        << "threads=" << threads;
  }
}

TEST(TransientCurve, CustomStartMarkingIsHonored) {
  // Start from the down state instead of the net's initial (up) marking:
  // P(up at t) = (mu/(lambda+mu)) (1 - e^{-(lambda+mu)t}).
  const double lambda = 0.4, mu = 1.2;
  const pt::SrnModel net = up_down_net(lambda, mu);
  sm::SrnSimulator simulator(net);
  const auto up_place = net.place("up");
  const auto reward = [up_place](const pt::Marking& m) { return m[up_place] == 1 ? 1.0 : 0.0; };
  pt::Marking down_start = net.initial_marking();
  down_start[net.place("up")] = 0;
  down_start[net.place("down")] = 1;
  sm::SimulationOptions opt;
  opt.seed = 5;
  opt.replications = 4000;
  const auto est = simulator.transient_reward_curve(reward, {0.0, 1.0}, opt, &down_start);
  EXPECT_DOUBLE_EQ(est.mean[0], 0.0);
  const double closed = mu / (lambda + mu) * (1.0 - std::exp(-(lambda + mu) * 1.0));
  EXPECT_NEAR(est.mean[1], closed, 3.0 * std::max(est.half_width_95[1], 1e-3));
}

TEST(TransientCurve, DeadMarkingHoldsToTheHorizon) {
  // A net whose only transition dies after one firing: past the death the
  // reward must hold for every remaining grid point and the integral.
  pt::SrnModel net;
  const auto up = net.add_place("up", 1);
  const auto gone = net.add_place("gone", 0);
  const auto die = net.add_timed_transition("die", 1000.0);  // dies ~instantly
  net.add_input_arc(die, up);
  net.add_output_arc(die, gone);
  sm::SrnSimulator simulator(net);
  const auto reward = [up](const pt::Marking& m) { return m[up] == 1 ? 1.0 : 0.0; };
  sm::SimulationOptions opt;
  opt.seed = 11;
  opt.replications = 32;
  const auto est = simulator.transient_reward_curve(reward, {5.0, 50.0}, opt);
  EXPECT_DOUBLE_EQ(est.mean[0], 0.0);
  EXPECT_DOUBLE_EQ(est.mean[1], 0.0);
  EXPECT_NEAR(est.interval_mean, 0.0, 1e-3);  // ~1/1000 h of uptime over 50 h
}

TEST(TransientCurve, Validation) {
  const pt::SrnModel net = up_down_net(1.0, 1.0);
  sm::SrnSimulator simulator(net);
  const auto reward = [](const pt::Marking&) { return 1.0; };
  sm::SimulationOptions opt;
  EXPECT_THROW((void)simulator.transient_reward_curve(nullptr, {1.0}, opt),
               std::invalid_argument);
  EXPECT_THROW((void)simulator.transient_reward_curve(reward, {}, opt), std::invalid_argument);
  EXPECT_THROW((void)simulator.transient_reward_curve(reward, {1.0, 0.5}, opt),
               std::invalid_argument);
  EXPECT_THROW((void)simulator.transient_reward_curve(reward, {-1.0}, opt),
               std::invalid_argument);
  opt.replications = 1;
  EXPECT_THROW((void)simulator.transient_reward_curve(reward, {1.0}, opt),
               std::invalid_argument);
  opt.replications = 32;
  pt::Marking bad_size;
  EXPECT_THROW((void)simulator.transient_reward_curve(reward, {1.0}, opt, &bad_size),
               std::invalid_argument);
}
