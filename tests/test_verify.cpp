// Tests for the static model verifier (petri::verify): certificate math
// against the definitions AND against the reachability-based dynamic oracles
// (analyze_structure, ctmc irreducibility/transient-state analysis), a
// seeded-defect corpus where every lint rule must fire on a deliberately
// broken net, clean passes over all paper nets plus a 50-seed generated
// sweep, and the end-to-end Session/JSON wiring.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "patchsec/avail/network_srn.hpp"
#include "patchsec/avail/server_srn.hpp"
#include "patchsec/core/report.hpp"
#include "patchsec/core/session.hpp"
#include "patchsec/ctmc/absorbing.hpp"
#include "patchsec/petri/structural.hpp"
#include "patchsec/petri/verify.hpp"
#include "patchsec/testgen/scenario_generator.hpp"

namespace pt = patchsec::petri;
namespace av = patchsec::avail;
namespace ent = patchsec::enterprise;
namespace core = patchsec::core;
namespace tg = patchsec::testgen;

namespace {

bool has_finding(const pt::VerifyReport& report, const std::string& rule) {
  for (const pt::VerifyFinding& f : report.findings) {
    if (f.rule == rule) return true;
  }
  return false;
}

pt::SrnModel paper_server_net(double patch_interval_hours = 720.0) {
  const auto specs = ent::paper_server_specs();
  av::ServerSrnOptions options;
  options.patch_interval_hours = patch_interval_hours;
  return av::build_server_srn(specs.begin()->second, options).model;
}

av::NetworkSrn paper_network_net(const ent::RedundancyDesign& design) {
  const core::Session session(core::Scenario::paper_case_study());
  return av::build_network_srn(design, session.aggregated_rates());
}

// A minimal clean cyclic net (two places exchanging one token) to host one
// seeded defect at a time without tripping unrelated rules.
pt::SrnModel token_ring() {
  pt::SrnModel net;
  const auto a = net.add_place("A", 1);
  const auto b = net.add_place("B", 0);
  const auto fwd = net.add_timed_transition("fwd", 1.0);
  net.add_input_arc(fwd, a);
  net.add_output_arc(fwd, b);
  const auto back = net.add_timed_transition("back", 2.0);
  net.add_input_arc(back, b);
  net.add_output_arc(back, a);
  return net;
}

}  // namespace

// ---------- certificates: the linear algebra against its definition ----------

TEST(Semiflows, SatisfyDefiningIdentityOnPaperNets) {
  const pt::SrnModel server = paper_server_net();
  const auto matrix = pt::incidence_matrix(server);
  ASSERT_EQ(matrix.size(), server.place_count());

  const pt::VerifyReport report = pt::verify_model(server);
  const pt::VerifyCertificates& c = report.certificates;
  ASSERT_TRUE(c.p_semiflows_complete);
  ASSERT_TRUE(c.t_semiflows_complete);
  ASSERT_FALSE(c.p_semiflows.empty());
  ASSERT_FALSE(c.t_semiflows.empty());

  // yT C = 0, y >= 0, y != 0 for every P-semiflow.
  for (const auto& y : c.p_semiflows) {
    ASSERT_EQ(y.size(), server.place_count());
    long long mass = 0;
    for (long long v : y) {
      EXPECT_GE(v, 0);
      mass += v;
    }
    EXPECT_GT(mass, 0);
    for (std::size_t t = 0; t < server.transition_count(); ++t) {
      long long dot = 0;
      for (std::size_t p = 0; p < server.place_count(); ++p) dot += y[p] * matrix[p][t];
      EXPECT_EQ(dot, 0) << "P-semiflow violates yT C = 0 at transition "
                        << server.transition_name(t);
    }
  }
  // C x = 0, x >= 0, x != 0 for every T-semiflow.
  for (const auto& x : c.t_semiflows) {
    ASSERT_EQ(x.size(), server.transition_count());
    long long mass = 0;
    for (long long v : x) {
      EXPECT_GE(v, 0);
      mass += v;
    }
    EXPECT_GT(mass, 0);
    for (std::size_t p = 0; p < server.place_count(); ++p) {
      long long dot = 0;
      for (std::size_t t = 0; t < server.transition_count(); ++t) dot += matrix[p][t] * x[t];
      EXPECT_EQ(dot, 0) << "T-semiflow violates C x = 0 at place " << server.place_name(p);
    }
  }
}

TEST(Semiflows, ServerNetHasTheFourPaperConservationGroups) {
  const pt::VerifyReport report = pt::verify_model(paper_server_net());
  const pt::VerifyCertificates& c = report.certificates;
  // Fig. 5: one token circulates in each of the hardware, OS, service and
  // patch-clock place groups — four disjoint P-invariants covering all 16
  // places, every bound exactly 1.
  EXPECT_EQ(c.p_semiflows.size(), 4u);
  EXPECT_TRUE(c.structurally_bounded);
  EXPECT_TRUE(c.token_conserving);
  for (long long bound : c.place_bound) EXPECT_EQ(bound, 1);
  // Disjoint supports that partition the places.
  std::vector<int> covered(c.place_bound.size(), 0);
  for (const auto& y : c.p_semiflows) {
    for (std::size_t p = 0; p < y.size(); ++p) {
      if (y[p] != 0) ++covered[p];
    }
  }
  for (int count : covered) EXPECT_EQ(count, 1);
}

TEST(Semiflows, TruncationReturnsEmptyAndIncomplete) {
  bool complete = true;
  const auto flows = pt::semiflows(pt::incidence_matrix(token_ring()), 0, &complete);
  EXPECT_FALSE(complete);
  EXPECT_TRUE(flows.empty());
}

TEST(Semiflows, RaggedMatrixRejected) {
  EXPECT_THROW((void)pt::semiflows({{1, 2}, {1}}), std::invalid_argument);
}

// ---------- certificates vs the reachability-based dynamic oracle ------------

TEST(VerifyOracle, StaticBoundsMatchAnalyzeStructureOnPaperNets) {
  const core::Scenario scenario = core::Scenario::paper_case_study();
  const core::Session session(scenario);

  std::vector<pt::SrnModel> nets;
  av::ServerSrnOptions srn_options;
  srn_options.patch_interval_hours = scenario.patch_interval_hours();
  for (const auto& entry : scenario.specs()) {
    nets.push_back(av::build_server_srn(entry.second, srn_options).model);
  }
  for (const auto& design : scenario.designs()) {
    nets.push_back(av::build_network_srn(design, session.aggregated_rates()).model);
  }

  for (const pt::SrnModel& net : nets) {
    const pt::VerifyReport verify = pt::verify_model(net);
    const pt::StructuralReport oracle = pt::analyze_structure(net);
    ASSERT_TRUE(verify.certificates.p_semiflows_complete);
    EXPECT_EQ(verify.certificates.token_conserving, oracle.conservative);
    // Soundness, not completeness: the server nets DO have dynamically dead
    // transitions (the patch-induced-failure branches, unreachable at the
    // paper's parameterization) that no structural rule can see — but every
    // transition the static pass declares dead (V-STRUCT-001) must be dead
    // in the explored state space too.
    for (const pt::VerifyFinding& f : verify.findings) {
      if (f.rule != "V-STRUCT-001") continue;
      bool oracle_agrees = false;
      for (pt::TransitionId t : oracle.dead_transitions) {
        if (net.transition_name(t) == f.subject) oracle_agrees = true;
      }
      EXPECT_TRUE(oracle_agrees) << f.subject;
    }
    ASSERT_EQ(oracle.place_bounds.size(), net.place_count());
    for (std::size_t p = 0; p < net.place_count(); ++p) {
      // Acceptance criterion: exact agreement on every paper net — the
      // static invariant bound IS the observed reachable bound here.
      EXPECT_EQ(verify.certificates.place_bound[p],
                static_cast<long long>(oracle.place_bounds[p]))
          << "place " << net.place_name(p);
    }
  }
}

TEST(VerifyOracle, PInvariantLawHoldsOnEveryReachableMarking) {
  const pt::SrnModel net = paper_server_net();
  const pt::ReachabilityGraph graph = pt::build_reachability_graph(net);
  const pt::VerifyCertificates certs = pt::verify_model(net).certificates;
  const pt::Marking m0 = net.initial_marking();
  for (const auto& y : certs.p_semiflows) {
    long long invariant = 0;
    for (std::size_t p = 0; p < y.size(); ++p) invariant += y[p] * m0[p];
    for (const pt::Marking& m : graph.tangible_markings) {
      long long value = 0;
      for (std::size_t p = 0; p < y.size(); ++p) value += y[p] * m[p];
      EXPECT_EQ(value, invariant);
    }
  }
}

TEST(VerifyOracle, AnalyzeStructureGraphOverloadMatchesRebuild) {
  const pt::SrnModel net = paper_server_net();
  const pt::ReachabilityGraph graph = pt::build_reachability_graph(net);
  const pt::StructuralReport via_graph = pt::analyze_structure(net, graph);
  const pt::StructuralReport rebuilt = pt::analyze_structure(net);
  EXPECT_EQ(via_graph.place_bounds, rebuilt.place_bounds);
  EXPECT_EQ(via_graph.dead_transitions, rebuilt.dead_transitions);
  EXPECT_EQ(via_graph.max_total_tokens, rebuilt.max_total_tokens);
  EXPECT_EQ(via_graph.conservative, rebuilt.conservative);
}

TEST(VerifyOracle, CleanNetLowersToErgodicChain) {
  // Static certificates clean => the lowered chain has no transient states
  // and is irreducible (the dynamic half of the ergodicity pre-checks).
  const av::NetworkSrn net = paper_network_net(ent::example_network_design());
  ASSERT_TRUE(pt::verify_model(net.model).clean());
  const pt::ReachabilityGraph graph = pt::build_reachability_graph(net.model);
  EXPECT_TRUE(patchsec::ctmc::transient_states(graph.chain).empty());
  EXPECT_TRUE(graph.chain.is_irreducible());
}

TEST(VerifyOracle, SinkNetIsFlaggedStaticallyAndDynamically) {
  // a <-> b ring with a leak into sink place c: V-ERGO-003 statically, and
  // the lowered chain acquires transient states dynamically.
  pt::SrnModel net = token_ring();
  const auto c = net.add_place("C", 0);
  const auto leak = net.add_timed_transition("leak", 0.5);
  net.add_input_arc(leak, net.place("A"));
  net.add_output_arc(leak, c);

  const pt::VerifyReport report = pt::verify_model(net);
  EXPECT_TRUE(has_finding(report, "V-ERGO-003"));
  EXPECT_TRUE(report.has_errors());

  const pt::ReachabilityGraph graph = pt::build_reachability_graph(net);
  EXPECT_FALSE(patchsec::ctmc::transient_states(graph.chain).empty());
  EXPECT_FALSE(graph.chain.is_irreducible());
}

TEST(VerifyOracle, StructurallyDeadTransitionAgreesWithOracle) {
  // "greedy" needs 2 tokens from a 1-token conservation group: flagged
  // statically (V-STRUCT-001) and dead in the explored state space.
  pt::SrnModel net = token_ring();
  const auto greedy = net.add_timed_transition("greedy", 1.0);
  net.add_input_arc(greedy, net.place("A"), 2);
  net.add_output_arc(greedy, net.place("A"), 2);

  const pt::VerifyReport report = pt::verify_model(net);
  EXPECT_TRUE(has_finding(report, "V-STRUCT-001"));

  const pt::StructuralReport oracle = pt::analyze_structure(net);
  ASSERT_EQ(oracle.dead_transitions.size(), 1u);
  EXPECT_EQ(net.transition_name(oracle.dead_transitions.front()), "greedy");
}

// ---------- seeded-defect corpus: every rule must fire -----------------------

TEST(VerifyDefects, NonPositiveMarkingDependentRate) {
  pt::SrnModel net = token_ring();
  const auto bad = net.add_timed_transition(
      "bad", [](const pt::Marking& m) { return static_cast<double>(m[1]); });  // 0 when B empty
  net.add_input_arc(bad, net.place("A"));
  net.add_output_arc(bad, net.place("A"));
  const pt::VerifyReport report = pt::verify_model(net);
  EXPECT_TRUE(has_finding(report, "V-RATE-001"));
  EXPECT_TRUE(report.has_errors());
}

TEST(VerifyDefects, NanRateFlagged) {
  pt::SrnModel net = token_ring();
  const auto bad = net.add_timed_transition(
      "bad", [](const pt::Marking&) { return std::numeric_limits<double>::quiet_NaN(); });
  net.add_input_arc(bad, net.place("A"));
  net.add_output_arc(bad, net.place("A"));
  EXPECT_TRUE(has_finding(pt::verify_model(net), "V-RATE-001"));
}

TEST(VerifyDefects, ThrowingRateFlagged) {
  pt::SrnModel net = token_ring();
  const auto bad = net.add_timed_transition(
      "bad", [](const pt::Marking& m) { return static_cast<double>(m.at(99)); });
  net.add_input_arc(bad, net.place("A"));
  net.add_output_arc(bad, net.place("A"));
  EXPECT_TRUE(has_finding(pt::verify_model(net), "V-RATE-002"));
}

TEST(VerifyDefects, GuardReferencingNonexistentPlace) {
  pt::SrnModel net = token_ring();
  net.set_guard(net.transition("fwd"), [](const pt::Marking& m) { return m.at(99) > 0; });
  const pt::VerifyReport report = pt::verify_model(net);
  EXPECT_TRUE(has_finding(report, "V-GUARD-001"));
  EXPECT_TRUE(report.has_errors());
}

TEST(VerifyDefects, InputInhibitorConflict) {
  pt::SrnModel net = token_ring();
  // fwd now also requires A >= 1 AND A < 1: never enabled.
  net.add_inhibitor_arc(net.transition("fwd"), net.place("A"), 1);
  EXPECT_TRUE(has_finding(pt::verify_model(net), "V-STRUCT-002"));
}

TEST(VerifyDefects, ShadowedImmediate) {
  pt::SrnModel net = token_ring();
  const auto low = net.add_immediate_transition("low", 1.0, 1);
  net.add_input_arc(low, net.place("B"));
  net.add_output_arc(low, net.place("A"));
  const auto high = net.add_immediate_transition("high", 1.0, 5);
  net.add_input_arc(high, net.place("B"));
  net.add_output_arc(high, net.place("A"));
  const pt::VerifyReport report = pt::verify_model(net);
  EXPECT_TRUE(has_finding(report, "V-STRUCT-003"));
  // The finding names the shadowed transition, not the shadowing one.
  for (const pt::VerifyFinding& f : report.findings) {
    if (f.rule == "V-STRUCT-003") {
      EXPECT_EQ(f.subject, "low");
    }
  }
}

TEST(VerifyDefects, TimedTransitionOffEveryCycle) {
  // A one-way drain: fwd2 consumes from B into sink C and nothing feeds back.
  pt::SrnModel net = token_ring();
  const auto c = net.add_place("C", 0);
  const auto drain = net.add_timed_transition("drain", 1.0);
  net.add_input_arc(drain, net.place("B"));
  net.add_output_arc(drain, c);
  EXPECT_TRUE(has_finding(pt::verify_model(net), "V-ERGO-001"));
}

TEST(VerifyDefects, TimedTransitionNotTSemiflowCovered) {
  // grow: A -> 2B sits on a token-flow cycle (B feeds back through "back")
  // but no non-negative firing-count vector cancels its net production, so
  // only V-ERGO-002 can catch it.
  pt::SrnModel net = token_ring();
  const auto grow = net.add_timed_transition("grow", 1.0);
  net.add_input_arc(grow, net.place("A"));
  net.add_output_arc(grow, net.place("B"), 2);
  const pt::VerifyReport report = pt::verify_model(net);
  EXPECT_TRUE(has_finding(report, "V-ERGO-002"));
  EXPECT_FALSE(has_finding(report, "V-ERGO-001"));
}

TEST(VerifyDefects, SourceOnlyPlaceDrainsAway) {
  pt::SrnModel net = token_ring();
  const auto fuel = net.add_place("Fuel", 1);
  const auto burn = net.add_timed_transition("burn", 1.0);
  net.add_input_arc(burn, fuel);
  net.add_input_arc(burn, net.place("A"));
  net.add_output_arc(burn, net.place("A"));
  EXPECT_TRUE(has_finding(pt::verify_model(net), "V-ERGO-004"));
}

TEST(VerifyDefects, UncoveredPlaceHasNoBoundednessCertificate) {
  pt::SrnModel net = token_ring();
  const auto heap = net.add_place("Heap", 0);
  const auto pump = net.add_timed_transition("pump", 1.0);
  net.add_input_arc(pump, net.place("A"));
  net.add_output_arc(pump, net.place("A"));
  net.add_output_arc(pump, heap);  // A -> A + Heap: Heap is unbounded
  const pt::VerifyReport report = pt::verify_model(net);
  EXPECT_TRUE(has_finding(report, "V-BOUND-001"));
  EXPECT_FALSE(report.certificates.structurally_bounded);
  EXPECT_EQ(report.certificates.place_bound[heap], -1);
}

TEST(VerifyDefects, RewardTouchingUnmarkablePlace) {
  pt::SrnModel net = token_ring();
  const auto ghost = net.add_place("Ghost", 0);  // never marked: no producer
  std::vector<std::pair<std::string, pt::RewardFunction>> rewards;
  rewards.emplace_back("ghost_reward", [ghost](const pt::Marking& m) {
    return static_cast<double>(m[ghost]);
  });
  EXPECT_TRUE(has_finding(pt::verify_model(net, rewards), "V-REWARD-001"));
}

TEST(VerifyDefects, ThrowingAndNonFiniteRewards) {
  const pt::SrnModel net = token_ring();
  std::vector<std::pair<std::string, pt::RewardFunction>> rewards;
  rewards.emplace_back("throwing",
                       [](const pt::Marking& m) { return static_cast<double>(m.at(99)); });
  rewards.emplace_back("infinite", [](const pt::Marking&) {
    return std::numeric_limits<double>::infinity();
  });
  const pt::VerifyReport report = pt::verify_model(net, rewards);
  std::size_t reward_findings = 0;
  for (const pt::VerifyFinding& f : report.findings) {
    if (f.rule == "V-REWARD-002") ++reward_findings;
  }
  EXPECT_EQ(reward_findings, 2u);
}

TEST(VerifyDefects, TruncatedCertificatesReportedAsInfo) {
  pt::VerifyOptions options;
  options.max_intermediate_rows = 0;
  const pt::VerifyReport report = pt::verify_model(token_ring(), options);
  EXPECT_TRUE(has_finding(report, "V-CERT-001"));
  EXPECT_FALSE(report.certificates.p_semiflows_complete);
  // Coverage rules must be silent when the certificates are truncated.
  EXPECT_FALSE(has_finding(report, "V-BOUND-001"));
  EXPECT_FALSE(has_finding(report, "V-ERGO-002"));
  EXPECT_FALSE(report.has_errors());
}

TEST(VerifyDefects, ProbingCanBeDisabled) {
  pt::SrnModel net = token_ring();
  net.set_guard(net.transition("fwd"), [](const pt::Marking& m) { return m.at(99) > 0; });
  pt::VerifyOptions options;
  options.probe_functions = false;
  EXPECT_FALSE(has_finding(pt::verify_model(net, options), "V-GUARD-001"));
}

// ---------- clean passes ------------------------------------------------------

TEST(VerifyClean, AllPaperDesignsLintClean) {
  const core::Session session(core::Scenario::paper_case_study());
  for (const core::EvalReport& report : session.evaluate_all()) {
    EXPECT_TRUE(report.lint_clean()) << report.design.name();
    // Every stage: the per-role server nets plus the network net.
    EXPECT_EQ(report.verification.size(),
              session.scenario().specs().size() + 1);
    for (const core::StageVerification& stage : report.verification) {
      EXPECT_TRUE(stage.report.clean()) << stage.stage;
      EXPECT_TRUE(stage.report.certificates.structurally_bounded) << stage.stage;
      EXPECT_TRUE(stage.report.certificates.token_conserving) << stage.stage;
    }
  }
}

TEST(VerifyClean, FiftySeedGeneratedSweepLintsClean) {
  // lint_generated (on by default) already throws on a dirty net; assert the
  // reports are finding-free end to end as well.
  tg::ScenarioGenerator generator;
  for (int i = 0; i < 50; ++i) {
    const tg::GeneratedScenario generated = generator.next();
    for (const core::StageVerification& stage : tg::lint_scenario(generated)) {
      EXPECT_TRUE(stage.report.clean())
          << stage.stage << " of seed " << generated.scenario_seed << ":\n"
          << pt::format(stage.report);
    }
  }
}

// ---------- Session / engine wiring ------------------------------------------

TEST(VerifyWiring, OffModeProducesNoReports) {
  core::Scenario scenario = core::Scenario::paper_case_study();
  core::EngineOptions engine;
  engine.verify = core::VerifyMode::kOff;
  scenario.with_engine(engine);
  const core::Session session(scenario);
  const core::EvalReport report = session.evaluate(ent::example_network_design());
  EXPECT_TRUE(report.verification.empty());
  EXPECT_TRUE(report.lint_clean());  // vacuously
}

TEST(VerifyWiring, StrictModeSolvesCleanScenario) {
  core::Scenario scenario = core::Scenario::paper_case_study();
  core::EngineOptions engine;
  engine.verify = core::VerifyMode::kStrict;
  scenario.with_engine(engine);
  const core::Session session(scenario);
  const core::EvalReport report = session.evaluate(ent::example_network_design());
  EXPECT_GT(report.coa, 0.99);
  EXPECT_TRUE(report.lint_clean());
}

TEST(VerifyWiring, TransientEvaluationCarriesVerification) {
  core::Scenario scenario = core::Scenario::paper_case_study();
  core::EngineOptions engine;
  engine.horizon_hours = 4.0;
  engine.transient_points = 3;
  scenario.with_engine(engine);
  const core::Session session(scenario);
  const core::EvalReport report = session.evaluate_transient(ent::example_network_design());
  EXPECT_EQ(report.verification.size(), session.scenario().specs().size() + 1);
  EXPECT_TRUE(report.lint_clean());
}

TEST(VerifyWiring, ThrowOnVerifyErrorsNamesRuleAndStage) {
  pt::VerifyReport report;
  pt::throw_on_verify_errors(report, "network");  // clean: no-op

  report.findings.push_back(
      {"V-RATE-001", pt::VerifySeverity::kError, "Tbad", "rate evaluated to 0"});
  try {
    pt::throw_on_verify_errors(report, "network");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("V-RATE-001"), std::string::npos);
    EXPECT_NE(message.find("network"), std::string::npos);
    EXPECT_NE(message.find("Tbad"), std::string::npos);
  }
}

TEST(VerifyWiring, SeverityCountsAndToString) {
  pt::VerifyReport report;
  EXPECT_TRUE(report.clean());
  report.findings.push_back({"R1", pt::VerifySeverity::kError, "", ""});
  report.findings.push_back({"R2", pt::VerifySeverity::kWarning, "", ""});
  report.findings.push_back({"R3", pt::VerifySeverity::kInfo, "", ""});
  EXPECT_EQ(report.errors(), 1u);
  EXPECT_EQ(report.warnings(), 1u);
  EXPECT_EQ(report.count(pt::VerifySeverity::kInfo), 1u);
  EXPECT_TRUE(report.has_errors());
  EXPECT_STREQ(pt::to_string(pt::VerifySeverity::kError), "error");
  EXPECT_STREQ(pt::to_string(pt::VerifySeverity::kWarning), "warning");
  EXPECT_STREQ(pt::to_string(pt::VerifySeverity::kInfo), "info");
}

TEST(VerifyWiring, JsonDiagnosticsCarryVerifyBlock) {
  const core::Session session(core::Scenario::paper_case_study());
  const std::vector<core::EvalReport> reports = {
      session.evaluate(ent::example_network_design())};
  std::ostringstream out;
  core::write_json(out, reports);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"verify\":{\"clean\":true"), std::string::npos);
  EXPECT_NE(json.find("\"stage\":\"network\""), std::string::npos);
  EXPECT_NE(json.find("\"p_semiflows\":4"), std::string::npos);
  EXPECT_NE(json.find("\"conserving\":true"), std::string::npos);
}

TEST(VerifyWiring, FormatRendersFindings) {
  pt::SrnModel net = token_ring();
  net.set_guard(net.transition("fwd"), [](const pt::Marking& m) { return m.at(99) > 0; });
  const std::string text = pt::format(pt::verify_model(net));
  EXPECT_NE(text.find("V-GUARD-001"), std::string::npos);
  EXPECT_NE(text.find("[error]"), std::string::npos);
  EXPECT_NE(text.find("fwd"), std::string::npos);
}

TEST(VerifyWiring, GeneratorRefusesLintDirtyNetsWhenAsked) {
  // The real generator never emits a dirty net (FiftySeedGeneratedSweep
  // above); exercise the assertion path by linting a sabotaged scenario
  // through the same entry point the generator uses.
  tg::GeneratorOptions options;
  options.lint_generated = false;
  const tg::GeneratedScenario generated = tg::ScenarioGenerator::from_seed(7, options);
  for (const core::StageVerification& stage : tg::lint_scenario(generated)) {
    EXPECT_TRUE(stage.report.clean());
  }
}
