// Tests for the Scenario/Session evaluation API: builder defaults and
// validation, end-to-end EngineOptions plumbing (observable as
// iteration-count changes reported from linalg::solve_steady_state), solver
// diagnostics in EvalReport, schedule sweeps, parallel batches and the
// deprecated-Evaluator shim equivalence.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "patchsec/core/campaign.hpp"
#include "patchsec/core/report.hpp"
#include "patchsec/core/sensitivity.hpp"
#include "patchsec/core/session.hpp"

// The shim-equivalence tests below intentionally exercise the deprecated API.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#elif defined(_MSC_VER)
#pragma warning(disable : 4996)
#endif
#include "patchsec/core/evaluation.hpp"

namespace core = patchsec::core;
namespace ent = patchsec::enterprise;
namespace linalg = patchsec::linalg;

// ---------- Scenario builder ----------------------------------------------------

TEST(Scenario, DefaultsMatchThePaperConventions) {
  const core::Scenario s;
  EXPECT_TRUE(s.specs().empty());
  EXPECT_TRUE(s.designs().empty());
  ASSERT_EQ(s.patch_intervals().size(), 1u);
  EXPECT_DOUBLE_EQ(s.patch_interval_hours(), 720.0);  // monthly
  EXPECT_FALSE(s.engine().parallel);
  EXPECT_FALSE(s.engine().throw_on_divergence);
  EXPECT_EQ(s.engine().steady_state.method, linalg::SteadyStateMethod::kAuto);
}

TEST(Scenario, PaperCaseStudyCarriesTheFullCaseStudy) {
  const core::Scenario s = core::Scenario::paper_case_study();
  EXPECT_EQ(s.specs().size(), 4u);
  EXPECT_EQ(s.designs().size(), 5u);  // the five Sec. IV candidates
  EXPECT_DOUBLE_EQ(s.patch_interval_hours(), 720.0);
  EXPECT_NO_THROW(s.validate());
}

TEST(Scenario, BuilderIsFluentAndValueLike) {
  core::Scenario a = core::Scenario::paper_case_study().with_patch_interval(168.0);
  const core::Scenario b = a;  // plain value: copies are independent
  a.with_patch_interval(24.0);
  EXPECT_DOUBLE_EQ(a.patch_interval_hours(), 24.0);
  EXPECT_DOUBLE_EQ(b.patch_interval_hours(), 168.0);
}

TEST(Scenario, ValidationRejectsEmptySpecs) {
  EXPECT_THROW(core::Scenario().validate(), std::invalid_argument);
  EXPECT_THROW(core::Session{core::Scenario()}, std::invalid_argument);
}

TEST(Scenario, EmptyScheduleAccessorThrowsInsteadOfUb) {
  const core::Scenario s = core::Scenario::paper_case_study().with_patch_schedule({});
  EXPECT_THROW((void)s.patch_interval_hours(), std::logic_error);
}

TEST(Scenario, ValidationRejectsBadSchedules) {
  EXPECT_THROW(core::Scenario::paper_case_study().with_patch_schedule({}).validate(),
               std::invalid_argument);
  EXPECT_THROW(core::Scenario::paper_case_study().with_patch_interval(0.0).validate(),
               std::invalid_argument);
  EXPECT_THROW(core::Scenario::paper_case_study().with_patch_schedule({720.0, -1.0}).validate(),
               std::invalid_argument);
}

TEST(Scenario, ValidationRejectsDesignsWithoutSpecs) {
  // A design deploying a WEB tier while only a DB spec exists.
  core::Scenario s = core::Scenario()
                         .with_spec(ent::ServerRole::kDb,
                                    ent::paper_server_specs().at(ent::ServerRole::kDb))
                         .with_design(ent::RedundancyDesign{{0, 1, 0, 1}});
  EXPECT_THROW(s.validate(), std::invalid_argument);

  EXPECT_THROW(
      core::Scenario::paper_case_study().with_design(ent::RedundancyDesign{{0, 0, 0, 0}}).validate(),
      std::invalid_argument);
}

// ---------- EngineOptions plumbing ----------------------------------------------

TEST(EngineOptions, ToleranceReachesTheSteadyStateSolver) {
  // A looser tolerance must stop the (identical) Gauss-Seidel iteration
  // earlier: the reported iteration counts prove the options reach
  // linalg::solve_steady_state through core -> avail -> petri -> ctmc.
  core::EngineOptions tight;
  tight.steady_state.method = linalg::SteadyStateMethod::kGaussSeidel;
  tight.steady_state.tolerance = 1e-12;
  core::EngineOptions loose = tight;
  loose.steady_state.tolerance = 1e-6;

  const core::Session tight_session(core::Scenario::paper_case_study().with_engine(tight));
  const core::Session loose_session(core::Scenario::paper_case_study().with_engine(loose));

  const core::EvalReport a = tight_session.evaluate(ent::example_network_design());
  const core::EvalReport b = loose_session.evaluate(ent::example_network_design());
  EXPECT_TRUE(a.converged());
  EXPECT_TRUE(b.converged());
  EXPECT_LT(b.availability_diagnostics.solver_iterations,
            a.availability_diagnostics.solver_iterations);
  // The lower layer sees the options too.
  for (const auto& [role, diag] : b.aggregation_diagnostics) {
    EXPECT_LT(diag.solver_iterations,
              a.aggregation_diagnostics.at(role).solver_iterations)
        << ent::to_string(role);
  }
  // Both tolerances still reproduce the paper's COA.
  EXPECT_NEAR(a.coa, 0.99707, 5e-6);
  EXPECT_NEAR(b.coa, 0.99707, 1e-3);
}

TEST(EngineOptions, MethodSelectionReachesTheSteadyStateSolver) {
  // Power iteration on these stiff generators needs far more iterations than
  // Gauss-Seidel; observing that difference proves method selection lands.
  core::EngineOptions gauss;
  gauss.steady_state.method = linalg::SteadyStateMethod::kGaussSeidel;
  core::EngineOptions power;
  power.steady_state.method = linalg::SteadyStateMethod::kPower;
  power.steady_state.tolerance = 1e-8;  // keep the power run bounded

  const core::Session gauss_session(core::Scenario::paper_case_study().with_engine(gauss));
  const core::Session power_session(core::Scenario::paper_case_study().with_engine(power));

  const auto g = gauss_session.evaluate(ent::example_network_design());
  const auto p = power_session.evaluate(ent::example_network_design());
  EXPECT_GT(p.total_solver_iterations(), g.total_solver_iterations());
}

TEST(EngineOptions, ReachabilityLimitsReachTheExplorer) {
  core::EngineOptions engine;
  engine.reachability.max_tangible_markings = 2;  // absurdly small
  const core::Session session(core::Scenario::paper_case_study().with_engine(engine));
  EXPECT_THROW((void)session.evaluate(ent::example_network_design()), std::runtime_error);
}

TEST(EngineOptions, DivergenceIsSurfacedNotThrownByDefault) {
  // Starve the solver: one iteration cannot converge, yet evaluation
  // succeeds and the report says so (the SrnAnalyzer bugfix surfaced).
  core::EngineOptions starved;
  starved.steady_state.max_iterations = 1;
  const core::Session session(core::Scenario::paper_case_study().with_engine(starved));
  const core::EvalReport report = session.evaluate(ent::example_network_design());
  EXPECT_FALSE(report.converged());
  EXPECT_FALSE(report.availability_diagnostics.converged);
  EXPECT_GT(report.availability_diagnostics.residual, 0.0);
}

TEST(EngineOptions, DivergenceThrowsWhenAskedTo) {
  core::EngineOptions strict;
  strict.steady_state.max_iterations = 1;
  strict.throw_on_divergence = true;
  const core::Session session(core::Scenario::paper_case_study().with_engine(strict));
  EXPECT_THROW((void)session.evaluate(ent::example_network_design()), std::runtime_error);
}

// ---------- EvalReport diagnostics ----------------------------------------------

TEST(EvalReport, CarriesNonTrivialDiagnostics) {
  const core::Session session(core::Scenario::paper_case_study());
  const core::EvalReport r = session.evaluate(ent::example_network_design());

  EXPECT_TRUE(r.converged());
  // Upper layer: (1+1)(2+1)(2+1)(1+1) = 36 tangible states for 1/2/2/1.
  EXPECT_EQ(r.availability_diagnostics.tangible_states, 36u);
  EXPECT_GT(r.availability_diagnostics.transitions, 0u);
  EXPECT_GT(r.availability_diagnostics.solver_iterations, 0u);
  EXPECT_LT(r.availability_diagnostics.residual, 1e-6);
  EXPECT_GE(r.wall_time_seconds, 0.0);

  // Lower layer: one diagnostics entry per spec'd role, each a real solve.
  ASSERT_EQ(r.aggregation_diagnostics.size(), 4u);
  for (const auto& [role, diag] : r.aggregation_diagnostics) {
    EXPECT_GT(diag.tangible_states, 1u) << ent::to_string(role);
    EXPECT_GT(diag.solver_iterations, 0u) << ent::to_string(role);
    EXPECT_TRUE(diag.converged) << ent::to_string(role);
  }
  EXPECT_GT(r.total_solver_iterations(), r.availability_diagnostics.solver_iterations);
}

TEST(Session, ExplicitCadenceMustBePositive) {
  // The memoization cache is keyed by double: NaN or non-positive keys must
  // be rejected up front (NaN would silently alias an arbitrary cache entry).
  const core::Session session(core::Scenario::paper_case_study());
  EXPECT_THROW((void)session.aggregated_rates(0.0), std::invalid_argument);
  EXPECT_THROW((void)session.aggregated_rates(-720.0), std::invalid_argument);
  EXPECT_THROW((void)session.evaluate(ent::example_network_design(), std::nan("")),
               std::invalid_argument);
}

TEST(Session, MemoizesAggregationsPerRoleAndInterval) {
  const core::Session session(core::Scenario::paper_case_study());
  const auto& first = session.aggregated_rates(720.0);
  const auto& second = session.aggregated_rates(720.0);
  EXPECT_EQ(&first, &second);  // same cached object
  const auto& weekly = session.aggregated_rates(168.0);
  EXPECT_NE(&first, &weekly);
  // Faster cadence -> higher equivalent patch rate.
  EXPECT_GT(weekly.at(ent::ServerRole::kApp).lambda_eq,
            first.at(ent::ServerRole::kApp).lambda_eq);
}

TEST(Session, ScheduleSweepOrdersScheduleMajor) {
  const core::Scenario scenario = core::Scenario::paper_case_study()
                                      .with_designs({ent::RedundancyDesign{{1, 1, 1, 1}},
                                                     ent::RedundancyDesign{{1, 1, 2, 1}}})
                                      .with_patch_schedule({720.0, 168.0});
  const core::Session session(scenario);
  const auto reports = session.evaluate_all();
  ASSERT_EQ(reports.size(), 4u);
  EXPECT_DOUBLE_EQ(reports[0].patch_interval_hours, 720.0);
  EXPECT_DOUBLE_EQ(reports[1].patch_interval_hours, 720.0);
  EXPECT_DOUBLE_EQ(reports[2].patch_interval_hours, 168.0);
  EXPECT_DOUBLE_EQ(reports[3].patch_interval_hours, 168.0);
  // Monthly beats weekly on COA for the same design.
  EXPECT_GT(reports[0].coa, reports[2].coa);
  EXPECT_GT(reports[1].coa, reports[3].coa);
}

TEST(Session, ParallelBatchMatchesSerialBatch) {
  core::EngineOptions parallel;
  parallel.parallel = true;
  parallel.threads = 4;
  const core::Session serial(core::Scenario::paper_case_study());
  const core::Session threaded(core::Scenario::paper_case_study().with_engine(parallel));

  const auto a = serial.evaluate_all();
  const auto b = threaded.evaluate_all();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].design, b[i].design);
    EXPECT_DOUBLE_EQ(a[i].coa, b[i].coa);
    EXPECT_DOUBLE_EQ(a[i].after_patch.attack_success_probability,
                     b[i].after_patch.attack_success_probability);
  }
}

TEST(Session, ParallelScheduleSweepMatchesSerial) {
  // Multi-cadence + parallel exercises the worker-pool HARM priming (every
  // design appears in two jobs).
  core::EngineOptions parallel;
  parallel.parallel = true;
  parallel.threads = 4;
  const core::Scenario base = core::Scenario::paper_case_study().with_patch_schedule({720.0, 168.0});
  const core::Session serial(base);
  const core::Session threaded(core::Scenario(base).with_engine(parallel));

  const auto a = serial.evaluate_all();
  const auto b = threaded.evaluate_all();
  ASSERT_EQ(a.size(), 10u);
  ASSERT_EQ(b.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].design, b[i].design);
    EXPECT_DOUBLE_EQ(a[i].patch_interval_hours, b[i].patch_interval_hours);
    EXPECT_DOUBLE_EQ(a[i].coa, b[i].coa);
  }
}

// ---------- satellite APIs on top of the Session --------------------------------

TEST(Report, EvalReportJsonCarriesDiagnostics) {
  const core::Session session(core::Scenario::paper_case_study());
  const auto reports = session.evaluate_all();
  std::ostringstream out;
  core::write_json(out, reports);
  const std::string json = out.str();

  EXPECT_NE(json.find("\"patch_interval_hours\":720"), std::string::npos);
  EXPECT_NE(json.find("\"diagnostics\":{\"converged\":true"), std::string::npos);
  EXPECT_NE(json.find("\"availability\":"), std::string::npos);
  EXPECT_NE(json.find("\"aggregation\":{\"DNS\":"), std::string::npos);
  EXPECT_NE(json.find("\"iterations\":"), std::string::npos);
  EXPECT_NE(json.find("\"residual\":"), std::string::npos);
  // Structurally balanced.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'), std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['), std::count(json.begin(), json.end(), ']'));
}

TEST(SessionOverloads, SensitivityMatchesLegacyForm) {
  const core::Session session(core::Scenario::paper_case_study());
  const auto via_session = core::coa_sensitivity(session, ent::example_network_design());
  const auto legacy =
      core::coa_sensitivity(ent::example_network_design(), session.aggregated_rates());
  ASSERT_EQ(via_session.size(), legacy.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(via_session[i].parameter, legacy[i].parameter);
    EXPECT_DOUBLE_EQ(via_session[i].base_value, legacy[i].base_value);
    EXPECT_DOUBLE_EQ(via_session[i].elasticity, legacy[i].elasticity);
  }
}

TEST(SessionOverloads, CampaignMatchesLegacyForm) {
  const core::Session session(core::Scenario::paper_case_study());
  const auto stages = core::severity_banded_campaign();
  const auto via_session = core::evaluate_campaign(session, ent::example_network_design(), stages);
  const auto legacy =
      core::evaluate_campaign(ent::example_network_design(), ent::paper_server_specs(),
                              ent::ReachabilityPolicy::three_tier(), stages);
  ASSERT_EQ(via_session.size(), legacy.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(via_session[i].stage, legacy[i].stage);
    EXPECT_EQ(via_session[i].vulnerabilities_patched, legacy[i].vulnerabilities_patched);
    EXPECT_DOUBLE_EQ(via_session[i].coa, legacy[i].coa);
    EXPECT_DOUBLE_EQ(via_session[i].security.attack_success_probability,
                     legacy[i].security.attack_success_probability);
  }
}

TEST(SessionOverloads, EscalateStarvedSolvesInsteadOfUsingThem) {
  // Campaign stages and elasticities carry no diagnostics, so under a
  // starved solver their Session overloads must throw even though the
  // session itself is configured to surface divergence quietly.
  core::EngineOptions starved;
  starved.steady_state.max_iterations = 1;
  const core::Session session(core::Scenario::paper_case_study().with_engine(starved));
  EXPECT_THROW((void)core::coa_sensitivity(session, ent::example_network_design()),
               std::runtime_error);
  EXPECT_THROW((void)core::evaluate_campaign(session, ent::example_network_design(),
                                             core::severity_banded_campaign()),
               std::runtime_error);
}

// ---------- deprecated shim equivalence -----------------------------------------

TEST(EvaluatorShim, PaperCaseStudyNumbersIdenticalToSession) {
  const core::Evaluator shim = core::Evaluator::paper_case_study();
  const core::Session session(core::Scenario::paper_case_study());

  const auto old_evals = shim.evaluate_all(ent::paper_designs());
  const auto new_reports = session.evaluate_all();
  ASSERT_EQ(old_evals.size(), new_reports.size());
  for (std::size_t i = 0; i < old_evals.size(); ++i) {
    EXPECT_EQ(old_evals[i].design, new_reports[i].design);
    EXPECT_DOUBLE_EQ(old_evals[i].coa, new_reports[i].coa);
    EXPECT_DOUBLE_EQ(old_evals[i].before_patch.attack_success_probability,
                     new_reports[i].before_patch.attack_success_probability);
    EXPECT_DOUBLE_EQ(old_evals[i].after_patch.attack_success_probability,
                     new_reports[i].after_patch.attack_success_probability);
    EXPECT_DOUBLE_EQ(old_evals[i].before_patch.attack_impact,
                     new_reports[i].before_patch.attack_impact);
    EXPECT_EQ(old_evals[i].after_patch.exploitable_vulnerabilities,
              new_reports[i].after_patch.exploitable_vulnerabilities);
    EXPECT_EQ(old_evals[i].after_patch.attack_paths, new_reports[i].after_patch.attack_paths);
    EXPECT_EQ(old_evals[i].after_patch.entry_points, new_reports[i].after_patch.entry_points);
  }

  // Table V rates agree too.
  const auto& old_rates = shim.aggregated_rates();
  const auto& new_rates = session.aggregated_rates();
  ASSERT_EQ(old_rates.size(), new_rates.size());
  for (const auto& [role, r] : old_rates) {
    EXPECT_DOUBLE_EQ(r.lambda_eq, new_rates.at(role).lambda_eq) << ent::to_string(role);
    EXPECT_DOUBLE_EQ(r.mu_eq, new_rates.at(role).mu_eq) << ent::to_string(role);
  }
}

TEST(EvaluatorShim, AccessorsForwardToTheScenario) {
  const core::Evaluator shim = core::Evaluator::paper_case_study(168.0);
  EXPECT_DOUBLE_EQ(shim.patch_interval_hours(), 168.0);
  EXPECT_EQ(shim.specs().size(), 4u);
}

TEST(EvaluatorShim, StaysCopyableLikeTheOriginal) {
  const core::Evaluator shim = core::Evaluator::paper_case_study(168.0);
  const core::Evaluator copy = shim;  // the original Evaluator was copyable
  EXPECT_DOUBLE_EQ(copy.patch_interval_hours(), 168.0);
  EXPECT_EQ(&copy.aggregated_rates(), &shim.aggregated_rates());  // shared session
}

// ---------------------------------------------------------------------------
// EvalBackend::kSimulation: the Monte-Carlo evaluation path through Session.
// ---------------------------------------------------------------------------

namespace {

core::Scenario simulation_scenario(std::uint64_t seed, unsigned threads = 1) {
  core::EngineOptions engine;
  engine.backend = core::EvalBackend::kSimulation;
  engine.simulation.seed = seed;
  engine.simulation.replications = 16;
  engine.simulation.warmup_hours = 1000.0;
  engine.simulation.horizon_hours = 8000.0;
  engine.simulation.threads = threads;
  return core::Scenario::paper_case_study().with_engine(engine);
}

}  // namespace

TEST(SessionBackend, SimulationBackendAgreesWithAnalytic) {
  const ent::RedundancyDesign design{{1, 2, 2, 1}};
  const core::Session analytic(core::Scenario::paper_case_study());
  const core::EvalReport analytic_report = analytic.evaluate(design);
  EXPECT_EQ(analytic_report.backend, core::EvalBackend::kAnalytic);
  EXPECT_DOUBLE_EQ(analytic_report.coa_half_width_95, 0.0);

  const core::Session simulated(simulation_scenario(4242));
  const core::EvalReport sim_report = simulated.evaluate(design);
  EXPECT_EQ(sim_report.backend, core::EvalBackend::kSimulation);
  EXPECT_GT(sim_report.coa_half_width_95, 0.0);
  EXPECT_GT(sim_report.simulation_diagnostics.events_fired, 0u);
  EXPECT_EQ(sim_report.simulation_diagnostics.replications, 16u);
  EXPECT_TRUE(sim_report.converged());  // lower layer analytic + no upper solve

  // Cross-backend agreement at a generous 4-sigma (single fixed seed).
  EXPECT_TRUE(sim_report.agrees_with(analytic_report, 4.0));
  EXPECT_TRUE(analytic_report.agrees_with(sim_report, 4.0));
  EXPECT_NEAR(sim_report.coa, analytic_report.coa, 0.01);

  // The HARM (security) side is backend-independent.
  EXPECT_DOUBLE_EQ(sim_report.before_patch.attack_impact,
                   analytic_report.before_patch.attack_impact);
  EXPECT_EQ(sim_report.after_patch.exploitable_vulnerabilities,
            analytic_report.after_patch.exploitable_vulnerabilities);
}

TEST(SessionBackend, SimulationEstimatesAreThreadCountInvariant) {
  const ent::RedundancyDesign design{{2, 2, 2, 2}};
  const core::Session serial(simulation_scenario(99, 1));
  const core::Session threaded(simulation_scenario(99, 6));
  const core::EvalReport a = serial.evaluate(design);
  const core::EvalReport b = threaded.evaluate(design);
  EXPECT_DOUBLE_EQ(a.coa, b.coa);
  EXPECT_DOUBLE_EQ(a.coa_half_width_95, b.coa_half_width_95);
  EXPECT_EQ(a.simulation_diagnostics.events_fired, b.simulation_diagnostics.events_fired);
}

TEST(SessionBackend, AgreesWithSemantics) {
  core::EvalReport a;
  a.coa = 0.995;
  core::EvalReport b;
  b.coa = 0.995 + 1e-12;
  // Two analytic reports: round-off tolerance only.
  EXPECT_TRUE(a.agrees_with(b));
  b.coa = 0.996;
  EXPECT_FALSE(a.agrees_with(b));

  // One simulated report: its CI decides, rescaled by z.
  b.backend = core::EvalBackend::kSimulation;
  b.coa_half_width_95 = 0.0015;
  EXPECT_TRUE(a.agrees_with(b));
  EXPECT_TRUE(b.agrees_with(a));
  EXPECT_FALSE(a.agrees_with(b, 1.0));             // 1-sigma: 0.00077 < 0.001
  EXPECT_TRUE(a.agrees_with(b, 1.31));             // just above the 0.001 gap
  // Two simulated reports combine in quadrature.
  a.backend = core::EvalBackend::kSimulation;
  a.coa_half_width_95 = 0.0015;
  EXPECT_TRUE(a.agrees_with(b, 1.0));  // sqrt(2)*0.00077 > 0.001
}

TEST(SessionBackend, SimulationOptionsAreValidatedAtEvaluate) {
  core::EngineOptions engine;
  engine.backend = core::EvalBackend::kSimulation;
  engine.simulation.replications = 0;
  const core::Session session(core::Scenario::paper_case_study().with_engine(engine));
  EXPECT_THROW((void)session.evaluate(ent::RedundancyDesign{}), std::invalid_argument);
}

// ---------- memoization audit (backend / simulation-option aliasing) ---------

// The Session caches are keyed per (role, patch-interval) for Table V
// aggregations and per design-counts for HARM metrics — deliberately WITHOUT
// EngineOptions::backend or the simulation options in the key.  That is
// sound for exactly one reason: both caches hold backend-INDEPENDENT inputs
// (the lower-layer aggregation is analytic under either backend, and HARM
// never touches the solver), and a Session's EngineOptions are immutable
// after construction (the Scenario is copied in), so no entry computed under
// one backend can ever be served to a request with different engine options
// within the same Session, and nothing COA-valued (the backend-dependent
// output) is cached at all.  This suite is the regression guard on that
// audit: if someone starts caching per-evaluation results, or lets a
// Session's engine mutate, the assertions below catch the aliasing.
TEST(SessionMemoizationAudit, BackendsNeverShareCoaResultsOnlyAnalyticInputs) {
  core::EngineOptions sim_engine;
  sim_engine.backend = core::EvalBackend::kSimulation;
  sim_engine.simulation.replications = 24;
  sim_engine.simulation.warmup_hours = 500.0;
  sim_engine.simulation.horizon_hours = 4000.0;
  sim_engine.simulation.seed = 321;

  const core::Session analytic(core::Scenario::paper_case_study());
  const core::Session simulated(core::Scenario::paper_case_study().with_engine(sim_engine));

  // Interleave evaluations across the two sessions; every report must carry
  // its own session's backend signature regardless of evaluation order.
  const core::EvalReport s1 = simulated.evaluate(ent::example_network_design());
  const core::EvalReport a1 = analytic.evaluate(ent::example_network_design());
  const core::EvalReport s2 = simulated.evaluate(ent::example_network_design());
  const core::EvalReport a2 = analytic.evaluate(ent::example_network_design());

  // Analytic reports: deterministic COA from a real upper-layer solve, no CI.
  EXPECT_EQ(a1.backend, core::EvalBackend::kAnalytic);
  EXPECT_DOUBLE_EQ(a1.coa, a2.coa);
  EXPECT_EQ(a1.coa_half_width_95, 0.0);
  EXPECT_GT(a1.availability_diagnostics.tangible_states, 0u);
  EXPECT_EQ(a1.simulation_diagnostics.replications, 0u);

  // Simulated reports: replication estimate with a CI, NO analytic
  // upper-layer solve; deterministic for the fixed seed.
  EXPECT_EQ(s1.backend, core::EvalBackend::kSimulation);
  EXPECT_DOUBLE_EQ(s1.coa, s2.coa);
  EXPECT_GT(s1.coa_half_width_95, 0.0);
  EXPECT_EQ(s1.availability_diagnostics.tangible_states, 0u);
  EXPECT_EQ(s1.simulation_diagnostics.replications, 24u);

  // The estimates genuinely differ (a cache serving one for the other would
  // make them equal), while agreeing statistically.
  EXPECT_NE(s1.coa, a1.coa);
  EXPECT_TRUE(s1.agrees_with(a1, 4.0));

  // What IS shared across backends is the backend-independent lower layer:
  // identical Table V rates from both sessions' caches.
  const auto& analytic_rates = analytic.aggregated_rates();
  const auto& sim_rates = simulated.aggregated_rates();
  for (const auto& [role, rate] : analytic_rates) {
    EXPECT_DOUBLE_EQ(rate.lambda_eq, sim_rates.at(role).lambda_eq);
    EXPECT_DOUBLE_EQ(rate.mu_eq, sim_rates.at(role).mu_eq);
  }
}

TEST(SessionMemoizationAudit, TransientAndSteadyShareOnlyTheAggregationCache) {
  // Same invariant on the evaluate_transient path: the transient curve is
  // computed fresh per call (only aggregations are memoized), so transient
  // reports through different backends stay backend-true.
  core::EngineOptions transient_sim;
  transient_sim.backend = core::EvalBackend::kSimulation;
  transient_sim.time_points = {0.0, 2.0, 12.0};
  transient_sim.simulation.replications = 48;
  transient_sim.simulation.seed = 9;

  core::EngineOptions transient_analytic;
  transient_analytic.time_points = {0.0, 2.0, 12.0};

  const core::Session analytic(core::Scenario::paper_case_study().with_engine(transient_analytic));
  const core::Session simulated(core::Scenario::paper_case_study().with_engine(transient_sim));
  const core::EvalReport s = simulated.evaluate_transient(ent::example_network_design());
  const core::EvalReport a = analytic.evaluate_transient(ent::example_network_design());

  EXPECT_EQ(s.backend, core::EvalBackend::kSimulation);
  EXPECT_EQ(a.backend, core::EvalBackend::kAnalytic);
  EXPECT_FALSE(s.transient.half_width_95.empty());
  EXPECT_TRUE(a.transient.half_width_95.empty());
  EXPECT_GT(s.simulation_diagnostics.events_fired, 0u);
  EXPECT_EQ(a.simulation_diagnostics.events_fired, 0u);
  EXPECT_GT(a.transient_diagnostics.matvec_count, 0u);
  EXPECT_EQ(s.transient_diagnostics.matvec_count, 0u);
}

TEST(SessionMemoizationAudit, LumpedAndFlatSessionsStayEngineTrue) {
  // EngineOptions::lumping participates in per-session state the same way
  // the backend does: interleaved lumped and flat sessions must each report
  // their own engine's diagnostics (the quotient's tangible/flat_states
  // split vs the ordinary flat solve) while sharing only the
  // backend-independent lower-layer aggregation — and their COAs must agree
  // to solver tolerance, because the lumping is exact.
  core::EngineOptions lumped_engine;
  lumped_engine.lumping = true;

  const core::Session flat(core::Scenario::paper_case_study());
  const core::Session lumped(core::Scenario::paper_case_study().with_engine(lumped_engine));

  const core::EvalReport l1 = lumped.evaluate(ent::example_network_design());
  const core::EvalReport f1 = flat.evaluate(ent::example_network_design());
  const core::EvalReport l2 = lumped.evaluate(ent::example_network_design());
  const core::EvalReport f2 = flat.evaluate(ent::example_network_design());

  // Flat reports: the joint 36-state chain, no avoided-space annotation.
  EXPECT_EQ(f1.availability_diagnostics.tangible_states, 36u);
  EXPECT_EQ(f1.availability_diagnostics.flat_states, 0u);
  EXPECT_DOUBLE_EQ(f1.coa, f2.coa);

  // Lumped reports: per-tier chains (2+3+3+2 = 10 states) with the avoided
  // joint space recorded — the signature a shared cache would destroy.
  EXPECT_EQ(l1.availability_diagnostics.tangible_states, 10u);
  EXPECT_EQ(l1.availability_diagnostics.flat_states, 36u);
  EXPECT_DOUBLE_EQ(l1.coa, l2.coa);
  EXPECT_TRUE(l1.converged());

  // Exactness: same COA to solver tolerance, through genuinely different
  // solves (different state counts prove no result sharing happened).
  EXPECT_NEAR(l1.coa, f1.coa, 1e-9);

  // The lower layer IS shared: identical Table V rates from both caches.
  const auto& flat_rates = flat.aggregated_rates();
  for (const auto& [role, agg] : lumped.aggregated_rates()) {
    EXPECT_DOUBLE_EQ(agg.lambda_eq, flat_rates.at(role).lambda_eq);
    EXPECT_DOUBLE_EQ(agg.mu_eq, flat_rates.at(role).mu_eq);
  }
}

TEST(SessionMemoizationAudit, LumpedTransientMatchesFlatTransient) {
  core::EngineOptions flat_engine;
  flat_engine.time_points = {0.5, 2.0, 12.0, 24.0};
  flat_engine.initial_down = {{ent::ServerRole::kWeb, 1}, {ent::ServerRole::kApp, 1}};
  core::EngineOptions lumped_engine = flat_engine;
  lumped_engine.lumping = true;

  const core::Session flat(core::Scenario::paper_case_study().with_engine(flat_engine));
  const core::Session lumped(core::Scenario::paper_case_study().with_engine(lumped_engine));
  const core::EvalReport f = flat.evaluate_transient(ent::example_network_design());
  const core::EvalReport l = lumped.evaluate_transient(ent::example_network_design());

  ASSERT_EQ(f.transient.coa.size(), l.transient.coa.size());
  for (std::size_t j = 0; j < f.transient.coa.size(); ++j) {
    EXPECT_NEAR(f.transient.coa[j], l.transient.coa[j], 1e-9) << "point " << j;
  }
  EXPECT_NEAR(f.transient.accumulated_coa_hours, l.transient.accumulated_coa_hours, 1e-8);
  EXPECT_EQ(l.availability_diagnostics.flat_states, 36u);
  EXPECT_EQ(f.availability_diagnostics.flat_states, 0u);
  EXPECT_GT(l.transient_diagnostics.matvec_count, 0u);
}

// ---------- memoization-key audits (service-layer cache contracts) ------------
//
// The evaluation service (src/service) fronts Session with a content-hashed
// result cache, so the Session-level memoization keys below are load-bearing
// for cache correctness, not just for performance.  Each audit pins one key
// contract cited in session.hpp.

namespace {

bool audit_same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

}  // namespace

TEST(SessionMemoizationAudit, CadenceKeyCanonicalizesAndUsesExactBits) {
  // The aggregation cache key is the canonical_interval() double: NaN and
  // non-positive cadences (including -0.0, whose bit pattern would alias
  // +0.0 under operator<) are rejected before they can reach the std::map.
  EXPECT_THROW((void)core::Session::canonical_interval(std::nan("")), std::invalid_argument);
  EXPECT_THROW((void)core::Session::canonical_interval(0.0), std::invalid_argument);
  EXPECT_THROW((void)core::Session::canonical_interval(-0.0), std::invalid_argument);
  EXPECT_THROW((void)core::Session::canonical_interval(-720.0), std::invalid_argument);
  // Positive cadences pass through with their exact bits.
  EXPECT_TRUE(audit_same_bits(core::Session::canonical_interval(720.0), 720.0));

  // Exact-bits contract on the live cache: the same bit pattern shares one
  // memoized entry, while a one-ulp-different cadence is a distinct key
  // (no epsilon collapsing — two "almost equal" schedules are two results).
  const core::Session session(core::Scenario::paper_case_study());
  const double month = 720.0;
  const double month_plus_ulp = std::nextafter(month, 1000.0);
  const auto* first = &session.aggregated_rates(month);
  EXPECT_EQ(first, &session.aggregated_rates(month));
  EXPECT_NE(first, &session.aggregated_rates(month_plus_ulp));
}

TEST(SessionMemoizationAudit, HarmMetricsDependOnDesignCountsAlone) {
  // Pinned by the harm_cache_ comment in session.hpp: the HARM key is the
  // design's counts array ALONE.  Sound because the patch cadence never
  // reaches the HARM layer and the one EngineOptions field that does (the
  // harm_paths enumeration cap) is Session-immutable — so the same design
  // evaluated at different cadences must produce bit-identical security
  // metrics.
  const core::Session session(core::Scenario::paper_case_study());
  const core::EvalReport monthly = session.evaluate(ent::example_network_design(), 720.0);
  const core::EvalReport weekly = session.evaluate(ent::example_network_design(), 168.0);
  EXPECT_TRUE(audit_same_bits(monthly.before_patch.attack_impact,
                              weekly.before_patch.attack_impact));
  EXPECT_TRUE(audit_same_bits(monthly.before_patch.attack_success_probability,
                              weekly.before_patch.attack_success_probability));
  EXPECT_TRUE(audit_same_bits(monthly.after_patch.attack_impact,
                              weekly.after_patch.attack_impact));
  EXPECT_TRUE(audit_same_bits(monthly.after_patch.attack_success_probability,
                              weekly.after_patch.attack_success_probability));
  EXPECT_EQ(monthly.before_patch.attack_paths, weekly.before_patch.attack_paths);
  EXPECT_EQ(monthly.before_patch.entry_points, weekly.before_patch.entry_points);
  // The key DOES discriminate on counts: a different design changes the
  // attack surface (more replicas, more paths/entry points into the HARM).
  ent::RedundancyDesign thinner = ent::example_network_design();
  thinner.counts[0] = thinner.counts[0] > 1 ? 1u : 2u;
  const core::EvalReport other = session.evaluate(thinner, 720.0);
  EXPECT_TRUE(monthly.before_patch.attack_paths != other.before_patch.attack_paths ||
              monthly.before_patch.entry_points != other.before_patch.entry_points ||
              !audit_same_bits(monthly.before_patch.attack_impact,
                               other.before_patch.attack_impact));
}

TEST(SessionMemoizationAudit, InterleavedSessionsKeepTheirWarmStructures) {
  // Regression for the per-Session workspace refactor: solver workspaces
  // used to be function-static thread_locals SHARED by every Session, so
  // two Sessions interleaving transient solves on one thread thrashed each
  // other's cached CSR structure (zero reuses, a rebuild per call).  Each
  // (Session, thread) pair now owns its slot, so the A/B/A/B interleave
  // below must still hit each Session's value-refresh fast path.
  core::EngineOptions engine;
  engine.time_points = {0.5, 2.0, 24.0};
  const core::Session first(core::Scenario::paper_case_study().with_engine(engine));
  const core::Session second(core::Scenario::paper_case_study().with_engine(engine));
  for (int round = 0; round < 2; ++round) {
    (void)first.evaluate_transient(ent::example_network_design());
    (void)second.evaluate_transient(ent::example_network_design());
  }
  const core::Session::WorkspaceCounters a = first.workspace_counters();
  const core::Session::WorkspaceCounters b = second.workspace_counters();
  EXPECT_EQ(a.thread_slots, 1u);
  EXPECT_EQ(b.thread_slots, 1u);
  EXPECT_EQ(a.transient_structure_builds, 1u);
  EXPECT_EQ(b.transient_structure_builds, 1u);
  EXPECT_GE(a.transient_structure_reuses, 1u);
  EXPECT_GE(b.transient_structure_reuses, 1u);
}
