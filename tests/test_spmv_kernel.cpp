// Tests for the SIMD sparse-kernel layer (linalg::SpmvKernel) and its
// TransientSolver integration: scalar-oracle agreement (CsrMatrix::
// left_multiply is the reference, per docs/ARCHITECTURE.md §12) on paper
// nets and seeded random matrices, fused-step semantics, panel-vs-sequential
// equivalence, the structure-reuse contract, and the threaded panel
// reductions' bit-identity across thread counts.

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "patchsec/avail/aggregation.hpp"
#include "patchsec/avail/network_srn.hpp"
#include "patchsec/ctmc/transient_solver.hpp"
#include "patchsec/enterprise/network.hpp"
#include "patchsec/linalg/spmv_kernel.hpp"
#include "patchsec/petri/reachability.hpp"

namespace av = patchsec::avail;
namespace ct = patchsec::ctmc;
namespace ent = patchsec::enterprise;
namespace la = patchsec::linalg;

namespace {

// Documented agreement bound of the SIMD paths against the scalar oracle:
// identical per-row accumulation order, but the SIMD lanes use explicit FMA
// (and the panel kernel a different association for reductions), so results
// differ by round-off only.
constexpr double kEps = 1e-13;

void expect_near_rel(const std::vector<double>& got, const std::vector<double>& want,
                     double eps, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double scale = std::max(1.0, std::abs(want[i]));
    EXPECT_NEAR(got[i], want[i], eps * scale) << what << " index " << i;
  }
}

const std::map<ent::ServerRole, av::AggregatedRates>& rates() {
  static const auto r = [] {
    std::map<ent::ServerRole, av::AggregatedRates> out;
    for (const auto& [role, spec] : ent::paper_server_specs()) {
      out.emplace(role, av::aggregate_server(spec));
    }
    return out;
  }();
  return r;
}

/// Upper-layer generator of a paper design (the matrix the uniformization
/// hot path actually sweeps).
la::CsrMatrix paper_generator(const ent::RedundancyDesign& design) {
  const av::NetworkSrn net = av::build_network_srn(design, rates());
  const auto graph = patchsec::petri::build_reachability_graph(net.model);
  return graph.chain.generator();
}

/// Seeded random CSR with a given per-row density profile; `dense_row` and
/// `empty_row` force the ragged edge cases the SELL padding must absorb.
la::CsrMatrix random_csr(std::size_t n, double density, std::uint32_t seed,
                         bool dense_row = false, bool empty_row = false) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> value(-2.0, 2.0);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::vector<la::Triplet> entries;
  for (std::size_t r = 0; r < n; ++r) {
    if (empty_row && r == n / 2) continue;
    const bool dense = dense_row && r == n / 3;
    for (std::size_t c = 0; c < n; ++c) {
      if (dense || coin(rng) < density) entries.push_back({r, c, value(rng)});
    }
  }
  return la::CsrMatrix(n, n, std::move(entries));
}

std::vector<double> random_vector(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> value(-1.0, 1.0);
  std::vector<double> x(n);
  for (double& v : x) v = value(rng);
  return x;
}

void expect_kernel_matches_oracle(const la::CsrMatrix& a, std::uint32_t seed) {
  la::SpmvKernel kernel;
  kernel.compile(a);
  EXPECT_GE(kernel.padding_ratio(), 1.0);
  const std::vector<double> x = random_vector(a.rows(), seed);
  std::vector<double> want;
  std::vector<double> got;
  a.left_multiply(x, want);
  kernel.left_multiply(x, got);
  expect_near_rel(got, want, kEps, "kernel vs CsrMatrix::left_multiply");
}

ct::Ctmc up_down(double l, double mu) {
  ct::Ctmc c;
  c.add_states(2);
  c.add_transition(0, 1, l);
  c.add_transition(1, 0, mu);
  return c;
}

/// A birth-death chain big enough that the SIMD lanes and the panel all see
/// multiple chunks.
ct::Ctmc birth_death(std::size_t n, double up, double down) {
  ct::Ctmc c;
  c.add_states(n);
  for (std::size_t s = 0; s + 1 < n; ++s) {
    c.add_transition(s, s + 1, up * static_cast<double>(n - s));
    c.add_transition(s + 1, s, down * static_cast<double>(s + 1));
  }
  return c;
}

}  // namespace

// ---------------------------------------------------------------------------
// Scalar-oracle agreement
// ---------------------------------------------------------------------------

TEST(SpmvKernel, MatchesOracleOnPaperNets) {
  expect_kernel_matches_oracle(paper_generator(ent::example_network_design()), 11);
  expect_kernel_matches_oracle(paper_generator(ent::RedundancyDesign{{1, 1, 1, 1}}), 12);
  expect_kernel_matches_oracle(paper_generator(ent::RedundancyDesign{{1, 1, 2, 1}}), 13);
  expect_kernel_matches_oracle(paper_generator(ent::RedundancyDesign{{2, 2, 2, 2}}), 14);
}

TEST(SpmvKernel, MatchesOracleOnSeededRandomMatrices) {
  for (std::uint32_t seed = 1; seed <= 8; ++seed) {
    expect_kernel_matches_oracle(random_csr(64 + seed * 7, 0.08, seed), seed * 100);
  }
}

TEST(SpmvKernel, HandlesEmptyAndDenseRows) {
  expect_kernel_matches_oracle(random_csr(50, 0.1, 42, /*dense_row=*/true), 1);
  expect_kernel_matches_oracle(random_csr(50, 0.1, 43, false, /*empty_row=*/true), 2);
  expect_kernel_matches_oracle(random_csr(50, 0.1, 44, true, true), 3);
}

TEST(SpmvKernel, OneStateMatrix) {
  la::CsrMatrix a(1, 1, {{0, 0, 0.5}});
  la::SpmvKernel kernel;
  kernel.compile(a);
  std::vector<double> y;
  kernel.left_multiply({3.0}, y);
  ASSERT_EQ(y.size(), 1u);
  EXPECT_DOUBLE_EQ(y[0], 1.5);
}

TEST(SpmvKernel, NonSquareShapes) {
  // 3x9 and 9x3: the transpose/SELL bookkeeping must keep the two extents
  // straight (x spans rows, y spans cols).
  for (std::uint32_t seed : {7u, 8u}) {
    const std::size_t rows = seed == 7 ? 3 : 9;
    const std::size_t cols = seed == 7 ? 9 : 3;
    std::vector<la::Triplet> entries;
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> value(0.5, 1.5);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = r % 2; c < cols; c += 2) entries.push_back({r, c, value(rng)});
    }
    const la::CsrMatrix a(rows, cols, std::move(entries));
    la::SpmvKernel kernel;
    kernel.compile(a);
    const std::vector<double> x = random_vector(rows, seed);
    std::vector<double> want;
    std::vector<double> got;
    a.left_multiply(x, want);
    kernel.left_multiply(x, got);
    expect_near_rel(got, want, kEps, "non-square");
  }
}

TEST(SpmvKernel, SparseVariantOfCsrMatrixMatchesDense) {
  const la::CsrMatrix a = random_csr(40, 0.15, 77);
  std::vector<double> x = random_vector(40, 78);
  for (std::size_t i = 0; i < x.size(); i += 3) x[i] = 0.0;  // sparse-ish input
  std::vector<double> dense;
  std::vector<double> sparse;
  a.left_multiply(x, dense);
  a.left_multiply_sparse(x, sparse);
  ASSERT_EQ(dense.size(), sparse.size());
  for (std::size_t i = 0; i < dense.size(); ++i) {
    EXPECT_DOUBLE_EQ(dense[i], sparse[i]) << i;
  }
}

// ---------------------------------------------------------------------------
// Fused step semantics
// ---------------------------------------------------------------------------

TEST(SpmvKernel, FusedStepMatchesUnfusedPieces) {
  const la::CsrMatrix a = random_csr(60, 0.1, 5);
  la::SpmvKernel kernel;
  kernel.compile(a);
  const std::vector<double> x = random_vector(60, 6);
  const std::vector<double> r = random_vector(60, 7);
  std::vector<double> accum = random_vector(60, 8);
  std::vector<double> accum_ref = accum;
  const double weight = 0.37;

  std::vector<double> y(60);
  const double dot = kernel.step(x.data(), y.data(), weight, accum.data(), r.data());

  std::vector<double> y_ref;
  a.left_multiply(x, y_ref);
  double dot_ref = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    accum_ref[i] += weight * x[i];
    dot_ref += x[i] * r[i];
  }
  expect_near_rel(y, y_ref, kEps, "fused matvec");
  expect_near_rel(accum, accum_ref, kEps, "fused accumulate");
  EXPECT_NEAR(dot, dot_ref, kEps * std::max(1.0, std::abs(dot_ref)));

  // reduce() = the same step without the matvec; weight 0 must leave accum
  // bitwise untouched (the below-window terms of the expansion).
  std::vector<double> accum2 = accum;
  const double dot2 = kernel.reduce(x.data(), 0.0, accum2.data(), r.data());
  EXPECT_DOUBLE_EQ(dot2, dot);
  for (std::size_t i = 0; i < accum.size(); ++i) EXPECT_EQ(accum2[i], accum[i]) << i;
}

TEST(SpmvKernel, FusedStepNullArguments) {
  const la::CsrMatrix a = random_csr(30, 0.2, 9);
  la::SpmvKernel kernel;
  kernel.compile(a);
  const std::vector<double> x = random_vector(30, 10);
  std::vector<double> y(30);
  // No accumulator, no rewards: plain matvec, dot contract returns 0.
  EXPECT_DOUBLE_EQ(kernel.step(x.data(), y.data(), 0.5, nullptr, nullptr), 0.0);
  std::vector<double> want;
  a.left_multiply(x, want);
  expect_near_rel(y, want, kEps, "step without fusion arguments");
}

// ---------------------------------------------------------------------------
// Multi-RHS panel
// ---------------------------------------------------------------------------

TEST(SpmvKernel, PanelMatchesSequentialSingleVector) {
  const la::CsrMatrix a = random_csr(70, 0.1, 21);
  la::SpmvKernel kernel;
  kernel.compile(a);
  for (std::size_t m : {1u, 2u, 3u, 4u, 7u, 8u, 9u, 16u}) {
    std::vector<double> panel(70 * m);
    std::vector<std::vector<double>> columns(m);
    for (std::size_t b = 0; b < m; ++b) {
      columns[b] = random_vector(70, static_cast<std::uint32_t>(300 + m * 10 + b));
      for (std::size_t s = 0; s < 70; ++s) panel[s * m + b] = columns[b][s];
    }
    std::vector<double> panel_out(70 * m);
    kernel.left_multiply_panel(panel.data(), panel_out.data(), m);
    for (std::size_t b = 0; b < m; ++b) {
      std::vector<double> want;
      kernel.left_multiply(columns[b], want);
      std::vector<double> got(70);
      for (std::size_t s = 0; s < 70; ++s) got[s] = panel_out[s * m + b];
      expect_near_rel(got, want, kEps, "panel column vs single-vector");
    }
  }
}

TEST(SpmvKernel, FusedPanelStepMatchesUnfusedPieces) {
  const la::CsrMatrix a = random_csr(40, 0.15, 31);
  la::SpmvKernel kernel;
  kernel.compile(a);
  const std::size_t m = 5;
  const std::vector<double> x = random_vector(40 * m, 32);
  const std::vector<double> r = random_vector(40, 33);
  std::vector<double> accum(40 * m, 0.25);
  std::vector<double> accum_ref = accum;
  std::vector<double> dots(m);
  std::vector<double> y(40 * m);
  const double weight = 0.61;
  kernel.step_panel(x.data(), y.data(), m, weight, accum.data(), r.data(), dots.data());

  std::vector<double> y_ref(40 * m);
  kernel.left_multiply_panel(x.data(), y_ref.data(), m);
  std::vector<double> dots_ref(m, 0.0);
  for (std::size_t s = 0; s < 40; ++s) {
    for (std::size_t b = 0; b < m; ++b) {
      accum_ref[s * m + b] += weight * x[s * m + b];
      dots_ref[b] += x[s * m + b] * r[s];
    }
  }
  expect_near_rel(y, y_ref, kEps, "fused panel matvec");
  expect_near_rel(accum, accum_ref, kEps, "fused panel accumulate");
  expect_near_rel(dots, dots_ref, kEps, "fused panel dots");
}

// ---------------------------------------------------------------------------
// Structure-reuse contract
// ---------------------------------------------------------------------------

TEST(SpmvKernel, StructureReuseRefreshesValuesWithoutRebuild) {
  la::CsrMatrix a = random_csr(48, 0.12, 51);
  la::SpmvKernel kernel;
  kernel.compile(a);
  EXPECT_EQ(kernel.structure_builds(), 1u);
  EXPECT_EQ(kernel.structure_reuses(), 0u);

  // Same sparsity, scaled values: the refresh path must serve it — and the
  // refreshed kernel must compute with the NEW values.
  std::vector<double> scaled = a.values();
  for (double& v : scaled) v *= 3.0;
  const la::CsrMatrix b = la::CsrMatrix::from_sorted(
      a.rows(), a.cols(), a.row_offsets(), a.col_indices(), std::move(scaled));
  kernel.compile(b);
  EXPECT_EQ(kernel.structure_builds(), 1u);
  EXPECT_EQ(kernel.structure_reuses(), 1u);

  const std::vector<double> x = random_vector(48, 52);
  std::vector<double> want;
  std::vector<double> got;
  b.left_multiply(x, want);
  kernel.left_multiply(x, got);
  expect_near_rel(got, want, kEps, "refreshed values");

  // A different sparsity pattern forces a rebuild.
  kernel.compile(random_csr(48, 0.2, 53));
  EXPECT_EQ(kernel.structure_builds(), 2u);
  EXPECT_EQ(kernel.structure_reuses(), 1u);
}

TEST(SpmvKernel, ErrorsOnMisuse) {
  la::SpmvKernel kernel;
  std::vector<double> y;
  EXPECT_THROW(kernel.left_multiply({1.0}, y), std::logic_error);
  EXPECT_THROW(kernel.compile(la::CsrMatrix()), std::invalid_argument);
  kernel.compile(random_csr(10, 0.3, 61));
  EXPECT_THROW(kernel.left_multiply(std::vector<double>(9, 0.0), y), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// TransientSolver integration: kAuto vs the kScalar reference trajectory
// ---------------------------------------------------------------------------

TEST(SpmvKernelTransient, AutoKernelMatchesScalarReference) {
  for (const ct::Ctmc& chain : {up_down(0.8, 2.5), birth_death(53, 0.4, 1.1)}) {
    const std::size_t n = chain.state_count();
    std::vector<double> initial(n, 0.0);
    initial[0] = 1.0;
    std::vector<double> rewards(n);
    for (std::size_t s = 0; s < n; ++s) rewards[s] = static_cast<double>(s) / double(n);
    const std::vector<double> grid{0.1, 0.5, 1.0, 2.0, 5.0};

    ct::TransientOptions scalar_options;
    scalar_options.kernel = ct::TransientOptions::Kernel::kScalar;
    ct::TransientSolver scalar_solver(scalar_options);
    scalar_solver.prepare(chain);
    std::vector<double> scalar_curve;
    const double scalar_acc = scalar_solver.reward_curve(initial, rewards, grid, scalar_curve);
    EXPECT_EQ(scalar_solver.diagnostics().kernel, "csr-scalar");
    EXPECT_EQ(scalar_solver.diagnostics().rhs_count, 1u);

    ct::TransientSolver auto_solver;  // kAuto is the default
    auto_solver.prepare(chain);
    std::vector<double> auto_curve;
    const double auto_acc = auto_solver.reward_curve(initial, rewards, grid, auto_curve);
    EXPECT_EQ(auto_solver.diagnostics().kernel,
              la::spmv_isa_name(la::spmv_dispatched_isa()));
    EXPECT_EQ(auto_solver.diagnostics().rhs_count, 1u);
    // Same matrix sweeps either way: the kernel changes arithmetic shape,
    // never the expansion.
    EXPECT_EQ(auto_solver.diagnostics().matvec_count,
              scalar_solver.diagnostics().matvec_count);

    expect_near_rel(auto_curve, scalar_curve, 1e-11, "kAuto vs kScalar curve");
    EXPECT_NEAR(auto_acc, scalar_acc, 1e-11 * std::max(1.0, std::abs(scalar_acc)));

    // Distributions agree too (the normalize step sees round-off-level
    // differences only).
    std::vector<double> pi_scalar;
    std::vector<double> pi_auto;
    scalar_solver.distribution_at(initial, 1.7, pi_scalar);
    auto_solver.distribution_at(initial, 1.7, pi_auto);
    expect_near_rel(pi_auto, pi_scalar, 1e-11, "kAuto vs kScalar distribution");
  }
}

TEST(SpmvKernelTransient, PanelCurveMatchesSequentialCurves) {
  const ct::Ctmc chain = birth_death(41, 0.6, 1.4);
  const std::size_t n = chain.state_count();
  std::vector<double> rewards(n);
  for (std::size_t s = 0; s < n; ++s) rewards[s] = 1.0 - static_cast<double>(s) / double(n);
  const std::vector<double> grid{0.25, 0.5, 1.0, 3.0};
  const std::size_t m = 6;
  std::vector<std::vector<double>> initials(m, std::vector<double>(n, 0.0));
  for (std::size_t b = 0; b < m; ++b) initials[b][b * 5 % n] = 1.0;

  ct::TransientSolver solver;
  solver.prepare(chain);
  std::vector<std::vector<double>> curves;
  const std::vector<double> accs = solver.reward_curve_multi(initials, rewards, grid, curves);
  ASSERT_EQ(curves.size(), m);
  ASSERT_EQ(accs.size(), m);
  EXPECT_EQ(solver.diagnostics().rhs_count, m);

  // A panel of width m costs ONE sweep per expansion term.
  const std::size_t panel_sweeps = solver.diagnostics().matvec_count;

  for (std::size_t b = 0; b < m; ++b) {
    ct::TransientSolver reference;
    reference.prepare(chain);
    std::vector<double> curve;
    const double acc = reference.reward_curve(initials[b], rewards, grid, curve);
    expect_near_rel(curves[b], curve, 1e-11, "panel column vs sequential curve");
    EXPECT_NEAR(accs[b], acc, 1e-11 * std::max(1.0, std::abs(acc)));
    // Window sizes are column-independent (same chain, same grid), so each
    // sequential solve alone sweeps as often as the whole panel did.
    EXPECT_EQ(reference.diagnostics().matvec_count, panel_sweeps);
  }
}

TEST(SpmvKernelTransient, PanelMatchesScalarReferenceMode) {
  const ct::Ctmc chain = birth_death(23, 0.9, 1.7);
  const std::size_t n = chain.state_count();
  std::vector<double> rewards(n, 1.0);
  rewards[0] = 0.0;
  const std::vector<double> grid{0.5, 2.0};
  std::vector<std::vector<double>> initials(3, std::vector<double>(n, 0.0));
  for (std::size_t b = 0; b < 3; ++b) initials[b][b] = 1.0;

  ct::TransientSolver auto_solver;
  auto_solver.prepare(chain);
  std::vector<std::vector<double>> auto_curves;
  const auto auto_accs = auto_solver.reward_curve_multi(initials, rewards, grid, auto_curves);

  ct::TransientOptions scalar_options;
  scalar_options.kernel = ct::TransientOptions::Kernel::kScalar;
  ct::TransientSolver scalar_solver(scalar_options);
  scalar_solver.prepare(chain);
  std::vector<std::vector<double>> scalar_curves;
  const auto scalar_accs =
      scalar_solver.reward_curve_multi(initials, rewards, grid, scalar_curves);
  EXPECT_EQ(scalar_solver.diagnostics().rhs_count, 1u);  // degraded to sequential

  for (std::size_t b = 0; b < 3; ++b) {
    expect_near_rel(auto_curves[b], scalar_curves[b], 1e-11, "panel vs scalar mode");
    EXPECT_NEAR(auto_accs[b], scalar_accs[b],
                1e-11 * std::max(1.0, std::abs(scalar_accs[b])));
  }
}

TEST(SpmvKernelTransient, ThreadedReductionsAreBitIdentical) {
  const ct::Ctmc chain = birth_death(37, 0.5, 1.2);
  const std::size_t n = chain.state_count();
  std::vector<double> rewards(n);
  for (std::size_t s = 0; s < n; ++s) rewards[s] = std::sin(static_cast<double>(s));
  const std::vector<double> grid{0.2, 0.9, 2.5};
  const std::size_t m = 7;
  std::vector<std::vector<double>> initials(m, std::vector<double>(n, 0.0));
  for (std::size_t b = 0; b < m; ++b) initials[b][(b * 11) % n] = 1.0;

  std::vector<std::vector<std::vector<double>>> curves_by_threads;
  std::vector<std::vector<double>> accs_by_threads;
  for (std::size_t threads : {1u, 2u, 4u}) {
    ct::TransientOptions options;
    options.reduction_threads = threads;
    ct::TransientSolver solver(options);
    solver.prepare(chain);
    std::vector<std::vector<double>> curves;
    accs_by_threads.push_back(solver.reward_curve_multi(initials, rewards, grid, curves));
    curves_by_threads.push_back(std::move(curves));
  }
  for (std::size_t i = 1; i < curves_by_threads.size(); ++i) {
    ASSERT_EQ(accs_by_threads[i], accs_by_threads[0]);  // bitwise
    ASSERT_EQ(curves_by_threads[i], curves_by_threads[0]);
  }
}

TEST(SpmvKernelTransient, SolverReusesKernelAcrossValueRefresh) {
  ct::TransientSolver solver;
  EXPECT_EQ(solver.kernel_structure_builds(), 0u);  // lazy: nothing yet
  solver.prepare(up_down(0.5, 2.0));
  EXPECT_EQ(solver.kernel_structure_builds(), 0u);  // still lazy after prepare
  std::vector<double> out;
  solver.distribution_at({1.0, 0.0}, 1.0, out);
  EXPECT_EQ(solver.kernel_structure_builds(), 1u);
  // Same structure, new rates: the solver refresh must carry the kernel's
  // value-refresh along (one layout build total).
  solver.prepare(up_down(0.7, 1.5));
  solver.distribution_at({1.0, 0.0}, 1.0, out);
  EXPECT_EQ(solver.structure_builds(), 1u);
  EXPECT_EQ(solver.structure_reuses(), 1u);
  EXPECT_EQ(solver.kernel_structure_builds(), 1u);
  EXPECT_EQ(solver.kernel_structure_reuses(), 1u);
}
