// The transient evaluation path of the facade (Session::evaluate_transient):
// grid resolution, both backends, curve shape against the avail-layer engine
// and against steady state, cache sharing with the steady-state path, the
// CI-band agreement check, and the JSON curve payload.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <vector>

#include "patchsec/avail/transient_coa.hpp"
#include "patchsec/core/report.hpp"
#include "patchsec/core/session.hpp"
#include "patchsec/enterprise/network.hpp"

namespace av = patchsec::avail;
namespace core = patchsec::core;
namespace ent = patchsec::enterprise;

namespace {

core::Scenario transient_scenario(core::EngineOptions engine = {}) {
  return core::Scenario::paper_case_study().with_engine(engine);
}

}  // namespace

// ---------- grid resolution --------------------------------------------------

TEST(TransientGrid, DerivedGridSpansZeroToHorizon) {
  core::EngineOptions engine;
  engine.horizon_hours = 12.0;
  engine.transient_points = 5;
  const std::vector<double> grid = engine.transient_grid();
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid.front(), 0.0);
  EXPECT_DOUBLE_EQ(grid.back(), 12.0);
  EXPECT_DOUBLE_EQ(grid[1], 3.0);
}

TEST(TransientGrid, ExplicitGridWinsAndIsValidated) {
  core::EngineOptions engine;
  engine.time_points = {0.0, 1.0, 4.0};
  engine.horizon_hours = -1.0;  // ignored when time_points is set
  EXPECT_EQ(engine.transient_grid(), engine.time_points);

  engine.time_points = {1.0, 0.5};
  EXPECT_THROW((void)engine.transient_grid(), std::invalid_argument);
  engine.time_points = {-1.0};
  EXPECT_THROW((void)engine.transient_grid(), std::invalid_argument);
  engine.time_points = {0.0};  // zero-length window: no interval COA
  EXPECT_THROW((void)engine.transient_grid(), std::invalid_argument);

  engine.time_points.clear();
  EXPECT_THROW((void)engine.transient_grid(), std::invalid_argument);  // horizon < 0
  engine.horizon_hours = 24.0;
  engine.transient_points = 1;
  EXPECT_THROW((void)engine.transient_grid(), std::invalid_argument);
}

// ---------- analytic backend -------------------------------------------------

TEST(TransientEngine, AnalyticCurveHealsFromThePatchWindowDip) {
  core::EngineOptions engine;
  engine.time_points = {0.0, 0.5, 1.0, 2.0, 6.0, 1000.0};
  engine.initial_down = {{ent::ServerRole::kApp, 1}};
  const core::Session session(transient_scenario(engine));
  const core::EvalReport report = session.evaluate_transient(ent::example_network_design());

  ASSERT_EQ(report.transient.time_points_hours.size(), 6u);
  ASSERT_EQ(report.transient.coa.size(), 6u);
  EXPECT_TRUE(report.transient.half_width_95.empty());  // deterministic backend
  EXPECT_EQ(report.backend, core::EvalBackend::kAnalytic);
  EXPECT_TRUE(report.converged());

  // t = 0: one of six servers down -> exactly 5/6.
  EXPECT_NEAR(report.transient.coa[0], 5.0 / 6.0, 1e-9);
  // Monotone healing toward steady state on the MTTR time scale.
  for (std::size_t j = 1; j + 1 < report.transient.coa.size(); ++j) {
    EXPECT_GT(report.transient.coa[j], report.transient.coa[j - 1]) << "j=" << j;
  }
  const core::EvalReport steady = session.evaluate(ent::example_network_design());
  EXPECT_NEAR(report.transient.coa.back(), steady.coa, 1e-4);

  // The report's scalar COA is the window average, between the dip and the
  // steady value.
  EXPECT_GT(report.coa, 5.0 / 6.0);
  EXPECT_LT(report.coa, 1.0);
  EXPECT_NEAR(report.coa, report.transient.interval_coa(), 1e-12);
  EXPECT_NEAR(report.transient.accumulated_coa_hours,
              report.transient.interval_coa() * 1000.0, 1e-9);

  // Uniformization diagnostics are populated, and the upper-layer model size
  // is reported like the steady path reports its solve.
  EXPECT_GT(report.transient_diagnostics.uniformization_rate, 0.0);
  EXPECT_GT(report.transient_diagnostics.matvec_count, 0u);
  EXPECT_EQ(report.availability_diagnostics.tangible_states, 36u);
  EXPECT_GT(report.total_solver_iterations(), 0u);
}

TEST(TransientEngine, MatchesTheAvailLayerEngine) {
  // The facade must be a plumbing layer over avail::transient_coa_detailed,
  // not a second implementation.
  core::EngineOptions engine;
  engine.time_points = {0.0, 1.0, 8.0};
  engine.initial_down = {{ent::ServerRole::kWeb, 1}};
  const core::Session session(transient_scenario(engine));
  const core::EvalReport report = session.evaluate_transient(ent::example_network_design());

  av::TransientCoaOptions options;
  options.initial_down = engine.initial_down;
  const av::CoaCurveEvaluation direct = av::transient_coa_detailed(
      ent::example_network_design(), session.aggregated_rates(), engine.time_points, options);
  ASSERT_EQ(direct.curve.size(), report.transient.coa.size());
  for (std::size_t j = 0; j < direct.curve.size(); ++j) {
    EXPECT_NEAR(report.transient.coa[j], direct.curve[j].coa, 1e-12) << "j=" << j;
  }
  EXPECT_NEAR(report.transient.accumulated_coa_hours, direct.accumulated_coa_hours, 1e-12);
}

TEST(TransientEngine, SharesTheAggregationCacheWithTheSteadyPath) {
  // evaluate() then evaluate_transient() at the same cadence must reuse the
  // memoized per-(role, interval) aggregation: identical Table V diagnostics
  // objects (wall times are recorded at first computation, so a recompute
  // would almost surely differ), and aggregated_rates() stays stable.
  const core::Session session(transient_scenario());
  const core::EvalReport steady = session.evaluate(ent::example_network_design());
  const auto rates_before = session.aggregated_rates();
  const core::EvalReport transient = session.evaluate_transient(ent::example_network_design());
  for (const auto& [role, diag] : steady.aggregation_diagnostics) {
    const auto it = transient.aggregation_diagnostics.find(role);
    ASSERT_NE(it, transient.aggregation_diagnostics.end());
    EXPECT_EQ(diag.wall_time_seconds, it->second.wall_time_seconds);
    EXPECT_EQ(diag.solver_iterations, it->second.solver_iterations);
  }
  const auto& rates_after = session.aggregated_rates();
  for (const auto& [role, rate] : rates_before) {
    EXPECT_EQ(rate.mu_eq, rates_after.at(role).mu_eq);
  }
}

TEST(TransientEngine, ExplicitCadenceChangesTheCurve) {
  core::EngineOptions engine;
  engine.time_points = {0.0, 24.0, 5000.0};
  const core::Session session(transient_scenario(engine));
  // All-up start: the curve decays from 1 toward the cadence's steady state,
  // so a faster cadence must sit lower at the far point.
  const core::EvalReport monthly =
      session.evaluate_transient(ent::example_network_design(), 720.0);
  const core::EvalReport weekly =
      session.evaluate_transient(ent::example_network_design(), 168.0);
  EXPECT_NEAR(monthly.transient.coa.front(), 1.0, 1e-12);
  EXPECT_NEAR(weekly.transient.coa.front(), 1.0, 1e-12);
  EXPECT_LT(weekly.transient.coa.back(), monthly.transient.coa.back());
  EXPECT_EQ(monthly.patch_interval_hours, 720.0);
}

// ---------- batched evaluation ----------------------------------------------

TEST(TransientEngine, BatchedWavesMatchSequentialEvaluations) {
  // evaluate_transient_batch must reproduce per-wave evaluate_transient
  // curves while doing the matrix work ONCE: each wave rides one column of a
  // single panel solve, so every report sees the same sweep count and a
  // rhs_count equal to the wave count.
  core::EngineOptions engine;
  engine.time_points = {0.0, 0.5, 2.0, 12.0, 200.0};
  const std::vector<std::map<ent::ServerRole, unsigned>> waves = {
      {},  // all-up start
      {{ent::ServerRole::kApp, 1}},
      {{ent::ServerRole::kWeb, 1}, {ent::ServerRole::kApp, 1}},
      {{ent::ServerRole::kDb, 2}},
  };
  const core::Session session(transient_scenario(engine));
  const std::vector<core::EvalReport> batch =
      session.evaluate_transient_batch(ent::example_network_design(), waves);
  ASSERT_EQ(batch.size(), waves.size());

  for (std::size_t b = 0; b < waves.size(); ++b) {
    core::EngineOptions sequential = engine;
    sequential.initial_down = waves[b];
    const core::Session reference(transient_scenario(sequential));
    const core::EvalReport expected =
        reference.evaluate_transient(ent::example_network_design());
    ASSERT_EQ(batch[b].transient.coa.size(), expected.transient.coa.size());
    for (std::size_t j = 0; j < expected.transient.coa.size(); ++j) {
      EXPECT_NEAR(batch[b].transient.coa[j], expected.transient.coa[j], 1e-11)
          << "wave " << b << " point " << j;
    }
    EXPECT_NEAR(batch[b].transient.accumulated_coa_hours,
                expected.transient.accumulated_coa_hours, 1e-9);
    EXPECT_NEAR(batch[b].coa, expected.coa, 1e-11);
    // Shared-solve diagnostics: one sweep advances every wave.
    EXPECT_EQ(batch[b].transient_diagnostics.matvec_count,
              expected.transient_diagnostics.matvec_count);
    EXPECT_EQ(batch[b].transient_diagnostics.rhs_count, waves.size());
    EXPECT_FALSE(batch[b].transient_diagnostics.kernel.empty());
    EXPECT_TRUE(batch[b].converged());
  }

  EXPECT_THROW((void)session.evaluate_transient_batch(ent::example_network_design(), {}),
               std::invalid_argument);
}

TEST(TransientEngine, BatchFallsBackSequentiallyUnderLumping) {
  // The lumped backend has no panel mode; the batch contract degenerates to
  // per-wave evaluation and must match it exactly (same code path).
  core::EngineOptions engine;
  engine.time_points = {0.0, 1.0, 24.0};
  engine.lumping = true;
  const std::vector<std::map<ent::ServerRole, unsigned>> waves = {
      {{ent::ServerRole::kApp, 1}},
      {{ent::ServerRole::kWeb, 1}},
  };
  const core::Session session(transient_scenario(engine));
  const std::vector<core::EvalReport> batch =
      session.evaluate_transient_batch(ent::example_network_design(), waves);
  ASSERT_EQ(batch.size(), waves.size());
  for (std::size_t b = 0; b < waves.size(); ++b) {
    core::EngineOptions sequential = engine;
    sequential.initial_down = waves[b];
    const core::Session reference(transient_scenario(sequential));
    const core::EvalReport expected =
        reference.evaluate_transient(ent::example_network_design());
    ASSERT_EQ(batch[b].transient.coa.size(), expected.transient.coa.size());
    for (std::size_t j = 0; j < expected.transient.coa.size(); ++j) {
      EXPECT_DOUBLE_EQ(batch[b].transient.coa[j], expected.transient.coa[j]);
    }
    EXPECT_EQ(batch[b].transient_diagnostics.rhs_count, 1u);  // no panel ran
  }
}

// ---------- simulation backend ----------------------------------------------

TEST(TransientEngine, SimulationBackendAgreesWithAnalyticCurve) {
  core::EngineOptions analytic_engine;
  analytic_engine.time_points = {0.0, 0.5, 1.0, 2.0, 6.0, 24.0};
  analytic_engine.initial_down = {{ent::ServerRole::kApp, 1}, {ent::ServerRole::kWeb, 1}};

  core::EngineOptions sim_engine = analytic_engine;
  sim_engine.backend = core::EvalBackend::kSimulation;
  sim_engine.simulation.seed = 20170626;
  sim_engine.simulation.replications = 768;

  const core::Session analytic_session(transient_scenario(analytic_engine));
  const core::Session sim_session(transient_scenario(sim_engine));
  const core::EvalReport analytic =
      analytic_session.evaluate_transient(ent::example_network_design());
  const core::EvalReport simulated =
      sim_session.evaluate_transient(ent::example_network_design());

  EXPECT_EQ(simulated.backend, core::EvalBackend::kSimulation);
  ASSERT_EQ(simulated.transient.coa.size(), 6u);
  ASSERT_EQ(simulated.transient.half_width_95.size(), 6u);
  EXPECT_EQ(simulated.simulation_diagnostics.replications, 768u);
  EXPECT_GT(simulated.simulation_diagnostics.events_fired, 0u);

  // t = 0 is deterministic in both backends: two servers of six down (the
  // half width is round-off dust — every replication recorded 4/6).
  EXPECT_NEAR(simulated.transient.coa[0], 4.0 / 6.0, 1e-12);
  EXPECT_LT(simulated.transient.half_width_95[0], 1e-12);

  // The committed seed agrees curve-wide at the default band; the scalar
  // (interval) COA agrees through the steady-state-style check.
  EXPECT_TRUE(simulated.transient_agrees_with(analytic, 1.96));
  EXPECT_TRUE(simulated.agrees_with(analytic, 1.96));
  EXPECT_GT(simulated.coa_half_width_95, 0.0);
}

TEST(TransientEngine, SimulationCurveIsThreadCountInvariant) {
  core::EngineOptions engine;
  engine.backend = core::EvalBackend::kSimulation;
  engine.time_points = {0.0, 1.0, 6.0, 24.0};
  engine.initial_down = {{ent::ServerRole::kDb, 1}};
  engine.simulation.replications = 96;
  engine.simulation.seed = 7;

  engine.simulation.threads = 1;
  const core::Session serial(transient_scenario(engine));
  engine.simulation.threads = 4;
  const core::Session threaded(transient_scenario(engine));

  const core::EvalReport a = serial.evaluate_transient(ent::example_network_design());
  const core::EvalReport b = threaded.evaluate_transient(ent::example_network_design());
  ASSERT_EQ(a.transient.coa.size(), b.transient.coa.size());
  for (std::size_t j = 0; j < a.transient.coa.size(); ++j) {
    EXPECT_EQ(a.transient.coa[j], b.transient.coa[j]) << "j=" << j;  // bit-identical
    EXPECT_EQ(a.transient.half_width_95[j], b.transient.half_width_95[j]) << "j=" << j;
  }
  EXPECT_EQ(a.coa, b.coa);
  EXPECT_EQ(a.simulation_diagnostics.events_fired, b.simulation_diagnostics.events_fired);
}

// ---------- agreement semantics ----------------------------------------------

TEST(TransientEngine, AgreementRejectsMismatchedOrMissingCurves) {
  core::EngineOptions engine;
  engine.time_points = {0.0, 1.0, 4.0};
  const core::Session session(transient_scenario(engine));
  const core::EvalReport curve = session.evaluate_transient(ent::example_network_design());
  const core::EvalReport steady = session.evaluate(ent::example_network_design());
  EXPECT_FALSE(curve.transient_agrees_with(steady));  // no curve on the other side
  EXPECT_FALSE(steady.transient_agrees_with(curve));

  core::EngineOptions other_grid = engine;
  other_grid.time_points = {0.0, 2.0, 4.0};
  const core::Session other_session(transient_scenario(other_grid));
  const core::EvalReport other = other_session.evaluate_transient(ent::example_network_design());
  EXPECT_FALSE(curve.transient_agrees_with(other));  // different grids never compare

  // Identical analytic evaluations agree within round-off.
  const core::EvalReport again = session.evaluate_transient(ent::example_network_design());
  EXPECT_TRUE(curve.transient_agrees_with(again));
}

// ---------- report payload ---------------------------------------------------

TEST(TransientEngine, JsonCarriesTheCurvePayload) {
  core::EngineOptions engine;
  engine.time_points = {0.0, 2.0, 24.0};
  engine.initial_down = {{ent::ServerRole::kApp, 1}};
  const core::Session session(transient_scenario(engine));
  const core::EvalReport report = session.evaluate_transient(ent::example_network_design());

  std::ostringstream out;
  core::write_json(out, std::vector<core::EvalReport>{report});
  const std::string json = out.str();
  EXPECT_NE(json.find("\"transient\""), std::string::npos);
  EXPECT_NE(json.find("\"time_points_hours\":[0,2,24]"), std::string::npos);
  EXPECT_NE(json.find("\"accumulated_coa_hours\""), std::string::npos);
  EXPECT_NE(json.find("\"interval_coa\""), std::string::npos);
  EXPECT_NE(json.find("\"uniformization\""), std::string::npos);
  EXPECT_NE(json.find("\"rhs\":1"), std::string::npos);
  EXPECT_NE(json.find("\"kernel\":\""), std::string::npos);

  // Steady-state reports must NOT grow a transient block.
  std::ostringstream steady_out;
  core::write_json(steady_out,
                   std::vector<core::EvalReport>{session.evaluate(ent::example_network_design())});
  EXPECT_EQ(steady_out.str().find("\"transient\""), std::string::npos);
}
