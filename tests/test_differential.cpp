// The differential validation sweep (ctest label `differential`): >= 50
// generated scenarios, each evaluated through the analytic pipeline AND the
// Monte-Carlo replication oracle, asserting every analytic capacity-oriented
// availability falls inside the simulation's 95% confidence interval.
//
// At 95% coverage a few statistical misses are expected and budgeted
// (allowed_misses, the issue's "<= 2 documented statistical misses at
// z = 1.96"); the run is deterministic for the committed campaign seed, so
// this suite is NOT flaky — a new miss means the analytic pipeline (or the
// simulator) actually changed.  Reproduce any miss from its logged seed:
//
//   differential_runner --repro <scenario_seed>

#include <gtest/gtest.h>

#include <string>

#include "patchsec/testgen/differential_runner.hpp"

namespace tg = patchsec::testgen;

TEST(Differential, FiftyScenariosAgreeWithinConfidence) {
  tg::DifferentialOptions options;  // 50 scenarios, default replication budget
  ASSERT_GE(options.scenarios, 50u);
  ASSERT_LE(options.allowed_misses, 2u);

  const tg::DifferentialReport report = tg::DifferentialRunner(options).run();
  ASSERT_EQ(report.cases.size(), options.scenarios);

  for (const auto& c : report.cases) {
    EXPECT_TRUE(c.analytic_converged) << c.label << " seed=" << c.scenario_seed;
  }
  std::string misses;
  for (const auto& c : report.cases) {
    if (!c.inside_ci) {
      misses += "  seed=" + std::to_string(c.scenario_seed) + " " + c.label + "\n";
    }
  }
  EXPECT_TRUE(report.passed(options.allowed_misses))
      << report.misses << " misses exceed the statistical budget of "
      << options.allowed_misses << ":\n"
      << misses << "reproduce with: differential_runner --repro <seed>";
}

// Degenerate corners must agree too, not just the random bulk: sweep a
// dedicated stream with half the scenarios forced degenerate.  The budget is
// proportionally looser only through the same allowed-misses rule.
TEST(Differential, DegenerateHeavyStreamAgrees) {
  tg::DifferentialOptions options;
  options.scenarios = 24;
  options.allowed_misses = 2;
  options.generator.seed = 77001;
  options.generator.degenerate_fraction = 0.5;

  const tg::DifferentialReport report = tg::DifferentialRunner(options).run();
  std::string misses;
  for (const auto& c : report.cases) {
    if (!c.inside_ci) {
      misses += "  seed=" + std::to_string(c.scenario_seed) + " " + c.label + "\n";
    }
  }
  EXPECT_TRUE(report.passed(options.allowed_misses)) << misses;
}
