// The differential validation sweep (ctest label `differential`): >= 50
// generated scenarios, each evaluated through the analytic pipeline AND the
// Monte-Carlo replication oracle, asserting every analytic capacity-oriented
// availability falls inside the simulation's 95% confidence interval.
//
// At 95% coverage a few statistical misses are expected and budgeted
// (allowed_misses, the issue's "<= 2 documented statistical misses at
// z = 1.96"); the run is deterministic for the committed campaign seed, so
// this suite is NOT flaky — a new miss means the analytic pipeline (or the
// simulator) actually changed.  Reproduce any miss from its logged seed:
//
//   differential_runner --repro <scenario_seed>

#include <gtest/gtest.h>

#include <string>

#include "patchsec/testgen/differential_runner.hpp"

namespace tg = patchsec::testgen;

TEST(Differential, FiftyScenariosAgreeWithinConfidence) {
  tg::DifferentialOptions options;  // 50 scenarios, default replication budget
  ASSERT_GE(options.scenarios, 50u);
  ASSERT_LE(options.allowed_misses, 2u);

  const tg::DifferentialReport report = tg::DifferentialRunner(options).run();
  ASSERT_EQ(report.cases.size(), options.scenarios);

  for (const auto& c : report.cases) {
    EXPECT_TRUE(c.analytic_converged) << c.label << " seed=" << c.scenario_seed;
  }
  std::string misses;
  for (const auto& c : report.cases) {
    if (!c.inside_ci) {
      misses += "  seed=" + std::to_string(c.scenario_seed) + " " + c.label + "\n";
    }
  }
  EXPECT_TRUE(report.passed(options.allowed_misses))
      << report.misses << " misses exceed the statistical budget of "
      << options.allowed_misses << ":\n"
      << misses << "reproduce with: differential_runner --repro <seed>";
}

// Degenerate corners must agree too, not just the random bulk: sweep a
// dedicated stream with half the scenarios forced degenerate.  The budget is
// proportionally looser only through the same allowed-misses rule.
TEST(Differential, DegenerateHeavyStreamAgrees) {
  tg::DifferentialOptions options;
  options.scenarios = 24;
  options.allowed_misses = 2;
  options.generator.seed = 77001;
  options.generator.degenerate_fraction = 0.5;

  const tg::DifferentialReport report = tg::DifferentialRunner(options).run();
  std::string misses;
  for (const auto& c : report.cases) {
    if (!c.inside_ci) {
      misses += "  seed=" + std::to_string(c.scenario_seed) + " " + c.label + "\n";
    }
  }
  EXPECT_TRUE(report.passed(options.allowed_misses)) << misses;
}

// ---------- transient mode ---------------------------------------------------

// The transient differential sweep (the acceptance gate of the transient
// engine): 50 generated scenarios, each entering a patch wave (one server
// per deployed role down), the analytic coa(t) curve checked against the
// finite-horizon estimator's simultaneous 95% CI band at every grid point.
// Deterministic for the committed seed, exactly like the steady-state sweep.
TEST(TransientDifferential, FiftyScenariosCurveInsideTheBand) {
  tg::DifferentialOptions options;
  options.mode = tg::DifferentialMode::kTransient;
  options.simulation.replications = 512;
  ASSERT_GE(options.scenarios, 50u);
  ASSERT_LE(options.allowed_misses, 2u);

  const tg::DifferentialReport report = tg::DifferentialRunner(options).run();
  ASSERT_EQ(report.cases.size(), options.scenarios);
  EXPECT_EQ(report.mode, tg::DifferentialMode::kTransient);

  std::string misses;
  for (const auto& c : report.cases) {
    EXPECT_TRUE(c.analytic_converged) << c.label << " seed=" << c.scenario_seed;
    EXPECT_EQ(c.grid_points, options.transient_grid.size());
    if (!c.inside_ci) {
      misses += "  seed=" + std::to_string(c.scenario_seed) + " " + c.label + " (" +
                std::to_string(c.points_outside) + " points outside, worst at " +
                std::to_string(c.worst_point_hours) + "h)\n";
    }
  }
  EXPECT_TRUE(report.passed(options.allowed_misses))
      << report.misses << " transient misses exceed the statistical budget of "
      << options.allowed_misses << ":\n"
      << misses << "reproduce with: differential_runner --transient --repro <seed>";
}

// The whole transient sweep — generation, analytic curves, replicated
// curves, verdicts — must be bit-identical across simulation thread counts.
TEST(TransientDifferential, SweepIsThreadCountInvariant) {
  tg::DifferentialOptions options;
  options.mode = tg::DifferentialMode::kTransient;
  options.scenarios = 12;
  options.simulation.replications = 128;

  options.simulation.threads = 1;
  const tg::DifferentialReport serial = tg::DifferentialRunner(options).run();
  options.simulation.threads = 4;
  const tg::DifferentialReport threaded = tg::DifferentialRunner(options).run();

  ASSERT_EQ(serial.cases.size(), threaded.cases.size());
  EXPECT_EQ(serial.misses, threaded.misses);
  for (std::size_t i = 0; i < serial.cases.size(); ++i) {
    EXPECT_EQ(serial.cases[i].scenario_seed, threaded.cases[i].scenario_seed);
    EXPECT_EQ(serial.cases[i].analytic_coa, threaded.cases[i].analytic_coa) << "i=" << i;
    EXPECT_EQ(serial.cases[i].simulated_coa, threaded.cases[i].simulated_coa) << "i=" << i;
    EXPECT_EQ(serial.cases[i].half_width_95, threaded.cases[i].half_width_95) << "i=" << i;
    EXPECT_EQ(serial.cases[i].inside_ci, threaded.cases[i].inside_ci) << "i=" << i;
    EXPECT_EQ(serial.cases[i].worst_deviation, threaded.cases[i].worst_deviation) << "i=" << i;
  }
}

// Degenerate corners through the transient engine: glacial repair makes the
// curve nearly flat at the dip, saturated capacity blows up the state space,
// single host collapses coa(0) to zero — all must still agree.
TEST(TransientDifferential, DegenerateHeavyStreamAgrees) {
  tg::DifferentialOptions options;
  options.mode = tg::DifferentialMode::kTransient;
  options.scenarios = 24;
  options.allowed_misses = 2;
  options.generator.seed = 77001;
  options.generator.degenerate_fraction = 0.5;
  options.simulation.replications = 512;

  const tg::DifferentialReport report = tg::DifferentialRunner(options).run();
  std::string misses;
  for (const auto& c : report.cases) {
    if (!c.inside_ci) {
      misses += "  seed=" + std::to_string(c.scenario_seed) + " " + c.label + "\n";
    }
  }
  EXPECT_TRUE(report.passed(options.allowed_misses)) << misses;
}

// One logged seed replays the full transient case (scenario, both curves,
// verdict) — the repro contract of docs/TESTING.md extended to the new mode.
TEST(TransientDifferential, RunOneReproducesACaseFromItsSeed) {
  tg::DifferentialOptions options;
  options.mode = tg::DifferentialMode::kTransient;
  options.scenarios = 3;
  options.simulation.replications = 64;

  const tg::DifferentialReport report = tg::DifferentialRunner(options).run();
  ASSERT_EQ(report.cases.size(), 3u);
  const tg::DifferentialCase& original = report.cases[1];
  const tg::DifferentialCase replay =
      tg::DifferentialRunner::run_one(original.scenario_seed, options);
  EXPECT_EQ(replay.scenario_seed, original.scenario_seed);
  EXPECT_EQ(replay.label, original.label);
  EXPECT_EQ(replay.analytic_coa, original.analytic_coa);
  EXPECT_EQ(replay.simulated_coa, original.simulated_coa);
  EXPECT_EQ(replay.half_width_95, original.half_width_95);
  EXPECT_EQ(replay.inside_ci, original.inside_ci);
}

// The transient JSON report carries the mode and the per-case band columns.
TEST(TransientDifferential, JsonCarriesModeAndBandColumns) {
  tg::DifferentialOptions options;
  options.mode = tg::DifferentialMode::kTransient;
  options.scenarios = 2;
  options.simulation.replications = 32;
  const tg::DifferentialReport report = tg::DifferentialRunner(options).run();
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"schema_version\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"mode\": \"transient\""), std::string::npos);
  EXPECT_NE(json.find("\"grid_points\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"worst_deviation\""), std::string::npos);

  tg::DifferentialOptions steady;
  steady.scenarios = 1;
  steady.simulation.replications = 8;
  steady.simulation.warmup_hours = 100.0;
  steady.simulation.horizon_hours = 500.0;
  const std::string steady_json = tg::DifferentialRunner(steady).run().to_json();
  EXPECT_NE(steady_json.find("\"mode\": \"steady_state\""), std::string::npos);
  EXPECT_EQ(steady_json.find("\"grid_points\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Three-way (flat / lumped / simulated) mode
// ---------------------------------------------------------------------------

TEST(LumpedDifferential, FiftyScenariosThreeWayAgree) {
  tg::DifferentialOptions options;
  options.mode = tg::DifferentialMode::kLumped;
  ASSERT_GE(options.scenarios, 50u);

  const tg::DifferentialReport report = tg::DifferentialRunner(options).run();
  ASSERT_EQ(report.cases.size(), options.scenarios);
  ASSERT_EQ(report.mode, tg::DifferentialMode::kLumped);

  // The flat-vs-lumped half of the verdict is deterministic and exact: NO
  // miss budget applies to it, only to the statistical sim comparison.
  std::string lumping_bugs;
  for (const auto& c : report.cases) {
    EXPECT_TRUE(c.analytic_converged) << c.label << " seed=" << c.scenario_seed;
    if (!c.lumped_matches_flat) {
      lumping_bugs += "  seed=" + std::to_string(c.scenario_seed) + " " + c.label +
                      " deviation=" + std::to_string(c.flat_lumped_deviation) + "\n";
    }
  }
  EXPECT_TRUE(lumping_bugs.empty())
      << "lumped COA diverged from the flat COA (exactness violation, not "
         "statistics):\n"
      << lumping_bugs;
  EXPECT_TRUE(report.passed(options.allowed_misses))
      << report.misses << " misses exceed the statistical budget of " << options.allowed_misses;
}

TEST(LumpedDifferential, JsonCarriesThreeWayColumns) {
  tg::DifferentialOptions options;
  options.mode = tg::DifferentialMode::kLumped;
  options.scenarios = 3;
  options.simulation.replications = 8;
  options.simulation.warmup_hours = 500.0;
  options.simulation.horizon_hours = 4000.0;

  const tg::DifferentialReport report = tg::DifferentialRunner(options).run();
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"schema_version\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"mode\": \"lumped\""), std::string::npos);
  EXPECT_NE(json.find("\"lumped_coa\""), std::string::npos);
  EXPECT_NE(json.find("\"flat_lumped_deviation\""), std::string::npos);
  EXPECT_NE(json.find("\"lumped_matches_flat\""), std::string::npos);
}

TEST(LumpedDifferential, RunOneReproducesACaseFromItsSeed) {
  tg::DifferentialOptions options;
  options.mode = tg::DifferentialMode::kLumped;
  options.scenarios = 2;
  options.simulation.replications = 8;
  options.simulation.warmup_hours = 500.0;
  options.simulation.horizon_hours = 4000.0;

  const tg::DifferentialReport report = tg::DifferentialRunner(options).run();
  ASSERT_FALSE(report.cases.empty());
  const tg::DifferentialCase& original = report.cases.front();
  const tg::DifferentialCase replay =
      tg::DifferentialRunner::run_one(original.scenario_seed, options);
  EXPECT_EQ(replay.label, original.label);
  EXPECT_DOUBLE_EQ(replay.analytic_coa, original.analytic_coa);
  EXPECT_DOUBLE_EQ(replay.lumped_coa, original.lumped_coa);
  EXPECT_DOUBLE_EQ(replay.simulated_coa, original.simulated_coa);
  EXPECT_EQ(replay.inside_ci, original.inside_ci);
}
