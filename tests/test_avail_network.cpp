// Tests for the upper-layer network SRN and the capacity-oriented
// availability measure: the Table VI reward and COA = 0.99707 for the
// example network, the five-design COA values of Fig. 6/7, and agreement
// between the SRN solution and the independent closed form.

#include <gtest/gtest.h>

#include <array>

#include "patchsec/avail/network_srn.hpp"
#include "patchsec/enterprise/network.hpp"
#include "patchsec/petri/reachability.hpp"

namespace av = patchsec::avail;
namespace ent = patchsec::enterprise;
namespace pt = patchsec::petri;

namespace {

const std::map<ent::ServerRole, ent::ServerSpec>& specs() {
  static const auto s = ent::paper_server_specs();
  return s;
}

const std::map<ent::ServerRole, av::AggregatedRates>& rates() {
  static const auto r = [] {
    std::map<ent::ServerRole, av::AggregatedRates> out;
    for (const auto& [role, spec] : specs()) out.emplace(role, av::aggregate_server(spec));
    return out;
  }();
  return r;
}

}  // namespace

TEST(NetworkSrn, StructureFollowsDesign) {
  const av::NetworkSrn net = av::build_network_srn(ent::example_network_design(), rates());
  EXPECT_EQ(net.model.place_count(), 8u);       // 4 roles x (up, down)
  EXPECT_EQ(net.model.transition_count(), 8u);  // 4 roles x (down, up)
  const pt::Marking m0 = net.model.initial_marking();
  EXPECT_EQ(m0[net.up_places.at(ent::ServerRole::kWeb)], 2u);
  EXPECT_EQ(m0[net.up_places.at(ent::ServerRole::kDb)], 1u);
}

TEST(NetworkSrn, MarkingDependentPatchRate) {
  const av::NetworkSrn net = av::build_network_srn(ent::example_network_design(), rates());
  const pt::TransitionId twebd = net.model.transition("TWEBd");
  const pt::Marking m0 = net.model.initial_marking();
  // Two web servers up: rate 2 * lambda_eq (paper: "the firing rates ... are
  // marking-dependent", 2*lambda for the example network).
  EXPECT_NEAR(net.model.rate(twebd, m0), 2.0 / 720.0, 1e-12);
}

TEST(NetworkSrn, RewardMatchesTableSix) {
  const av::NetworkSrn net = av::build_network_srn(ent::example_network_design(), rates());
  const auto reward = net.coa_reward();
  pt::Marking m = net.model.initial_marking();
  const auto up = [&](ent::ServerRole r) { return net.up_places.at(r); };
  const auto down = [&](ent::ServerRole r) { return net.down_places.at(r); };

  EXPECT_DOUBLE_EQ(reward(m), 1.0);  // all six up

  m[up(ent::ServerRole::kWeb)] = 1;  // one web down
  m[down(ent::ServerRole::kWeb)] = 1;
  EXPECT_NEAR(reward(m), 5.0 / 6.0, 1e-12);  // Table VI: 0.83333

  m[up(ent::ServerRole::kApp)] = 1;  // one web + one app down
  m[down(ent::ServerRole::kApp)] = 1;
  EXPECT_NEAR(reward(m), 4.0 / 6.0, 1e-12);  // Table VI: 0.66667

  m[up(ent::ServerRole::kWeb)] = 2;  // back to one app down only
  m[down(ent::ServerRole::kWeb)] = 0;
  m[up(ent::ServerRole::kApp)] = 2;
  m[down(ent::ServerRole::kApp)] = 0;
  m[up(ent::ServerRole::kDb)] = 0;  // whole db tier down: no service
  m[down(ent::ServerRole::kDb)] = 1;
  EXPECT_DOUBLE_EQ(reward(m), 0.0);  // Table VI: else 0
}

TEST(NetworkSrn, ExampleNetworkCoaMatchesPaper) {
  const double coa = av::capacity_oriented_availability(ent::example_network_design(), rates());
  // Paper Sec. III-D2: "COA which approximately equals to 0.99707".
  EXPECT_NEAR(coa, 0.99707, 5e-6);
}

TEST(NetworkSrn, CoaFromSpecsEndToEnd) {
  const double coa =
      av::capacity_oriented_availability(ent::example_network_design(), specs(), 720.0);
  EXPECT_NEAR(coa, 0.99707, 5e-6);
}

struct DesignCoa {
  std::array<unsigned, 4> counts;
  double coa;  // validated analytic value (Fig. 6/7 y-axis range)
};

class FiveDesignCoa : public ::testing::TestWithParam<DesignCoa> {};

TEST_P(FiveDesignCoa, MatchesValidatedValue) {
  const DesignCoa& d = GetParam();
  const double coa =
      av::capacity_oriented_availability(ent::RedundancyDesign{d.counts}, rates());
  EXPECT_NEAR(coa, d.coa, 2e-5);
  // All values sit inside the paper's Fig. 6/7 axis range.
  EXPECT_GT(coa, 0.9955);
  EXPECT_LT(coa, 0.9965);
}

INSTANTIATE_TEST_SUITE_P(PaperDesigns, FiveDesignCoa,
                         ::testing::Values(DesignCoa{{1, 1, 1, 1}, 0.99561},
                                           DesignCoa{{2, 1, 1, 1}, 0.99617},
                                           DesignCoa{{1, 2, 1, 1}, 0.99610},
                                           DesignCoa{{1, 1, 2, 1}, 0.99644},
                                           DesignCoa{{1, 1, 1, 2}, 0.99637}));

TEST(NetworkSrn, RedundancyOrderingFollowsMttr) {
  // Paper observation: redundancy on the tier with the lowest recovery rate
  // (APP) buys the most COA; and every redundant design beats no redundancy.
  const auto coa = [&](std::array<unsigned, 4> c) {
    return av::capacity_oriented_availability(ent::RedundancyDesign{c}, rates());
  };
  const double none = coa({1, 1, 1, 1});
  const double dns2 = coa({2, 1, 1, 1});
  const double web2 = coa({1, 2, 1, 1});
  const double app2 = coa({1, 1, 2, 1});
  const double db2 = coa({1, 1, 1, 2});
  EXPECT_GT(dns2, none);
  EXPECT_GT(web2, none);
  EXPECT_GT(app2, none);
  EXPECT_GT(db2, none);
  // APP has the longest MTTR (1.0 h) -> largest gain; WEB the shortest
  // (0.58 h) -> smallest gain.
  EXPECT_GT(app2, db2);
  EXPECT_GT(db2, dns2);
  EXPECT_GT(dns2, web2);
}

TEST(NetworkSrn, ClosedFormMatchesSrnSolution) {
  for (const auto& design : ent::paper_designs()) {
    const double srn = av::capacity_oriented_availability(design, rates());
    const double closed = av::coa_closed_form(design, rates());
    EXPECT_NEAR(srn, closed, 1e-9) << design.name();
  }
  const double srn = av::capacity_oriented_availability(ent::example_network_design(), rates());
  const double closed = av::coa_closed_form(ent::example_network_design(), rates());
  EXPECT_NEAR(srn, closed, 1e-9);
}

TEST(NetworkSrn, TripleRedundancyDoesNotPayOff) {
  // Capacity-oriented availability is NOT monotone in redundancy: the second
  // app server buys a lot (it removes the tier-death term), but a third one
  // *lowers* COA because the capacity average shifts toward the tier with
  // the worst per-server uptime (app has the longest patch MTTR).  This is a
  // property of the paper's COA reward, worth pinning down.
  const auto coa = [&](unsigned apps) {
    return av::capacity_oriented_availability(ent::RedundancyDesign{{1, 1, apps, 1}}, rates());
  };
  const double one = coa(1), two = coa(2), three = coa(3);
  EXPECT_GT(two, one);
  EXPECT_LT(three, two);
  EXPECT_GT(three, one);
}

TEST(NetworkSrn, MissingRatesRejected) {
  std::map<ent::ServerRole, av::AggregatedRates> partial;
  partial.emplace(ent::ServerRole::kDns, rates().at(ent::ServerRole::kDns));
  EXPECT_THROW((void)av::build_network_srn(ent::RedundancyDesign{{1, 1, 1, 1}}, partial),
               std::invalid_argument);
}

TEST(NetworkSrn, EmptyDesignRejected) {
  EXPECT_THROW((void)av::build_network_srn(ent::RedundancyDesign{{0, 0, 0, 0}}, rates()),
               std::invalid_argument);
}

TEST(NetworkSrn, ZeroCountTierIsSkipped) {
  // A design without a DNS tier still works: the reward simply ranges over
  // the remaining tiers.
  const av::NetworkSrn net = av::build_network_srn(ent::RedundancyDesign{{0, 1, 1, 1}}, rates());
  EXPECT_EQ(net.up_places.count(ent::ServerRole::kDns), 0u);
  const double coa =
      av::capacity_oriented_availability(ent::RedundancyDesign{{0, 1, 1, 1}}, rates());
  EXPECT_GT(coa, 0.99);
  EXPECT_LT(coa, 1.0);
}

TEST(NetworkSrn, PatchIntervalSweepMonotone) {
  // More frequent patching lowers COA (more downtime).  Sec. V "patch
  // schedule" extension.
  const auto coa_at = [&](double interval) {
    return av::capacity_oriented_availability(ent::example_network_design(), specs(), interval);
  };
  const double weekly = coa_at(168.0);
  const double monthly = coa_at(720.0);
  const double quarterly = coa_at(2160.0);
  EXPECT_LT(weekly, monthly);
  EXPECT_LT(monthly, quarterly);
}
