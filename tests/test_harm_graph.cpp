// Attack-graph tests: construction, validation, and simple-path enumeration
// with attackability masks.

#include <gtest/gtest.h>

#include "patchsec/harm/attack_graph.hpp"

namespace hm = patchsec::harm;

namespace {

/// attacker -> {a, b} -> target (diamond).
struct Diamond {
  hm::AttackGraph g;
  hm::GraphNodeId attacker, a, b, target;
  Diamond() {
    attacker = g.add_node("attacker");
    a = g.add_node("a");
    b = g.add_node("b");
    target = g.add_node("target");
    g.set_attacker(attacker);
    g.add_target(target);
    g.add_edge(attacker, a);
    g.add_edge(attacker, b);
    g.add_edge(a, target);
    g.add_edge(b, target);
  }
  [[nodiscard]] std::vector<bool> all_attackable() const {
    return std::vector<bool>(g.node_count(), true);
  }
};

}  // namespace

TEST(AttackGraph, ConstructionAndLookup) {
  hm::AttackGraph g;
  const auto n = g.add_node("dns1");
  EXPECT_EQ(g.name(n), "dns1");
  EXPECT_EQ(g.node("dns1"), n);
  EXPECT_THROW((void)g.node("nope"), std::out_of_range);
  EXPECT_THROW(g.add_node("dns1"), std::invalid_argument);
  EXPECT_THROW(g.add_node(""), std::invalid_argument);
}

TEST(AttackGraph, EdgeValidation) {
  hm::AttackGraph g;
  const auto a = g.add_node("a");
  const auto b = g.add_node("b");
  EXPECT_THROW(g.add_edge(a, a), std::invalid_argument);
  EXPECT_THROW(g.add_edge(a, 99), std::out_of_range);
  g.add_edge(a, b);
  g.add_edge(a, b);  // duplicate edges collapse
  EXPECT_EQ(g.successors(a).size(), 1u);
}

TEST(AttackGraph, AttackerAndTargetRequired) {
  hm::AttackGraph g;
  const auto a = g.add_node("a");
  EXPECT_THROW((void)g.attacker(), std::logic_error);
  g.set_attacker(a);
  EXPECT_EQ(g.attacker(), a);
  EXPECT_THROW(g.enumerate_attack_paths({true}), std::logic_error);  // no target
}

TEST(AttackGraph, DiamondHasTwoPaths) {
  const Diamond d;
  const auto paths = d.g.enumerate_attack_paths(d.all_attackable());
  ASSERT_EQ(paths.size(), 2u);
  for (const auto& p : paths) {
    ASSERT_EQ(p.size(), 2u);
    EXPECT_EQ(p.back(), d.target);
  }
}

TEST(AttackGraph, MaskRemovesPaths) {
  const Diamond d;
  std::vector<bool> mask = d.all_attackable();
  mask[d.a] = false;
  const auto paths = d.g.enumerate_attack_paths(mask);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0][0], d.b);
}

TEST(AttackGraph, UnattackableTargetMeansNoPaths) {
  const Diamond d;
  std::vector<bool> mask = d.all_attackable();
  mask[d.target] = false;
  EXPECT_TRUE(d.g.enumerate_attack_paths(mask).empty());
}

TEST(AttackGraph, MaskSizeMismatchThrows) {
  const Diamond d;
  EXPECT_THROW(d.g.enumerate_attack_paths({true, true}), std::invalid_argument);
}

TEST(AttackGraph, PathsAreSimpleNoCycles) {
  // attacker -> a <-> b -> target: the cycle a<->b must not create infinite
  // or repeated-node paths.
  hm::AttackGraph g;
  const auto attacker = g.add_node("attacker");
  const auto a = g.add_node("a");
  const auto b = g.add_node("b");
  const auto target = g.add_node("t");
  g.set_attacker(attacker);
  g.add_target(target);
  g.add_edge(attacker, a);
  g.add_edge(a, b);
  g.add_edge(b, a);
  g.add_edge(b, target);
  const auto paths = g.enumerate_attack_paths(std::vector<bool>(4, true));
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].size(), 3u);  // a, b, t
}

TEST(AttackGraph, PathsStopAtFirstTarget) {
  // target1 -> target2: a path must end at the first target it reaches.
  hm::AttackGraph g;
  const auto attacker = g.add_node("attacker");
  const auto t1 = g.add_node("t1");
  const auto t2 = g.add_node("t2");
  g.set_attacker(attacker);
  g.add_target(t1);
  g.add_target(t2);
  g.add_edge(attacker, t1);
  g.add_edge(t1, t2);
  const auto paths = g.enumerate_attack_paths(std::vector<bool>(3, true));
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].size(), 1u);
  EXPECT_EQ(paths[0][0], t1);
}

TEST(AttackGraph, MultiTargetCountsPerTarget) {
  // attacker -> a -> {t1, t2}: two paths (the 2-DB redundancy design shape).
  hm::AttackGraph g;
  const auto attacker = g.add_node("attacker");
  const auto a = g.add_node("a");
  const auto t1 = g.add_node("t1");
  const auto t2 = g.add_node("t2");
  g.set_attacker(attacker);
  g.add_target(t1);
  g.add_target(t2);
  g.add_edge(attacker, a);
  g.add_edge(a, t1);
  g.add_edge(a, t2);
  EXPECT_EQ(g.enumerate_attack_paths(std::vector<bool>(4, true)).size(), 2u);
}

TEST(AttackGraph, MaxPathsBoundEnforced) {
  // Complete bipartite layers generate 3*3 = 9 paths; cap at 4.
  hm::AttackGraph g;
  const auto attacker = g.add_node("attacker");
  std::vector<hm::GraphNodeId> layer1, layer2;
  for (int i = 0; i < 3; ++i) layer1.push_back(g.add_node("x" + std::to_string(i)));
  for (int i = 0; i < 3; ++i) layer2.push_back(g.add_node("y" + std::to_string(i)));
  const auto target = g.add_node("t");
  g.set_attacker(attacker);
  g.add_target(target);
  for (auto x : layer1) {
    g.add_edge(attacker, x);
    for (auto y : layer2) g.add_edge(x, y);
  }
  for (auto y : layer2) g.add_edge(y, target);
  const std::vector<bool> mask(g.node_count(), true);
  EXPECT_EQ(g.enumerate_attack_paths(mask).size(), 9u);
  EXPECT_THROW(g.enumerate_attack_paths(mask, 4), std::runtime_error);
}

TEST(AttackGraph, TruncatingCapMaterializesPrefixAndCountsRest) {
  // The same 3x3 bipartite layers (9 paths), capped at 4 with truncation:
  // the first 4 DFS paths come back and the other 5 are counted, not thrown.
  hm::AttackGraph g;
  const auto attacker = g.add_node("attacker");
  std::vector<hm::GraphNodeId> layer1, layer2;
  for (int i = 0; i < 3; ++i) layer1.push_back(g.add_node("x" + std::to_string(i)));
  for (int i = 0; i < 3; ++i) layer2.push_back(g.add_node("y" + std::to_string(i)));
  const auto target = g.add_node("t");
  g.set_attacker(attacker);
  g.add_target(target);
  for (auto x : layer1) {
    g.add_edge(attacker, x);
    for (auto y : layer2) g.add_edge(x, y);
  }
  for (auto y : layer2) g.add_edge(y, target);
  const std::vector<bool> mask(g.node_count(), true);

  hm::PathEnumerationStats stats;
  const auto paths =
      g.enumerate_attack_paths(mask, hm::PathEnumerationOptions{4, true}, &stats);
  EXPECT_EQ(paths.size(), 4u);
  EXPECT_EQ(stats.enumerated, 9u);
  EXPECT_EQ(stats.truncated, 5u);

  // The materialized prefix is the same DFS prefix an uncapped walk yields.
  const auto all = g.enumerate_attack_paths(mask);
  for (std::size_t i = 0; i < paths.size(); ++i) EXPECT_EQ(paths[i], all[i]);

  // A non-truncating cap still throws (the historical contract), and an
  // uncapped walk reports zero truncation.
  EXPECT_THROW(g.enumerate_attack_paths(mask, hm::PathEnumerationOptions{4, false}, &stats),
               std::runtime_error);
  hm::PathEnumerationStats exact;
  (void)g.enumerate_attack_paths(mask, hm::PathEnumerationOptions{}, &exact);
  EXPECT_EQ(exact.enumerated, 9u);
  EXPECT_EQ(exact.truncated, 0u);
}
