// Edge cases not covered by the per-module suites: numeric corner cases,
// option caps, and API misuse paths.

#include <gtest/gtest.h>

#include <cmath>

#include "patchsec/ctmc/transient.hpp"
#include "patchsec/linalg/vector_ops.hpp"
#include "patchsec/petri/reachability.hpp"
#include "patchsec/sim/srn_simulator.hpp"

namespace la = patchsec::linalg;
namespace ct = patchsec::ctmc;
namespace pt = patchsec::petri;
namespace sm = patchsec::sim;

TEST(VectorOpsEdge, ScaleInPlace) {
  std::vector<double> v{1.0, -2.0, 0.5};
  la::scale(v, -2.0);
  EXPECT_DOUBLE_EQ(v[0], -2.0);
  EXPECT_DOUBLE_EQ(v[1], 4.0);
  EXPECT_DOUBLE_EQ(v[2], -1.0);
}

TEST(VectorOpsEdge, EmptyVectors) {
  std::vector<double> empty;
  EXPECT_DOUBLE_EQ(la::sum(empty), 0.0);
  EXPECT_DOUBLE_EQ(la::norm1(empty), 0.0);
  EXPECT_DOUBLE_EQ(la::norm_inf(empty), 0.0);
  EXPECT_TRUE(la::all_finite(empty));
  EXPECT_THROW(la::normalize_probability(empty), std::domain_error);
}

TEST(TransientEdge, UndersizedExpansionFailsLoudly) {
  // Lambda*t ~ 1e4 with an 8-term cap accumulates no Poisson mass at all:
  // the solver must refuse rather than return garbage.
  ct::Ctmc c;
  c.add_states(2);
  c.add_transition(0, 1, 1000.0);
  c.add_transition(1, 0, 1000.0);
  ct::TransientOptions opt;
  opt.max_terms = 8;
  EXPECT_THROW((void)ct::transient_distribution(c, {1.0, 0.0}, 10.0, opt), std::runtime_error);
  // With an adequate expansion the same stiff problem solves fine.
  opt.max_terms = 2'000'000;
  const auto pi = ct::transient_distribution(c, {1.0, 0.0}, 10.0, opt);
  EXPECT_NEAR(pi[0], 0.5, 1e-9);  // symmetric rates: uniform limit
  EXPECT_NEAR(pi[0] + pi[1], 1.0, 1e-12);
}

TEST(TransientEdge, VeryLargeTimeIsSteadyState) {
  ct::Ctmc c;
  c.add_states(2);
  c.add_transition(0, 1, 0.25);
  c.add_transition(1, 0, 0.75);
  const auto pi = ct::transient_distribution(c, {1.0, 0.0}, 1e4);
  EXPECT_NEAR(pi[0], 0.75, 1e-9);
}

TEST(PetriEdge, ArcValidation) {
  pt::SrnModel net;
  const auto p = net.add_place("p", 1);
  const auto t = net.add_timed_transition("t", 1.0);
  EXPECT_THROW(net.add_input_arc(t, 99), std::out_of_range);
  EXPECT_THROW(net.add_input_arc(99, p), std::out_of_range);
  EXPECT_THROW(net.add_input_arc(t, p, 0), std::invalid_argument);
  EXPECT_THROW(net.add_output_arc(t, p, 0), std::invalid_argument);
  EXPECT_THROW(net.add_inhibitor_arc(t, p, 0), std::invalid_argument);
}

TEST(PetriEdge, ArcIntrospection) {
  pt::SrnModel net;
  const auto p = net.add_place("p", 1);
  const auto q = net.add_place("q", 0);
  const auto t = net.add_timed_transition("t", 1.0);
  net.add_input_arc(t, p, 2);
  net.add_output_arc(t, q, 3);
  net.add_inhibitor_arc(t, q);
  ASSERT_EQ(net.input_arcs(t).size(), 1u);
  EXPECT_EQ(net.input_arcs(t)[0].place, p);
  EXPECT_EQ(net.input_arcs(t)[0].multiplicity, 2u);
  ASSERT_EQ(net.output_arcs(t).size(), 1u);
  EXPECT_EQ(net.output_arcs(t)[0].multiplicity, 3u);
  ASSERT_EQ(net.inhibitor_arcs(t).size(), 1u);
  EXPECT_FALSE(net.has_guard(t));
  net.set_guard(t, [](const pt::Marking&) { return true; });
  EXPECT_TRUE(net.has_guard(t));
}

TEST(PetriEdge, MarkingSizeMismatchRejected) {
  pt::SrnModel net;
  const auto p = net.add_place("p", 1);
  const auto t = net.add_timed_transition("t", 1.0);
  net.add_input_arc(t, p);
  const pt::Marking wrong_size{1, 0};
  EXPECT_THROW((void)net.is_enabled(t, wrong_size), std::invalid_argument);
}

TEST(PetriEdge, MultiTokenMarkingDependentChain) {
  // N tokens drain with rate #P: the chain through N..0 has rates N, N-1, ...
  constexpr pt::TokenCount kTokens = 5;
  pt::SrnModel net;
  const auto p = net.add_place("p", kTokens);
  const auto t = net.add_timed_transition(
      "t", [p](const pt::Marking& m) { return static_cast<double>(m[p]); });
  net.add_input_arc(t, p);
  const auto graph = pt::build_reachability_graph(net);
  EXPECT_EQ(graph.tangible_count(), kTokens + 1u);
  const auto q = graph.chain.generator();
  for (pt::TokenCount k = kTokens; k > 0; --k) {
    const auto from = graph.index_of(pt::Marking{k});
    const auto to = graph.index_of(pt::Marking{static_cast<pt::TokenCount>(k - 1)});
    EXPECT_DOUBLE_EQ(q.at(from, to), static_cast<double>(k));
  }
}

TEST(SimulatorEdge, NonIndicatorRewardAveragesCorrectly) {
  // Reward = 3 in up, 7 in down: expectation = 3*A + 7*(1-A).
  pt::SrnModel net;
  const auto up = net.add_place("up", 1);
  const auto down = net.add_place("down", 0);
  const auto fail = net.add_timed_transition("fail", 1.0);
  net.add_input_arc(fail, up);
  net.add_output_arc(fail, down);
  const auto repair = net.add_timed_transition("repair", 3.0);
  net.add_input_arc(repair, down);
  net.add_output_arc(repair, up);

  sm::SrnSimulator simulator(net);
  sm::SimulationOptions opt;
  opt.seed = 5;
  opt.warmup_hours = 50.0;
  opt.batch_hours = 2000.0;
  opt.batches = 8;
  const auto est = simulator.steady_state_reward(
      [up](const pt::Marking& m) { return m[up] == 1 ? 3.0 : 7.0; }, opt);
  const double availability = 0.75;
  const double expected = 3.0 * availability + 7.0 * (1.0 - availability);
  EXPECT_NEAR(est.mean, expected, 3.0 * std::max(est.half_width_95, 5e-2));
}

TEST(ReachabilityEdge, IndexOfUnknownMarkingThrows) {
  pt::SrnModel net;
  net.add_place("p", 1);
  const auto graph = pt::build_reachability_graph(net);
  EXPECT_THROW((void)graph.index_of(pt::Marking{42}), std::out_of_range);
}
