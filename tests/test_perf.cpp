// Tests for the performance module: M/M/c closed forms (against M/M/1
// specials and known Erlang-C values) and the performability composition
// with the availability model.

#include <gtest/gtest.h>

#include <cmath>

#include "patchsec/avail/aggregation.hpp"
#include "patchsec/enterprise/network.hpp"
#include "patchsec/perf/mmc_queue.hpp"
#include "patchsec/perf/performability.hpp"

namespace pf = patchsec::perf;
namespace av = patchsec::avail;
namespace ent = patchsec::enterprise;

// ---------- M/M/c closed forms --------------------------------------------------

TEST(MmcQueue, Mm1SpecialCase) {
  // M/M/1: W = 1/(mu - lambda), Lq = rho^2/(1-rho), P(wait) = rho.
  const pf::MmcResult r = pf::solve_mmc({.arrival_rate = 3.0, .service_rate = 5.0, .servers = 1});
  ASSERT_TRUE(r.stable);
  EXPECT_NEAR(r.utilization, 0.6, 1e-12);
  EXPECT_NEAR(r.wait_probability, 0.6, 1e-12);
  EXPECT_NEAR(r.mean_response_time, 1.0 / (5.0 - 3.0), 1e-12);
  EXPECT_NEAR(r.mean_queue_length, 0.36 / 0.4, 1e-12);
  EXPECT_NEAR(r.mean_in_system, 3.0 * r.mean_response_time, 1e-12);
}

TEST(MmcQueue, LittleLawHolds) {
  for (std::size_t c : {1u, 2u, 3u, 5u, 8u}) {
    const pf::MmcResult r =
        pf::solve_mmc({.arrival_rate = 4.0, .service_rate = 1.5, .servers = c});
    if (!r.stable) continue;
    EXPECT_NEAR(r.mean_in_system, 4.0 * r.mean_response_time, 1e-9) << "c=" << c;
    EXPECT_NEAR(r.mean_queue_length, 4.0 * r.mean_waiting_time, 1e-9) << "c=" << c;
  }
}

TEST(MmcQueue, KnownErlangCValues) {
  // Classic reference: c=2, a=1 => C = 1/3.
  EXPECT_NEAR(pf::erlang_c(2, 1.0), 1.0 / 3.0, 1e-12);
  // c=1 reduces to rho.
  EXPECT_NEAR(pf::erlang_c(1, 0.7), 0.7, 1e-12);
  // Zero load: never wait.
  EXPECT_DOUBLE_EQ(pf::erlang_c(4, 0.0), 0.0);
  // Saturation: always wait.
  EXPECT_DOUBLE_EQ(pf::erlang_c(2, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(pf::erlang_c(2, 5.0), 1.0);
}

TEST(MmcQueue, MoreServersReduceWaiting) {
  double prev = INFINITY;
  for (std::size_t c = 2; c <= 8; ++c) {
    const pf::MmcResult r =
        pf::solve_mmc({.arrival_rate = 2.4, .service_rate = 1.5, .servers = c});
    ASSERT_TRUE(r.stable);
    EXPECT_LT(r.mean_waiting_time, prev);
    prev = r.mean_waiting_time;
  }
}

TEST(MmcQueue, UnstableQueueFlagged) {
  const pf::MmcResult r = pf::solve_mmc({.arrival_rate = 10.0, .service_rate = 1.0, .servers = 4});
  EXPECT_FALSE(r.stable);
  EXPECT_TRUE(std::isinf(r.mean_response_time));
  EXPECT_DOUBLE_EQ(r.wait_probability, 1.0);
}

TEST(MmcQueue, Validation) {
  EXPECT_THROW((void)pf::solve_mmc({.arrival_rate = 0.0, .service_rate = 1.0, .servers = 1}),
               std::invalid_argument);
  EXPECT_THROW((void)pf::solve_mmc({.arrival_rate = 1.0, .service_rate = 0.0, .servers = 1}),
               std::invalid_argument);
  EXPECT_THROW((void)pf::solve_mmc({.arrival_rate = 1.0, .service_rate = 1.0, .servers = 0}),
               std::invalid_argument);
  EXPECT_THROW((void)pf::erlang_c(0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)pf::erlang_c(2, -1.0), std::invalid_argument);
}

TEST(MmcQueue, TandemSumsResponseTimes) {
  const pf::MmcParameters stations[] = {{2.0, 5.0, 1}, {2.0, 4.0, 2}};
  const double expected = pf::solve_mmc(stations[0]).mean_response_time +
                          pf::solve_mmc(stations[1]).mean_response_time;
  EXPECT_NEAR(pf::tandem_response_time(stations, 2), expected, 1e-12);
}

TEST(MmcQueue, TandemUnstableStationIsInfinite) {
  const pf::MmcParameters stations[] = {{2.0, 5.0, 1}, {2.0, 1.0, 1}};
  EXPECT_TRUE(std::isinf(pf::tandem_response_time(stations, 2)));
  EXPECT_THROW((void)pf::tandem_response_time(nullptr, 0), std::invalid_argument);
}

// ---------- performability -------------------------------------------------------

namespace {

std::map<ent::ServerRole, av::AggregatedRates> paper_rates() {
  std::map<ent::ServerRole, av::AggregatedRates> rates;
  for (const auto& [role, spec] : ent::paper_server_specs()) {
    rates.emplace(role, av::aggregate_server(spec));
  }
  return rates;
}

pf::Workload paper_workload() {
  pf::Workload w;
  w.arrival_rate = 36000.0;  // 10 req/s
  w.service_rate = {{ent::ServerRole::kDns, 360000.0},
                    {ent::ServerRole::kWeb, 72000.0},
                    {ent::ServerRole::kApp, 54000.0},
                    {ent::ServerRole::kDb, 90000.0}};
  return w;
}

}  // namespace

TEST(Performability, ResponseTimeDominatedByNominalConfiguration) {
  const auto rates = paper_rates();
  const pf::PerformabilityResult r = pf::evaluate_performability(
      ent::example_network_design(), rates, paper_workload());
  // Nominal tandem: all servers up.
  const pf::MmcParameters nominal[] = {{36000.0, 360000.0, 1},
                                       {36000.0, 72000.0, 2},
                                       {36000.0, 54000.0, 2},
                                       {36000.0, 90000.0, 1}};
  const double nominal_response = pf::tandem_response_time(nominal, 4);
  // Patch states are rare: the expectation sits near (and slightly above)
  // the nominal response time.
  EXPECT_GT(r.mean_response_time, nominal_response);
  EXPECT_LT(r.mean_response_time, nominal_response * 1.05);
  EXPECT_GT(r.service_probability, 0.99);
  EXPECT_NEAR(r.service_probability + r.outage_probability, 1.0, 1e-9);
}

TEST(Performability, RedundancyCutsDegradedResponse) {
  const auto rates = paper_rates();
  pf::Workload heavy = paper_workload();
  // Load the app tier so losing one of two servers hurts visibly.
  heavy.service_rate[ent::ServerRole::kApp] = 30000.0;

  const pf::PerformabilityResult two_apps = pf::evaluate_performability(
      ent::RedundancyDesign{{1, 1, 2, 1}}, rates, heavy);
  const pf::PerformabilityResult three_apps = pf::evaluate_performability(
      ent::RedundancyDesign{{1, 1, 3, 1}}, rates, heavy);
  // More app servers: lower expected response time AND higher service prob.
  EXPECT_LT(three_apps.mean_response_time, two_apps.mean_response_time);
  EXPECT_GE(three_apps.service_probability, two_apps.service_probability);
}

TEST(Performability, SaturationCountsAsOutage) {
  const auto rates = paper_rates();
  pf::Workload w = paper_workload();
  // One app server cannot carry the load: when the tier drops to one (during
  // a patch), the queue saturates.
  w.service_rate[ent::ServerRole::kApp] = 30000.0;  // one server: rho > 1
  const pf::PerformabilityResult r =
      pf::evaluate_performability(ent::RedundancyDesign{{1, 1, 1, 1}}, rates, w);
  EXPECT_GT(r.outage_probability, 0.0);
}

TEST(Performability, Validation) {
  const auto rates = paper_rates();
  pf::Workload w = paper_workload();
  w.arrival_rate = 0.0;
  EXPECT_THROW(
      (void)pf::evaluate_performability(ent::example_network_design(), rates, w),
      std::invalid_argument);
  w = paper_workload();
  w.service_rate.erase(ent::ServerRole::kDb);
  EXPECT_THROW(
      (void)pf::evaluate_performability(ent::example_network_design(), rates, w),
      std::invalid_argument);
  EXPECT_THROW((void)pf::evaluate_performability(ent::RedundancyDesign{{0, 0, 0, 0}}, rates,
                                                 paper_workload()),
               std::invalid_argument);
}
