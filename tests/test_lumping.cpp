// Oracle-driven test layer for the exact symmetry-lumping pass (ctest label
// `lumping`).  Every claim the lumping engine makes is pinned against an
// independent unlumped oracle:
//
//  * the counting quotient of the per-server replicated network model must
//    reproduce the hand-written counting-form NetworkSrn and the flat
//    replicated solve (steady + transient) to 1e-10;
//  * the orbit-sum probability identity: flat stationary probability summed
//    over each token-count class equals the quotient stationary probability
//    of that class, with ctmc::lump_states certifying strong lumpability of
//    the flat chain directly (no SRN-level knowledge);
//  * randomized symmetric nets, fuzzed against a naive map-based reference
//    explorer in the test_reachability_fuzz mold;
//  * the product-form (component-factorized) analyzer against the joint
//    chain on the paper designs and on randomized component nets, through a
//    50-servers-per-tier design the flat engine could never touch
//    (6,765,201 joint states vs 204 lumped).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "patchsec/avail/lumped_coa.hpp"
#include "patchsec/avail/network_srn.hpp"
#include "patchsec/avail/transient_coa.hpp"
#include "patchsec/ctmc/ctmc.hpp"
#include "patchsec/ctmc/transient_solver.hpp"
#include "patchsec/enterprise/network.hpp"
#include "patchsec/petri/lumping.hpp"
#include "patchsec/petri/reachability.hpp"

namespace av = patchsec::avail;
namespace cm = patchsec::ctmc;
namespace ent = patchsec::enterprise;
namespace la = patchsec::linalg;
namespace pt = patchsec::petri;

namespace {

constexpr double kSteadyTol = 1e-10;
constexpr double kCurveTol = 1e-10;
constexpr double kAccumulatedTol = 1e-9;

const std::map<ent::ServerRole, av::AggregatedRates>& rates() {
  static const auto r = [] {
    std::map<ent::ServerRole, av::AggregatedRates> out;
    for (const auto& [role, spec] : ent::paper_server_specs()) {
      out.emplace(role, av::aggregate_server(spec));
    }
    return out;
  }();
  return r;
}

pt::AnalyzerOptions tight_options() {
  pt::AnalyzerOptions options;
  options.steady_state.tolerance = 1e-13;
  return options;
}

ent::RedundancyDesign uniform_design(unsigned k) {
  ent::RedundancyDesign design;
  design.counts = {k, k, k, k};
  return design;
}

// ---------------------------------------------------------------------------
// Naive reference explorer (timed-only nets), in the test_reachability_fuzz
// mold: std::map-based BFS written against the slow SrnModel semantics API,
// sharing no code with the production explorers.
// ---------------------------------------------------------------------------

struct RefGraph {
  std::vector<pt::Marking> markings;  // discovery order
  std::map<pt::Marking, std::size_t> index;
  std::map<std::pair<std::size_t, std::size_t>, double> edges;  // (from,to) -> rate
  cm::Ctmc chain;
};

RefGraph ref_explore(const pt::SrnModel& model) {
  RefGraph graph;
  const auto intern = [&graph](const pt::Marking& m) -> std::size_t {
    const auto [it, inserted] = graph.index.try_emplace(m, graph.markings.size());
    if (inserted) graph.markings.push_back(m);
    return it->second;
  };
  intern(model.initial_marking());
  for (std::size_t from = 0; from < graph.markings.size(); ++from) {
    const pt::Marking current = graph.markings[from];
    for (pt::TransitionId t : model.enabled_timed(current)) {
      const double rate = model.rate(t, current);
      const std::size_t to = intern(model.fire(t, current));
      if (to == from) continue;  // net self loop: dropped, as in production
      graph.edges[{from, to}] += rate;
    }
  }
  graph.chain.add_states(graph.markings.size());
  for (const auto& [edge, rate] : graph.edges) {
    graph.chain.add_transition(edge.first, edge.second, rate);
  }
  return graph;
}

// ---------------------------------------------------------------------------
// Randomized symmetric nets: R exchangeable replicas of a random L-slot
// single-token state machine (a rate-randomized ring plus random chords),
// optionally coupled to a shared token pool through pool-gated chords and
// accompanied by passthrough transitions on the pool.
// ---------------------------------------------------------------------------

struct SymmetricFuzzNet {
  pt::SrnModel model;
  pt::SymmetrySpec spec;
  std::vector<std::vector<pt::PlaceId>> replicas;  // [replica][slot]
  pt::PlaceId pool = 0;
  bool has_pool = false;
};

SymmetricFuzzNet random_symmetric_net(std::mt19937_64& rng) {
  SymmetricFuzzNet net;
  std::uniform_int_distribution<int> slots_dist(2, 4);
  std::uniform_int_distribution<int> replicas_dist(2, 4);
  std::uniform_real_distribution<double> rate_dist(0.2, 3.0);
  std::uniform_int_distribution<int> coin(0, 1);

  const int slots = slots_dist(rng);
  const int replicas = replicas_dist(rng);

  net.has_pool = coin(rng) == 1;
  pt::PlaceId pad = 0;
  if (net.has_pool) {
    std::uniform_int_distribution<pt::TokenCount> pool_tokens(1, 2);
    net.pool = net.model.add_place("pool", pool_tokens(rng));
    pad = net.model.add_place("pad", 1);
  }

  // Transition templates shared by every replica: the full ring (keeps each
  // replica irreducible) plus up to two random chords, one of which may be
  // pool-gated (consumes and reproduces a pool token, coupling the replicas
  // to the shared place without breaking their exchangeability).
  struct Template {
    int from, to;
    double rate;
    bool pool_gated;
  };
  std::vector<Template> templates;
  for (int s = 0; s < slots; ++s) {
    templates.push_back({s, (s + 1) % slots, rate_dist(rng), false});
  }
  std::uniform_int_distribution<int> slot_pick(0, slots - 1);
  const int chords = std::uniform_int_distribution<int>(0, 2)(rng);
  for (int c = 0; c < chords; ++c) {
    const int from = slot_pick(rng);
    int to = slot_pick(rng);
    if (to == from) to = (to + 1) % slots;
    templates.push_back({from, to, rate_dist(rng), net.has_pool && coin(rng) == 1});
  }

  std::uniform_int_distribution<int> start_slot(0, slots - 1);
  for (int r = 0; r < replicas; ++r) {
    const int start = start_slot(rng);  // replicas may start in different slots
    std::vector<pt::PlaceId> places;
    for (int s = 0; s < slots; ++s) {
      places.push_back(net.model.add_place("r" + std::to_string(r) + "s" + std::to_string(s),
                                           s == start ? 1 : 0));
    }
    for (std::size_t i = 0; i < templates.size(); ++i) {
      const Template& tmpl = templates[i];
      const pt::TransitionId t = net.model.add_timed_transition(
          "t" + std::to_string(r) + "_" + std::to_string(i), tmpl.rate);
      net.model.add_input_arc(t, places[tmpl.from]);
      net.model.add_output_arc(t, places[tmpl.to]);
      if (tmpl.pool_gated) {
        net.model.add_input_arc(t, net.pool);
        net.model.add_output_arc(t, net.pool);
      }
    }
    net.replicas.push_back(places);
  }
  net.spec.groups.push_back({net.replicas});

  if (net.has_pool) {
    // Passthrough transitions: the pool exchanges a token with the pad at
    // random rates, exercising the non-grouped survival path of lump_model.
    const pt::TransitionId drain = net.model.add_timed_transition("drain", rate_dist(rng));
    net.model.add_input_arc(drain, net.pool);
    net.model.add_output_arc(drain, pad);
    const pt::TransitionId refill = net.model.add_timed_transition("refill", rate_dist(rng));
    net.model.add_input_arc(refill, pad);
    net.model.add_output_arc(refill, net.pool);
  }
  return net;
}

// A replica-permutation-symmetric reward on the flat net: tokens in slot 0
// across all replicas, scaled by (1 + pool occupancy) when a pool exists.
pt::RewardFunction symmetric_reward(const SymmetricFuzzNet& net) {
  std::vector<pt::PlaceId> slot0;
  for (const auto& replica : net.replicas) slot0.push_back(replica[0]);
  const bool has_pool = net.has_pool;
  const pt::PlaceId pool = net.pool;
  return [slot0, has_pool, pool](const pt::Marking& m) {
    double tokens = 0.0;
    for (const pt::PlaceId p : slot0) tokens += m[p];
    return tokens * (has_pool ? 1.0 + static_cast<double>(m[pool]) : 1.0);
  };
}

}  // namespace

// ---------------------------------------------------------------------------
// Counting quotient vs the hand-written counting net and the flat oracle
// ---------------------------------------------------------------------------

TEST(LumpModel, ReplicatedNetQuotientMatchesCountingNet) {
  const auto design = ent::example_network_design();
  const av::ReplicatedNetworkSrn flat = av::build_network_srn_replicated(design, rates());
  const pt::LumpedNet lumped = pt::lump_model(flat.model, flat.symmetry);
  const av::NetworkSrn counting = av::build_network_srn(design, rates());

  // Same shape: two count places and two transitions per deployed tier, with
  // the same initial token counts the counting form assigns.
  EXPECT_EQ(lumped.model().place_count(), counting.model.place_count());
  EXPECT_EQ(lumped.model().transition_count(), counting.model.transition_count());
  ASSERT_EQ(lumped.project(flat.model.initial_marking()),
            lumped.model().initial_marking());

  // Same analysis: identical tangible state count and identical COA.
  const pt::SrnAnalyzer quotient(lumped.model(), tight_options());
  const pt::SrnAnalyzer reference(counting.model, tight_options());
  EXPECT_EQ(quotient.graph().tangible_count(), reference.graph().tangible_count());
  EXPECT_NEAR(quotient.expected_reward(lumped.lift_reward(flat.coa_reward())),
              reference.expected_reward(counting.coa_reward()), 1e-12);
}

TEST(LumpModel, QuotientMatchesFlatReplicatedOracle) {
  const auto design = ent::example_network_design();  // 6 servers: 64 flat states
  const av::ReplicatedNetworkSrn flat = av::build_network_srn_replicated(design, rates());
  const pt::LumpedNet lumped = pt::lump_model(flat.model, flat.symmetry);

  const pt::SrnAnalyzer flat_analyzer(flat.model, tight_options());
  const pt::SrnAnalyzer quotient_analyzer(lumped.model(), tight_options());
  EXPECT_EQ(flat_analyzer.graph().tangible_count(), 64u);
  EXPECT_EQ(quotient_analyzer.graph().tangible_count(), 36u);  // 2*3*3*2

  EXPECT_NEAR(flat_analyzer.expected_reward(flat.coa_reward()),
              quotient_analyzer.expected_reward(lumped.lift_reward(flat.coa_reward())),
              kSteadyTol);
}

TEST(LumpModel, OrbitSumProbabilityIdentityOnPaperNet) {
  const auto design = ent::example_network_design();
  const av::ReplicatedNetworkSrn flat = av::build_network_srn_replicated(design, rates());
  const pt::LumpedNet lumped = pt::lump_model(flat.model, flat.symmetry);

  const pt::SrnAnalyzer flat_analyzer(flat.model, tight_options());
  const pt::SrnAnalyzer quotient_analyzer(lumped.model(), tight_options());
  const pt::ReachabilityGraph& fg = flat_analyzer.graph();
  const pt::ReachabilityGraph& qg = quotient_analyzer.graph();

  // Class of each flat state = quotient index of its projection.
  std::vector<std::size_t> partition(fg.tangible_count());
  for (std::size_t i = 0; i < fg.tangible_count(); ++i) {
    partition[i] = qg.index_of(lumped.project(fg.tangible_markings[i]));
  }

  // Independent certificate: the flat chain itself is strongly lumpable over
  // this partition, and its quotient chain reproduces the quotient net's
  // stationary distribution.
  const cm::LumpabilityResult cert = cm::lump_states(fg.chain, partition, qg.tangible_count());
  EXPECT_TRUE(cert.lumpable);
  EXPECT_LT(cert.max_deviation, 1e-9);

  std::vector<double> orbit_sums(qg.tangible_count(), 0.0);
  for (std::size_t i = 0; i < fg.tangible_count(); ++i) {
    orbit_sums[partition[i]] += flat_analyzer.steady_state()[i];
  }
  const la::SteadyStateResult cert_steady = cert.quotient.steady_state(
      la::SteadyStateOptions{.tolerance = 1e-13});
  ASSERT_TRUE(cert_steady.converged);
  for (std::size_t c = 0; c < qg.tangible_count(); ++c) {
    EXPECT_NEAR(orbit_sums[c], quotient_analyzer.steady_state()[c], kSteadyTol);
    EXPECT_NEAR(cert_steady.distribution[c], quotient_analyzer.steady_state()[c], kSteadyTol);
  }
}

TEST(LumpModel, TransientCurveMatchesFlatReplicated) {
  const auto design = ent::example_network_design();
  const av::ReplicatedNetworkSrn flat = av::build_network_srn_replicated(design, rates());
  const pt::LumpedNet lumped = pt::lump_model(flat.model, flat.symmetry);

  const pt::ReachabilityGraph fg = pt::build_reachability_graph(flat.model);
  const pt::ReachabilityGraph qg = pt::build_reachability_graph(lumped.model());
  const std::vector<double> grid{0.5, 2.0, 6.0, 12.0, 24.0};

  const pt::RewardFunction flat_reward = flat.coa_reward();
  const pt::RewardFunction lifted = lumped.lift_reward(flat.coa_reward());
  std::vector<double> flat_rewards, quotient_rewards;
  for (const pt::Marking& m : fg.tangible_markings) flat_rewards.push_back(flat_reward(m));
  for (const pt::Marking& m : qg.tangible_markings) quotient_rewards.push_back(lifted(m));

  std::vector<double> flat_initial(fg.tangible_count(), 0.0);
  flat_initial[fg.index_of(flat.model.initial_marking())] = 1.0;
  std::vector<double> quotient_initial(qg.tangible_count(), 0.0);
  quotient_initial[qg.index_of(lumped.project(flat.model.initial_marking()))] = 1.0;

  cm::TransientSolver flat_solver, quotient_solver;
  flat_solver.prepare(fg.chain);
  quotient_solver.prepare(qg.chain);
  std::vector<double> flat_curve, quotient_curve;
  const double flat_acc = flat_solver.reward_curve(flat_initial, flat_rewards, grid, flat_curve);
  const double quotient_acc =
      quotient_solver.reward_curve(quotient_initial, quotient_rewards, grid, quotient_curve);

  for (std::size_t j = 0; j < grid.size(); ++j) {
    EXPECT_NEAR(flat_curve[j], quotient_curve[j], kCurveTol) << "t=" << grid[j];
  }
  EXPECT_NEAR(flat_acc, quotient_acc, kAccumulatedTol);
}

// ---------------------------------------------------------------------------
// Exactness-violation rejection
// ---------------------------------------------------------------------------

namespace {

// Two replicas of an up/down toggle; `mutate` perturbs the construction.
struct ToggleNet {
  pt::SrnModel model;
  pt::SymmetrySpec spec;
  std::vector<pt::PlaceId> up, down;
  std::vector<pt::TransitionId> fail;
};

ToggleNet toggle_net() {
  ToggleNet net;
  for (int r = 0; r < 2; ++r) {
    const auto up = net.model.add_place("up" + std::to_string(r), 1);
    const auto down = net.model.add_place("down" + std::to_string(r), 0);
    const auto fail = net.model.add_timed_transition("fail" + std::to_string(r), 0.5);
    net.model.add_input_arc(fail, up);
    net.model.add_output_arc(fail, down);
    const auto fix = net.model.add_timed_transition("fix" + std::to_string(r), 2.0);
    net.model.add_input_arc(fix, down);
    net.model.add_output_arc(fix, up);
    net.up.push_back(up);
    net.down.push_back(down);
    net.fail.push_back(fail);
  }
  net.spec.groups.push_back({{{net.up[0], net.down[0]}, {net.up[1], net.down[1]}}});
  return net;
}

}  // namespace

TEST(LumpModel, RejectsExactnessViolations) {
  {  // marking-dependent rate on a replica transition
    ToggleNet net = toggle_net();
    const auto t = net.model.add_timed_transition(
        "dep", [](const pt::Marking& m) { return 1.0 + m[0]; });
    net.model.add_input_arc(t, net.up[0]);
    net.model.add_output_arc(t, net.down[0]);
    EXPECT_THROW((void)pt::lump_model(net.model, net.spec), std::invalid_argument);
  }
  {  // guard on a replica transition
    ToggleNet net = toggle_net();
    net.model.set_guard(net.fail[0], [](const pt::Marking&) { return true; });
    EXPECT_THROW((void)pt::lump_model(net.model, net.spec), std::invalid_argument);
  }
  {  // asymmetric orbit: replica 1's extra transition has no counterpart
    ToggleNet net = toggle_net();
    const auto t = net.model.add_timed_transition("extra", 0.7);
    net.model.add_input_arc(t, net.up[1]);
    net.model.add_output_arc(t, net.down[1]);
    EXPECT_THROW((void)pt::lump_model(net.model, net.spec), std::invalid_argument);
  }
  {  // asymmetric rates within an orbit are two incomplete orbits
    pt::SrnModel model;
    pt::SymmetrySpec spec;
    std::vector<std::vector<pt::PlaceId>> replicas;
    for (int r = 0; r < 2; ++r) {
      const auto up = model.add_place("up" + std::to_string(r), 1);
      const auto down = model.add_place("down" + std::to_string(r), 0);
      const auto fail =
          model.add_timed_transition("fail" + std::to_string(r), r == 0 ? 0.5 : 0.6);
      model.add_input_arc(fail, up);
      model.add_output_arc(fail, down);
      const auto fix = model.add_timed_transition("fix" + std::to_string(r), 2.0);
      model.add_input_arc(fix, down);
      model.add_output_arc(fix, up);
      replicas.push_back({up, down});
    }
    spec.groups.push_back({replicas});
    EXPECT_THROW((void)pt::lump_model(model, spec), std::invalid_argument);
  }
  {  // replica holding two tokens
    ToggleNet net = toggle_net();
    pt::SrnModel model;
    const auto up0 = model.add_place("up0", 2);
    const auto down0 = model.add_place("down0", 0);
    const auto up1 = model.add_place("up1", 2);
    const auto down1 = model.add_place("down1", 0);
    pt::SymmetrySpec spec;
    spec.groups.push_back({{{up0, down0}, {up1, down1}}});
    EXPECT_THROW((void)pt::lump_model(model, spec), std::invalid_argument);
  }
  {  // inhibitor arc on a grouped place
    ToggleNet net = toggle_net();
    const auto shared = net.model.add_place("shared", 1);
    const auto t = net.model.add_timed_transition("inh", 1.0);
    net.model.add_input_arc(t, shared);
    net.model.add_output_arc(t, shared);
    net.model.add_inhibitor_arc(t, net.down[0]);
    EXPECT_THROW((void)pt::lump_model(net.model, net.spec), std::invalid_argument);
  }
  {  // overlapping groups
    ToggleNet net = toggle_net();
    pt::SymmetrySpec spec = net.spec;
    spec.groups.push_back(spec.groups.front());
    EXPECT_THROW((void)pt::lump_model(net.model, spec), std::invalid_argument);
  }
  {  // immediate transition touching a grouped place
    ToggleNet net = toggle_net();
    const auto t = net.model.add_immediate_transition("imm");
    net.model.add_input_arc(t, net.down[0]);
    net.model.add_output_arc(t, net.up[0]);
    EXPECT_THROW((void)pt::lump_model(net.model, net.spec), std::invalid_argument);
  }
}

// ---------------------------------------------------------------------------
// Randomized symmetric nets vs the naive reference explorer
// ---------------------------------------------------------------------------

TEST(LumpModel, RandomSymmetricNetsAgreeWithNaiveOracle) {
  const la::SteadyStateOptions solve{.tolerance = 1e-13};
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    std::mt19937_64 rng(0x1a2b3c4d5e6f7788ull ^ (seed * 0x9e3779b97f4a7c15ull));
    const SymmetricFuzzNet net = random_symmetric_net(rng);
    const pt::LumpedNet lumped = pt::lump_model(net.model, net.spec);

    // Oracle side: naive flat exploration and flat steady state.
    const RefGraph flat = ref_explore(net.model);
    const la::SteadyStateResult flat_steady = flat.chain.steady_state(solve);
    ASSERT_TRUE(flat_steady.converged);

    // Production side: the quotient net through the ordinary analyzer.
    pt::AnalyzerOptions options;
    options.steady_state = solve;
    const pt::SrnAnalyzer quotient(lumped.model(), options);
    const pt::ReachabilityGraph& qg = quotient.graph();
    ASSERT_LE(qg.tangible_count(), flat.markings.size());

    std::vector<std::size_t> partition(flat.markings.size());
    for (std::size_t i = 0; i < flat.markings.size(); ++i) {
      partition[i] = qg.index_of(lumped.project(flat.markings[i]));
    }

    // Certificate on the flat chain alone.
    const cm::LumpabilityResult cert =
        cm::lump_states(flat.chain, partition, qg.tangible_count());
    EXPECT_TRUE(cert.lumpable) << "max deviation " << cert.max_deviation;

    // Orbit-sum identity.
    std::vector<double> orbit_sums(qg.tangible_count(), 0.0);
    for (std::size_t i = 0; i < flat.markings.size(); ++i) {
      orbit_sums[partition[i]] += flat_steady.distribution[i];
    }
    for (std::size_t c = 0; c < qg.tangible_count(); ++c) {
      EXPECT_NEAR(orbit_sums[c], quotient.steady_state()[c], kSteadyTol);
    }

    // Lifted symmetric reward: steady expectation and two transient points.
    const pt::RewardFunction flat_reward = symmetric_reward(net);
    const pt::RewardFunction lifted = lumped.lift_reward(flat_reward);
    double flat_expect = 0.0;
    for (std::size_t i = 0; i < flat.markings.size(); ++i) {
      flat_expect += flat_steady.distribution[i] * flat_reward(flat.markings[i]);
    }
    EXPECT_NEAR(flat_expect, quotient.expected_reward(lifted), kSteadyTol);

    std::vector<double> flat_rewards, quotient_rewards;
    for (const pt::Marking& m : flat.markings) flat_rewards.push_back(flat_reward(m));
    for (const pt::Marking& m : qg.tangible_markings) quotient_rewards.push_back(lifted(m));
    std::vector<double> flat_initial(flat.markings.size(), 0.0);
    flat_initial[flat.index.at(net.model.initial_marking())] = 1.0;
    std::vector<double> quotient_initial(qg.tangible_count(), 0.0);
    quotient_initial[qg.index_of(lumped.project(net.model.initial_marking()))] = 1.0;

    cm::TransientSolver flat_solver, quotient_solver;
    flat_solver.prepare(flat.chain);
    quotient_solver.prepare(qg.chain);
    const std::vector<double> grid{0.4, 2.3};
    std::vector<double> flat_curve, quotient_curve;
    (void)flat_solver.reward_curve(flat_initial, flat_rewards, grid, flat_curve);
    (void)quotient_solver.reward_curve(quotient_initial, quotient_rewards, grid,
                                       quotient_curve);
    for (std::size_t j = 0; j < grid.size(); ++j) {
      EXPECT_NEAR(flat_curve[j], quotient_curve[j], kCurveTol) << "t=" << grid[j];
    }
  }
}

// ---------------------------------------------------------------------------
// Product form vs the joint chain
// ---------------------------------------------------------------------------

TEST(Factored, PaperDesignsSteadyStateMatchesFlatOracle) {
  std::vector<ent::RedundancyDesign> designs = ent::paper_designs();
  designs.push_back(uniform_design(2));
  designs.push_back(uniform_design(4));
  designs.push_back(uniform_design(6));
  for (const auto& design : designs) {
    SCOPED_TRACE(design.name());
    const av::CoaEvaluation flat =
        av::capacity_oriented_availability_detailed(design, rates(), tight_options());
    const av::CoaEvaluation lumped =
        av::capacity_oriented_availability_lumped_detailed(design, rates(), tight_options());
    EXPECT_NEAR(flat.coa, lumped.coa, kSteadyTol);
    EXPECT_NEAR(av::coa_closed_form(design, rates()), lumped.coa, kSteadyTol);

    std::size_t sum = 0, product = 1;
    for (unsigned n : design.counts) {
      if (n == 0) continue;
      sum += n + 1;
      product *= n + 1;
    }
    EXPECT_EQ(lumped.diagnostics.tangible_states, sum);
    EXPECT_EQ(lumped.diagnostics.flat_states, product);
    EXPECT_EQ(flat.diagnostics.tangible_states, product);
    EXPECT_TRUE(lumped.diagnostics.converged);
  }
}

TEST(Factored, PaperDesignsTransientMatchesFlatOracle) {
  std::vector<ent::RedundancyDesign> designs{ent::example_network_design(), uniform_design(3)};
  const std::vector<double> grid{0.5, 2.0, 6.0, 12.0, 24.0};
  for (const auto& design : designs) {
    SCOPED_TRACE(design.name());
    av::TransientCoaOptions options;
    for (unsigned role = 0; role < ent::kRoleCount; ++role) {
      options.initial_down.emplace(static_cast<ent::ServerRole>(role), 1u);
    }
    const av::CoaCurveEvaluation flat =
        av::transient_coa_detailed(design, rates(), grid, options);
    const av::CoaCurveEvaluation lumped =
        av::transient_coa_lumped_detailed(design, rates(), grid, options);
    ASSERT_EQ(flat.curve.size(), lumped.curve.size());
    for (std::size_t j = 0; j < grid.size(); ++j) {
      EXPECT_NEAR(flat.curve[j].coa, lumped.curve[j].coa, kCurveTol) << "t=" << grid[j];
    }
    EXPECT_NEAR(flat.accumulated_coa_hours, lumped.accumulated_coa_hours, kAccumulatedTol);
  }
}

TEST(Factored, RandomComponentNetsMatchJointOracle) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    std::mt19937_64 rng(0xfeedface00c0ffeeull ^ (seed * 0x9e3779b97f4a7c15ull));
    std::uniform_int_distribution<int> component_count(2, 3);
    std::uniform_int_distribution<int> ring_size(2, 3);
    std::uniform_int_distribution<pt::TokenCount> tokens(1, 2);
    std::uniform_real_distribution<double> rate_dist(0.3, 2.5);
    std::uniform_real_distribution<double> coeff_dist(0.5, 1.5);
    std::uniform_int_distribution<int> factor_kind(0, 2);

    pt::SrnModel model;
    pt::ComponentSplit split;
    const int components = component_count(rng);
    for (int c = 0; c < components; ++c) {
      const int ring = ring_size(rng);
      std::vector<pt::PlaceId> places;
      for (int s = 0; s < ring; ++s) {
        places.push_back(model.add_place("c" + std::to_string(c) + "p" + std::to_string(s),
                                         s == 0 ? tokens(rng) : 0));
      }
      for (int s = 0; s < ring; ++s) {
        const pt::TransitionId t = model.add_timed_transition(
            "c" + std::to_string(c) + "t" + std::to_string(s), rate_dist(rng));
        model.add_input_arc(t, places[s]);
        model.add_output_arc(t, places[(s + 1) % ring]);
      }
      split.components.push_back(places);
    }

    // Random separable reward: two sum-of-product terms with per-component
    // factors drawn from {1, affine in a random place}.
    pt::SeparableReward reward;
    for (int term_index = 0; term_index < 2; ++term_index) {
      pt::SeparableReward::Term term;
      term.coefficient = coeff_dist(rng);
      term.factors.resize(components);
      for (int c = 0; c < components; ++c) {
        if (factor_kind(rng) == 0) continue;  // constant-1 factor
        const auto& places = split.components[c];
        const pt::PlaceId p =
            places[std::uniform_int_distribution<std::size_t>(0, places.size() - 1)(rng)];
        const double offset = coeff_dist(rng);
        const double scale = coeff_dist(rng);
        term.factors[c] = [offset, scale, p](const pt::Marking& m) {
          return offset + scale * static_cast<double>(m[p]);
        };
      }
      reward.terms.push_back(std::move(term));
    }
    const pt::RewardFunction joint_reward = [&reward](const pt::Marking& m) {
      double total = 0.0;
      for (const auto& term : reward.terms) {
        double product = term.coefficient;
        for (const auto& factor : term.factors) {
          if (factor) product *= factor(m);
        }
        total += product;
      }
      return total;
    };

    const pt::FactoredAnalyzer factored(model, split, tight_options());
    const pt::SrnAnalyzer joint(model, tight_options());
    EXPECT_NEAR(joint.expected_reward(joint_reward), factored.expected_reward(reward),
                kSteadyTol);
    EXPECT_EQ(factored.diagnostics().flat_states, joint.graph().tangible_count());

    const std::vector<double> grid{0.7, 1.9, 4.2};
    std::vector<double> joint_rewards;
    for (const pt::Marking& m : joint.graph().tangible_markings) {
      joint_rewards.push_back(joint_reward(m));
    }
    std::vector<double> joint_initial(joint.graph().tangible_count(), 0.0);
    joint_initial[joint.graph().index_of(model.initial_marking())] = 1.0;
    cm::TransientSolver joint_solver;
    joint_solver.prepare(joint.graph().chain);
    std::vector<double> joint_curve, factored_curve;
    const double joint_acc =
        joint_solver.reward_curve(joint_initial, joint_rewards, grid, joint_curve);
    const double factored_acc = factored.reward_curve(reward, grid, factored_curve);
    for (std::size_t j = 0; j < grid.size(); ++j) {
      EXPECT_NEAR(joint_curve[j], factored_curve[j], kCurveTol) << "t=" << grid[j];
    }
    EXPECT_NEAR(joint_acc, factored_acc, kAccumulatedTol);
  }
}

TEST(Factored, FiftyServersPerTierEvaluatesExactly) {
  const ent::RedundancyDesign design = uniform_design(50);
  const av::CoaEvaluation lumped =
      av::capacity_oriented_availability_lumped_detailed(design, rates(), tight_options());
  EXPECT_EQ(lumped.diagnostics.tangible_states, 4u * 51u);
  EXPECT_EQ(lumped.diagnostics.flat_states, 51u * 51u * 51u * 51u);
  EXPECT_GE(lumped.diagnostics.flat_states / lumped.diagnostics.tangible_states, 100u);
  EXPECT_TRUE(lumped.diagnostics.converged);
  // The closed form handles k = 50 independently of the lumping machinery.
  EXPECT_NEAR(av::coa_closed_form(design, rates()), lumped.coa, kAccumulatedTol);
  EXPECT_GT(lumped.coa, 0.9);
  EXPECT_LE(lumped.coa, 1.0);

  // Transient: a deep patch wave heals toward the steady state.
  av::TransientCoaOptions options;
  for (unsigned role = 0; role < ent::kRoleCount; ++role) {
    options.initial_down.emplace(static_cast<ent::ServerRole>(role), 5u);
  }
  const std::vector<double> grid{0.5, 2.0, 6.0, 12.0, 24.0, 2000.0};
  const av::CoaCurveEvaluation curve =
      av::transient_coa_lumped_detailed(design, rates(), grid, options);
  for (const av::CoaPoint& point : curve.curve) {
    EXPECT_GE(point.coa, 0.0);
    EXPECT_LE(point.coa, 1.0);
  }
  EXPECT_LT(curve.curve.front().coa, curve.curve.back().coa);  // the dip heals
  EXPECT_NEAR(curve.curve.back().coa, lumped.coa, 1e-6);       // t = 2000 h is steady
}

TEST(Factored, ValidationErrors) {
  pt::SrnModel model;
  const auto a = model.add_place("a", 1);
  const auto b = model.add_place("b", 0);
  const auto t = model.add_timed_transition("t", 1.0);
  model.add_input_arc(t, a);
  model.add_output_arc(t, b);
  const auto back = model.add_timed_transition("back", 1.0);
  model.add_input_arc(back, b);
  model.add_output_arc(back, a);

  {  // spanning transition
    pt::ComponentSplit split;
    split.components = {{a}, {b}};
    EXPECT_THROW((void)pt::component_transitions(model, split), std::invalid_argument);
  }
  {  // not a partition: place missing
    pt::ComponentSplit split;
    split.components = {{a}};
    EXPECT_THROW((void)pt::component_transitions(model, split), std::invalid_argument);
  }
  {  // not a partition: duplicate place
    pt::ComponentSplit split;
    split.components = {{a, b}, {b}};
    EXPECT_THROW((void)pt::component_transitions(model, split), std::invalid_argument);
  }
  {  // immediates break the product form
    pt::SrnModel imm = model;
    const auto i = imm.add_immediate_transition("imm");
    imm.add_input_arc(i, a);
    imm.add_output_arc(i, b);
    pt::ComponentSplit split;
    split.components = {{a, b}};
    EXPECT_THROW((void)pt::component_transitions(imm, split), std::invalid_argument);
  }
  {  // well-formed split succeeds and assigns both transitions
    pt::ComponentSplit split;
    split.components = {{a, b}};
    const auto assignment = pt::component_transitions(model, split);
    ASSERT_EQ(assignment.size(), 1u);
    EXPECT_EQ(assignment[0].size(), 2u);
  }
}
