// Tests for transient COA analysis (the capacity dip after a patch event)
// and for the synchronized-patching ablation model.

#include <gtest/gtest.h>

#include "patchsec/avail/transient_coa.hpp"
#include "patchsec/enterprise/network.hpp"
#include "patchsec/petri/reachability.hpp"

namespace av = patchsec::avail;
namespace ent = patchsec::enterprise;

namespace {

const std::map<ent::ServerRole, av::AggregatedRates>& rates() {
  static const auto r = [] {
    std::map<ent::ServerRole, av::AggregatedRates> out;
    for (const auto& [role, spec] : ent::paper_server_specs()) {
      out.emplace(role, av::aggregate_server(spec));
    }
    return out;
  }();
  return r;
}

}  // namespace

TEST(TransientCoa, DipAtZeroHealsTowardSteadyState) {
  const ent::RedundancyDesign design = ent::example_network_design();
  const std::map<ent::ServerRole, unsigned> one_web_down{{ent::ServerRole::kWeb, 1}};
  const auto curve =
      av::transient_coa_curve(design, rates(), one_web_down, {0.0, 0.2, 0.5, 1.5, 1000.0});
  ASSERT_EQ(curve.size(), 5u);
  // t=0: one of six servers down, the rest up: COA exactly 5/6.
  EXPECT_NEAR(curve[0].coa, 5.0 / 6.0, 1e-9);
  // Recovery within the MTTR time scale is strictly monotone; past that the
  // curve has flattened onto the steady state.
  for (std::size_t i = 1; i + 1 < curve.size(); ++i) {
    EXPECT_GT(curve[i].coa, curve[i - 1].coa) << "i=" << i;
  }
  EXPECT_GE(curve.back().coa, curve[curve.size() - 2].coa - 1e-9);
  const double steady = av::capacity_oriented_availability(design, rates());
  EXPECT_NEAR(curve.back().coa, steady, 1e-4);
}

TEST(TransientCoa, WholeTierDownStartsAtZero) {
  const ent::RedundancyDesign design = ent::example_network_design();
  const std::map<ent::ServerRole, unsigned> db_down{{ent::ServerRole::kDb, 1}};
  const auto curve = av::transient_coa_curve(design, rates(), db_down, {0.0, 0.25});
  EXPECT_DOUBLE_EQ(curve[0].coa, 0.0);  // db tier fully down: no service
  EXPECT_GT(curve[1].coa, 0.0);
}

TEST(TransientCoa, InitialDownClampedToTierSize) {
  const ent::RedundancyDesign design{{1, 1, 1, 1}};
  const std::map<ent::ServerRole, unsigned> excessive{{ent::ServerRole::kWeb, 5}};
  const auto curve = av::transient_coa_curve(design, rates(), excessive, {0.0});
  EXPECT_DOUBLE_EQ(curve[0].coa, 0.0);  // the single web server is down
}

TEST(TransientCoa, RedundantTierHealsFasterInitialLoss) {
  // One web down: the 2-web design still serves (5/6 capacity) while the
  // 1-web design is fully out at t=0.
  const std::map<ent::ServerRole, unsigned> one_web{{ent::ServerRole::kWeb, 1}};
  const auto redundant = av::transient_coa_curve(ent::example_network_design(), rates(),
                                                 one_web, {0.0});
  const auto bare =
      av::transient_coa_curve(ent::RedundancyDesign{{1, 1, 1, 1}}, rates(), one_web, {0.0});
  EXPECT_NEAR(redundant[0].coa, 5.0 / 6.0, 1e-9);
  EXPECT_DOUBLE_EQ(bare[0].coa, 0.0);
}

TEST(TransientCoa, ShortfallPositiveAndBoundedByDipDepth) {
  const ent::RedundancyDesign design = ent::example_network_design();
  const std::map<ent::ServerRole, unsigned> one_app{{ent::ServerRole::kApp, 1}};
  const double shortfall = av::patch_dip_shortfall(design, rates(), one_app, 24.0, 256);
  EXPECT_GT(shortfall, 0.0);
  // The dip starts at depth (steady - 5/6) and shrinks: the integral over
  // 24 h is far below depth * horizon.
  const double steady = av::capacity_oriented_availability(design, rates());
  EXPECT_LT(shortfall, (steady - 5.0 / 6.0) * 24.0);
  // MTTR of the app tier is ~1 h, so the shortfall is on the order of
  // depth * MTTR; allow generous slack.
  EXPECT_NEAR(shortfall, (steady - 5.0 / 6.0) * 1.0, 0.1);
}

TEST(TransientCoa, Validation) {
  EXPECT_THROW((void)av::transient_coa_curve(ent::example_network_design(), rates(), {}, {}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)av::transient_coa_curve(ent::example_network_design(), rates(), {}, {-1.0}),
      std::invalid_argument);
  EXPECT_THROW(
      (void)av::patch_dip_shortfall(ent::example_network_design(), rates(), {}, 0.0),
      std::invalid_argument);
}

// ---------- synchronized patching ablation ----------------------------------------

TEST(SynchronizedPatch, RedundancyBuysNothing) {
  // Under whole-tier maintenance windows, doubling a tier does not improve
  // COA the way independent clocks do.
  const double independent =
      av::capacity_oriented_availability(ent::RedundancyDesign{{1, 1, 2, 1}}, rates());
  const double synchronized = av::capacity_oriented_availability_synchronized(
      ent::RedundancyDesign{{1, 1, 2, 1}}, rates());
  EXPECT_GT(independent, synchronized);
}

TEST(SynchronizedPatch, NoRedundancyModelsCoincide) {
  // With one server per tier the two policies describe the same chain.
  const ent::RedundancyDesign bare{{1, 1, 1, 1}};
  const double independent = av::capacity_oriented_availability(bare, rates());
  const double synchronized = av::capacity_oriented_availability_synchronized(bare, rates());
  EXPECT_NEAR(independent, synchronized, 1e-9);
}

TEST(SynchronizedPatch, TierStatesAreAllOrNothing) {
  const av::NetworkSrn net =
      av::build_network_srn_synchronized(ent::example_network_design(), rates());
  const auto graph = patchsec::petri::build_reachability_graph(net.model);
  for (const auto& m : graph.tangible_markings) {
    for (const auto& [role, up] : net.up_places) {
      const unsigned n = net.design.count(role);
      EXPECT_TRUE(m[up] == 0 || m[up] == n) << "tier " << ent::to_string(role);
    }
  }
  // 2^4 = 16 tier configurations.
  EXPECT_EQ(graph.tangible_count(), 16u);
}
