// Tests for the uniformization workspace (ctmc::TransientSolver): closed
// forms, an in-test naive-uniformization oracle (the pre-workspace algorithm
// kept verbatim as reference), Fox-Glynn window behaviour, the exact
// accumulated-reward series, curve stepping, and workspace reuse.

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "patchsec/ctmc/transient_solver.hpp"
#include "patchsec/linalg/vector_ops.hpp"

namespace ct = patchsec::ctmc;
namespace la = patchsec::linalg;

namespace {

ct::Ctmc up_down(double l, double mu) {
  ct::Ctmc c;
  c.add_states(2);
  c.add_transition(0, 1, l);
  c.add_transition(1, 0, mu);
  return c;
}

// The pre-workspace uniformization (accumulate Poisson terms from k = 0 in
// log space), kept as an in-test oracle in the test_stationary_solver mold.
std::vector<double> naive_transient(const ct::Ctmc& chain, const std::vector<double>& initial,
                                    double t, double epsilon = 1e-12) {
  const std::size_t n = chain.state_count();
  if (t == 0.0) return initial;
  double max_exit = 0.0;
  for (std::size_t s = 0; s < n; ++s) max_exit = std::max(max_exit, chain.exit_rate(s));
  const double lambda = std::max(max_exit * 1.02, 1e-12);
  const la::CsrMatrix q = chain.generator();
  const double m = lambda * t;
  std::vector<double> term = initial;
  std::vector<double> piq(n);
  std::vector<double> result(n, 0.0);
  double log_pk = -m;
  double mass = 0.0;
  for (std::size_t k = 0; k <= 2'000'000; ++k) {
    const double pk = std::exp(log_pk);
    if (pk > 0.0) {
      for (std::size_t i = 0; i < n; ++i) result[i] += pk * term[i];
      mass += pk;
    }
    if (mass >= 1.0 - epsilon) break;
    q.left_multiply(term, piq);
    for (std::size_t i = 0; i < n; ++i) {
      term[i] += piq[i] / lambda;
      if (term[i] < 0.0) term[i] = 0.0;
    }
    log_pk += std::log(m) - std::log(static_cast<double>(k + 1));
  }
  la::normalize_probability(result);
  return result;
}

// A randomized irreducible chain (fixed seed; ring backbone plus extra
// random arcs with rates spanning several decades).
ct::Ctmc random_chain(std::size_t states, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> log_rate(-2.0, 2.0);
  std::uniform_int_distribution<std::size_t> pick(0, states - 1);
  ct::Ctmc c;
  c.add_states(states);
  for (std::size_t s = 0; s < states; ++s) {
    c.add_transition(s, (s + 1) % states, std::pow(10.0, log_rate(rng)));
  }
  for (std::size_t extra = 0; extra < 2 * states; ++extra) {
    const std::size_t from = pick(rng);
    std::size_t to = pick(rng);
    if (to == from) to = (to + 1) % states;
    c.add_transition(from, to, std::pow(10.0, log_rate(rng)));
  }
  return c;
}

}  // namespace

TEST(TransientSolver, RequiresPrepare) {
  ct::TransientSolver solver;
  EXPECT_FALSE(solver.prepared());
  std::vector<double> out;
  EXPECT_THROW(solver.distribution_at({1.0, 0.0}, 1.0, out), std::logic_error);
  EXPECT_THROW((void)solver.accumulated_reward({1.0, 0.0}, {1.0, 0.0}, 1.0), std::logic_error);
  ct::Ctmc empty;
  EXPECT_THROW(solver.prepare(empty), std::invalid_argument);
}

TEST(TransientSolver, TwoStateClosedForm) {
  const double l = 0.7, mu = 1.3;
  const ct::Ctmc c = up_down(l, mu);
  ct::TransientSolver solver;
  solver.prepare(c);
  std::vector<double> pi;
  for (double t : {0.0, 0.1, 0.5, 1.0, 3.0, 10.0}) {
    solver.distribution_at({1.0, 0.0}, t, pi);
    const double expected = mu / (l + mu) + l / (l + mu) * std::exp(-(l + mu) * t);
    EXPECT_NEAR(pi[0], expected, 1e-9) << "t=" << t;
    EXPECT_NEAR(pi[0] + pi[1], 1.0, 1e-12);
  }
}

TEST(TransientSolver, MatchesNaiveOracleOnRandomChains) {
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    const ct::Ctmc c = random_chain(9, seed);
    ct::TransientSolver solver;
    solver.prepare(c);
    std::vector<double> initial(9, 0.0);
    initial[seed % 9] = 1.0;
    std::vector<double> pi;
    for (double t : {0.05, 0.4, 2.0, 17.0}) {
      solver.distribution_at(initial, t, pi);
      const std::vector<double> oracle = naive_transient(c, initial, t);
      for (std::size_t s = 0; s < 9; ++s) {
        EXPECT_NEAR(pi[s], oracle[s], 1e-10) << "seed=" << seed << " t=" << t << " s=" << s;
      }
    }
  }
}

TEST(TransientSolver, AccumulatedRewardClosedForm) {
  // Pure death at rate l from the up state: E[uptime over [0,t]] =
  // (1 - e^{-lt})/l.  Exercises both the exact series and the inserted
  // diagonal of the absorbing state's empty generator row.
  const double l = 0.3;
  ct::Ctmc c;
  c.add_states(2);
  c.add_transition(0, 1, l);
  ct::TransientSolver solver;
  solver.prepare(c);
  for (double t : {0.5, 2.0, 9.0}) {
    const double expected = (1.0 - std::exp(-l * t)) / l;
    EXPECT_NEAR(solver.accumulated_reward({1.0, 0.0}, {1.0, 0.0}, t), expected, 1e-10)
        << "t=" << t;
  }
  // The absorbing distribution itself.
  std::vector<double> pi;
  solver.distribution_at({1.0, 0.0}, 4.0, pi);
  EXPECT_NEAR(pi[0], std::exp(-l * 4.0), 1e-10);
}

TEST(TransientSolver, AccumulatedMatchesFineQuadratureOfInstantaneous) {
  const ct::Ctmc c = random_chain(7, 21);
  ct::TransientSolver solver;
  solver.prepare(c);
  std::vector<double> initial(7, 0.0);
  initial[0] = 1.0;
  std::vector<double> rewards(7);
  for (std::size_t s = 0; s < 7; ++s) rewards[s] = static_cast<double>(s) / 7.0;
  const double t = 3.0;
  const double exact = solver.accumulated_reward(initial, rewards, t);
  // Trapezoid over 4096 panels of the instantaneous reward.
  const std::size_t panels = 4096;
  double quad = 0.0;
  double prev = solver.reward_at(initial, rewards, 0.0);
  for (std::size_t k = 1; k <= panels; ++k) {
    const double cur =
        solver.reward_at(initial, rewards, t * static_cast<double>(k) / panels);
    quad += 0.5 * (prev + cur) * (t / panels);
    prev = cur;
  }
  EXPECT_NEAR(exact, quad, 1e-6);
}

TEST(TransientSolver, CurveMatchesIndependentPointEvaluations) {
  // Stepping through the grid must agree with evaluating each point from
  // t = 0 — the Markov-property consistency of the curve path.
  const ct::Ctmc c = random_chain(8, 5);
  ct::TransientSolver solver;
  solver.prepare(c);
  std::vector<double> initial(8, 0.0);
  initial[3] = 1.0;
  std::vector<double> rewards(8, 0.0);
  rewards[0] = rewards[1] = 1.0;
  const std::vector<double> grid = {0.0, 0.2, 0.9, 0.9, 4.5};  // duplicate allowed
  std::vector<double> values;
  const double accumulated = solver.reward_curve(initial, rewards, grid, values);
  ASSERT_EQ(values.size(), grid.size());
  for (std::size_t j = 0; j < grid.size(); ++j) {
    EXPECT_NEAR(values[j], solver.reward_at(initial, rewards, grid[j]), 1e-9) << "j=" << j;
  }
  EXPECT_NEAR(accumulated, solver.accumulated_reward(initial, rewards, grid.back()), 1e-9);
}

TEST(TransientSolver, CurveValidation) {
  const ct::Ctmc c = up_down(1.0, 1.0);
  ct::TransientSolver solver;
  solver.prepare(c);
  std::vector<double> values;
  EXPECT_THROW((void)solver.reward_curve({1.0, 0.0}, {1.0, 0.0}, {}, values),
               std::invalid_argument);
  EXPECT_THROW((void)solver.reward_curve({1.0, 0.0}, {1.0, 0.0}, {1.0, 0.5}, values),
               std::invalid_argument);
  EXPECT_THROW((void)solver.reward_curve({1.0, 0.0}, {1.0, 0.0}, {-1.0, 0.5}, values),
               std::invalid_argument);
  EXPECT_THROW((void)solver.reward_curve({1.0}, {1.0, 0.0}, {1.0}, values),
               std::invalid_argument);
}

TEST(TransientSolver, FoxGlynnWindowSkipsTheLeftTail) {
  // Lambda*t ~ 2000: the window must start far right of k = 0 and still
  // reproduce the (here: steady-state) answer.
  const ct::Ctmc c = up_down(100.0, 100.0);
  ct::TransientSolver solver;
  solver.prepare(c);
  std::vector<double> pi;
  solver.distribution_at({1.0, 0.0}, 10.0, pi);
  EXPECT_NEAR(pi[0], 0.5, 1e-9);
  const ct::TransientDiagnostics& d = solver.diagnostics();
  EXPECT_GT(d.left_point, 0u);
  EXPECT_GT(d.right_point, d.left_point);
  EXPECT_GE(d.poisson_mass, 1.0 - 1e-9);
  EXPECT_NEAR(d.uniformization_rate, 102.0, 1e-9);  // 1.02 * max exit rate
}

TEST(TransientSolver, MaxTermsOverflowThrows) {
  const ct::Ctmc c = up_down(1000.0, 1000.0);
  ct::TransientOptions options;
  options.max_terms = 8;
  ct::TransientSolver solver(options);
  solver.prepare(c);
  std::vector<double> pi;
  EXPECT_THROW(solver.distribution_at({1.0, 0.0}, 10.0, pi), std::runtime_error);
}

TEST(TransientSolver, WorkspaceReusesStructureAcrossRateChanges) {
  ct::TransientSolver solver;
  solver.prepare(up_down(0.5, 1.5));
  EXPECT_EQ(solver.structure_builds(), 1u);
  EXPECT_EQ(solver.structure_reuses(), 0u);

  // Same chain again: value-refresh fast path.
  solver.prepare(up_down(0.5, 1.5));
  EXPECT_EQ(solver.structure_builds(), 1u);
  EXPECT_EQ(solver.structure_reuses(), 1u);

  // Same structure, different rates: still the fast path, and the refreshed
  // values must answer for the NEW chain, not the cached one.
  const double l = 2.0, mu = 0.25;
  solver.prepare(up_down(l, mu));
  EXPECT_EQ(solver.structure_builds(), 1u);
  EXPECT_EQ(solver.structure_reuses(), 2u);
  std::vector<double> pi;
  solver.distribution_at({1.0, 0.0}, 0.8, pi);
  const double expected = mu / (l + mu) + l / (l + mu) * std::exp(-(l + mu) * 0.8);
  EXPECT_NEAR(pi[0], expected, 1e-9);

  // A different structure rebuilds.
  solver.prepare(random_chain(5, 3));
  EXPECT_EQ(solver.structure_builds(), 2u);
}

TEST(TransientSolver, ZeroHorizonAndFrozenChain) {
  const ct::Ctmc c = up_down(1.0, 1.0);
  ct::TransientSolver solver;
  solver.prepare(c);
  std::vector<double> pi;
  solver.distribution_at({0.25, 0.75}, 0.0, pi);
  EXPECT_DOUBLE_EQ(pi[0], 0.25);
  EXPECT_DOUBLE_EQ(solver.accumulated_reward({0.25, 0.75}, {1.0, 0.0}, 0.0), 0.0);

  // A chain with no transitions at all: pi(t) = pi(0), accumulated is linear.
  ct::Ctmc frozen;
  frozen.add_states(3);
  ct::TransientSolver frozen_solver;
  frozen_solver.prepare(frozen);
  frozen_solver.distribution_at({0.2, 0.3, 0.5}, 100.0, pi);
  EXPECT_DOUBLE_EQ(pi[1], 0.3);
  EXPECT_NEAR(frozen_solver.accumulated_reward({0.2, 0.3, 0.5}, {1.0, 0.0, 0.0}, 10.0), 2.0,
              1e-12);
}
