// Tests for the CVSS v2 scoring engine: vector parsing, the official scoring
// equations against known values, and exhaustive enumeration properties.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "patchsec/cvss/cvss_v2.hpp"

namespace cv = patchsec::cvss;

TEST(CvssParse, CanonicalVectorRoundTrips) {
  const std::string text = "AV:N/AC:L/Au:N/C:C/I:C/A:C";
  const cv::CvssV2Vector v = cv::CvssV2Vector::parse(text);
  EXPECT_EQ(v.to_string(), text);
}

TEST(CvssParse, AllComponentValues) {
  const cv::CvssV2Vector v = cv::CvssV2Vector::parse("AV:A/AC:M/Au:S/C:P/I:N/A:C");
  EXPECT_EQ(v.access_vector, cv::AccessVector::kAdjacentNetwork);
  EXPECT_EQ(v.access_complexity, cv::AccessComplexity::kMedium);
  EXPECT_EQ(v.authentication, cv::Authentication::kSingle);
  EXPECT_EQ(v.confidentiality, cv::ImpactLevel::kPartial);
  EXPECT_EQ(v.integrity, cv::ImpactLevel::kNone);
  EXPECT_EQ(v.availability, cv::ImpactLevel::kComplete);
}

TEST(CvssParse, MalformedInputsThrow) {
  EXPECT_THROW((void)cv::CvssV2Vector::parse(""), std::invalid_argument);
  EXPECT_THROW((void)cv::CvssV2Vector::parse("AV:N"), std::invalid_argument);
  EXPECT_THROW((void)cv::CvssV2Vector::parse("AV:N/AC:L/Au:N/C:C/I:C"), std::invalid_argument);
  EXPECT_THROW((void)cv::CvssV2Vector::parse("AV:X/AC:L/Au:N/C:C/I:C/A:C"), std::invalid_argument);
  EXPECT_THROW((void)cv::CvssV2Vector::parse("AV:N/AC:L/Au:N/C:C/I:C/Q:C"), std::invalid_argument);
  EXPECT_THROW((void)cv::CvssV2Vector::parse("AVN/AC:L/Au:N/C:C/I:C/A:C"), std::invalid_argument);
}

// Known-score cases: (vector, impact, exploitability, base).  These include
// the five archetypes used in the paper database and classic NVD examples.
struct ScoreCase {
  const char* vector;
  double impact;
  double exploitability;
  double base;
};

class CvssScores : public ::testing::TestWithParam<ScoreCase> {};

TEST_P(CvssScores, MatchesOfficialEquations) {
  const ScoreCase& c = GetParam();
  const cv::CvssV2Vector v = cv::CvssV2Vector::parse(c.vector);
  EXPECT_DOUBLE_EQ(v.impact_subscore(), c.impact) << c.vector;
  EXPECT_DOUBLE_EQ(v.exploitability_subscore(), c.exploitability) << c.vector;
  EXPECT_DOUBLE_EQ(v.base_score(), c.base) << c.vector;
}

INSTANTIATE_TEST_SUITE_P(
    PaperArchetypes, CvssScores,
    ::testing::Values(ScoreCase{"AV:N/AC:L/Au:N/C:C/I:C/A:C", 10.0, 10.0, 10.0},
                      ScoreCase{"AV:N/AC:L/Au:N/C:P/I:N/A:N", 2.9, 10.0, 5.0},
                      ScoreCase{"AV:L/AC:L/Au:N/C:C/I:C/A:C", 10.0, 3.9, 7.1},
                      ScoreCase{"AV:N/AC:L/Au:N/C:P/I:P/A:P", 6.4, 10.0, 7.5},
                      ScoreCase{"AV:N/AC:M/Au:N/C:P/I:N/A:N", 2.9, 8.6, 4.3}));

INSTANTIATE_TEST_SUITE_P(
    ClassicVectors, CvssScores,
    ::testing::Values(
        // No impact at all: base collapses to 0 via f(impact)=0.
        ScoreCase{"AV:N/AC:L/Au:N/C:N/I:N/A:N", 0.0, 10.0, 0.0},
        // Local, high complexity, multiple auth: hardest exploitability.
        ScoreCase{"AV:L/AC:H/Au:M/C:C/I:C/A:C", 10.0, 1.2, 5.9},
        // Partial availability only.
        ScoreCase{"AV:N/AC:L/Au:N/C:N/I:N/A:P", 2.9, 10.0, 5.0},
        // Adjacent network, single auth.
        ScoreCase{"AV:A/AC:L/Au:S/C:P/I:P/A:P", 6.4, 5.1, 5.2}));

TEST(CvssScores, WeightsMatchStandard) {
  EXPECT_DOUBLE_EQ(cv::weight(cv::AccessVector::kLocal), 0.395);
  EXPECT_DOUBLE_EQ(cv::weight(cv::AccessVector::kAdjacentNetwork), 0.646);
  EXPECT_DOUBLE_EQ(cv::weight(cv::AccessVector::kNetwork), 1.0);
  EXPECT_DOUBLE_EQ(cv::weight(cv::AccessComplexity::kHigh), 0.35);
  EXPECT_DOUBLE_EQ(cv::weight(cv::AccessComplexity::kMedium), 0.61);
  EXPECT_DOUBLE_EQ(cv::weight(cv::AccessComplexity::kLow), 0.71);
  EXPECT_DOUBLE_EQ(cv::weight(cv::Authentication::kMultiple), 0.45);
  EXPECT_DOUBLE_EQ(cv::weight(cv::Authentication::kSingle), 0.56);
  EXPECT_DOUBLE_EQ(cv::weight(cv::Authentication::kNone), 0.704);
  EXPECT_DOUBLE_EQ(cv::weight(cv::ImpactLevel::kNone), 0.0);
  EXPECT_DOUBLE_EQ(cv::weight(cv::ImpactLevel::kPartial), 0.275);
  EXPECT_DOUBLE_EQ(cv::weight(cv::ImpactLevel::kComplete), 0.660);
}

TEST(CvssScores, ExhaustiveEnumerationInvariants) {
  // All 3^6 = 729 vectors: scores stay within [0,10], round to one decimal,
  // impact 0 forces base 0, and every subscore is monotone in its inputs.
  const cv::AccessVector avs[] = {cv::AccessVector::kLocal, cv::AccessVector::kAdjacentNetwork,
                                  cv::AccessVector::kNetwork};
  const cv::AccessComplexity acs[] = {cv::AccessComplexity::kHigh, cv::AccessComplexity::kMedium,
                                      cv::AccessComplexity::kLow};
  const cv::Authentication aus[] = {cv::Authentication::kMultiple, cv::Authentication::kSingle,
                                    cv::Authentication::kNone};
  const cv::ImpactLevel ils[] = {cv::ImpactLevel::kNone, cv::ImpactLevel::kPartial,
                                 cv::ImpactLevel::kComplete};
  int checked = 0;
  for (auto av : avs)
    for (auto ac : acs)
      for (auto au : aus)
        for (auto c : ils)
          for (auto i : ils)
            for (auto a : ils) {
              cv::CvssV2Vector v;
              v.access_vector = av;
              v.access_complexity = ac;
              v.authentication = au;
              v.confidentiality = c;
              v.integrity = i;
              v.availability = a;
              const double impact_s = v.impact_subscore();
              const double exploit_s = v.exploitability_subscore();
              const double base_s = v.base_score();
              EXPECT_GE(impact_s, 0.0);
              EXPECT_LE(impact_s, 10.0);
              EXPECT_GT(exploit_s, 0.0);
              EXPECT_LE(exploit_s, 10.0);
              EXPECT_GE(base_s, 0.0);
              EXPECT_LE(base_s, 10.0);
              // Rounded to a tenth.
              EXPECT_NEAR(impact_s * 10.0, std::round(impact_s * 10.0), 1e-9);
              EXPECT_NEAR(exploit_s * 10.0, std::round(exploit_s * 10.0), 1e-9);
              EXPECT_NEAR(base_s * 10.0, std::round(base_s * 10.0), 1e-9);
              if (impact_s == 0.0) {
                EXPECT_DOUBLE_EQ(base_s, 0.0);
              }
              // Round trip through text.
              EXPECT_EQ(cv::CvssV2Vector::parse(v.to_string()), v);
              ++checked;
            }
  EXPECT_EQ(checked, 729);
}

TEST(CvssSeverity, BandsAndCriticality) {
  EXPECT_EQ(cv::severity_band(0.0), cv::Severity::kLow);
  EXPECT_EQ(cv::severity_band(3.9), cv::Severity::kLow);
  EXPECT_EQ(cv::severity_band(4.0), cv::Severity::kMedium);
  EXPECT_EQ(cv::severity_band(6.9), cv::Severity::kMedium);
  EXPECT_EQ(cv::severity_band(7.0), cv::Severity::kHigh);
  EXPECT_EQ(cv::severity_band(10.0), cv::Severity::kHigh);
  EXPECT_THROW((void)cv::severity_band(-0.1), std::invalid_argument);
  EXPECT_THROW((void)cv::severity_band(10.1), std::invalid_argument);

  // The paper's rule is strict: critical means base > 8.0.
  EXPECT_FALSE(cv::is_critical(8.0));
  EXPECT_TRUE(cv::is_critical(8.1));
  EXPECT_TRUE(cv::is_critical(10.0));
  EXPECT_FALSE(cv::is_critical(7.5));
}

TEST(CvssRounding, RoundToTenth) {
  EXPECT_DOUBLE_EQ(cv::round_to_tenth(1.24), 1.2);
  EXPECT_DOUBLE_EQ(cv::round_to_tenth(1.25), 1.3);
  EXPECT_DOUBLE_EQ(cv::round_to_tenth(9.96), 10.0);
  EXPECT_DOUBLE_EQ(cv::round_to_tenth(0.0), 0.0);
}
