// Solver-equivalence suite for the StationarySolver workspace rewrite.
//
// The old solver (triplet-sort transpose, per-sweep prev copy + normalize,
// kAuto exhausting the full Gauss-Seidel budget before falling back) is kept
// here verbatim as a reference oracle.  The suite asserts the rebuilt path
// produces the same distributions (to 1e-10), the same converged flags, and
// never more iterations than the reference on birth-death oracles, the paper
// case-study SRNs and a randomized generator fuzz set — so neither the
// workspace caching, the in-sweep convergence test nor the kAuto stall
// detection can silently change numerics or degrade convergence.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <random>
#include <vector>

#include "patchsec/avail/aggregation.hpp"
#include "patchsec/avail/network_srn.hpp"
#include "patchsec/avail/server_srn.hpp"
#include "patchsec/core/scenario.hpp"
#include "patchsec/core/session.hpp"
#include "patchsec/ctmc/ctmc.hpp"
#include "patchsec/linalg/csr_matrix.hpp"
#include "patchsec/linalg/stationary_solver.hpp"
#include "patchsec/linalg/steady_state.hpp"
#include "patchsec/linalg/vector_ops.hpp"
#include "patchsec/petri/reachability.hpp"

namespace {

namespace av = patchsec::avail;
namespace core = patchsec::core;
namespace ent = patchsec::enterprise;
namespace la = patchsec::linalg;
namespace pt = patchsec::petri;

// ---------------------------------------------------------------------------
// Reference implementation: the pre-workspace solver, kept verbatim.
// ---------------------------------------------------------------------------

double ref_max_exit_rate(const la::CsrMatrix& q) {
  double m = 0.0;
  for (std::size_t r = 0; r < q.rows(); ++r) m = std::max(m, std::abs(q.at(r, r)));
  return m;
}

la::SteadyStateResult ref_power_iteration(const la::CsrMatrix& q,
                                          const la::SteadyStateOptions& opt) {
  const std::size_t n = q.rows();
  const double lambda = std::max(ref_max_exit_rate(q) * 1.02, 1e-12);
  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  std::vector<double> piq(n);
  la::SteadyStateResult result;
  for (std::size_t it = 1; it <= opt.max_iterations; ++it) {
    q.left_multiply(pi, piq);
    double diff = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double next = pi[i] + piq[i] / lambda;
      diff = std::max(diff, std::abs(next - pi[i]));
      pi[i] = next;
    }
    la::normalize_probability(pi);
    if (diff < opt.tolerance) {
      result.converged = true;
      result.iterations = it;
      break;
    }
    result.iterations = it;
  }
  q.left_multiply(pi, piq);
  result.residual = la::norm_inf(piq);
  result.distribution = std::move(pi);
  return result;
}

la::SteadyStateResult ref_gauss_seidel(const la::CsrMatrix& q, const la::SteadyStateOptions& opt,
                                       double omega) {
  const std::size_t n = q.rows();
  const la::CsrMatrix qt = q.transposed();
  const auto& off = qt.row_offsets();
  const auto& col = qt.col_indices();
  const auto& val = qt.values();

  std::vector<double> diag(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) diag[i] = q.at(i, i);

  std::vector<double> x(n, 1.0 / static_cast<double>(n));
  std::vector<double> prev(n);
  la::SteadyStateResult result;
  for (std::size_t it = 1; it <= opt.max_iterations; ++it) {
    prev = x;
    for (std::size_t i = 0; i < n; ++i) {
      if (diag[i] == 0.0) continue;
      double acc = 0.0;
      for (std::size_t k = off[i]; k < off[i + 1]; ++k) {
        const std::size_t j = col[k];
        if (j == i) continue;
        acc += val[k] * x[j];
      }
      const double gs = -acc / diag[i];
      x[i] = omega * gs + (1.0 - omega) * x[i];
      if (x[i] < 0.0) x[i] = 0.0;
    }
    la::normalize_probability(x);
    result.iterations = it;
    if (la::max_abs_diff(x, prev) < opt.tolerance) {
      result.converged = true;
      break;
    }
  }
  std::vector<double> xq;
  q.left_multiply(x, xq);
  result.residual = la::norm_inf(xq);
  result.distribution = std::move(x);
  return result;
}

la::SteadyStateResult ref_solve(const la::CsrMatrix& q, const la::SteadyStateOptions& opt) {
  if (q.rows() == 1) {
    return {.distribution = {1.0}, .iterations = 0, .residual = 0.0, .converged = true};
  }
  switch (opt.method) {
    case la::SteadyStateMethod::kPower:
      return ref_power_iteration(q, opt);
    case la::SteadyStateMethod::kGaussSeidel:
      return ref_gauss_seidel(q, opt, 1.0);
    case la::SteadyStateMethod::kSor:
      return ref_gauss_seidel(q, opt, opt.sor_relaxation);
    case la::SteadyStateMethod::kAuto: {
      la::SteadyStateResult gs = ref_gauss_seidel(q, opt, 1.0);
      if (gs.converged && gs.residual < 1e-8) return gs;
      la::SteadyStateResult pw = ref_power_iteration(q, opt);
      return (pw.residual < gs.residual) ? pw : gs;
    }
  }
  throw std::logic_error("unknown method");
}

// ---------------------------------------------------------------------------
// Generator factories.
// ---------------------------------------------------------------------------

la::CsrMatrix random_ergodic_generator(std::uint64_t seed) {
  // Ring (guarantees irreducibility) plus random extra edges; rates within
  // two orders of magnitude so Gauss-Seidel converges healthily.
  std::mt19937_64 rng(seed * 6364136223846793005ull + 1442695040888963407ull);
  std::uniform_int_distribution<std::size_t> size(2, 24);
  std::uniform_real_distribution<double> rate(0.05, 20.0);
  const std::size_t n = size(rng);
  std::vector<la::Triplet> entries;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = rate(rng);
    entries.push_back({i, (i + 1) % n, r});
    entries.push_back({i, i, -r});
  }
  std::uniform_int_distribution<std::size_t> pick(0, n - 1);
  for (std::size_t k = 0; k < 2 * n; ++k) {
    const std::size_t i = pick(rng);
    std::size_t j = pick(rng);
    if (i == j) j = (j + 1) % n;
    const double r = rate(rng);
    entries.push_back({i, j, r});
    entries.push_back({i, i, -r});
  }
  return la::CsrMatrix(n, n, entries);
}

la::CsrMatrix birth_death_generator(const std::vector<double>& birth,
                                    const std::vector<double>& death) {
  patchsec::ctmc::Ctmc chain;
  chain.add_states(birth.size() + 1);
  for (std::size_t i = 0; i < birth.size(); ++i) {
    chain.add_transition(i, i + 1, birth[i]);
    chain.add_transition(i + 1, i, death[i]);
  }
  return chain.generator();
}

la::CsrMatrix network_generator(const core::Session& session, unsigned k) {
  const av::NetworkSrn net =
      av::build_network_srn(ent::RedundancyDesign{{k, k, k, k}}, session.aggregated_rates());
  return pt::build_reachability_graph(net.model).chain.generator();
}

std::vector<la::CsrMatrix> paper_generators() {
  // The lower-layer server SRNs of every role with a spec plus the
  // upper-layer network SRNs of the five Sec. IV candidate designs and the
  // stress configuration {6,6,6,6}.
  std::vector<la::CsrMatrix> generators;
  const core::Scenario scenario = core::Scenario::paper_case_study();
  const core::Session session(scenario);
  for (const auto& [role, spec] : scenario.specs()) {
    av::ServerSrnOptions options;
    const av::ServerSrn srn = av::build_server_srn(spec, options);
    generators.push_back(pt::build_reachability_graph(srn.model).chain.generator());
  }
  for (const ent::RedundancyDesign& design : scenario.designs()) {
    const av::NetworkSrn net = av::build_network_srn(design, session.aggregated_rates());
    generators.push_back(pt::build_reachability_graph(net.model).chain.generator());
  }
  generators.push_back(network_generator(session, 6));
  return generators;
}

// `iteration_slack` is 0 (strict parity-or-fewer) everywhere except the
// deliberately slow high-iteration chains, where the tolerance crossing moves
// by well under the per-sweep rounding noise and a one-sweep wobble in either
// direction is numerically meaningless.
void expect_equivalent(const la::CsrMatrix& q, const la::SteadyStateOptions& opt,
                       const std::string& label, std::size_t iteration_slack = 0) {
  const la::SteadyStateResult ref = ref_solve(q, opt);
  la::StationarySolver solver;
  const la::SteadyStateResult got = solver.solve(q, opt);
  ASSERT_EQ(got.distribution.size(), ref.distribution.size()) << label;
  EXPECT_LT(la::max_abs_diff(got.distribution, ref.distribution), 1e-10) << label;
  EXPECT_EQ(got.converged, ref.converged) << label;
  EXPECT_LE(got.iterations, ref.iterations + iteration_slack)
      << label << ": the rewrite must never need more iterations than the classical solver";
  EXPECT_FALSE(got.stalled) << label;
  // The wrapper runs the identical path.
  const la::SteadyStateResult wrapped = la::solve_steady_state(q, opt);
  EXPECT_EQ(wrapped.iterations, got.iterations) << label;
  EXPECT_LT(la::max_abs_diff(wrapped.distribution, got.distribution), 1e-15) << label;
}

// ---------------------------------------------------------------------------
// CSR construction and transpose.
// ---------------------------------------------------------------------------

TEST(CsrFastPaths, BucketTransposeMatchesTripletTranspose) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const la::CsrMatrix q = random_ergodic_generator(seed);
    const la::CsrMatrix fast = q.transposed();
    // Triplet-built transpose: the pre-rewrite semantics.
    std::vector<la::Triplet> entries;
    for (std::size_t r = 0; r < q.rows(); ++r) {
      for (std::size_t k = q.row_offsets()[r]; k < q.row_offsets()[r + 1]; ++k) {
        entries.push_back({q.col_indices()[k], r, q.values()[k]});
      }
    }
    const la::CsrMatrix slow(q.cols(), q.rows(), entries);
    EXPECT_EQ(fast.row_offsets(), slow.row_offsets());
    EXPECT_EQ(fast.col_indices(), slow.col_indices());
    EXPECT_EQ(fast.values(), slow.values());
  }
}

TEST(CsrFastPaths, TransposeRoundTripIsIdentity) {
  const la::CsrMatrix q = random_ergodic_generator(42);
  const la::CsrMatrix qtt = q.transposed().transposed();
  EXPECT_EQ(qtt.row_offsets(), q.row_offsets());
  EXPECT_EQ(qtt.col_indices(), q.col_indices());
  EXPECT_EQ(qtt.values(), q.values());
}

TEST(CsrFastPaths, FromSortedMatchesTripletConstruction) {
  const la::CsrMatrix q = random_ergodic_generator(7);
  const la::CsrMatrix direct = la::CsrMatrix::from_sorted(
      q.rows(), q.cols(), q.row_offsets(), q.col_indices(), q.values());
  EXPECT_EQ(direct.row_offsets(), q.row_offsets());
  EXPECT_EQ(direct.col_indices(), q.col_indices());
  EXPECT_EQ(direct.values(), q.values());
}

TEST(CsrFastPaths, FromSortedValidatesInvariants) {
  using Offsets = std::vector<std::size_t>;
  using Cols = std::vector<std::size_t>;
  using Vals = std::vector<double>;
  // Shape mismatch.
  EXPECT_THROW((void)la::CsrMatrix::from_sorted(2, 2, Offsets{0, 1}, Cols{0}, Vals{1.0}),
               std::invalid_argument);
  // Offsets not ending at nnz.
  EXPECT_THROW((void)la::CsrMatrix::from_sorted(2, 2, Offsets{0, 1, 3}, Cols{0, 1}, Vals{1.0, 2.0}),
               std::invalid_argument);
  // Unsorted / duplicate columns within a row.
  EXPECT_THROW(
      (void)la::CsrMatrix::from_sorted(1, 3, Offsets{0, 2}, Cols{2, 1}, Vals{1.0, 2.0}),
      std::invalid_argument);
  EXPECT_THROW(
      (void)la::CsrMatrix::from_sorted(1, 3, Offsets{0, 2}, Cols{1, 1}, Vals{1.0, 2.0}),
      std::invalid_argument);
  // Column out of range.
  EXPECT_THROW((void)la::CsrMatrix::from_sorted(1, 2, Offsets{0, 1}, Cols{2}, Vals{1.0}),
               std::invalid_argument);
  // Explicit zero.
  EXPECT_THROW((void)la::CsrMatrix::from_sorted(1, 2, Offsets{0, 1}, Cols{0}, Vals{0.0}),
               std::invalid_argument);
}

TEST(CsrFastPaths, CtmcGeneratorAssemblyMatchesTripletPath) {
  // Parallel edges, out-of-order insertion, a state with no exits: the
  // counting assembly must reproduce the triplet path exactly.
  patchsec::ctmc::Ctmc chain;
  chain.add_states(4);
  chain.add_transition(2, 0, 0.5);
  chain.add_transition(0, 2, 1.5);
  chain.add_transition(0, 1, 2.0);
  chain.add_transition(0, 1, 3.0);  // parallel edge: merged
  chain.add_transition(1, 0, 4.0);
  const la::CsrMatrix q = chain.generator();

  std::vector<la::Triplet> entries;
  for (const auto& t : chain.transitions()) {
    entries.push_back({t.from, t.to, t.rate});
    entries.push_back({t.from, t.from, -t.rate});
  }
  const la::CsrMatrix ref(4, 4, entries);
  EXPECT_EQ(q.row_offsets(), ref.row_offsets());
  EXPECT_EQ(q.col_indices(), ref.col_indices());
  EXPECT_EQ(q.values(), ref.values());
  EXPECT_DOUBLE_EQ(q.at(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(q.at(0, 0), -6.5);
  EXPECT_DOUBLE_EQ(q.row_sum(0), 0.0);
  EXPECT_EQ(q.at(3, 3), 0.0);  // exit-free state stores no diagonal
}

// ---------------------------------------------------------------------------
// Solver equivalence.
// ---------------------------------------------------------------------------

TEST(StationarySolverEquivalence, BirthDeathOracles) {
  std::mt19937_64 rng(2017);
  std::uniform_real_distribution<double> rate(0.2, 5.0);
  for (std::size_t n : {1u, 2u, 5u, 12u, 40u}) {
    std::vector<double> birth(n), death(n);
    for (std::size_t i = 0; i < n; ++i) {
      birth[i] = rate(rng);
      death[i] = rate(rng);
    }
    const la::CsrMatrix q = birth_death_generator(birth, death);
    const std::vector<double> oracle = la::birth_death_steady_state(birth, death);
    la::StationarySolver solver;
    for (la::SteadyStateMethod method :
         {la::SteadyStateMethod::kAuto, la::SteadyStateMethod::kGaussSeidel,
          la::SteadyStateMethod::kPower, la::SteadyStateMethod::kSor}) {
      la::SteadyStateOptions opt;
      opt.method = method;
      // The successive-diff stopping rule leaves ~diff/(1-rate) absolute
      // error; 1e-14 keeps the longest chain comfortably inside the 1e-10
      // oracle bar for both the reference and the rewrite.
      opt.tolerance = 1e-14;
      const la::SteadyStateResult got = solver.solve(q, opt);
      EXPECT_TRUE(got.converged);
      EXPECT_LT(la::max_abs_diff(got.distribution, oracle), 1e-10)
          << "n=" << n << " method=" << static_cast<int>(method);
      // And old-vs-new equivalence on the same chain (one sweep of slack:
      // the longest chains take >10k sweeps and the final crossing sits
      // below rounding noise).
      expect_equivalent(q, opt,
                        "birth-death n=" + std::to_string(n) + " method " +
                            std::to_string(static_cast<int>(method)),
                        /*iteration_slack=*/1);
    }
  }
}

TEST(StationarySolverEquivalence, RandomGeneratorFuzz) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const la::CsrMatrix q = random_ergodic_generator(seed);
    for (la::SteadyStateMethod method :
         {la::SteadyStateMethod::kAuto, la::SteadyStateMethod::kGaussSeidel,
          la::SteadyStateMethod::kPower}) {
      la::SteadyStateOptions opt;
      opt.method = method;
      expect_equivalent(q, opt,
                        "seed " + std::to_string(seed) + " method " +
                            std::to_string(static_cast<int>(method)));
    }
  }
}

TEST(StationarySolverEquivalence, PaperCaseStudyIterationGuard) {
  // The acceptance bar: identical distributions (1e-10), identical converged
  // flags, and never more solver iterations than the classical path on every
  // SRN the paper pipeline solves.
  std::size_t index = 0;
  for (const la::CsrMatrix& q : paper_generators()) {
    expect_equivalent(q, la::SteadyStateOptions{}, "paper generator " + std::to_string(index++));
  }
}

TEST(StationarySolverEquivalence, TightAndLooseTolerances) {
  const la::CsrMatrix q = random_ergodic_generator(11);
  for (double tolerance : {1e-8, 1e-10, 1e-14}) {
    la::SteadyStateOptions opt;
    opt.tolerance = tolerance;
    expect_equivalent(q, opt, "tolerance " + std::to_string(tolerance));
  }
  // Exhausted budget: both paths report non-convergence the same way.
  la::SteadyStateOptions opt;
  opt.method = la::SteadyStateMethod::kGaussSeidel;
  opt.max_iterations = 2;
  const la::SteadyStateResult ref = ref_solve(q, opt);
  la::StationarySolver solver;
  const la::SteadyStateResult got = solver.solve(q, opt);
  EXPECT_FALSE(got.converged);
  EXPECT_EQ(got.iterations, ref.iterations);
  EXPECT_LT(la::max_abs_diff(got.distribution, ref.distribution), 1e-12);
}

// ---------------------------------------------------------------------------
// Workspace reuse.
// ---------------------------------------------------------------------------

TEST(StationarySolverWorkspace, ReusesTransposeAcrossSameStructureSolves) {
  const core::Session session(core::Scenario::paper_case_study());
  const la::CsrMatrix q4 = network_generator(session, 4);

  la::StationarySolver solver;
  const la::SteadyStateResult first = solver.solve(q4);
  const la::SteadyStateResult second = solver.solve(q4);
  EXPECT_EQ(solver.solve_count(), 2u);
  EXPECT_EQ(solver.transpose_rebuilds(), 1u) << "identical structure must hit the cache";
  EXPECT_EQ(first.iterations, second.iterations);
  EXPECT_EQ(first.distribution, second.distribution);

  // Same sparsity, different values (another cadence): still a cache hit,
  // and the result matches a fresh solver exactly.
  const auto& rates = session.aggregated_rates(24.0 * 7);
  const av::NetworkSrn net = av::build_network_srn(ent::RedundancyDesign{{4, 4, 4, 4}}, rates);
  const la::CsrMatrix q4_weekly = pt::build_reachability_graph(net.model).chain.generator();
  ASSERT_EQ(q4_weekly.col_indices(), q4.col_indices());
  const la::SteadyStateResult warm = solver.solve(q4_weekly);
  EXPECT_EQ(solver.transpose_rebuilds(), 1u);
  la::StationarySolver fresh;
  const la::SteadyStateResult cold = fresh.solve(q4_weekly);
  EXPECT_EQ(warm.iterations, cold.iterations);
  EXPECT_EQ(warm.distribution, cold.distribution);

  // A different structure rebuilds.
  const la::CsrMatrix q3 = network_generator(session, 3);
  (void)solver.solve(q3);
  EXPECT_EQ(solver.transpose_rebuilds(), 2u);

  // reset() drops the cache.
  solver.reset();
  (void)solver.solve(q3);
  EXPECT_EQ(solver.transpose_rebuilds(), 3u);
}

TEST(StationarySolverWorkspace, TrivialAndInvalidShapes) {
  la::StationarySolver solver;
  EXPECT_THROW((void)solver.solve(la::CsrMatrix()), std::invalid_argument);
  EXPECT_THROW((void)solver.solve(la::CsrMatrix(2, 3, {})), std::invalid_argument);
  const la::CsrMatrix one(1, 1, {});
  const la::SteadyStateResult r = solver.solve(one);
  EXPECT_TRUE(r.converged);
  ASSERT_EQ(r.distribution.size(), 1u);
  EXPECT_DOUBLE_EQ(r.distribution[0], 1.0);
}

// ---------------------------------------------------------------------------
// Stall detection.
// ---------------------------------------------------------------------------

TEST(StationarySolverStall, AbandonsHopelessGaussSeidelUnderAuto) {
  // A long, nearly-symmetric birth-death chain: the Gauss-Seidel spectral
  // radius is ~cos^2(pi/n) -> thousands of sweeps to 1e-12, far beyond the
  // budget below.  The classical kAuto burned max_iterations twice; the
  // rewrite must detect the plateau, abandon the sweep early and fall back.
  const std::size_t n = 64;
  std::vector<double> birth(n - 1, 1.0), death(n - 1, 1.08);
  const la::CsrMatrix q = birth_death_generator(birth, death);

  la::SteadyStateOptions opt;
  opt.method = la::SteadyStateMethod::kAuto;
  opt.max_iterations = 2000;
  const la::SteadyStateResult ref = ref_solve(q, opt);
  ASSERT_FALSE(ref.converged) << "test construction: budget must be insufficient";

  la::StationarySolver solver;
  const la::SteadyStateResult got = solver.solve(q, opt);
  EXPECT_FALSE(got.converged);
  EXPECT_TRUE(got.stalled);
  EXPECT_EQ(solver.stall_events(), 1u);
  // The early bail trades the abandoned Gauss-Seidel burn for the power
  // fallback, so the best-effort answer is never worse than power iteration
  // alone under the same budget.
  la::SteadyStateOptions power_only = opt;
  power_only.method = la::SteadyStateMethod::kPower;
  const la::SteadyStateResult pw = ref_solve(q, power_only);
  EXPECT_LE(got.residual, pw.residual * (1.0 + 1e-9));

  // With a budget that suffices, stall detection must stay quiet and the
  // solve must converge to the oracle.
  la::SteadyStateOptions generous;
  generous.method = la::SteadyStateMethod::kAuto;
  generous.max_iterations = 200000;
  const la::SteadyStateResult full = solver.solve(q, generous);
  EXPECT_TRUE(full.converged);
  EXPECT_FALSE(full.stalled);
  EXPECT_LT(la::max_abs_diff(full.distribution, la::birth_death_steady_state(birth, death)),
            1e-9);
}

}  // namespace
