// Build/link smoke test across all modules.
#include <gtest/gtest.h>

#include "patchsec/core/evaluation.hpp"

TEST(Smoke, PaperCaseStudyConstructs) {
  const auto evaluator = patchsec::core::Evaluator::paper_case_study();
  EXPECT_EQ(evaluator.aggregated_rates().size(), 4u);
}
