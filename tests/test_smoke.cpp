// Build/link smoke test across all modules.
#include <gtest/gtest.h>

#include "patchsec/core/session.hpp"

TEST(Smoke, PaperCaseStudyConstructs) {
  const patchsec::core::Session session(patchsec::core::Scenario::paper_case_study());
  EXPECT_EQ(session.aggregated_rates().size(), 4u);
}
