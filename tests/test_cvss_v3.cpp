// Tests for the CVSS v3.1 scoring engine against officially published scores
// and the exhaustive enumeration invariants.

#include <gtest/gtest.h>

#include <cmath>

#include "patchsec/cvss/cvss_v3.hpp"

namespace cv = patchsec::cvss;

TEST(CvssV3Parse, RoundTripsWithPrefix) {
  const std::string text = "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H";
  const cv::CvssV3Vector v = cv::CvssV3Vector::parse(text);
  EXPECT_EQ(v.to_string(), text);
}

TEST(CvssV3Parse, AcceptsBareAnd30Prefix) {
  const auto bare = cv::CvssV3Vector::parse("AV:L/AC:H/PR:L/UI:R/S:C/C:L/I:L/A:N");
  const auto v30 = cv::CvssV3Vector::parse("CVSS:3.0/AV:L/AC:H/PR:L/UI:R/S:C/C:L/I:L/A:N");
  EXPECT_EQ(bare, v30);
  EXPECT_EQ(bare.scope, cv::ScopeV3::kChanged);
  EXPECT_EQ(bare.privileges_required, cv::PrivilegesRequiredV3::kLow);
}

TEST(CvssV3Parse, MalformedInputsThrow) {
  EXPECT_THROW((void)cv::CvssV3Vector::parse(""), std::invalid_argument);
  EXPECT_THROW((void)cv::CvssV3Vector::parse("AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H"), std::invalid_argument);
  EXPECT_THROW((void)cv::CvssV3Vector::parse("AV:X/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"),
               std::invalid_argument);
  EXPECT_THROW((void)cv::CvssV3Vector::parse("AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/Q:H"),
               std::invalid_argument);
}

// Officially published example scores (NVD / first.org calculator).
struct V3Case {
  const char* vector;
  double base;
};

class CvssV3Scores : public ::testing::TestWithParam<V3Case> {};

TEST_P(CvssV3Scores, MatchesPublishedBaseScore) {
  const V3Case& c = GetParam();
  EXPECT_DOUBLE_EQ(cv::CvssV3Vector::parse(c.vector).base_score(), c.base) << c.vector;
}

INSTANTIATE_TEST_SUITE_P(
    PublishedExamples, CvssV3Scores,
    ::testing::Values(
        // Full remote compromise (e.g. CVE-2017-0144 class): 9.8 Critical.
        V3Case{"CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H", 9.8},
        // Scope-changed full compromise: 10.0.
        V3Case{"CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H", 10.0},
        // Local privilege escalation archetype: 7.8.
        V3Case{"CVSS:3.1/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H", 7.8},
        // Reflected-XSS archetype: 6.1.
        V3Case{"CVSS:3.1/AV:N/AC:L/PR:N/UI:R/S:C/C:L/I:L/A:N", 6.1},
        // Information disclosure, network, no privileges: 7.5.
        V3Case{"CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:N/A:N", 7.5},
        // No impact at all: 0.0.
        V3Case{"CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:N", 0.0},
        // Physical, high complexity, high privileges: low end.
        V3Case{"CVSS:3.1/AV:P/AC:H/PR:H/UI:R/S:U/C:L/I:N/A:N", 1.6},
        // Adjacent network DoS archetype: 6.5.
        V3Case{"CVSS:3.1/AV:A/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:H", 6.5}));

TEST(CvssV3Roundup, SpecBehaviour) {
  EXPECT_DOUBLE_EQ(cv::roundup_v31(4.0), 4.0);
  EXPECT_DOUBLE_EQ(cv::roundup_v31(4.02), 4.1);
  EXPECT_DOUBLE_EQ(cv::roundup_v31(4.00002), 4.1);
  // The 3.1 spec's own example: 8.6 * 0.915 -> 7.87 -> roundup 7.9 without
  // the floating-point artifact that 3.0 produced.
  EXPECT_DOUBLE_EQ(cv::roundup_v31(8.6 * 0.915), 7.9);
}

TEST(CvssV3Severity, Bands) {
  EXPECT_EQ(cv::severity_band_v3(0.0), cv::SeverityV3::kNone);
  EXPECT_EQ(cv::severity_band_v3(0.1), cv::SeverityV3::kLow);
  EXPECT_EQ(cv::severity_band_v3(3.9), cv::SeverityV3::kLow);
  EXPECT_EQ(cv::severity_band_v3(4.0), cv::SeverityV3::kMedium);
  EXPECT_EQ(cv::severity_band_v3(6.9), cv::SeverityV3::kMedium);
  EXPECT_EQ(cv::severity_band_v3(7.0), cv::SeverityV3::kHigh);
  EXPECT_EQ(cv::severity_band_v3(8.9), cv::SeverityV3::kHigh);
  EXPECT_EQ(cv::severity_band_v3(9.0), cv::SeverityV3::kCritical);
  EXPECT_EQ(cv::severity_band_v3(10.0), cv::SeverityV3::kCritical);
  EXPECT_THROW((void)cv::severity_band_v3(-0.1), std::invalid_argument);
  EXPECT_THROW((void)cv::severity_band_v3(10.1), std::invalid_argument);
}

TEST(CvssV3Scores, ExhaustiveEnumerationInvariants) {
  // 4*2*3*2*2*3*3*3 = 2592 vectors: base in [0,10], rounded up to a tenth,
  // zero impact forces zero base, round trip through text.
  int checked = 0;
  for (auto av : {cv::AttackVectorV3::kNetwork, cv::AttackVectorV3::kAdjacent,
                  cv::AttackVectorV3::kLocal, cv::AttackVectorV3::kPhysical})
    for (auto ac : {cv::AttackComplexityV3::kLow, cv::AttackComplexityV3::kHigh})
      for (auto pr : {cv::PrivilegesRequiredV3::kNone, cv::PrivilegesRequiredV3::kLow,
                      cv::PrivilegesRequiredV3::kHigh})
        for (auto ui : {cv::UserInteractionV3::kNone, cv::UserInteractionV3::kRequired})
          for (auto sc : {cv::ScopeV3::kUnchanged, cv::ScopeV3::kChanged})
            for (auto c : {cv::ImpactV3::kNone, cv::ImpactV3::kLow, cv::ImpactV3::kHigh})
              for (auto i : {cv::ImpactV3::kNone, cv::ImpactV3::kLow, cv::ImpactV3::kHigh})
                for (auto a : {cv::ImpactV3::kNone, cv::ImpactV3::kLow, cv::ImpactV3::kHigh}) {
                  cv::CvssV3Vector v;
                  v.attack_vector = av;
                  v.attack_complexity = ac;
                  v.privileges_required = pr;
                  v.user_interaction = ui;
                  v.scope = sc;
                  v.confidentiality = c;
                  v.integrity = i;
                  v.availability = a;
                  const double base = v.base_score();
                  EXPECT_GE(base, 0.0) << v.to_string();
                  EXPECT_LE(base, 10.0) << v.to_string();
                  EXPECT_NEAR(base * 10.0, std::round(base * 10.0), 1e-9) << v.to_string();
                  if (c == cv::ImpactV3::kNone && i == cv::ImpactV3::kNone &&
                      a == cv::ImpactV3::kNone) {
                    EXPECT_DOUBLE_EQ(base, 0.0);
                  } else {
                    EXPECT_GT(base, 0.0) << v.to_string();
                  }
                  EXPECT_EQ(cv::CvssV3Vector::parse(v.to_string()), v);
                  ++checked;
                }
  EXPECT_EQ(checked, 2592);
}
