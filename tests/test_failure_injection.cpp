// Failure-injection tests on the lower-layer server SRN: crank individual
// failure rates by orders of magnitude and verify that the model reacts in
// the physically sensible direction while every structural invariant keeps
// holding.  This guards the guard functions — a wrong Table III predicate
// typically survives the happy path but breaks under stress.

#include <gtest/gtest.h>

#include "patchsec/avail/aggregation.hpp"
#include "patchsec/avail/server_srn.hpp"
#include "patchsec/enterprise/network.hpp"
#include "patchsec/petri/reachability.hpp"

namespace av = patchsec::avail;
namespace ent = patchsec::enterprise;
namespace pt = patchsec::petri;

namespace {

ent::ServerSpec base_spec() { return ent::paper_server_specs().at(ent::ServerRole::kApp); }

double service_availability(const ent::ServerSpec& spec, double interval = 720.0) {
  const av::ServerSrn srn = av::build_server_srn(spec, interval);
  const pt::SrnAnalyzer analyzer(srn.model);
  return analyzer.probability([&srn](const pt::Marking& m) { return srn.service_up(m); });
}

}  // namespace

TEST(FailureInjection, HardwareFailuresDepressAvailability) {
  ent::ServerSpec fragile = base_spec();
  fragile.times.hw_mtbf = 100.0;  // 876x worse hardware
  EXPECT_LT(service_availability(fragile), service_availability(base_spec()));
}

TEST(FailureInjection, OsFailuresDepressAvailability) {
  ent::ServerSpec fragile = base_spec();
  fragile.times.os_mtbf = 24.0;
  EXPECT_LT(service_availability(fragile), service_availability(base_spec()));
}

TEST(FailureInjection, ServiceFailuresDepressAvailability) {
  ent::ServerSpec fragile = base_spec();
  fragile.times.svc_mtbf = 12.0;
  EXPECT_LT(service_availability(fragile), service_availability(base_spec()));
}

TEST(FailureInjection, FasterRepairRestoresAvailability) {
  ent::ServerSpec fragile = base_spec();
  fragile.times.svc_mtbf = 12.0;
  ent::ServerSpec fast_repair = fragile;
  fast_repair.times.svc_mttr = 0.05;  // 3 minutes instead of 30
  EXPECT_GT(service_availability(fast_repair), service_availability(fragile));
}

TEST(FailureInjection, ExtremeFailureRatesKeepInvariants) {
  // Even with absurd rates, the reachable space stays 1-safe per component
  // and hardware never fails inside the patch window.
  ent::ServerSpec hellish = base_spec();
  hellish.times.hw_mtbf = 10.0;
  hellish.times.os_mtbf = 5.0;
  hellish.times.svc_mtbf = 2.0;
  const av::ServerSrn srn = av::build_server_srn(hellish, 48.0);
  const pt::ReachabilityGraph graph = pt::build_reachability_graph(srn.model);
  for (const pt::Marking& m : graph.tangible_markings) {
    EXPECT_EQ(m[srn.hw_up] + m[srn.hw_down], 1u);
    if (srn.in_patch_window(m)) {
      EXPECT_EQ(m[srn.hw_down], 0u) << pt::to_string(m);
      EXPECT_EQ(m[srn.os_failed], 0u) << pt::to_string(m);
      EXPECT_EQ(m[srn.svc_failed], 0u) << pt::to_string(m);
    }
  }
  EXPECT_TRUE(graph.chain.is_irreducible());
}

TEST(FailureInjection, AggregationRobustToFailureRates) {
  // mu_eq reflects patch durations; failure dynamics shift it only weakly
  // because failures cannot interrupt the patch sequence (paper assumption).
  const double healthy = av::aggregate_server(base_spec()).mu_eq;
  ent::ServerSpec fragile = base_spec();
  fragile.times.svc_mtbf = 48.0;
  fragile.times.os_mtbf = 96.0;
  const double stressed = av::aggregate_server(fragile).mu_eq;
  EXPECT_NEAR(stressed, healthy, healthy * 0.05);
}

TEST(FailureInjection, PatchWindowFractionGrowsWithLongerPatch) {
  // Doubling critical vulnerabilities (patch work) raises the patch-down
  // probability roughly proportionally.
  const av::AggregatedRates base = av::aggregate_server(base_spec());
  ent::ServerSpec heavy = base_spec();
  for (int i = 0; i < 6; ++i) {
    patchsec::nvd::Vulnerability v;
    v.cve_id = "INJ-OS-" + std::to_string(i);
    v.product = heavy.os_name;
    v.layer = patchsec::nvd::SoftwareLayer::kOs;
    v.vector = patchsec::cvss::CvssV2Vector::parse("AV:N/AC:L/Au:N/C:C/I:C/A:C");
    v.remotely_exploitable = false;
    heavy.vulnerabilities.push_back(std::move(v));
  }
  const av::AggregatedRates loaded = av::aggregate_server(heavy);
  EXPECT_GT(loaded.p_patch_down, base.p_patch_down * 1.5);
  EXPECT_LT(loaded.mu_eq, base.mu_eq);
}

TEST(FailureInjection, DownstreamCoaReflectsServerStress) {
  // A fragile app server must show up as lower network COA end to end.
  auto specs = ent::paper_server_specs();
  std::map<ent::ServerRole, av::AggregatedRates> rates_healthy, rates_fragile;
  for (const auto& [role, spec] : specs) rates_healthy.emplace(role, av::aggregate_server(spec));

  specs.at(ent::ServerRole::kApp).times.svc_mtbf = 24.0;
  // Note: svc failures do not change mu_eq much, but the *two-state
  // abstraction* only models patch downtime.  The honest comparison is the
  // detailed lower-layer availability:
  const double healthy_up = service_availability(base_spec());
  const double fragile_up = service_availability(specs.at(ent::ServerRole::kApp));
  EXPECT_LT(fragile_up, healthy_up);
  (void)rates_fragile;
}

TEST(FailureInjection, ShortIntervalStateSpaceStaysBounded) {
  // Hourly patching is extreme but must not blow up the state space.
  const av::ServerSrn srn = av::build_server_srn(base_spec(), 1.0);
  const pt::ReachabilityGraph graph = pt::build_reachability_graph(srn.model);
  EXPECT_LT(graph.tangible_count(), 200u);
}
