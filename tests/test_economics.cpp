// Tests for the economic decision layer: cost composition and the
// cheapest-design selection over the paper's case study.

#include <gtest/gtest.h>

#include "patchsec/core/economics.hpp"

namespace core = patchsec::core;
namespace ent = patchsec::enterprise;

namespace {

const std::vector<core::EvalReport>& five_designs() {
  static const auto reports = core::Session(core::Scenario::paper_case_study()).evaluate_all();
  return reports;
}

}  // namespace

TEST(Economics, CostCompositionIsExact) {
  const core::CostModel model{.server_cost_per_year = 1000.0,
                              .downtime_cost_per_hour = 100.0,
                              .breach_cost = 50000.0,
                              .annual_attack_probability = 0.5,
                              .patch_labor_cost = 10.0,
                              .patches_per_year = 12.0};
  const core::EvalReport& base = five_designs()[0];  // 4 servers
  const core::CostBreakdown cost = core::annual_cost(base, model);
  EXPECT_DOUBLE_EQ(cost.infrastructure, 4000.0);
  EXPECT_NEAR(cost.downtime, (1.0 - base.coa) * 8760.0 * 100.0, 1e-9);
  EXPECT_NEAR(cost.breach_risk,
              base.after_patch.attack_success_probability * 0.5 * 50000.0, 1e-9);
  EXPECT_DOUBLE_EQ(cost.patching, 10.0 * 12.0 * 4.0);
  EXPECT_NEAR(cost.total(),
              cost.infrastructure + cost.downtime + cost.breach_risk + cost.patching, 1e-9);
}

TEST(Economics, ExpensiveServersFavorNoRedundancy) {
  core::CostModel model;
  model.server_cost_per_year = 1e6;  // servers dominate everything
  model.downtime_cost_per_hour = 1.0;
  model.breach_cost = 1.0;
  const auto& best = core::cheapest_design(five_designs(), model);
  EXPECT_EQ(best.design.total_servers(), 4u);
}

TEST(Economics, ExpensiveDowntimeFavorsAppRedundancy) {
  core::CostModel model;
  model.server_cost_per_year = 100.0;  // servers nearly free
  model.downtime_cost_per_hour = 1e6;  // downtime dominates
  model.breach_cost = 0.0;
  const auto& best = core::cheapest_design(five_designs(), model);
  // Highest-COA design wins: 1 DNS + 1 WEB + 2 APP + 1 DB.
  EXPECT_EQ(best.design.name(), "1 DNS + 1 WEB + 2 APP + 1 DB");
}

TEST(Economics, ExpensiveBreachFavorsDnsRedundancy) {
  core::CostModel model;
  model.server_cost_per_year = 100.0;
  model.downtime_cost_per_hour = 1e5;
  model.breach_cost = 1e9;  // security dominates among availability ties
  const auto& best = core::cheapest_design(five_designs(), model);
  // 2-DNS has the lowest after-patch ASP tied with the baseline but better
  // COA, so it beats both the baseline and the security-worse designs.
  EXPECT_EQ(best.design.name(), "2 DNS + 1 WEB + 1 APP + 1 DB");
}

TEST(Economics, Validation) {
  core::CostModel model;
  model.annual_attack_probability = 1.5;
  EXPECT_THROW((void)core::annual_cost(five_designs()[0], model), std::invalid_argument);
  EXPECT_THROW((void)core::cheapest_design(std::vector<core::EvalReport>{}, core::CostModel{}),
               std::invalid_argument);
}

TEST(Economics, BreachRiskScalesWithAttackProbability) {
  core::CostModel model;
  model.annual_attack_probability = 0.25;
  const double quarter = core::annual_cost(five_designs()[2], model).breach_risk;
  model.annual_attack_probability = 1.0;
  const double full = core::annual_cost(five_designs()[2], model).breach_risk;
  EXPECT_NEAR(full, 4.0 * quarter, 1e-9);
}
