// Attack-tree tests: gate semantics (OR = max, AND = sum/product), the
// paper's worked web-server example, and the critical-patch pruning rules.

#include <gtest/gtest.h>

#include "patchsec/harm/attack_tree.hpp"

namespace hm = patchsec::harm;
namespace nv = patchsec::nvd;

namespace {

nv::Vulnerability vuln(const char* id, const char* vector, bool exploitable = true) {
  nv::Vulnerability v;
  v.cve_id = id;
  v.product = "test";
  v.vector = patchsec::cvss::CvssV2Vector::parse(vector);
  v.remotely_exploitable = exploitable;
  return v;
}

// The Table I archetypes.
nv::Vulnerability crit_full(const char* id) { return vuln(id, "AV:N/AC:L/Au:N/C:C/I:C/A:C"); }
nv::Vulnerability low_partial(const char* id) { return vuln(id, "AV:N/AC:L/Au:N/C:P/I:N/A:N"); }
nv::Vulnerability local_full(const char* id) { return vuln(id, "AV:L/AC:L/Au:N/C:C/I:C/A:C"); }

}  // namespace

TEST(AttackTree, EmptyTreeInfeasible) {
  const hm::AttackTree tree;
  EXPECT_TRUE(tree.infeasible());
  EXPECT_THROW((void)tree.attack_impact(), std::logic_error);
  EXPECT_THROW((void)tree.attack_success_probability(), std::logic_error);
  EXPECT_EQ(tree.exploitable_vulnerability_count(), 0u);
}

TEST(AttackTree, SingleLeafValues) {
  hm::AttackTree tree;
  tree.set_root(tree.add_leaf(crit_full("CVE-1")));
  EXPECT_DOUBLE_EQ(tree.attack_impact(), 10.0);
  EXPECT_DOUBLE_EQ(tree.attack_success_probability(), 1.0);
  EXPECT_EQ(tree.exploitable_vulnerability_count(), 1u);
}

TEST(AttackTree, OrGateTakesMax) {
  hm::AttackTree tree;
  const auto a = tree.add_leaf(low_partial("CVE-a"));   // impact 2.9, p 1.0
  const auto b = tree.add_leaf(local_full("CVE-b"));    // impact 10.0, p 0.39
  tree.set_root(tree.add_gate(hm::GateType::kOr, {a, b}));
  EXPECT_DOUBLE_EQ(tree.attack_impact(), 10.0);
  EXPECT_DOUBLE_EQ(tree.attack_success_probability(), 1.0);
}

TEST(AttackTree, AndGateSumsImpactMultipliesProbability) {
  hm::AttackTree tree;
  const auto a = tree.add_leaf(low_partial("CVE-a"));  // 2.9, 1.0
  const auto b = tree.add_leaf(local_full("CVE-b"));   // 10.0, 0.39
  tree.set_root(tree.add_gate(hm::GateType::kAnd, {a, b}));
  EXPECT_DOUBLE_EQ(tree.attack_impact(), 12.9);
  EXPECT_DOUBLE_EQ(tree.attack_success_probability(), 0.39);
}

TEST(AttackTree, PaperWebServerExample) {
  // web AT = OR(v1, v2, v3, AND(v4, v5)):
  //   aim = max(10.0, 10.0, 10.0, 2.9 + 10.0) = 12.9   (Sec. III-C)
  const hm::AttackTree tree = hm::make_or_tree(
      {crit_full("v1web"), crit_full("v2web"), crit_full("v3web")},
      {{low_partial("v4web"), local_full("v5web")}});
  EXPECT_DOUBLE_EQ(tree.attack_impact(), 12.9);
  EXPECT_DOUBLE_EQ(tree.attack_success_probability(), 1.0);
  EXPECT_EQ(tree.exploitable_vulnerability_count(), 5u);
}

TEST(AttackTree, GateValidation) {
  hm::AttackTree tree;
  const auto leaf = tree.add_leaf(crit_full("CVE-1"));
  EXPECT_THROW((void)tree.add_gate(hm::GateType::kLeaf, {leaf}), std::invalid_argument);
  EXPECT_THROW((void)tree.add_gate(hm::GateType::kOr, {}), std::invalid_argument);
  EXPECT_THROW((void)tree.add_gate(hm::GateType::kOr, {99}), std::out_of_range);
  const auto gate = tree.add_gate(hm::GateType::kOr, {leaf});
  // leaf already has a parent now.
  EXPECT_THROW((void)tree.add_gate(hm::GateType::kAnd, {leaf}), std::invalid_argument);
  tree.set_root(gate);
  EXPECT_DOUBLE_EQ(tree.attack_impact(), 10.0);
}

TEST(AttackTree, LeavesReturnedInOrder) {
  const hm::AttackTree tree = hm::make_or_tree({crit_full("A"), crit_full("B")},
                                               {{low_partial("C"), local_full("D")}});
  const auto leaves = tree.leaves();
  ASSERT_EQ(leaves.size(), 4u);
  EXPECT_EQ(leaves[0].cve_id, "A");
  EXPECT_EQ(leaves[1].cve_id, "B");
  EXPECT_EQ(leaves[2].cve_id, "C");
  EXPECT_EQ(leaves[3].cve_id, "D");
}

// ---------- patch pruning ------------------------------------------------------

TEST(AttackTreePatch, OrSurvivesPartialPrune) {
  const hm::AttackTree tree = hm::make_or_tree({crit_full("crit"), local_full("keeper")});
  const hm::AttackTree after = tree.after_critical_patch();
  ASSERT_FALSE(after.infeasible());
  EXPECT_DOUBLE_EQ(after.attack_impact(), 10.0);
  EXPECT_DOUBLE_EQ(after.attack_success_probability(), 0.39);
  EXPECT_EQ(after.exploitable_vulnerability_count(), 1u);
}

TEST(AttackTreePatch, OrDiesWhenAllChildrenPruned) {
  const hm::AttackTree tree = hm::make_or_tree({crit_full("c1"), crit_full("c2")});
  EXPECT_TRUE(tree.after_critical_patch().infeasible());
}

TEST(AttackTreePatch, AndDiesWhenOneLegPruned) {
  hm::AttackTree tree;
  const auto a = tree.add_leaf(crit_full("critical-leg"));
  const auto b = tree.add_leaf(local_full("surviving-leg"));
  tree.set_root(tree.add_gate(hm::GateType::kAnd, {a, b}));
  EXPECT_TRUE(tree.after_critical_patch().infeasible());
}

TEST(AttackTreePatch, AndSurvivesWhenNoLegPruned) {
  hm::AttackTree tree;
  const auto a = tree.add_leaf(low_partial("a"));
  const auto b = tree.add_leaf(local_full("b"));
  tree.set_root(tree.add_gate(hm::GateType::kAnd, {a, b}));
  const hm::AttackTree after = tree.after_critical_patch();
  ASSERT_FALSE(after.infeasible());
  EXPECT_DOUBLE_EQ(after.attack_impact(), 12.9);
}

TEST(AttackTreePatch, PaperWebServerAfterPatch) {
  // After removing critical v1..v3, only AND(v4, v5) remains: aim stays 12.9
  // (Table II's AIM after patch builds on this), asp falls to 0.39.
  const hm::AttackTree tree = hm::make_or_tree(
      {crit_full("v1web"), crit_full("v2web"), crit_full("v3web")},
      {{low_partial("v4web"), local_full("v5web")}});
  const hm::AttackTree after = tree.after_critical_patch();
  ASSERT_FALSE(after.infeasible());
  EXPECT_DOUBLE_EQ(after.attack_impact(), 12.9);
  EXPECT_DOUBLE_EQ(after.attack_success_probability(), 0.39);
  EXPECT_EQ(after.exploitable_vulnerability_count(), 2u);
}

TEST(AttackTreePatch, CustomPredicate) {
  const hm::AttackTree tree = hm::make_or_tree({crit_full("KEEP-1"), crit_full("DROP-1")});
  const hm::AttackTree after = tree.after_patch(
      [](const nv::Vulnerability& v) { return v.cve_id.rfind("DROP", 0) == 0; });
  ASSERT_FALSE(after.infeasible());
  EXPECT_EQ(after.leaves().size(), 1u);
  EXPECT_EQ(after.leaves()[0].cve_id, "KEEP-1");
}

TEST(AttackTreePatch, NullPredicateThrows) {
  const hm::AttackTree tree = hm::make_or_tree({crit_full("v")});
  EXPECT_THROW((void)tree.after_patch(nullptr), std::invalid_argument);
}

TEST(AttackTreePatch, PatchIsIdempotent) {
  const hm::AttackTree tree = hm::make_or_tree(
      {crit_full("v1")}, {{low_partial("v4"), local_full("v5")}});
  const hm::AttackTree once = tree.after_critical_patch();
  const hm::AttackTree twice = once.after_critical_patch();
  ASSERT_FALSE(twice.infeasible());
  EXPECT_DOUBLE_EQ(once.attack_impact(), twice.attack_impact());
  EXPECT_DOUBLE_EQ(once.attack_success_probability(), twice.attack_success_probability());
  EXPECT_EQ(once.exploitable_vulnerability_count(), twice.exploitable_vulnerability_count());
}

TEST(AttackTreePatch, InfeasibleTreePatchesToInfeasible) {
  const hm::AttackTree empty;
  EXPECT_TRUE(empty.after_critical_patch().infeasible());
}

TEST(MakeOrTree, SingleLeafCollapses) {
  const hm::AttackTree tree = hm::make_or_tree({crit_full("only")});
  EXPECT_DOUBLE_EQ(tree.attack_impact(), 10.0);
  EXPECT_EQ(tree.node_count(), 1u);  // no superfluous OR gate
}

TEST(MakeOrTree, SingletonAndGroupCollapses) {
  const hm::AttackTree tree = hm::make_or_tree({crit_full("a")}, {{local_full("b")}});
  // OR(a, b) with b a collapsed single-member group: 3 nodes (2 leaves + OR).
  EXPECT_EQ(tree.node_count(), 3u);
  EXPECT_DOUBLE_EQ(tree.attack_success_probability(), 1.0);
}

TEST(MakeOrTree, EmptyAndGroupThrows) {
  EXPECT_THROW((void)hm::make_or_tree({crit_full("a")}, {{}}), std::invalid_argument);
}

TEST(MakeOrTree, NoInputsGivesInfeasible) {
  EXPECT_TRUE(hm::make_or_tree({}).infeasible());
}
