// Tests for the offline NVD database: API behaviour plus an exact
// reproduction of Table I (the per-vulnerability attack impact and attack
// success probability of the example network).

#include <gtest/gtest.h>

#include "patchsec/nvd/database.hpp"

namespace nv = patchsec::nvd;

TEST(Database, AddAndFind) {
  nv::VulnerabilityDatabase db;
  nv::Vulnerability v;
  v.cve_id = "CVE-0000-0001";
  v.product = "widget";
  v.vector = patchsec::cvss::CvssV2Vector::parse("AV:N/AC:L/Au:N/C:C/I:C/A:C");
  db.add(v);
  EXPECT_EQ(db.size(), 1u);
  EXPECT_TRUE(db.contains("CVE-0000-0001"));
  EXPECT_FALSE(db.contains("CVE-0000-0002"));
  EXPECT_EQ(db.find("CVE-0000-0001").product, "widget");
  EXPECT_THROW((void)db.find("CVE-9999-9999"), std::out_of_range);
}

TEST(Database, RejectsEmptyIdAndDuplicates) {
  nv::VulnerabilityDatabase db;
  nv::Vulnerability v;
  EXPECT_THROW(db.add(v), std::invalid_argument);  // empty id
  v.cve_id = "CVE-0000-0001";
  v.product = "widget";
  db.add(v);
  EXPECT_THROW(db.add(v), std::invalid_argument);  // duplicate (id, product)
  v.product = "other-widget";
  EXPECT_NO_THROW(db.add(v));  // same CVE, different product: allowed
}

TEST(Database, QueryByProductAndFlags) {
  const nv::VulnerabilityDatabase db = nv::make_paper_database();
  EXPECT_EQ(db.by_product("PHP").size(), 2u);
  EXPECT_EQ(db.by_product("Oracle WebLogic").size(), 4u);
  EXPECT_EQ(db.by_product("MySQL").size(), 4u);
  EXPECT_TRUE(db.by_product("nonexistent").empty());
}

TEST(PaperDatabase, SixteenExploitableEntries) {
  const nv::VulnerabilityDatabase db = nv::make_paper_database();
  // Table I lists 16 rows (CVE-2016-4997 appears twice: app and db tier).
  EXPECT_EQ(db.exploitable().size(), 16u);
}

TEST(PaperDatabase, NonExploitableOsCriticals) {
  const nv::VulnerabilityDatabase db = nv::make_paper_database();
  std::size_t synthetic = 0;
  for (const nv::Vulnerability& v : db.all()) {
    if (!v.remotely_exploitable) {
      EXPECT_TRUE(v.is_critical()) << v.cve_id;
      EXPECT_EQ(v.layer, nv::SoftwareLayer::kOs) << v.cve_id;
      ++synthetic;
    }
  }
  EXPECT_EQ(synthetic, 8u);  // 2 Windows + 3 OL7 app tier + 3 OL7 db tier
}

// Exact Table I reproduction: (cve, product, impact, probability).
struct TableOneRow {
  const char* cve;
  const char* product;
  double impact;
  double probability;
};

class TableOne : public ::testing::TestWithParam<TableOneRow> {};

TEST_P(TableOne, ImpactAndProbabilityMatchPaper) {
  const nv::VulnerabilityDatabase db = nv::make_paper_database();
  const TableOneRow& row = GetParam();
  bool found = false;
  for (const nv::Vulnerability& v : db.all()) {
    if (v.cve_id == row.cve && v.product == row.product) {
      EXPECT_DOUBLE_EQ(v.attack_impact(), row.impact) << row.cve;
      EXPECT_DOUBLE_EQ(v.attack_success_probability(), row.probability) << row.cve;
      EXPECT_TRUE(v.remotely_exploitable) << row.cve;
      found = true;
    }
  }
  EXPECT_TRUE(found) << row.cve << " on " << row.product;
}

INSTANTIATE_TEST_SUITE_P(
    AllRows, TableOne,
    ::testing::Values(
        TableOneRow{"CVE-2016-3227", "Microsoft DNS", 10.0, 1.0},
        TableOneRow{"CVE-2016-4448", "libxml2 (RHEL)", 10.0, 1.0},
        TableOneRow{"CVE-2015-4602", "PHP", 10.0, 1.0},
        TableOneRow{"CVE-2015-4603", "PHP", 10.0, 1.0},
        TableOneRow{"CVE-2016-4979", "Apache HTTP", 2.9, 1.0},
        TableOneRow{"CVE-2016-4805", "Linux kernel (RHEL)", 10.0, 0.39},
        TableOneRow{"CVE-2016-3586", "Oracle WebLogic", 10.0, 1.0},
        TableOneRow{"CVE-2016-3510", "Oracle WebLogic", 10.0, 1.0},
        TableOneRow{"CVE-2016-3499", "Oracle WebLogic", 10.0, 1.0},
        TableOneRow{"CVE-2016-0638", "Oracle WebLogic", 6.4, 1.0},
        TableOneRow{"CVE-2016-4997", "Linux kernel (Oracle Linux 7, app tier)", 10.0, 0.39},
        TableOneRow{"CVE-2016-6662", "MySQL", 10.0, 1.0},
        TableOneRow{"CVE-2016-0639", "MySQL", 10.0, 1.0},
        TableOneRow{"CVE-2015-3152", "MySQL", 2.9, 0.86},
        TableOneRow{"CVE-2016-3471", "MySQL", 10.0, 0.39},
        TableOneRow{"CVE-2016-4997", "Linux kernel (Oracle Linux 7, db tier)", 10.0, 0.39}));

TEST(PaperDatabase, CriticalityClassification) {
  const nv::VulnerabilityDatabase db = nv::make_paper_database();
  // Critical (base > 8.0): the five remote-full-impact Table I entries.
  for (const char* cve : {"CVE-2016-3227", "CVE-2016-4448", "CVE-2015-4602", "CVE-2015-4603",
                          "CVE-2016-3586", "CVE-2016-3510", "CVE-2016-3499", "CVE-2016-6662",
                          "CVE-2016-0639"}) {
    EXPECT_TRUE(db.find(cve).is_critical()) << cve;
  }
  // Not critical: survive the patch and form the after-patch attack surface.
  for (const char* cve :
       {"CVE-2016-4979", "CVE-2016-4805", "CVE-2016-0638", "CVE-2015-3152", "CVE-2016-3471",
        "CVE-2016-4997"}) {
    EXPECT_FALSE(db.find(cve).is_critical()) << cve;
  }
}

TEST(PaperDatabase, LayerToString) {
  EXPECT_STREQ(nv::to_string(nv::SoftwareLayer::kOs), "OS");
  EXPECT_STREQ(nv::to_string(nv::SoftwareLayer::kApplication), "application");
}
