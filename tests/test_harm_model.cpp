// Two-layer HARM tests: node/path/network metric composition, the paper's
// worked example (aim_ap1 = 52.2) and the full Table II reproduction on the
// example enterprise network.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <string>
#include <vector>

#include "patchsec/enterprise/network.hpp"
#include "patchsec/harm/harm.hpp"
#include "patchsec/harm/path_classes.hpp"

namespace hm = patchsec::harm;
namespace ent = patchsec::enterprise;

namespace {

patchsec::nvd::Vulnerability vuln(const char* id, const char* vector) {
  patchsec::nvd::Vulnerability v;
  v.cve_id = id;
  v.product = "test";
  v.vector = patchsec::cvss::CvssV2Vector::parse(vector);
  v.remotely_exploitable = true;
  return v;
}

}  // namespace

TEST(Harm, AttachAndQueryTrees) {
  hm::AttackGraph g;
  const auto attacker = g.add_node("attacker");
  const auto server = g.add_node("server");
  g.set_attacker(attacker);
  g.add_target(server);
  g.add_edge(attacker, server);

  hm::Harm model(std::move(g));
  EXPECT_THROW((void)model.tree(server), std::out_of_range);
  EXPECT_FALSE(model.attackable(server));
  EXPECT_THROW(model.attach_tree(attacker, hm::AttackTree{}), std::invalid_argument);

  model.attach_tree(server, hm::make_or_tree({vuln("v", "AV:N/AC:L/Au:N/C:C/I:C/A:C")}));
  EXPECT_TRUE(model.attackable(server));
  EXPECT_DOUBLE_EQ(model.node_impact(server), 10.0);
  EXPECT_DOUBLE_EQ(model.node_probability(server), 1.0);
}

TEST(Harm, PathMetricsComposeAcrossNodes) {
  // attacker -> n1 -> n2; impact adds, probability multiplies.
  hm::AttackGraph g;
  const auto attacker = g.add_node("attacker");
  const auto n1 = g.add_node("n1");
  const auto n2 = g.add_node("n2");
  g.set_attacker(attacker);
  g.add_target(n2);
  g.add_edge(attacker, n1);
  g.add_edge(n1, n2);

  hm::Harm model(std::move(g));
  model.attach_tree(n1, hm::make_or_tree({vuln("a", "AV:L/AC:L/Au:N/C:C/I:C/A:C")}));  // 10, .39
  model.attach_tree(n2, hm::make_or_tree({vuln("b", "AV:N/AC:M/Au:N/C:P/I:N/A:N")}));  // 2.9, .86

  const auto paths = model.attack_paths();
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_DOUBLE_EQ(paths[0].impact, 12.9);
  EXPECT_NEAR(paths[0].probability, 0.39 * 0.86, 1e-12);

  const hm::SecurityMetrics m = model.evaluate();
  EXPECT_DOUBLE_EQ(m.attack_impact, 12.9);
  EXPECT_NEAR(m.attack_success_probability, 0.39 * 0.86, 1e-12);
  EXPECT_EQ(m.attack_paths, 1u);
  EXPECT_EQ(m.entry_points, 1u);
  EXPECT_EQ(m.exploitable_vulnerabilities, 2u);
}

TEST(Harm, NetworkAspAggregatesOverPaths) {
  // Diamond with identical nodes p=0.5 per node, two 1-node paths:
  // ASP = 1 - (1-0.5)^2 = 0.75... here each path has one node with p=0.39.
  hm::AttackGraph g;
  const auto attacker = g.add_node("attacker");
  const auto t1 = g.add_node("t1");
  const auto t2 = g.add_node("t2");
  g.set_attacker(attacker);
  g.add_target(t1);
  g.add_target(t2);
  g.add_edge(attacker, t1);
  g.add_edge(attacker, t2);

  hm::Harm model(std::move(g));
  const auto local = vuln("v", "AV:L/AC:L/Au:N/C:C/I:C/A:C");  // p 0.39
  model.attach_tree(t1, hm::make_or_tree({local}));
  model.attach_tree(t2, hm::make_or_tree({local}));

  const hm::SecurityMetrics m = model.evaluate();
  EXPECT_NEAR(m.attack_success_probability, 1.0 - (1.0 - 0.39) * (1.0 - 0.39), 1e-12);
  EXPECT_EQ(m.attack_paths, 2u);
  EXPECT_EQ(m.entry_points, 2u);
}

TEST(Harm, NoPathsMeansZeroAimAsp) {
  hm::AttackGraph g;
  const auto attacker = g.add_node("attacker");
  const auto server = g.add_node("server");
  g.set_attacker(attacker);
  g.add_target(server);
  g.add_edge(attacker, server);
  hm::Harm model(std::move(g));
  // Infeasible tree: server not attackable, but its (zero) vulnerabilities
  // still count toward NoEV.
  model.attach_tree(server, hm::AttackTree{});
  const hm::SecurityMetrics m = model.evaluate();
  EXPECT_DOUBLE_EQ(m.attack_impact, 0.0);
  EXPECT_DOUBLE_EQ(m.attack_success_probability, 0.0);
  EXPECT_EQ(m.attack_paths, 0u);
  EXPECT_EQ(m.entry_points, 0u);
}

// ---------- the paper's example network (Fig. 3 / Table II) -------------------

class ExampleNetworkHarm : public ::testing::Test {
 protected:
  ExampleNetworkHarm()
      : network_(ent::example_network()), before_(network_.build_harm()),
        after_(before_.after_critical_patch()) {}
  ent::NetworkModel network_;
  hm::Harm before_;
  hm::Harm after_;
};

TEST_F(ExampleNetworkHarm, NodeImpactsMatchWorkedExample) {
  const auto& g = before_.graph();
  EXPECT_DOUBLE_EQ(before_.node_impact(g.node("dns1")), 10.0);
  EXPECT_DOUBLE_EQ(before_.node_impact(g.node("web1")), 12.9);
  EXPECT_DOUBLE_EQ(before_.node_impact(g.node("app1")), 16.4);
  EXPECT_DOUBLE_EQ(before_.node_impact(g.node("db1")), 12.9);
}

TEST_F(ExampleNetworkHarm, LongestPathImpactIs52_2) {
  // aim_ap1 = 10.0 + 12.9 + 16.4 + 12.9 = 52.2 (Sec. III-C).
  const auto paths = before_.attack_paths();
  double best = 0.0;
  for (const auto& p : paths) best = std::max(best, p.impact);
  EXPECT_DOUBLE_EQ(best, 52.2);
}

TEST_F(ExampleNetworkHarm, TableTwoBeforePatch) {
  const hm::SecurityMetrics m = before_.evaluate();
  EXPECT_DOUBLE_EQ(m.attack_impact, 52.2);               // paper: 52.2
  EXPECT_DOUBLE_EQ(m.attack_success_probability, 1.0);   // paper: 1.0
  EXPECT_EQ(m.attack_paths, 8u);                         // paper: 8
  EXPECT_EQ(m.entry_points, 3u);                         // paper: 3
  // Paper reports 25; summing Table I per server gives 26 (documented
  // deviation #1 in DESIGN.md).
  EXPECT_EQ(m.exploitable_vulnerabilities, 26u);
}

TEST_F(ExampleNetworkHarm, TableTwoAfterPatch) {
  const hm::SecurityMetrics m = after_.evaluate();
  EXPECT_DOUBLE_EQ(m.attack_impact, 42.2);  // paper: 42.2
  EXPECT_EQ(m.exploitable_vulnerabilities, 11u);  // paper: 11
  EXPECT_EQ(m.attack_paths, 4u);                  // paper: 4
  EXPECT_EQ(m.entry_points, 2u);                  // paper: 2
  // Our path-aggregation formula yields 0.217 (paper reports 0.265 from a
  // formula in refs [20][21]; documented deviation #2).
  const double asp_path = 0.39 * 0.39 * 0.39;
  EXPECT_NEAR(m.attack_success_probability, 1.0 - std::pow(1.0 - asp_path, 4.0), 1e-12);
}

TEST_F(ExampleNetworkHarm, DnsDropsOutAfterPatch) {
  const auto& g = after_.graph();
  EXPECT_FALSE(after_.attackable(g.node("dns1")));
  EXPECT_TRUE(after_.attackable(g.node("web1")));
  EXPECT_TRUE(after_.attackable(g.node("web2")));
  // After-patch paths must all start at a web server and have length 3.
  for (const auto& p : after_.attack_paths()) {
    ASSERT_EQ(p.nodes.size(), 3u);
    const std::string first = g.name(p.nodes.front());
    EXPECT_TRUE(first == "web1" || first == "web2") << first;
  }
}

TEST_F(ExampleNetworkHarm, AfterPatchNodeImpactsUnchangedForSurvivors) {
  const auto& g = after_.graph();
  // AND(v4, v5) keeps the web/app impact at 12.9/16.4 (Table II's AIM 42.2).
  EXPECT_DOUBLE_EQ(after_.node_impact(g.node("web1")), 12.9);
  EXPECT_DOUBLE_EQ(after_.node_impact(g.node("app1")), 16.4);
  EXPECT_DOUBLE_EQ(after_.node_impact(g.node("db1")), 12.9);
  EXPECT_DOUBLE_EQ(after_.node_probability(g.node("web1")), 0.39);
  EXPECT_DOUBLE_EQ(after_.node_probability(g.node("app1")), 0.39);
  EXPECT_DOUBLE_EQ(after_.node_probability(g.node("db1")), 0.39);
}

TEST_F(ExampleNetworkHarm, PatchImprovesEveryMetric) {
  const hm::SecurityMetrics b = before_.evaluate();
  const hm::SecurityMetrics a = after_.evaluate();
  EXPECT_LT(a.attack_impact, b.attack_impact);
  EXPECT_LT(a.attack_success_probability, b.attack_success_probability);
  EXPECT_LT(a.exploitable_vulnerabilities, b.exploitable_vulnerabilities);
  EXPECT_LT(a.attack_paths, b.attack_paths);
  EXPECT_LT(a.entry_points, b.entry_points);
}

TEST(Harm, TruncatedEvaluationIsObservableLowerBound) {
  // Example network (1 DNS + 2 WEB + 2 APP + 1 DB): 2*2 + 2*2 = 8 paths.
  const hm::Harm model = ent::example_network().build_harm();
  const hm::SecurityMetrics exact = model.evaluate();
  ASSERT_EQ(exact.attack_paths, 8u);
  EXPECT_EQ(exact.truncated_paths, 0u);

  const hm::SecurityMetrics capped = model.evaluate(hm::PathEnumerationOptions{3, true});
  EXPECT_EQ(capped.attack_paths, 3u);
  EXPECT_EQ(capped.truncated_paths, 5u);  // exact total stays observable: 3 + 5 = 8.
  // AIM/ASP never decrease with more paths: the capped values are lower bounds.
  EXPECT_LE(capped.attack_impact, exact.attack_impact);
  EXPECT_LE(capped.attack_success_probability, exact.attack_success_probability);
  // NoEV counts vulnerabilities on servers, not paths — unaffected by the cap.
  EXPECT_EQ(capped.exploitable_vulnerabilities, exact.exploitable_vulnerabilities);
}

TEST(Harm, PathClassesGroupByRoleSignature) {
  const hm::Harm model = ent::example_network().build_harm();
  const auto label = [&model](hm::GraphNodeId id) {
    std::string name = model.graph().name(id);
    while (!name.empty() && std::isdigit(static_cast<unsigned char>(name.back())) != 0) {
      name.pop_back();
    }
    return name;
  };
  const std::vector<hm::PathClass> classes = hm::aggregate_path_classes(model, label);

  // The 3-tier policy yields exactly two role signatures, in canonical
  // (lexicographic) order, splitting the 8 instance paths 4/4.
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_EQ(classes[0].name(), "dns-web-app-db");
  EXPECT_EQ(classes[1].name(), "web-app-db");
  EXPECT_EQ(classes[0].instance_paths, 4u);
  EXPECT_EQ(classes[1].instance_paths, 4u);

  // Class metrics recompose from the instance paths: success treats members
  // as independent alternatives, impact takes the worst member.
  const std::vector<hm::AttackPath> paths = model.attack_paths();
  for (const hm::PathClass& cls : classes) {
    double miss = 1.0;
    double worst = 0.0;
    for (const hm::AttackPath& path : paths) {
      if (path.nodes.size() != cls.signature.size()) continue;
      miss *= 1.0 - path.probability;
      worst = std::max(worst, path.impact);
    }
    EXPECT_NEAR(cls.success_probability, 1.0 - miss, 1e-12);
    EXPECT_DOUBLE_EQ(cls.max_impact, worst);
  }

  // Effort-weighted exposure is the linear coupling term; size mismatch throws.
  const double exposure = hm::weighted_exposure(classes, {0.25, 0.75});
  EXPECT_NEAR(exposure,
              0.25 * classes[0].success_probability + 0.75 * classes[1].success_probability,
              1e-15);
  EXPECT_THROW((void)hm::weighted_exposure(classes, {1.0}), std::invalid_argument);
}
