// Unit and property tests for the linalg module: vector ops, CSR matrices,
// dense LU and the steady-state solvers.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "patchsec/linalg/csr_matrix.hpp"
#include "patchsec/linalg/dense_matrix.hpp"
#include "patchsec/linalg/steady_state.hpp"
#include "patchsec/linalg/vector_ops.hpp"

namespace la = patchsec::linalg;

// ---------- vector ops -------------------------------------------------------

TEST(VectorOps, AxpyAddsScaledVector) {
  std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> y{10.0, 20.0, 30.0};
  la::axpy(0.5, y, x);
  EXPECT_DOUBLE_EQ(x[0], 6.0);
  EXPECT_DOUBLE_EQ(x[1], 12.0);
  EXPECT_DOUBLE_EQ(x[2], 18.0);
}

TEST(VectorOps, AxpySizeMismatchThrows) {
  std::vector<double> x{1.0};
  const std::vector<double> y{1.0, 2.0};
  EXPECT_THROW(la::axpy(1.0, y, x), std::invalid_argument);
}

TEST(VectorOps, DotProduct) {
  EXPECT_DOUBLE_EQ(la::dot({1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}), 32.0);
}

TEST(VectorOps, Norms) {
  const std::vector<double> v{3.0, -4.0};
  EXPECT_DOUBLE_EQ(la::norm1(v), 7.0);
  EXPECT_DOUBLE_EQ(la::norm2(v), 5.0);
  EXPECT_DOUBLE_EQ(la::norm_inf(v), 4.0);
}

TEST(VectorOps, MaxAbsDiff) {
  EXPECT_DOUBLE_EQ(la::max_abs_diff({1.0, 5.0}, {1.5, 4.0}), 1.0);
}

TEST(VectorOps, NormalizeProbability) {
  std::vector<double> v{1.0, 3.0};
  la::normalize_probability(v);
  EXPECT_DOUBLE_EQ(v[0], 0.25);
  EXPECT_DOUBLE_EQ(v[1], 0.75);
}

TEST(VectorOps, NormalizeZeroVectorThrows) {
  std::vector<double> v{0.0, 0.0};
  EXPECT_THROW(la::normalize_probability(v), std::domain_error);
}

TEST(VectorOps, NormalizeNegativeSumThrows) {
  std::vector<double> v{-1.0, 0.5};
  EXPECT_THROW(la::normalize_probability(v), std::domain_error);
}

TEST(VectorOps, AllFiniteDetectsNan) {
  EXPECT_TRUE(la::all_finite({1.0, 2.0}));
  EXPECT_FALSE(la::all_finite({1.0, std::nan("")}));
  EXPECT_FALSE(la::all_finite({1.0, INFINITY}));
}

// ---------- CSR matrix -------------------------------------------------------

TEST(CsrMatrix, BuildsAndLooksUp) {
  const la::CsrMatrix m(2, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {1, 1, 3.0}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 3.0);
}

TEST(CsrMatrix, DuplicateTripletsAreSummed) {
  const la::CsrMatrix m(1, 1, {{0, 0, 1.0}, {0, 0, 2.5}});
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.5);
  EXPECT_EQ(m.nnz(), 1u);
}

TEST(CsrMatrix, ExplicitZerosDropped) {
  const la::CsrMatrix m(1, 2, {{0, 0, 1.0}, {0, 1, -1.0}, {0, 1, 1.0}});
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
}

TEST(CsrMatrix, OutOfRangeTripletThrows) {
  EXPECT_THROW(la::CsrMatrix(1, 1, {{0, 1, 1.0}}), std::out_of_range);
  EXPECT_THROW(la::CsrMatrix(1, 1, {{1, 0, 1.0}}), std::out_of_range);
}

TEST(CsrMatrix, LeftMultiply) {
  const la::CsrMatrix m(2, 2, {{0, 0, 1.0}, {0, 1, 2.0}, {1, 0, 3.0}, {1, 1, 4.0}});
  std::vector<double> y;
  m.left_multiply({1.0, 1.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
}

TEST(CsrMatrix, RightMultiply) {
  const la::CsrMatrix m(2, 2, {{0, 0, 1.0}, {0, 1, 2.0}, {1, 0, 3.0}, {1, 1, 4.0}});
  std::vector<double> y;
  m.right_multiply({1.0, 1.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(CsrMatrix, MultiplySizeMismatchThrows) {
  const la::CsrMatrix m(2, 3, {});
  std::vector<double> y;
  EXPECT_THROW(m.left_multiply({1.0}, y), std::invalid_argument);
  EXPECT_THROW(m.right_multiply({1.0}, y), std::invalid_argument);
}

TEST(CsrMatrix, TransposeRoundTrip) {
  const la::CsrMatrix m(2, 3, {{0, 1, 5.0}, {1, 2, -2.0}});
  const la::CsrMatrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t.at(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(t.at(2, 1), -2.0);
  const la::CsrMatrix tt = t.transposed();
  EXPECT_DOUBLE_EQ(tt.at(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(tt.at(1, 2), -2.0);
}

TEST(CsrMatrix, RowSum) {
  const la::CsrMatrix m(2, 2, {{0, 0, -3.0}, {0, 1, 3.0}});
  EXPECT_DOUBLE_EQ(m.row_sum(0), 0.0);
  EXPECT_DOUBLE_EQ(m.row_sum(1), 0.0);
}

// ---------- dense LU ---------------------------------------------------------

TEST(DenseMatrix, SolvesSmallSystem) {
  la::DenseMatrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 3.0;
  const std::vector<double> x = a.solve({5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(DenseMatrix, PivotingHandlesZeroDiagonal) {
  la::DenseMatrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  const std::vector<double> x = a.solve({2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(DenseMatrix, SingularThrows) {
  la::DenseMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  EXPECT_THROW(a.solve({1.0, 1.0}), std::domain_error);
}

TEST(DenseMatrix, NonSquareSolveThrows) {
  la::DenseMatrix a(2, 3);
  EXPECT_THROW(a.solve({1.0, 1.0}), std::invalid_argument);
}

TEST(DenseMatrix, IdentitySolveReturnsRhs) {
  const la::DenseMatrix i = la::DenseMatrix::identity(3);
  const std::vector<double> x = i.solve({7.0, -2.0, 0.5});
  EXPECT_DOUBLE_EQ(x[0], 7.0);
  EXPECT_DOUBLE_EQ(x[1], -2.0);
  EXPECT_DOUBLE_EQ(x[2], 0.5);
}

TEST(DenseMatrix, RandomSystemsSolveAccurately) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(trial % 8);
    la::DenseMatrix a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) a(i, j) = u(rng);
      a(i, i) += 4.0;  // diagonally dominant: well conditioned
    }
    std::vector<double> x_true(n);
    for (double& v : x_true) v = u(rng);
    std::vector<double> b(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) b[i] += a(i, j) * x_true[j];
    }
    const std::vector<double> x = a.solve(b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
  }
}

// ---------- steady-state solvers ---------------------------------------------

namespace {

la::CsrMatrix two_state_generator(double a, double b) {
  return la::CsrMatrix(2, 2, {{0, 0, -a}, {0, 1, a}, {1, 0, b}, {1, 1, -b}});
}

}  // namespace

class SteadyStateMethods : public ::testing::TestWithParam<la::SteadyStateMethod> {};

TEST_P(SteadyStateMethods, TwoStateChainMatchesClosedForm) {
  const double a = 0.003, b = 1.7;
  la::SteadyStateOptions opt;
  opt.method = GetParam();
  const la::SteadyStateResult r = la::solve_steady_state(two_state_generator(a, b), opt);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.distribution[0], b / (a + b), 1e-9);
  EXPECT_NEAR(r.distribution[1], a / (a + b), 1e-9);
  EXPECT_LT(r.residual, 1e-8);
}

TEST_P(SteadyStateMethods, StiffRatesStillConverge) {
  // Rates spanning 8 orders of magnitude, like patch models.
  const double a = 1e-5, b = 1e3;
  la::SteadyStateOptions opt;
  opt.method = GetParam();
  const la::SteadyStateResult r = la::solve_steady_state(two_state_generator(a, b), opt);
  EXPECT_NEAR(r.distribution[0], b / (a + b), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, SteadyStateMethods,
                         ::testing::Values(la::SteadyStateMethod::kPower,
                                           la::SteadyStateMethod::kGaussSeidel,
                                           la::SteadyStateMethod::kSor,
                                           la::SteadyStateMethod::kAuto));

TEST(SteadyState, SingleStateChain) {
  const la::CsrMatrix q(1, 1, {});
  const la::SteadyStateResult r = la::solve_steady_state(q);
  EXPECT_DOUBLE_EQ(r.distribution[0], 1.0);
  EXPECT_TRUE(r.converged);
}

TEST(SteadyState, EmptyGeneratorThrows) {
  const la::CsrMatrix q;
  EXPECT_THROW(la::solve_steady_state(q), std::invalid_argument);
}

TEST(SteadyState, NonSquareThrows) {
  const la::CsrMatrix q(2, 3, {});
  EXPECT_THROW(la::solve_steady_state(q), std::invalid_argument);
}

TEST(SteadyState, CyclicChainUniform) {
  // 0 -> 1 -> 2 -> 0 all at rate 1: uniform stationary distribution.
  const la::CsrMatrix q(3, 3,
                        {{0, 0, -1.0}, {0, 1, 1.0}, {1, 1, -1.0}, {1, 2, 1.0},
                         {2, 2, -1.0}, {2, 0, 1.0}});
  const la::SteadyStateResult r = la::solve_steady_state(q);
  for (double p : r.distribution) EXPECT_NEAR(p, 1.0 / 3.0, 1e-9);
}

TEST(SteadyState, RandomBirthDeathMatchesClosedForm) {
  std::mt19937_64 rng(13);
  std::uniform_real_distribution<double> u(0.01, 10.0);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 2 + static_cast<std::size_t>(trial % 6);
    std::vector<double> birth(n), death(n);
    for (std::size_t i = 0; i < n; ++i) {
      birth[i] = u(rng);
      death[i] = u(rng);
    }
    const std::vector<double> pi_closed = la::birth_death_steady_state(birth, death);

    std::vector<la::Triplet> entries;
    for (std::size_t i = 0; i < n; ++i) {
      entries.push_back({i, i + 1, birth[i]});
      entries.push_back({i, i, -birth[i]});
      entries.push_back({i + 1, i, death[i]});
      entries.push_back({i + 1, i + 1, -death[i]});
    }
    const la::CsrMatrix q(n + 1, n + 1, entries);
    const la::SteadyStateResult r = la::solve_steady_state(q);
    ASSERT_EQ(r.distribution.size(), pi_closed.size());
    for (std::size_t i = 0; i <= n; ++i) EXPECT_NEAR(r.distribution[i], pi_closed[i], 1e-8);
  }
}

TEST(BirthDeath, SizesMustMatch) {
  EXPECT_THROW(la::birth_death_steady_state({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(BirthDeath, ZeroDeathRateThrows) {
  EXPECT_THROW(la::birth_death_steady_state({1.0}, {0.0}), std::domain_error);
}

TEST(BirthDeath, TwoStateClosedForm) {
  const std::vector<double> pi = la::birth_death_steady_state({2.0}, {6.0});
  EXPECT_NEAR(pi[0], 0.75, 1e-12);
  EXPECT_NEAR(pi[1], 0.25, 1e-12);
}
