// Tests for multi-stage patch campaigns (paper Sec. V future work: "monthly
// patch of 3 months"), including the severity-banded default.

#include <gtest/gtest.h>

#include "patchsec/core/campaign.hpp"
#include "patchsec/nvd/database.hpp"

namespace core = patchsec::core;
namespace ent = patchsec::enterprise;

namespace {

std::vector<core::CampaignStageResult> run_example_campaign() {
  return core::evaluate_campaign(ent::example_network_design(), ent::paper_server_specs(),
                                 ent::ReachabilityPolicy::three_tier(),
                                 core::severity_banded_campaign());
}

}  // namespace

TEST(Campaign, SeverityBandsPartitionTheDatabase) {
  const auto stages = core::severity_banded_campaign();
  ASSERT_EQ(stages.size(), 3u);
  // Every vulnerability in the paper database lands in exactly one band.
  // (Keep the database alive for the loop: all() returns a reference into it.)
  const auto db = patchsec::nvd::make_paper_database();
  for (const auto& v : db.all()) {
    int hits = 0;
    for (const auto& s : stages) {
      if (s.patched(v)) ++hits;
    }
    EXPECT_EQ(hits, 1) << v.cve_id;
  }
}

TEST(Campaign, StageOneReproducesThePaperPatch) {
  const auto results = run_example_campaign();
  ASSERT_EQ(results.size(), 3u);
  // Month 1 = the paper's critical patch: Table II after-patch metrics and
  // the Table VI COA.
  EXPECT_DOUBLE_EQ(results[0].security.attack_impact, 42.2);
  EXPECT_EQ(results[0].security.exploitable_vulnerabilities, 11u);
  EXPECT_EQ(results[0].security.attack_paths, 4u);
  EXPECT_NEAR(results[0].coa, 0.99707, 5e-6);
}

TEST(Campaign, SecurityImprovesMonotonically) {
  const auto results = run_example_campaign();
  for (std::size_t k = 1; k < results.size(); ++k) {
    EXPECT_LE(results[k].security.attack_success_probability,
              results[k - 1].security.attack_success_probability);
    EXPECT_LE(results[k].security.exploitable_vulnerabilities,
              results[k - 1].security.exploitable_vulnerabilities);
    EXPECT_LE(results[k].security.attack_paths, results[k - 1].security.attack_paths);
  }
}

TEST(Campaign, FullCampaignEliminatesTheAttackSurface) {
  const auto results = run_example_campaign();
  const auto& final = results.back().security;
  EXPECT_EQ(final.exploitable_vulnerabilities, 0u);
  EXPECT_EQ(final.attack_paths, 0u);
  EXPECT_DOUBLE_EQ(final.attack_success_probability, 0.0);
  EXPECT_DOUBLE_EQ(final.attack_impact, 0.0);
}

TEST(Campaign, WorkAccountingAddsUp) {
  const auto results = run_example_campaign();
  std::size_t total = 0;
  for (const auto& r : results) total += r.vulnerabilities_patched;
  // 26 exploitable + 8 non-exploitable OS criticals over the 6 instances:
  // dns 3 vulns, web 5 x2, app 8 x2, db 8 -> 3 + 10 + 16 + 8 = 37.
  EXPECT_EQ(total, 37u);
  // Month 1 (critical) carries most of the work.
  EXPECT_GT(results[0].vulnerabilities_patched, results[1].vulnerabilities_patched);
}

TEST(Campaign, LighterMonthsHaveHigherCoa) {
  const auto results = run_example_campaign();
  // Month 2 patches only the high band (the local kernel vulns etc.):
  // less work than month 1 -> higher COA.
  EXPECT_GT(results[1].coa, results[0].coa);
  for (const auto& r : results) {
    EXPECT_GT(r.coa, 0.99);
    EXPECT_LT(r.coa, 1.0);
  }
}

TEST(Campaign, Validation) {
  EXPECT_THROW((void)core::evaluate_campaign(ent::example_network_design(),
                                             ent::paper_server_specs(),
                                             ent::ReachabilityPolicy::three_tier(), {}),
               std::invalid_argument);
  std::vector<core::CampaignStage> bad{{"null", nullptr}};
  EXPECT_THROW((void)core::evaluate_campaign(ent::example_network_design(),
                                             ent::paper_server_specs(),
                                             ent::ReachabilityPolicy::three_tier(), bad),
               std::invalid_argument);
}

TEST(Campaign, SingleStageEqualsEverythingAtOnce) {
  std::vector<core::CampaignStage> all_at_once{
      {"everything", [](const patchsec::nvd::Vulnerability&) { return true; }}};
  const auto results = core::evaluate_campaign(ent::example_network_design(),
                                               ent::paper_server_specs(),
                                               ent::ReachabilityPolicy::three_tier(),
                                               all_at_once);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].security.exploitable_vulnerabilities, 0u);
  EXPECT_EQ(results[0].vulnerabilities_patched, 37u);
  // One mega-patch month: the heaviest possible patch load, lowest COA.
  const auto banded = run_example_campaign();
  EXPECT_LT(results[0].coa, banded[0].coa);
}
