// Direct unit tests for the two statistical primitives every reproducibility
// contract in the repository leans on (previously covered only indirectly
// through the simulator suites):
//
//  * sim/seed_stream.hpp — the counter-based seed derivation behind
//    replication determinism and differential repro-from-seed.  The
//    splitmix64 finalizer is pinned to the published reference sequence, so
//    any drift (which would silently re-seed every committed campaign)
//    fails loudly here first.
//  * sim/student_t.hpp — the 97.5% Student-t quantile behind every reported
//    confidence half width, pinned against standard table values for the
//    exact small-dof range and the Cornish-Fisher tail.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "patchsec/sim/seed_stream.hpp"
#include "patchsec/sim/student_t.hpp"

namespace sm = patchsec::sim;

// ---------- splitmix64 / stream_seed ----------------------------------------

TEST(SeedStream, Splitmix64MatchesReferenceSequence) {
  // The first outputs of the canonical splitmix64 generator seeded with 0
  // (state k*golden before the k-th finalization; published test vectors).
  constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ull;
  EXPECT_EQ(sm::splitmix64(0), 0xe220a8397b1dcdafull);
  EXPECT_EQ(sm::splitmix64(kGolden), 0x6e789e6aa1b965f4ull);
  EXPECT_EQ(sm::splitmix64(kGolden * 2), 0x06c45d188009454full);
}

TEST(SeedStream, StreamSeedIsTheDocumentedComposition) {
  // docs/TESTING.md commits to splitmix64(splitmix64(master) ^ index); the
  // differential repro workflow depends on this exact shape.
  for (std::uint64_t master : {0ull, 42ull, 20170626ull}) {
    for (std::uint64_t index : {0ull, 1ull, 31ull, 0xffffffffull}) {
      EXPECT_EQ(sm::stream_seed(master, index),
                sm::splitmix64(sm::splitmix64(master) ^ index));
    }
  }
  // Regression pins so the committed campaign seeds can never silently
  // re-derive (values computed from the reference composition above).
  EXPECT_EQ(sm::stream_seed(42, 0), sm::splitmix64(sm::splitmix64(42)));
  EXPECT_NE(sm::stream_seed(42, 0), sm::stream_seed(42, 1));
}

TEST(SeedStream, DeterministicAndArgumentOnly) {
  // Same (master, index) -> same seed, always; no hidden state.
  EXPECT_EQ(sm::stream_seed(7, 3), sm::stream_seed(7, 3));
  // constexpr: derivable at compile time, so it cannot read ambient state.
  static_assert(sm::stream_seed(7, 3) == sm::stream_seed(7, 3));
}

TEST(SeedStream, NearbyMastersAndIndicesDoNotCollide) {
  // Adjacent replication indices under adjacent master seeds (the layout the
  // simulator and the scenario generator actually use) must give pairwise
  // distinct streams.
  std::set<std::uint64_t> seen;
  for (std::uint64_t master = 0; master < 64; ++master) {
    for (std::uint64_t index = 0; index < 64; ++index) {
      seen.insert(sm::stream_seed(master, index));
    }
  }
  EXPECT_EQ(seen.size(), 64u * 64u);
}

TEST(SeedStream, FinalizerAvalanches) {
  // A one-bit flip of the input should flip roughly half the output bits
  // (splitmix64's design property); demand at least 16 of 64 for every bit
  // position — far above what any structured failure would produce.
  const std::uint64_t base = sm::splitmix64(0x123456789abcdef0ull);
  for (int bit = 0; bit < 64; ++bit) {
    const std::uint64_t flipped = sm::splitmix64(0x123456789abcdef0ull ^ (1ull << bit));
    const int hamming = __builtin_popcountll(base ^ flipped);
    EXPECT_GE(hamming, 16) << "input bit " << bit;
    EXPECT_LE(hamming, 48) << "input bit " << bit;
  }
}

// ---------- Student-t 97.5% quantile -----------------------------------------

TEST(StudentT, ExactTableForSmallDof) {
  // Standard t-table, 97.5th percentile, dof 1..8.
  const double expected[] = {12.7062, 4.3027, 3.1824, 2.7764,
                             2.5706,  2.4469, 2.3646, 2.3060};
  for (std::size_t dof = 1; dof <= 8; ++dof) {
    EXPECT_NEAR(sm::t_quantile_975(dof), expected[dof - 1], 5e-5) << "dof=" << dof;
  }
  // dof = 0 is degenerate (callers require n >= 2); it returns the dof = 1
  // value rather than anything unbounded.
  EXPECT_DOUBLE_EQ(sm::t_quantile_975(0), sm::t_quantile_975(1));
}

TEST(StudentT, CornishFisherTailMatchesReferenceConstants) {
  // Reference t_{0.975,v} values (Abramowitz & Stegun table 26.10), with the
  // expansion's actual accuracy envelope per dof: the truncated series is
  // ~4e-3 low at dof 9 and converges to table accuracy by dof ~30.  The
  // quantile's only consumer is CI half widths, where a 0.2% low bias at
  // dof 9 is far below replication noise — but the envelope is pinned here
  // so it can never silently widen.
  const struct {
    std::size_t dof;
    double expected;
    double tolerance;
  } kReference[] = {{9, 2.2622, 4e-3},  {10, 2.2281, 3e-3},  {12, 2.1788, 2e-3},
                    {15, 2.1314, 1e-3}, {20, 2.0860, 5e-4},  {30, 2.0423, 2e-4},
                    {60, 2.0003, 1e-4}, {120, 1.9799, 1e-4}, {240, 1.9699, 1e-4}};
  for (const auto& row : kReference) {
    EXPECT_NEAR(sm::t_quantile_975(row.dof), row.expected, row.tolerance) << "dof=" << row.dof;
  }
}

TEST(StudentT, MonotoneDecreasingTowardNormalQuantile) {
  for (std::size_t dof = 1; dof < 200; ++dof) {
    EXPECT_GT(sm::t_quantile_975(dof), sm::t_quantile_975(dof + 1)) << "dof=" << dof;
  }
  // Limit: the normal 97.5% quantile from above.
  EXPECT_GT(sm::t_quantile_975(100000), 1.959963);
  EXPECT_NEAR(sm::t_quantile_975(100000), 1.959964, 1e-4);
}

TEST(StudentT, ContinuousAcrossTheTableExpansionSeam) {
  // The hand-off from the exact table (dof 8) to the expansion (dof 9) must
  // not jump: a seam would make CI widths lurch when a replication budget
  // crosses n = 9 -> 10.
  EXPECT_GT(sm::t_quantile_975(8), sm::t_quantile_975(9));
  EXPECT_LT(sm::t_quantile_975(8) - sm::t_quantile_975(9), 0.06);
}
