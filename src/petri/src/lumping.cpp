#include "patchsec/petri/lumping.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

namespace patchsec::petri {

namespace {

void append_u64(std::string& key, std::uint64_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  key.append(buf, sizeof(v));
}

std::uint64_t rate_bits(double rate) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &rate, sizeof(bits));
  return bits;
}

void append_arcs(std::string& key, std::vector<Arc> arcs) {
  std::sort(arcs.begin(), arcs.end(), [](const Arc& a, const Arc& b) {
    return a.place != b.place ? a.place < b.place : a.multiplicity < b.multiplicity;
  });
  append_u64(key, arcs.size());
  for (const Arc& a : arcs) {
    append_u64(key, a.place);
    append_u64(key, a.multiplicity);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// LumpedNet mapping tables
// ---------------------------------------------------------------------------

struct LumpedNet::Mapping {
  struct PlaceInfo {
    bool grouped = false;
    std::size_t group = 0;
    std::size_t replica = 0;
    std::size_t slot = 0;
    PlaceId quotient = 0;  // passthrough image; unused for grouped places.
  };

  std::size_t flat_places = 0;
  std::size_t quotient_places = 0;
  std::vector<PlaceInfo> place;                             // by flat id
  std::vector<std::vector<std::vector<PlaceId>>> replicas;  // [group][replica][slot]
  std::vector<std::vector<PlaceId>> count_place;            // [group][slot]

  void project_into(const Marking& flat, Marking& out) const {
    if (flat.size() != flat_places) {
      throw std::invalid_argument("LumpedNet::project: flat marking size mismatch");
    }
    out.assign(quotient_places, 0);
    for (PlaceId p = 0; p < flat_places; ++p) {
      const PlaceInfo& info = place[p];
      if (info.grouped) {
        out[count_place[info.group][info.slot]] += flat[p];
      } else {
        out[info.quotient] = flat[p];
      }
    }
  }

  void reconstruct_into(const Marking& quotient, Marking& out) const {
    if (quotient.size() != quotient_places) {
      throw std::invalid_argument("LumpedNet::representative: quotient marking size mismatch");
    }
    out.assign(flat_places, 0);
    for (PlaceId p = 0; p < flat_places; ++p) {
      if (!place[p].grouped) out[p] = quotient[place[p].quotient];
    }
    // Canonical representative: replicas take slots in index order — replica
    // 0 gets the lowest occupied slot, and so on.  Any flat member of the
    // class would do for a symmetric reward; this one is deterministic.
    std::vector<TokenCount> remaining;
    for (std::size_t g = 0; g < replicas.size(); ++g) {
      remaining.assign(count_place[g].size(), 0);
      std::size_t total = 0;
      for (std::size_t s = 0; s < count_place[g].size(); ++s) {
        remaining[s] = quotient[count_place[g][s]];
        total += remaining[s];
      }
      if (total != replicas[g].size()) {
        throw std::invalid_argument(
            "LumpedNet::representative: slot counts do not sum to the replica count");
      }
      std::size_t slot = 0;
      for (const std::vector<PlaceId>& replica : replicas[g]) {
        while (remaining[slot] == 0) ++slot;
        out[replica[slot]] = 1;
        --remaining[slot];
      }
    }
  }
};

std::size_t LumpedNet::flat_place_count() const noexcept { return mapping_->flat_places; }

std::size_t LumpedNet::group_count() const noexcept { return mapping_->replicas.size(); }

std::size_t LumpedNet::slot_count(std::size_t group) const {
  return mapping_->count_place.at(group).size();
}

PlaceId LumpedNet::count_place(std::size_t group, std::size_t slot) const {
  return mapping_->count_place.at(group).at(slot);
}

PlaceId LumpedNet::passthrough_place(PlaceId flat_place) const {
  if (flat_place >= mapping_->flat_places) {
    throw std::out_of_range("LumpedNet::passthrough_place: invalid place id");
  }
  const auto& info = mapping_->place[flat_place];
  if (info.grouped) {
    throw std::invalid_argument("LumpedNet::passthrough_place: place " +
                                std::to_string(flat_place) +
                                " is grouped; use count_place(group, slot)");
  }
  return info.quotient;
}

Marking LumpedNet::project(const Marking& flat) const {
  Marking out;
  mapping_->project_into(flat, out);
  return out;
}

Marking LumpedNet::representative(const Marking& quotient) const {
  Marking out;
  mapping_->reconstruct_into(quotient, out);
  return out;
}

RewardFunction LumpedNet::lift_reward(RewardFunction flat_reward) const {
  if (!flat_reward) throw std::invalid_argument("LumpedNet::lift_reward: null reward");
  return [mapping = mapping_, reward = std::move(flat_reward)](const Marking& quotient) {
    thread_local Marking scratch;
    mapping->reconstruct_into(quotient, scratch);
    return reward(scratch);
  };
}

// ---------------------------------------------------------------------------
// lump_model
// ---------------------------------------------------------------------------

LumpedNet lump_model(const SrnModel& flat, const SymmetrySpec& spec) {
  auto mapping = std::make_shared<LumpedNet::Mapping>();
  mapping->flat_places = flat.place_count();
  mapping->place.assign(flat.place_count(), {});

  // Validate the group annotation: non-empty, slot-aligned, disjoint.
  for (std::size_t g = 0; g < spec.groups.size(); ++g) {
    const ReplicaGroup& group = spec.groups[g];
    if (group.replicas.empty()) {
      throw std::invalid_argument("lump_model: group " + std::to_string(g) + " has no replicas");
    }
    const std::size_t slots = group.replicas.front().size();
    if (slots == 0) {
      throw std::invalid_argument("lump_model: group " + std::to_string(g) + " has no slots");
    }
    for (std::size_t r = 0; r < group.replicas.size(); ++r) {
      const std::vector<PlaceId>& replica = group.replicas[r];
      if (replica.size() != slots) {
        throw std::invalid_argument("lump_model: replicas of group " + std::to_string(g) +
                                    " are not slot-aligned");
      }
      for (std::size_t s = 0; s < slots; ++s) {
        const PlaceId p = replica[s];
        if (p >= flat.place_count()) {
          throw std::invalid_argument("lump_model: invalid place id in group " +
                                      std::to_string(g));
        }
        if (mapping->place[p].grouped) {
          throw std::invalid_argument("lump_model: place " + flat.place_name(p) +
                                      " appears in more than one replica tuple");
        }
        mapping->place[p] = {true, g, r, s, 0};
      }
    }
    mapping->replicas.push_back(group.replicas);
  }

  // Single-token invariant: the count vector determines the replica-state
  // histogram only because each replica is a one-token state machine.
  const Marking initial = flat.initial_marking();
  for (std::size_t g = 0; g < spec.groups.size(); ++g) {
    for (const std::vector<PlaceId>& replica : spec.groups[g].replicas) {
      TokenCount total = 0;
      for (const PlaceId p : replica) total += initial[p];
      if (total != 1) {
        throw std::invalid_argument("lump_model: every replica of group " + std::to_string(g) +
                                    " must hold exactly one initial token");
      }
    }
  }

  // Quotient places: passthrough places keep their name and initial tokens;
  // each (group, slot) becomes one count place initialized to the number of
  // replicas starting in that slot.
  auto qmodel = std::make_shared<SrnModel>();
  for (PlaceId p = 0; p < flat.place_count(); ++p) {
    if (!mapping->place[p].grouped) {
      mapping->place[p].quotient = qmodel->add_place(flat.place_name(p), initial[p]);
    }
  }
  mapping->count_place.resize(spec.groups.size());
  for (std::size_t g = 0; g < spec.groups.size(); ++g) {
    const auto& replicas = spec.groups[g].replicas;
    mapping->count_place[g].resize(replicas.front().size());
    for (std::size_t s = 0; s < replicas.front().size(); ++s) {
      TokenCount count = 0;
      for (const std::vector<PlaceId>& replica : replicas) count += initial[replica[s]];
      mapping->count_place[g][s] = qmodel->add_place("#" + flat.place_name(replicas.front()[s]),
                                                     count);
    }
  }
  mapping->quotient_places = qmodel->place_count();

  // Classify transitions: an orbit per (group, slot pair, rate, shared-arc
  // signature) for replica transitions, passthrough for the rest.
  struct Orbit {
    std::size_t group = 0;
    std::size_t slot_in = 0;
    std::size_t slot_out = 0;
    double rate = 0.0;
    std::vector<Arc> shared_inputs;
    std::vector<Arc> shared_outputs;
    std::vector<Arc> shared_inhibitors;
    std::vector<std::size_t> members_per_replica;
    std::string first_name;
  };
  std::vector<Orbit> orbits;
  std::unordered_map<std::string, std::size_t> orbit_index;
  std::vector<TransitionId> passthrough;

  for (TransitionId t = 0; t < flat.transition_count(); ++t) {
    struct GroupedArc {
      std::size_t group, replica, slot;
      TokenCount multiplicity;
    };
    std::vector<GroupedArc> grouped_in, grouped_out;
    std::vector<Arc> shared_in, shared_out, shared_inh;
    for (const Arc& a : flat.input_arcs(t)) {
      const auto& info = mapping->place[a.place];
      if (info.grouped) {
        grouped_in.push_back({info.group, info.replica, info.slot, a.multiplicity});
      } else {
        shared_in.push_back(a);
      }
    }
    for (const Arc& a : flat.output_arcs(t)) {
      const auto& info = mapping->place[a.place];
      if (info.grouped) {
        grouped_out.push_back({info.group, info.replica, info.slot, a.multiplicity});
      } else {
        shared_out.push_back(a);
      }
    }
    for (const Arc& a : flat.inhibitor_arcs(t)) {
      if (mapping->place[a.place].grouped) {
        throw std::invalid_argument("lump_model: transition " + flat.transition_name(t) +
                                    " has an inhibitor arc on a grouped place");
      }
      shared_inh.push_back(a);
    }

    if (grouped_in.empty() && grouped_out.empty()) {
      passthrough.push_back(t);
      continue;
    }

    // Replica transition.  The exactness conditions: constant rate (so the
    // class rate is rate * count), one token moved between two slots of one
    // replica (so counts evolve as a lossless shift), no guard (guards could
    // distinguish replicas).
    const std::string& name = flat.transition_name(t);
    if (flat.transition_kind(t) != TransitionKind::kTimed) {
      throw std::invalid_argument("lump_model: immediate transition " + name +
                                  " touches a grouped place");
    }
    if (flat.has_guard(t)) {
      throw std::invalid_argument("lump_model: replica transition " + name + " has a guard");
    }
    const std::optional<double> rate = flat.constant_rate(t);
    if (!rate) {
      throw std::invalid_argument("lump_model: replica transition " + name +
                                  " has a marking-dependent rate");
    }
    if (grouped_in.size() != 1 || grouped_in.front().multiplicity != 1 ||
        grouped_out.size() != 1 || grouped_out.front().multiplicity != 1) {
      throw std::invalid_argument("lump_model: replica transition " + name +
                                  " must move exactly one token between two grouped places");
    }
    if (grouped_in.front().group != grouped_out.front().group ||
        grouped_in.front().replica != grouped_out.front().replica) {
      throw std::invalid_argument("lump_model: replica transition " + name +
                                  " spans replicas or groups");
    }

    std::string key;
    append_u64(key, grouped_in.front().group);
    append_u64(key, grouped_in.front().slot);
    append_u64(key, grouped_out.front().slot);
    append_u64(key, rate_bits(*rate));
    append_arcs(key, shared_in);
    append_arcs(key, shared_out);
    append_arcs(key, shared_inh);

    auto [it, inserted] = orbit_index.try_emplace(key, orbits.size());
    if (inserted) {
      Orbit orbit;
      orbit.group = grouped_in.front().group;
      orbit.slot_in = grouped_in.front().slot;
      orbit.slot_out = grouped_out.front().slot;
      orbit.rate = *rate;
      orbit.shared_inputs = std::move(shared_in);
      orbit.shared_outputs = std::move(shared_out);
      orbit.shared_inhibitors = std::move(shared_inh);
      orbit.members_per_replica.assign(spec.groups[orbit.group].replicas.size(), 0);
      orbit.first_name = name;
      orbits.push_back(std::move(orbit));
    }
    ++orbits[it->second].members_per_replica[grouped_in.front().replica];
  }

  // Passthrough transitions survive unchanged; marking-dependent rates and
  // guards are evaluated at the canonical representative (exact when they do
  // not distinguish replicas — the annotation contract).
  for (const TransitionId t : passthrough) {
    const std::string& name = flat.transition_name(t);
    TransitionId qt = 0;
    if (flat.transition_kind(t) == TransitionKind::kImmediate) {
      qt = qmodel->add_immediate_transition(name, flat.weight(t), flat.priority(t));
    } else if (const std::optional<double> rate = flat.constant_rate(t)) {
      qt = qmodel->add_timed_transition(name, *rate);
    } else {
      qt = qmodel->add_timed_transition(
          name, [mapping, rate = flat.rate_function(t)](const Marking& quotient) {
            thread_local Marking scratch;
            mapping->reconstruct_into(quotient, scratch);
            return rate(scratch);
          });
    }
    for (const Arc& a : flat.input_arcs(t)) {
      qmodel->add_input_arc(qt, mapping->place[a.place].quotient, a.multiplicity);
    }
    for (const Arc& a : flat.output_arcs(t)) {
      qmodel->add_output_arc(qt, mapping->place[a.place].quotient, a.multiplicity);
    }
    for (const Arc& a : flat.inhibitor_arcs(t)) {
      qmodel->add_inhibitor_arc(qt, mapping->place[a.place].quotient, a.multiplicity);
    }
    if (flat.has_guard(t)) {
      qmodel->set_guard(qt, [mapping, guard = flat.guard(t)](const Marking& quotient) {
        thread_local Marking scratch;
        mapping->reconstruct_into(quotient, scratch);
        return guard(scratch);
      });
    }
  }

  // One quotient transition per complete orbit, with the multiplicity-
  // weighted rate  rate * #{replicas in slot_in}  (times the per-replica
  // member count when a replica carries parallel copies).
  for (const Orbit& orbit : orbits) {
    const std::size_t members = orbit.members_per_replica.front();
    for (std::size_t r = 0; r < orbit.members_per_replica.size(); ++r) {
      if (orbit.members_per_replica[r] != members || members == 0) {
        throw std::invalid_argument(
            "lump_model: asymmetric orbit — transition " + orbit.first_name +
            " has no identically-shaped counterpart in replica " + std::to_string(r));
      }
    }
    const std::size_t replica_count = spec.groups[orbit.group].replicas.size();
    const PlaceId source = mapping->count_place[orbit.group][orbit.slot_in];
    const double unit_rate = orbit.rate * static_cast<double>(members);
    const TransitionId qt = qmodel->add_timed_transition(
        orbit.first_name + "[x" + std::to_string(replica_count) + "]",
        [unit_rate, source](const Marking& m) {
          return unit_rate * static_cast<double>(m[source]);
        });
    qmodel->add_input_arc(qt, source, 1);
    qmodel->add_output_arc(qt, mapping->count_place[orbit.group][orbit.slot_out], 1);
    for (const Arc& a : orbit.shared_inputs) {
      qmodel->add_input_arc(qt, mapping->place[a.place].quotient, a.multiplicity);
    }
    for (const Arc& a : orbit.shared_outputs) {
      qmodel->add_output_arc(qt, mapping->place[a.place].quotient, a.multiplicity);
    }
    for (const Arc& a : orbit.shared_inhibitors) {
      qmodel->add_inhibitor_arc(qt, mapping->place[a.place].quotient, a.multiplicity);
    }
  }

  LumpedNet net;
  net.model_ = std::move(qmodel);
  net.mapping_ = std::move(mapping);
  return net;
}

// ---------------------------------------------------------------------------
// Component factorization
// ---------------------------------------------------------------------------

std::vector<std::vector<TransitionId>> component_transitions(const SrnModel& model,
                                                             const ComponentSplit& split) {
  constexpr std::size_t kUnassigned = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> owner(model.place_count(), kUnassigned);
  for (std::size_t c = 0; c < split.components.size(); ++c) {
    for (const PlaceId p : split.components[c]) {
      if (p >= model.place_count()) {
        throw std::invalid_argument("component_transitions: invalid place id");
      }
      if (owner[p] != kUnassigned) {
        throw std::invalid_argument("component_transitions: place " + model.place_name(p) +
                                    " appears in more than one component");
      }
      owner[p] = c;
    }
  }
  for (PlaceId p = 0; p < model.place_count(); ++p) {
    if (owner[p] == kUnassigned) {
      throw std::invalid_argument("component_transitions: place " + model.place_name(p) +
                                  " is not covered by the split");
    }
  }

  std::vector<std::vector<TransitionId>> assignment(split.components.size());
  for (TransitionId t = 0; t < model.transition_count(); ++t) {
    if (model.transition_kind(t) != TransitionKind::kTimed) {
      throw std::invalid_argument("component_transitions: immediate transition " +
                                  model.transition_name(t) +
                                  " — the product form needs a fully timed net");
    }
    std::size_t component = kUnassigned;
    const auto claim = [&](const std::vector<Arc>& arcs) {
      for (const Arc& a : arcs) {
        if (component == kUnassigned) {
          component = owner[a.place];
        } else if (component != owner[a.place]) {
          throw std::invalid_argument("component_transitions: transition " +
                                      model.transition_name(t) + " spans components");
        }
      }
    };
    claim(model.input_arcs(t));
    claim(model.output_arcs(t));
    claim(model.inhibitor_arcs(t));
    if (component == kUnassigned) {
      throw std::invalid_argument("component_transitions: transition " +
                                  model.transition_name(t) + " touches no place");
    }
    assignment[component].push_back(t);
  }
  return assignment;
}

ReachabilityGraph build_component_reachability(const SrnModel& model,
                                               const std::vector<TransitionId>& transitions,
                                               const Marking& start,
                                               const ReachabilityOptions& options) {
  if (start.size() != model.place_count()) {
    throw std::invalid_argument("build_component_reachability: start marking size mismatch");
  }
  ReachabilityGraph graph;
  std::unordered_map<Marking, std::size_t, MarkingHash> index;
  graph.tangible_markings.push_back(start);
  index.emplace(start, 0);
  graph.chain.add_state();

  Marking next;
  Marking current;
  for (std::size_t i = 0; i < graph.tangible_markings.size(); ++i) {
    // Copy: the successor pushes below may reallocate tangible_markings.
    current = graph.tangible_markings[i];
    for (const TransitionId t : transitions) {
      if (!model.is_enabled(t, current)) continue;
      const double rate = model.rate(t, current);
      model.fire_into(t, current, next);
      if (next == current) continue;  // tangible self-loop: no CTMC effect
      auto [it, inserted] = index.try_emplace(next, graph.tangible_markings.size());
      if (inserted) {
        if (graph.tangible_markings.size() >= options.max_tangible_markings) {
          throw std::runtime_error(
              "build_component_reachability: tangible state space exceeds limit");
        }
        graph.tangible_markings.push_back(next);
        graph.chain.add_state();
      }
      graph.chain.add_transition(i, it->second, rate);
    }
  }
  graph.initial_distribution.assign(graph.tangible_markings.size(), 0.0);
  graph.initial_distribution[0] = 1.0;
  return graph;
}

namespace {

/// 16-point Gauss-Legendre nodes/weights on [-1, 1] (Newton iteration on the
/// Legendre recurrence; computed once).
constexpr int kQuadOrder = 16;

const std::pair<std::vector<double>, std::vector<double>>& gauss_legendre_16() {
  static const auto rule = [] {
    std::vector<double> x(kQuadOrder), w(kQuadOrder);
    const double pi = std::acos(-1.0);
    for (int i = 0; i < (kQuadOrder + 1) / 2; ++i) {
      double z = std::cos(pi * (i + 0.75) / (kQuadOrder + 0.5));
      double pp = 0.0;
      for (int iter = 0; iter < 64; ++iter) {
        double p1 = 1.0, p2 = 0.0;
        for (int j = 0; j < kQuadOrder; ++j) {
          const double p3 = p2;
          p2 = p1;
          p1 = ((2.0 * j + 1.0) * z * p2 - j * p3) / (j + 1.0);
        }
        pp = kQuadOrder * (z * p1 - p2) / (z * z - 1.0);
        const double z1 = z;
        z = z1 - p1 / pp;
        if (std::abs(z - z1) < 1e-15) break;
      }
      x[i] = -z;
      x[kQuadOrder - 1 - i] = z;
      w[i] = 2.0 / ((1.0 - z * z) * pp * pp);
      w[kQuadOrder - 1 - i] = w[i];
    }
    return std::make_pair(std::move(x), std::move(w));
  }();
  return rule;
}

double max_exit_rate(const ctmc::Ctmc& chain) {
  std::vector<double> exit(chain.state_count(), 0.0);
  for (const ctmc::RateTransition& t : chain.transitions()) exit[t.from] += t.rate;
  double best = 0.0;
  for (const double e : exit) best = std::max(best, e);
  return best;
}

}  // namespace

FactoredAnalyzer::FactoredAnalyzer(const SrnModel& model, const ComponentSplit& split,
                                   const AnalyzerOptions& options)
    : FactoredAnalyzer(model, split, options, model.initial_marking()) {}

FactoredAnalyzer::FactoredAnalyzer(const SrnModel& model, const ComponentSplit& split,
                                   const AnalyzerOptions& options, const Marking& start)
    : model_(&model), start_(start) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<std::vector<TransitionId>> assignment = component_transitions(model, split);

  diagnostics_.converged = true;
  diagnostics_.flat_states = 1;
  for (std::size_t c = 0; c < assignment.size(); ++c) {
    graphs_.push_back(
        build_component_reachability(model, assignment[c], start, options.reachability));
    const ReachabilityGraph& graph = graphs_.back();
    linalg::SteadyStateResult result = graph.chain.steady_state(options.steady_state);
    diagnostics_.tangible_states += graph.tangible_count();
    diagnostics_.transitions += graph.chain.transitions().size();
    diagnostics_.solver_iterations += result.iterations;
    diagnostics_.residual = std::max(diagnostics_.residual, result.residual);
    diagnostics_.converged = diagnostics_.converged && result.converged;
    if (diagnostics_.flat_states > std::numeric_limits<std::size_t>::max() / graph.tangible_count()) {
      diagnostics_.flat_states = std::numeric_limits<std::size_t>::max();
    } else {
      diagnostics_.flat_states *= graph.tangible_count();
    }
    steady_.push_back(std::move(result.distribution));
  }
  diagnostics_.wall_time_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  if (options.throw_on_divergence && diagnostics_.badly_diverged()) {
    throw std::runtime_error("FactoredAnalyzer: steady-state solve diverged (residual " +
                             std::to_string(diagnostics_.residual) + ")");
  }
}

void FactoredAnalyzer::check_reward(const SeparableReward& reward) const {
  for (const SeparableReward::Term& term : reward.terms) {
    if (term.factors.size() != component_count()) {
      throw std::invalid_argument(
          "FactoredAnalyzer: separable-reward term must carry one factor per component");
    }
  }
}

double FactoredAnalyzer::expected_reward(const SeparableReward& reward) const {
  check_reward(reward);
  double total = 0.0;
  for (const SeparableReward::Term& term : reward.terms) {
    double product = term.coefficient;
    for (std::size_t c = 0; c < component_count() && product != 0.0; ++c) {
      const RewardFunction& factor = term.factors[c];
      if (!factor) continue;  // empty factor == constant 1
      double expectation = 0.0;
      for (std::size_t i = 0; i < graphs_[c].tangible_count(); ++i) {
        expectation += steady_[c][i] * factor(graphs_[c].tangible_markings[i]);
      }
      product *= expectation;
    }
    total += product;
  }
  return total;
}

double FactoredAnalyzer::reward_curve(const SeparableReward& reward,
                                      const std::vector<double>& grid,
                                      std::vector<double>& values,
                                      const ctmc::TransientOptions& options,
                                      ctmc::TransientDiagnostics* transient) const {
  check_reward(reward);
  if (grid.empty()) throw std::invalid_argument("FactoredAnalyzer::reward_curve: empty grid");
  for (std::size_t j = 0; j < grid.size(); ++j) {
    if (!(grid[j] >= 0.0) || (j > 0 && grid[j] < grid[j - 1])) {
      throw std::invalid_argument(
          "FactoredAnalyzer::reward_curve: grid must be ascending and non-negative");
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t components = component_count();

  // Per-(term, component) reward vectors on the component state spaces.
  std::vector<std::vector<std::vector<double>>> factor_values(reward.terms.size());
  for (std::size_t t = 0; t < reward.terms.size(); ++t) {
    factor_values[t].resize(components);
    for (std::size_t c = 0; c < components; ++c) {
      const RewardFunction& factor = reward.terms[t].factors[c];
      if (!factor) continue;
      auto& fv = factor_values[t][c];
      fv.resize(graphs_[c].tangible_count());
      for (std::size_t i = 0; i < fv.size(); ++i) fv[i] = factor(graphs_[c].tangible_markings[i]);
    }
  }

  // Quadrature timeline: composite Gauss-Legendre panels between consecutive
  // grid boundaries (plus [0, grid[0]]), with the panel count tied to the
  // summed uniformization rates so the product curve — whose p-th derivative
  // is bounded by (sum_c 2 Lambda_c)^p — is resolved far below the
  // uniformization truncation error (Lambda_eff * h <= 8 per 16-node panel
  // gives ~1e-16 relative panel error).
  double rate_scale = 0.0;
  for (const ReachabilityGraph& graph : graphs_) rate_scale += 2.0 * max_exit_rate(graph.chain);

  struct Event {
    double time;
    double weight;     // quadrature weight; 0 for pure grid points
    std::size_t grid;  // index into `values`, or npos
  };
  constexpr std::size_t kNoGrid = std::numeric_limits<std::size_t>::max();
  const auto& [nodes, weights] = gauss_legendre_16();
  std::vector<Event> events;
  double prev = 0.0;
  for (std::size_t j = 0; j < grid.size(); ++j) {
    const double length = grid[j] - prev;
    if (length > 0.0) {
      const std::size_t panels = std::min<std::size_t>(
          1024, std::max<std::size_t>(
                    1, static_cast<std::size_t>(std::ceil(rate_scale * length / 8.0))));
      const double h = length / static_cast<double>(panels);
      for (std::size_t panel = 0; panel < panels; ++panel) {
        const double a = prev + h * static_cast<double>(panel);
        const double mid = a + 0.5 * h;
        for (int k = 0; k < kQuadOrder; ++k) {
          events.push_back({mid + 0.5 * h * nodes[k], 0.5 * h * weights[k], kNoGrid});
        }
      }
    }
    events.push_back({grid[j], 0.0, j});
    prev = grid[j];
  }

  // Advance every component in lockstep through the merged timeline.  The
  // per-step truncation budget is divided across steps so the accumulated
  // stepping error stays below the caller's epsilon.
  ctmc::TransientOptions step_options = options;
  step_options.epsilon =
      std::max(1e-16, options.epsilon / static_cast<double>(std::max<std::size_t>(1, events.size())));
  std::vector<ctmc::TransientSolver> solvers;
  solvers.reserve(components);
  std::vector<std::vector<double>> current(components), advanced(components);
  for (std::size_t c = 0; c < components; ++c) {
    solvers.emplace_back(step_options);
    solvers.back().prepare(graphs_[c].chain);
    current[c] = graphs_[c].initial_distribution;
  }

  values.assign(grid.size(), 0.0);
  double accumulated = 0.0;
  double now = 0.0;
  for (const Event& event : events) {
    const double dt = event.time - now;
    if (dt > 0.0) {
      for (std::size_t c = 0; c < components; ++c) {
        solvers[c].distribution_at(current[c], dt, advanced[c]);
        current[c].swap(advanced[c]);
      }
      now = event.time;
    }
    double r = 0.0;
    for (std::size_t t = 0; t < reward.terms.size(); ++t) {
      double product = reward.terms[t].coefficient;
      for (std::size_t c = 0; c < components && product != 0.0; ++c) {
        const auto& fv = factor_values[t][c];
        if (fv.empty()) continue;
        double expectation = 0.0;
        for (std::size_t i = 0; i < fv.size(); ++i) expectation += current[c][i] * fv[i];
        product *= expectation;
      }
      r += product;
    }
    if (event.grid != kNoGrid) {
      values[event.grid] = r;
    } else {
      accumulated += event.weight * r;
    }
  }

  if (transient != nullptr) {
    *transient = {};
    for (std::size_t c = 0; c < components; ++c) {
      const ctmc::TransientDiagnostics& d = solvers[c].diagnostics();
      transient->uniformization_rate = std::max(transient->uniformization_rate,
                                                d.uniformization_rate);
      transient->right_point = std::max(transient->right_point, d.right_point);
      transient->matvec_count += d.matvec_count;
      transient->poisson_mass = c == 0 ? d.poisson_mass
                                       : std::min(transient->poisson_mass, d.poisson_mass);
      transient->rhs_count = std::max(transient->rhs_count, d.rhs_count);
      // The component solvers share one dispatch decision; report any one.
      if (transient->kernel.empty()) transient->kernel = d.kernel;
    }
    transient->wall_time_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  }
  return accumulated;
}

}  // namespace patchsec::petri
