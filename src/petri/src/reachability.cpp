#include "patchsec/petri/reachability.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <utility>

#include "patchsec/linalg/stationary_solver.hpp"
#include "patchsec/petri/compiled_net.hpp"

namespace patchsec::petri {

namespace {

// ---------------------------------------------------------------------------
// Explorer: owns every buffer the exploration loop touches, so expanding a
// marking performs no allocation once the pools are warm.  Vanishing-marking
// elimination runs on an explicit stack (pooled entries) instead of
// recursion, and successor distributions accumulate into a pooled flat list
// (the per-firing fan-out is tiny, so a linear membership scan beats a hash
// map rebuilt per firing).
// ---------------------------------------------------------------------------

class Explorer {
 public:
  Explorer(const SrnModel& model, const ReachabilityOptions& options)
      : net_(model), options_(options) {}

  struct Successor {
    Marking marking;
    double probability = 0.0;
  };

  [[nodiscard]] const CompiledNet& net() const noexcept { return net_; }

  /// Resolve `start` (possibly vanishing) into a distribution over tangible
  /// markings; results are in successors()[0..successor_count()).
  void resolve_vanishing(const Marking& start, std::size_t& vanishing_seen) {
    succ_count_ = 0;
    stack_count_ = 0;
    push_entry(start, 1.0, 0);
    drain(vanishing_seen);
  }

  /// Resolve the firing of `t` in tangible marking `m` (skips the stack when
  /// the net has no immediate transitions at all — the common upper-layer
  /// case — and fires straight into the successor pool).
  void resolve_firing(const CompiledTransition& t, const Marking& m,
                      std::size_t& vanishing_seen) {
    succ_count_ = 0;
    if (!net_.has_immediates()) {
      Successor& s = acquire_successor();
      net_.fire_into(t, m, s.marking);
      s.probability = 1.0;
      return;
    }
    stack_count_ = 0;
    StackEntry& e = acquire_entry();
    net_.fire_into(t, m, e.marking);
    e.probability = 1.0;
    e.depth = 0;
    drain(vanishing_seen);
  }

  [[nodiscard]] const Successor* successors() const noexcept { return succ_.data(); }
  [[nodiscard]] std::size_t successor_count() const noexcept { return succ_count_; }

  std::vector<const CompiledTransition*> timed_scratch;

 private:
  struct StackEntry {
    Marking marking;
    double probability = 0.0;
    std::size_t depth = 0;
  };

  StackEntry& acquire_entry() {
    if (stack_count_ == stack_.size()) stack_.emplace_back();
    return stack_[stack_count_++];
  }

  void push_entry(const Marking& m, double probability, std::size_t depth) {
    StackEntry& e = acquire_entry();
    e.marking = m;
    e.probability = probability;
    e.depth = depth;
  }

  Successor& acquire_successor() {
    if (succ_count_ == succ_.size()) succ_.emplace_back();
    return succ_[succ_count_++];
  }

  void accumulate(const Marking& m, double probability) {
    for (std::size_t i = 0; i < succ_count_; ++i) {
      if (succ_[i].marking == m) {
        succ_[i].probability += probability;
        return;
      }
    }
    Successor& s = acquire_successor();
    s.marking = m;
    s.probability = probability;
  }

  void drain(std::size_t& vanishing_seen) {
    while (stack_count_ > 0) {
      // Swap the popped marking into the cursor buffer so the slot (and its
      // heap storage) is immediately reusable for pushed children.
      StackEntry& top = stack_[--stack_count_];
      cursor_.swap(top.marking);
      const double probability = top.probability;
      const std::size_t depth = top.depth;
      if (depth > options_.max_vanishing_depth) {
        throw std::runtime_error("SRN contains a vanishing loop (immediate-transition cycle)");
      }
      net_.enabled_immediates_into(cursor_, immediate_scratch_);
      if (immediate_scratch_.empty()) {
        accumulate(cursor_, probability);
        continue;
      }
      ++vanishing_seen;
      double total_weight = 0.0;
      for (const CompiledTransition* t : immediate_scratch_) total_weight += t->weight;
      for (const CompiledTransition* t : immediate_scratch_) {
        StackEntry& child = acquire_entry();
        net_.fire_into(*t, cursor_, child.marking);
        child.probability = probability * (t->weight / total_weight);
        child.depth = depth + 1;
      }
    }
  }

  CompiledNet net_;
  const ReachabilityOptions& options_;

  std::vector<StackEntry> stack_;
  std::size_t stack_count_ = 0;
  std::vector<Successor> succ_;
  std::size_t succ_count_ = 0;
  std::vector<const CompiledTransition*> immediate_scratch_;
  Marking cursor_;
};

// ---------------------------------------------------------------------------
// MarkingInterner: marking -> state-id map for the exploration loop.  When
// every place's token count fits `64 / place_count` bits the marking packs
// into one u64 and lookups go through an open-addressing table (splitmix64
// hash, linear probing) — far cheaper than hashing and comparing Marking
// vectors ~nnz times.  If a token ever outgrows the packing (or there are
// too many places), the interner permanently reports kNotPacked and
// build_reachability_graph falls back to a general unordered_map it
// materializes on demand from the markings discovered so far.
// ---------------------------------------------------------------------------

class MarkingInterner {
 public:
  MarkingInterner(std::size_t place_count, std::size_t reserve) {
    bits_ = place_count == 0 ? 0 : 64 / place_count;
    if (bits_ > 32) bits_ = 32;  // TokenCount is 32-bit; also keeps shifts defined
    packable_ = bits_ >= 2;     // need headroom; nets with > 32 places fall back
    if (packable_) {
      limit_ = bits_ == 32 ? std::numeric_limits<TokenCount>::max()
                           : static_cast<TokenCount>((std::uint64_t{1} << bits_) - 1);
      std::size_t capacity = 64;
      while (capacity < reserve * 2) capacity <<= 1;
      keys_.assign(capacity, 0);
      ids_.assign(capacity, 0);  // id + 1; 0 marks an empty slot
    }
  }

  /// Returns the existing id of `m`, kMissing when absent (the caller
  /// interns it and calls insert()), or kNotPacked when the caller must use
  /// its fallback map.
  [[nodiscard]] std::size_t find(const Marking& m) {
    if (!packable_) return kNotPacked;
    std::uint64_t key;
    if (!pack(m, key)) {
      packable_ = false;  // permanent fallback; the caller's map takes over
      return kNotPacked;
    }
    std::size_t slot = probe_start(key);
    while (ids_[slot] != 0) {
      if (keys_[slot] == key) return ids_[slot] - 1;
      slot = (slot + 1) & (keys_.size() - 1);
    }
    return kMissing;
  }

  void insert(const Marking& m, std::size_t id) {
    if (!packable_) return;
    if (id >= std::numeric_limits<std::uint32_t>::max()) {
      packable_ = false;  // id would not fit the table's u32 payload
      return;
    }
    std::uint64_t key;
    if (!pack(m, key)) {
      packable_ = false;
      return;
    }
    if ((count_ + 1) * 2 > keys_.size()) grow();
    place(key, static_cast<std::uint32_t>(id + 1));
    ++count_;
  }

  /// find() result meaning "not in the table, must be interned".
  static constexpr std::size_t kMissing = std::numeric_limits<std::size_t>::max();
  /// find() result meaning "use the caller's fallback map".
  static constexpr std::size_t kNotPacked = std::numeric_limits<std::size_t>::max() - 1;

 private:
  [[nodiscard]] bool pack(const Marking& m, std::uint64_t& key) const {
    std::uint64_t k = 0;
    for (TokenCount t : m) {
      if (t > limit_) return false;
      k = (k << bits_) | t;
    }
    key = k;
    return true;
  }

  [[nodiscard]] std::size_t probe_start(std::uint64_t key) const {
    // splitmix64 finalizer.
    std::uint64_t h = key + 0x9e3779b97f4a7c15ull;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    h ^= h >> 31;
    return static_cast<std::size_t>(h) & (keys_.size() - 1);
  }

  void place(std::uint64_t key, std::uint32_t id_plus_one) {
    std::size_t slot = probe_start(key);
    while (ids_[slot] != 0) slot = (slot + 1) & (keys_.size() - 1);
    keys_[slot] = key;
    ids_[slot] = id_plus_one;
  }

  void grow() {
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<std::uint32_t> old_ids = std::move(ids_);
    keys_.assign(old_keys.size() * 2, 0);
    ids_.assign(old_ids.size() * 2, 0);
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_ids[i] != 0) place(old_keys[i], old_ids[i]);
    }
  }

  bool packable_ = false;
  std::size_t bits_ = 0;
  TokenCount limit_ = 0;
  std::size_t count_ = 0;
  std::vector<std::uint64_t> keys_;
  std::vector<std::uint32_t> ids_;
};

}  // namespace

std::size_t ReachabilityGraph::index_of(const Marking& m) const {
  if (index_.empty() && !tangible_markings.empty()) {
    index_.reserve(tangible_markings.size());
    for (std::size_t i = 0; i < tangible_markings.size(); ++i) {
      index_.emplace(tangible_markings[i], i);
    }
  }
  const auto it = index_.find(m);
  if (it == index_.end()) throw std::out_of_range("unknown tangible marking " + to_string(m));
  return it->second;
}

ReachabilityGraph build_reachability_graph(const SrnModel& model,
                                           const ReachabilityOptions& options) {
  ReachabilityGraph graph;
  const std::size_t reserve =
      std::min(options.max_tangible_markings,
               options.reserve_markings != 0 ? options.reserve_markings : std::size_t{1024});
  graph.tangible_markings.reserve(reserve);

  // Fast path: the packed-u64 interner.  The general unordered_map is only
  // materialized (from the markings discovered so far) if the net stops
  // being packable — most models never allocate it.
  MarkingInterner interner(model.place_count(), reserve);
  std::unordered_map<Marking, std::size_t, MarkingHash> slow_index;
  bool slow_ready = false;
  const auto ensure_slow_index = [&] {
    if (slow_ready) return;
    slow_index.reserve(std::max(reserve, graph.tangible_markings.size()));
    for (std::size_t i = 0; i < graph.tangible_markings.size(); ++i) {
      slow_index.emplace(graph.tangible_markings[i], i);
    }
    slow_ready = true;
  };
  const auto intern = [&](const Marking& m) -> std::size_t {
    const std::size_t fast = interner.find(m);
    if (fast < MarkingInterner::kNotPacked) return fast;
    if (fast == MarkingInterner::kNotPacked) {
      ensure_slow_index();
      const auto it = slow_index.find(m);
      if (it != slow_index.end()) return it->second;
    }
    if (graph.tangible_markings.size() >= options.max_tangible_markings) {
      throw std::runtime_error("tangible state space exceeds configured bound");
    }
    const std::size_t id = graph.tangible_markings.size();
    graph.tangible_markings.push_back(m);
    interner.insert(m, id);
    if (slow_ready) slow_index.emplace(m, id);
    return id;
  };

  Explorer explorer(model, options);

  // Resolve the initial marking (it may be vanishing).
  explorer.resolve_vanishing(model.initial_marking(), graph.vanishing_markings_seen);
  std::vector<std::pair<std::size_t, double>> initial;
  initial.reserve(explorer.successor_count());
  for (std::size_t i = 0; i < explorer.successor_count(); ++i) {
    initial.emplace_back(intern(explorer.successors()[i].marking),
                         explorer.successors()[i].probability);
  }

  // BFS frontier as an index queue.  Markings are interned (and so queued)
  // in discovery order, which makes expansion order identical to state-id
  // order: per-state edge rows can therefore accumulate into flat CSR-style
  // arrays, merged in place, with no (from -> to -> rate) hash maps.
  std::vector<std::size_t> frontier;
  frontier.reserve(reserve);
  for (const auto& [id, p] : initial) frontier.push_back(id);
  std::size_t frontier_head = 0;

  std::vector<std::size_t> edge_row_offsets{0};
  edge_row_offsets.reserve(reserve + 1);
  std::vector<std::size_t> edge_to;
  std::vector<double> edge_rate;

  std::vector<bool> expanded;
  expanded.reserve(reserve);
  Marking current;
  while (frontier_head < frontier.size()) {
    const std::size_t from = frontier[frontier_head++];
    if (from < expanded.size() && expanded[from]) continue;
    expanded.resize(graph.tangible_markings.size(), false);
    expanded[from] = true;

    const std::size_t row_begin = edge_to.size();
    current = graph.tangible_markings[from];  // copy: the vector may grow
    explorer.net().enabled_timed_into(current, explorer.timed_scratch);
    for (const CompiledTransition* t : explorer.timed_scratch) {
      const double r = explorer.net().checked_rate(*t, current);
      explorer.resolve_firing(*t, current, graph.vanishing_markings_seen);
      for (std::size_t i = 0; i < explorer.successor_count(); ++i) {
        const Explorer::Successor& succ = explorer.successors()[i];
        const std::size_t to = intern(succ.marking);
        if (to >= expanded.size() || !expanded[to]) frontier.push_back(to);
        if (to == from) continue;  // net effect is a self loop: drop
        const double rate = r * succ.probability;
        bool merged = false;
        for (std::size_t k = row_begin; k < edge_to.size(); ++k) {
          if (edge_to[k] == to) {
            edge_rate[k] += rate;
            merged = true;
            break;
          }
        }
        if (!merged) {
          edge_to.push_back(to);
          edge_rate.push_back(rate);
        }
      }
    }
    edge_row_offsets.push_back(edge_to.size());
  }

  graph.chain.reserve(graph.tangible_count(), edge_to.size());
  graph.chain.add_states(graph.tangible_count());
  for (std::size_t from = 0; from + 1 < edge_row_offsets.size(); ++from) {
    for (std::size_t k = edge_row_offsets[from]; k < edge_row_offsets[from + 1]; ++k) {
      graph.chain.add_transition(from, edge_to[k], edge_rate[k]);
    }
  }

  graph.initial_distribution.assign(graph.tangible_count(), 0.0);
  for (const auto& [id, p] : initial) graph.initial_distribution[id] += p;
  return graph;
}

SrnAnalyzer::SrnAnalyzer(const SrnModel& model, const ReachabilityOptions& options)
    : SrnAnalyzer(model, AnalyzerOptions{.reachability = options,
                                         .steady_state = {},
                                         .throw_on_divergence = true}) {}

SrnAnalyzer::SrnAnalyzer(const SrnModel& model, const AnalyzerOptions& options,
                         linalg::StationarySolver* workspace) {
  const auto start = std::chrono::steady_clock::now();
  graph_ = build_reachability_graph(model, options.reachability);
  const linalg::SteadyStateResult ss =
      workspace != nullptr ? graph_.chain.steady_state(*workspace, options.steady_state)
                           : graph_.chain.steady_state(options.steady_state);
  diagnostics_.tangible_states = graph_.tangible_count();
  diagnostics_.vanishing_markings = graph_.vanishing_markings_seen;
  diagnostics_.transitions = graph_.chain.transitions().size();
  diagnostics_.solver_iterations = ss.iterations;
  diagnostics_.residual = ss.residual;
  diagnostics_.converged = ss.converged;
  diagnostics_.wall_time_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  if (options.throw_on_divergence && diagnostics_.badly_diverged()) {
    throw std::runtime_error("SRN steady-state solve failed to converge");
  }
  steady_ = ss.distribution;
}

double SrnAnalyzer::expected_reward(const RewardFunction& reward) const {
  if (!reward) throw std::invalid_argument("expected_reward: null reward");
  double acc = 0.0;
  for (std::size_t i = 0; i < graph_.tangible_count(); ++i) {
    acc += steady_[i] * reward(graph_.tangible_markings[i]);
  }
  return acc;
}

double SrnAnalyzer::probability(const std::function<bool(const Marking&)>& predicate) const {
  if (!predicate) throw std::invalid_argument("probability: null predicate");
  double acc = 0.0;
  for (std::size_t i = 0; i < graph_.tangible_count(); ++i) {
    if (predicate(graph_.tangible_markings[i])) acc += steady_[i];
  }
  return acc;
}

double SrnAnalyzer::mean_tokens(PlaceId place) const {
  double acc = 0.0;
  for (std::size_t i = 0; i < graph_.tangible_count(); ++i) {
    acc += steady_[i] * static_cast<double>(graph_.tangible_markings[i].at(place));
  }
  return acc;
}

}  // namespace patchsec::petri
