#include "patchsec/petri/reachability.hpp"

#include <chrono>
#include <deque>
#include <stdexcept>

namespace patchsec::petri {

namespace {

// Resolve a (possibly vanishing) marking into a probability distribution over
// tangible markings by following immediate firings.  `scale` is the incoming
// probability mass.
void resolve_vanishing(const SrnModel& model, const Marking& m, double scale,
                       std::unordered_map<Marking, double, MarkingHash>& out,
                       std::size_t depth, const ReachabilityOptions& options,
                       std::size_t& vanishing_seen) {
  if (depth > options.max_vanishing_depth) {
    throw std::runtime_error("SRN contains a vanishing loop (immediate-transition cycle)");
  }
  const std::vector<TransitionId> immediates = model.enabled_immediates(m);
  if (immediates.empty()) {
    out[m] += scale;
    return;
  }
  ++vanishing_seen;
  double total_weight = 0.0;
  for (TransitionId t : immediates) total_weight += model.weight(t);
  for (TransitionId t : immediates) {
    const double p = model.weight(t) / total_weight;
    resolve_vanishing(model, model.fire(t, m), scale * p, out, depth + 1, options,
                      vanishing_seen);
  }
}

}  // namespace

std::size_t ReachabilityGraph::index_of(const Marking& m) const {
  const auto it = index.find(m);
  if (it == index.end()) throw std::out_of_range("unknown tangible marking " + to_string(m));
  return it->second;
}

ReachabilityGraph build_reachability_graph(const SrnModel& model,
                                           const ReachabilityOptions& options) {
  ReachabilityGraph graph;

  const auto intern = [&](const Marking& m) -> std::size_t {
    const auto it = graph.index.find(m);
    if (it != graph.index.end()) return it->second;
    if (graph.tangible_markings.size() >= options.max_tangible_markings) {
      throw std::runtime_error("tangible state space exceeds configured bound");
    }
    const std::size_t id = graph.tangible_markings.size();
    graph.tangible_markings.push_back(m);
    graph.index.emplace(m, id);
    return id;
  };

  // Resolve the initial marking (it may be vanishing).
  std::unordered_map<Marking, double, MarkingHash> initial;
  resolve_vanishing(model, model.initial_marking(), 1.0, initial, 0, options,
                    graph.vanishing_markings_seen);

  std::deque<std::size_t> frontier;
  for (const auto& [m, p] : initial) frontier.push_back(intern(m));

  // Edges accumulated as (from, to) -> rate; CTMC construction afterwards so
  // parallel edges merge.
  std::unordered_map<std::size_t, std::unordered_map<std::size_t, double>> edges;

  std::vector<bool> expanded;
  while (!frontier.empty()) {
    const std::size_t from = frontier.front();
    frontier.pop_front();
    if (from < expanded.size() && expanded[from]) continue;
    if (expanded.size() < graph.tangible_markings.size()) {
      expanded.resize(graph.tangible_markings.size(), false);
    }
    if (expanded[from]) continue;
    expanded[from] = true;

    const Marking m = graph.tangible_markings[from];  // copy: vector may grow
    for (TransitionId t : model.enabled_timed(m)) {
      const double r = model.rate(t, m);
      std::unordered_map<Marking, double, MarkingHash> successors;
      resolve_vanishing(model, model.fire(t, m), 1.0, successors, 0, options,
                        graph.vanishing_markings_seen);
      for (const auto& [succ, p] : successors) {
        const std::size_t to = intern(succ);
        if (to >= expanded.size() || !expanded[to]) frontier.push_back(to);
        if (to == from) continue;  // net effect is a self loop: drop
        edges[from][to] += r * p;
      }
    }
  }

  graph.chain.add_states(graph.tangible_count());
  for (const auto& [from, row] : edges) {
    for (const auto& [to, rate] : row) graph.chain.add_transition(from, to, rate);
  }

  graph.initial_distribution.assign(graph.tangible_count(), 0.0);
  for (const auto& [m, p] : initial) graph.initial_distribution[graph.index_of(m)] = p;
  return graph;
}

SrnAnalyzer::SrnAnalyzer(const SrnModel& model, const ReachabilityOptions& options)
    : SrnAnalyzer(model, AnalyzerOptions{.reachability = options,
                                         .steady_state = {},
                                         .throw_on_divergence = true}) {}

SrnAnalyzer::SrnAnalyzer(const SrnModel& model, const AnalyzerOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  graph_ = build_reachability_graph(model, options.reachability);
  const linalg::SteadyStateResult ss = graph_.chain.steady_state(options.steady_state);
  diagnostics_.tangible_states = graph_.tangible_count();
  diagnostics_.vanishing_markings = graph_.vanishing_markings_seen;
  diagnostics_.transitions = graph_.chain.transitions().size();
  diagnostics_.solver_iterations = ss.iterations;
  diagnostics_.residual = ss.residual;
  diagnostics_.converged = ss.converged;
  diagnostics_.wall_time_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  if (options.throw_on_divergence && diagnostics_.badly_diverged()) {
    throw std::runtime_error("SRN steady-state solve failed to converge");
  }
  steady_ = ss.distribution;
}

double SrnAnalyzer::expected_reward(const RewardFunction& reward) const {
  if (!reward) throw std::invalid_argument("expected_reward: null reward");
  double acc = 0.0;
  for (std::size_t i = 0; i < graph_.tangible_count(); ++i) {
    acc += steady_[i] * reward(graph_.tangible_markings[i]);
  }
  return acc;
}

double SrnAnalyzer::probability(const std::function<bool(const Marking&)>& predicate) const {
  if (!predicate) throw std::invalid_argument("probability: null predicate");
  double acc = 0.0;
  for (std::size_t i = 0; i < graph_.tangible_count(); ++i) {
    if (predicate(graph_.tangible_markings[i])) acc += steady_[i];
  }
  return acc;
}

double SrnAnalyzer::mean_tokens(PlaceId place) const {
  double acc = 0.0;
  for (std::size_t i = 0; i < graph_.tangible_count(); ++i) {
    acc += steady_[i] * static_cast<double>(graph_.tangible_markings[i].at(place));
  }
  return acc;
}

}  // namespace patchsec::petri
