#include "patchsec/petri/structural.hpp"

#include <numeric>

namespace patchsec::petri {

StructuralReport analyze_structure(const SrnModel& model, const ReachabilityOptions& options) {
  return analyze_structure(model, build_reachability_graph(model, options), options);
}

StructuralReport analyze_structure(const SrnModel& model, const ReachabilityGraph& graph,
                                   const ReachabilityOptions& options) {
  StructuralReport report;
  report.place_bounds.assign(model.place_count(), 0);

  std::vector<bool> fired(model.transition_count(), false);
  bool first = true;
  TokenCount reference_total = 0;
  for (const Marking& m : graph.tangible_markings) {
    TokenCount total = 0;
    for (PlaceId p = 0; p < model.place_count(); ++p) {
      report.place_bounds[p] = std::max(report.place_bounds[p], m[p]);
      total += m[p];
    }
    report.max_total_tokens = std::max(report.max_total_tokens, total);
    if (first) {
      reference_total = total;
      first = false;
    } else if (total != reference_total) {
      report.conservative = false;
    }
    // Record enabled transitions (timed in tangibles; immediates can only be
    // enabled in vanishing markings, so probe them on successors of firings).
    for (TransitionId t = 0; t < model.transition_count(); ++t) {
      if (model.is_enabled(t, m)) fired[t] = true;
    }
    // Probe vanishing markings reachable by one timed firing for immediates.
    for (TransitionId t : model.enabled_timed(m)) {
      Marking succ = model.fire(t, m);
      for (std::size_t depth = 0; depth < options.max_vanishing_depth; ++depth) {
        const std::vector<TransitionId> immediates = model.enabled_immediates(succ);
        if (immediates.empty()) break;
        for (TransitionId imm : immediates) fired[imm] = true;
        succ = model.fire(immediates.front(), succ);
      }
    }
  }
  for (TransitionId t = 0; t < model.transition_count(); ++t) {
    if (!fired[t]) report.dead_transitions.push_back(t);
  }
  return report;
}

}  // namespace patchsec::petri
