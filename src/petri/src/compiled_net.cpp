#include "patchsec/petri/compiled_net.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace patchsec::petri {

CompiledNet::CompiledNet(const SrnModel& model) : model_(&model) {
  std::vector<std::int64_t> delta_scratch(model.place_count(), 0);
  std::vector<PlaceId> touched;
  for (TransitionId t = 0; t < model.transition_count(); ++t) {
    CompiledTransition ct;
    ct.id = t;
    ct.in_begin = static_cast<std::uint32_t>(arcs_.size());
    for (const Arc& a : model.input_arcs(t)) arcs_.push_back({a.place, a.multiplicity});
    ct.in_end = static_cast<std::uint32_t>(arcs_.size());
    ct.inh_begin = ct.in_end;
    for (const Arc& a : model.inhibitor_arcs(t)) arcs_.push_back({a.place, a.multiplicity});
    ct.inh_end = static_cast<std::uint32_t>(arcs_.size());

    touched.clear();
    for (const Arc& a : model.input_arcs(t)) {
      if (delta_scratch[a.place] == 0) touched.push_back(a.place);
      delta_scratch[a.place] -= static_cast<std::int64_t>(a.multiplicity);
    }
    for (const Arc& a : model.output_arcs(t)) {
      if (delta_scratch[a.place] == 0) touched.push_back(a.place);
      delta_scratch[a.place] += static_cast<std::int64_t>(a.multiplicity);
    }
    ct.delta_begin = static_cast<std::uint32_t>(deltas_.size());
    std::sort(touched.begin(), touched.end());
    for (PlaceId p : touched) {
      if (delta_scratch[p] != 0) deltas_.push_back({p, delta_scratch[p]});
      delta_scratch[p] = 0;
    }
    ct.delta_end = static_cast<std::uint32_t>(deltas_.size());

    if (model.has_guard(t)) ct.guard = &model.guard(t);
    if (model.transition_kind(t) == TransitionKind::kTimed) {
      ct.rate = &model.rate_function(t);
      timed_.push_back(ct);
    } else {
      ct.weight = model.weight(t);
      ct.priority = model.priority(t);
      immediates_.push_back(ct);
    }
  }
  // Highest priority first; stable keeps ascending-id order inside a
  // priority class, matching SrnModel::enabled_immediates.
  std::stable_sort(immediates_.begin(), immediates_.end(),
                   [](const CompiledTransition& a, const CompiledTransition& b) {
                     return a.priority > b.priority;
                   });
}

double CompiledNet::checked_rate(const CompiledTransition& t, const Marking& m) const {
  const double r = (*t.rate)(m);
  if (!(r > 0.0) || !std::isfinite(r)) {
    throw std::domain_error("rate function of " + model_->transition_name(t.id) +
                            " returned non-positive value");
  }
  return r;
}

}  // namespace patchsec::petri
