#include "patchsec/petri/marking.hpp"

#include <sstream>

namespace patchsec::petri {

std::string to_string(const Marking& m) {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (i != 0) out << ' ';
    out << m[i];
  }
  out << ']';
  return out.str();
}

}  // namespace patchsec::petri
