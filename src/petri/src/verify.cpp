#include "patchsec/petri/verify.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace patchsec::petri {

namespace {

using Row = std::vector<long long>;

long long vector_gcd(const Row& a, const Row& b) {
  long long g = 0;
  for (long long v : a) g = std::gcd(g, std::llabs(v));
  for (long long v : b) g = std::gcd(g, std::llabs(v));
  return g;
}

/// One working row of the Farkas elimination: `a` is the running combination
/// of matrix rows (driven to zero column by column) and `y` the combination
/// coefficients — the candidate semiflow.
struct FarkasRow {
  Row a;
  Row y;
};

void normalize(FarkasRow& row) {
  const long long g = vector_gcd(row.a, row.y);
  if (g > 1) {
    for (long long& v : row.a) v /= g;
    for (long long& v : row.y) v /= g;
  }
}

[[nodiscard]] bool support_contains(const Row& outer, const Row& inner) {
  for (std::size_t i = 0; i < inner.size(); ++i) {
    if (inner[i] != 0 && outer[i] == 0) return false;
  }
  return true;
}

/// Drop duplicate rows and rows whose y-support strictly contains another
/// row's y-support (the Martinez-Silva minimality pruning; applied after
/// every elimination step to keep the row set polynomial on practical nets).
void prune_rows(std::vector<FarkasRow>& rows) {
  std::vector<bool> drop(rows.size(), false);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (drop[i]) continue;
    for (std::size_t j = 0; j < rows.size(); ++j) {
      if (i == j || drop[j]) continue;
      if (!support_contains(rows[i].y, rows[j].y)) continue;
      // support(y_i) >= support(y_j): drop i when strictly larger, or when
      // equal and i is the later duplicate.
      if (!support_contains(rows[j].y, rows[i].y)) {
        drop[i] = true;
        break;
      }
      if (j < i && rows[i].y == rows[j].y && rows[i].a == rows[j].a) {
        drop[i] = true;
        break;
      }
    }
  }
  std::vector<FarkasRow> kept;
  kept.reserve(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (!drop[i]) kept.push_back(std::move(rows[i]));
  }
  rows = std::move(kept);
}

constexpr long long kUnbounded = -1;

struct StaticStructure {
  std::vector<std::vector<long long>> incidence;  // |P| x |T|
  std::vector<bool> has_net_producer;             // some transition adds tokens
  std::vector<bool> has_net_consumer;             // some transition removes tokens
  Marking initial;
};

StaticStructure build_structure(const SrnModel& model) {
  StaticStructure s;
  const std::size_t n_p = model.place_count();
  const std::size_t n_t = model.transition_count();
  s.incidence.assign(n_p, std::vector<long long>(n_t, 0));
  s.has_net_producer.assign(n_p, false);
  s.has_net_consumer.assign(n_p, false);
  s.initial = model.initial_marking();
  for (TransitionId t = 0; t < n_t; ++t) {
    for (const Arc& a : model.input_arcs(t)) {
      s.incidence[a.place][t] -= static_cast<long long>(a.multiplicity);
    }
    for (const Arc& a : model.output_arcs(t)) {
      s.incidence[a.place][t] += static_cast<long long>(a.multiplicity);
    }
  }
  for (PlaceId p = 0; p < n_p; ++p) {
    for (TransitionId t = 0; t < n_t; ++t) {
      if (s.incidence[p][t] > 0) s.has_net_producer[p] = true;
      if (s.incidence[p][t] < 0) s.has_net_consumer[p] = true;
    }
  }
  return s;
}

void add_finding(VerifyReport& report, const char* rule, VerifySeverity severity,
                 std::string subject, std::string message) {
  report.findings.push_back(
      VerifyFinding{rule, severity, std::move(subject), std::move(message)});
}

/// Max input-arc multiplicity of t on p (0 when p is not an input).
TokenCount input_demand(const SrnModel& model, TransitionId t, PlaceId p) {
  TokenCount demand = 0;
  for (const Arc& a : model.input_arcs(t)) {
    if (a.place == p) demand = std::max(demand, a.multiplicity);
  }
  return demand;
}

/// Tarjan-free on-cycle detection for the token-flow graph: a transition is
/// on a directed cycle iff it can reach itself.  Nets here have at most a
/// few dozen transitions, so one BFS per transition is cheaper than it looks
/// and has no recursion-depth hazard.
std::vector<bool> on_cycle(const std::vector<std::vector<std::size_t>>& successors) {
  const std::size_t n = successors.size();
  std::vector<bool> result(n, false);
  std::vector<bool> seen(n);
  std::vector<std::size_t> queue;
  for (std::size_t start = 0; start < n; ++start) {
    std::fill(seen.begin(), seen.end(), false);
    queue.clear();
    for (std::size_t succ : successors[start]) {
      if (!seen[succ]) {
        seen[succ] = true;
        queue.push_back(succ);
      }
    }
    for (std::size_t head = 0; head < queue.size() && !result[start]; ++head) {
      const std::size_t v = queue[head];
      if (v == start) break;  // found a path back: on a cycle
      for (std::size_t succ : successors[v]) {
        if (!seen[succ]) {
          seen[succ] = true;
          queue.push_back(succ);
        }
      }
    }
    result[start] = seen[start];
  }
  return result;
}

}  // namespace

const char* to_string(VerifySeverity severity) noexcept {
  switch (severity) {
    case VerifySeverity::kInfo:
      return "info";
    case VerifySeverity::kWarning:
      return "warning";
    case VerifySeverity::kError:
      return "error";
  }
  return "unknown";
}

std::size_t VerifyReport::count(VerifySeverity severity) const noexcept {
  std::size_t n = 0;
  for (const VerifyFinding& f : findings) {
    if (f.severity == severity) ++n;
  }
  return n;
}

std::vector<std::vector<long long>> incidence_matrix(const SrnModel& model) {
  return build_structure(model).incidence;
}

std::vector<std::vector<long long>> semiflows(const std::vector<std::vector<long long>>& matrix,
                                              std::size_t max_intermediate_rows, bool* complete) {
  if (complete != nullptr) *complete = true;
  const std::size_t n = matrix.size();
  if (n == 0) return {};
  const std::size_t m = matrix.front().size();

  std::vector<FarkasRow> rows;
  rows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (matrix[i].size() != m) {
      throw std::invalid_argument("semiflows: ragged matrix");
    }
    FarkasRow row;
    row.a = matrix[i];
    row.y.assign(n, 0);
    row.y[i] = 1;
    rows.push_back(std::move(row));
  }

  for (std::size_t j = 0; j < m; ++j) {
    std::vector<FarkasRow> next;
    std::vector<const FarkasRow*> pos, neg;
    for (const FarkasRow& row : rows) {
      if (row.a[j] == 0) {
        next.push_back(row);
      } else if (row.a[j] > 0) {
        pos.push_back(&row);
      } else {
        neg.push_back(&row);
      }
    }
    for (const FarkasRow* p : pos) {
      for (const FarkasRow* q : neg) {
        if (next.size() > max_intermediate_rows) {
          if (complete != nullptr) *complete = false;
          return {};  // a truncated basis could miss invariants: return none
        }
        const long long cp = -q->a[j];  // positive
        const long long cq = p->a[j];   // positive
        FarkasRow combined;
        combined.a.resize(m);
        combined.y.resize(n);
        for (std::size_t k = 0; k < m; ++k) combined.a[k] = cp * p->a[k] + cq * q->a[k];
        for (std::size_t k = 0; k < n; ++k) combined.y[k] = cp * p->y[k] + cq * q->y[k];
        normalize(combined);
        next.push_back(std::move(combined));
      }
    }
    prune_rows(next);
    if (next.size() > max_intermediate_rows) {
      if (complete != nullptr) *complete = false;
      return {};
    }
    rows = std::move(next);
  }

  std::vector<std::vector<long long>> result;
  result.reserve(rows.size());
  for (FarkasRow& row : rows) {
    bool nonzero = false;
    for (long long v : row.y) nonzero = nonzero || v != 0;
    if (nonzero) result.push_back(std::move(row.y));
  }
  return result;
}

VerifyReport verify_model(const SrnModel& model, const VerifyOptions& options) {
  return verify_model(model, {}, options);
}

VerifyReport verify_model(const SrnModel& model,
                          const std::vector<std::pair<std::string, RewardFunction>>& rewards,
                          const VerifyOptions& options) {
  VerifyReport report;
  const std::size_t n_p = model.place_count();
  const std::size_t n_t = model.transition_count();
  const StaticStructure s = build_structure(model);
  VerifyCertificates& certs = report.certificates;

  // ---- invariant certificates ---------------------------------------------
  certs.p_semiflows =
      semiflows(s.incidence, options.max_intermediate_rows, &certs.p_semiflows_complete);
  std::vector<std::vector<long long>> transposed(n_t, std::vector<long long>(n_p, 0));
  for (PlaceId p = 0; p < n_p; ++p) {
    for (TransitionId t = 0; t < n_t; ++t) transposed[t][p] = s.incidence[p][t];
  }
  certs.t_semiflows =
      semiflows(transposed, options.max_intermediate_rows, &certs.t_semiflows_complete);

  certs.place_bound.assign(n_p, kUnbounded);
  for (const std::vector<long long>& y : certs.p_semiflows) {
    long long weighted_initial = 0;
    for (PlaceId p = 0; p < n_p; ++p) {
      weighted_initial += y[p] * static_cast<long long>(s.initial[p]);
    }
    for (PlaceId p = 0; p < n_p; ++p) {
      if (y[p] <= 0) continue;
      const long long bound = weighted_initial / y[p];
      if (certs.place_bound[p] == kUnbounded || bound < certs.place_bound[p]) {
        certs.place_bound[p] = bound;
      }
    }
  }
  certs.structurally_bounded =
      certs.p_semiflows_complete && n_p > 0 &&
      std::all_of(certs.place_bound.begin(), certs.place_bound.end(),
                  [](long long b) { return b != kUnbounded; });

  certs.token_conserving = n_t > 0 || n_p == 0;
  for (TransitionId t = 0; t < n_t; ++t) {
    long long column_sum = 0;
    for (PlaceId p = 0; p < n_p; ++p) column_sum += s.incidence[p][t];
    if (column_sum != 0) certs.token_conserving = false;
  }

  if (!certs.p_semiflows_complete || !certs.t_semiflows_complete) {
    add_finding(report, "V-CERT-001", VerifySeverity::kInfo, "",
                "semiflow enumeration truncated at " +
                    std::to_string(options.max_intermediate_rows) +
                    " intermediate rows; boundedness and T-coverage rules skipped");
  }

  // Attainable per-place token ceiling: a place no transition net-produces
  // into can never exceed its initial tokens; otherwise the P-invariant
  // bound applies when one exists (kUnbounded = no certificate = assume
  // anything reachable).
  std::vector<long long> attainable(n_p, kUnbounded);
  for (PlaceId p = 0; p < n_p; ++p) {
    if (!s.has_net_producer[p]) {
      attainable[p] = static_cast<long long>(s.initial[p]);
    } else if (certs.p_semiflows_complete) {
      attainable[p] = certs.place_bound[p];
    }
  }

  // ---- structural lint rules ----------------------------------------------
  // V-STRUCT-002: input and inhibitor arcs on the same place that can never
  // be satisfied together (needs >= in and < inh <= in tokens at once).
  for (TransitionId t = 0; t < n_t; ++t) {
    for (const Arc& inh : model.inhibitor_arcs(t)) {
      const TokenCount demand = input_demand(model, t, inh.place);
      if (demand > 0 && inh.multiplicity <= demand) {
        add_finding(report, "V-STRUCT-002", VerifySeverity::kError, model.transition_name(t),
                    "input arc needs >= " + std::to_string(demand) + " tokens in " +
                        model.place_name(inh.place) + " while the inhibitor arc needs < " +
                        std::to_string(inh.multiplicity) + ": never enabled");
        break;
      }
    }
  }

  // V-STRUCT-001: an input arc demanding more tokens than the place can ever
  // hold (supply ceiling from no-producer analysis or P-invariant bounds).
  for (TransitionId t = 0; t < n_t; ++t) {
    for (const Arc& a : model.input_arcs(t)) {
      const long long ceiling = attainable[a.place];
      if (ceiling != kUnbounded && ceiling < static_cast<long long>(a.multiplicity)) {
        add_finding(report, "V-STRUCT-001", VerifySeverity::kError, model.transition_name(t),
                    "structurally dead: needs " + std::to_string(a.multiplicity) + " tokens in " +
                        model.place_name(a.place) + " which can never hold more than " +
                        std::to_string(ceiling));
        break;
      }
    }
  }

  // V-STRUCT-003: immediate shadowed by a strictly-higher-priority unguarded
  // immediate that is enabled whenever it is (subset inputs, no inhibitors):
  // the shadowed immediate is never in the maximal-priority enabled set.
  for (TransitionId t = 0; t < n_t; ++t) {
    if (model.transition_kind(t) != TransitionKind::kImmediate) continue;
    for (TransitionId other = 0; other < n_t; ++other) {
      if (other == t || model.transition_kind(other) != TransitionKind::kImmediate) continue;
      if (model.priority(other) <= model.priority(t)) continue;
      if (model.has_guard(other) || !model.inhibitor_arcs(other).empty()) continue;
      bool dominated = true;
      for (const Arc& a : model.input_arcs(other)) {
        if (input_demand(model, t, a.place) < a.multiplicity) {
          dominated = false;
          break;
        }
      }
      if (dominated) {
        add_finding(report, "V-STRUCT-003", VerifySeverity::kError, model.transition_name(t),
                    "unreachable by construction: " + model.transition_name(other) +
                        " (priority " + std::to_string(model.priority(other)) +
                        ") is unguarded, enabled whenever it is, and outranks priority " +
                        std::to_string(model.priority(t)));
        break;
      }
    }
  }

  // ---- ergodicity pre-checks ----------------------------------------------
  // V-ERGO-003 / V-ERGO-004: net-level absorbing traps.  A sink place
  // swallows tokens forever (in a conservative net it drains the rest); a
  // source-only place drains to permanent emptiness, killing its consumers.
  for (PlaceId p = 0; p < n_p; ++p) {
    if (s.has_net_producer[p] && !s.has_net_consumer[p]) {
      add_finding(report, "V-ERGO-003", VerifySeverity::kError, model.place_name(p),
                  "absorbing token sink: transitions add tokens but none ever removes them");
    } else if (!s.has_net_producer[p] && s.has_net_consumer[p] && s.initial[p] > 0) {
      add_finding(report, "V-ERGO-004", VerifySeverity::kWarning, model.place_name(p),
                  "source-only place: its " + std::to_string(s.initial[p]) +
                      " initial token(s) drain away and can never return, leaving every "
                      "consumer permanently dead");
    }
  }

  // V-ERGO-001: token-flow cycle membership.  Edge t' -> t when t' net-adds
  // tokens to an input place of t.  A timed transition off every cycle can
  // fire at most finitely often (its inputs are never replenished through
  // it); transitions with no input arcs need no replenishment and are
  // exempt.
  {
    std::vector<std::vector<std::size_t>> successors(n_t);
    for (TransitionId from = 0; from < n_t; ++from) {
      for (PlaceId p = 0; p < n_p; ++p) {
        if (s.incidence[p][from] <= 0) continue;
        for (TransitionId to = 0; to < n_t; ++to) {
          if (input_demand(model, to, p) > 0) successors[from].push_back(to);
        }
      }
      std::sort(successors[from].begin(), successors[from].end());
      successors[from].erase(std::unique(successors[from].begin(), successors[from].end()),
                             successors[from].end());
    }
    const std::vector<bool> cyclic = on_cycle(successors);
    for (TransitionId t = 0; t < n_t; ++t) {
      if (model.transition_kind(t) != TransitionKind::kTimed) continue;
      if (model.input_arcs(t).empty()) continue;
      if (!cyclic[t]) {
        add_finding(report, "V-ERGO-001", VerifySeverity::kWarning, model.transition_name(t),
                    "not on any directed cycle of the token-flow graph: it cannot fire "
                    "recurrently");
      }
    }
  }

  // V-ERGO-002: timed transitions outside every T-semiflow cannot appear in
  // any marking-preserving firing cycle — in a bounded net they fire at most
  // finitely often.
  if (certs.t_semiflows_complete) {
    for (TransitionId t = 0; t < n_t; ++t) {
      if (model.transition_kind(t) != TransitionKind::kTimed) continue;
      bool covered = false;
      for (const std::vector<long long>& x : certs.t_semiflows) {
        if (x[t] > 0) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        add_finding(report, "V-ERGO-002", VerifySeverity::kWarning, model.transition_name(t),
                    "not covered by any T-semiflow: no marking-preserving firing cycle "
                    "contains it");
      }
    }
  }

  // V-BOUND-001: places without a boundedness certificate.
  if (certs.p_semiflows_complete) {
    for (PlaceId p = 0; p < n_p; ++p) {
      if (certs.place_bound[p] == kUnbounded) {
        add_finding(report, "V-BOUND-001", VerifySeverity::kWarning, model.place_name(p),
                    "not covered by any P-semiflow: no structural boundedness certificate");
      }
    }
  }

  // ---- probe-based function lint ------------------------------------------
  if (options.probe_functions) {
    // Probe set: the initial marking plus every single-place perturbation
    // that stays inside the attainable ceiling.  Guards/rates/rewards must
    // be total functions over markings of the correct arity.
    std::vector<Marking> probes;
    probes.push_back(s.initial);
    for (PlaceId p = 0; p < n_p; ++p) {
      const long long ceiling = attainable[p];
      if (ceiling == kUnbounded || static_cast<long long>(s.initial[p]) + 1 <= ceiling) {
        Marking up = s.initial;
        ++up[p];
        probes.push_back(std::move(up));
      }
      if (s.initial[p] > 0) {
        Marking down = s.initial;
        --down[p];
        probes.push_back(std::move(down));
      }
    }

    // V-GUARD-001: guards that throw (e.g. Marking::at on a nonexistent
    // place, or a stale name lookup).
    std::vector<bool> guard_broken(n_t, false);
    for (TransitionId t = 0; t < n_t; ++t) {
      if (!model.has_guard(t)) continue;
      const Guard& guard = model.guard(t);
      for (const Marking& probe : probes) {
        try {
          (void)guard(probe);
        } catch (const std::exception& e) {
          guard_broken[t] = true;
          add_finding(report, "V-GUARD-001", VerifySeverity::kError, model.transition_name(t),
                      std::string("guard threw on a probe marking: ") + e.what());
          break;
        } catch (...) {
          guard_broken[t] = true;
          add_finding(report, "V-GUARD-001", VerifySeverity::kError, model.transition_name(t),
                      "guard threw a non-std exception on a probe marking");
          break;
        }
      }
    }

    // V-RATE-001/-002: marking-dependent rates probed at markings where the
    // transition is enabled (the only markings the engine evaluates them
    // at).  Constant rates are validated at construction.
    for (TransitionId t = 0; t < n_t; ++t) {
      if (model.transition_kind(t) != TransitionKind::kTimed) continue;
      if (model.constant_rate(t).has_value() || guard_broken[t]) continue;
      const RateFunction& rate = model.rate_function(t);
      bool flagged = false;
      for (const Marking& probe : probes) {
        if (!model.is_enabled(t, probe)) continue;
        try {
          const double r = rate(probe);
          if (!(r > 0.0) || !std::isfinite(r)) {
            add_finding(report, "V-RATE-001", VerifySeverity::kError, model.transition_name(t),
                        "rate evaluated to " + std::to_string(r) +
                            " at an enabled probe marking " + petri::to_string(probe));
            flagged = true;
          }
        } catch (const std::exception& e) {
          add_finding(report, "V-RATE-002", VerifySeverity::kError, model.transition_name(t),
                      std::string("rate function threw at an enabled probe marking: ") + e.what());
          flagged = true;
        } catch (...) {
          add_finding(report, "V-RATE-002", VerifySeverity::kError, model.transition_name(t),
                      "rate function threw a non-std exception at an enabled probe marking");
          flagged = true;
        }
        if (flagged) break;
      }
    }

    // V-REWARD-002: rewards must evaluate to a finite value on every probe.
    for (const auto& [name, reward] : rewards) {
      if (!reward) continue;
      for (const Marking& probe : probes) {
        bool flagged = false;
        try {
          const double v = reward(probe);
          if (!std::isfinite(v)) {
            add_finding(report, "V-REWARD-002", VerifySeverity::kError, name,
                        "reward evaluated to " + std::to_string(v) + " at probe marking " +
                            petri::to_string(probe));
            flagged = true;
          }
        } catch (const std::exception& e) {
          add_finding(report, "V-REWARD-002", VerifySeverity::kError, name,
                      std::string("reward threw on a probe marking: ") + e.what());
          flagged = true;
        } catch (...) {
          add_finding(report, "V-REWARD-002", VerifySeverity::kError, name,
                      "reward threw a non-std exception on a probe marking");
          flagged = true;
        }
        if (flagged) break;
      }
    }

    // V-REWARD-001: a reward that changes value when a never-markable place
    // is toggled depends on state that cannot exist — usually a stale place
    // id after a model edit.
    for (PlaceId p = 0; p < n_p; ++p) {
      if (s.initial[p] != 0 || s.has_net_producer[p]) continue;
      Marking toggled = s.initial;
      toggled[p] = 1;
      for (const auto& [name, reward] : rewards) {
        if (!reward) continue;
        try {
          if (reward(s.initial) != reward(toggled)) {
            add_finding(report, "V-REWARD-001", VerifySeverity::kWarning, name,
                        "depends on place " + model.place_name(p) +
                            " which can never be marked (0 initial tokens, no producer)");
          }
        } catch (...) {
          // Already reported as V-REWARD-002.
        }
      }
    }
  }

  return report;
}

void throw_on_verify_errors(const VerifyReport& report, const std::string& stage) {
  if (!report.has_errors()) return;
  std::ostringstream message;
  message << "model verification failed (" << stage << "): " << report.errors() << " error(s)";
  for (const VerifyFinding& f : report.findings) {
    if (f.severity != VerifySeverity::kError) continue;
    message << "; [" << f.rule << "] " << (f.subject.empty() ? "net" : f.subject) << ": "
            << f.message;
  }
  throw std::runtime_error(message.str());
}

std::string format(const VerifyReport& report) {
  const VerifyCertificates& c = report.certificates;
  std::ostringstream out;
  out << "  P-semiflows: " << c.p_semiflows.size()
      << (c.p_semiflows_complete ? "" : " (truncated)")
      << "  T-semiflows: " << c.t_semiflows.size()
      << (c.t_semiflows_complete ? "" : " (truncated)") << "\n";
  out << "  structurally bounded: " << (c.structurally_bounded ? "yes" : "no")
      << "  token conserving: " << (c.token_conserving ? "yes" : "no") << "\n";
  if (report.clean()) {
    out << "  findings: none\n";
  } else {
    out << "  findings: " << report.errors() << " error(s), " << report.warnings()
        << " warning(s)\n";
    for (const VerifyFinding& f : report.findings) {
      out << "    [" << to_string(f.severity) << "] " << f.rule << " "
          << (f.subject.empty() ? "<net>" : f.subject) << ": " << f.message << "\n";
    }
  }
  return out.str();
}

}  // namespace patchsec::petri
