#include "patchsec/petri/srn_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace patchsec::petri {

PlaceId SrnModel::add_place(std::string name, TokenCount initial_tokens) {
  if (name.empty()) throw std::invalid_argument("add_place: empty name");
  for (const Place& p : places_) {
    if (p.name == name) throw std::invalid_argument("add_place: duplicate name " + name);
  }
  places_.push_back({std::move(name), initial_tokens});
  return places_.size() - 1;
}

TransitionId SrnModel::add_timed_transition(std::string name, double rate) {
  if (!(rate > 0.0) || !std::isfinite(rate)) {
    throw std::invalid_argument("add_timed_transition: rate must be positive: " + name);
  }
  const TransitionId t =
      add_timed_transition(std::move(name), [rate](const Marking&) { return rate; });
  transitions_[t].fixed_rate = rate;
  return t;
}

TransitionId SrnModel::add_timed_transition(std::string name, RateFunction rate) {
  if (name.empty()) throw std::invalid_argument("add_timed_transition: empty name");
  if (!rate) throw std::invalid_argument("add_timed_transition: null rate function");
  for (const Transition& t : transitions_) {
    if (t.name == name) throw std::invalid_argument("duplicate transition name " + name);
  }
  Transition t;
  t.name = std::move(name);
  t.kind = TransitionKind::kTimed;
  t.rate = std::move(rate);
  transitions_.push_back(std::move(t));
  return transitions_.size() - 1;
}

TransitionId SrnModel::add_immediate_transition(std::string name, double weight,
                                                unsigned priority) {
  if (name.empty()) throw std::invalid_argument("add_immediate_transition: empty name");
  if (!(weight > 0.0)) throw std::invalid_argument("immediate weight must be positive: " + name);
  for (const Transition& t : transitions_) {
    if (t.name == name) throw std::invalid_argument("duplicate transition name " + name);
  }
  Transition t;
  t.name = std::move(name);
  t.kind = TransitionKind::kImmediate;
  t.weight = weight;
  t.priority = priority;
  transitions_.push_back(std::move(t));
  return transitions_.size() - 1;
}

void SrnModel::add_input_arc(TransitionId t, PlaceId p, TokenCount multiplicity) {
  check_transition(t);
  check_place(p);
  if (multiplicity == 0) throw std::invalid_argument("arc multiplicity must be positive");
  transitions_[t].inputs.push_back({p, multiplicity});
}

void SrnModel::add_output_arc(TransitionId t, PlaceId p, TokenCount multiplicity) {
  check_transition(t);
  check_place(p);
  if (multiplicity == 0) throw std::invalid_argument("arc multiplicity must be positive");
  transitions_[t].outputs.push_back({p, multiplicity});
}

void SrnModel::add_inhibitor_arc(TransitionId t, PlaceId p, TokenCount multiplicity) {
  check_transition(t);
  check_place(p);
  if (multiplicity == 0) throw std::invalid_argument("arc multiplicity must be positive");
  transitions_[t].inhibitors.push_back({p, multiplicity});
}

void SrnModel::set_guard(TransitionId t, Guard guard) {
  check_transition(t);
  transitions_[t].guard = std::move(guard);
}

PlaceId SrnModel::place(const std::string& name) const {
  for (PlaceId i = 0; i < places_.size(); ++i) {
    if (places_[i].name == name) return i;
  }
  throw std::out_of_range("no such place: " + name);
}

TransitionId SrnModel::transition(const std::string& name) const {
  for (TransitionId i = 0; i < transitions_.size(); ++i) {
    if (transitions_[i].name == name) return i;
  }
  throw std::out_of_range("no such transition: " + name);
}

const std::vector<Arc>& SrnModel::input_arcs(TransitionId t) const {
  check_transition(t);
  return transitions_[t].inputs;
}

const std::vector<Arc>& SrnModel::output_arcs(TransitionId t) const {
  check_transition(t);
  return transitions_[t].outputs;
}

const std::vector<Arc>& SrnModel::inhibitor_arcs(TransitionId t) const {
  check_transition(t);
  return transitions_[t].inhibitors;
}

bool SrnModel::has_guard(TransitionId t) const {
  check_transition(t);
  return static_cast<bool>(transitions_[t].guard);
}

const Guard& SrnModel::guard(TransitionId t) const {
  check_transition(t);
  return transitions_[t].guard;
}

const RateFunction& SrnModel::rate_function(TransitionId t) const {
  check_transition(t);
  if (transitions_[t].kind != TransitionKind::kTimed) {
    throw std::logic_error("rate_function() called on immediate transition " +
                           transitions_[t].name);
  }
  return transitions_[t].rate;
}

std::optional<double> SrnModel::constant_rate(TransitionId t) const {
  check_transition(t);
  if (transitions_[t].kind != TransitionKind::kTimed) {
    throw std::logic_error("constant_rate() called on immediate transition " +
                           transitions_[t].name);
  }
  return transitions_[t].fixed_rate;
}

Marking SrnModel::initial_marking() const {
  Marking m(places_.size());
  for (std::size_t i = 0; i < places_.size(); ++i) m[i] = places_[i].initial;
  return m;
}

bool SrnModel::is_enabled(TransitionId t, const Marking& m) const {
  check_transition(t);
  if (m.size() != places_.size()) throw std::invalid_argument("marking size mismatch");
  const Transition& tr = transitions_[t];
  for (const Arc& a : tr.inputs) {
    if (m[a.place] < a.multiplicity) return false;
  }
  for (const Arc& a : tr.inhibitors) {
    if (m[a.place] >= a.multiplicity) return false;
  }
  if (tr.guard && !tr.guard(m)) return false;
  return true;
}

double SrnModel::rate(TransitionId t, const Marking& m) const {
  check_transition(t);
  const Transition& tr = transitions_[t];
  if (tr.kind != TransitionKind::kTimed) {
    throw std::logic_error("rate() called on immediate transition " + tr.name);
  }
  const double r = tr.rate(m);
  if (!(r > 0.0) || !std::isfinite(r)) {
    throw std::domain_error("rate function of " + tr.name + " returned non-positive value");
  }
  return r;
}

double SrnModel::weight(TransitionId t) const {
  check_transition(t);
  if (transitions_[t].kind != TransitionKind::kImmediate) {
    throw std::logic_error("weight() called on timed transition");
  }
  return transitions_[t].weight;
}

unsigned SrnModel::priority(TransitionId t) const {
  check_transition(t);
  if (transitions_[t].kind != TransitionKind::kImmediate) {
    throw std::logic_error("priority() called on timed transition");
  }
  return transitions_[t].priority;
}

Marking SrnModel::fire(TransitionId t, const Marking& m) const {
  Marking next;
  fire_into(t, m, next);
  return next;
}

void SrnModel::fire_into(TransitionId t, const Marking& m, Marking& out) const {
  if (!is_enabled(t, m)) {
    throw std::logic_error("fire: transition " + transitions_[t].name + " not enabled in " +
                           petri::to_string(m));
  }
  out = m;  // self-assignment safe when out aliases m; deltas applied below
  const Transition& tr = transitions_[t];
  for (const Arc& a : tr.inputs) out[a.place] -= a.multiplicity;
  for (const Arc& a : tr.outputs) out[a.place] += a.multiplicity;
}

std::vector<TransitionId> SrnModel::enabled_immediates(const Marking& m) const {
  std::vector<TransitionId> enabled;
  enabled_immediates_into(m, enabled);
  return enabled;
}

std::vector<TransitionId> SrnModel::enabled_timed(const Marking& m) const {
  std::vector<TransitionId> enabled;
  enabled_timed_into(m, enabled);
  return enabled;
}

void SrnModel::enabled_immediates_into(const Marking& m, std::vector<TransitionId>& out) const {
  out.clear();
  unsigned best_priority = 0;
  for (TransitionId t = 0; t < transitions_.size(); ++t) {
    if (transitions_[t].kind != TransitionKind::kImmediate) continue;
    if (!is_enabled(t, m)) continue;
    if (transitions_[t].priority > best_priority) {
      best_priority = transitions_[t].priority;
      out.clear();
    }
    if (transitions_[t].priority == best_priority) out.push_back(t);
  }
}

void SrnModel::enabled_timed_into(const Marking& m, std::vector<TransitionId>& out) const {
  out.clear();
  for (TransitionId t = 0; t < transitions_.size(); ++t) {
    if (transitions_[t].kind != TransitionKind::kTimed) continue;
    if (is_enabled(t, m)) out.push_back(t);
  }
}

void SrnModel::check_place(PlaceId p) const {
  if (p >= places_.size()) throw std::out_of_range("invalid place id");
}

void SrnModel::check_transition(TransitionId t) const {
  if (t >= transitions_.size()) throw std::out_of_range("invalid transition id");
}

}  // namespace patchsec::petri
