#include "patchsec/petri/dot_export.hpp"

#include <sstream>

namespace patchsec::petri {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string to_dot(const SrnModel& model, const std::string& graph_name) {
  std::ostringstream out;
  out << "digraph \"" << escape(graph_name) << "\" {\n";
  out << "  rankdir=LR;\n";
  const Marking m0 = model.initial_marking();
  for (PlaceId p = 0; p < model.place_count(); ++p) {
    out << "  p" << p << " [shape=circle, label=\"" << escape(model.place_name(p));
    if (m0[p] > 0) out << "\\n(" << m0[p] << ")";
    out << "\"];\n";
  }
  for (TransitionId t = 0; t < model.transition_count(); ++t) {
    const bool timed = model.transition_kind(t) == TransitionKind::kTimed;
    std::string label = model.transition_name(t);
    if (model.has_guard(t)) label += " +";  // guarded (dagger substitute)
    out << "  t" << t << " [shape=box, " << (timed ? "style=\"\"" : "style=filled, height=0.1")
        << ", label=\"" << escape(label) << "\"];\n";
  }
  for (TransitionId t = 0; t < model.transition_count(); ++t) {
    for (const Arc& a : model.input_arcs(t)) {
      out << "  p" << a.place << " -> t" << t;
      if (a.multiplicity > 1) out << " [label=\"" << a.multiplicity << "\"]";
      out << ";\n";
    }
    for (const Arc& a : model.output_arcs(t)) {
      out << "  t" << t << " -> p" << a.place;
      if (a.multiplicity > 1) out << " [label=\"" << a.multiplicity << "\"]";
      out << ";\n";
    }
    for (const Arc& a : model.inhibitor_arcs(t)) {
      out << "  p" << a.place << " -> t" << t << " [arrowhead=odot";
      if (a.multiplicity > 1) out << ", label=\"" << a.multiplicity << "\"";
      out << "];\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace patchsec::petri
