#pragma once
// Structural/behavioural analysis of SRNs on top of the reachability graph:
// dead transitions, place bounds and conservation — cheap model-debugging
// checks an SPNP user would run before trusting steady-state numbers.

#include <vector>

#include "patchsec/petri/reachability.hpp"
#include "patchsec/petri/srn_model.hpp"

namespace patchsec::petri {

struct StructuralReport {
  /// Transitions never enabled in any reachable (tangible or intermediate)
  /// marking.  Dead timed transitions usually indicate a wrong guard.
  std::vector<TransitionId> dead_transitions;
  /// Max token count observed per place over tangible markings.
  std::vector<TokenCount> place_bounds;
  /// Largest total token count over tangible markings (boundedness witness).
  TokenCount max_total_tokens = 0;
  /// True when every tangible marking carries the same total token count
  /// (the net conserves tokens — holds for all the availability models).
  bool conservative = true;
};

/// Analyze a net.  The reachability graph is rebuilt internally; pass the
/// same options used for analysis to match the explored space.
[[nodiscard]] StructuralReport analyze_structure(const SrnModel& model,
                                                 const ReachabilityOptions& options = {});

/// As above over an already-built reachability graph — callers that solved
/// the model (Session diagnostics, the verifier's dynamic-oracle tests) reuse
/// their graph instead of paying a duplicate exploration.  `graph` must have
/// been built from `model`; `options` only supplies `max_vanishing_depth` for
/// the immediate-transition liveness probe.
[[nodiscard]] StructuralReport analyze_structure(const SrnModel& model,
                                                 const ReachabilityGraph& graph,
                                                 const ReachabilityOptions& options = {});

}  // namespace patchsec::petri
