#pragma once
// Marking = token count per place.  Kept as a flat vector so it can be used
// as a hash key during state-space exploration.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace patchsec::petri {

using TokenCount = std::uint32_t;
using Marking = std::vector<TokenCount>;

/// FNV-1a over the token counts; good enough for the small dense markings of
/// availability models.
struct MarkingHash {
  std::size_t operator()(const Marking& m) const noexcept {
    std::size_t h = 1469598103934665603ull;
    for (TokenCount t : m) {
      h ^= static_cast<std::size_t>(t) + 0x9e3779b97f4a7c15ull;
      h *= 1099511628211ull;
    }
    return h;
  }
};

/// "[1 0 2 ...]" — debugging aid.
[[nodiscard]] std::string to_string(const Marking& m);

}  // namespace patchsec::petri
