#pragma once
// Stochastic Reward Net (generalized stochastic Petri net + reward
// functions), the modeling formalism of SPNP/SHARPE which the paper uses.
//
// Supported features, matching what the paper's models need:
//  * timed transitions with exponentially distributed firing times whose
//    rates may depend on the current marking (marking-dependent rates such
//    as  lambda * #Psvcup);
//  * immediate transitions with priorities and probabilistic weights;
//  * guard functions (enabling predicates over the marking, Table III);
//  * input / output / inhibitor arcs with multiplicities;
//  * rate rewards evaluated on tangible markings (Table VI).

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "patchsec/petri/marking.hpp"

namespace patchsec::petri {

using PlaceId = std::size_t;
using TransitionId = std::size_t;

/// Enabling predicate over a marking (a "guard" in SPNP terminology).
using Guard = std::function<bool(const Marking&)>;

/// Marking-dependent firing rate of a timed transition.
using RateFunction = std::function<double(const Marking&)>;

/// Rate reward assigned to tangible markings.
using RewardFunction = std::function<double(const Marking&)>;

enum class TransitionKind : std::uint8_t { kTimed, kImmediate };

/// One arc endpoint.  `multiplicity` tokens are consumed/produced/required.
struct Arc {
  PlaceId place = 0;
  TokenCount multiplicity = 1;
};

/// Declarative SRN.  Build places and transitions, then hand the model to the
/// reachability generator (analytic path) or the simulator (Monte-Carlo
/// path).  The model itself is immutable during analysis.
class SrnModel {
 public:
  SrnModel() = default;

  // ---- construction -------------------------------------------------------

  /// Add a place with the given initial token count; names must be unique.
  PlaceId add_place(std::string name, TokenCount initial_tokens = 0);

  /// Add a timed transition with a constant rate.
  TransitionId add_timed_transition(std::string name, double rate);

  /// Add a timed transition with a marking-dependent rate.
  TransitionId add_timed_transition(std::string name, RateFunction rate);

  /// Add an immediate transition.  Among simultaneously enabled immediates,
  /// the highest priority fires; ties are resolved probabilistically by
  /// weight.
  TransitionId add_immediate_transition(std::string name, double weight = 1.0,
                                        unsigned priority = 1);

  void add_input_arc(TransitionId t, PlaceId p, TokenCount multiplicity = 1);
  void add_output_arc(TransitionId t, PlaceId p, TokenCount multiplicity = 1);
  void add_inhibitor_arc(TransitionId t, PlaceId p, TokenCount multiplicity = 1);

  /// Attach an enabling guard.  Replaces any previous guard.
  void set_guard(TransitionId t, Guard guard);

  // ---- introspection ------------------------------------------------------

  [[nodiscard]] std::size_t place_count() const noexcept { return places_.size(); }
  [[nodiscard]] std::size_t transition_count() const noexcept { return transitions_.size(); }
  [[nodiscard]] const std::string& place_name(PlaceId p) const { return places_.at(p).name; }
  [[nodiscard]] const std::string& transition_name(TransitionId t) const {
    return transitions_.at(t).name;
  }
  [[nodiscard]] TransitionKind transition_kind(TransitionId t) const {
    return transitions_.at(t).kind;
  }
  /// Lookup by name; throws std::out_of_range when absent.
  [[nodiscard]] PlaceId place(const std::string& name) const;
  [[nodiscard]] TransitionId transition(const std::string& name) const;

  /// Arc introspection (for exporters and structural analysis).
  [[nodiscard]] const std::vector<Arc>& input_arcs(TransitionId t) const;
  [[nodiscard]] const std::vector<Arc>& output_arcs(TransitionId t) const;
  [[nodiscard]] const std::vector<Arc>& inhibitor_arcs(TransitionId t) const;
  [[nodiscard]] bool has_guard(TransitionId t) const;
  /// The guard itself (empty std::function when none) — lets analysis code
  /// compile the net into flat arrays without re-wrapping the model.
  [[nodiscard]] const Guard& guard(TransitionId t) const;
  /// The rate function of a timed transition (throws std::logic_error for
  /// immediates).  Callers doing their own evaluation must apply the same
  /// positivity/finiteness validation rate() performs.
  [[nodiscard]] const RateFunction& rate_function(TransitionId t) const;
  /// The constant rate of a timed transition built via the `double` overload
  /// of add_timed_transition, or std::nullopt when the rate is a general
  /// marking-dependent function.  Structural passes (symmetry lumping) need
  /// this because std::function is opaque: a replica transition can only be
  /// folded into a count-weighted class rate when its local rate is provably
  /// marking-independent.  Throws std::logic_error for immediates.
  [[nodiscard]] std::optional<double> constant_rate(TransitionId t) const;

  [[nodiscard]] Marking initial_marking() const;

  // ---- semantics ----------------------------------------------------------

  /// True when t's input arcs are satisfied, inhibitor arcs are not violated
  /// and the guard (if any) holds.
  [[nodiscard]] bool is_enabled(TransitionId t, const Marking& m) const;

  /// Firing rate of a timed transition in marking m (only meaningful when
  /// enabled).  Throws std::logic_error for immediate transitions.
  [[nodiscard]] double rate(TransitionId t, const Marking& m) const;

  /// Weight/priority of an immediate transition.
  [[nodiscard]] double weight(TransitionId t) const;
  [[nodiscard]] unsigned priority(TransitionId t) const;

  /// Successor marking after firing t in m.  Throws std::logic_error when t
  /// is not enabled.
  [[nodiscard]] Marking fire(TransitionId t, const Marking& m) const;

  /// Allocation-free fire: writes the successor of firing t in m into `out`
  /// (resized/overwritten; its capacity is reused).  `out` may alias `m`.
  /// Throws std::logic_error when t is not enabled.
  void fire_into(TransitionId t, const Marking& m, Marking& out) const;

  /// All enabled immediate transitions of maximal priority in m.
  [[nodiscard]] std::vector<TransitionId> enabled_immediates(const Marking& m) const;

  /// All enabled timed transitions in m.
  [[nodiscard]] std::vector<TransitionId> enabled_timed(const Marking& m) const;

  /// Allocation-free enumeration: `out` is cleared and filled (capacity
  /// reused across calls).  Same contents and order as the returning
  /// overloads; these are the hot-path forms used by the reachability
  /// explorer and the simulator.
  void enabled_immediates_into(const Marking& m, std::vector<TransitionId>& out) const;
  void enabled_timed_into(const Marking& m, std::vector<TransitionId>& out) const;

  /// A marking is vanishing when at least one immediate transition is
  /// enabled (immediates preempt timed transitions).
  [[nodiscard]] bool is_vanishing(const Marking& m) const {
    return !enabled_immediates(m).empty();
  }

 private:
  struct Place {
    std::string name;
    TokenCount initial = 0;
  };
  struct Transition {
    std::string name;
    TransitionKind kind = TransitionKind::kTimed;
    RateFunction rate;                  // timed only
    std::optional<double> fixed_rate;   // timed only; set by the constant-rate overload
    double weight = 1.0;    // immediate only
    unsigned priority = 1;  // immediate only
    std::vector<Arc> inputs;
    std::vector<Arc> outputs;
    std::vector<Arc> inhibitors;
    Guard guard;  // optional
  };

  void check_place(PlaceId p) const;
  void check_transition(TransitionId t) const;

  std::vector<Place> places_;
  std::vector<Transition> transitions_;
};

}  // namespace patchsec::petri
