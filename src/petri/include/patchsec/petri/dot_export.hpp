#pragma once
// Graphviz DOT export of SRN structure — places, transitions, arcs — for
// documentation and model debugging (the Fig. 4/5 diagrams of the paper can
// be regenerated from the code this way).

#include <string>

#include "patchsec/petri/srn_model.hpp"

namespace patchsec::petri {

/// Render the net structure as a DOT digraph.  Places are circles (labelled
/// with initial tokens when non-zero), timed transitions are white boxes,
/// immediate transitions are filled bars; inhibitor arcs get the classic
/// odot arrowhead.  Guards are marked with a dagger on the transition label.
[[nodiscard]] std::string to_dot(const SrnModel& model, const std::string& graph_name = "srn");

}  // namespace patchsec::petri
