#pragma once
// Reachability-graph generation with on-the-fly vanishing-marking
// elimination: the SRN is lowered to a CTMC over tangible markings exactly as
// SPNP does it.

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "patchsec/ctmc/ctmc.hpp"
#include "patchsec/petri/marking.hpp"
#include "patchsec/petri/srn_model.hpp"

namespace patchsec::petri {

struct ReachabilityOptions {
  /// Abort exploration when the tangible state space exceeds this bound.
  std::size_t max_tangible_markings = 1'000'000;
  /// Abort when a chain of immediate firings exceeds this depth (indicates a
  /// vanishing loop, which the supported model class must not contain).
  std::size_t max_vanishing_depth = 4096;
};

/// The lowered model: tangible markings, the CTMC over them, and the initial
/// probability distribution (the initial marking may itself be vanishing, in
/// which case its probability mass is spread over the tangibles it resolves
/// to).
struct ReachabilityGraph {
  std::vector<Marking> tangible_markings;
  ctmc::Ctmc chain;
  std::vector<double> initial_distribution;
  std::size_t vanishing_markings_seen = 0;

  [[nodiscard]] std::size_t tangible_count() const noexcept { return tangible_markings.size(); }

  /// Index of a tangible marking; throws std::out_of_range when unknown.
  [[nodiscard]] std::size_t index_of(const Marking& m) const;

  std::unordered_map<Marking, std::size_t, MarkingHash> index;
};

/// Explore the net from its initial marking.  Throws std::runtime_error when
/// a bound of `options` is exceeded (vanishing loop / state-space blow-up)
/// and std::domain_error when the initial marking deadlocks immediately.
[[nodiscard]] ReachabilityGraph build_reachability_graph(const SrnModel& model,
                                                         const ReachabilityOptions& options = {});

/// Convenience analyzer: builds the graph once, solves the steady state once
/// and evaluates rate rewards against it.
class SrnAnalyzer {
 public:
  explicit SrnAnalyzer(const SrnModel& model, const ReachabilityOptions& options = {});

  [[nodiscard]] const ReachabilityGraph& graph() const noexcept { return graph_; }
  [[nodiscard]] const std::vector<double>& steady_state() const noexcept { return steady_; }

  /// Expected steady-state rate reward  E[r] = sum_i pi_i r(m_i).
  [[nodiscard]] double expected_reward(const RewardFunction& reward) const;

  /// Steady-state probability of the set of markings satisfying `predicate`.
  [[nodiscard]] double probability(const std::function<bool(const Marking&)>& predicate) const;

  /// Expected number of tokens in a place at steady state.
  [[nodiscard]] double mean_tokens(PlaceId place) const;

 private:
  ReachabilityGraph graph_;
  std::vector<double> steady_;
};

}  // namespace patchsec::petri
