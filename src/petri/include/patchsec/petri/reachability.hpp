#pragma once
// Reachability-graph generation with on-the-fly vanishing-marking
// elimination: the SRN is lowered to a CTMC over tangible markings exactly as
// SPNP does it.

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "patchsec/ctmc/ctmc.hpp"
#include "patchsec/linalg/steady_state.hpp"
#include "patchsec/petri/marking.hpp"
#include "patchsec/petri/srn_model.hpp"

namespace patchsec::linalg {
class StationarySolver;
}  // namespace patchsec::linalg

namespace patchsec::petri {

struct ReachabilityOptions {
  /// Abort exploration when the tangible state space exceeds this bound.
  std::size_t max_tangible_markings = 1'000'000;
  /// Abort when a chain of immediate firings exceeds this depth (indicates a
  /// vanishing loop, which the supported model class must not contain).
  std::size_t max_vanishing_depth = 4096;
  /// Up-front capacity reserved for the tangible marking vector and index
  /// (clamped to max_tangible_markings).  0 picks a small default; callers
  /// that know their state-space size avoid rehash/regrow churn by setting
  /// it.
  std::size_t reserve_markings = 0;
};

/// \brief End-to-end solver configuration for one SRN analysis: reachability
/// limits plus the steady-state solver knobs handed to
/// linalg::solve_steady_state.  This is the lowered form of the facade's
/// core::EngineOptions.
struct AnalyzerOptions {
  ReachabilityOptions reachability;
  linalg::SteadyStateOptions steady_state;
  /// When true (the historical behaviour), SrnAnalyzer throws
  /// std::runtime_error if the steady-state solve diverges badly
  /// (not converged and residual above 1e-6).  When false the best-effort
  /// distribution is used and the failure is recorded in diagnostics() —
  /// callers (core::Session) surface it instead of crashing.
  bool throw_on_divergence = true;
};

/// \brief Per-stage diagnostics of one SRN analysis: how big the lowered
/// model was and how the steady-state solver fared.  Surfaced all the way up
/// to core::EvalReport.
struct SolveDiagnostics {
  std::size_t tangible_states = 0;      ///< CTMC states after elimination.
  std::size_t vanishing_markings = 0;   ///< vanishing markings eliminated.
  std::size_t transitions = 0;          ///< CTMC rate transitions.
  std::size_t solver_iterations = 0;    ///< iterations of the winning method.
  double residual = 0.0;                ///< max-norm of pi*Q at the iterate.
  bool converged = false;               ///< false when max_iterations elapsed.
  double wall_time_seconds = 0.0;       ///< graph build + solve.
  /// Size the flat (unlumped) state space would have had, when the analysis
  /// ran on a symmetry-lumped quotient; 0 for ordinary flat analyses.  The
  /// lumped/flat ratio is the headline speedup of the lumping pass.
  std::size_t flat_states = 0;

  /// The distribution is not usable even as a best-effort estimate: the
  /// iteration hit its budget with a residual that is not merely round-off.
  /// This is the criterion AnalyzerOptions::throw_on_divergence escalates.
  [[nodiscard]] bool badly_diverged() const noexcept {
    return !converged && residual > 1e-6;
  }
};

/// The lowered model: tangible markings, the CTMC over them, and the initial
/// probability distribution (the initial marking may itself be vanishing, in
/// which case its probability mass is spread over the tangibles it resolves
/// to).
struct ReachabilityGraph {
  std::vector<Marking> tangible_markings;
  ctmc::Ctmc chain;
  std::vector<double> initial_distribution;
  std::size_t vanishing_markings_seen = 0;

  [[nodiscard]] std::size_t tangible_count() const noexcept { return tangible_markings.size(); }

  /// Index of a tangible marking; throws std::out_of_range when unknown.
  /// The lookup table is built lazily on the first call (the exploration
  /// loop keeps its own faster packed index, so most graphs never pay for
  /// this map); not safe to call concurrently on the same graph from
  /// multiple threads until the first call has returned.
  [[nodiscard]] std::size_t index_of(const Marking& m) const;

 private:
  mutable std::unordered_map<Marking, std::size_t, MarkingHash> index_;
};

/// Explore the net from its initial marking.  Throws std::runtime_error when
/// a bound of `options` is exceeded (vanishing loop / state-space blow-up)
/// and std::domain_error when the initial marking deadlocks immediately.
[[nodiscard]] ReachabilityGraph build_reachability_graph(const SrnModel& model,
                                                         const ReachabilityOptions& options = {});

/// Convenience analyzer: builds the graph once, solves the steady state once
/// and evaluates rate rewards against it.
class SrnAnalyzer {
 public:
  explicit SrnAnalyzer(const SrnModel& model, const ReachabilityOptions& options = {});

  /// Full solver configuration: reachability limits plus steady-state method,
  /// tolerance and iteration budget.  diagnostics() reports how the solve
  /// went; with options.throw_on_divergence == false a non-converged solve is
  /// recorded there instead of thrown.  A non-null `workspace` routes the
  /// steady-state solve through a caller-owned linalg::StationarySolver so
  /// repeated analyses of same-structure SRNs (schedule sweeps, design
  /// sweeps) reuse the cached transpose/diagonal/scratch.
  SrnAnalyzer(const SrnModel& model, const AnalyzerOptions& options,
              linalg::StationarySolver* workspace = nullptr);

  [[nodiscard]] const ReachabilityGraph& graph() const noexcept { return graph_; }
  [[nodiscard]] const std::vector<double>& steady_state() const noexcept { return steady_; }

  /// State counts, solver iterations, residual, convergence flag and wall
  /// time of the analysis run in the constructor.
  [[nodiscard]] const SolveDiagnostics& diagnostics() const noexcept { return diagnostics_; }

  /// Expected steady-state rate reward  E[r] = sum_i pi_i r(m_i).
  [[nodiscard]] double expected_reward(const RewardFunction& reward) const;

  /// Steady-state probability of the set of markings satisfying `predicate`.
  [[nodiscard]] double probability(const std::function<bool(const Marking&)>& predicate) const;

  /// Expected number of tokens in a place at steady state.
  [[nodiscard]] double mean_tokens(PlaceId place) const;

 private:
  ReachabilityGraph graph_;
  std::vector<double> steady_;
  SolveDiagnostics diagnostics_;
};

}  // namespace patchsec::petri
