#pragma once
/// \file verify.hpp
/// \brief Static model verification of SRNs — certificates and lint findings
/// computed from the incidence matrix and the transition structure alone,
/// WITHOUT exploring the state space.  This is the cheap pre-flight pass the
/// engine runs before every solve (core::EngineOptions::verify); the
/// reachability-based `analyze_structure` is the *dynamic oracle* these
/// certificates are tested against (docs/TESTING.md).
///
/// Certificates (verified against the net definition, not trusted):
///  * P-semiflows — minimal-support non-negative integer vectors y with
///    yT C = 0 (C the place x transition incidence matrix).  Every reachable
///    marking M then satisfies yT M = yT M0, which yields per-place
///    structural bounds  M[p] <= floor(yT M0 / y[p])  and, when every place
///    is covered, a structural-boundedness certificate.  The all-ones vector
///    being a P-invariant is the token-conservation certificate
///    (`analyze_structure`'s `conservative` must agree).
///  * T-semiflows — minimal-support non-negative integer x with C x = 0: the
///    firing-count vectors of marking-preserving cycles.  In a bounded net a
///    transition that fires infinitely often must appear in the support of
///    some T-semiflow, so uncovered timed transitions cannot recur — an
///    ergodicity red flag.
///
/// Lint rules (rule catalog in docs/ARCHITECTURE.md §11).  Severities:
/// kError findings are certain model bugs (strict mode refuses to solve),
/// kWarning findings are strong smells that can in principle be intended,
/// kInfo findings report verifier limitations (truncated certificates).
///
///   V-RATE-001  error    marking-dependent rate non-positive/non-finite at
///                        an enabled probe marking
///   V-RATE-002  error    rate function throws at an enabled probe marking
///   V-GUARD-001 error    guard throws on a probe marking (e.g. references a
///                        nonexistent place via Marking::at)
///   V-STRUCT-001 error   structurally dead transition: an input arc demands
///                        more tokens than the place can ever hold
///   V-STRUCT-002 error   input/inhibitor conflict: the same place must hold
///                        >= n and < m <= n tokens at once
///   V-STRUCT-003 error   unreachable-by-construction immediate: shadowed by
///                        a strictly-higher-priority unguarded immediate
///                        enabled whenever it is
///   V-ERGO-001  warning  timed transition not on a directed cycle of the
///                        token-flow graph (its inputs are never replenished
///                        through it — it cannot drive recurrent behaviour)
///   V-ERGO-002  warning  timed transition not covered by any T-semiflow
///   V-ERGO-003  error    absorbing token sink: a place that receives tokens
///                        but never gives any back (net-level absorbing trap)
///   V-ERGO-004  warning  source-only place: initial tokens drain away and
///                        can never return, leaving its consumers dead (the
///                        chain acquires transient structure)
///   V-BOUND-001 warning  place not covered by any P-semiflow (no structural
///                        boundedness certificate for it)
///   V-REWARD-001 warning reward function depends on a place that can never
///                        be marked
///   V-REWARD-002 error   reward function throws or returns a non-finite
///                        value on a probe marking
///   V-CERT-001  info     semiflow computation truncated (row cap hit);
///                        coverage-based rules were skipped
///
/// All probes evaluate the model's opaque guard/rate/reward std::functions on
/// synthetic markings of the correct arity; out-of-range *unchecked* reads
/// (operator[] past the marking) are undefined behaviour and cannot be
/// caught — write guards with Marking::at or model-captured PlaceIds.

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "patchsec/petri/srn_model.hpp"

namespace patchsec::petri {

enum class VerifySeverity : std::uint8_t { kInfo = 0, kWarning = 1, kError = 2 };

[[nodiscard]] const char* to_string(VerifySeverity severity) noexcept;

/// One lint finding: a rule id, its severity, the offending place/transition
/// (by name; empty for net-level findings) and a human-readable message.
struct VerifyFinding {
  std::string rule;
  VerifySeverity severity = VerifySeverity::kWarning;
  std::string subject;  ///< place or transition name; "" for net-level.
  std::string message;
};

/// The invariant certificates of one net.  Every semiflow returned satisfies
/// its defining linear identity exactly (integer arithmetic); the test layer
/// re-checks them against the definition and against the reachability-based
/// dynamic oracle.
struct VerifyCertificates {
  /// Minimal-support P-semiflows, each of length place_count().
  std::vector<std::vector<long long>> p_semiflows;
  /// Minimal-support T-semiflows, each of length transition_count().
  std::vector<std::vector<long long>> t_semiflows;
  /// Per-place structural bound min_y floor(yT M0 / y[p]) over covering
  /// semiflows; -1 when no semiflow covers the place (no certificate).
  std::vector<long long> place_bound;
  /// Every place covered by a P-semiflow: the state space is provably finite.
  bool structurally_bounded = false;
  /// The all-ones vector is a P-invariant: every transition preserves the
  /// total token count (must agree with StructuralReport::conservative).
  bool token_conserving = false;
  /// The semiflow enumerations completed without hitting the row cap; when
  /// false the corresponding coverage rules (V-BOUND-001 / V-ERGO-002) are
  /// skipped and a V-CERT-001 info finding is emitted.
  bool p_semiflows_complete = true;
  bool t_semiflows_complete = true;
};

struct VerifyOptions {
  /// Cap on intermediate rows of the Farkas semiflow enumeration (the
  /// minimal-support pruning keeps realistic nets tiny; the cap guards
  /// against adversarial arc structures with exponential semiflow counts).
  std::size_t max_intermediate_rows = 4096;
  /// Evaluate guards/rates/rewards on probe markings (initial marking plus
  /// single-place perturbations within structural bounds).  Disable for
  /// models whose closures are not total functions of the marking.
  bool probe_functions = true;
};

struct VerifyReport {
  VerifyCertificates certificates;
  std::vector<VerifyFinding> findings;

  [[nodiscard]] bool clean() const noexcept { return findings.empty(); }
  [[nodiscard]] std::size_t count(VerifySeverity severity) const noexcept;
  [[nodiscard]] std::size_t errors() const noexcept { return count(VerifySeverity::kError); }
  [[nodiscard]] std::size_t warnings() const noexcept { return count(VerifySeverity::kWarning); }
  [[nodiscard]] bool has_errors() const noexcept { return errors() > 0; }
};

/// The |P| x |T| incidence matrix  C[p][t] = out(t, p) - in(t, p).
/// Inhibitor arcs do not move tokens and do not appear.
[[nodiscard]] std::vector<std::vector<long long>> incidence_matrix(const SrnModel& model);

/// Minimal-support non-negative integer left-null-space basis of `matrix`
/// (vectors y with yT A = 0), by the Farkas / Martinez-Silva elimination.
/// Pass the incidence matrix for P-semiflows and its transpose for
/// T-semiflows.  `complete` (optional) is set to false when the intermediate
/// row cap was hit, in which case an EMPTY set is returned — a truncated
/// basis could silently miss invariants and must not be used for coverage
/// claims.
[[nodiscard]] std::vector<std::vector<long long>> semiflows(
    const std::vector<std::vector<long long>>& matrix, std::size_t max_intermediate_rows = 4096,
    bool* complete = nullptr);

/// Run the full static verification pass: certificates + every lint rule.
[[nodiscard]] VerifyReport verify_model(const SrnModel& model, const VerifyOptions& options = {});

/// As above, additionally linting reward functions (V-REWARD-*) — pass the
/// rewards the analysis will evaluate, with display names for findings.
[[nodiscard]] VerifyReport verify_model(
    const SrnModel& model, const std::vector<std::pair<std::string, RewardFunction>>& rewards,
    const VerifyOptions& options = {});

/// Strict-mode enforcement: throws std::runtime_error naming `stage` and
/// every error-severity finding when the report has errors; no-op otherwise.
void throw_on_verify_errors(const VerifyReport& report, const std::string& stage);

/// Multi-line human-readable rendering (the srn_lint CLI output): certificate
/// summary plus one line per finding.
[[nodiscard]] std::string format(const VerifyReport& report);

}  // namespace patchsec::petri
