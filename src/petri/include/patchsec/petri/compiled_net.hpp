#pragma once
/// \file compiled_net.hpp
/// \brief CompiledNet: an SrnModel flattened for hot loops.  Input/inhibitor
/// arcs live in one contiguous array indexed by per-transition spans, firing
/// effects are precomputed net token deltas per touched place, and transitions
/// are partitioned timed/immediate (immediates pre-sorted by priority).  All
/// per-marking work is then branch-light array scanning with zero allocation.
///
/// Shared by the reachability explorer (analytic path) and the Monte-Carlo
/// event loop (simulation path): both compile the model once and then reuse
/// caller-owned scratch vectors across millions of enabledness checks and
/// firings.  A CompiledNet holds pointers into the SrnModel it was built
/// from; the model must outlive it and must not be modified afterwards.
/// All member functions are const and touch no mutable state, so one
/// CompiledNet may serve concurrent readers (threaded simulation
/// replications) provided the model's guard/rate closures are pure.

#include <cstdint>
#include <vector>

#include "patchsec/petri/marking.hpp"
#include "patchsec/petri/srn_model.hpp"

namespace patchsec::petri {

struct FlatArc {
  PlaceId place = 0;
  TokenCount multiplicity = 0;
};

struct PlaceDelta {
  PlaceId place = 0;
  std::int64_t delta = 0;
};

struct CompiledTransition {
  TransitionId id = 0;
  std::uint32_t in_begin = 0, in_end = 0;        // input arcs (enabling)
  std::uint32_t inh_begin = 0, inh_end = 0;      // inhibitor arcs
  std::uint32_t delta_begin = 0, delta_end = 0;  // net firing effect
  const Guard* guard = nullptr;                  // nullptr when unguarded
  const RateFunction* rate = nullptr;            // timed transitions only
  double weight = 0.0;                           // immediates only
  unsigned priority = 0;                         // immediates only
};

class CompiledNet {
 public:
  explicit CompiledNet(const SrnModel& model);

  [[nodiscard]] bool enabled(const CompiledTransition& t, const Marking& m) const {
    for (std::uint32_t k = t.in_begin; k < t.in_end; ++k) {
      if (m[arcs_[k].place] < arcs_[k].multiplicity) return false;
    }
    for (std::uint32_t k = t.inh_begin; k < t.inh_end; ++k) {
      if (m[arcs_[k].place] >= arcs_[k].multiplicity) return false;
    }
    if (t.guard != nullptr && !(*t.guard)(m)) return false;
    return true;
  }

  /// Successor of firing t in m, written into `out` (capacity reused).  Only
  /// call with `enabled(t, m)`; `out` must not alias `m`.
  void fire_into(const CompiledTransition& t, const Marking& m, Marking& out) const {
    out = m;
    for (std::uint32_t k = t.delta_begin; k < t.delta_end; ++k) {
      out[deltas_[k].place] =
          static_cast<TokenCount>(static_cast<std::int64_t>(out[deltas_[k].place]) +
                                  deltas_[k].delta);
    }
  }

  void enabled_timed_into(const Marking& m, std::vector<const CompiledTransition*>& out) const {
    out.clear();
    for (const CompiledTransition& t : timed_) {
      if (enabled(t, m)) out.push_back(&t);
    }
  }

  /// Enabled immediates of maximal priority (same set and order as
  /// SrnModel::enabled_immediates).
  void enabled_immediates_into(const Marking& m,
                               std::vector<const CompiledTransition*>& out) const {
    out.clear();
    std::size_t i = 0;
    for (; i < immediates_.size(); ++i) {
      if (enabled(immediates_[i], m)) break;
    }
    if (i == immediates_.size()) return;
    const unsigned priority = immediates_[i].priority;
    out.push_back(&immediates_[i]);
    for (++i; i < immediates_.size() && immediates_[i].priority == priority; ++i) {
      if (enabled(immediates_[i], m)) out.push_back(&immediates_[i]);
    }
  }

  [[nodiscard]] bool has_immediates() const noexcept { return !immediates_.empty(); }

  /// Rate of a timed transition in m, validated (throws std::domain_error on
  /// a non-positive or non-finite value, naming the offending transition).
  [[nodiscard]] double checked_rate(const CompiledTransition& t, const Marking& m) const;

 private:
  const SrnModel* model_ = nullptr;  // for error messages only
  std::vector<FlatArc> arcs_;
  std::vector<PlaceDelta> deltas_;
  std::vector<CompiledTransition> timed_;
  std::vector<CompiledTransition> immediates_;
};

}  // namespace patchsec::petri
