#pragma once
/// \file lumping.hpp
/// \brief Exact symmetry lumping for SRNs: quotient-net construction over
/// token-count (counting-abstraction) equivalence classes, plus exact
/// product-form analysis of nets that decompose into independent components.
///
/// Two orthogonal, composable reductions live here; both are *exact* (the
/// lumped answers equal the flat answers up to solver tolerance, which the
/// oracle suite in tests/test_lumping.cpp pins to 1e-10):
///
///  1. **Counting quotient** (`lump_model`).  A `SymmetrySpec` declares
///     groups of exchangeable replicas — per-server submodels that are
///     copies of one local template.  Two flat markings are equivalent when
///     they agree on every shared place and on the *count* of replicas in
///     each local state.  Because every replica transition moves one token
///     between local places at a constant rate `lambda`, the aggregate rate
///     out of a class with `c` replicas in local state `a` is
///     `lambda * c` — the multiplicity-weighted rate — identically for every
///     flat member of the class.  That is Kemeny-Snell strong lumpability,
///     so the quotient CTMC is exact, and the quotient has
///     `binom(n + L - 1, L - 1)`-many states per group instead of `L^n`.
///     Rewards and guards are lifted through a canonical representative
///     marking; this is exact precisely when they are symmetric under
///     replica permutation (the annotation contract, enforced for rates and
///     structure, and verified for rewards by the oracle tests).
///
///  2. **Component factorization** (`FactoredAnalyzer`).  When the places
///     partition into components such that every transition reads and
///     writes a single component, the components evolve as independent
///     CTMCs: both the stationary distribution and — for a deterministic
///     initial marking — the transient distribution factorize into a
///     product over components.  A `SeparableReward` (sum of products of
///     per-component factors, the shape of the paper's COA reward) is then
///     evaluated from the per-component marginals alone: the joint chain of
///     `prod_c S_c` states is never built.  Accumulated rewards integrate
///     the product curve by composite Gauss-Legendre quadrature with the
///     panel count tied to the uniformization rates, so the quadrature
///     error sits below the uniformization truncation error.
///
/// The avail layer composes the two: per-server replicas lump to per-tier
/// token counts (reduction 1), and the per-tier birth-death chains factor
/// the network product space (reduction 2), turning the k-servers-per-tier
/// design from `(k+1)^4` joint states into four chains of `k+1` states.

#include <cstddef>
#include <memory>
#include <vector>

#include "patchsec/ctmc/transient_solver.hpp"
#include "patchsec/petri/marking.hpp"
#include "patchsec/petri/reachability.hpp"
#include "patchsec/petri/srn_model.hpp"

namespace patchsec::petri {

/// One group of exchangeable replicas.  `replicas[i]` lists the places of
/// replica i, slot-aligned with every other replica of the group: slot j of
/// every replica plays the same local role (e.g. slot 0 = "up", slot 1 =
/// "down").  Every replica must hold exactly one token in total (a
/// single-token state machine), which replica transitions move between the
/// replica's own slots.
struct ReplicaGroup {
  std::vector<std::vector<PlaceId>> replicas;
};

/// Symmetry annotation of a flat SrnModel: disjoint replica groups.  Places
/// outside every group are shared ("passthrough") and survive unchanged into
/// the quotient.
struct SymmetrySpec {
  std::vector<ReplicaGroup> groups;
};

/// The compiled counting quotient: a quotient SrnModel whose grouped places
/// are replaced by per-slot count places, plus the projection/representative
/// maps between flat and quotient markings and the reward lift.  Copyable;
/// the mapping tables are shared immutably with the lifted closures.
class LumpedNet {
 public:
  /// The quotient net: analyze it with the ordinary explorer/solvers.
  [[nodiscard]] const SrnModel& model() const noexcept { return *model_; }

  [[nodiscard]] std::size_t flat_place_count() const noexcept;
  [[nodiscard]] std::size_t group_count() const noexcept;
  /// Slots (local states) of group g.
  [[nodiscard]] std::size_t slot_count(std::size_t group) const;
  /// Quotient place holding the replica count of (group, slot).
  [[nodiscard]] PlaceId count_place(std::size_t group, std::size_t slot) const;
  /// Quotient id of a flat passthrough place; throws std::invalid_argument
  /// for grouped places (they have no single quotient image).
  [[nodiscard]] PlaceId passthrough_place(PlaceId flat_place) const;

  /// Project a flat marking onto the quotient: passthrough places copied,
  /// grouped places summed per slot.
  [[nodiscard]] Marking project(const Marking& flat) const;

  /// Canonical flat representative of a quotient marking: replicas are
  /// assigned to slots in index order.  Throws std::invalid_argument when
  /// the slot counts of some group do not sum to its replica count (i.e. the
  /// marking is not the projection of any single-token flat marking).
  [[nodiscard]] Marking representative(const Marking& quotient) const;

  /// Lift a flat reward to the quotient by evaluation at the canonical
  /// representative.  Exact iff the flat reward is symmetric under replica
  /// permutation within every group (the caller's contract; the oracle suite
  /// cross-checks it for the rewards this repo ships).
  [[nodiscard]] RewardFunction lift_reward(RewardFunction flat_reward) const;

 private:
  friend LumpedNet lump_model(const SrnModel& flat, const SymmetrySpec& spec);
  struct Mapping;
  std::shared_ptr<const SrnModel> model_;
  std::shared_ptr<const Mapping> mapping_;
};

/// Compile the counting quotient of `flat` under `spec`.  Exactness is
/// enforced structurally; violations throw std::invalid_argument:
///  * groups/replicas must be non-empty, slot-aligned and disjoint, with
///    valid place ids and exactly one initial token per replica;
///  * every transition touching a grouped place must be timed, guard-free,
///    built with a constant rate, move exactly one token between two slots
///    of a single replica (one grouped input arc and one grouped output arc,
///    multiplicity 1, same replica), and carry no inhibitor arc on a grouped
///    place;
///  * replica transitions must come in complete orbits: for each signature
///    (slots, rate, shared arcs) every replica of the group contributes the
///    same number of members — an asymmetric net is rejected, not
///    approximated.
/// Transitions not touching grouped places pass through with their rates and
/// guards evaluated at the canonical representative (exact when they do not
/// read grouped places, or read them symmetrically).
[[nodiscard]] LumpedNet lump_model(const SrnModel& flat, const SymmetrySpec& spec);

/// A partition of the places of a net into independently evolving
/// components (every transition must read/write/inhibit within one
/// component; guards and marking-dependent rates must only read their own
/// component, which cannot be checked structurally and is part of the
/// caller's contract).
struct ComponentSplit {
  std::vector<std::vector<PlaceId>> components;
};

/// Assign every transition of `model` to the unique component of `split`
/// containing all its arc endpoints.  Throws std::invalid_argument when
/// `split` is not a partition of the places, when a transition spans
/// components or touches no place, or when the model contains immediate
/// transitions (the product-form argument needs a fully timed net).
[[nodiscard]] std::vector<std::vector<TransitionId>> component_transitions(
    const SrnModel& model, const ComponentSplit& split);

/// Explore the reachability graph of one component: BFS from `start` firing
/// only `transitions`, all other places frozen.  The returned graph's
/// markings are full-size (frozen places keep their `start` value) and its
/// initial distribution is the delta at `start`.  Throws like
/// build_reachability_graph on state-space blow-up.
[[nodiscard]] ReachabilityGraph build_component_reachability(
    const SrnModel& model, const std::vector<TransitionId>& transitions, const Marking& start,
    const ReachabilityOptions& options = {});

/// Sum of products of per-component rate rewards:
///   r(m) = sum_t coefficient_t * prod_c factor_{t,c}(m_c).
/// `factors` is indexed by component; an empty std::function stands for the
/// constant 1 (the component does not enter the term).  Each factor is
/// evaluated on that component's full-size markings.
struct SeparableReward {
  struct Term {
    double coefficient = 1.0;
    std::vector<RewardFunction> factors;
  };
  std::vector<Term> terms;
};

/// Product-form analyzer: per-component reachability graphs and stationary
/// distributions, evaluated against separable rewards without ever building
/// the joint chain.  The steady-state product form is exact for independent
/// components; the transient product form additionally needs a deterministic
/// start marking (which `start` is, by construction).
class FactoredAnalyzer {
 public:
  /// Analyze from the model's initial marking.
  FactoredAnalyzer(const SrnModel& model, const ComponentSplit& split,
                   const AnalyzerOptions& options = {});
  /// Analyze from an explicit start marking (transient patch-window starts).
  FactoredAnalyzer(const SrnModel& model, const ComponentSplit& split,
                   const AnalyzerOptions& options, const Marking& start);

  [[nodiscard]] std::size_t component_count() const noexcept { return graphs_.size(); }
  [[nodiscard]] const ReachabilityGraph& component_graph(std::size_t c) const {
    return graphs_.at(c);
  }
  [[nodiscard]] const std::vector<double>& component_steady(std::size_t c) const {
    return steady_.at(c);
  }

  /// Aggregated solve diagnostics: `tangible_states`/`transitions` are the
  /// sums over components (the states actually built and solved),
  /// `flat_states` is the product (the joint space that was avoided),
  /// `solver_iterations` sums, `residual` takes the worst component and
  /// `converged` requires every component to converge.
  [[nodiscard]] const SolveDiagnostics& diagnostics() const noexcept { return diagnostics_; }

  /// Steady-state expectation of a separable reward:
  ///   E[r] = sum_t c_t * prod_c E_{pi_c}[factor_{t,c}].
  [[nodiscard]] double expected_reward(const SeparableReward& reward) const;

  /// Transient curve r(t_j) over an ascending non-negative grid, advancing
  /// every component's distribution by uniformization from the start
  /// marking.  Returns the accumulated reward int_0^{t_back} r(s) ds,
  /// integrated by composite Gauss-Legendre panels sized so the quadrature
  /// error is dominated by the uniformization tolerance.  `values` is
  /// resized to the grid; per-component uniformization work is aggregated
  /// into `*transient` when non-null.
  double reward_curve(const SeparableReward& reward, const std::vector<double>& grid,
                      std::vector<double>& values, const ctmc::TransientOptions& options = {},
                      ctmc::TransientDiagnostics* transient = nullptr) const;

 private:
  void check_reward(const SeparableReward& reward) const;

  const SrnModel* model_ = nullptr;
  Marking start_;
  std::vector<ReachabilityGraph> graphs_;
  std::vector<std::vector<double>> steady_;
  SolveDiagnostics diagnostics_;
};

}  // namespace patchsec::petri
