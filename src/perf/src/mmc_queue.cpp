#include "patchsec/perf/mmc_queue.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace patchsec::perf {

double erlang_c(std::size_t servers, double offered_load) {
  if (servers == 0) throw std::invalid_argument("erlang_c: need at least one server");
  if (!(offered_load >= 0.0)) throw std::invalid_argument("erlang_c: negative offered load");
  const double c = static_cast<double>(servers);
  if (offered_load >= c) return 1.0;  // saturated: everyone waits

  // Iterative Erlang-B then convert to Erlang-C (numerically stable; no
  // factorials).
  double b = 1.0;  // Erlang-B with 0 servers
  for (std::size_t k = 1; k <= servers; ++k) {
    b = offered_load * b / (static_cast<double>(k) + offered_load * b);
  }
  const double rho = offered_load / c;
  return b / (1.0 - rho * (1.0 - b));
}

MmcResult solve_mmc(const MmcParameters& params) {
  if (!(params.arrival_rate > 0.0)) throw std::invalid_argument("solve_mmc: arrival rate");
  if (!(params.service_rate > 0.0)) throw std::invalid_argument("solve_mmc: service rate");
  if (params.servers == 0) throw std::invalid_argument("solve_mmc: zero servers");

  const double a = params.arrival_rate / params.service_rate;  // offered load
  const double c = static_cast<double>(params.servers);
  MmcResult r;
  r.utilization = a / c;
  if (r.utilization >= 1.0) {
    r.stable = false;
    r.wait_probability = 1.0;
    r.mean_queue_length = std::numeric_limits<double>::infinity();
    r.mean_waiting_time = std::numeric_limits<double>::infinity();
    r.mean_response_time = std::numeric_limits<double>::infinity();
    r.mean_in_system = std::numeric_limits<double>::infinity();
    return r;
  }
  r.stable = true;
  r.wait_probability = erlang_c(params.servers, a);
  r.mean_queue_length = r.wait_probability * r.utilization / (1.0 - r.utilization);
  r.mean_waiting_time = r.mean_queue_length / params.arrival_rate;
  r.mean_response_time = r.mean_waiting_time + 1.0 / params.service_rate;
  r.mean_in_system = params.arrival_rate * r.mean_response_time;
  return r;
}

double tandem_response_time(const MmcParameters* stations, std::size_t count) {
  if (stations == nullptr || count == 0) {
    throw std::invalid_argument("tandem_response_time: no stations");
  }
  double total = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    const MmcResult r = solve_mmc(stations[i]);
    if (!r.stable) return std::numeric_limits<double>::infinity();
    total += r.mean_response_time;
  }
  return total;
}

}  // namespace patchsec::perf
