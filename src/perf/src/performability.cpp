#include "patchsec/perf/performability.hpp"

#include <array>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "patchsec/linalg/steady_state.hpp"

namespace patchsec::perf {

namespace {

constexpr std::array<enterprise::ServerRole, enterprise::kRoleCount> kRoles{
    enterprise::ServerRole::kDns, enterprise::ServerRole::kWeb, enterprise::ServerRole::kApp,
    enterprise::ServerRole::kDb};

struct Tier {
  enterprise::ServerRole role;
  unsigned n = 0;
  double service_rate = 0.0;
  std::vector<double> up_distribution;  // pi[k] = P(k servers up), k = 0..n
};

}  // namespace

PerformabilityResult evaluate_performability(
    const enterprise::RedundancyDesign& design,
    const std::map<enterprise::ServerRole, avail::AggregatedRates>& rates,
    const Workload& workload) {
  if (!(workload.arrival_rate > 0.0)) {
    throw std::invalid_argument("performability: arrival rate must be positive");
  }

  std::vector<Tier> tiers;
  for (enterprise::ServerRole role : kRoles) {
    const unsigned n = design.count(role);
    if (n == 0) continue;
    const auto rate_it = rates.find(role);
    if (rate_it == rates.end()) throw std::invalid_argument("performability: missing rates");
    const auto svc_it = workload.service_rate.find(role);
    if (svc_it == workload.service_rate.end() || !(svc_it->second > 0.0)) {
      throw std::invalid_argument("performability: missing/invalid service rate for tier");
    }
    Tier tier;
    tier.role = role;
    tier.n = n;
    tier.service_rate = svc_it->second;
    // Same per-tier birth-death as COA: k up -> k-1 at k*lambda_eq,
    // k -> k+1 at (n-k)*mu_eq.
    std::vector<double> birth(n), death(n);
    for (unsigned i = 0; i < n; ++i) {
      birth[i] = static_cast<double>(n - i) * rate_it->second.mu_eq;
      death[i] = static_cast<double>(i + 1) * rate_it->second.lambda_eq;
    }
    tier.up_distribution = linalg::birth_death_steady_state(birth, death);
    tiers.push_back(std::move(tier));
  }
  if (tiers.empty()) throw std::invalid_argument("performability: empty design");

  // Enumerate the joint up-server configurations (product of per-tier
  // supports; tiny for realistic designs) and take the expectation.
  PerformabilityResult result;
  std::vector<unsigned> ups(tiers.size(), 0);
  double weighted_response = 0.0;

  const std::size_t t_count = tiers.size();
  const auto recurse = [&](auto&& self, std::size_t depth, double prob) -> void {
    if (prob == 0.0) return;
    if (depth == t_count) {
      // All tiers alive?
      for (std::size_t i = 0; i < t_count; ++i) {
        if (ups[i] == 0) {
          result.outage_probability += prob;
          return;
        }
      }
      std::vector<MmcParameters> stations;
      stations.reserve(t_count);
      for (std::size_t i = 0; i < t_count; ++i) {
        stations.push_back({workload.arrival_rate, tiers[i].service_rate, ups[i]});
      }
      const double response = tandem_response_time(stations.data(), stations.size());
      if (!std::isfinite(response)) {
        result.outage_probability += prob;  // saturated: effective outage
        return;
      }
      result.service_probability += prob;
      weighted_response += prob * response;
      return;
    }
    for (unsigned k = 0; k <= tiers[depth].n; ++k) {
      ups[depth] = k;
      self(self, depth + 1, prob * tiers[depth].up_distribution[k]);
    }
  };
  recurse(recurse, 0, 1.0);

  result.mean_response_time =
      result.service_probability > 0.0 ? weighted_response / result.service_probability : 0.0;
  return result;
}

}  // namespace patchsec::perf
