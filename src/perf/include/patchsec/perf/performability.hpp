#pragma once
// Performability: composing the availability model with the queueing model.
// The number of running servers per tier fluctuates as patches take servers
// down; the user-visible mean response time is the expectation of the tandem
// M/M/c response time over the steady-state up-server distribution of every
// tier (loss of a tier, or an unstable queue, counts as an outage).

#include <map>

#include "patchsec/avail/aggregation.hpp"
#include "patchsec/enterprise/design.hpp"
#include "patchsec/perf/mmc_queue.hpp"

namespace patchsec::perf {

/// Workload description: external arrival rate plus per-tier per-server
/// service rates (requests/hour).  Tiers with zero servers in the design are
/// skipped (no station).
struct Workload {
  double arrival_rate = 0.0;
  std::map<enterprise::ServerRole, double> service_rate;
};

struct PerformabilityResult {
  /// E[response time | system operational], hours.
  double mean_response_time = 0.0;
  /// P(system operational AND all stations stable).
  double service_probability = 0.0;
  /// P(some tier fully down or saturated by the remaining servers).
  double outage_probability = 0.0;
};

/// Evaluate the expected response time of a redundancy design under the
/// patch schedule.  Per-tier up-server counts are distributed per the
/// aggregated birth-death model (the same distribution behind COA); tiers
/// are independent, so the expectation factorizes over the joint support.
/// Throws std::invalid_argument when the workload misses a deployed tier.
[[nodiscard]] PerformabilityResult evaluate_performability(
    const enterprise::RedundancyDesign& design,
    const std::map<enterprise::ServerRole, avail::AggregatedRates>& rates,
    const Workload& workload);

}  // namespace patchsec::perf
