#pragma once
// User-oriented performance (paper Sec. V, "user oriented performance"
// extension): M/M/c queueing analysis of a server tier.  Requests arrive
// Poisson(lambda), each of the c identical up-servers serves exp(mu);
// Erlang-C gives waiting probability, mean waiting and response times.

#include <cstddef>

namespace patchsec::perf {

/// Parameters of one M/M/c station.
struct MmcParameters {
  double arrival_rate = 0.0;  ///< lambda, requests per hour.
  double service_rate = 0.0;  ///< mu per server, requests per hour.
  std::size_t servers = 1;    ///< c, number of running servers.
};

/// Closed-form M/M/c results.
struct MmcResult {
  double utilization = 0.0;        ///< rho = lambda / (c mu), must be < 1.
  double wait_probability = 0.0;   ///< Erlang-C: P(request queues).
  double mean_queue_length = 0.0;  ///< Lq.
  double mean_waiting_time = 0.0;  ///< Wq (hours).
  double mean_response_time = 0.0; ///< W = Wq + 1/mu (hours).
  double mean_in_system = 0.0;     ///< L = lambda W.
  bool stable = false;             ///< rho < 1.
};

/// Solve an M/M/c queue.  Throws std::invalid_argument on non-positive
/// rates or zero servers.  An unstable queue (rho >= 1) returns
/// stable=false with infinite waiting metrics.
[[nodiscard]] MmcResult solve_mmc(const MmcParameters& params);

/// Erlang-C probability of waiting, exposed for tests:
/// C(c, a) with offered load a = lambda/mu.
[[nodiscard]] double erlang_c(std::size_t servers, double offered_load);

/// Mean response time of a tandem of independent M/M/c stations (Jackson
/// network with a single chain): the sum of per-station response times.
/// Any unstable station makes the result infinite.
[[nodiscard]] double tandem_response_time(const MmcParameters* stations, std::size_t count);

}  // namespace patchsec::perf
