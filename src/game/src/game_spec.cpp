#include "patchsec/game/game_spec.hpp"

#include <cmath>
#include <stdexcept>

namespace patchsec::game {

GameSpec GameSpec::paper_case_study() {
  GameSpec spec;
  // Defender grid: the five Sec. IV candidate designs against a weekly /
  // biweekly / monthly / bimonthly cadence ladder (the paper evaluates the
  // monthly point; the game asks which rung survives an adaptive attacker).
  spec.scenario = core::Scenario::paper_case_study().with_patch_schedule(
      {168.0, 360.0, 720.0, 1440.0});
  // Unit server cost, budget 5: every candidate design (4-5 servers) is
  // deployable, so the cost constraint only prunes hypothetical deviations —
  // the binding constraint is exposure.
  spec.defender.cost_budget = 5.0;
  // Binds at slow cadences: the bimonthly window factor is 1.0 and the
  // before-patch class success probabilities are high, so a concentrated
  // attacker pushes lazy schedules out of the feasible set.
  spec.defender.exposure_bound = 0.4;
  // Cap below the budget forces the attacker to spread over at least two
  // path classes (the 3-tier policy yields exactly two: dns-web-app-db and
  // web-app-db).
  spec.attacker.effort_budget = 1.0;
  spec.attacker.per_path_cap = 0.6;
  return spec;
}

void GameSpec::validate() const {
  scenario.validate();
  if (scenario.designs().empty()) {
    throw std::invalid_argument("GameSpec: scenario must carry at least one candidate design");
  }
  if (scenario.patch_intervals().empty()) {
    throw std::invalid_argument("GameSpec: scenario must carry at least one patch cadence");
  }
  for (double c : defender.server_cost) {
    if (!(c >= 0.0) || !std::isfinite(c)) {
      throw std::invalid_argument("GameSpec: server costs must be finite and >= 0");
    }
  }
  if (!(defender.cost_budget > 0.0)) {
    throw std::invalid_argument("GameSpec: cost budget must be > 0");
  }
  if (!(defender.exposure_bound > 0.0)) {
    throw std::invalid_argument("GameSpec: exposure bound must be > 0");
  }
  if (!(attacker.effort_budget > 0.0) || !std::isfinite(attacker.effort_budget)) {
    throw std::invalid_argument("GameSpec: attacker effort budget must be finite and > 0");
  }
  if (!(attacker.per_path_cap > 0.0) || !std::isfinite(attacker.per_path_cap)) {
    throw std::invalid_argument("GameSpec: attacker per-path cap must be finite and > 0");
  }
  if (!(payoff.impact_weight >= 0.0 && payoff.impact_weight <= 1.0)) {
    throw std::invalid_argument("GameSpec: impact_weight must lie in [0, 1]");
  }
  if (max_iterations < 2) {
    throw std::invalid_argument(
        "GameSpec: max_iterations must be >= 2 (one round cannot witness a fixed point)");
  }
  if (!(damping > 0.0 && damping <= 1.0)) {
    throw std::invalid_argument("GameSpec: damping must lie in (0, 1]");
  }
  if (!(tie_epsilon >= 0.0)) {
    throw std::invalid_argument("GameSpec: tie_epsilon must be >= 0");
  }
  if (!(weight_tolerance > 0.0)) {
    throw std::invalid_argument("GameSpec: weight_tolerance must be > 0");
  }
  if (!(certificate_epsilon > 0.0)) {
    throw std::invalid_argument("GameSpec: certificate_epsilon must be > 0");
  }
}

}  // namespace patchsec::game
