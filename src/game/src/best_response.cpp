#include "patchsec/game/best_response.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <future>
#include <map>
#include <numeric>
#include <set>
#include <stdexcept>
#include <utility>

#include "patchsec/enterprise/network.hpp"
#include "patchsec/service/request_hash.hpp"

namespace patchsec::game {

namespace {

/// Feasibility slack: constraint checks tolerate this much numerical noise
/// so a cell sitting exactly on a bound is not flipped by rounding.
constexpr double kFeasibilitySlack = 1e-9;
/// Below this a weight counts as unallocated for the certificate's
/// exchange/slack tests.
constexpr double kMassEpsilon = 1e-12;

const core::Scenario& validated_scenario(const GameSpec& spec) {
  spec.validate();
  return spec.scenario;
}

/// "web2" -> "web": the role label of an enterprise HARM node (NetworkModel
/// names instances lower-cased role + 1-based index).
std::string role_label(const std::string& node_name) {
  std::size_t end = node_name.size();
  while (end > 0 && std::isdigit(static_cast<unsigned char>(node_name[end - 1])) != 0) --end;
  return node_name.substr(0, end);
}

std::string join_signature(const std::vector<std::string>& signature) {
  std::string name;
  for (const std::string& label : signature) {
    if (!name.empty()) name += '-';
    name += label;
  }
  return name;
}

/// splitmix64: the deterministic draw behind randomized tie-breaking.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Exact-bits hash of a Gauss-Seidel state (defender cell + attacker
/// weights) for cycle detection.
std::uint64_t state_hash(const DefenderStrategy& defender, const std::vector<double>& weights) {
  service::HashStream h;
  h.u64(defender.design_index);
  h.u64(defender.cadence_index);
  h.u64(weights.size());
  for (double w : weights) h.f64(w);
  return h.digest();
}

}  // namespace

BestResponseSolver::BestResponseSolver(GameSpec spec, service::ServiceOptions options)
    : spec_(std::move(spec)), service_(validated_scenario(spec_), options) {
  const std::vector<enterprise::RedundancyDesign>& designs = spec_.scenario.designs();
  const std::vector<double>& cadences = spec_.scenario.patch_intervals();
  num_designs_ = designs.size();
  num_cadences_ = cadences.size();

  cost_.resize(num_designs_);
  for (std::size_t i = 0; i < num_designs_; ++i) {
    double cost = 0.0;
    for (unsigned r = 0; r < enterprise::kRoleCount; ++r) {
      cost += static_cast<double>(designs[i].counts[r]) * spec_.defender.server_cost[r];
    }
    cost_[i] = cost;
  }

  const double max_cadence = *std::max_element(cadences.begin(), cadences.end());
  window_.resize(num_cadences_);
  for (std::size_t j = 0; j < num_cadences_; ++j) window_[j] = cadences[j] / max_cadence;

  // Attacker strategy space: the canonical class universe is the union of
  // every design's classes (identical across designs for any fixed policy,
  // but the union keeps degenerate designs — an empty tier removes a role
  // sequence — well-defined), sorted by signature.
  std::vector<std::vector<harm::PathClass>> per_design(num_designs_);
  std::set<std::vector<std::string>> signatures;
  for (std::size_t i = 0; i < num_designs_; ++i) {
    const harm::Harm model =
        enterprise::NetworkModel(designs[i], spec_.scenario.specs(), spec_.scenario.policy())
            .build_harm();
    per_design[i] = harm::aggregate_path_classes(
        model,
        [&model](harm::GraphNodeId id) { return role_label(model.graph().name(id)); },
        spec_.scenario.engine().harm_paths);
    for (const harm::PathClass& cls : per_design[i]) signatures.insert(cls.signature);
  }
  std::map<std::vector<std::string>, std::size_t> index;
  for (const std::vector<std::string>& signature : signatures) {
    index.emplace(signature, class_names_.size());
    class_names_.push_back(join_signature(signature));
  }

  const std::size_t num_classes = class_names_.size();
  impact_max_ = 0.0;
  for (std::size_t i = 0; i < num_designs_; ++i) {
    for (const harm::PathClass& cls : per_design[i]) {
      impact_max_ = std::max(impact_max_, cls.max_impact);
    }
  }
  success_.assign(num_designs_, std::vector<double>(num_classes, 0.0));
  util_base_.assign(num_designs_, std::vector<double>(num_classes, 0.0));
  const double alpha = spec_.payoff.impact_weight;
  for (std::size_t i = 0; i < num_designs_; ++i) {
    for (const harm::PathClass& cls : per_design[i]) {
      const std::size_t c = index.at(cls.signature);
      success_[i][c] = cls.success_probability;
      const double impact_share = impact_max_ > 0.0 ? cls.max_impact / impact_max_ : 0.0;
      util_base_[i][c] = alpha * impact_share + (1.0 - alpha) * cls.success_probability;
    }
  }
  scores_.assign(num_designs_ * num_cadences_, CellScore{});
}

void BestResponseSolver::sweep_grid() {
  const std::vector<enterprise::RedundancyDesign>& designs = spec_.scenario.designs();
  const std::vector<double>& cadences = spec_.scenario.patch_intervals();
  // Submit every cell, drain in submission order: the reply order (and with
  // it every downstream number) is independent of the worker count.
  std::vector<std::future<service::ServiceReply>> futures;
  futures.reserve(scores_.size());
  for (std::size_t i = 0; i < num_designs_; ++i) {
    for (std::size_t j = 0; j < num_cadences_; ++j) {
      service::EvalRequest request;
      request.design = designs[i];
      request.patch_interval_hours = cadences[j];
      request.kind = service::RequestKind::kSteady;
      futures.push_back(service_.submit(std::move(request)));
    }
  }
  for (std::size_t cell = 0; cell < futures.size(); ++cell) {
    const service::ServiceReply reply = futures[cell].get();
    scores_[cell] = CellScore{reply.report.coa, reply.report.before_patch.attack_impact,
                              reply.report.before_patch.attack_success_probability};
  }
}

double BestResponseSolver::exposure_of(std::size_t design_index, std::size_t cadence_index,
                                       const std::vector<double>& weights) const {
  double exposure = 0.0;
  for (std::size_t c = 0; c < weights.size(); ++c) {
    exposure += weights[c] * success_[design_index][c];
  }
  return window_[cadence_index] * exposure;
}

std::vector<double> BestResponseSolver::utilities_at(std::size_t design_index,
                                                     std::size_t cadence_index) const {
  std::vector<double> utilities(class_names_.size());
  for (std::size_t c = 0; c < utilities.size(); ++c) {
    utilities[c] = window_[cadence_index] * util_base_[design_index][c];
  }
  return utilities;
}

double BestResponseSolver::attacker_value(std::size_t design_index, std::size_t cadence_index,
                                          const std::vector<double>& weights) const {
  double value = 0.0;
  for (std::size_t c = 0; c < weights.size(); ++c) {
    value += weights[c] * window_[cadence_index] * util_base_[design_index][c];
  }
  return value;
}

std::vector<double> BestResponseSolver::attacker_best_response(
    const std::vector<double>& utilities) const {
  // Linear objective over { 0 <= w_c <= cap, sum w_c <= budget }: fill caps
  // in descending utility until the budget runs out.  Greedy is exact here;
  // ties resolve by canonical class order (stable sort on a stable key).
  std::vector<std::size_t> order(utilities.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&utilities](std::size_t a, std::size_t b) {
    return utilities[a] > utilities[b];
  });
  std::vector<double> weights(utilities.size(), 0.0);
  double remaining = spec_.attacker.effort_budget;
  for (std::size_t c : order) {
    if (!(utilities[c] > 0.0) || remaining <= 0.0) break;  // zero utility earns nothing.
    const double take = std::min(spec_.attacker.per_path_cap, remaining);
    weights[c] = take;
    remaining -= take;
  }
  return weights;
}

DefenderStrategy BestResponseSolver::defender_best_response(const std::vector<double>& weights,
                                                            const DefenderStrategy* incumbent,
                                                            bool randomized_ties,
                                                            std::uint64_t draw_salt,
                                                            bool* feasible) const {
  // Pass 1: best feasible COA.
  double best_coa = -1.0;
  bool any_feasible = false;
  for (std::size_t i = 0; i < num_designs_; ++i) {
    if (cost_[i] > spec_.defender.cost_budget + kFeasibilitySlack) continue;
    for (std::size_t j = 0; j < num_cadences_; ++j) {
      if (exposure_of(i, j, weights) > spec_.defender.exposure_bound + kFeasibilitySlack) continue;
      any_feasible = true;
      best_coa = std::max(best_coa, scores_[i * num_cadences_ + j].coa);
    }
  }
  if (feasible != nullptr) *feasible = any_feasible;

  if (!any_feasible) {
    // Fallback: park on the minimum-exposure cell (among cost-feasible cells
    // when any exist) so the trace stays meaningful; the round is flagged.
    DefenderStrategy parked;
    double least = std::numeric_limits<double>::infinity();
    for (int cost_pass = 0; cost_pass < 2; ++cost_pass) {
      for (std::size_t i = 0; i < num_designs_; ++i) {
        const bool cost_ok = cost_[i] <= spec_.defender.cost_budget + kFeasibilitySlack;
        if (cost_pass == 0 && !cost_ok) continue;
        for (std::size_t j = 0; j < num_cadences_; ++j) {
          const double exposure = exposure_of(i, j, weights);
          if (exposure < least) {
            least = exposure;
            parked = DefenderStrategy{i, j};
          }
        }
      }
      if (std::isfinite(least)) break;  // the cost-feasible pass found a cell.
    }
    return parked;
  }

  // Pass 2: the tie pool — every feasible cell within tie_epsilon of the
  // optimum, in lexicographic (i, j) order.
  std::vector<DefenderStrategy> pool;
  for (std::size_t i = 0; i < num_designs_; ++i) {
    if (cost_[i] > spec_.defender.cost_budget + kFeasibilitySlack) continue;
    for (std::size_t j = 0; j < num_cadences_; ++j) {
      if (exposure_of(i, j, weights) > spec_.defender.exposure_bound + kFeasibilitySlack) continue;
      if (scores_[i * num_cadences_ + j].coa >= best_coa - spec_.tie_epsilon) {
        pool.push_back(DefenderStrategy{i, j});
      }
    }
  }
  // The incumbent wins its ties (stabilizes fixed points under oscillating
  // attacker weights); otherwise lexicographic, or a seeded draw once the
  // cycle detector escalated to randomized tie-breaking.
  if (incumbent != nullptr &&
      std::find(pool.begin(), pool.end(), *incumbent) != pool.end()) {
    return *incumbent;
  }
  if (randomized_ties && pool.size() > 1) {
    return pool[static_cast<std::size_t>(mix(spec_.seed ^ mix(draw_salt)) % pool.size())];
  }
  return pool.front();
}

EquilibriumResult BestResponseSolver::solve() {
  const std::vector<enterprise::RedundancyDesign>& designs = spec_.scenario.designs();
  const std::vector<double>& cadences = spec_.scenario.patch_intervals();
  const std::size_t num_classes = class_names_.size();

  EquilibriumResult result;
  result.class_names = class_names_;

  // Initial attacker strategy: uniform spread respecting the per-class cap
  // (deterministic, and maximally uncommitted before any best response).
  std::vector<double> weights(num_classes, 0.0);
  if (num_classes > 0) {
    weights.assign(num_classes, std::min(spec_.attacker.per_path_cap,
                                         spec_.attacker.effort_budget /
                                             static_cast<double>(num_classes)));
  }

  DefenderStrategy defender;
  bool have_defender = false;
  bool damping_on = false;
  bool randomized_ties = false;
  bool converged = false;
  std::map<std::uint64_t, std::size_t> visited;  // state hash -> round.
  std::vector<DefenderStrategy> history;         // defender cell per round.

  std::size_t round = 0;
  while (round < spec_.max_iterations) {
    ++round;
    sweep_grid();

    bool feasible = true;
    const DefenderStrategy next =
        defender_best_response(weights, have_defender ? &defender : nullptr, randomized_ties,
                               static_cast<std::uint64_t>(round), &feasible);

    const std::vector<double> response = attacker_best_response(
        utilities_at(next.design_index, next.cadence_index));
    std::vector<double> stepped(num_classes);
    for (std::size_t c = 0; c < num_classes; ++c) {
      stepped[c] = damping_on
                       ? (1.0 - spec_.damping) * weights[c] + spec_.damping * response[c]
                       : response[c];
    }
    double shift = 0.0;
    for (std::size_t c = 0; c < num_classes; ++c) {
      shift = std::max(shift, std::abs(stepped[c] - weights[c]));
    }
    const bool changed = !have_defender || !(next == defender);

    IterationRecord record;
    record.iteration = round;
    record.defender = next;
    record.defender_payoff = scores_[next.design_index * num_cadences_ + next.cadence_index].coa;
    record.attacker_payoff = attacker_value(next.design_index, next.cadence_index, stepped);
    record.exposure = exposure_of(next.design_index, next.cadence_index, stepped);
    record.defender_feasible = feasible;
    record.defender_changed = changed;
    record.attacker_shift = shift;
    record.damped = damping_on;
    result.trace.push_back(record);
    history.push_back(next);

    // A stable state only counts as an equilibrium when the defender step
    // was a genuine (feasible) best response — a parked min-exposure
    // fallback can be stable without being an equilibrium.
    const bool fixed_point =
        have_defender && feasible && !changed && shift <= spec_.weight_tolerance;
    defender = next;
    weights = std::move(stepped);
    have_defender = true;
    if (fixed_point) {
      converged = true;
      break;
    }

    // Cycle detection on the post-round state; escalation ladder: damping,
    // then seeded randomized tie-breaking, then give up with the diagnostic.
    const std::uint64_t key = state_hash(defender, weights);
    const auto [it, inserted] = visited.emplace(key, round);
    if (!inserted) {
      result.oscillation.cycle_detected = true;
      if (result.oscillation.first_cycle_iteration == 0) {
        result.oscillation.first_cycle_iteration = round;
        result.oscillation.cycle_length = round - it->second;
        result.oscillation.cycle_states.assign(
            history.begin() + static_cast<std::ptrdiff_t>(it->second), history.end());
      }
      if (!damping_on) {
        damping_on = true;
        result.oscillation.damping_engaged = true;
      } else if (!randomized_ties) {
        randomized_ties = true;
        result.oscillation.randomized_ties_engaged = true;
      } else {
        break;  // both escalations exhausted: report the cycle, don't loop.
      }
      visited.clear();
      visited.emplace(key, round);
    }
  }

  result.converged = converged;
  result.iterations = round;
  result.defender = defender;
  result.design = designs[defender.design_index];
  result.cadence_hours = cadences[defender.cadence_index];
  result.attacker.weights = weights;
  result.defender_payoff =
      scores_[defender.design_index * num_cadences_ + defender.cadence_index].coa;
  result.attacker_payoff =
      attacker_value(defender.design_index, defender.cadence_index, weights);
  result.exposure = exposure_of(defender.design_index, defender.cadence_index, weights);
  if (converged) {
    result.certificate = certify(defender, weights);
  }
  build_frontier(result);
  result.service = service_.stats();
  return result;
}

DeviationCertificate BestResponseSolver::certify(const DefenderStrategy& defender,
                                                 const std::vector<double>& weights) const {
  DeviationCertificate cert;
  const double eps = spec_.certificate_epsilon;

  // Defender check: replay the feasibility filter over the whole grid and
  // bound the best feasible COA gain.  The held cell must itself be feasible
  // (a min-exposure fallback never certifies).
  const double held_coa =
      scores_[defender.design_index * num_cadences_ + defender.cadence_index].coa;
  const bool held_feasible =
      cost_[defender.design_index] <= spec_.defender.cost_budget + kFeasibilitySlack &&
      exposure_of(defender.design_index, defender.cadence_index, weights) <=
          spec_.defender.exposure_bound + kFeasibilitySlack;
  double best_gain = 0.0;
  for (std::size_t i = 0; i < num_designs_; ++i) {
    if (cost_[i] > spec_.defender.cost_budget + kFeasibilitySlack) continue;
    for (std::size_t j = 0; j < num_cadences_; ++j) {
      ++cert.defender_strategies_checked;
      if (exposure_of(i, j, weights) > spec_.defender.exposure_bound + kFeasibilitySlack) continue;
      best_gain = std::max(best_gain, scores_[i * num_cadences_ + j].coa - held_coa);
    }
  }
  cert.defender_best_gain = best_gain;
  cert.defender_ok = held_feasible && best_gain <= eps;

  // Attacker check 1: a fresh greedy optimum must not beat the held weights.
  const std::vector<double> utilities =
      utilities_at(defender.design_index, defender.cadence_index);
  const std::vector<double> optimum = attacker_best_response(utilities);
  double held_value = 0.0;
  double optimum_value = 0.0;
  for (std::size_t c = 0; c < utilities.size(); ++c) {
    held_value += weights[c] * utilities[c];
    optimum_value += optimum[c] * utilities[c];
  }
  cert.attacker_best_gain = optimum_value - held_value;

  // Attacker check 2 (exchange/slack KKT argument): no unit of effort can be
  // moved — between classes, or out of the unspent budget — at a positive
  // utility rate.
  double exchange = 0.0;
  double mass = 0.0;
  for (double w : weights) mass += w;
  for (std::size_t a = 0; a < weights.size(); ++a) {
    if (weights[a] <= kMassEpsilon) continue;
    for (std::size_t b = 0; b < weights.size(); ++b) {
      if (b == a || weights[b] >= spec_.attacker.per_path_cap - kMassEpsilon) continue;
      ++cert.attacker_transfers_checked;
      exchange = std::max(exchange, utilities[b] - utilities[a]);
    }
  }
  if (mass < spec_.attacker.effort_budget - kMassEpsilon) {
    for (std::size_t b = 0; b < weights.size(); ++b) {
      if (weights[b] >= spec_.attacker.per_path_cap - kMassEpsilon) continue;
      ++cert.attacker_transfers_checked;
      exchange = std::max(exchange, utilities[b]);
    }
  }
  cert.attacker_exchange_gain = std::max(0.0, exchange);
  cert.attacker_ok = cert.attacker_best_gain <= eps && cert.attacker_exchange_gain <= eps;

  cert.verified = cert.defender_ok && cert.attacker_ok;
  return cert;
}

void BestResponseSolver::build_frontier(EquilibriumResult& result) const {
  const std::vector<enterprise::RedundancyDesign>& designs = spec_.scenario.designs();
  const std::vector<double>& cadences = spec_.scenario.patch_intervals();
  result.frontier.clear();
  result.frontier.reserve(scores_.size());
  for (std::size_t i = 0; i < num_designs_; ++i) {
    for (std::size_t j = 0; j < num_cadences_; ++j) {
      const CellScore& score = scores_[i * num_cadences_ + j];
      FrontierPoint point;
      point.design_index = i;
      point.cadence_index = j;
      point.design_name = designs[i].name();
      point.cadence_hours = cadences[j];
      point.coa = score.coa;
      point.attack_impact = score.attack_impact;
      point.attack_success = score.attack_success;
      point.deployment_cost = cost_[i];
      point.exposure = exposure_of(i, j, result.attacker.weights);
      point.attacker_payoff = attacker_value(i, j, result.attacker.weights);
      point.cost_feasible = cost_[i] <= spec_.defender.cost_budget + kFeasibilitySlack;
      point.exposure_feasible =
          point.exposure <= spec_.defender.exposure_bound + kFeasibilitySlack;
      point.equilibrium = result.converged && DefenderStrategy{i, j} == result.defender;
      result.frontier.push_back(std::move(point));
    }
  }
}

}  // namespace patchsec::game
