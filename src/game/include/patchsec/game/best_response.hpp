#pragma once
/// \file best_response.hpp
/// \brief Gauss-Seidel best-response solver for the patch-scheduling game,
/// with a verified (not assumed) equilibrium certificate.
///
/// One solver round:
///
///  1. **Defender step** — sweep the FULL design x cadence grid through the
///     EvalService (every cell submitted every round; round two onward the
///     sweep is pure cache hits, which is both the memoization contract the
///     tests pin and what keeps the frontier data complete), filter cells by
///     the cost budget and the exposure bound under the attacker's *current*
///     weights, and take the feasible COA maximizer.  Ties prefer the
///     incumbent cell (stabilizes fixed points), then the lexicographically
///     smallest (i, j); after persistent cycling, ties are broken by a
///     seeded draw instead.  If no cell is feasible the defender parks on
///     the minimum-exposure cell and the round is flagged infeasible.
///  2. **Attacker step** — given the defender's cell, allocate the effort
///     budget greedily over classes in descending utility (exact for a
///     linear objective over the capped simplex { 0 <= w_c <= cap,
///     sum w_c <= budget }), ties by canonical class order.  Once a cycle
///     has been detected the step is damped:
///     w <- (1 - damping) w + damping w_br.
///
/// Convergence = the defender cell repeats AND no attacker weight moved more
/// than weight_tolerance.  Cycle handling escalates: exact state revisit
/// (hash of cell + weight bits) -> enable damping -> still revisiting ->
/// seeded randomized tie-breaking -> still revisiting or out of rounds ->
/// return converged = false with the cycle recorded in the
/// OscillationDiagnostic.  Nothing loops forever.
///
/// The certificate re-derives both best responses at the fixed point from
/// stored data: the defender check replays the feasibility filter over every
/// grid cell and bounds the best feasible COA gain; the attacker check
/// compares against a fresh greedy optimum AND walks all weight-transfer
/// pairs (the KKT-style exchange argument: moving mass from a held class to
/// a strictly-better-utility class with cap slack would improve).  Both
/// bounds must stay within certificate_epsilon or `verified` stays false.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "patchsec/core/session.hpp"
#include "patchsec/game/game_spec.hpp"
#include "patchsec/harm/path_classes.hpp"
#include "patchsec/service/eval_service.hpp"

namespace patchsec::game {

/// One defender pure strategy: a cell of the design x cadence grid.
struct DefenderStrategy {
  std::size_t design_index = 0;
  std::size_t cadence_index = 0;
  friend bool operator==(const DefenderStrategy&, const DefenderStrategy&) = default;
};

/// One attacker mixed strategy: effort weights aligned with the canonical
/// class universe (EquilibriumResult::class_names).
struct AttackerStrategy {
  std::vector<double> weights;
};

/// Per-round trace entry (the Gauss-Seidel transcript).
struct IterationRecord {
  std::size_t iteration = 0;  ///< 1-based round number.
  DefenderStrategy defender;
  double defender_payoff = 0.0;  ///< COA of the chosen cell.
  double attacker_payoff = 0.0;  ///< sum_c w_c u_c after this round's attacker step.
  double exposure = 0.0;         ///< coupled-constraint value at the chosen cell.
  bool defender_feasible = true; ///< false when the round used the min-exposure fallback.
  bool defender_changed = false; ///< cell differs from the previous round.
  double attacker_shift = 0.0;   ///< max_c |w_c - w_c_prev| after damping.
  bool damped = false;           ///< damping was active this round.
};

/// One grid cell of the COA/AIM decision frontier under the final weights.
struct FrontierPoint {
  std::size_t design_index = 0;
  std::size_t cadence_index = 0;
  std::string design_name;
  double cadence_hours = 0.0;
  double coa = 0.0;            ///< defender payoff of the cell.
  double attack_impact = 0.0;  ///< before-patch AIM of the design.
  double attack_success = 0.0; ///< before-patch ASP of the design.
  double deployment_cost = 0.0;
  double exposure = 0.0;         ///< coupled constraint under the final weights.
  double attacker_payoff = 0.0;  ///< attacker value of this cell under the final weights.
  bool cost_feasible = false;
  bool exposure_feasible = false;
  bool equilibrium = false;  ///< this cell is the equilibrium defender strategy.
};

/// Deviation-check certificate: recomputed at the fixed point, never assumed
/// from convergence.  `verified` requires both player checks to pass.
struct DeviationCertificate {
  bool verified = false;
  bool defender_ok = false;
  bool attacker_ok = false;
  /// Best feasible COA improvement any grid deviation offers (<= epsilon to pass).
  double defender_best_gain = 0.0;
  /// Greedy-optimum payoff minus held payoff (<= epsilon to pass).
  double attacker_best_gain = 0.0;
  /// Best utility-rate gain over all pairwise weight transfers with cap/mass
  /// slack (the exchange check; <= epsilon to pass).
  double attacker_exchange_gain = 0.0;
  std::size_t defender_strategies_checked = 0;
  std::size_t attacker_transfers_checked = 0;
};

/// What the cycle detector saw (populated whether or not damping rescued the
/// run; `converged = false` runs carry the unresolved cycle here).
struct OscillationDiagnostic {
  bool cycle_detected = false;
  std::size_t first_cycle_iteration = 0;  ///< round of the first exact state revisit.
  std::size_t cycle_length = 0;           ///< revisit distance (rounds).
  bool damping_engaged = false;
  bool randomized_ties_engaged = false;
  /// Defender cells along the detected cycle, oldest first (diagnostic only).
  std::vector<DefenderStrategy> cycle_states;
};

/// The solver's full answer: strategies, payoffs, trace, frontier,
/// certificate, and the service counters the run generated.
struct EquilibriumResult {
  bool converged = false;
  std::size_t iterations = 0;

  DefenderStrategy defender;
  enterprise::RedundancyDesign design;  ///< resolved defender design.
  double cadence_hours = 0.0;           ///< resolved defender cadence.
  AttackerStrategy attacker;
  std::vector<std::string> class_names;  ///< canonical class universe, aligned with weights.

  double defender_payoff = 0.0;  ///< equilibrium COA.
  double attacker_payoff = 0.0;  ///< equilibrium attacker value.
  double exposure = 0.0;         ///< coupled-constraint value at equilibrium.

  std::vector<IterationRecord> trace;
  std::vector<FrontierPoint> frontier;  ///< full grid under the final weights.
  DeviationCertificate certificate;
  OscillationDiagnostic oscillation;

  /// Service counters at the end of the run (cache hit rate, solves,
  /// coalesced — the memoization evidence).
  service::ServiceStats service;
  [[nodiscard]] double cache_hit_rate() const noexcept { return service.cache.hit_rate(); }
};

/// Alternating-best-response solver.  Owns an EvalService over the spec's
/// scenario so every inner evaluation rides the content-hashed cache; the
/// service (and through it the Session) stays inspectable after solve() for
/// the memoization assertions.
class BestResponseSolver {
 public:
  /// Validates the spec and builds the strategy spaces: per-design HARM path
  /// classes under the scenario's enumeration cap, the canonical class
  /// universe, deployment costs, and cadence window factors.
  explicit BestResponseSolver(GameSpec spec, service::ServiceOptions options = {});

  /// Run Gauss-Seidel to a fixed point (or the round budget) and certify the
  /// result.  Deterministic for a fixed spec: independent of the service's
  /// worker count and repeatable across runs.
  [[nodiscard]] EquilibriumResult solve();

  [[nodiscard]] const GameSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const service::EvalService& service() const noexcept { return service_; }
  /// Canonical class universe (union over the design grid, sorted by
  /// signature).  Attacker weights index into this.
  [[nodiscard]] const std::vector<std::string>& class_names() const noexcept {
    return class_names_;
  }

 private:
  struct CellScore {
    double coa = 0.0;
    double attack_impact = 0.0;
    double attack_success = 0.0;
  };

  /// Sweep the whole grid through the service (one submit per cell, futures
  /// drained in submission order) into scores_.
  void sweep_grid();
  [[nodiscard]] double exposure_of(std::size_t design_index, std::size_t cadence_index,
                                   const std::vector<double>& weights) const;
  [[nodiscard]] double attacker_value(std::size_t design_index, std::size_t cadence_index,
                                      const std::vector<double>& weights) const;
  /// Per-class attacker utilities at a defender cell.
  [[nodiscard]] std::vector<double> utilities_at(std::size_t design_index,
                                                 std::size_t cadence_index) const;
  /// Exact greedy maximizer of a linear objective over the capped simplex.
  [[nodiscard]] std::vector<double> attacker_best_response(
      const std::vector<double>& utilities) const;
  [[nodiscard]] DefenderStrategy defender_best_response(const std::vector<double>& weights,
                                                        const DefenderStrategy* incumbent,
                                                        bool randomized_ties,
                                                        std::uint64_t draw_salt,
                                                        bool* feasible) const;
  [[nodiscard]] DeviationCertificate certify(const DefenderStrategy& defender,
                                             const std::vector<double>& weights) const;
  void build_frontier(EquilibriumResult& result) const;

  GameSpec spec_;
  service::EvalService service_;

  std::size_t num_designs_ = 0;
  std::size_t num_cadences_ = 0;
  std::vector<std::string> class_names_;      ///< canonical universe (size C).
  std::vector<std::vector<double>> success_;  ///< [design][class] success probability.
  /// [design][class] impact_weight * impact/impact_max + (1 - impact_weight)
  /// * success — the cadence-independent factor of the attacker utility.
  std::vector<std::vector<double>> util_base_;
  std::vector<double> cost_;                  ///< [design] deployment cost.
  std::vector<double> window_;                ///< [cadence] cadence / max cadence.
  double impact_max_ = 0.0;                   ///< normalizer of the AIM payoff term.
  std::vector<CellScore> scores_;             ///< [design * num_cadences_ + cadence].
};

}  // namespace patchsec::game
