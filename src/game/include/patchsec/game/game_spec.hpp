#pragma once
/// \file game_spec.hpp
/// \brief The attacker–defender patch-scheduling game (ROADMAP item 4): what
/// each player controls, what constrains them, and how payoffs are scored.
///
/// The paper scores *fixed* designs against *fixed* patch schedules; the
/// adversarial version is the real capacity-planning question.  The
/// **defender** picks one cell of a design grid x cadence grid (the
/// scenario's candidate designs and patch schedule) to maximize COA, subject
/// to a deployment-cost budget and an *exposure bound that depends on where
/// the attacker concentrates effort* — the coupled constraint that makes
/// this a generalized Nash equilibrium problem (GNEP) rather than a plain
/// bimatrix game.  The **attacker** spreads an effort budget over the HARM
/// attack-path classes (harm::aggregate_path_classes — role-signature
/// strategies, stable across the design grid) on a capped simplex
/// { w >= 0, w_c <= per_path_cap, sum w_c <= effort_budget }, maximizing a
/// path-weighted mix of attack impact (AIM) and success probability scaled
/// by the patch window (a slower cadence leaves vulnerabilities exploitable
/// longer).
///
/// Solved by Gauss-Seidel alternating best responses (best_response.hpp),
/// the method shape of the GNEP literature retrieved in PAPERS.md
/// (Nie/Tang/Xu; Choi/Nie/Tang/Zhong): each defender step is a memoized
/// Session/EvalService schedule sweep (N+M lower-layer solves plus cached
/// upper-layer solves — iteration two onward is almost entirely cache hits),
/// each attacker step a constrained greedy allocation that is exact for the
/// linear objective over the capped simplex.

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "patchsec/core/scenario.hpp"

namespace patchsec::game {

/// \brief Defender-side constraints: a deployment-cost budget (independent
/// of the attacker) and the coupled exposure bound (dependent on the
/// attacker's current effort allocation).
struct DefenderConstraints {
  /// Deployment cost of one server of each role (role_index order).
  std::array<double, enterprise::kRoleCount> server_cost{1.0, 1.0, 1.0, 1.0};
  /// Total deployment budget: sum_role count * server_cost <= cost_budget.
  double cost_budget = std::numeric_limits<double>::infinity();
  /// Coupled (GNEP) constraint: the effort-weighted attack exposure
  ///   window(cadence) * sum_c w_c * success_c(design)
  /// must stay <= exposure_bound, where window(cadence) = cadence / max
  /// cadence in the grid (a longer patch interval leaves the population
  /// exploitable longer) and success_c is the class success probability of
  /// the design's before-patch HARM.  Infinity disables the coupling.
  double exposure_bound = std::numeric_limits<double>::infinity();
};

/// \brief Attacker-side strategy space: a capped effort simplex over the
/// attack-path classes.
struct AttackerConstraints {
  double effort_budget = 1.0;  ///< sum_c w_c <= effort_budget.
  double per_path_cap = 1.0;   ///< w_c <= per_path_cap (cap < budget spreads effort).
};

/// \brief Attacker payoff composition: utility of class c under defender
/// cell (design i, cadence j) is
///   window(j) * [ impact_weight * impact_c(i)/impact_max
///                 + (1 - impact_weight) * success_c(i) ]
/// with impact_max the largest class impact over the whole grid (so the AIM
/// term is a [0, 1] share, commensurable with the probability term).
struct PayoffWeights {
  double impact_weight = 0.5;  ///< AIM share; 1 - impact_weight weights ASP.
};

/// \brief Everything one equilibrium computation needs.  The embedded
/// Scenario doubles as the defender strategy space: `designs()` is the
/// design grid, `patch_intervals()` the cadence grid, and the engine options
/// configure the inner solves exactly as for a plain Session sweep.
struct GameSpec {
  core::Scenario scenario;
  DefenderConstraints defender;
  AttackerConstraints attacker;
  PayoffWeights payoff;

  /// Gauss-Seidel round budget; exceeding it surfaces the oscillation
  /// diagnostic instead of looping forever.
  std::size_t max_iterations = 32;
  /// Attacker-step damping factor applied once a cycle is detected:
  /// w <- (1 - damping) * w + damping * best_response(w).  1.0 disables
  /// damping (pure best response); the default 0.5 halves the step.
  double damping = 0.5;
  /// Payoff ties within this bound count as equal for tie-breaking (and for
  /// the randomized tie-break pool once cycling persists).
  double tie_epsilon = 1e-12;
  /// Attacker fixed-point tolerance: converged when no weight moved by more
  /// than this in the last (possibly damped) step.
  double weight_tolerance = 1e-10;
  /// Slack allowed by the deviation-check certificate (covers the damped
  /// fixed point's residual, weight_tolerance / damping).
  double certificate_epsilon = 1e-9;
  /// Seed of the randomized tie-breaking escalation (deterministic across
  /// runs and thread counts for a fixed seed).
  std::uint64_t seed = 0x9E3779B97F4A7C15ull;

  /// The paper case study as a game: the five Sec. IV designs against a
  /// weekly-to-bimonthly cadence grid, an exposure bound that binds at slow
  /// cadences, and an attacker who must spread effort over at least two
  /// path classes.
  [[nodiscard]] static GameSpec paper_case_study();

  /// Throws std::invalid_argument with a precise message when the spec is
  /// not solvable (delegates to Scenario::validate, then checks the game
  /// knobs: at least one design, positive budgets/caps, impact_weight in
  /// [0, 1], damping in (0, 1], max_iterations >= 2).
  void validate() const;
};

}  // namespace patchsec::game
