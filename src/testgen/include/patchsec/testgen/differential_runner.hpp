#pragma once
/// \file differential_runner.hpp
/// \brief Differential validation of the analytic pipeline against the
/// Monte-Carlo backend: sweep N generated scenarios, evaluate each through
/// both core::EvalBackend paths, and check that every analytic
/// capacity-oriented availability falls inside the simulation's confidence
/// interval at z standard errors.  A small number of statistical misses is
/// expected at 95% coverage; `DifferentialReport::passed` budgets them.
///
/// Reproduction: each case logs the generating `scenario_seed`; feed it to
/// `DifferentialRunner::run_one` (or the `differential_runner --seed` CLI)
/// to replay exactly that scenario, estimates included.

#include <cstdint>
#include <string>
#include <vector>

#include "patchsec/sim/srn_simulator.hpp"
#include "patchsec/testgen/scenario_generator.hpp"

namespace patchsec::testgen {

struct DifferentialOptions {
  std::size_t scenarios = 50;   ///< generated cases per run.
  double z = 1.96;              ///< CI level of the agreement check.
  std::size_t allowed_misses = 2;  ///< statistical-miss budget (see report).
  GeneratorOptions generator;      ///< scenario stream configuration.
  /// Replication budget of the simulation oracle.  The per-case seed is
  /// derived from the scenario seed (this field's `seed` is ignored) so the
  /// whole run reproduces from the generator's campaign seed alone.
  sim::SimulationOptions simulation;
};

/// One generated scenario, evaluated through both backends.
struct DifferentialCase {
  std::uint64_t scenario_seed = 0;  ///< reproduces scenario AND estimates.
  std::string label;
  std::string design;
  double patch_interval_hours = 0.0;
  double analytic_coa = 0.0;
  double simulated_coa = 0.0;   ///< replication mean.
  double half_width_95 = 0.0;   ///< 95% CI half width of simulated_coa.
  bool inside_ci = false;       ///< analytic_coa inside the z-level CI.
  bool analytic_converged = true;  ///< every analytic solve converged.
};

struct DifferentialReport {
  std::vector<DifferentialCase> cases;
  std::size_t misses = 0;  ///< cases with inside_ci == false.
  double z = 1.96;

  [[nodiscard]] bool passed(std::size_t allowed_misses) const noexcept {
    return misses <= allowed_misses;
  }

  /// Machine-readable form (uploaded as a CI artifact by the
  /// differential-smoke job).
  [[nodiscard]] std::string to_json() const;
};

class DifferentialRunner {
 public:
  explicit DifferentialRunner(DifferentialOptions options = {});

  [[nodiscard]] const DifferentialOptions& options() const noexcept { return options_; }

  /// Generate options().scenarios cases and evaluate each through both
  /// backends.  Deterministic for a given generator seed, including the
  /// simulation estimates (counter-based replication streams), regardless of
  /// simulation thread count.
  [[nodiscard]] DifferentialReport run() const;

  /// Replay one case from its logged scenario seed.
  [[nodiscard]] static DifferentialCase run_one(std::uint64_t scenario_seed,
                                                const DifferentialOptions& options = {});

 private:
  DifferentialOptions options_;
};

}  // namespace patchsec::testgen
