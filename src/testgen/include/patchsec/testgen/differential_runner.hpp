#pragma once
/// \file differential_runner.hpp
/// \brief Differential validation of the analytic pipeline against the
/// Monte-Carlo backend: sweep N generated scenarios, evaluate each through
/// both core::EvalBackend paths, and check that every analytic
/// capacity-oriented availability falls inside the simulation's confidence
/// interval at z standard errors.  A small number of statistical misses is
/// expected at 95% coverage; `DifferentialReport::passed` budgets them.
///
/// Reproduction: each case logs the generating `scenario_seed`; feed it to
/// `DifferentialRunner::run_one` (or the `differential_runner --seed` CLI)
/// to replay exactly that scenario, estimates included.

#include <cstdint>
#include <string>
#include <vector>

#include "patchsec/sim/srn_simulator.hpp"
#include "patchsec/testgen/scenario_generator.hpp"

namespace patchsec::testgen {

/// Which measure the sweep cross-checks.
enum class DifferentialMode : std::uint8_t {
  /// Steady-state COA: the analytic value must fall inside the replicated
  /// steady-state estimator's CI (the original harness).
  kSteadyState,
  /// The transient coa(t) curve over `transient_grid`, starting from the
  /// patch-window marking (one server per deployed role down): the analytic
  /// curve must lie inside the finite-horizon estimator's CI band at EVERY
  /// grid point (EvalReport::transient_agrees_with).  The band is
  /// SIMULTANEOUS at level z: per-point intervals are Bonferroni-widened so
  /// the whole-curve coverage matches z, because the verdict quantifies over
  /// the grid (per-point 95% intervals would miss ~23% of correct curves on
  /// a 5-point grid).
  kTransient,
  /// Three-way steady-state check adding the symmetry-lumped analytic engine
  /// (core::EngineOptions::lumping) as a third axis: every scenario is scored
  /// flat-analytic, lumped-analytic AND simulated.  A case passes only when
  /// the lumped COA (a) matches the flat COA to `lumped_tolerance` — the
  /// lumping is exact, so any gap beyond solver tolerance is a bug, not
  /// statistics — and (b) falls inside the simulation's CI like the flat
  /// value must.
  kLumped,
};

[[nodiscard]] const char* to_string(DifferentialMode mode) noexcept;

struct DifferentialOptions {
  std::size_t scenarios = 50;   ///< generated cases per run.
  double z = 1.96;              ///< CI level of the agreement check.
  std::size_t allowed_misses = 2;  ///< statistical-miss budget (see report).
  DifferentialMode mode = DifferentialMode::kSteadyState;
  /// Time grid of the transient mode (hours, ascending).  Spans the healing
  /// time scale of the patch dip: sub-hour, the MTTR knee, and the settled
  /// tail.
  std::vector<double> transient_grid = {0.5, 2.0, 6.0, 12.0, 24.0};
  /// Flat-vs-lumped agreement bound of the kLumped mode.  Deterministic (no
  /// CI): both engines solve the same model exactly, differing only by
  /// iterative-solver tolerance, so the default leaves two orders of
  /// headroom over the 1e-12 solver target.
  double lumped_tolerance = 1e-9;
  GeneratorOptions generator;      ///< scenario stream configuration.
  /// Replication budget of the simulation oracle.  The per-case seed is
  /// derived from the scenario seed (this field's `seed` is ignored) so the
  /// whole run reproduces from the generator's campaign seed alone.  The
  /// transient mode uses `replications`/`threads` only (each replication is
  /// one finite-horizon trajectory; no warmup, no batches).
  sim::SimulationOptions simulation;
};

/// One generated scenario, evaluated through both backends.  In transient
/// mode the COA columns hold the time-averaged (interval) COA over the
/// window and the per-point verdict lives in the grid columns below.
struct DifferentialCase {
  std::uint64_t scenario_seed = 0;  ///< reproduces scenario AND estimates.
  std::string label;
  std::string design;
  double patch_interval_hours = 0.0;
  double analytic_coa = 0.0;
  double simulated_coa = 0.0;   ///< replication mean.
  double half_width_95 = 0.0;   ///< 95% CI half width of simulated_coa.
  bool inside_ci = false;       ///< analytic_coa inside the z-level CI
                                ///< (transient mode: the whole curve inside
                                ///< the band at every grid point).
  bool analytic_converged = true;  ///< every analytic solve converged.
  /// Every verified net behind every backend came back with zero findings
  /// (EvalReport::lint_clean across the evaluations).  A dirty case fails
  /// `inside_ci` regardless of the statistics — numbers from a lint-dirty
  /// net are not evidence.
  bool lint_clean = true;

  // --- transient mode only --------------------------------------------------
  std::size_t grid_points = 0;      ///< curve length (0 in steady-state mode).
  std::size_t points_outside = 0;   ///< grid points where the band check failed.
  double worst_point_hours = 0.0;   ///< grid point of the largest deviation.
  double worst_deviation = 0.0;     ///< |analytic - simulated| there.

  // --- lumped mode only -----------------------------------------------------
  double lumped_coa = 0.0;            ///< the symmetry-lumped engine's COA.
  double flat_lumped_deviation = 0.0; ///< |analytic_coa - lumped_coa|.
  bool lumped_matches_flat = true;    ///< deviation within lumped_tolerance.
};

struct DifferentialReport {
  std::vector<DifferentialCase> cases;
  std::size_t misses = 0;  ///< cases with inside_ci == false.
  double z = 1.96;
  DifferentialMode mode = DifferentialMode::kSteadyState;

  [[nodiscard]] bool passed(std::size_t allowed_misses) const noexcept {
    return misses <= allowed_misses;
  }

  /// Machine-readable form (uploaded as a CI artifact by the
  /// differential-smoke job).
  [[nodiscard]] std::string to_json() const;
};

class DifferentialRunner {
 public:
  explicit DifferentialRunner(DifferentialOptions options = {});

  [[nodiscard]] const DifferentialOptions& options() const noexcept { return options_; }

  /// Generate options().scenarios cases and evaluate each through both
  /// backends.  Deterministic for a given generator seed, including the
  /// simulation estimates (counter-based replication streams), regardless of
  /// simulation thread count.
  [[nodiscard]] DifferentialReport run() const;

  /// Replay one case from its logged scenario seed.
  [[nodiscard]] static DifferentialCase run_one(std::uint64_t scenario_seed,
                                                const DifferentialOptions& options = {});

 private:
  DifferentialOptions options_;
};

}  // namespace patchsec::testgen
