#pragma once
/// \file scenario_generator.hpp
/// \brief Seeded generator of randomized-but-valid evaluation scenarios for
/// the differential validation harness: perturbed server specs (failure /
/// recovery / reboot mean times scaled log-uniformly), randomized redundancy
/// designs and patch cadences, perturbed reachability-policy guards, plus
/// deliberately degenerate shapes (single host everywhere, near-zero repair
/// rate, saturated capacity, rapid patch cadence).
///
/// Determinism contract: scenario i of `ScenarioGenerator(options)` depends
/// only on (options.seed, i) — never on thread count, previous draws of other
/// scenarios, or platform.  Every GeneratedScenario logs its own
/// `scenario_seed`, and `ScenarioGenerator::from_seed(scenario_seed)`
/// rebuilds it exactly, so a differential failure reproduces from one number.

#include <cstdint>
#include <string>
#include <vector>

#include "patchsec/core/scenario.hpp"
#include "patchsec/core/session.hpp"

namespace patchsec::testgen {

struct GeneratorOptions {
  std::uint64_t seed = 20170626;  ///< campaign seed; scenario i derives from (seed, i).
  unsigned max_servers_per_role = 4;        ///< design counts drawn from [1, max].
  double min_patch_interval_hours = 96.0;   ///< cadence drawn log-uniformly ...
  double max_patch_interval_hours = 2160.0;  ///< ... within [min, max].
  /// Mean times are scaled by a log-uniform factor in [1/f, f].
  double rate_perturbation_factor = 3.0;
  /// Fraction of scenarios forced into a degenerate shape (the shape itself
  /// is drawn uniformly from the four below, so short campaigns may miss
  /// some shapes); the rest are fully randomized.
  double degenerate_fraction = 0.25;
  /// Run the static verifier (petri::verify) over every net the generated
  /// scenario induces and throw std::logic_error on ANY finding — a
  /// generator that emits lint-dirty nets is a harness bug, not a test
  /// input.  On by default; the verification is incidence-matrix cheap.
  bool lint_generated = true;
};

/// The deliberately pathological corners the generator injects.
enum class DegenerateShape : std::uint8_t {
  kNone,             ///< fully randomized scenario.
  kSingleHost,       ///< no redundancy anywhere: one server per role.
  kGlacialRepair,    ///< near-zero recovery rate: reboots take hundreds of
                     ///< hours, so mu_eq collapses and tiers sit down.
  kSaturatedCapacity,  ///< every role at max_servers_per_role.
  kRapidCadence,     ///< patching at the minimum cadence: the patch window
                     ///< dominates the trajectory.
};

[[nodiscard]] const char* to_string(DegenerateShape shape) noexcept;

struct GeneratedScenario {
  core::Scenario scenario;  ///< valid (Scenario::validate passes); engine left default.
  enterprise::RedundancyDesign design;  ///< the design to evaluate (== designs().front()).
  std::uint64_t scenario_seed = 0;  ///< reproduces this scenario via from_seed().
  DegenerateShape shape = DegenerateShape::kNone;
  std::string label;  ///< human-readable shape tag for logs/reports.
};

class ScenarioGenerator {
 public:
  explicit ScenarioGenerator(GeneratorOptions options = {});

  [[nodiscard]] const GeneratorOptions& options() const noexcept { return options_; }

  /// The next scenario of the stream (scenario index advances by one).
  [[nodiscard]] GeneratedScenario next();

  /// The next `count` scenarios.
  [[nodiscard]] std::vector<GeneratedScenario> generate(std::size_t count);

  /// Rebuild one scenario from its logged per-scenario seed.  Options other
  /// than `seed` must match the generating run for an exact reproduction.
  [[nodiscard]] static GeneratedScenario from_seed(std::uint64_t scenario_seed,
                                                   const GeneratorOptions& options = {});

  /// The per-scenario seed of scenario `index` under `campaign_seed` (the
  /// value next() logs).
  [[nodiscard]] static std::uint64_t scenario_seed_for(std::uint64_t campaign_seed,
                                                       std::uint64_t index) noexcept;

 private:
  GeneratorOptions options_;
  std::uint64_t counter_ = 0;
};

/// Static verification of every net `generated` induces: one lower-layer
/// server net per role (built from the real perturbed spec at the scenario's
/// cadence) plus the upper-layer network net (built with unit aggregated
/// rates — the lint is purely structural, so no steady-state solve is paid).
/// The generator's `lint_generated` assertion and the 50-seed sweep test both
/// go through this function.
[[nodiscard]] std::vector<core::StageVerification> lint_scenario(
    const GeneratedScenario& generated);

}  // namespace patchsec::testgen
