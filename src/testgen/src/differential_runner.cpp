#include "patchsec/testgen/differential_runner.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "patchsec/core/session.hpp"
#include "patchsec/sim/seed_stream.hpp"

namespace patchsec::testgen {

namespace {

// Salt separating the simulation's replication streams from the generator's
// draws: the two uses of one scenario seed must not correlate.
constexpr std::uint64_t kSimulationSalt = 0x5eed0fdeadbeef01ull;

DifferentialCase run_case(const GeneratedScenario& generated, const DifferentialOptions& options) {
  DifferentialCase result;
  result.scenario_seed = generated.scenario_seed;
  result.label = generated.label;
  result.design = generated.design.name();
  result.patch_interval_hours = generated.scenario.patch_interval_hours();

  // Analytic pass.  Divergence is surfaced, not thrown: a non-converged
  // solve shows up as analytic_converged == false next to the CI verdict.
  core::EngineOptions analytic_engine;
  analytic_engine.backend = core::EvalBackend::kAnalytic;
  analytic_engine.throw_on_divergence = false;
  core::Scenario analytic = generated.scenario;
  analytic.with_engine(analytic_engine);
  const core::Session analytic_session(std::move(analytic));
  const core::EvalReport analytic_report = analytic_session.evaluate(generated.design);
  result.analytic_coa = analytic_report.coa;
  result.analytic_converged = analytic_report.converged();

  // Simulation pass: same scenario, Monte-Carlo oracle, per-case seed
  // derived from the scenario seed.
  core::EngineOptions sim_engine;
  sim_engine.backend = core::EvalBackend::kSimulation;
  sim_engine.simulation = options.simulation;
  sim_engine.simulation.seed = sim::splitmix64(generated.scenario_seed ^ kSimulationSalt);
  core::Scenario simulated = generated.scenario;
  simulated.with_engine(sim_engine);
  const core::Session sim_session(std::move(simulated));
  const core::EvalReport sim_report = sim_session.evaluate(generated.design);
  result.simulated_coa = sim_report.coa;
  result.half_width_95 = sim_report.coa_half_width_95;

  result.inside_ci = sim_report.agrees_with(analytic_report, options.z);
  return result;
}

}  // namespace

DifferentialRunner::DifferentialRunner(DifferentialOptions options)
    : options_(std::move(options)) {
  if (options_.scenarios == 0) {
    throw std::invalid_argument("DifferentialRunner: need at least 1 scenario");
  }
  if (!(options_.z > 0.0)) {
    throw std::invalid_argument("DifferentialRunner: z must be positive");
  }
  options_.simulation.validate();
}

DifferentialReport DifferentialRunner::run() const {
  DifferentialReport report;
  report.z = options_.z;
  report.cases.reserve(options_.scenarios);
  ScenarioGenerator generator(options_.generator);
  for (std::size_t i = 0; i < options_.scenarios; ++i) {
    report.cases.push_back(run_case(generator.next(), options_));
    if (!report.cases.back().inside_ci) ++report.misses;
  }
  return report;
}

DifferentialCase DifferentialRunner::run_one(std::uint64_t scenario_seed,
                                             const DifferentialOptions& options) {
  return run_case(ScenarioGenerator::from_seed(scenario_seed, options.generator), options);
}

std::string DifferentialReport::to_json() const {
  std::ostringstream out;
  out << std::setprecision(12);
  out << "{\n  \"schema_version\": 1,\n  \"z\": " << z << ",\n  \"scenarios\": " << cases.size()
      << ",\n  \"misses\": " << misses << ",\n  \"cases\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const DifferentialCase& c = cases[i];
    out << "    {\"scenario_seed\": " << c.scenario_seed << ", \"label\": \"" << c.label
        << "\", \"design\": \"" << c.design
        << "\", \"patch_interval_hours\": " << c.patch_interval_hours
        << ", \"analytic_coa\": " << c.analytic_coa
        << ", \"simulated_coa\": " << c.simulated_coa
        << ", \"half_width_95\": " << c.half_width_95
        << ", \"inside_ci\": " << (c.inside_ci ? "true" : "false")
        << ", \"analytic_converged\": " << (c.analytic_converged ? "true" : "false") << "}"
        << (i + 1 < cases.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

}  // namespace patchsec::testgen
