#include "patchsec/testgen/differential_runner.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "patchsec/core/session.hpp"
#include "patchsec/sim/seed_stream.hpp"

namespace patchsec::testgen {

namespace {

// Salt separating the simulation's replication streams from the generator's
// draws: the two uses of one scenario seed must not correlate.
constexpr std::uint64_t kSimulationSalt = 0x5eed0fdeadbeef01ull;

// Per-point z of a SIMULTANEOUS level-z band over `points` grid points
// (Bonferroni): the transient verdict is a whole-curve claim — "the analytic
// curve lies inside the band everywhere" — so the per-point intervals are
// widened until the familywise coverage matches the configured z.  Without
// this, a 5-point grid at per-point 95% misses ~1 - 0.95^5 ~ 23% of
// scenarios on independent points, blowing any sane miss budget with a
// correct pipeline.  Solved by bisection on the normal CDF (the per-point
// intervals themselves stay Student-t; the adjustment factor is normal-tail,
// which is what Bonferroni prescribes asymptotically).
double simultaneous_z(double z, std::size_t points) {
  if (points <= 1) return z;
  const auto tail = [](double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); };
  const double target = tail(z) / static_cast<double>(points);
  double lo = z, hi = z + 10.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    (tail(mid) > target ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

// Patch-window entry state of the transient mode: one server of every
// deployed role enters its patch window at t = 0 — the "patch wave" whose
// healing the curve tracks.  Deterministic (no seed dependence), so the
// analytic and simulated paths trivially agree on the start state.
std::map<enterprise::ServerRole, unsigned> patch_wave(const enterprise::RedundancyDesign& design) {
  std::map<enterprise::ServerRole, unsigned> down;
  for (const enterprise::ServerRole role :
       {enterprise::ServerRole::kDns, enterprise::ServerRole::kWeb, enterprise::ServerRole::kApp,
        enterprise::ServerRole::kDb}) {
    if (design.count(role) > 0) down.emplace(role, 1);
  }
  return down;
}

DifferentialCase run_case_transient(const GeneratedScenario& generated,
                                    const DifferentialOptions& options) {
  DifferentialCase result;
  result.scenario_seed = generated.scenario_seed;
  result.label = generated.label;
  result.design = generated.design.name();
  result.patch_interval_hours = generated.scenario.patch_interval_hours();
  result.grid_points = options.transient_grid.size();

  core::EngineOptions analytic_engine;
  analytic_engine.backend = core::EvalBackend::kAnalytic;
  analytic_engine.throw_on_divergence = false;
  analytic_engine.time_points = options.transient_grid;
  analytic_engine.initial_down = patch_wave(generated.design);
  core::Scenario analytic = generated.scenario;
  analytic.with_engine(analytic_engine);
  const core::Session analytic_session(std::move(analytic));
  const core::EvalReport analytic_report =
      analytic_session.evaluate_transient(generated.design);
  result.analytic_coa = analytic_report.coa;
  result.analytic_converged = analytic_report.converged();

  core::EngineOptions sim_engine = analytic_engine;
  sim_engine.backend = core::EvalBackend::kSimulation;
  sim_engine.simulation = options.simulation;
  sim_engine.simulation.seed = sim::splitmix64(generated.scenario_seed ^ kSimulationSalt);
  core::Scenario simulated = generated.scenario;
  simulated.with_engine(sim_engine);
  const core::Session sim_session(std::move(simulated));
  const core::EvalReport sim_report = sim_session.evaluate_transient(generated.design);
  result.simulated_coa = sim_report.coa;
  result.half_width_95 = sim_report.coa_half_width_95;

  const double z_point = simultaneous_z(options.z, options.transient_grid.size());
  result.lint_clean = analytic_report.lint_clean() && sim_report.lint_clean();
  result.inside_ci =
      sim_report.transient_agrees_with(analytic_report, z_point) && result.lint_clean;
  // Per-point deviations, for the report (the verdict above is the
  // authoritative band check).
  for (std::size_t j = 0; j < sim_report.transient.coa.size(); ++j) {
    const double deviation =
        std::abs(sim_report.transient.coa[j] - analytic_report.transient.coa[j]);
    if (deviation > result.worst_deviation) {
      result.worst_deviation = deviation;
      result.worst_point_hours = sim_report.transient.time_points_hours[j];
    }
  }
  if (!result.inside_ci) {
    // Count the failing points with exactly the band the verdict used.
    for (std::size_t j = 0; j < sim_report.transient.coa.size(); ++j) {
      if (!sim_report.transient_point_agrees(analytic_report, j, z_point)) {
        ++result.points_outside;
      }
    }
  }
  return result;
}

DifferentialCase run_case(const GeneratedScenario& generated, const DifferentialOptions& options) {
  if (options.mode == DifferentialMode::kTransient) {
    return run_case_transient(generated, options);
  }
  DifferentialCase result;
  result.scenario_seed = generated.scenario_seed;
  result.label = generated.label;
  result.design = generated.design.name();
  result.patch_interval_hours = generated.scenario.patch_interval_hours();

  // Analytic pass.  Divergence is surfaced, not thrown: a non-converged
  // solve shows up as analytic_converged == false next to the CI verdict.
  core::EngineOptions analytic_engine;
  analytic_engine.backend = core::EvalBackend::kAnalytic;
  analytic_engine.throw_on_divergence = false;
  core::Scenario analytic = generated.scenario;
  analytic.with_engine(analytic_engine);
  const core::Session analytic_session(std::move(analytic));
  const core::EvalReport analytic_report = analytic_session.evaluate(generated.design);
  result.analytic_coa = analytic_report.coa;
  result.analytic_converged = analytic_report.converged();

  // Simulation pass: same scenario, Monte-Carlo oracle, per-case seed
  // derived from the scenario seed.
  core::EngineOptions sim_engine;
  sim_engine.backend = core::EvalBackend::kSimulation;
  sim_engine.simulation = options.simulation;
  sim_engine.simulation.seed = sim::splitmix64(generated.scenario_seed ^ kSimulationSalt);
  core::Scenario simulated = generated.scenario;
  simulated.with_engine(sim_engine);
  const core::Session sim_session(std::move(simulated));
  const core::EvalReport sim_report = sim_session.evaluate(generated.design);
  result.simulated_coa = sim_report.coa;
  result.half_width_95 = sim_report.coa_half_width_95;
  result.lint_clean = analytic_report.lint_clean() && sim_report.lint_clean();

  // Third axis (kLumped): the same scenario through the symmetry-lumped
  // analytic engine.  The lumping is exact, so this is a deterministic check
  // against the flat solve PLUS the usual statistical check against the
  // simulation oracle — a lumping bug shows up in the former even when the
  // CI is wide enough to hide it.
  if (options.mode == DifferentialMode::kLumped) {
    core::EngineOptions lumped_engine = analytic_engine;
    lumped_engine.lumping = true;
    core::Scenario lumped = generated.scenario;
    lumped.with_engine(lumped_engine);
    const core::Session lumped_session(std::move(lumped));
    const core::EvalReport lumped_report = lumped_session.evaluate(generated.design);
    result.lumped_coa = lumped_report.coa;
    result.flat_lumped_deviation = std::abs(result.analytic_coa - result.lumped_coa);
    result.lumped_matches_flat = result.flat_lumped_deviation <= options.lumped_tolerance;
    result.analytic_converged = result.analytic_converged && lumped_report.converged();
    result.lint_clean = result.lint_clean && lumped_report.lint_clean();
    result.inside_ci = sim_report.agrees_with(analytic_report, options.z) &&
                       sim_report.agrees_with(lumped_report, options.z) &&
                       result.lumped_matches_flat && result.lint_clean;
    return result;
  }

  result.inside_ci = sim_report.agrees_with(analytic_report, options.z) && result.lint_clean;
  return result;
}

}  // namespace

const char* to_string(DifferentialMode mode) noexcept {
  switch (mode) {
    case DifferentialMode::kSteadyState:
      return "steady_state";
    case DifferentialMode::kTransient:
      return "transient";
    case DifferentialMode::kLumped:
      return "lumped";
  }
  return "unknown";
}

DifferentialRunner::DifferentialRunner(DifferentialOptions options)
    : options_(std::move(options)) {
  if (options_.scenarios == 0) {
    throw std::invalid_argument("DifferentialRunner: need at least 1 scenario");
  }
  if (!(options_.z > 0.0)) {
    throw std::invalid_argument("DifferentialRunner: z must be positive");
  }
  options_.simulation.validate();
  if (options_.mode == DifferentialMode::kLumped && !(options_.lumped_tolerance > 0.0)) {
    throw std::invalid_argument("DifferentialRunner: lumped_tolerance must be positive");
  }
  if (options_.mode == DifferentialMode::kTransient) {
    if (options_.transient_grid.empty()) {
      throw std::invalid_argument("DifferentialRunner: transient mode needs a time grid");
    }
    double previous = 0.0;
    for (double t : options_.transient_grid) {
      if (t < 0.0 || t < previous) {
        throw std::invalid_argument(
            "DifferentialRunner: transient grid must be ascending and non-negative");
      }
      previous = t;
    }
  }
}

DifferentialReport DifferentialRunner::run() const {
  DifferentialReport report;
  report.z = options_.z;
  report.mode = options_.mode;
  report.cases.reserve(options_.scenarios);
  ScenarioGenerator generator(options_.generator);
  for (std::size_t i = 0; i < options_.scenarios; ++i) {
    report.cases.push_back(run_case(generator.next(), options_));
    if (!report.cases.back().inside_ci) ++report.misses;
  }
  return report;
}

DifferentialCase DifferentialRunner::run_one(std::uint64_t scenario_seed,
                                             const DifferentialOptions& options) {
  return run_case(ScenarioGenerator::from_seed(scenario_seed, options.generator), options);
}

std::string DifferentialReport::to_json() const {
  // Schema v2 added "mode" and the transient band columns; v3 the
  // lumped-mode three-way columns; v4 the per-case "lint_clean" verdict of
  // the static model verifier.  Consumers of older reports can ignore keys
  // they do not know.
  std::ostringstream out;
  out << std::setprecision(12);
  out << "{\n  \"schema_version\": 4,\n  \"mode\": \"" << to_string(mode)
      << "\",\n  \"z\": " << z << ",\n  \"scenarios\": " << cases.size()
      << ",\n  \"misses\": " << misses << ",\n  \"cases\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const DifferentialCase& c = cases[i];
    out << "    {\"scenario_seed\": " << c.scenario_seed << ", \"label\": \"" << c.label
        << "\", \"design\": \"" << c.design
        << "\", \"patch_interval_hours\": " << c.patch_interval_hours
        << ", \"analytic_coa\": " << c.analytic_coa
        << ", \"simulated_coa\": " << c.simulated_coa
        << ", \"half_width_95\": " << c.half_width_95;
    if (mode == DifferentialMode::kTransient) {
      out << ", \"grid_points\": " << c.grid_points
          << ", \"points_outside\": " << c.points_outside
          << ", \"worst_point_hours\": " << c.worst_point_hours
          << ", \"worst_deviation\": " << c.worst_deviation;
    }
    if (mode == DifferentialMode::kLumped) {
      out << ", \"lumped_coa\": " << c.lumped_coa
          << ", \"flat_lumped_deviation\": " << c.flat_lumped_deviation
          << ", \"lumped_matches_flat\": " << (c.lumped_matches_flat ? "true" : "false");
    }
    out << ", \"inside_ci\": " << (c.inside_ci ? "true" : "false")
        << ", \"analytic_converged\": " << (c.analytic_converged ? "true" : "false")
        << ", \"lint_clean\": " << (c.lint_clean ? "true" : "false") << "}"
        << (i + 1 < cases.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

}  // namespace patchsec::testgen
