// CLI for the differential validation harness (see docs/TESTING.md).
//
//   differential_runner [--scenarios N] [--seed S] [--z Z]
//                       [--allowed-misses M] [--threads T] [--quick]
//                       [--transient] [--lumped] [--replications N]
//                       [--repro SCENARIO_SEED] [--output PATH]
//
//   --quick        reduced replication budget (CI smoke: fewer/shorter
//                  replications); the pass/fail semantics are unchanged.
//   --transient    cross-check the transient coa(t) curve (patch-wave start,
//                  default 0.5..24 h grid) instead of the steady-state COA:
//                  the analytic curve must lie inside the finite-horizon
//                  estimator's CI band at every grid point.  Transient
//                  replications are cheap (one 24 h trajectory each), so the
//                  default budget is 512 (see --replications).
//   --lumped       three-way steady-state check: every scenario is scored
//                  flat-analytic, lumped-analytic (EngineOptions::lumping)
//                  and simulated.  A case passes only when the lumped COA
//                  matches the flat COA to solver tolerance AND both land in
//                  the simulation CI.
//   --replications explicit replication budget for any mode.
//   --repro        replay ONE scenario from the seed a previous run logged,
//                  print its verdict and exit (0 = inside CI).
//
// Exit status: 0 when misses <= allowed_misses (or the repro case agrees),
// 1 otherwise, 2 on usage errors.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "patchsec/testgen/differential_runner.hpp"

namespace {

void print_case(const patchsec::testgen::DifferentialCase& c,
                patchsec::testgen::DifferentialMode mode) {
  if (mode == patchsec::testgen::DifferentialMode::kLumped) {
    std::printf("%s seed=%llu %-45s flat=%.9f lumped=%.9f (dev %.2e) sim=%.9f +/-%.9f\n",
                c.inside_ci ? "PASS" : "MISS", static_cast<unsigned long long>(c.scenario_seed),
                c.label.c_str(), c.analytic_coa, c.lumped_coa, c.flat_lumped_deviation,
                c.simulated_coa, c.half_width_95);
    return;
  }
  std::printf("%s seed=%llu %-45s analytic=%.9f sim=%.9f +/-%.9f\n",
              c.inside_ci ? "PASS" : "MISS", static_cast<unsigned long long>(c.scenario_seed),
              c.label.c_str(), c.analytic_coa, c.simulated_coa, c.half_width_95);
}

}  // namespace

int main(int argc, char** argv) {
  patchsec::testgen::DifferentialOptions options;
  std::string output;
  bool repro = false;
  bool replications_set = false;
  std::uint64_t repro_seed = 0;

  for (int i = 1; i < argc; ++i) {
    const auto next_arg = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--scenarios") == 0) {
      options.scenarios = std::strtoull(next_arg("--scenarios"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      options.generator.seed = std::strtoull(next_arg("--seed"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--z") == 0) {
      options.z = std::strtod(next_arg("--z"), nullptr);
    } else if (std::strcmp(argv[i], "--allowed-misses") == 0) {
      options.allowed_misses = std::strtoull(next_arg("--allowed-misses"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      options.simulation.threads =
          static_cast<unsigned>(std::strtoul(next_arg("--threads"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      options.simulation.replications = 16;
      options.simulation.warmup_hours = 1500.0;
      options.simulation.horizon_hours = 10000.0;
      replications_set = true;
    } else if (std::strcmp(argv[i], "--transient") == 0) {
      options.mode = patchsec::testgen::DifferentialMode::kTransient;
    } else if (std::strcmp(argv[i], "--lumped") == 0) {
      options.mode = patchsec::testgen::DifferentialMode::kLumped;
    } else if (std::strcmp(argv[i], "--replications") == 0) {
      options.simulation.replications = std::strtoull(next_arg("--replications"), nullptr, 10);
      replications_set = true;
    } else if (std::strcmp(argv[i], "--repro") == 0) {
      repro = true;
      repro_seed = std::strtoull(next_arg("--repro"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--output") == 0) {
      output = next_arg("--output");
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scenarios N] [--seed S] [--z Z] [--allowed-misses M]\n"
                   "          [--threads T] [--quick] [--transient] [--lumped]\n"
                   "          [--replications N] [--repro SCENARIO_SEED] [--output PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  // Transient replications simulate one short trajectory each; the 32-rep
  // steady-state default would leave a needlessly coarse band.
  if (options.mode == patchsec::testgen::DifferentialMode::kTransient && !replications_set) {
    options.simulation.replications = 512;
  }

  if (repro) {
    const auto c = patchsec::testgen::DifferentialRunner::run_one(repro_seed, options);
    print_case(c, options.mode);
    return c.inside_ci ? 0 : 1;
  }

  const patchsec::testgen::DifferentialRunner runner(options);
  const patchsec::testgen::DifferentialReport report = runner.run();
  for (const auto& c : report.cases) print_case(c, report.mode);
  std::printf("differential[%s]: %zu/%zu inside the %.2f-sigma CI (%zu misses, budget %zu)\n",
              patchsec::testgen::to_string(report.mode), report.cases.size() - report.misses,
              report.cases.size(), report.z, report.misses, options.allowed_misses);

  if (!output.empty()) {
    std::ofstream out(output);
    if (!out) {
      std::fprintf(stderr, "differential_runner: cannot write %s\n", output.c_str());
      return 2;
    }
    out << report.to_json();
    std::printf("wrote %s\n", output.c_str());
  }
  return report.passed(options.allowed_misses) ? 0 : 1;
}
