#include "patchsec/testgen/scenario_generator.hpp"

#include <cmath>
#include <random>
#include <stdexcept>
#include <utility>

#include "patchsec/avail/network_srn.hpp"
#include "patchsec/avail/server_srn.hpp"
#include "patchsec/petri/verify.hpp"
#include "patchsec/sim/seed_stream.hpp"

namespace patchsec::testgen {

namespace {

namespace ent = patchsec::enterprise;

double log_uniform(std::mt19937_64& rng, double lo, double hi) {
  std::uniform_real_distribution<double> u(std::log(lo), std::log(hi));
  return std::exp(u(rng));
}

// Scale every mean time of the spec's failure/recovery behaviour by an
// independent log-uniform factor in [1/f, f] — the "rate perturbation" axis.
void perturb_times(ent::FailureRecoveryTimes& times, std::mt19937_64& rng, double factor) {
  const auto scale = [&](double& hours) { hours *= log_uniform(rng, 1.0 / factor, factor); };
  scale(times.hw_mtbf);
  scale(times.hw_mttr);
  scale(times.os_mtbf);
  scale(times.os_mttr);
  scale(times.os_reboot);
  scale(times.svc_mtbf);
  scale(times.svc_mttr);
  scale(times.svc_reboot);
}

// Randomly add reachability edges to the three-tier policy (monotone: attack
// paths can only appear, never vanish, so the HARM stays well-formed).  This
// is the "guard perturbation" axis — the policy hooks are the enabling
// predicates of the topology.
ent::ReachabilityPolicy perturb_policy(std::mt19937_64& rng) {
  ent::ReachabilityPolicy base = ent::ReachabilityPolicy::three_tier();
  std::uniform_real_distribution<double> u(0.0, 1.0);
  const bool attacker_reaches_app = u(rng) < 0.25;
  const bool web_reaches_db = u(rng) < 0.25;
  if (!attacker_reaches_app && !web_reaches_db) return base;

  ent::ReachabilityPolicy policy = base;
  policy.attacker_reaches = [inner = base.attacker_reaches,
                             attacker_reaches_app](ent::ServerRole role) {
    if (attacker_reaches_app && role == ent::ServerRole::kApp) return true;
    return inner(role);
  };
  policy.reaches = [inner = base.reaches, web_reaches_db](ent::ServerRole from,
                                                          ent::ServerRole to) {
    if (web_reaches_db && from == ent::ServerRole::kWeb && to == ent::ServerRole::kDb) {
      return true;
    }
    return inner(from, to);
  };
  return policy;
}

}  // namespace

const char* to_string(DegenerateShape shape) noexcept {
  switch (shape) {
    case DegenerateShape::kNone:
      return "random";
    case DegenerateShape::kSingleHost:
      return "single-host";
    case DegenerateShape::kGlacialRepair:
      return "glacial-repair";
    case DegenerateShape::kSaturatedCapacity:
      return "saturated-capacity";
    case DegenerateShape::kRapidCadence:
      return "rapid-cadence";
  }
  return "unknown";
}

ScenarioGenerator::ScenarioGenerator(GeneratorOptions options) : options_(options) {
  if (options_.max_servers_per_role == 0) {
    throw std::invalid_argument("ScenarioGenerator: max_servers_per_role must be >= 1");
  }
  if (!(options_.min_patch_interval_hours > 0.0) ||
      options_.max_patch_interval_hours < options_.min_patch_interval_hours) {
    throw std::invalid_argument("ScenarioGenerator: bad patch-interval range");
  }
  if (!(options_.rate_perturbation_factor >= 1.0)) {
    throw std::invalid_argument("ScenarioGenerator: rate_perturbation_factor must be >= 1");
  }
  if (options_.degenerate_fraction < 0.0 || options_.degenerate_fraction > 1.0) {
    throw std::invalid_argument("ScenarioGenerator: degenerate_fraction must be in [0, 1]");
  }
}

std::uint64_t ScenarioGenerator::scenario_seed_for(std::uint64_t campaign_seed,
                                                   std::uint64_t index) noexcept {
  // The same counter-based derivation the simulator uses for replication
  // streams: scenario i's seed depends only on (campaign, i).
  return sim::stream_seed(campaign_seed, index);
}

GeneratedScenario ScenarioGenerator::next() {
  return from_seed(scenario_seed_for(options_.seed, counter_++), options_);
}

std::vector<GeneratedScenario> ScenarioGenerator::generate(std::size_t count) {
  std::vector<GeneratedScenario> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(next());
  return out;
}

GeneratedScenario ScenarioGenerator::from_seed(std::uint64_t scenario_seed,
                                               const GeneratorOptions& options) {
  std::mt19937_64 rng(scenario_seed);
  std::uniform_real_distribution<double> u01(0.0, 1.0);

  GeneratedScenario generated;
  generated.scenario_seed = scenario_seed;

  // Shape roll first so from_seed and next() follow one code path.
  if (u01(rng) < options.degenerate_fraction) {
    std::uniform_int_distribution<int> pick(0, 3);
    switch (pick(rng)) {
      case 0:
        generated.shape = DegenerateShape::kSingleHost;
        break;
      case 1:
        generated.shape = DegenerateShape::kGlacialRepair;
        break;
      case 2:
        generated.shape = DegenerateShape::kSaturatedCapacity;
        break;
      default:
        generated.shape = DegenerateShape::kRapidCadence;
        break;
    }
  }

  // Specs: the paper's case study with perturbed failure/recovery behaviour.
  std::map<ent::ServerRole, ent::ServerSpec> specs = ent::paper_server_specs();
  for (auto& [role, spec] : specs) {
    perturb_times(spec.times, rng, options.rate_perturbation_factor);
    if (generated.shape == DegenerateShape::kGlacialRepair) {
      // Recovery rate collapses to near zero: reboots take O(100) hours
      // instead of minutes.  (Exactly zero would make the SRN ill-posed —
      // timed rates must stay positive.)
      spec.times.os_reboot = log_uniform(rng, 100.0, 250.0);
      spec.times.svc_reboot = log_uniform(rng, 100.0, 250.0);
    }
  }

  // Design.
  std::uniform_int_distribution<unsigned> count_dist(1, options.max_servers_per_role);
  for (std::size_t i = 0; i < ent::kRoleCount; ++i) {
    generated.design.counts[i] = count_dist(rng);
  }
  if (generated.shape == DegenerateShape::kSingleHost) {
    generated.design.counts = {1, 1, 1, 1};
  } else if (generated.shape == DegenerateShape::kSaturatedCapacity) {
    generated.design.counts.fill(options.max_servers_per_role);
  }

  // Patch cadence.
  double interval = log_uniform(rng, options.min_patch_interval_hours,
                                options.max_patch_interval_hours);
  if (generated.shape == DegenerateShape::kRapidCadence) {
    interval = options.min_patch_interval_hours;
  }

  generated.scenario = core::Scenario{}
                           .with_specs(std::move(specs))
                           .with_policy(perturb_policy(rng))
                           .with_patch_interval(interval)
                           .with_design(generated.design);
  generated.label = std::string(to_string(generated.shape)) + " " + generated.design.name() +
                    " @ " + std::to_string(interval) + "h";

  if (options.lint_generated) {
    for (const core::StageVerification& stage : lint_scenario(generated)) {
      if (!stage.report.clean()) {
        throw std::logic_error("ScenarioGenerator: generated net '" + stage.stage +
                               "' (seed " + std::to_string(scenario_seed) +
                               ") failed static verification:\n" + petri::format(stage.report));
      }
    }
  }
  return generated;
}

std::vector<core::StageVerification> lint_scenario(const GeneratedScenario& generated) {
  std::vector<core::StageVerification> stages;
  avail::ServerSrnOptions srn_options;
  srn_options.patch_interval_hours = generated.scenario.patch_interval_hours();
  std::map<ent::ServerRole, avail::AggregatedRates> unit_rates;
  for (const auto& [role, spec] : generated.scenario.specs()) {
    stages.push_back(core::StageVerification{
        std::string("server:") + ent::to_string(role),
        petri::verify_model(avail::build_server_srn(spec, srn_options).model)});
    // The network lint is structural: unit rates stand in for the aggregated
    // Table V rates so no lower-layer steady-state solve is needed.
    unit_rates.emplace(role, avail::AggregatedRates{1.0, 1.0, 0.5, 0.5});
  }
  const avail::NetworkSrn net = avail::build_network_srn(generated.design, unit_rates);
  std::vector<std::pair<std::string, petri::RewardFunction>> rewards;
  rewards.emplace_back("coa", net.coa_reward());
  stages.push_back(core::StageVerification{"network", petri::verify_model(net.model, rewards)});
  return stages;
}

}  // namespace patchsec::testgen
