#pragma once
// Continuous-time Markov chain with named states, rate transitions and rate
// rewards.  This is the analysis backend that the SRN layer lowers into.

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "patchsec/linalg/csr_matrix.hpp"
#include "patchsec/linalg/steady_state.hpp"

namespace patchsec::linalg {
class StationarySolver;
}  // namespace patchsec::linalg

namespace patchsec::ctmc {

/// Index of a CTMC state.
using StateIndex = std::size_t;

/// A single rate transition from -> to with rate > 0.
struct RateTransition {
  StateIndex from = 0;
  StateIndex to = 0;
  double rate = 0.0;
};

/// Finite CTMC.  States are created first (optionally labeled), then
/// transitions added; the generator is assembled lazily and cached.
class Ctmc {
 public:
  Ctmc() = default;

  /// Add a state, returning its index.  Label is kept for diagnostics.
  StateIndex add_state(std::string label = {});

  /// Bulk-create n unlabeled states; returns index of the first.
  StateIndex add_states(std::size_t n);

  /// Pre-size the state/transition storage (the reachability generator knows
  /// both counts up front).
  void reserve(std::size_t states, std::size_t transitions);

  /// Add transition from -> to with the given positive rate.  Self loops are
  /// rejected (they are meaningless in a CTMC).
  void add_transition(StateIndex from, StateIndex to, double rate);

  [[nodiscard]] std::size_t state_count() const noexcept { return labels_.size(); }
  [[nodiscard]] const std::string& label(StateIndex s) const { return labels_.at(s); }
  [[nodiscard]] const std::vector<RateTransition>& transitions() const noexcept { return transitions_; }

  /// Infinitesimal generator Q (rows sum to zero).  Assembled by a
  /// counting/bucket pass over the transition list (per-row gather, small
  /// per-row sorts, duplicate merge) directly into CSR form — no global
  /// triplet sort.
  [[nodiscard]] linalg::CsrMatrix generator() const;

  /// Stationary distribution (requires an irreducible chain; the solver
  /// result carries convergence diagnostics).
  [[nodiscard]] linalg::SteadyStateResult steady_state(
      const linalg::SteadyStateOptions& options = {}) const;

  /// Stationary distribution computed through a caller-owned solver
  /// workspace, so repeated solves of same-structure chains reuse the cached
  /// transpose/diagonal/scratch (see linalg::StationarySolver).
  [[nodiscard]] linalg::SteadyStateResult steady_state(
      linalg::StationarySolver& workspace, const linalg::SteadyStateOptions& options) const;

  /// Expected steady-state reward  sum_s pi_s * reward_s.  `rewards` must
  /// have one entry per state.
  [[nodiscard]] double expected_steady_state_reward(
      const std::vector<double>& rewards,
      const linalg::SteadyStateOptions& options = {}) const;

  /// Total exit rate of a state (sum of outgoing rates).
  [[nodiscard]] double exit_rate(StateIndex s) const;

  /// States reachable from `start` following positive-rate transitions.
  [[nodiscard]] std::vector<bool> reachable_from(StateIndex start) const;

  /// True when every state can reach every other state (single communicating
  /// class) — the precondition for a meaningful stationary distribution.
  [[nodiscard]] bool is_irreducible() const;

 private:
  std::vector<std::string> labels_;
  std::vector<RateTransition> transitions_;
};

/// Result of a strong-lumpability check: the quotient chain plus the evidence
/// that the partition really was lumpable.
struct LumpabilityResult {
  Ctmc quotient;          ///< one state per class; aggregate class-to-class rates.
  bool lumpable = false;  ///< true when max_deviation <= tolerance.
  /// Largest spread, over all (class I, class J != I) pairs, between the
  /// per-member aggregate rates  r_i(J) = sum_{j in J} q_ij  for i in I.
  /// Exactly-symmetric constructions land at round-off.
  double max_deviation = 0.0;
};

/// Strong-lumpability certificate: verify that `partition` (state -> class,
/// classes 0..class_count-1) is an exact lumping of `chain` — for every class
/// J != I the aggregate rate into J must be the same from every member of I —
/// and build the quotient chain (class-to-class rate = the member-averaged
/// aggregate).  This check needs only the chain itself, no knowledge of how
/// the partition was derived, so it is an independent witness for the
/// SRN-level symmetry lumping pass (quotient-of-chain must equal
/// chain-of-quotient).  Throws std::invalid_argument on a malformed
/// partition (size mismatch, class id out of range, empty class).
[[nodiscard]] LumpabilityResult lump_states(const Ctmc& chain,
                                            const std::vector<std::size_t>& partition,
                                            std::size_t class_count, double tolerance = 1e-9);

}  // namespace patchsec::ctmc
