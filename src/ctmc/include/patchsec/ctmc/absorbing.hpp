#pragma once
// Absorbing-chain analysis: mean time to absorption and absorption
// probabilities.  Used for mean-time-to-service-interruption style metrics
// and as a second oracle for the aggregation equations (mean holding time in
// the patch-down macro state equals MTTR).

#include <vector>

#include "patchsec/ctmc/ctmc.hpp"

namespace patchsec::ctmc {

struct AbsorbingAnalysis {
  /// Expected time to reach any absorbing state, per transient start state.
  /// Entries for absorbing states are 0.
  std::vector<double> mean_time_to_absorption;
  /// Indices of absorbing states (no outgoing transitions).
  std::vector<StateIndex> absorbing_states;
};

/// Analyze the chain, treating states without outgoing transitions as
/// absorbing.  Throws std::domain_error when no absorbing state exists or
/// when some transient state cannot reach one.
[[nodiscard]] AbsorbingAnalysis analyze_absorbing(const Ctmc& chain);

/// Mean first-passage time from `start` into the set `targets` (treated as
/// absorbing by cutting their outgoing transitions).
[[nodiscard]] double mean_first_passage_time(const Ctmc& chain, StateIndex start,
                                             const std::vector<StateIndex>& targets);

/// States whose strongly connected component has a transition into another
/// component: once left they are never revisited, so their long-run
/// probability is zero.  An ergodic chain has none; this is the dynamic half
/// of the verifier's absorbing-trap oracle (petri::verify V-ERGO-003/-004 —
/// a net-level trap surfaces here as a nonempty transient set).
[[nodiscard]] std::vector<StateIndex> transient_states(const Ctmc& chain);

}  // namespace patchsec::ctmc
