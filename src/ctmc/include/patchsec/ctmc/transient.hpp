#pragma once
// Transient analysis of a CTMC via Jensen's uniformization:
//   pi(t) = sum_{k>=0} Poisson(k; Lambda t) * pi(0) P^k,  P = I + Q/Lambda.
// The Poisson tail is truncated once the accumulated mass exceeds
// 1 - epsilon; for stiff patch models this keeps the expansion short.

#include <cstddef>
#include <vector>

#include "patchsec/ctmc/ctmc.hpp"

namespace patchsec::ctmc {

struct TransientOptions {
  double epsilon = 1e-12;        ///< truncation error bound on Poisson mass.
  std::size_t max_terms = 2'000'000;  ///< hard cap on expansion length.
};

/// Distribution at time `t` starting from `initial` (must sum to 1).
[[nodiscard]] std::vector<double> transient_distribution(const Ctmc& chain,
                                                         const std::vector<double>& initial,
                                                         double t,
                                                         const TransientOptions& options = {});

/// Expected instantaneous reward at time t:  sum_s pi_s(t) r_s.
[[nodiscard]] double transient_reward(const Ctmc& chain,
                                      const std::vector<double>& initial,
                                      const std::vector<double>& rewards,
                                      double t,
                                      const TransientOptions& options = {});

/// Expected accumulated reward over [0, t] (trapezoidal integration of the
/// instantaneous reward over `steps` uniform sub-intervals).  Interval
/// availability is this divided by t with an indicator reward.
[[nodiscard]] double accumulated_reward(const Ctmc& chain,
                                        const std::vector<double>& initial,
                                        const std::vector<double>& rewards,
                                        double t,
                                        std::size_t steps = 64,
                                        const TransientOptions& options = {});

}  // namespace patchsec::ctmc
