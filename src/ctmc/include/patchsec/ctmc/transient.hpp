#pragma once
// One-shot transient analysis of a CTMC via Jensen's uniformization:
//   pi(t) = sum_{k>=0} Poisson(k; Lambda t) * pi(0) P^k,  P = I + Q/Lambda.
//
// These are stateless convenience wrappers over ctmc::TransientSolver
// (transient_solver.hpp) — each call builds the uniformized matrix, runs one
// evaluation and discards the workspace.  Callers evaluating many time
// points, curves, or repeated chains should hold a TransientSolver instead:
// one prepare() amortizes the matrix build over every evaluation.

#include <cstddef>
#include <vector>

#include "patchsec/ctmc/ctmc.hpp"
#include "patchsec/ctmc/transient_solver.hpp"

namespace patchsec::ctmc {

/// Distribution at time `t` starting from `initial` (must sum to 1).
[[nodiscard]] std::vector<double> transient_distribution(const Ctmc& chain,
                                                         const std::vector<double>& initial,
                                                         double t,
                                                         const TransientOptions& options = {});

/// Expected instantaneous reward at time t:  sum_s pi_s(t) r_s.
[[nodiscard]] double transient_reward(const Ctmc& chain,
                                      const std::vector<double>& initial,
                                      const std::vector<double>& rewards,
                                      double t,
                                      const TransientOptions& options = {});

/// Expected accumulated reward over [0, t], evaluated exactly through the
/// uniformization series (TransientSolver::accumulated_reward).  Interval
/// availability is this divided by t with an indicator reward.  `steps` is
/// the legacy trapezoidal-quadrature knob: it must still be positive (the
/// historical contract) but no longer limits accuracy.
[[nodiscard]] double accumulated_reward(const Ctmc& chain,
                                        const std::vector<double>& initial,
                                        const std::vector<double>& rewards,
                                        double t,
                                        std::size_t steps = 64,
                                        const TransientOptions& options = {});

}  // namespace patchsec::ctmc
