#pragma once
/// \file transient_solver.hpp
/// \brief Reusable workspace for transient CTMC analysis by Jensen's
/// uniformization with Fox-Glynn-style Poisson weight truncation.
///
/// Uniformization rewrites the transient distribution of a CTMC with
/// generator Q as a Poisson mixture over the powers of the uniformized DTMC
/// P = I + Q/Lambda (Lambda >= max exit rate):
///
///   pi(t)          = sum_k Poisson(k; Lambda t) * pi(0) P^k
///   int_0^t pi(s)ds = (1/Lambda) * sum_k (1 - F(k; Lambda t)) * pi(0) P^k
///
/// where F is the Poisson CDF.  The solver computes the Poisson weight
/// window the way Fox & Glynn do: start at the mode floor(Lambda t), expand
/// outward by the ratio recurrences until the captured mass reaches
/// 1 - epsilon, and normalize the surviving weights — underflow-free for
/// large Lambda t, and the left truncation point skips accumulating terms
/// that cannot contribute (their vector iterations still run, but no
/// weight-scaled accumulation is paid below the window).
///
/// A TransientSolver is a workspace in the linalg::StationarySolver mold:
///
///  * prepare(chain) builds the uniformized matrix ONCE; every subsequent
///    time point, curve, or accumulated-reward evaluation on the same chain
///    reuses it.  Re-preparing with a chain of identical sparsity structure
///    refreshes values in place (no allocation) — the schedule-sweep path,
///    where only rates change between cadences;
///  * all per-evaluation scratch (the power-iterate vectors, the Poisson
///    weight window) lives in the workspace, so evaluating a whole curve
///    performs no per-time-point allocations once warm;
///  * reward_curve() steps between ascending grid points — pi(t_j) is
///    advanced from pi(t_{j-1}) with a fresh Poisson window over
///    Lambda * (t_j - t_{j-1}) — so a G-point curve costs O(Lambda * t_G)
///    matrix-vector products in total, not O(G * Lambda * t_G).
///
/// A TransientSolver is NOT thread-safe; hold one per thread
/// (core::Session keeps one per worker thread, like StationarySolver).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "patchsec/ctmc/ctmc.hpp"
#include "patchsec/linalg/csr_matrix.hpp"
#include "patchsec/linalg/spmv_kernel.hpp"

namespace patchsec::ctmc {

/// Truncation policy of the uniformization expansion (shared by the
/// one-shot helpers in transient.hpp and the solver below).
struct TransientOptions {
  double epsilon = 1e-12;             ///< truncation error bound on Poisson mass.
  std::size_t max_terms = 2'000'000;  ///< hard cap on expansion length.

  /// Which inner loop drives the expansion.
  enum class Kernel : std::uint8_t {
    kAuto,    ///< linalg::SpmvKernel — SELL-8 layout, CPUID-dispatched
              ///< SIMD, fused weight-accumulation/reward-reduction passes.
    kScalar,  ///< the historical in-loop scalar CSR pass, kept bit-exact as
              ///< the reference trajectory (and the portable worst case).
  };
  Kernel kernel = Kernel::kAuto;

  /// Worker threads for the per-grid-point reward reductions over a panel in
  /// reward_curve_multi (1 = serial).  Each panel column's dot product is
  /// computed whole, in fixed state order, by exactly one thread — results
  /// are bit-identical for every thread count.
  std::size_t reduction_threads = 1;
};

/// How the last evaluation went: the uniformization constant, the Fox-Glynn
/// window, and the work performed.  Counters accumulate over every
/// evaluation since the last prepare() (a stepped curve adds each step's
/// window), so they measure the full cost of a curve.
struct TransientDiagnostics {
  double uniformization_rate = 0.0;  ///< Lambda.
  std::size_t left_point = 0;        ///< Fox-Glynn left truncation of the last window.
  std::size_t right_point = 0;       ///< right truncation of the last window.
  /// Matrix SWEEPS since prepare().  A panel step advances rhs_count vectors
  /// in ONE sweep and counts once — multiply by rhs_count for per-vector
  /// work, so the counter stays an honest traffic metric.
  std::size_t matvec_count = 0;
  /// Widest panel advanced since prepare() (1 = single-vector evaluations
  /// only; 0 = nothing evaluated yet).
  std::size_t rhs_count = 0;
  /// Inner-loop id of the last evaluation: "csr-scalar" for the historical
  /// reference pass, or the dispatched linalg::SpmvKernel name
  /// ("sell8-avx512" / "sell8-avx2" / "sell8-scalar").
  std::string kernel;
  double poisson_mass = 0.0;         ///< captured (pre-normalization) mass, last window.
  double wall_time_seconds = 0.0;    ///< evaluation time since prepare().
};

class TransientSolver {
 public:
  TransientSolver() = default;
  explicit TransientSolver(TransientOptions options) : options_(options) {}

  /// Build (or, for a structurally identical chain, refresh in place) the
  /// uniformized matrix P = I + Q/Lambda.  Must be called before any
  /// evaluation; call again whenever the chain changes.  Throws
  /// std::invalid_argument on an empty chain.
  void prepare(const Ctmc& chain);

  [[nodiscard]] bool prepared() const noexcept { return states_ > 0; }
  [[nodiscard]] std::size_t state_count() const noexcept { return states_; }

  /// pi(t) from `initial` (must sum to ~1), written into `out` (resized).
  /// Throws std::invalid_argument on size mismatch / negative t and
  /// std::logic_error when prepare() has not run.
  void distribution_at(const std::vector<double>& initial, double t, std::vector<double>& out);

  /// Expected instantaneous reward  r . pi(t).
  [[nodiscard]] double reward_at(const std::vector<double>& initial,
                                 const std::vector<double>& rewards, double t);

  /// Expected accumulated reward  int_0^t r . pi(s) ds, evaluated exactly
  /// through the uniformization series (no quadrature grid).
  [[nodiscard]] double accumulated_reward(const std::vector<double>& initial,
                                          const std::vector<double>& rewards, double t);

  /// The reward curve r . pi(t_j) over an ascending (non-negative,
  /// non-decreasing) time grid, stepping between points; `values` is resized
  /// to the grid.  Returns the accumulated reward int_0^{t_back} r . pi(s) ds
  /// — both measures ride the same vector iterations.
  double reward_curve(const std::vector<double>& initial, const std::vector<double>& rewards,
                      const std::vector<double>& time_points, std::vector<double>& values);

  /// reward_curve for B initial distributions AT ONCE over the same chain,
  /// grid and reward vector: the iterates advance as one column-major panel,
  /// so every expansion term costs ONE sweep over the matrix instead of B
  /// (diagnostics().matvec_count counts sweeps; rhs_count records B).
  /// `curves[b][j]` receives r . pi_b(t_j); the return value is the per-b
  /// accumulated reward.  Agreement with B sequential reward_curve calls is
  /// documented at ~1e-12 (the panel kernel reduces in a different
  /// association order).  Under TransientOptions::Kernel::kScalar the call
  /// degrades to exactly those sequential solves (the reference mode).
  std::vector<double> reward_curve_multi(const std::vector<std::vector<double>>& initials,
                                         const std::vector<double>& rewards,
                                         const std::vector<double>& time_points,
                                         std::vector<std::vector<double>>& curves);

  [[nodiscard]] const TransientOptions& options() const noexcept { return options_; }
  void set_options(const TransientOptions& options) { options_ = options; }
  [[nodiscard]] const TransientDiagnostics& diagnostics() const noexcept { return diagnostics_; }

  /// Number of prepare() calls that rebuilt the matrix structure (a
  /// same-structure refresh does not count; the first build counts as one).
  [[nodiscard]] std::size_t structure_builds() const noexcept { return builds_; }
  /// Number of prepare() calls served by the value-refresh fast path.
  [[nodiscard]] std::size_t structure_reuses() const noexcept { return reuses_; }

  /// The SIMD kernel layer's own build/reuse counters (0 builds until the
  /// first Kernel::kAuto evaluation — the layout compiles lazily).
  [[nodiscard]] std::size_t kernel_structure_builds() const noexcept {
    return kernel_.structure_builds();
  }
  [[nodiscard]] std::size_t kernel_structure_reuses() const noexcept {
    return kernel_.structure_reuses();
  }

  /// Drop the cached matrix and scratch (counters are kept).
  void reset();

 private:
  /// Fill weights_ with the normalized Poisson(k; m) window [left_, right_]
  /// capturing mass >= 1 - epsilon, expanding outward from the mode.
  void poisson_window(double m);

  /// Advance `state` (a distribution) to time-offset dt ahead, accumulating
  /// r . pi into *accumulated when non-null.  `state` is replaced by the
  /// (renormalized) advanced distribution.
  void step(std::vector<double>& state, const std::vector<double>* rewards, double dt,
            double* accumulated);

  /// Panel counterpart of step(): advance the column-major m-wide `panel`
  /// (element (b, s) at panel[s*m + b], every column a distribution) by dt,
  /// adding each column's accumulated reward into accumulated[0..m).
  void step_panel(std::vector<double>& panel, std::size_t m, const std::vector<double>& rewards,
                  double dt, double* accumulated);

  /// out[b] = dot(panel column b, rewards), threaded per column when
  /// options_.reduction_threads > 1 (bit-identical either way).
  void panel_column_dots(const std::vector<double>& panel, std::size_t m,
                         const std::vector<double>& rewards, std::vector<double>& out) const;

  /// Compile (or value-refresh) kernel_ from the cached uniformized matrix.
  void ensure_kernel();

  TransientOptions options_;
  TransientDiagnostics diagnostics_;

  // Uniformized DTMC P = I + Q/Lambda in CSR form, plus the structure of the
  // generator it was derived from (for the refresh fast path).
  std::size_t states_ = 0;
  double lambda_ = 0.0;
  std::vector<std::size_t> p_row_offsets_;
  std::vector<std::size_t> p_col_indices_;
  std::vector<double> p_values_;
  std::vector<std::size_t> q_row_offsets_;
  std::vector<std::size_t> q_col_indices_;

  // Poisson window and power-iterate scratch.
  std::vector<double> weights_;
  std::vector<double> left_scratch_;
  std::size_t left_ = 0;
  std::size_t right_ = 0;
  double mass_ = 0.0;
  std::vector<double> term_;
  std::vector<double> next_;
  std::vector<double> accum_;
  std::vector<double> state_;

  // SIMD kernel workspace over P (compiled lazily on the first kAuto step
  // after a prepare(), so kScalar evaluations never pay the layout build)
  // and the panel-stepping scratch.
  linalg::SpmvKernel kernel_;
  bool kernel_fresh_ = false;
  std::vector<double> panel_term_;
  std::vector<double> panel_next_;
  std::vector<double> panel_accum_;
  std::vector<double> panel_dots_;
  std::vector<double> panel_sums_;

  std::size_t builds_ = 0;
  std::size_t reuses_ = 0;
};

}  // namespace patchsec::ctmc
