#include "patchsec/ctmc/transient.hpp"

#include <stdexcept>

namespace patchsec::ctmc {

std::vector<double> transient_distribution(const Ctmc& chain, const std::vector<double>& initial,
                                           double t, const TransientOptions& options) {
  if (initial.size() != chain.state_count()) {
    throw std::invalid_argument("transient: initial size mismatch");
  }
  if (t < 0.0) throw std::invalid_argument("transient: negative time");
  TransientSolver solver(options);
  solver.prepare(chain);
  std::vector<double> out;
  solver.distribution_at(initial, t, out);
  return out;
}

double transient_reward(const Ctmc& chain, const std::vector<double>& initial,
                        const std::vector<double>& rewards, double t,
                        const TransientOptions& options) {
  if (rewards.size() != chain.state_count()) {
    throw std::invalid_argument("transient_reward: reward size mismatch");
  }
  TransientSolver solver(options);
  solver.prepare(chain);
  return solver.reward_at(initial, rewards, t);
}

double accumulated_reward(const Ctmc& chain, const std::vector<double>& initial,
                          const std::vector<double>& rewards, double t, std::size_t steps,
                          const TransientOptions& options) {
  if (steps == 0) throw std::invalid_argument("accumulated_reward: steps must be positive");
  if (t < 0.0) throw std::invalid_argument("accumulated_reward: negative horizon");
  if (t == 0.0) return 0.0;
  TransientSolver solver(options);
  solver.prepare(chain);
  return solver.accumulated_reward(initial, rewards, t);
}

}  // namespace patchsec::ctmc
