#include "patchsec/ctmc/transient.hpp"

#include <cmath>
#include <stdexcept>

#include "patchsec/linalg/vector_ops.hpp"

namespace patchsec::ctmc {

namespace {

double max_exit_rate(const Ctmc& chain) {
  double m = 0.0;
  for (std::size_t s = 0; s < chain.state_count(); ++s) m = std::max(m, chain.exit_rate(s));
  return m;
}

}  // namespace

std::vector<double> transient_distribution(const Ctmc& chain, const std::vector<double>& initial,
                                           double t, const TransientOptions& options) {
  const std::size_t n = chain.state_count();
  if (initial.size() != n) throw std::invalid_argument("transient: initial size mismatch");
  if (t < 0.0) throw std::invalid_argument("transient: negative time");
  if (t == 0.0) return initial;

  const double lambda = std::max(max_exit_rate(chain) * 1.02, 1e-12);
  const linalg::CsrMatrix q = chain.generator();

  // Poisson(k; m) with m = lambda * t, computed iteratively in linear space
  // with rescaling to dodge underflow for large m.
  const double m = lambda * t;

  std::vector<double> term = initial;  // pi(0) P^k
  std::vector<double> piq(n);
  std::vector<double> result(n, 0.0);

  // log-space Poisson accumulation.
  double log_pk = -m;  // log Poisson(0)
  double mass = 0.0;
  for (std::size_t k = 0; k <= options.max_terms; ++k) {
    const double pk = std::exp(log_pk);
    if (pk > 0.0) {
      for (std::size_t i = 0; i < n; ++i) result[i] += pk * term[i];
      mass += pk;
    }
    if (mass >= 1.0 - options.epsilon) break;
    // term <- term * P = term + (term*Q)/lambda
    q.left_multiply(term, piq);
    for (std::size_t i = 0; i < n; ++i) {
      term[i] += piq[i] / lambda;
      if (term[i] < 0.0) term[i] = 0.0;  // round-off guard
    }
    log_pk += std::log(m) - std::log(static_cast<double>(k + 1));
  }
  if (mass < 1e-9) {
    throw std::runtime_error(
        "uniformization truncated before any Poisson mass accumulated; raise max_terms "
        "(Lambda*t is too large for the configured expansion length)");
  }
  // Distribute the truncated tail proportionally (renormalize).
  linalg::normalize_probability(result);
  return result;
}

double transient_reward(const Ctmc& chain, const std::vector<double>& initial,
                        const std::vector<double>& rewards, double t,
                        const TransientOptions& options) {
  if (rewards.size() != chain.state_count()) {
    throw std::invalid_argument("transient_reward: reward size mismatch");
  }
  const std::vector<double> pi = transient_distribution(chain, initial, t, options);
  return linalg::dot(pi, rewards);
}

double accumulated_reward(const Ctmc& chain, const std::vector<double>& initial,
                          const std::vector<double>& rewards, double t, std::size_t steps,
                          const TransientOptions& options) {
  if (steps == 0) throw std::invalid_argument("accumulated_reward: steps must be positive");
  if (t < 0.0) throw std::invalid_argument("accumulated_reward: negative horizon");
  if (t == 0.0) return 0.0;
  const double h = t / static_cast<double>(steps);
  double acc = 0.0;
  double prev = transient_reward(chain, initial, rewards, 0.0, options);
  for (std::size_t k = 1; k <= steps; ++k) {
    const double cur = transient_reward(chain, initial, rewards, h * static_cast<double>(k), options);
    acc += 0.5 * (prev + cur) * h;
    prev = cur;
  }
  return acc;
}

}  // namespace patchsec::ctmc
