#include "patchsec/ctmc/ctmc.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "patchsec/linalg/stationary_solver.hpp"
#include "patchsec/linalg/vector_ops.hpp"

namespace patchsec::ctmc {

StateIndex Ctmc::add_state(std::string label) {
  labels_.push_back(std::move(label));
  return labels_.size() - 1;
}

StateIndex Ctmc::add_states(std::size_t n) {
  const StateIndex first = labels_.size();
  labels_.resize(labels_.size() + n);
  return first;
}

void Ctmc::reserve(std::size_t states, std::size_t transitions) {
  labels_.reserve(labels_.size() + states);
  transitions_.reserve(transitions_.size() + transitions);
}

void Ctmc::add_transition(StateIndex from, StateIndex to, double rate) {
  if (from >= state_count() || to >= state_count()) {
    throw std::out_of_range("Ctmc::add_transition: state out of range");
  }
  if (from == to) throw std::invalid_argument("Ctmc::add_transition: self loop");
  if (!(rate > 0.0) || !std::isfinite(rate)) {
    throw std::invalid_argument("Ctmc::add_transition: rate must be positive and finite");
  }
  transitions_.push_back({from, to, rate});
}

linalg::CsrMatrix Ctmc::generator() const {
  const std::size_t n = state_count();
  // Counting assembly: gather each row's off-diagonal (to, rate) pairs into a
  // flat scratch, sort/merge the (tiny) rows, and append them to the final
  // CSR arrays with the diagonal -sum(rates) spliced in at its sorted
  // position.  O(nnz) plus per-row micro-sorts — no global triplet sort.
  std::vector<std::size_t> cursor(n + 1, 0);
  for (const RateTransition& t : transitions_) ++cursor[t.from + 1];
  for (std::size_t r = 0; r < n; ++r) cursor[r + 1] += cursor[r];
  std::vector<std::pair<std::size_t, double>> scratch(transitions_.size());
  for (const RateTransition& t : transitions_) scratch[cursor[t.from]++] = {t.to, t.rate};
  // cursor[r] now points one past row r's segment; row r spans
  // [r == 0 ? 0 : cursor[r-1], cursor[r]).

  std::vector<std::size_t> row_offsets(n + 1, 0);
  std::vector<std::size_t> col_indices;
  std::vector<double> values;
  col_indices.reserve(transitions_.size() + n);
  values.reserve(transitions_.size() + n);
  for (std::size_t r = 0; r < n; ++r) {
    const auto begin = scratch.begin() + static_cast<std::ptrdiff_t>(r == 0 ? 0 : cursor[r - 1]);
    const auto end = scratch.begin() + static_cast<std::ptrdiff_t>(cursor[r]);
    std::sort(begin, end);
    double exit_rate = 0.0;
    bool diag_emitted = begin == end;  // empty rows store nothing (matches the
                                       // triplet path, which dropped zero sums)
    const std::size_t row_begin = values.size();
    for (auto it = begin; it != end; ++it) {
      double rate = it->second;
      while (it + 1 != end && (it + 1)->first == it->first) {  // merge parallel edges
        ++it;
        rate += it->second;
      }
      exit_rate += rate;
      if (!diag_emitted && it->first > r) {
        col_indices.push_back(r);
        values.push_back(0.0);  // patched to -exit_rate below
        diag_emitted = true;
      }
      col_indices.push_back(it->first);
      values.push_back(rate);
    }
    if (!diag_emitted) {
      col_indices.push_back(r);
      values.push_back(0.0);
    }
    for (std::size_t k = row_begin; k < values.size(); ++k) {
      if (col_indices[k] == r) values[k] = -exit_rate;
    }
    row_offsets[r + 1] = values.size();
  }
  return linalg::CsrMatrix::from_sorted(n, n, std::move(row_offsets), std::move(col_indices),
                                        std::move(values));
}

linalg::SteadyStateResult Ctmc::steady_state(const linalg::SteadyStateOptions& options) const {
  if (state_count() == 0) throw std::logic_error("Ctmc::steady_state: empty chain");
  return linalg::solve_steady_state(generator(), options);
}

linalg::SteadyStateResult Ctmc::steady_state(linalg::StationarySolver& workspace,
                                             const linalg::SteadyStateOptions& options) const {
  if (state_count() == 0) throw std::logic_error("Ctmc::steady_state: empty chain");
  return workspace.solve(generator(), options);
}

double Ctmc::expected_steady_state_reward(const std::vector<double>& rewards,
                                          const linalg::SteadyStateOptions& options) const {
  if (rewards.size() != state_count()) {
    throw std::invalid_argument("expected_steady_state_reward: reward vector size mismatch");
  }
  const linalg::SteadyStateResult ss = steady_state(options);
  return linalg::dot(ss.distribution, rewards);
}

double Ctmc::exit_rate(StateIndex s) const {
  if (s >= state_count()) throw std::out_of_range("Ctmc::exit_rate");
  double acc = 0.0;
  for (const RateTransition& t : transitions_) {
    if (t.from == s) acc += t.rate;
  }
  return acc;
}

std::vector<bool> Ctmc::reachable_from(StateIndex start) const {
  if (start >= state_count()) throw std::out_of_range("Ctmc::reachable_from");
  std::vector<std::vector<StateIndex>> adjacency(state_count());
  for (const RateTransition& t : transitions_) adjacency[t.from].push_back(t.to);

  std::vector<bool> seen(state_count(), false);
  std::vector<StateIndex> stack{start};
  seen[start] = true;
  while (!stack.empty()) {
    const StateIndex s = stack.back();
    stack.pop_back();
    for (StateIndex next : adjacency[s]) {
      if (!seen[next]) {
        seen[next] = true;
        stack.push_back(next);
      }
    }
  }
  return seen;
}

bool Ctmc::is_irreducible() const {
  if (state_count() == 0) return false;
  const std::vector<bool> forward = reachable_from(0);
  for (bool b : forward) {
    if (!b) return false;
  }
  // Check the reverse direction on the transposed chain.
  Ctmc reversed;
  reversed.add_states(state_count());
  for (const RateTransition& t : transitions_) reversed.add_transition(t.to, t.from, t.rate);
  const std::vector<bool> backward = reversed.reachable_from(0);
  for (bool b : backward) {
    if (!b) return false;
  }
  return true;
}

LumpabilityResult lump_states(const Ctmc& chain, const std::vector<std::size_t>& partition,
                              std::size_t class_count, double tolerance) {
  if (partition.size() != chain.state_count()) {
    throw std::invalid_argument("lump_states: partition size != state count");
  }
  if (class_count == 0) throw std::invalid_argument("lump_states: class_count must be positive");
  std::vector<std::size_t> class_size(class_count, 0);
  for (const std::size_t c : partition) {
    if (c >= class_count) throw std::invalid_argument("lump_states: class id out of range");
    ++class_size[c];
  }
  for (std::size_t c = 0; c < class_count; ++c) {
    if (class_size[c] == 0) throw std::invalid_argument("lump_states: empty class");
  }

  // Aggregate rate r_i(J) = sum_{j in J} q_ij for every state i and every
  // target class J != class(i).  Stored sparsely per state; transitions
  // internal to a class leave the class occupancy unchanged and are excluded
  // from the lumpability condition.
  std::vector<std::vector<std::pair<std::size_t, double>>> row(chain.state_count());
  for (const RateTransition& t : chain.transitions()) {
    const std::size_t target = partition[t.to];
    if (target == partition[t.from]) continue;
    auto& r = row[t.from];
    auto it = std::find_if(r.begin(), r.end(),
                           [target](const auto& e) { return e.first == target; });
    if (it == r.end()) {
      r.emplace_back(target, t.rate);
    } else {
      it->second += t.rate;
    }
  }
  for (auto& r : row) std::sort(r.begin(), r.end());

  // Member-averaged class-to-class aggregates, then the largest deviation of
  // any member from that average.
  std::vector<std::vector<std::pair<std::size_t, double>>> mean(class_count);
  for (StateIndex s = 0; s < chain.state_count(); ++s) {
    auto& m = mean[partition[s]];
    for (const auto& [target, rate] : row[s]) {
      auto it = std::find_if(m.begin(), m.end(),
                             [target = target](const auto& e) { return e.first == target; });
      if (it == m.end()) {
        m.emplace_back(target, rate);
      } else {
        it->second += rate;
      }
    }
  }
  for (std::size_t c = 0; c < class_count; ++c) {
    std::sort(mean[c].begin(), mean[c].end());
    for (auto& [target, total] : mean[c]) total /= static_cast<double>(class_size[c]);
  }

  LumpabilityResult result;
  for (StateIndex s = 0; s < chain.state_count(); ++s) {
    const auto& expect = mean[partition[s]];
    const auto& have = row[s];
    // Both lists are sorted by target class; walk them in lockstep, counting
    // a missing entry on either side as a full-rate deviation.
    std::size_t a = 0;
    std::size_t b = 0;
    while (a < expect.size() || b < have.size()) {
      if (b == have.size() || (a < expect.size() && expect[a].first < have[b].first)) {
        result.max_deviation = std::max(result.max_deviation, std::abs(expect[a].second));
        ++a;
      } else if (a == expect.size() || have[b].first < expect[a].first) {
        result.max_deviation = std::max(result.max_deviation, std::abs(have[b].second));
        ++b;
      } else {
        result.max_deviation =
            std::max(result.max_deviation, std::abs(expect[a].second - have[b].second));
        ++a;
        ++b;
      }
    }
  }
  result.lumpable = result.max_deviation <= tolerance;

  result.quotient.add_states(class_count);
  for (std::size_t c = 0; c < class_count; ++c) {
    for (const auto& [target, rate] : mean[c]) {
      if (rate > 0.0) result.quotient.add_transition(c, target, rate);
    }
  }
  return result;
}

}  // namespace patchsec::ctmc
