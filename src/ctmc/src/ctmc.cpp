#include "patchsec/ctmc/ctmc.hpp"

#include <cmath>

#include "patchsec/linalg/vector_ops.hpp"

namespace patchsec::ctmc {

StateIndex Ctmc::add_state(std::string label) {
  labels_.push_back(std::move(label));
  return labels_.size() - 1;
}

StateIndex Ctmc::add_states(std::size_t n) {
  const StateIndex first = labels_.size();
  labels_.resize(labels_.size() + n);
  return first;
}

void Ctmc::add_transition(StateIndex from, StateIndex to, double rate) {
  if (from >= state_count() || to >= state_count()) {
    throw std::out_of_range("Ctmc::add_transition: state out of range");
  }
  if (from == to) throw std::invalid_argument("Ctmc::add_transition: self loop");
  if (!(rate > 0.0) || !std::isfinite(rate)) {
    throw std::invalid_argument("Ctmc::add_transition: rate must be positive and finite");
  }
  transitions_.push_back({from, to, rate});
}

linalg::CsrMatrix Ctmc::generator() const {
  std::vector<linalg::Triplet> entries;
  entries.reserve(transitions_.size() * 2);
  for (const RateTransition& t : transitions_) {
    entries.push_back({t.from, t.to, t.rate});
    entries.push_back({t.from, t.from, -t.rate});
  }
  return linalg::CsrMatrix(state_count(), state_count(), std::move(entries));
}

linalg::SteadyStateResult Ctmc::steady_state(const linalg::SteadyStateOptions& options) const {
  if (state_count() == 0) throw std::logic_error("Ctmc::steady_state: empty chain");
  return linalg::solve_steady_state(generator(), options);
}

double Ctmc::expected_steady_state_reward(const std::vector<double>& rewards,
                                          const linalg::SteadyStateOptions& options) const {
  if (rewards.size() != state_count()) {
    throw std::invalid_argument("expected_steady_state_reward: reward vector size mismatch");
  }
  const linalg::SteadyStateResult ss = steady_state(options);
  return linalg::dot(ss.distribution, rewards);
}

double Ctmc::exit_rate(StateIndex s) const {
  if (s >= state_count()) throw std::out_of_range("Ctmc::exit_rate");
  double acc = 0.0;
  for (const RateTransition& t : transitions_) {
    if (t.from == s) acc += t.rate;
  }
  return acc;
}

std::vector<bool> Ctmc::reachable_from(StateIndex start) const {
  if (start >= state_count()) throw std::out_of_range("Ctmc::reachable_from");
  std::vector<std::vector<StateIndex>> adjacency(state_count());
  for (const RateTransition& t : transitions_) adjacency[t.from].push_back(t.to);

  std::vector<bool> seen(state_count(), false);
  std::vector<StateIndex> stack{start};
  seen[start] = true;
  while (!stack.empty()) {
    const StateIndex s = stack.back();
    stack.pop_back();
    for (StateIndex next : adjacency[s]) {
      if (!seen[next]) {
        seen[next] = true;
        stack.push_back(next);
      }
    }
  }
  return seen;
}

bool Ctmc::is_irreducible() const {
  if (state_count() == 0) return false;
  const std::vector<bool> forward = reachable_from(0);
  for (bool b : forward) {
    if (!b) return false;
  }
  // Check the reverse direction on the transposed chain.
  Ctmc reversed;
  reversed.add_states(state_count());
  for (const RateTransition& t : transitions_) reversed.add_transition(t.to, t.from, t.rate);
  const std::vector<bool> backward = reversed.reachable_from(0);
  for (bool b : backward) {
    if (!b) return false;
  }
  return true;
}

}  // namespace patchsec::ctmc
