#include "patchsec/ctmc/transient_solver.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "patchsec/linalg/vector_ops.hpp"

namespace patchsec::ctmc {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

void TransientSolver::prepare(const Ctmc& chain) {
  if (chain.state_count() == 0) {
    throw std::invalid_argument("TransientSolver: empty chain");
  }
  const linalg::CsrMatrix q = chain.generator();
  const bool same_structure = states_ == q.rows() && q_row_offsets_ == q.row_offsets() &&
                              q_col_indices_ == q.col_indices();
  if (same_structure) {
    ++reuses_;
  } else {
    ++builds_;
    q_row_offsets_ = q.row_offsets();
    q_col_indices_ = q.col_indices();
  }
  states_ = q.rows();

  // Lambda: strictly above the largest exit rate so the uniformized diagonal
  // stays positive (all entries of P are then non-negative — no clamping is
  // ever needed in the power iteration).
  double max_exit = 0.0;
  for (std::size_t s = 0; s < states_; ++s) max_exit = std::max(max_exit, chain.exit_rate(s));
  lambda_ = max_exit * 1.02;

  // Assemble P = I + Q/Lambda row by row.  Q rows are sorted; the diagonal
  // entry gets +1 (inserted in order when Q stores none — absorbing states
  // have empty rows).  clear()+push_back keeps the capacity of a previous
  // build, so a same-structure refresh allocates nothing.
  p_row_offsets_.clear();
  p_col_indices_.clear();
  p_values_.clear();
  p_row_offsets_.reserve(states_ + 1);
  p_row_offsets_.push_back(0);
  const std::vector<std::size_t>& qro = q.row_offsets();
  const std::vector<std::size_t>& qci = q.col_indices();
  const std::vector<double>& qv = q.values();
  const double inv_lambda = lambda_ > 0.0 ? 1.0 / lambda_ : 0.0;
  for (std::size_t row = 0; row < states_; ++row) {
    bool diagonal_seen = false;
    for (std::size_t k = qro[row]; k < qro[row + 1]; ++k) {
      const std::size_t col = qci[k];
      if (!diagonal_seen && col >= row) {
        diagonal_seen = true;
        if (col == row) {
          p_col_indices_.push_back(row);
          p_values_.push_back(1.0 + qv[k] * inv_lambda);
          continue;
        }
        p_col_indices_.push_back(row);
        p_values_.push_back(1.0);
      }
      p_col_indices_.push_back(col);
      p_values_.push_back(qv[k] * inv_lambda);
    }
    if (!diagonal_seen) {
      p_col_indices_.push_back(row);
      p_values_.push_back(1.0);
    }
    p_row_offsets_.push_back(p_col_indices_.size());
  }

  diagnostics_ = TransientDiagnostics{};
  diagnostics_.uniformization_rate = lambda_;
}

void TransientSolver::reset() {
  states_ = 0;
  lambda_ = 0.0;
  p_row_offsets_.clear();
  p_col_indices_.clear();
  p_values_.clear();
  q_row_offsets_.clear();
  q_col_indices_.clear();
  weights_.clear();
  diagnostics_ = TransientDiagnostics{};
}

void TransientSolver::poisson_window(double m) {
  weights_.clear();
  if (m <= 0.0) {
    left_ = right_ = 0;
    weights_.push_back(1.0);
    mass_ = 1.0;
    return;
  }

  // Expand outward from the mode with the ratio recurrences, in units of the
  // mode weight (so nothing ever under- or overflows); the mode weight
  // itself, exp(mode*ln m - m - lgamma(mode+1)) ~ 1/sqrt(2 pi m), converts
  // relative sums back to true Poisson mass.  The frontier thresholds bound
  // the discarded tails by ~epsilon/2 each (the left tail has at most `mode`
  // terms, each below the frontier weight; the right tail decays faster than
  // geometrically with ratio m/k < 1).
  const std::size_t mode = static_cast<std::size_t>(m);
  const double mode_weight =
      std::exp(static_cast<double>(mode) * std::log(m) - m -
               std::lgamma(static_cast<double>(mode) + 1.0));
  const double right_threshold = options_.epsilon / (4.0 * mode_weight);
  const double left_threshold =
      options_.epsilon / (4.0 * mode_weight * static_cast<double>(mode + 1));

  const auto overflow = [] {
    throw std::runtime_error(
        "uniformization: Poisson window exceeds max_terms; raise TransientOptions::max_terms "
        "(Lambda*t is too large for the configured expansion length)");
  };

  left_ = mode;
  double w = 1.0;
  double total = 1.0;
  left_scratch_.clear();  // [mode-1 .. left_], descending
  while (left_ > 0 && w > left_threshold) {
    w *= static_cast<double>(left_) / m;
    --left_;
    left_scratch_.push_back(w);
    total += w;
    if (left_scratch_.size() > options_.max_terms) overflow();
  }
  for (std::size_t i = left_scratch_.size(); i > 0; --i) weights_.push_back(left_scratch_[i - 1]);

  right_ = mode;
  w = 1.0;
  weights_.push_back(1.0);  // the mode itself
  while (w > right_threshold) {
    if (weights_.size() > options_.max_terms) overflow();
    ++right_;
    w *= m / static_cast<double>(right_);
    weights_.push_back(w);
    total += w;
  }

  // weights_ now spans [left_..right_]; normalize over the window.
  const double inv_total = 1.0 / total;
  for (double& weight : weights_) weight *= inv_total;
  mass_ = std::min(1.0, total * mode_weight);
  if (mass_ < 1e-9) {
    throw std::runtime_error(
        "uniformization truncated before any Poisson mass accumulated; raise max_terms "
        "(Lambda*t is too large for the configured expansion length)");
  }
  diagnostics_.left_point = left_;
  diagnostics_.right_point = right_;
  diagnostics_.poisson_mass = mass_;
}

void TransientSolver::step(std::vector<double>& state, const std::vector<double>* rewards,
                           double dt, double* accumulated) {
  if (dt <= 0.0) return;
  if (lambda_ <= 0.0) {
    // No transitions anywhere: the distribution is frozen.
    if (accumulated != nullptr) *accumulated += linalg::dot(state, *rewards) * dt;
    return;
  }
  poisson_window(lambda_ * dt);

  term_ = state;
  accum_.assign(states_, 0.0);
  double cumulative = 0.0;  // F(k): Poisson CDF over the (normalized) window
  for (std::size_t k = 0;; ++k) {
    if (k >= left_) {
      const double weight = weights_[k - left_];
      for (std::size_t i = 0; i < states_; ++i) accum_[i] += weight * term_[i];
      cumulative += weight;
    }
    if (accumulated != nullptr) {
      // int_0^dt Poisson(k; Lambda s) ds = (1 - F(k)) / Lambda.
      const double survival = std::max(0.0, 1.0 - cumulative);
      *accumulated += survival * linalg::dot(term_, *rewards) / lambda_;
    }
    if (k >= right_) break;
    // term <- term * P (row-vector times CSR matrix).
    next_.assign(states_, 0.0);
    for (std::size_t row = 0; row < states_; ++row) {
      const double v = term_[row];
      if (v == 0.0) continue;
      for (std::size_t idx = p_row_offsets_[row]; idx < p_row_offsets_[row + 1]; ++idx) {
        next_[p_col_indices_[idx]] += v * p_values_[idx];
      }
    }
    term_.swap(next_);
    ++diagnostics_.matvec_count;
  }
  // Round-off / truncation guard: the mixture of stochastic vectors is a
  // distribution up to the discarded epsilon tail.
  linalg::normalize_probability(accum_);
  state = accum_;
}

void TransientSolver::distribution_at(const std::vector<double>& initial, double t,
                                      std::vector<double>& out) {
  if (!prepared()) throw std::logic_error("TransientSolver: prepare() has not run");
  if (initial.size() != states_) {
    throw std::invalid_argument("TransientSolver: initial size mismatch");
  }
  if (t < 0.0) throw std::invalid_argument("TransientSolver: negative time");
  const auto start = Clock::now();
  out = initial;
  step(out, nullptr, t, nullptr);
  diagnostics_.wall_time_seconds += seconds_since(start);
}

double TransientSolver::reward_at(const std::vector<double>& initial,
                                  const std::vector<double>& rewards, double t) {
  if (rewards.size() != states_) {
    throw std::invalid_argument("TransientSolver: reward size mismatch");
  }
  distribution_at(initial, t, state_);
  return linalg::dot(state_, rewards);
}

double TransientSolver::accumulated_reward(const std::vector<double>& initial,
                                           const std::vector<double>& rewards, double t) {
  if (!prepared()) throw std::logic_error("TransientSolver: prepare() has not run");
  if (initial.size() != states_ || rewards.size() != states_) {
    throw std::invalid_argument("TransientSolver: initial/reward size mismatch");
  }
  if (t < 0.0) throw std::invalid_argument("TransientSolver: negative horizon");
  const auto start = Clock::now();
  state_ = initial;
  double accumulated = 0.0;
  step(state_, &rewards, t, &accumulated);
  diagnostics_.wall_time_seconds += seconds_since(start);
  return accumulated;
}

double TransientSolver::reward_curve(const std::vector<double>& initial,
                                     const std::vector<double>& rewards,
                                     const std::vector<double>& time_points,
                                     std::vector<double>& values) {
  if (!prepared()) throw std::logic_error("TransientSolver: prepare() has not run");
  if (initial.size() != states_ || rewards.size() != states_) {
    throw std::invalid_argument("TransientSolver: initial/reward size mismatch");
  }
  if (time_points.empty()) throw std::invalid_argument("TransientSolver: empty time grid");
  const auto start = Clock::now();
  double previous = 0.0;
  for (double t : time_points) {
    if (t < 0.0) throw std::invalid_argument("TransientSolver: negative time point");
    if (t < previous) throw std::invalid_argument("TransientSolver: time grid must be ascending");
    previous = t;
  }

  values.resize(time_points.size());
  state_ = initial;
  double accumulated = 0.0;
  previous = 0.0;
  for (std::size_t j = 0; j < time_points.size(); ++j) {
    step(state_, &rewards, time_points[j] - previous, &accumulated);
    values[j] = linalg::dot(state_, rewards);
    previous = time_points[j];
  }
  diagnostics_.wall_time_seconds += seconds_since(start);
  return accumulated;
}

}  // namespace patchsec::ctmc
