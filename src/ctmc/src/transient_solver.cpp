#include "patchsec/ctmc/transient_solver.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <system_error>
#include <thread>

#include "patchsec/linalg/vector_ops.hpp"

namespace patchsec::ctmc {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

void TransientSolver::prepare(const Ctmc& chain) {
  if (chain.state_count() == 0) {
    throw std::invalid_argument("TransientSolver: empty chain");
  }
  const linalg::CsrMatrix q = chain.generator();
  const bool same_structure = states_ == q.rows() && q_row_offsets_ == q.row_offsets() &&
                              q_col_indices_ == q.col_indices();
  if (same_structure) {
    ++reuses_;
  } else {
    ++builds_;
    q_row_offsets_ = q.row_offsets();
    q_col_indices_ = q.col_indices();
  }
  states_ = q.rows();

  // Lambda: strictly above the largest exit rate so the uniformized diagonal
  // stays positive (all entries of P are then non-negative — no clamping is
  // ever needed in the power iteration).
  double max_exit = 0.0;
  for (std::size_t s = 0; s < states_; ++s) max_exit = std::max(max_exit, chain.exit_rate(s));
  lambda_ = max_exit * 1.02;

  // Assemble P = I + Q/Lambda row by row.  Q rows are sorted; the diagonal
  // entry gets +1 (inserted in order when Q stores none — absorbing states
  // have empty rows).  clear()+push_back keeps the capacity of a previous
  // build, so a same-structure refresh allocates nothing.
  p_row_offsets_.clear();
  p_col_indices_.clear();
  p_values_.clear();
  p_row_offsets_.reserve(states_ + 1);
  p_row_offsets_.push_back(0);
  const std::vector<std::size_t>& qro = q.row_offsets();
  const std::vector<std::size_t>& qci = q.col_indices();
  const std::vector<double>& qv = q.values();
  const double inv_lambda = lambda_ > 0.0 ? 1.0 / lambda_ : 0.0;
  for (std::size_t row = 0; row < states_; ++row) {
    bool diagonal_seen = false;
    for (std::size_t k = qro[row]; k < qro[row + 1]; ++k) {
      const std::size_t col = qci[k];
      if (!diagonal_seen && col >= row) {
        diagonal_seen = true;
        if (col == row) {
          p_col_indices_.push_back(row);
          p_values_.push_back(1.0 + qv[k] * inv_lambda);
          continue;
        }
        p_col_indices_.push_back(row);
        p_values_.push_back(1.0);
      }
      p_col_indices_.push_back(col);
      p_values_.push_back(qv[k] * inv_lambda);
    }
    if (!diagonal_seen) {
      p_col_indices_.push_back(row);
      p_values_.push_back(1.0);
    }
    p_row_offsets_.push_back(p_col_indices_.size());
  }

  diagnostics_ = TransientDiagnostics{};
  diagnostics_.uniformization_rate = lambda_;
  // The SIMD layout compiles lazily on the first kAuto evaluation; its own
  // structure-reuse fast path makes the refresh allocation-free.
  kernel_fresh_ = false;
}

void TransientSolver::ensure_kernel() {
  if (kernel_fresh_) return;
  kernel_.compile(states_, states_, p_row_offsets_, p_col_indices_, p_values_);
  kernel_fresh_ = true;
}

void TransientSolver::reset() {
  states_ = 0;
  lambda_ = 0.0;
  p_row_offsets_.clear();
  p_col_indices_.clear();
  p_values_.clear();
  q_row_offsets_.clear();
  q_col_indices_.clear();
  weights_.clear();
  kernel_.reset();
  kernel_fresh_ = false;
  diagnostics_ = TransientDiagnostics{};
}

void TransientSolver::poisson_window(double m) {
  weights_.clear();
  if (m <= 0.0) {
    left_ = right_ = 0;
    weights_.push_back(1.0);
    mass_ = 1.0;
    return;
  }

  // Expand outward from the mode with the ratio recurrences, in units of the
  // mode weight (so nothing ever under- or overflows); the mode weight
  // itself, exp(mode*ln m - m - lgamma(mode+1)) ~ 1/sqrt(2 pi m), converts
  // relative sums back to true Poisson mass.  The frontier thresholds bound
  // the discarded tails by ~epsilon/2 each (the left tail has at most `mode`
  // terms, each below the frontier weight; the right tail decays faster than
  // geometrically with ratio m/k < 1).
  const std::size_t mode = static_cast<std::size_t>(m);
  const double mode_weight =
      std::exp(static_cast<double>(mode) * std::log(m) - m -
               std::lgamma(static_cast<double>(mode) + 1.0));
  const double right_threshold = options_.epsilon / (4.0 * mode_weight);
  const double left_threshold =
      options_.epsilon / (4.0 * mode_weight * static_cast<double>(mode + 1));

  const auto overflow = [] {
    throw std::runtime_error(
        "uniformization: Poisson window exceeds max_terms; raise TransientOptions::max_terms "
        "(Lambda*t is too large for the configured expansion length)");
  };

  left_ = mode;
  double w = 1.0;
  double total = 1.0;
  left_scratch_.clear();  // [mode-1 .. left_], descending
  while (left_ > 0 && w > left_threshold) {
    w *= static_cast<double>(left_) / m;
    --left_;
    left_scratch_.push_back(w);
    total += w;
    if (left_scratch_.size() > options_.max_terms) overflow();
  }
  for (std::size_t i = left_scratch_.size(); i > 0; --i) weights_.push_back(left_scratch_[i - 1]);

  right_ = mode;
  w = 1.0;
  weights_.push_back(1.0);  // the mode itself
  while (w > right_threshold) {
    if (weights_.size() > options_.max_terms) overflow();
    ++right_;
    w *= m / static_cast<double>(right_);
    weights_.push_back(w);
    total += w;
  }

  // weights_ now spans [left_..right_]; normalize over the window.
  const double inv_total = 1.0 / total;
  for (double& weight : weights_) weight *= inv_total;
  mass_ = std::min(1.0, total * mode_weight);
  if (mass_ < 1e-9) {
    throw std::runtime_error(
        "uniformization truncated before any Poisson mass accumulated; raise max_terms "
        "(Lambda*t is too large for the configured expansion length)");
  }
  diagnostics_.left_point = left_;
  diagnostics_.right_point = right_;
  diagnostics_.poisson_mass = mass_;
}

void TransientSolver::step(std::vector<double>& state, const std::vector<double>* rewards,
                           double dt, double* accumulated) {
  if (dt <= 0.0) return;
  if (lambda_ <= 0.0) {
    // No transitions anywhere: the distribution is frozen.
    if (accumulated != nullptr) *accumulated += linalg::dot(state, *rewards) * dt;
    return;
  }
  poisson_window(lambda_ * dt);

  term_ = state;
  accum_.assign(states_, 0.0);
  double cumulative = 0.0;  // F(k): Poisson CDF over the (normalized) window
  const bool use_kernel = options_.kernel == TransientOptions::Kernel::kAuto;
  if (!use_kernel) diagnostics_.kernel = "csr-scalar";
  diagnostics_.rhs_count = std::max<std::size_t>(diagnostics_.rhs_count, 1);
  if (use_kernel) {
    // SIMD path: one fused kernel call per expansion term performs the
    // weight accumulation, the reward reduction AND the gather-form matvec
    // (no zero-fill of next_, no per-row branch).
    ensure_kernel();
    diagnostics_.kernel = kernel_.kernel_name();
    const double* r =
        (accumulated != nullptr && rewards != nullptr) ? rewards->data() : nullptr;
    next_.resize(states_);
    for (std::size_t k = 0;; ++k) {
      const double weight = k >= left_ ? weights_[k - left_] : 0.0;
      const bool last = k >= right_;
      const double dot = last ? kernel_.reduce(term_.data(), weight, accum_.data(), r)
                              : kernel_.step(term_.data(), next_.data(), weight,
                                             accum_.data(), r);
      cumulative += weight;
      if (accumulated != nullptr) {
        // int_0^dt Poisson(k; Lambda s) ds = (1 - F(k)) / Lambda.
        const double survival = std::max(0.0, 1.0 - cumulative);
        *accumulated += survival * dot / lambda_;
      }
      if (last) break;
      term_.swap(next_);
      ++diagnostics_.matvec_count;
    }
  } else {
    for (std::size_t k = 0;; ++k) {
      if (k >= left_) {
        const double weight = weights_[k - left_];
        for (std::size_t i = 0; i < states_; ++i) accum_[i] += weight * term_[i];
        cumulative += weight;
      }
      if (accumulated != nullptr) {
        // int_0^dt Poisson(k; Lambda s) ds = (1 - F(k)) / Lambda.
        const double survival = std::max(0.0, 1.0 - cumulative);
        *accumulated += survival * linalg::dot(term_, *rewards) / lambda_;
      }
      if (k >= right_) break;
      // term <- term * P (row-vector times CSR matrix).  The zero-skip stays
      // here deliberately: delta initial distributions keep early iterates
      // genuinely sparse, and this loop is the historical reference
      // trajectory (TransientOptions::Kernel::kScalar) — bit-exact across
      // releases.
      next_.assign(states_, 0.0);
      for (std::size_t row = 0; row < states_; ++row) {
        const double v = term_[row];
        if (v == 0.0) continue;
        for (std::size_t idx = p_row_offsets_[row]; idx < p_row_offsets_[row + 1]; ++idx) {
          next_[p_col_indices_[idx]] += v * p_values_[idx];
        }
      }
      term_.swap(next_);
      ++diagnostics_.matvec_count;
    }
  }
  // Round-off / truncation guard: the mixture of stochastic vectors is a
  // distribution up to the discarded epsilon tail.
  linalg::normalize_probability(accum_);
  state = accum_;
}

void TransientSolver::step_panel(std::vector<double>& panel, std::size_t m,
                                 const std::vector<double>& rewards, double dt,
                                 double* accumulated) {
  if (dt <= 0.0) return;
  if (lambda_ <= 0.0) {
    panel_column_dots(panel, m, rewards, panel_dots_);
    for (std::size_t b = 0; b < m; ++b) accumulated[b] += panel_dots_[b] * dt;
    return;
  }
  poisson_window(lambda_ * dt);

  panel_term_ = panel;
  panel_accum_.assign(panel.size(), 0.0);
  panel_next_.resize(panel.size());
  panel_dots_.resize(m);
  double cumulative = 0.0;
  for (std::size_t k = 0;; ++k) {
    const double weight = k >= left_ ? weights_[k - left_] : 0.0;
    const bool last = k >= right_;
    if (last) {
      kernel_.reduce_panel(panel_term_.data(), m, weight, panel_accum_.data(), rewards.data(),
                           panel_dots_.data());
    } else {
      kernel_.step_panel(panel_term_.data(), panel_next_.data(), m, weight,
                         panel_accum_.data(), rewards.data(), panel_dots_.data());
    }
    cumulative += weight;
    const double survival = std::max(0.0, 1.0 - cumulative);
    for (std::size_t b = 0; b < m; ++b) accumulated[b] += survival * panel_dots_[b] / lambda_;
    if (last) break;
    panel_term_.swap(panel_next_);
    ++diagnostics_.matvec_count;  // one SWEEP advances all m columns
  }
  // Per-column round-off/truncation guard, the panel counterpart of
  // linalg::normalize_probability.
  panel_sums_.assign(m, 0.0);
  for (std::size_t s = 0; s < states_; ++s) {
    const double* row = panel_accum_.data() + s * m;
    for (std::size_t b = 0; b < m; ++b) panel_sums_[b] += row[b];
  }
  for (std::size_t b = 0; b < m; ++b) {
    if (!(panel_sums_[b] > 0.0)) {
      throw std::domain_error("TransientSolver: panel column has no probability mass");
    }
    panel_sums_[b] = 1.0 / panel_sums_[b];
  }
  for (std::size_t s = 0; s < states_; ++s) {
    double* row = panel_accum_.data() + s * m;
    for (std::size_t b = 0; b < m; ++b) row[b] *= panel_sums_[b];
  }
  panel = panel_accum_;
}

void TransientSolver::panel_column_dots(const std::vector<double>& panel, std::size_t m,
                                        const std::vector<double>& rewards,
                                        std::vector<double>& out) const {
  out.assign(m, 0.0);
  const auto column_dot = [&](std::size_t b) {
    double acc = 0.0;
    const double* x = panel.data();
    for (std::size_t s = 0; s < rewards.size(); ++s) acc += x[s * m + b] * rewards[s];
    out[b] = acc;
  };
  const std::size_t threads =
      std::min<std::size_t>(std::max<std::size_t>(options_.reduction_threads, 1), m);
  if (threads <= 1) {
    for (std::size_t b = 0; b < m; ++b) column_dot(b);
    return;
  }
  // core::Session's worker-pool shape: an atomic cursor over the columns,
  // each column's dot computed whole (fixed state order) by exactly one
  // thread — bit-identical results for any thread count, and trivially
  // race-free (disjoint out[b] writes, join before any read).
  std::atomic<std::size_t> cursor{0};
  const auto drain = [&] {
    for (;;) {
      const std::size_t b = cursor.fetch_add(1, std::memory_order_relaxed);
      if (b >= m) return;
      column_dot(b);
    }
  };
  std::vector<std::thread> workers;
  workers.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    try {
      workers.emplace_back(drain);
    } catch (const std::system_error&) {
      break;  // thread exhaustion: the inline drain below picks up the rest
    }
  }
  drain();
  for (std::thread& w : workers) w.join();
}

std::vector<double> TransientSolver::reward_curve_multi(
    const std::vector<std::vector<double>>& initials, const std::vector<double>& rewards,
    const std::vector<double>& time_points, std::vector<std::vector<double>>& curves) {
  if (!prepared()) throw std::logic_error("TransientSolver: prepare() has not run");
  if (initials.empty()) throw std::invalid_argument("TransientSolver: empty panel");
  for (const std::vector<double>& initial : initials) {
    if (initial.size() != states_) {
      throw std::invalid_argument("TransientSolver: initial size mismatch");
    }
  }
  if (rewards.size() != states_) {
    throw std::invalid_argument("TransientSolver: reward size mismatch");
  }
  if (time_points.empty()) throw std::invalid_argument("TransientSolver: empty time grid");
  double previous = 0.0;
  for (double t : time_points) {
    if (t < 0.0) throw std::invalid_argument("TransientSolver: negative time point");
    if (t < previous) throw std::invalid_argument("TransientSolver: time grid must be ascending");
    previous = t;
  }

  const std::size_t m = initials.size();
  std::vector<double> accumulated(m, 0.0);
  curves.assign(m, std::vector<double>(time_points.size(), 0.0));

  if (options_.kernel == TransientOptions::Kernel::kScalar) {
    // Reference mode: the panel degrades to sequential single-vector curves
    // (each one the bit-exact historical trajectory).
    std::vector<double> values;
    for (std::size_t b = 0; b < m; ++b) {
      accumulated[b] = reward_curve(initials[b], rewards, time_points, values);
      curves[b] = values;
    }
    return accumulated;
  }

  const auto start = Clock::now();
  ensure_kernel();
  diagnostics_.kernel = kernel_.kernel_name();
  diagnostics_.rhs_count = std::max(diagnostics_.rhs_count, m);

  // Interleave the initials into the column-major panel: element (b, s) at
  // panel[s*m + b], so the kernel's per-entry FMA runs over contiguous RHSes.
  panel_next_.resize(states_ * m);  // borrowed as the interleave target
  for (std::size_t b = 0; b < m; ++b) {
    for (std::size_t s = 0; s < states_; ++s) panel_next_[s * m + b] = initials[b][s];
  }
  std::vector<double> panel = std::move(panel_next_);
  panel_next_ = std::vector<double>();

  previous = 0.0;
  for (std::size_t j = 0; j < time_points.size(); ++j) {
    step_panel(panel, m, rewards, time_points[j] - previous, accumulated.data());
    panel_column_dots(panel, m, rewards, panel_dots_);
    for (std::size_t b = 0; b < m; ++b) curves[b][j] = panel_dots_[b];
    previous = time_points[j];
  }
  panel_next_ = std::move(panel);  // hand the buffer back to the workspace
  diagnostics_.wall_time_seconds += seconds_since(start);
  return accumulated;
}

void TransientSolver::distribution_at(const std::vector<double>& initial, double t,
                                      std::vector<double>& out) {
  if (!prepared()) throw std::logic_error("TransientSolver: prepare() has not run");
  if (initial.size() != states_) {
    throw std::invalid_argument("TransientSolver: initial size mismatch");
  }
  if (t < 0.0) throw std::invalid_argument("TransientSolver: negative time");
  const auto start = Clock::now();
  out = initial;
  step(out, nullptr, t, nullptr);
  diagnostics_.wall_time_seconds += seconds_since(start);
}

double TransientSolver::reward_at(const std::vector<double>& initial,
                                  const std::vector<double>& rewards, double t) {
  if (rewards.size() != states_) {
    throw std::invalid_argument("TransientSolver: reward size mismatch");
  }
  distribution_at(initial, t, state_);
  return linalg::dot(state_, rewards);
}

double TransientSolver::accumulated_reward(const std::vector<double>& initial,
                                           const std::vector<double>& rewards, double t) {
  if (!prepared()) throw std::logic_error("TransientSolver: prepare() has not run");
  if (initial.size() != states_ || rewards.size() != states_) {
    throw std::invalid_argument("TransientSolver: initial/reward size mismatch");
  }
  if (t < 0.0) throw std::invalid_argument("TransientSolver: negative horizon");
  const auto start = Clock::now();
  state_ = initial;
  double accumulated = 0.0;
  step(state_, &rewards, t, &accumulated);
  diagnostics_.wall_time_seconds += seconds_since(start);
  return accumulated;
}

double TransientSolver::reward_curve(const std::vector<double>& initial,
                                     const std::vector<double>& rewards,
                                     const std::vector<double>& time_points,
                                     std::vector<double>& values) {
  if (!prepared()) throw std::logic_error("TransientSolver: prepare() has not run");
  if (initial.size() != states_ || rewards.size() != states_) {
    throw std::invalid_argument("TransientSolver: initial/reward size mismatch");
  }
  if (time_points.empty()) throw std::invalid_argument("TransientSolver: empty time grid");
  const auto start = Clock::now();
  double previous = 0.0;
  for (double t : time_points) {
    if (t < 0.0) throw std::invalid_argument("TransientSolver: negative time point");
    if (t < previous) throw std::invalid_argument("TransientSolver: time grid must be ascending");
    previous = t;
  }

  values.resize(time_points.size());
  state_ = initial;
  double accumulated = 0.0;
  previous = 0.0;
  for (std::size_t j = 0; j < time_points.size(); ++j) {
    step(state_, &rewards, time_points[j] - previous, &accumulated);
    values[j] = linalg::dot(state_, rewards);
    previous = time_points[j];
  }
  diagnostics_.wall_time_seconds += seconds_since(start);
  return accumulated;
}

}  // namespace patchsec::ctmc
