#include "patchsec/ctmc/absorbing.hpp"

#include <algorithm>
#include <stdexcept>

#include "patchsec/linalg/dense_matrix.hpp"

namespace patchsec::ctmc {

namespace {

// Solve the linear system  -Q_TT * m = 1  over transient states T, where
// Q_TT is the generator restricted to T; m is the MTTA vector.
std::vector<double> solve_mtta(const Ctmc& chain, const std::vector<bool>& is_absorbing) {
  const std::size_t n = chain.state_count();
  std::vector<std::size_t> transient_of(n, static_cast<std::size_t>(-1));
  std::vector<StateIndex> transients;
  for (StateIndex s = 0; s < n; ++s) {
    if (!is_absorbing[s]) {
      transient_of[s] = transients.size();
      transients.push_back(s);
    }
  }
  const std::size_t m = transients.size();
  if (m == 0) return std::vector<double>(n, 0.0);

  linalg::DenseMatrix a(m, m, 0.0);
  for (const RateTransition& t : chain.transitions()) {
    if (is_absorbing[t.from]) continue;
    const std::size_t i = transient_of[t.from];
    a(i, i) += t.rate;  // -q_ii
    if (!is_absorbing[t.to]) {
      a(i, transient_of[t.to]) -= t.rate;  // -q_ij
    }
  }
  const std::vector<double> rhs(m, 1.0);
  std::vector<double> mtta_t;
  try {
    mtta_t = a.solve(rhs);
  } catch (const std::domain_error&) {
    throw std::domain_error("absorbing analysis: some transient state cannot reach absorption");
  }
  std::vector<double> full(n, 0.0);
  for (std::size_t i = 0; i < m; ++i) full[transients[i]] = mtta_t[i];
  return full;
}

}  // namespace

AbsorbingAnalysis analyze_absorbing(const Ctmc& chain) {
  const std::size_t n = chain.state_count();
  std::vector<bool> has_out(n, false);
  for (const RateTransition& t : chain.transitions()) has_out[t.from] = true;

  AbsorbingAnalysis result;
  std::vector<bool> is_absorbing(n, false);
  for (StateIndex s = 0; s < n; ++s) {
    if (!has_out[s]) {
      is_absorbing[s] = true;
      result.absorbing_states.push_back(s);
    }
  }
  if (result.absorbing_states.empty()) {
    throw std::domain_error("analyze_absorbing: chain has no absorbing state");
  }
  result.mean_time_to_absorption = solve_mtta(chain, is_absorbing);
  return result;
}

double mean_first_passage_time(const Ctmc& chain, StateIndex start,
                               const std::vector<StateIndex>& targets) {
  if (start >= chain.state_count()) throw std::out_of_range("mean_first_passage_time: start");
  if (targets.empty()) throw std::invalid_argument("mean_first_passage_time: no targets");
  std::vector<bool> is_target(chain.state_count(), false);
  for (StateIndex t : targets) {
    if (t >= chain.state_count()) throw std::out_of_range("mean_first_passage_time: target");
    is_target[t] = true;
  }
  if (is_target[start]) return 0.0;

  // Rebuild with target outgoing transitions cut.
  Ctmc cut;
  cut.add_states(chain.state_count());
  for (const RateTransition& t : chain.transitions()) {
    if (!is_target[t.from]) cut.add_transition(t.from, t.to, t.rate);
  }
  std::vector<bool> is_absorbing(chain.state_count(), false);
  for (StateIndex s = 0; s < chain.state_count(); ++s) {
    bool has_out = false;
    for (const RateTransition& t : cut.transitions()) {
      if (t.from == s) {
        has_out = true;
        break;
      }
    }
    is_absorbing[s] = !has_out;
  }
  // Every state in `targets` is absorbing now; other sink states (if any)
  // would make passage impossible and surface as a singular system.
  const std::vector<double> mtta = solve_mtta(cut, is_absorbing);
  return mtta[start];
}

std::vector<StateIndex> transient_states(const Ctmc& chain) {
  const std::size_t n = chain.state_count();
  std::vector<std::vector<StateIndex>> successors(n);
  for (const RateTransition& t : chain.transitions()) successors[t.from].push_back(t.to);

  // Iterative Tarjan SCC (explicit stack — chains can be deep).
  constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);
  std::vector<std::size_t> index(n, kUnvisited), lowlink(n, 0), component(n, kUnvisited);
  std::vector<bool> on_stack(n, false);
  std::vector<StateIndex> stack;
  std::size_t next_index = 0, component_count = 0;
  struct Frame {
    StateIndex state;
    std::size_t next_succ;
  };
  std::vector<Frame> call_stack;
  for (StateIndex root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    call_stack.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const StateIndex v = frame.state;
      if (frame.next_succ < successors[v].size()) {
        const StateIndex w = successors[v][frame.next_succ++];
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          call_stack.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        if (lowlink[v] == index[v]) {
          StateIndex w;
          do {
            w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            component[w] = component_count;
          } while (w != v);
          ++component_count;
        }
        call_stack.pop_back();
        if (!call_stack.empty()) {
          const StateIndex parent = call_stack.back().state;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
      }
    }
  }

  std::vector<bool> component_leaks(component_count, false);
  for (const RateTransition& t : chain.transitions()) {
    if (component[t.from] != component[t.to]) component_leaks[component[t.from]] = true;
  }
  std::vector<StateIndex> result;
  for (StateIndex s = 0; s < n; ++s) {
    if (component_leaks[component[s]]) result.push_back(s);
  }
  return result;
}

}  // namespace patchsec::ctmc
