#include "patchsec/ctmc/absorbing.hpp"

#include <algorithm>
#include <stdexcept>

#include "patchsec/linalg/dense_matrix.hpp"

namespace patchsec::ctmc {

namespace {

// Solve the linear system  -Q_TT * m = 1  over transient states T, where
// Q_TT is the generator restricted to T; m is the MTTA vector.
std::vector<double> solve_mtta(const Ctmc& chain, const std::vector<bool>& is_absorbing) {
  const std::size_t n = chain.state_count();
  std::vector<std::size_t> transient_of(n, static_cast<std::size_t>(-1));
  std::vector<StateIndex> transients;
  for (StateIndex s = 0; s < n; ++s) {
    if (!is_absorbing[s]) {
      transient_of[s] = transients.size();
      transients.push_back(s);
    }
  }
  const std::size_t m = transients.size();
  if (m == 0) return std::vector<double>(n, 0.0);

  linalg::DenseMatrix a(m, m, 0.0);
  for (const RateTransition& t : chain.transitions()) {
    if (is_absorbing[t.from]) continue;
    const std::size_t i = transient_of[t.from];
    a(i, i) += t.rate;  // -q_ii
    if (!is_absorbing[t.to]) {
      a(i, transient_of[t.to]) -= t.rate;  // -q_ij
    }
  }
  const std::vector<double> rhs(m, 1.0);
  std::vector<double> mtta_t;
  try {
    mtta_t = a.solve(rhs);
  } catch (const std::domain_error&) {
    throw std::domain_error("absorbing analysis: some transient state cannot reach absorption");
  }
  std::vector<double> full(n, 0.0);
  for (std::size_t i = 0; i < m; ++i) full[transients[i]] = mtta_t[i];
  return full;
}

}  // namespace

AbsorbingAnalysis analyze_absorbing(const Ctmc& chain) {
  const std::size_t n = chain.state_count();
  std::vector<bool> has_out(n, false);
  for (const RateTransition& t : chain.transitions()) has_out[t.from] = true;

  AbsorbingAnalysis result;
  std::vector<bool> is_absorbing(n, false);
  for (StateIndex s = 0; s < n; ++s) {
    if (!has_out[s]) {
      is_absorbing[s] = true;
      result.absorbing_states.push_back(s);
    }
  }
  if (result.absorbing_states.empty()) {
    throw std::domain_error("analyze_absorbing: chain has no absorbing state");
  }
  result.mean_time_to_absorption = solve_mtta(chain, is_absorbing);
  return result;
}

double mean_first_passage_time(const Ctmc& chain, StateIndex start,
                               const std::vector<StateIndex>& targets) {
  if (start >= chain.state_count()) throw std::out_of_range("mean_first_passage_time: start");
  if (targets.empty()) throw std::invalid_argument("mean_first_passage_time: no targets");
  std::vector<bool> is_target(chain.state_count(), false);
  for (StateIndex t : targets) {
    if (t >= chain.state_count()) throw std::out_of_range("mean_first_passage_time: target");
    is_target[t] = true;
  }
  if (is_target[start]) return 0.0;

  // Rebuild with target outgoing transitions cut.
  Ctmc cut;
  cut.add_states(chain.state_count());
  for (const RateTransition& t : chain.transitions()) {
    if (!is_target[t.from]) cut.add_transition(t.from, t.to, t.rate);
  }
  std::vector<bool> is_absorbing(chain.state_count(), false);
  for (StateIndex s = 0; s < chain.state_count(); ++s) {
    bool has_out = false;
    for (const RateTransition& t : cut.transitions()) {
      if (t.from == s) {
        has_out = true;
        break;
      }
    }
    is_absorbing[s] = !has_out;
  }
  // Every state in `targets` is absorbing now; other sink states (if any)
  // would make passage impossible and surface as a singular system.
  const std::vector<double> mtta = solve_mtta(cut, is_absorbing);
  return mtta[start];
}

}  // namespace patchsec::ctmc
