#pragma once
/// \file scenario.hpp
/// \brief The inputs of the paper's Fig. 1 pipeline as a first-class value:
/// a Scenario describes *what* to evaluate (server specs, reachability
/// policy, patch schedule(s), candidate design space) and EngineOptions
/// describe *how* to solve it (steady-state method/tolerance/iteration
/// budget, reachability limits, batch parallelism).
///
/// A Scenario is a plain value: build one with the fluent with_* setters (or
/// Scenario::paper_case_study() for the paper's Tables I/IV inputs), hand it
/// to a core::Session, and keep it around to tweak, copy, batch or ship to a
/// worker.  Nothing is solved until a Session evaluates it.

#include <cstddef>
#include <map>
#include <stdexcept>
#include <vector>

#include "patchsec/ctmc/transient_solver.hpp"
#include "patchsec/enterprise/design.hpp"
#include "patchsec/harm/attack_graph.hpp"
#include "patchsec/enterprise/network.hpp"
#include "patchsec/linalg/steady_state.hpp"
#include "patchsec/petri/reachability.hpp"
#include "patchsec/petri/verify.hpp"
#include "patchsec/sim/srn_simulator.hpp"

namespace patchsec::core {

/// \brief How much the static model verifier (petri::verify) is allowed to
/// interfere with an evaluation.
enum class VerifyMode : std::uint8_t {
  /// Skip verification entirely (no reports in EvalReport diagnostics).
  kOff,
  /// Run the pass on every lower- and upper-layer net before solving and
  /// surface all findings through EvalReport::verification / JSON
  /// diagnostics, but never refuse to solve.  The default.
  kWarn,
  /// As kWarn, but any error-severity finding aborts the evaluation with
  /// std::runtime_error (petri::throw_on_verify_errors) before reachability.
  kStrict,
};

/// \brief How a Session turns the upper-layer (network) SRN into the
/// capacity-oriented availability of an EvalReport.
enum class EvalBackend : std::uint8_t {
  /// Reachability graph + steady-state solve (the paper's pipeline).
  kAnalytic,
  /// Monte-Carlo independent replications (sim::SrnSimulator): the report's
  /// COA is the replication mean and carries a 95% confidence half width —
  /// the statistical oracle of the differential validation harness.
  kSimulation,
};

/// \brief End-to-end numerical-engine configuration, threaded from the
/// facade down to linalg::solve_steady_state on every lower- and upper-layer
/// SRN solve.
struct EngineOptions {
  /// Steady-state solver knobs (method, tolerance, max iterations, SOR
  /// relaxation) passed verbatim to linalg::solve_steady_state.
  linalg::SteadyStateOptions steady_state;
  /// Reachability-graph limits (tangible-state bound, vanishing depth).
  petri::ReachabilityOptions reachability;
  /// When true a badly diverged steady-state solve throws (the historical
  /// Evaluator behaviour); when false — the Session default — the
  /// best-effort distribution is used and the failure is surfaced through
  /// EvalReport diagnostics.
  bool throw_on_divergence = false;
  /// Evaluate batch design spaces on multiple threads (the per-design upper
  /// layer is embarrassingly parallel; lower-layer aggregations are memoized
  /// up front).  The scenario's ReachabilityPolicy hooks (and any rate/guard
  /// closures in the specs) are then invoked concurrently and must be
  /// thread-safe — pure functions of their arguments, no mutable shared
  /// state.
  bool parallel = false;
  /// Worker count for parallel batches; 0 = std::thread::hardware_concurrency.
  unsigned threads = 0;
  /// How the upper-layer availability measure is evaluated.  The lower-layer
  /// aggregation (Table V rates) is analytic in both backends; kSimulation
  /// replaces the network-SRN steady-state solve with Monte-Carlo
  /// replications configured by `simulation`.
  EvalBackend backend = EvalBackend::kAnalytic;
  /// Evaluate the analytic backend on the symmetry-lumped quotient: the
  /// upper-layer network factors into independent per-tier birth-death
  /// chains (sum-of-sizes states instead of product-of-sizes), which is
  /// exact for this model class — steady-state and transient COA agree with
  /// the flat solve to solver tolerance (pinned to 1e-10 by the lumping test
  /// layer).  Off by default; ignored by the simulation backend, which
  /// always runs the flat net.
  bool lumping = false;
  /// Replication budget, seed and thread count of the simulation backend
  /// (ignored by kAnalytic).  Under `parallel` batch evaluation the
  /// per-evaluation replication fan-out is forced serial so the two thread
  /// pools do not multiply; estimates are thread-count-invariant, so this
  /// affects scheduling only.
  sim::SimulationOptions simulation;

  // --- transient analysis (Session::evaluate_transient) --------------------
  /// Horizon of the transient window, in hours.  When `time_points` is empty
  /// the evaluated grid is `transient_points` uniform points over
  /// [0, horizon_hours] (t = 0 included: it shows the initial dip).
  double horizon_hours = 24.0;
  /// Explicit time grid (hours, ascending, non-negative); when non-empty it
  /// overrides horizon_hours/transient_points.
  std::vector<double> time_points;
  /// Size of the derived uniform grid (>= 2).
  std::size_t transient_points = 16;
  /// Patch-window entry state: per role, how many servers start the window
  /// down for patching (clamped to the tier size; empty = all up).  Applied
  /// by BOTH transient backends, so the differential cross-check compares
  /// like with like.
  std::map<enterprise::ServerRole, unsigned> initial_down;
  /// Truncation policy of the analytic transient engine (uniformization).
  ctmc::TransientOptions uniformization;

  /// Attack-path enumeration cap of the HARM security side.  The simple-path
  /// count grows ~k^4 with a uniform k-per-tier design (every replica
  /// combination along each role sequence is its own path — the scaling wall
  /// that used to cap Session benches at k = 10 with a hard throw), so the
  /// Session default TRUNCATES at the cap: the first `max_paths` paths (DFS
  /// order) feed the metrics and the overflow is counted in
  /// SecurityMetrics::truncated_paths — observable in every EvalReport, never
  /// silent.  Set truncate = false to restore the historical throw-at-cap
  /// behaviour; raise/lower max_paths to trade exactness for memory.  (The
  /// bare harm::Harm::evaluate() keeps the throwing default — only the
  /// engine-routed evaluations opt into truncation.)
  harm::PathEnumerationOptions harm_paths{1'000'000, true};

  /// Static model verification (petri::verify): runs on every lower-layer
  /// server net and the upper-layer network net before reachability, at
  /// incidence-matrix cost.  kWarn (default) surfaces findings in
  /// EvalReport::verification; kStrict additionally refuses to solve a net
  /// with error-severity findings; kOff skips the pass.
  VerifyMode verify = VerifyMode::kWarn;
  /// Knobs of the verification pass (semiflow row cap, function probing).
  petri::VerifyOptions verify_options;

  /// The grid evaluate_transient runs on: `time_points` when set, otherwise
  /// the uniform grid described above.  Throws std::invalid_argument on an
  /// unusable configuration (empty/descending/negative explicit grid, a
  /// window that ends at t = 0, or a non-positive horizon / sub-2-point
  /// derived grid).
  [[nodiscard]] std::vector<double> transient_grid() const;

  /// The lowered per-solve form handed to the petri/avail layers.
  [[nodiscard]] petri::AnalyzerOptions analyzer_options() const {
    return petri::AnalyzerOptions{.reachability = reachability,
                                  .steady_state = steady_state,
                                  .throw_on_divergence = throw_on_divergence};
  }
};

/// \brief Everything one evaluation campaign needs: specs, topology policy,
/// patch schedule(s), candidate designs and engine configuration.
///
/// Invariants are checked by validate() (called by Session): at least one
/// server spec, callable policy hooks, strictly positive patch intervals,
/// and every candidate design deploying at least one server with a spec for
/// every deployed role.
class Scenario {
 public:
  Scenario() = default;

  /// The paper's case study (Tables I/IV specs, the Fig. 2 three-tier
  /// policy, the monthly 720 h schedule and the five Sec. IV candidate
  /// designs).  Replaces Evaluator::paper_case_study().
  [[nodiscard]] static Scenario paper_case_study();

  // --- fluent setters ------------------------------------------------------
  Scenario& with_specs(std::map<enterprise::ServerRole, enterprise::ServerSpec> specs);
  /// Add or replace the spec of one role.
  Scenario& with_spec(enterprise::ServerRole role, enterprise::ServerSpec spec);
  Scenario& with_policy(enterprise::ReachabilityPolicy policy);
  /// Single patch cadence (hours between patch rounds, 1/tau_p).
  Scenario& with_patch_interval(double hours);
  /// Schedule sweep: evaluate every design under every cadence.
  Scenario& with_patch_schedule(std::vector<double> hours);
  /// Replace the candidate design space.
  Scenario& with_designs(std::vector<enterprise::RedundancyDesign> designs);
  /// Append one candidate design.
  Scenario& with_design(enterprise::RedundancyDesign design);
  Scenario& with_engine(EngineOptions engine);

  // --- accessors -----------------------------------------------------------
  [[nodiscard]] const std::map<enterprise::ServerRole, enterprise::ServerSpec>& specs()
      const noexcept {
    return specs_;
  }
  [[nodiscard]] const enterprise::ReachabilityPolicy& policy() const noexcept { return policy_; }
  /// All cadences of the schedule (defaults to {720.0}, the paper's monthly).
  [[nodiscard]] const std::vector<double>& patch_intervals() const noexcept {
    return patch_intervals_;
  }
  /// First cadence of the schedule — the single-schedule common case.
  /// Throws std::logic_error when the schedule was explicitly emptied.
  [[nodiscard]] double patch_interval_hours() const {
    if (patch_intervals_.empty()) throw std::logic_error("Scenario: empty patch schedule");
    return patch_intervals_.front();
  }
  [[nodiscard]] const std::vector<enterprise::RedundancyDesign>& designs() const noexcept {
    return designs_;
  }
  [[nodiscard]] const EngineOptions& engine() const noexcept { return engine_; }

  /// Throws std::invalid_argument with a precise message when the scenario
  /// is not evaluable (see class invariants).
  void validate() const;

 private:
  std::map<enterprise::ServerRole, enterprise::ServerSpec> specs_;
  enterprise::ReachabilityPolicy policy_ = enterprise::ReachabilityPolicy::three_tier();
  std::vector<double> patch_intervals_{720.0};
  std::vector<enterprise::RedundancyDesign> designs_;
  EngineOptions engine_;
};

}  // namespace patchsec::core
