#pragma once
/// \file campaign.hpp
/// \brief Multi-stage patch campaigns (paper Sec. V: "more complex cases
/// (e.g., monthly patch of 3 months) will be considered in our future
/// work").  A campaign splits the vulnerability population into ordered
/// stages — e.g. month 1 patches critical, month 2 high-severity, month 3
/// the rest — and tracks both sides of the trade-off as the stages land:
///   * security: HARM metrics after the cumulative patch of stages 1..k;
///   * availability: COA of the month in which stage k is applied (its patch
///     durations come from the vulnerabilities patched that month).

#include <functional>
#include <string>
#include <vector>

#include "patchsec/core/session.hpp"

namespace patchsec::core {

/// \brief One campaign stage: the set of vulnerabilities patched in this
/// round.
struct CampaignStage {
  std::string name;
  std::function<bool(const nvd::Vulnerability&)> patched;
};

/// \brief The classic severity-banded 3-month campaign:
///   month 1: critical (base > 8.0, the paper's monthly patch)
///   month 2: high (7.0 <= base <= 8.0)
///   month 3: medium and below (base < 7.0)
[[nodiscard]] std::vector<CampaignStage> severity_banded_campaign();

/// \brief Metrics after one stage has been applied (cumulatively).
struct CampaignStageResult {
  std::string stage;
  /// HARM metrics with stages 1..k patched.
  harm::SecurityMetrics security;
  /// COA of the month applying stage k (patch durations = this stage's
  /// vulnerabilities, 5 min per application vuln, 10 min per OS vuln).
  double coa = 0.0;
  /// Vulnerabilities removed by this stage across the whole network.
  std::size_t vulnerabilities_patched = 0;
};

/// \brief Evaluate a campaign over a design using the paper's
/// per-vulnerability patch durations.  Stage k's availability month uses only
/// stage k's patch work; stages with no work on a server tier fall back to a
/// near-zero patch (the clock still fires).  Results are in stage order; the
/// entry at index -1 conceptually (not returned) is the unpatched network —
/// callers can get it from Session::evaluate.
/// \throws std::invalid_argument on an empty stage list or a null stage
///         predicate.
[[nodiscard]] std::vector<CampaignStageResult> evaluate_campaign(
    const enterprise::RedundancyDesign& design,
    const std::map<enterprise::ServerRole, enterprise::ServerSpec>& specs,
    const enterprise::ReachabilityPolicy& policy, const std::vector<CampaignStage>& stages,
    double patch_interval_hours = 720.0);

/// \brief Session form: specs, policy and patch cadence come from the
/// session's scenario (first cadence of the schedule) and every SRN solve
/// runs under the session's EngineOptions — except that a badly diverged
/// solve (petri::SolveDiagnostics::badly_diverged) throws
/// std::runtime_error regardless of EngineOptions::throw_on_divergence,
/// since stage results carry no diagnostics to surface it through.
[[nodiscard]] std::vector<CampaignStageResult> evaluate_campaign(
    const Session& session, const enterprise::RedundancyDesign& design,
    const std::vector<CampaignStage>& stages);

}  // namespace patchsec::core
