#pragma once
/// \file sensitivity.hpp
/// \brief Sensitivity analysis: which model parameter moves COA the most?
/// Finite-difference elasticities of the capacity-oriented availability with
/// respect to the per-tier aggregated rates.  Elasticity (dCOA/COA) / (dX/X)
/// is unit-free, so tiers compare directly.

#include <map>
#include <string>
#include <vector>

#include "patchsec/avail/network_srn.hpp"
#include "patchsec/core/session.hpp"
#include "patchsec/enterprise/design.hpp"

namespace patchsec::core {

/// \brief One parameter's finite-difference sensitivity of COA.
struct SensitivityEntry {
  std::string parameter;   ///< e.g. "mu_eq(APP)", "lambda_eq(WEB)".
  double base_value = 0.0;
  double derivative = 0.0;  ///< dCOA / dX (central difference).
  double elasticity = 0.0;  ///< (dCOA/COA) / (dX/X) at the base point.
};

/// \brief Elasticities of COA with respect to every deployed tier's mu_eq and
/// lambda_eq.  `relative_step` is the finite-difference step as a fraction
/// of the base value.  Sorted by |elasticity| descending.
/// \throws std::invalid_argument when relative_step is outside (0, 1).
[[nodiscard]] std::vector<SensitivityEntry> coa_sensitivity(
    const enterprise::RedundancyDesign& design,
    const std::map<enterprise::ServerRole, avail::AggregatedRates>& rates,
    double relative_step = 0.01);

/// \brief Session form: rates come from the session's memoized aggregation at
/// its first patch cadence (vetted against
/// petri::SolveDiagnostics::badly_diverged), and every COA solve runs under
/// the session's EngineOptions — except that a badly diverged solve throws
/// std::runtime_error regardless of EngineOptions::throw_on_divergence,
/// since elasticities carry no diagnostics to surface it through.
[[nodiscard]] std::vector<SensitivityEntry> coa_sensitivity(
    const Session& session, const enterprise::RedundancyDesign& design,
    double relative_step = 0.01);

}  // namespace patchsec::core
