#pragma once
// Sensitivity analysis: which model parameter moves COA the most?  Finite-
// difference elasticities of the capacity-oriented availability with respect
// to the per-tier aggregated rates and the patch interval.  Elasticity
// (dCOA/COA) / (dX/X) is unit-free, so tiers and the schedule compare
// directly.

#include <map>
#include <string>
#include <vector>

#include "patchsec/avail/network_srn.hpp"
#include "patchsec/enterprise/design.hpp"

namespace patchsec::core {

struct SensitivityEntry {
  std::string parameter;   ///< e.g. "mu_eq(APP)", "lambda_eq(WEB)".
  double base_value = 0.0;
  double derivative = 0.0;  ///< dCOA / dX (central difference).
  double elasticity = 0.0;  ///< (dCOA/COA) / (dX/X) at the base point.
};

/// Elasticities of COA with respect to every deployed tier's mu_eq and
/// lambda_eq.  `relative_step` is the finite-difference step as a fraction
/// of the base value.  Sorted by |elasticity| descending.
[[nodiscard]] std::vector<SensitivityEntry> coa_sensitivity(
    const enterprise::RedundancyDesign& design,
    const std::map<enterprise::ServerRole, avail::AggregatedRates>& rates,
    double relative_step = 0.01);

}  // namespace patchsec::core
