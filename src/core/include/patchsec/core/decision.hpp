#pragma once
// Decision functions of Sec. IV: compare after-patch metric values against
// administrator-chosen bounds and keep the designs satisfying all of them.

#include <vector>

#include "patchsec/core/evaluation.hpp"

namespace patchsec::core {

/// Eq. (3): f(ASP, COA) = 1 iff ASP <= phi and COA >= psi.
struct TwoMetricBounds {
  double asp_upper = 1.0;  ///< phi
  double coa_lower = 0.0;  ///< psi
};

[[nodiscard]] bool satisfies(const DesignEvaluation& eval, const TwoMetricBounds& bounds);

/// Eq. (4): additionally bounds NoEV (xi), NoAP (omega) and NoEP (kappa).
/// AIM carries no bound: the paper observes it is identical across designs.
struct MultiMetricBounds {
  double asp_upper = 1.0;            ///< phi
  std::size_t noev_upper = SIZE_MAX; ///< xi
  std::size_t noap_upper = SIZE_MAX; ///< omega
  std::size_t noep_upper = SIZE_MAX; ///< kappa
  double coa_lower = 0.0;            ///< psi
};

[[nodiscard]] bool satisfies(const DesignEvaluation& eval, const MultiMetricBounds& bounds);

/// Filter helpers returning the satisfying designs in input order.
[[nodiscard]] std::vector<DesignEvaluation> filter_designs(
    const std::vector<DesignEvaluation>& evals, const TwoMetricBounds& bounds);
[[nodiscard]] std::vector<DesignEvaluation> filter_designs(
    const std::vector<DesignEvaluation>& evals, const MultiMetricBounds& bounds);

}  // namespace patchsec::core
