#pragma once
/// \file decision.hpp
/// \brief Decision functions of Sec. IV: compare after-patch metric values
/// against administrator-chosen bounds and keep the designs satisfying all of
/// them.  Overloads are provided for both the rich Session results
/// (EvalReport) and the legacy DesignEvaluation payload.

#include <cstdint>
#include <vector>

#include "patchsec/core/session.hpp"

namespace patchsec::core {

/// \brief Eq. (3): f(ASP, COA) = 1 iff ASP <= phi and COA >= psi.
struct TwoMetricBounds {
  double asp_upper = 1.0;  ///< phi
  double coa_lower = 0.0;  ///< psi
};

[[nodiscard]] bool satisfies(const DesignEvaluation& eval, const TwoMetricBounds& bounds);
[[nodiscard]] bool satisfies(const EvalReport& report, const TwoMetricBounds& bounds);

/// \brief Eq. (4): additionally bounds NoEV (xi), NoAP (omega) and NoEP
/// (kappa).  AIM carries no bound: the paper observes it is identical across
/// designs.
struct MultiMetricBounds {
  double asp_upper = 1.0;            ///< phi
  std::size_t noev_upper = SIZE_MAX; ///< xi
  std::size_t noap_upper = SIZE_MAX; ///< omega
  std::size_t noep_upper = SIZE_MAX; ///< kappa
  double coa_lower = 0.0;            ///< psi
};

[[nodiscard]] bool satisfies(const DesignEvaluation& eval, const MultiMetricBounds& bounds);
[[nodiscard]] bool satisfies(const EvalReport& report, const MultiMetricBounds& bounds);

/// \brief Filter helpers returning the satisfying designs in input order.
[[nodiscard]] std::vector<DesignEvaluation> filter_designs(
    const std::vector<DesignEvaluation>& evals, const TwoMetricBounds& bounds);
[[nodiscard]] std::vector<DesignEvaluation> filter_designs(
    const std::vector<DesignEvaluation>& evals, const MultiMetricBounds& bounds);
[[nodiscard]] std::vector<EvalReport> filter_designs(const std::vector<EvalReport>& reports,
                                                     const TwoMetricBounds& bounds);
[[nodiscard]] std::vector<EvalReport> filter_designs(const std::vector<EvalReport>& reports,
                                                     const MultiMetricBounds& bounds);

}  // namespace patchsec::core
