#pragma once
/// \file economics.hpp
/// \brief Economic metrics (paper Sec. V, "other metrics" extension): attach
/// costs to redundancy designs so the administrator can pick by money instead
/// of by raw metric bounds — gain of high availability vs cost of redundancy,
/// loss from successful attacks vs cost of patching.

#include <vector>

#include "patchsec/core/session.hpp"

namespace patchsec::core {

/// \brief Cost parameters, all in the same currency unit.
struct CostModel {
  /// Owning one server for a year (hardware amortization + power + licences).
  double server_cost_per_year = 10'000.0;
  /// Revenue lost per hour of full-service capacity (scaled by 1 - COA).
  double downtime_cost_per_hour = 5'000.0;
  /// Expected loss of one successful compromise of the target data.
  double breach_cost = 250'000.0;
  /// Probability that a capable attacker shows up within a year.
  double annual_attack_probability = 1.0;
  /// Labor per patch event per server.
  double patch_labor_cost = 200.0;
  /// Patch events per year (12 for the paper's monthly schedule).
  double patches_per_year = 12.0;
};

/// \brief Cost breakdown of a design over one year.
struct CostBreakdown {
  double infrastructure = 0.0;  ///< servers.
  double downtime = 0.0;        ///< (1 - COA) * hours/year * cost/hour.
  double breach_risk = 0.0;     ///< ASP(after) * attack prob * breach cost.
  double patching = 0.0;        ///< labor.

  [[nodiscard]] double total() const {
    return infrastructure + downtime + breach_risk + patching;
  }
};

/// \brief Annual cost of a design given its joint evaluation.
/// \throws std::invalid_argument when annual_attack_probability is outside
///         [0, 1].
[[nodiscard]] CostBreakdown annual_cost(const DesignEvaluation& eval, const CostModel& model);
[[nodiscard]] CostBreakdown annual_cost(const EvalReport& report, const CostModel& model);

/// \brief The evaluated design with the lowest total annual cost.
/// \throws std::invalid_argument on an empty candidate list.
[[nodiscard]] const DesignEvaluation& cheapest_design(const std::vector<DesignEvaluation>& evals,
                                                      const CostModel& model);
[[nodiscard]] const EvalReport& cheapest_design(const std::vector<EvalReport>& reports,
                                                const CostModel& model);

}  // namespace patchsec::core
