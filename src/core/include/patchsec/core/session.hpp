#pragma once
/// \file session.hpp
/// \brief The evaluation engine of the facade: a Session binds a Scenario to
/// memoized lower-layer solver state and turns designs into EvalReports —
/// the paper's joint security/availability numbers *plus* per-stage solver
/// diagnostics (state counts, iterations, residuals, converged flags, wall
/// time).
///
/// Construction is cheap; the expensive per-(role, patch-interval) server-SRN
/// aggregations (paper Table V) are computed lazily on first use and cached,
/// so sweeping a design space or a patch schedule pays the lower layer once.
/// The cadence-independent HARM security metrics are likewise memoized per
/// design, so a schedule sweep pays the security side once per design.
/// Batch evaluation can fan out over threads (EngineOptions::parallel).

#include <array>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "patchsec/avail/aggregation.hpp"
#include "patchsec/avail/network_srn.hpp"
#include "patchsec/core/scenario.hpp"
#include "patchsec/ctmc/transient_solver.hpp"
#include "patchsec/harm/harm.hpp"
#include "patchsec/linalg/stationary_solver.hpp"

namespace patchsec::core {

/// \brief The warm solver state one evaluation thread owns: the two
/// steady-state workspaces (the aggregation [server SRN] and availability
/// [network SRN] stages each cache a single sparsity structure — a sweep
/// interleaves the two stages, so sharing one slot would rebuild the cached
/// transpose on every alternation) plus the uniformization workspace of the
/// transient engine.  A Session keeps one SolverWorkspaces per (Session,
/// thread); the evaluation service pins one to each worker thread.  None of
/// the members are thread-safe — never share a SolverWorkspaces across
/// threads.
struct SolverWorkspaces {
  linalg::StationarySolver aggregation;
  linalg::StationarySolver availability;
  ctmc::TransientSolver transient;
};

/// \brief Joint security/availability result for one redundancy design (the
/// metric payload of the original Evaluator API; EvalReport carries one).
struct DesignEvaluation {
  enterprise::RedundancyDesign design;
  harm::SecurityMetrics before_patch;  ///< HARM metrics with all vulnerabilities.
  harm::SecurityMetrics after_patch;   ///< HARM metrics after the critical patch.
  double coa = 0.0;                    ///< capacity-oriented availability under the
                                       ///< patch schedule (Table VI measure).
};

/// \brief Time-dependent COA payload of a Session::evaluate_transient
/// report: coa(t) over the engine's time grid, plus the window integral.
/// Under the simulation backend every point carries its own 95% confidence
/// half width (empty vectors mean "no transient evaluation ran").
struct TransientCurve {
  std::vector<double> time_points_hours;  ///< the evaluated grid.
  std::vector<double> coa;                ///< coa(t_j), same length.
  std::vector<double> half_width_95;      ///< per-point CI (simulation only).
  /// int_0^T coa(s) ds — capacity delivered over the window, in
  /// server-fraction hours.
  double accumulated_coa_hours = 0.0;

  [[nodiscard]] bool empty() const noexcept { return time_points_hours.empty(); }
  /// Last grid point (the window length T); 0 when empty.
  [[nodiscard]] double horizon_hours() const noexcept {
    return time_points_hours.empty() ? 0.0 : time_points_hours.back();
  }
  /// Time-averaged COA over the window: accumulated_coa_hours / T (0 when
  /// the window is degenerate).  This is what evaluate_transient reports as
  /// EvalReport::coa.
  [[nodiscard]] double interval_coa() const noexcept {
    const double t = horizon_hours();
    return t > 0.0 ? accumulated_coa_hours / t : 0.0;
  }
};

/// \brief One solve stage's static verification: the stage name
/// ("server:<role>" for a lower-layer net, "network" for the upper layer)
/// plus the petri::verify report (certificates + lint findings).
struct StageVerification {
  std::string stage;
  petri::VerifyReport report;
};

/// \brief Rich evaluation result: the paper's metrics plus end-to-end solver
/// diagnostics for every stage that ran a steady-state solve.
struct EvalReport {
  enterprise::RedundancyDesign design;
  harm::SecurityMetrics before_patch;  ///< HARM metrics with all vulnerabilities.
  harm::SecurityMetrics after_patch;   ///< HARM metrics after the critical patch.
  double coa = 0.0;                    ///< capacity-oriented availability.
  double patch_interval_hours = 720.0;  ///< cadence this report was evaluated at.

  /// Which backend produced the COA (EngineOptions::backend at evaluation).
  EvalBackend backend = EvalBackend::kAnalytic;
  /// 95% confidence half width of `coa` when the simulation backend produced
  /// it; 0 for the (deterministic) analytic backend.
  double coa_half_width_95 = 0.0;
  /// Replication counts, events fired and wall time of the simulation
  /// backend; zeroed under kAnalytic.
  sim::SimDiagnostics simulation_diagnostics;

  /// Time-dependent COA curve — filled only by Session::evaluate_transient
  /// (empty() for steady-state evaluations).  A transient report's `coa` is
  /// the time-averaged COA over the window, NOT the steady-state COA.
  TransientCurve transient;
  /// Uniformization internals of the analytic transient engine (Lambda,
  /// Fox-Glynn window, matvec count); zeroed under kSimulation and for
  /// steady-state evaluations.
  ctmc::TransientDiagnostics transient_diagnostics;

  /// Lower-layer (server SRN, one per role with a spec) solve diagnostics.
  /// Memoized across reports sharing a (role, patch interval); wall times are
  /// those of the first computation.
  std::map<enterprise::ServerRole, petri::SolveDiagnostics> aggregation_diagnostics;
  /// Upper-layer (network SRN) solve diagnostics for this design; default
  /// under kSimulation (no analytic solve ran).
  petri::SolveDiagnostics availability_diagnostics;
  /// Wall time of this evaluate() call (HARM + upper layer + any lower-layer
  /// aggregation misses).
  double wall_time_seconds = 0.0;

  /// Static verification reports (EngineOptions::verify != kOff): one entry
  /// per solved net — every lower-layer "server:<role>" stage this cadence
  /// uses (memoized with the aggregation) plus the upper-layer "network"
  /// stage.  Empty under VerifyMode::kOff.
  std::vector<StageVerification> verification;

  /// True iff every steady-state solve behind this report converged (the
  /// upper-layer solve is exempt under kSimulation, which never runs it).
  [[nodiscard]] bool converged() const noexcept;
  /// CI-aware cross-backend agreement on COA at z standard errors: the half
  /// widths of both reports (0 for analytic ones) are rescaled from their
  /// stored 95% level to z and combined in quadrature; two analytic reports
  /// compare within round-off (1e-9).  agrees_with(other, 1.96) asks "does
  /// the other backend's COA fall inside my 95% confidence interval" when
  /// exactly one of the two reports is simulated — the differential
  /// harness's acceptance test.
  [[nodiscard]] bool agrees_with(const EvalReport& other, double z = 1.96) const noexcept;
  /// Point-wise CI-band agreement of two transient curves, the transient
  /// differential acceptance test: true iff both reports carry curves over
  /// the SAME grid and at every grid point the COA values agree within the
  /// quadrature-combined half widths rescaled from 95% to z.  The band is
  /// floored at 3/replications when a simulated report is involved (COA is
  /// a discrete reward, so a degenerate replication sample — every
  /// replication saw the same value — collapses the t-interval to zero
  /// while the true mean may differ by up to the rule-of-three bound) and
  /// at round-off (1e-9) for two analytic curves.
  /// transient_agrees_with(analytic, 1.96) on a simulated report asks "does
  /// the analytic curve lie inside my 95% confidence band everywhere".
  [[nodiscard]] bool transient_agrees_with(const EvalReport& other,
                                           double z = 1.96) const noexcept;
  /// The band check of ONE grid point, exactly as transient_agrees_with
  /// applies it (quadrature-combined half widths, rule-of-three/round-off
  /// floor) — exposed so reporting code (the differential runner's per-point
  /// columns) can never drift from the verdict.  False when either curve
  /// lacks index j.
  [[nodiscard]] bool transient_point_agrees(const EvalReport& other, std::size_t j,
                                            double z = 1.96) const noexcept;
  /// Total solver iterations across all stages (lower + upper layer).
  [[nodiscard]] std::size_t total_solver_iterations() const noexcept;
  /// True iff every verified stage came back with zero findings.  Vacuously
  /// true under VerifyMode::kOff (nothing was verified).
  [[nodiscard]] bool lint_clean() const noexcept;
  /// The metric payload alone, for APIs speaking the original Evaluator
  /// vocabulary (decision bounds, economics, report emitters).
  [[nodiscard]] DesignEvaluation metrics() const;
};

/// \brief Evaluates redundancy designs for one Scenario, owning the memoized
/// per-(role, patch-interval) lower-layer aggregations.
///
/// Thread-safe: evaluate()/evaluate_all() are const and the aggregation cache
/// is internally synchronized, so one Session may serve concurrent callers
/// (and evaluate_all() itself fans out when the scenario's EngineOptions ask
/// for parallel batches).
class Session {
 public:
  /// Validates the scenario (Scenario::validate) and takes a copy of it.
  explicit Session(Scenario scenario);

  [[nodiscard]] const Scenario& scenario() const noexcept { return scenario_; }

  /// Evaluate one design at the scenario's first patch cadence.
  [[nodiscard]] EvalReport evaluate(const enterprise::RedundancyDesign& design) const;

  /// Evaluate one design at an explicit patch cadence.
  [[nodiscard]] EvalReport evaluate(const enterprise::RedundancyDesign& design,
                                    double patch_interval_hours) const;

  /// Evaluate the scenario's design space under its whole patch schedule:
  /// reports are ordered schedule-major (every design at interval 0, then
  /// every design at interval 1, ...).  Parallel when the engine asks for it.
  [[nodiscard]] std::vector<EvalReport> evaluate_all() const;

  /// Evaluate an explicit design list at the scenario's first patch cadence.
  [[nodiscard]] std::vector<EvalReport> evaluate_all(
      const std::vector<enterprise::RedundancyDesign>& designs) const;

  /// Evaluate an explicit design list at an explicit cadence.
  [[nodiscard]] std::vector<EvalReport> evaluate_all(
      const std::vector<enterprise::RedundancyDesign>& designs,
      double patch_interval_hours) const;

  /// Transient evaluation: coa(t) over the engine's time grid
  /// (EngineOptions::horizon_hours / time_points), starting from the
  /// patch-window marking EngineOptions::initial_down describes, at the
  /// scenario's first patch cadence.  The lower-layer per-(role, interval)
  /// aggregations are memoized exactly like the steady-state path (both
  /// paths share the cache).  Backend-dispatched like evaluate():
  /// kAnalytic runs uniformization, kSimulation the finite-horizon
  /// replicated estimator; the report's `transient` payload carries the
  /// curve and its `coa` the time-averaged COA over the window.
  [[nodiscard]] EvalReport evaluate_transient(const enterprise::RedundancyDesign& design) const;

  /// Transient evaluation at an explicit patch cadence.
  [[nodiscard]] EvalReport evaluate_transient(const enterprise::RedundancyDesign& design,
                                              double patch_interval_hours) const;

  /// Batched transient evaluation: one report per patch wave (an
  /// EngineOptions::initial_down-shaped map), ordered like `waves`, each as
  /// if evaluate_transient had run with that wave as the initial marking —
  /// at the scenario's first patch cadence.  Under the analytic non-lumped
  /// backend the whole batch is ONE panel solve (avail::transient_coa_batch:
  /// one reachability/matrix build, one matrix sweep per uniformization term
  /// for ALL waves — see each report's transient_diagnostics.rhs_count);
  /// the simulation and lumped backends evaluate the waves sequentially.
  /// Throws std::invalid_argument on an empty wave list.
  [[nodiscard]] std::vector<EvalReport> evaluate_transient_batch(
      const enterprise::RedundancyDesign& design,
      const std::vector<std::map<enterprise::ServerRole, unsigned>>& waves) const;

  /// Batched transient evaluation at an explicit patch cadence.
  [[nodiscard]] std::vector<EvalReport> evaluate_transient_batch(
      const enterprise::RedundancyDesign& design,
      const std::vector<std::map<enterprise::ServerRole, unsigned>>& waves,
      double patch_interval_hours) const;

  /// Per-role aggregated patch/recovery rates (Table V rows) at the
  /// scenario's first cadence.  Computed on first use, then cached.
  [[nodiscard]] const std::map<enterprise::ServerRole, avail::AggregatedRates>&
  aggregated_rates() const;

  /// Table V rows at an explicit cadence.
  [[nodiscard]] const std::map<enterprise::ServerRole, avail::AggregatedRates>& aggregated_rates(
      double patch_interval_hours) const;

  /// Lower-layer solve diagnostics behind aggregated_rates(hours).
  [[nodiscard]] const std::map<enterprise::ServerRole, petri::SolveDiagnostics>&
  aggregation_diagnostics(double patch_interval_hours) const;

  /// Warm-reuse counters summed over every per-thread workspace slot this
  /// Session has created.  The per-Session ownership contract (workspaces are
  /// never shared across Sessions, so interleaving two Sessions cannot thrash
  /// either one's cached structure) is pinned by the SessionWorkspaces tests
  /// through these counters.
  struct WorkspaceCounters {
    std::size_t thread_slots = 0;  ///< distinct threads that evaluated here.
    std::size_t transient_structure_builds = 0;   ///< TransientSolver rebuilds.
    std::size_t transient_structure_reuses = 0;   ///< value-refresh fast paths.
    std::size_t availability_solves = 0;          ///< upper-layer solves served.
    std::size_t availability_transpose_rebuilds = 0;
    std::size_t aggregation_solves = 0;           ///< lower-layer solves served.
    std::size_t aggregation_transpose_rebuilds = 0;
  };
  [[nodiscard]] WorkspaceCounters workspace_counters() const;

  /// The canonical aggregation-cache key for a cadence, shared with the
  /// service layer's request hashing so both key spaces agree bit-for-bit.
  /// Keys are EXACT double bits: cadences that differ in the last ulp (e.g.
  /// 30*24.0 vs 720.0000000001 from cadence arithmetic) are distinct entries
  /// — both solve correctly, they simply do not share a slot.  The only
  /// bit-distinct values that would alias (-0.0 and +0.0 compare equal as
  /// map keys) are rejected by the positivity check, and -0.0 is normalized
  /// to +0.0 anyway so the exact-bits contract holds even if the range check
  /// is ever relaxed.  Throws std::invalid_argument on NaN (a NaN key would
  /// break std::map's strict weak ordering and alias arbitrary entries) and
  /// on non-positive cadences.
  [[nodiscard]] static double canonical_interval(double patch_interval_hours);

 private:
  struct IntervalAggregation {
    std::map<enterprise::ServerRole, avail::AggregatedRates> rates;
    std::map<enterprise::ServerRole, petri::SolveDiagnostics> diagnostics;
    /// Static verification of each role's server net (computed once with the
    /// aggregation; empty under VerifyMode::kOff).
    std::vector<StageVerification> verification;
  };
  struct SecurityMetricsPair {
    harm::SecurityMetrics before_patch;
    harm::SecurityMetrics after_patch;
  };

  /// Memoized lower-layer aggregation for one cadence (thread-safe).
  /// Throws std::invalid_argument unless patch_interval_hours > 0 (also
  /// rejects NaN, which would alias arbitrary cache keys).
  const IntervalAggregation& aggregation_for(double patch_interval_hours) const;

  /// Memoized HARM security metrics for one design (thread-safe).  The HARM
  /// side is cadence-independent, so a schedule sweep pays it once per
  /// design instead of once per (design, cadence).
  const SecurityMetricsPair& security_for(const enterprise::RedundancyDesign& design) const;

  /// Run a batch of (design, cadence) jobs in job order, priming both caches
  /// serially first and fanning out over threads when the engine asks for it.
  [[nodiscard]] std::vector<EvalReport> run_batch(
      const std::vector<std::pair<enterprise::RedundancyDesign, double>>& jobs) const;

  /// evaluate_transient with an explicit initial marking (the public
  /// overloads pass EngineOptions::initial_down; evaluate_transient_batch's
  /// sequential fallback passes each wave).
  [[nodiscard]] EvalReport evaluate_transient_impl(
      const enterprise::RedundancyDesign& design, double patch_interval_hours,
      const std::map<enterprise::ServerRole, unsigned>& initial_down) const;

  /// The SolverWorkspaces of the calling thread, created on first use.  Each
  /// (Session, thread) pair owns its own slot, so two Sessions interleaving
  /// on one thread can never thrash each other's cached solver structure
  /// (the warm-reuse contract), and parallel batch workers never contend.
  SolverWorkspaces& workspaces_for_this_thread() const;

  Scenario scenario_;
  mutable std::mutex cache_mutex_;
  /// Keyed on the canonical_interval() cadence — exact double bits (see the
  /// key contract there).
  mutable std::map<double, IntervalAggregation> cache_;
  /// Keyed on design.counts ALONE — sufficient because a RedundancyDesign IS
  /// its counts array (the defaulted operator== compares nothing else) and
  /// every other HARM input is Session-immutable: security_for builds
  /// NetworkModel(design, specs_, policy_) and evaluates it under
  /// engine().harm_paths, so the patch cadence never reaches the HARM layer
  /// and the only EngineOptions field that does (the path-enumeration cap)
  /// is fixed for the Session's lifetime.  Pinned by
  /// SessionMemoizationAudit.HarmMetricsDependOnDesignCountsAlone.
  mutable std::map<std::array<unsigned, enterprise::kRoleCount>, SecurityMetricsPair> harm_cache_;
  /// Per-thread solver workspaces (guarded by workspace_mutex_; the map is
  /// touched only to find/create a slot — the workspaces themselves are
  /// single-owner per thread and used outside the lock).
  mutable std::mutex workspace_mutex_;
  mutable std::map<std::thread::id, std::unique_ptr<SolverWorkspaces>> workspaces_;
};

}  // namespace patchsec::core
