#pragma once
/// \file evaluation.hpp
/// \brief The paper's contribution: the three-phase pipeline of Fig. 1
/// (inputs -> model construction -> evaluation) run over redundancy designs,
/// producing the joint security/availability picture of Sec. IV.
///
/// This is the primary user-facing entry point of the library: construct an
/// Evaluator (or use Evaluator::paper_case_study()) and feed it
/// enterprise::RedundancyDesign candidates.

#include <map>
#include <vector>

#include "patchsec/avail/aggregation.hpp"
#include "patchsec/avail/network_srn.hpp"
#include "patchsec/enterprise/network.hpp"
#include "patchsec/harm/harm.hpp"

namespace patchsec::core {

/// \brief Joint security/availability result for one redundancy design.
struct DesignEvaluation {
  enterprise::RedundancyDesign design;
  harm::SecurityMetrics before_patch;  ///< HARM metrics with all vulnerabilities.
  harm::SecurityMetrics after_patch;   ///< HARM metrics after the critical patch.
  double coa = 0.0;                    ///< capacity-oriented availability under the
                                       ///< monthly patch schedule (Table VI measure).
};

/// \brief Evaluates redundancy designs over fixed server specs and topology.
///
/// Construction runs the expensive lower-layer work once: for every server
/// role the server SRN (paper Fig. 5) is built, lowered to a CTMC, solved for
/// its steady state and aggregated into equivalent patch/recovery rates
/// (paper Table V).  Each evaluate() call then only pays for the per-design
/// upper layer: HARM security metrics plus the network-SRN COA.
class Evaluator {
 public:
  /// \brief Build an evaluator for a concrete deployment.
  /// \param specs   Per-role server specification (software stack,
  ///                vulnerabilities, failure/patch behaviour).
  /// \param policy  Topology/firewall reachability policy used to construct
  ///                the attack graph.
  /// \param patch_interval_hours  Mean time between patch rounds, 1/tau_p
  ///                (720 = the paper's monthly schedule).
  Evaluator(std::map<enterprise::ServerRole, enterprise::ServerSpec> specs,
            enterprise::ReachabilityPolicy policy, double patch_interval_hours = 720.0);

  /// \brief Convenience factory: the paper's case-study inputs (Tables I/IV).
  [[nodiscard]] static Evaluator paper_case_study(double patch_interval_hours = 720.0);

  /// \brief Evaluate one design: HARM metrics before/after the critical patch
  /// plus capacity-oriented availability under the patch schedule.
  [[nodiscard]] DesignEvaluation evaluate(const enterprise::RedundancyDesign& design) const;

  /// \brief Evaluate a design space, e.g. the paper's five candidates
  /// (enterprise::paper_designs()) or an enumerated sweep.
  [[nodiscard]] std::vector<DesignEvaluation> evaluate_all(
      const std::vector<enterprise::RedundancyDesign>& designs) const;

  /// \brief Per-role aggregated patch/recovery rates (Table V rows).
  [[nodiscard]] const std::map<enterprise::ServerRole, avail::AggregatedRates>& aggregated_rates()
      const noexcept {
    return rates_;
  }

  [[nodiscard]] const std::map<enterprise::ServerRole, enterprise::ServerSpec>& specs()
      const noexcept {
    return specs_;
  }

  [[nodiscard]] double patch_interval_hours() const noexcept { return patch_interval_hours_; }

 private:
  std::map<enterprise::ServerRole, enterprise::ServerSpec> specs_;
  enterprise::ReachabilityPolicy policy_;
  double patch_interval_hours_;
  std::map<enterprise::ServerRole, avail::AggregatedRates> rates_;
};

}  // namespace patchsec::core
