#pragma once
// The paper's contribution: the three-phase pipeline of Fig. 1 (inputs ->
// model construction -> evaluation) run over redundancy designs, producing
// the joint security/availability picture of Sec. IV.

#include <map>
#include <vector>

#include "patchsec/avail/aggregation.hpp"
#include "patchsec/avail/network_srn.hpp"
#include "patchsec/enterprise/network.hpp"
#include "patchsec/harm/harm.hpp"

namespace patchsec::core {

/// Joint result for one redundancy design.
struct DesignEvaluation {
  enterprise::RedundancyDesign design;
  harm::SecurityMetrics before_patch;  ///< HARM metrics with all vulnerabilities.
  harm::SecurityMetrics after_patch;   ///< HARM metrics after the critical patch.
  double coa = 0.0;                    ///< capacity-oriented availability under the
                                       ///< monthly patch schedule (Table VI measure).
};

/// Evaluates designs over fixed server specs and topology.  Lower-layer SRN
/// aggregation is computed once per role and shared across designs.
class Evaluator {
 public:
  /// `patch_interval_hours` = 1/tau_p (720 = the paper's monthly schedule).
  Evaluator(std::map<enterprise::ServerRole, enterprise::ServerSpec> specs,
            enterprise::ReachabilityPolicy policy, double patch_interval_hours = 720.0);

  /// Convenience: the paper's case-study inputs.
  [[nodiscard]] static Evaluator paper_case_study(double patch_interval_hours = 720.0);

  [[nodiscard]] DesignEvaluation evaluate(const enterprise::RedundancyDesign& design) const;

  [[nodiscard]] std::vector<DesignEvaluation> evaluate_all(
      const std::vector<enterprise::RedundancyDesign>& designs) const;

  /// Per-role aggregated rates (Table V rows).
  [[nodiscard]] const std::map<enterprise::ServerRole, avail::AggregatedRates>& aggregated_rates()
      const noexcept {
    return rates_;
  }

  [[nodiscard]] const std::map<enterprise::ServerRole, enterprise::ServerSpec>& specs()
      const noexcept {
    return specs_;
  }

  [[nodiscard]] double patch_interval_hours() const noexcept { return patch_interval_hours_; }

 private:
  std::map<enterprise::ServerRole, enterprise::ServerSpec> specs_;
  enterprise::ReachabilityPolicy policy_;
  double patch_interval_hours_;
  std::map<enterprise::ServerRole, avail::AggregatedRates> rates_;
};

}  // namespace patchsec::core
