#pragma once
/// \file evaluation.hpp
/// \brief Backward-compatibility shim: the original Evaluator facade, now a
/// thin deprecated wrapper over core::Scenario + core::Session.
///
/// New code should build a Scenario (or Scenario::paper_case_study()) and
/// evaluate it through a Session — see scenario.hpp / session.hpp and
/// docs/MIGRATION.md.  Evaluator is kept for one release so downstream code
/// keeps compiling; it produces bit-identical metric values (it delegates
/// every computation to Session) but none of the new solver configuration or
/// diagnostics.

#include <map>
#include <memory>
#include <vector>

#include "patchsec/core/session.hpp"

namespace patchsec::core {

/// \brief Deprecated facade: one patch interval, fixed solver configuration,
/// bare-struct results.  Use core::Scenario + core::Session instead.
///
/// \deprecated Superseded by the Scenario/Session API (docs/MIGRATION.md):
///   * `Evaluator(specs, policy, h)` -> `Session(Scenario().with_specs(specs)
///     .with_policy(policy).with_patch_interval(h))`
///   * `Evaluator::paper_case_study()` -> `Scenario::paper_case_study()`
///   * `evaluate`/`evaluate_all` -> the Session equivalents, which return
///     EvalReports carrying solver diagnostics (EvalReport::metrics() is the
///     old DesignEvaluation payload).
class [[deprecated("use core::Scenario + core::Session (see docs/MIGRATION.md)")]] Evaluator {
 public:
  /// \brief Build an evaluator for a concrete deployment.
  /// \param specs   Per-role server specification (software stack,
  ///                vulnerabilities, failure/patch behaviour).
  /// \param policy  Topology/firewall reachability policy used to construct
  ///                the attack graph.
  /// \param patch_interval_hours  Mean time between patch rounds, 1/tau_p
  ///                (720 = the paper's monthly schedule).
  /// \note Construction now validates its inputs (Scenario::validate): an
  ///       empty specs map or a null policy hook throws
  ///       std::invalid_argument here, where the original deferred the
  ///       failure to evaluate().
  Evaluator(std::map<enterprise::ServerRole, enterprise::ServerSpec> specs,
            enterprise::ReachabilityPolicy policy, double patch_interval_hours = 720.0);

  /// \brief Convenience factory: the paper's case-study inputs (Tables I/IV).
  [[nodiscard]] static Evaluator paper_case_study(double patch_interval_hours = 720.0);

  /// \brief Evaluate one design: HARM metrics before/after the critical patch
  /// plus capacity-oriented availability under the patch schedule.
  [[nodiscard]] DesignEvaluation evaluate(const enterprise::RedundancyDesign& design) const;

  /// \brief Evaluate a design space, e.g. the paper's five candidates
  /// (enterprise::paper_designs()) or an enumerated sweep.
  [[nodiscard]] std::vector<DesignEvaluation> evaluate_all(
      const std::vector<enterprise::RedundancyDesign>& designs) const;

  /// \brief Per-role aggregated patch/recovery rates (Table V rows).
  [[nodiscard]] const std::map<enterprise::ServerRole, avail::AggregatedRates>& aggregated_rates()
      const;

  [[nodiscard]] const std::map<enterprise::ServerRole, enterprise::ServerSpec>& specs() const;

  [[nodiscard]] double patch_interval_hours() const;

 private:
  // Shared so the shim stays copyable like the original Evaluator (Session
  // itself is non-copyable: it owns a mutex-guarded cache).  Copies share
  // the memoized aggregations; Session is thread-safe and logically const.
  std::shared_ptr<const Session> session_;
};

}  // namespace patchsec::core
