#pragma once
/// \file report.hpp
/// \brief Emitters for the paper's presentation artifacts: the Fig. 6 scatter
/// data (ASP vs COA), the Fig. 7 radar data (six metrics per design) and
/// aligned ASCII tables for terminal output.  CSV output is
/// spreadsheet-ready.  Every emitter accepts both the rich Session results
/// (EvalReport) and the legacy DesignEvaluation payload; the EvalReport JSON
/// emitter additionally carries the solver diagnostics.

#include <iosfwd>
#include <string>
#include <vector>

#include "patchsec/core/session.hpp"

namespace patchsec::core {

/// \brief Fig. 6 scatter rows: one per design, before- and after-patch ASP
/// plus COA.
void write_scatter_csv(std::ostream& out, const std::vector<DesignEvaluation>& evals);
void write_scatter_csv(std::ostream& out, const std::vector<EvalReport>& reports);

/// \brief Fig. 7 radar rows: design, phase(before|after), AIM, ASP, NoEV,
/// NoAP, NoEP, COA.
void write_radar_csv(std::ostream& out, const std::vector<DesignEvaluation>& evals);
void write_radar_csv(std::ostream& out, const std::vector<EvalReport>& reports);

/// \brief Human-readable fixed-width table of all metrics for all designs.
void write_table(std::ostream& out, const std::vector<DesignEvaluation>& evals);
void write_table(std::ostream& out, const std::vector<EvalReport>& reports);

/// \brief Render one design row as "name: ASP=..., COA=...".
[[nodiscard]] std::string summary_line(const DesignEvaluation& eval);
[[nodiscard]] std::string summary_line(const EvalReport& report);

/// \brief Machine-readable JSON array of the evaluations (one object per
/// design with before/after metric blocks and coa) — for dashboards and
/// plotting pipelines.  The EvalReport overload adds a "diagnostics" block
/// (patch interval, per-stage state counts/iterations/residuals, converged
/// flag, wall time).
void write_json(std::ostream& out, const std::vector<DesignEvaluation>& evals);
void write_json(std::ostream& out, const std::vector<EvalReport>& reports);

}  // namespace patchsec::core
