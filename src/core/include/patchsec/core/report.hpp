#pragma once
// Emitters for the paper's presentation artifacts: the Fig. 6 scatter data
// (ASP vs COA), the Fig. 7 radar data (six metrics per design) and aligned
// ASCII tables for terminal output.  CSV output is spreadsheet-ready.

#include <iosfwd>
#include <string>
#include <vector>

#include "patchsec/core/evaluation.hpp"

namespace patchsec::core {

/// Fig. 6 scatter rows: one per design, before- and after-patch ASP plus COA.
void write_scatter_csv(std::ostream& out, const std::vector<DesignEvaluation>& evals);

/// Fig. 7 radar rows: design, phase(before|after), AIM, ASP, NoEV, NoAP,
/// NoEP, COA.
void write_radar_csv(std::ostream& out, const std::vector<DesignEvaluation>& evals);

/// Human-readable fixed-width table of all metrics for all designs.
void write_table(std::ostream& out, const std::vector<DesignEvaluation>& evals);

/// Render one design row as "name: ASP=..., COA=...".
[[nodiscard]] std::string summary_line(const DesignEvaluation& eval);

/// Machine-readable JSON array of the evaluations (one object per design
/// with before/after metric blocks and coa) — for dashboards and plotting
/// pipelines.
void write_json(std::ostream& out, const std::vector<DesignEvaluation>& evals);

}  // namespace patchsec::core
