#include "patchsec/core/scenario.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace patchsec::core {

Scenario Scenario::paper_case_study() {
  return Scenario()
      .with_specs(enterprise::paper_server_specs())
      .with_policy(enterprise::ReachabilityPolicy::three_tier())
      .with_patch_interval(720.0)
      .with_designs(enterprise::paper_designs());
}

Scenario& Scenario::with_specs(std::map<enterprise::ServerRole, enterprise::ServerSpec> specs) {
  specs_ = std::move(specs);
  return *this;
}

Scenario& Scenario::with_spec(enterprise::ServerRole role, enterprise::ServerSpec spec) {
  specs_.insert_or_assign(role, std::move(spec));
  return *this;
}

Scenario& Scenario::with_policy(enterprise::ReachabilityPolicy policy) {
  policy_ = std::move(policy);
  return *this;
}

Scenario& Scenario::with_patch_interval(double hours) {
  patch_intervals_ = {hours};
  return *this;
}

Scenario& Scenario::with_patch_schedule(std::vector<double> hours) {
  patch_intervals_ = std::move(hours);
  return *this;
}

Scenario& Scenario::with_designs(std::vector<enterprise::RedundancyDesign> designs) {
  designs_ = std::move(designs);
  return *this;
}

Scenario& Scenario::with_design(enterprise::RedundancyDesign design) {
  designs_.push_back(design);
  return *this;
}

Scenario& Scenario::with_engine(EngineOptions engine) {
  engine_ = engine;
  return *this;
}

void Scenario::validate() const {
  if (specs_.empty()) {
    throw std::invalid_argument("Scenario: no server specs (use with_specs/with_spec)");
  }
  if (!policy_.attacker_reaches || !policy_.reaches) {
    throw std::invalid_argument("Scenario: reachability policy hooks must be callable");
  }
  if (patch_intervals_.empty()) {
    throw std::invalid_argument("Scenario: empty patch schedule");
  }
  for (double h : patch_intervals_) {
    if (!(h > 0.0)) {
      throw std::invalid_argument("Scenario: patch interval must be > 0 hours, got " +
                                  std::to_string(h));
    }
  }
  for (const enterprise::RedundancyDesign& d : designs_) {
    if (d.total_servers() == 0) {
      throw std::invalid_argument("Scenario: design \"" + d.name() + "\" deploys no servers");
    }
    for (const enterprise::ServerRole role :
         {enterprise::ServerRole::kDns, enterprise::ServerRole::kWeb, enterprise::ServerRole::kApp,
          enterprise::ServerRole::kDb}) {
      if (d.count(role) > 0 && !specs_.contains(role)) {
        throw std::invalid_argument("Scenario: design \"" + d.name() + "\" deploys role " +
                                    std::string(enterprise::to_string(role)) +
                                    " but no spec was provided for it");
      }
    }
  }
  if (engine_.steady_state.max_iterations == 0) {
    throw std::invalid_argument("Scenario: steady_state.max_iterations must be > 0");
  }
}

}  // namespace patchsec::core
