#include "patchsec/core/scenario.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace patchsec::core {

std::vector<double> EngineOptions::transient_grid() const {
  if (!time_points.empty()) {
    double previous = 0.0;
    for (double t : time_points) {
      if (t < 0.0) {
        throw std::invalid_argument("EngineOptions: negative transient time point");
      }
      if (t < previous) {
        throw std::invalid_argument("EngineOptions: transient time_points must be ascending");
      }
      previous = t;
    }
    // A zero-length window has no interval COA, and the two backends would
    // disagree on what a {0.0} grid means — reject it here.
    if (!(time_points.back() > 0.0)) {
      throw std::invalid_argument("EngineOptions: transient window must end after t = 0");
    }
    return time_points;
  }
  if (!(horizon_hours > 0.0)) {
    throw std::invalid_argument("EngineOptions: horizon_hours must be > 0");
  }
  if (transient_points < 2) {
    throw std::invalid_argument("EngineOptions: transient_points must be >= 2");
  }
  std::vector<double> grid;
  grid.reserve(transient_points);
  for (std::size_t j = 0; j < transient_points; ++j) {
    grid.push_back(horizon_hours * static_cast<double>(j) /
                   static_cast<double>(transient_points - 1));
  }
  return grid;
}

Scenario Scenario::paper_case_study() {
  return Scenario()
      .with_specs(enterprise::paper_server_specs())
      .with_policy(enterprise::ReachabilityPolicy::three_tier())
      .with_patch_interval(720.0)
      .with_designs(enterprise::paper_designs());
}

Scenario& Scenario::with_specs(std::map<enterprise::ServerRole, enterprise::ServerSpec> specs) {
  specs_ = std::move(specs);
  return *this;
}

Scenario& Scenario::with_spec(enterprise::ServerRole role, enterprise::ServerSpec spec) {
  specs_.insert_or_assign(role, std::move(spec));
  return *this;
}

Scenario& Scenario::with_policy(enterprise::ReachabilityPolicy policy) {
  policy_ = std::move(policy);
  return *this;
}

Scenario& Scenario::with_patch_interval(double hours) {
  patch_intervals_ = {hours};
  return *this;
}

Scenario& Scenario::with_patch_schedule(std::vector<double> hours) {
  patch_intervals_ = std::move(hours);
  return *this;
}

Scenario& Scenario::with_designs(std::vector<enterprise::RedundancyDesign> designs) {
  designs_ = std::move(designs);
  return *this;
}

Scenario& Scenario::with_design(enterprise::RedundancyDesign design) {
  designs_.push_back(design);
  return *this;
}

Scenario& Scenario::with_engine(EngineOptions engine) {
  engine_ = engine;
  return *this;
}

void Scenario::validate() const {
  if (specs_.empty()) {
    throw std::invalid_argument("Scenario: no server specs (use with_specs/with_spec)");
  }
  if (!policy_.attacker_reaches || !policy_.reaches) {
    throw std::invalid_argument("Scenario: reachability policy hooks must be callable");
  }
  if (patch_intervals_.empty()) {
    throw std::invalid_argument("Scenario: empty patch schedule");
  }
  for (double h : patch_intervals_) {
    if (!(h > 0.0)) {
      throw std::invalid_argument("Scenario: patch interval must be > 0 hours, got " +
                                  std::to_string(h));
    }
  }
  for (const enterprise::RedundancyDesign& d : designs_) {
    if (d.total_servers() == 0) {
      throw std::invalid_argument("Scenario: design \"" + d.name() + "\" deploys no servers");
    }
    for (const enterprise::ServerRole role :
         {enterprise::ServerRole::kDns, enterprise::ServerRole::kWeb, enterprise::ServerRole::kApp,
          enterprise::ServerRole::kDb}) {
      if (d.count(role) > 0 && !specs_.contains(role)) {
        throw std::invalid_argument("Scenario: design \"" + d.name() + "\" deploys role " +
                                    std::string(enterprise::to_string(role)) +
                                    " but no spec was provided for it");
      }
    }
  }
  if (engine_.steady_state.max_iterations == 0) {
    throw std::invalid_argument("Scenario: steady_state.max_iterations must be > 0");
  }
}

}  // namespace patchsec::core
