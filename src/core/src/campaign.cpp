#include "patchsec/core/campaign.hpp"

#include <stdexcept>

#include "patchsec/avail/network_srn.hpp"

namespace patchsec::core {

std::vector<CampaignStage> severity_banded_campaign() {
  std::vector<CampaignStage> stages;
  stages.push_back({"critical (base > 8.0)", [](const nvd::Vulnerability& v) {
                      return v.base_score() > 8.0;
                    }});
  stages.push_back({"high (7.0 <= base <= 8.0)", [](const nvd::Vulnerability& v) {
                      return v.base_score() >= 7.0 && v.base_score() <= 8.0;
                    }});
  stages.push_back({"medium and below (base < 7.0)", [](const nvd::Vulnerability& v) {
                      return v.base_score() < 7.0;
                    }});
  return stages;
}

namespace {

std::vector<CampaignStageResult> run_campaign(
    const enterprise::RedundancyDesign& design,
    const std::map<enterprise::ServerRole, enterprise::ServerSpec>& specs,
    const enterprise::ReachabilityPolicy& policy, const std::vector<CampaignStage>& stages,
    double patch_interval_hours, const petri::AnalyzerOptions& engine) {
  if (stages.empty()) throw std::invalid_argument("evaluate_campaign: no stages");
  for (const CampaignStage& s : stages) {
    if (!s.patched) throw std::invalid_argument("evaluate_campaign: null stage predicate");
  }

  const enterprise::NetworkModel network(design, specs, policy);
  const harm::Harm unpatched = network.build_harm();

  std::vector<CampaignStageResult> results;
  for (std::size_t k = 0; k < stages.size(); ++k) {
    CampaignStageResult result;
    result.stage = stages[k].name;

    // Cumulative predicate: stages 0..k.
    const auto cumulative = [&stages, k](const nvd::Vulnerability& v) {
      for (std::size_t i = 0; i <= k; ++i) {
        if (stages[i].patched(v)) return true;
      }
      return false;
    };
    result.security = unpatched.after_patch(cumulative).evaluate();

    // Work done in this stage across the network (per-instance counts).
    std::size_t stage_vulns = 0;
    std::map<enterprise::ServerRole, avail::AggregatedRates> rates;
    for (const auto& [role, spec] : specs) {
      if (design.count(role) == 0) continue;
      double app_hours = 0.0;
      double os_hours = 0.0;
      std::size_t per_server = 0;
      for (const nvd::Vulnerability& v : spec.vulnerabilities) {
        if (!stages[k].patched(v)) continue;
        // Skip vulnerabilities already handled by an earlier stage.
        bool earlier = false;
        for (std::size_t i = 0; i < k; ++i) {
          if (stages[i].patched(v)) {
            earlier = true;
            break;
          }
        }
        if (earlier) continue;
        ++per_server;
        if (v.layer == nvd::SoftwareLayer::kApplication) {
          app_hours += enterprise::kAppVulnPatchHours;
        } else {
          os_hours += enterprise::kOsVulnPatchHours;
        }
      }
      stage_vulns += per_server * design.count(role);

      avail::ServerSrnOptions options;
      options.patch_interval_hours = patch_interval_hours;
      // A stage with no work on this tier still reboots nothing and patches
      // "instantly" — model a negligible-but-positive window so the clock
      // semantics stay uniform.
      options.app_patch_hours_override = app_hours;
      options.os_patch_hours_override = os_hours;
      if (app_hours == 0.0 && os_hours == 0.0) {
        options.app_patch_hours_override = 1e-6;
        options.reboot_required = false;  // nothing installed: no reboot
      }
      rates.emplace(role, avail::aggregate_server_detailed(spec, options, engine).rates);
    }
    result.vulnerabilities_patched = stage_vulns;
    result.coa = avail::capacity_oriented_availability_detailed(design, rates, engine).coa;

    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace

std::vector<CampaignStageResult> evaluate_campaign(
    const enterprise::RedundancyDesign& design,
    const std::map<enterprise::ServerRole, enterprise::ServerSpec>& specs,
    const enterprise::ReachabilityPolicy& policy, const std::vector<CampaignStage>& stages,
    double patch_interval_hours) {
  return run_campaign(design, specs, policy, stages, patch_interval_hours,
                      petri::AnalyzerOptions{});
}

std::vector<CampaignStageResult> evaluate_campaign(const Session& session,
                                                   const enterprise::RedundancyDesign& design,
                                                   const std::vector<CampaignStage>& stages) {
  const Scenario& scenario = session.scenario();
  petri::AnalyzerOptions engine = scenario.engine().analyzer_options();
  // Stage results carry no per-solve diagnostics, so a diverged solve could
  // not be surfaced to the caller — always escalate it instead.
  engine.throw_on_divergence = true;
  return run_campaign(design, scenario.specs(), scenario.policy(), stages,
                      scenario.patch_interval_hours(), engine);
}

}  // namespace patchsec::core
