#include "patchsec/core/session.hpp"

#include "patchsec/avail/lumped_coa.hpp"
#include "patchsec/avail/server_srn.hpp"
#include "patchsec/avail/transient_coa.hpp"

#include <atomic>
#include <cmath>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <thread>
#include <utility>

#include "patchsec/linalg/stationary_solver.hpp"

namespace patchsec::core {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

using Job = std::pair<enterprise::RedundancyDesign, double>;

// Static verification of the upper-layer network net (petri::verify), run
// before any solve.  The NetworkSrn build itself is a handful of places and
// transitions — no state-space exploration — so rebuilding it here for the
// lumped path (which never materializes the flat net) costs nothing.
StageVerification verify_network_stage(const enterprise::RedundancyDesign& design,
                                       const std::map<enterprise::ServerRole,
                                                      avail::AggregatedRates>& rates,
                                       const EngineOptions& engine) {
  const avail::NetworkSrn net = avail::build_network_srn(design, rates);
  std::vector<std::pair<std::string, petri::RewardFunction>> rewards;
  rewards.emplace_back("coa", net.coa_reward());
  StageVerification stage{"network",
                          petri::verify_model(net.model, rewards, engine.verify_options)};
  if (engine.verify == VerifyMode::kStrict) {
    petri::throw_on_verify_errors(stage.report, stage.stage);
  }
  return stage;
}

}  // namespace

bool EvalReport::converged() const noexcept {
  if (backend == EvalBackend::kAnalytic && !availability_diagnostics.converged) return false;
  for (const auto& [role, d] : aggregation_diagnostics) {
    if (!d.converged) return false;
  }
  return true;
}

bool EvalReport::agrees_with(const EvalReport& other, double z) const noexcept {
  const double scale = z / 1.96;
  const double hw_a = coa_half_width_95 * scale;
  const double hw_b = other.coa_half_width_95 * scale;
  double combined = std::sqrt(hw_a * hw_a + hw_b * hw_b);
  if (combined == 0.0) combined = 1e-9;  // two analytic reports: round-off only
  return std::abs(coa - other.coa) <= combined;
}

bool EvalReport::transient_point_agrees(const EvalReport& other, std::size_t j,
                                        double z) const noexcept {
  if (j >= transient.coa.size() || j >= other.transient.coa.size()) return false;
  const double scale = z / 1.96;
  // Replication-aware band floor.  COA(X_t) is a discrete reward, so a
  // replication sample can be degenerate (every replication saw the same
  // value), collapsing the t-interval to zero width even though the true
  // mean differs from the observed value by up to ~3/n at 95% confidence
  // (the rule of three for unobserved outcomes).  Floor the combined band at
  // that resolution; two analytic curves keep the round-off-only floor.
  const std::size_t replications =
      std::max(simulation_diagnostics.replications, other.simulation_diagnostics.replications);
  const double floor_hw = replications > 0 ? 3.0 / static_cast<double>(replications) : 1e-9;
  const double hw_a =
      (j < transient.half_width_95.size() ? transient.half_width_95[j] : 0.0) * scale;
  const double hw_b =
      (j < other.transient.half_width_95.size() ? other.transient.half_width_95[j] : 0.0) *
      scale;
  double combined = std::sqrt(hw_a * hw_a + hw_b * hw_b);
  if (combined < floor_hw) combined = floor_hw;
  return std::abs(transient.coa[j] - other.transient.coa[j]) <= combined;
}

bool EvalReport::transient_agrees_with(const EvalReport& other, double z) const noexcept {
  if (transient.empty() || other.transient.empty()) return false;
  const std::vector<double>& mine = transient.time_points_hours;
  const std::vector<double>& theirs = other.transient.time_points_hours;
  if (mine.size() != theirs.size()) return false;
  for (std::size_t j = 0; j < mine.size(); ++j) {
    if (std::abs(mine[j] - theirs[j]) > 1e-9) return false;  // different grids
    if (!transient_point_agrees(other, j, z)) return false;
  }
  return true;
}

bool EvalReport::lint_clean() const noexcept {
  for (const StageVerification& stage : verification) {
    if (!stage.report.clean()) return false;
  }
  return true;
}

std::size_t EvalReport::total_solver_iterations() const noexcept {
  std::size_t total = availability_diagnostics.solver_iterations;
  for (const auto& [role, d] : aggregation_diagnostics) total += d.solver_iterations;
  return total;
}

DesignEvaluation EvalReport::metrics() const {
  return DesignEvaluation{design, before_patch, after_patch, coa};
}

Session::Session(Scenario scenario) : scenario_(std::move(scenario)) { scenario_.validate(); }

double Session::canonical_interval(double patch_interval_hours) {
  // !(x > 0) also catches NaN, but reject it with its own message: a NaN key
  // would break std::map's strict weak ordering, silently aliasing entries.
  if (std::isnan(patch_interval_hours)) {
    throw std::invalid_argument("Session: patch interval is NaN");
  }
  if (!(patch_interval_hours > 0.0)) {
    throw std::invalid_argument("Session: patch interval must be > 0 hours");
  }
  // Normalize the one bit pattern that compares equal to a different one
  // (-0.0 == +0.0); everything else keys on its exact bits — see the
  // contract on the declaration.  Unreachable today (zeros are rejected
  // above) but kept so the contract survives a relaxed range check.
  return patch_interval_hours == 0.0 ? 0.0 : patch_interval_hours;
}

SolverWorkspaces& Session::workspaces_for_this_thread() const {
  const std::lock_guard<std::mutex> lock(workspace_mutex_);
  std::unique_ptr<SolverWorkspaces>& slot = workspaces_[std::this_thread::get_id()];
  if (!slot) slot = std::make_unique<SolverWorkspaces>();
  return *slot;
}

Session::WorkspaceCounters Session::workspace_counters() const {
  const std::lock_guard<std::mutex> lock(workspace_mutex_);
  WorkspaceCounters counters;
  counters.thread_slots = workspaces_.size();
  for (const auto& [tid, ws] : workspaces_) {
    counters.transient_structure_builds += ws->transient.structure_builds();
    counters.transient_structure_reuses += ws->transient.structure_reuses();
    counters.availability_solves += ws->availability.solve_count();
    counters.availability_transpose_rebuilds += ws->availability.transpose_rebuilds();
    counters.aggregation_solves += ws->aggregation.solve_count();
    counters.aggregation_transpose_rebuilds += ws->aggregation.transpose_rebuilds();
  }
  return counters;
}

const Session::IntervalAggregation& Session::aggregation_for(double patch_interval_hours) const {
  patch_interval_hours = canonical_interval(patch_interval_hours);
  {
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    const auto it = cache_.find(patch_interval_hours);
    if (it != cache_.end()) return it->second;
  }

  // Solve outside the lock so concurrent callers on different cadences
  // proceed in parallel.  Two threads racing on the same cold cadence both
  // compute; try_emplace keeps the first result and discards the duplicate
  // (acceptable: the computation is pure).
  IntervalAggregation agg;
  avail::ServerSrnOptions srn_options;
  srn_options.patch_interval_hours = patch_interval_hours;
  const petri::AnalyzerOptions engine = scenario_.engine().analyzer_options();
  const VerifyMode verify = scenario_.engine().verify;
  for (const auto& [role, spec] : scenario_.specs()) {
    if (verify != VerifyMode::kOff) {
      // Static pre-flight on the server net (incidence-matrix cost) before
      // the reachability-based aggregation solve touches it.
      StageVerification stage{std::string("server:") + enterprise::to_string(role),
                              petri::verify_model(avail::build_server_srn(spec, srn_options).model,
                                                  scenario_.engine().verify_options)};
      if (verify == VerifyMode::kStrict) petri::throw_on_verify_errors(stage.report, stage.stage);
      agg.verification.push_back(std::move(stage));
    }
    avail::ServerAggregation server = avail::aggregate_server_detailed(
        spec, srn_options, engine, &workspaces_for_this_thread().aggregation);
    agg.rates.emplace(role, server.rates);
    agg.diagnostics.emplace(role, server.diagnostics);
  }

  const std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_.try_emplace(patch_interval_hours, std::move(agg)).first->second;
}

std::vector<EvalReport> Session::run_batch(const std::vector<Job>& jobs) const {
  std::vector<EvalReport> reports(jobs.size());
  const EngineOptions& engine = scenario_.engine();

  unsigned workers = 1;
  if (engine.parallel && jobs.size() > 1) {
    workers = engine.threads != 0 ? engine.threads : std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
    if (workers > jobs.size()) workers = static_cast<unsigned>(jobs.size());
  }

  if (workers <= 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      reports[i] = evaluate(jobs[i].first, jobs[i].second);
    }
    return reports;
  }

  // Index-parallel loop over [0, count) on at most `workers` threads; the
  // first worker exception (if any) is rethrown here, and a thrown body
  // drains the queue so the batch fails fast.
  const auto parallel_for = [workers](std::size_t count, const auto& body) {
    if (count == 0) return;
    const unsigned pool = count < workers ? static_cast<unsigned>(count) : workers;
    std::atomic<std::size_t> next{0};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    const auto worker = [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= count) return;
        try {
          body(i);
        } catch (...) {
          next.store(count);  // cancel the remaining queue: fail fast
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          return;
        }
      }
    };
    std::vector<std::thread> threads;
    threads.reserve(pool);
    try {
      for (unsigned t = 0; t < pool; ++t) threads.emplace_back(worker);
    } catch (...) {
      // Thread spawn failed partway (std::system_error): drain the queue so
      // already-running workers finish, join them, then propagate — a
      // joinable std::thread destructor would call std::terminate.
      next.store(count);
      for (std::thread& t : threads) t.join();
      throw;
    }
    for (std::thread& t : threads) t.join();
    if (first_error) std::rethrow_exception(first_error);
  };

  // Prime the per-cadence aggregations serially (few unique cadences, shared
  // by every design), then the HARM metrics of every design appearing in
  // more than one job — across the worker pool, one design per task, so a
  // schedule sweep neither races duplicate HARM computations in the main
  // loop nor serializes them here.  Designs appearing once keep their HARM
  // work inside the main parallel loop.
  std::map<std::array<unsigned, enterprise::kRoleCount>, unsigned> jobs_per_design;
  std::vector<const enterprise::RedundancyDesign*> shared_designs;
  for (const Job& job : jobs) {
    (void)aggregation_for(job.second);
    if (++jobs_per_design[job.first.counts] == 2) shared_designs.push_back(&job.first);
  }
  parallel_for(shared_designs.size(), [&](std::size_t i) { (void)security_for(*shared_designs[i]); });

  parallel_for(jobs.size(),
               [&](std::size_t i) { reports[i] = evaluate(jobs[i].first, jobs[i].second); });
  return reports;
}

const Session::SecurityMetricsPair& Session::security_for(
    const enterprise::RedundancyDesign& design) const {
  {
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    const auto it = harm_cache_.find(design.counts);
    if (it != harm_cache_.end()) return it->second;
  }

  // Same lock-free-compute pattern as aggregation_for: racing threads on the
  // same cold design both compute; try_emplace keeps the first result.
  const enterprise::NetworkModel network(design, scenario_.specs(), scenario_.policy());
  const harm::Harm before = network.build_harm();
  SecurityMetricsPair metrics;
  // Path enumeration runs under the engine's cap policy (truncating by
  // default, with the overflow counted in SecurityMetrics::truncated_paths)
  // so a large-k design degrades observably instead of throwing at the
  // historical hard wall.
  metrics.before_patch = before.evaluate(scenario_.engine().harm_paths);
  metrics.after_patch = before.after_critical_patch().evaluate(scenario_.engine().harm_paths);

  const std::lock_guard<std::mutex> lock(cache_mutex_);
  return harm_cache_.try_emplace(design.counts, std::move(metrics)).first->second;
}

EvalReport Session::evaluate(const enterprise::RedundancyDesign& design) const {
  return evaluate(design, scenario_.patch_interval_hours());
}

EvalReport Session::evaluate(const enterprise::RedundancyDesign& design,
                             double patch_interval_hours) const {
  const auto start = Clock::now();
  const IntervalAggregation& agg = aggregation_for(patch_interval_hours);
  const SecurityMetricsPair& security = security_for(design);

  EvalReport report;
  report.design = design;
  report.patch_interval_hours = patch_interval_hours;
  report.before_patch = security.before_patch;
  report.after_patch = security.after_patch;
  report.backend = scenario_.engine().backend;

  if (scenario_.engine().verify != VerifyMode::kOff) {
    report.verification = agg.verification;
    report.verification.push_back(verify_network_stage(design, agg.rates, scenario_.engine()));
  }

  if (report.backend == EvalBackend::kSimulation) {
    const avail::NetworkSrn net = avail::build_network_srn(design, agg.rates);
    const sim::SrnSimulator simulator(net.model);
    // Parallel batches already saturate the machine with session workers;
    // replications then run serially inside each worker so the two pools
    // don't multiply (estimates are thread-count-invariant, so this changes
    // nothing but the schedule).
    sim::SimulationOptions sim_options = scenario_.engine().simulation;
    if (scenario_.engine().parallel) sim_options.threads = 1;
    const sim::SimulationEstimate est =
        simulator.steady_state_reward_replicated(net.coa_reward(), sim_options);
    report.coa = est.mean;
    report.coa_half_width_95 = est.half_width_95;
    report.simulation_diagnostics = est.diagnostics;
  } else if (scenario_.engine().lumping) {
    // Product form over the per-tier chains; no workspace — the tier chains
    // are tiny and structurally distinct, so a shared solver would thrash
    // its cached structure instead of helping.
    const avail::CoaEvaluation coa = avail::capacity_oriented_availability_lumped_detailed(
        design, agg.rates, scenario_.engine().analyzer_options());
    report.coa = coa.coa;
    report.availability_diagnostics = coa.diagnostics;
  } else {
    const avail::CoaEvaluation coa = avail::capacity_oriented_availability_detailed(
        design, agg.rates, scenario_.engine().analyzer_options(),
        &workspaces_for_this_thread().availability);
    report.coa = coa.coa;
    report.availability_diagnostics = coa.diagnostics;
  }
  report.aggregation_diagnostics = agg.diagnostics;
  report.wall_time_seconds = seconds_since(start);
  return report;
}

EvalReport Session::evaluate_transient(const enterprise::RedundancyDesign& design) const {
  return evaluate_transient(design, scenario_.patch_interval_hours());
}

EvalReport Session::evaluate_transient(const enterprise::RedundancyDesign& design,
                                       double patch_interval_hours) const {
  return evaluate_transient_impl(design, patch_interval_hours, scenario_.engine().initial_down);
}

EvalReport Session::evaluate_transient_impl(
    const enterprise::RedundancyDesign& design, double patch_interval_hours,
    const std::map<enterprise::ServerRole, unsigned>& initial_down) const {
  const auto start = Clock::now();
  const EngineOptions& engine = scenario_.engine();
  const std::vector<double> grid = engine.transient_grid();
  const IntervalAggregation& agg = aggregation_for(patch_interval_hours);
  const SecurityMetricsPair& security = security_for(design);

  EvalReport report;
  report.design = design;
  report.patch_interval_hours = patch_interval_hours;
  report.before_patch = security.before_patch;
  report.after_patch = security.after_patch;
  report.backend = engine.backend;
  report.transient.time_points_hours = grid;

  if (engine.verify != VerifyMode::kOff) {
    report.verification = agg.verification;
    report.verification.push_back(verify_network_stage(design, agg.rates, engine));
  }

  if (report.backend == EvalBackend::kSimulation) {
    const avail::NetworkSrn net = avail::build_network_srn(design, agg.rates);
    const petri::Marking window_start = avail::patch_window_marking(net, initial_down);
    const sim::SrnSimulator simulator(net.model);
    // Unlike evaluate(), no engine.parallel override here: transient
    // evaluation is never dispatched by run_batch, so the replication
    // fan-out is the only pool and may use its full thread budget.
    const sim::TransientCurveEstimate est = simulator.transient_reward_curve(
        net.coa_reward(), grid, engine.simulation, &window_start);
    report.transient.coa = est.mean;
    report.transient.half_width_95 = est.half_width_95;
    // The interval mean integrates the same trajectories the curve sampled.
    report.transient.accumulated_coa_hours = est.interval_mean * report.transient.horizon_hours();
    report.coa = est.interval_mean;
    report.coa_half_width_95 = est.interval_half_width_95;
    report.simulation_diagnostics = est.diagnostics;
  } else {
    avail::TransientCoaOptions options;
    options.initial_down = initial_down;
    options.uniformization = engine.uniformization;
    options.reachability = engine.reachability;
    const avail::CoaCurveEvaluation eval =
        engine.lumping
            ? avail::transient_coa_lumped_detailed(design, agg.rates, grid, options)
            : avail::transient_coa_detailed(design, agg.rates, grid, options,
                                            &workspaces_for_this_thread().transient);
    report.transient.coa.reserve(eval.curve.size());
    for (const avail::CoaPoint& point : eval.curve) report.transient.coa.push_back(point.coa);
    report.transient.accumulated_coa_hours = eval.accumulated_coa_hours;
    report.coa = report.transient.interval_coa();
    report.availability_diagnostics = eval.diagnostics;
    report.transient_diagnostics = eval.transient;
  }
  report.aggregation_diagnostics = agg.diagnostics;
  report.wall_time_seconds = seconds_since(start);
  return report;
}

std::vector<EvalReport> Session::evaluate_transient_batch(
    const enterprise::RedundancyDesign& design,
    const std::vector<std::map<enterprise::ServerRole, unsigned>>& waves) const {
  return evaluate_transient_batch(design, waves, scenario_.patch_interval_hours());
}

std::vector<EvalReport> Session::evaluate_transient_batch(
    const enterprise::RedundancyDesign& design,
    const std::vector<std::map<enterprise::ServerRole, unsigned>>& waves,
    double patch_interval_hours) const {
  if (waves.empty()) {
    throw std::invalid_argument("Session::evaluate_transient_batch: no waves");
  }
  const EngineOptions& engine = scenario_.engine();
  if (engine.backend == EvalBackend::kSimulation || engine.lumping) {
    // These backends have no panel mode (replications resp. a per-component
    // quotient pipeline); the batch degenerates to the sequential contract.
    std::vector<EvalReport> reports;
    reports.reserve(waves.size());
    for (const auto& wave : waves) {
      reports.push_back(evaluate_transient_impl(design, patch_interval_hours, wave));
    }
    return reports;
  }

  const auto start = Clock::now();
  const std::vector<double> grid = engine.transient_grid();
  const IntervalAggregation& agg = aggregation_for(patch_interval_hours);
  const SecurityMetricsPair& security = security_for(design);

  avail::TransientCoaOptions options;
  options.uniformization = engine.uniformization;
  options.reachability = engine.reachability;
  if (engine.parallel && options.uniformization.reduction_threads <= 1) {
    // The batch solve is one job, so run_batch's design fan-out never covers
    // it — give the panel reductions the engine's thread budget instead.
    const unsigned hw = std::thread::hardware_concurrency();
    options.uniformization.reduction_threads =
        engine.threads != 0 ? engine.threads : (hw != 0 ? hw : 1);
  }
  const std::vector<avail::CoaCurveEvaluation> evals = avail::transient_coa_batch(
      design, agg.rates, grid, waves, options, &workspaces_for_this_thread().transient);

  // One shared solve, B report shells around it.  The verification stages
  // are marking-independent, so every report carries the same set.
  std::vector<StageVerification> verification;
  if (engine.verify != VerifyMode::kOff) {
    verification = agg.verification;
    verification.push_back(verify_network_stage(design, agg.rates, engine));
  }
  const double wall = seconds_since(start);

  std::vector<EvalReport> reports;
  reports.reserve(waves.size());
  for (const avail::CoaCurveEvaluation& eval : evals) {
    EvalReport report;
    report.design = design;
    report.patch_interval_hours = patch_interval_hours;
    report.before_patch = security.before_patch;
    report.after_patch = security.after_patch;
    report.backend = engine.backend;
    report.verification = verification;
    report.transient.time_points_hours = grid;
    report.transient.coa.reserve(eval.curve.size());
    for (const avail::CoaPoint& point : eval.curve) report.transient.coa.push_back(point.coa);
    report.transient.accumulated_coa_hours = eval.accumulated_coa_hours;
    report.coa = report.transient.interval_coa();
    report.availability_diagnostics = eval.diagnostics;
    report.transient_diagnostics = eval.transient;
    report.aggregation_diagnostics = agg.diagnostics;
    report.wall_time_seconds = wall;
    reports.push_back(std::move(report));
  }
  return reports;
}

std::vector<EvalReport> Session::evaluate_all() const {
  std::vector<Job> jobs;
  jobs.reserve(scenario_.designs().size() * scenario_.patch_intervals().size());
  for (double hours : scenario_.patch_intervals()) {
    for (const enterprise::RedundancyDesign& design : scenario_.designs()) {
      jobs.emplace_back(design, hours);
    }
  }
  return run_batch(jobs);
}

std::vector<EvalReport> Session::evaluate_all(
    const std::vector<enterprise::RedundancyDesign>& designs) const {
  return evaluate_all(designs, scenario_.patch_interval_hours());
}

std::vector<EvalReport> Session::evaluate_all(
    const std::vector<enterprise::RedundancyDesign>& designs, double patch_interval_hours) const {
  std::vector<Job> jobs;
  jobs.reserve(designs.size());
  for (const enterprise::RedundancyDesign& design : designs) {
    jobs.emplace_back(design, patch_interval_hours);
  }
  return run_batch(jobs);
}

const std::map<enterprise::ServerRole, avail::AggregatedRates>& Session::aggregated_rates() const {
  return aggregated_rates(scenario_.patch_interval_hours());
}

const std::map<enterprise::ServerRole, avail::AggregatedRates>& Session::aggregated_rates(
    double patch_interval_hours) const {
  return aggregation_for(patch_interval_hours).rates;
}

const std::map<enterprise::ServerRole, petri::SolveDiagnostics>& Session::aggregation_diagnostics(
    double patch_interval_hours) const {
  return aggregation_for(patch_interval_hours).diagnostics;
}

}  // namespace patchsec::core
