#include "patchsec/core/sensitivity.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace patchsec::core {

namespace {

double coa_with(const enterprise::RedundancyDesign& design,
                std::map<enterprise::ServerRole, avail::AggregatedRates> rates,
                enterprise::ServerRole role, bool perturb_mu, double factor) {
  auto& r = rates.at(role);
  if (perturb_mu) {
    r.mu_eq *= factor;
  } else {
    r.lambda_eq *= factor;
  }
  return avail::capacity_oriented_availability(design, rates);
}

}  // namespace

std::vector<SensitivityEntry> coa_sensitivity(
    const enterprise::RedundancyDesign& design,
    const std::map<enterprise::ServerRole, avail::AggregatedRates>& rates,
    double relative_step) {
  if (!(relative_step > 0.0) || relative_step >= 1.0) {
    throw std::invalid_argument("coa_sensitivity: relative_step must be in (0,1)");
  }
  const double base_coa = avail::capacity_oriented_availability(design, rates);

  std::vector<SensitivityEntry> out;
  for (const auto& [role, r] : rates) {
    if (design.count(role) == 0) continue;
    for (bool perturb_mu : {true, false}) {
      const double base_value = perturb_mu ? r.mu_eq : r.lambda_eq;
      const double up = coa_with(design, rates, role, perturb_mu, 1.0 + relative_step);
      const double down = coa_with(design, rates, role, perturb_mu, 1.0 - relative_step);
      SensitivityEntry entry;
      entry.parameter = std::string(perturb_mu ? "mu_eq(" : "lambda_eq(") +
                        enterprise::to_string(role) + ")";
      entry.base_value = base_value;
      entry.derivative = (up - down) / (2.0 * relative_step * base_value);
      entry.elasticity = entry.derivative * base_value / base_coa;
      out.push_back(std::move(entry));
    }
  }
  std::sort(out.begin(), out.end(), [](const SensitivityEntry& a, const SensitivityEntry& b) {
    return std::abs(a.elasticity) > std::abs(b.elasticity);
  });
  return out;
}

}  // namespace patchsec::core
