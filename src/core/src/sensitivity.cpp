#include "patchsec/core/sensitivity.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace patchsec::core {

namespace {

double coa_with(const enterprise::RedundancyDesign& design,
                std::map<enterprise::ServerRole, avail::AggregatedRates> rates,
                enterprise::ServerRole role, bool perturb_mu, double factor,
                const petri::AnalyzerOptions& engine) {
  auto& r = rates.at(role);
  if (perturb_mu) {
    r.mu_eq *= factor;
  } else {
    r.lambda_eq *= factor;
  }
  return avail::capacity_oriented_availability_detailed(design, rates, engine).coa;
}

std::vector<SensitivityEntry> sensitivity(
    const enterprise::RedundancyDesign& design,
    const std::map<enterprise::ServerRole, avail::AggregatedRates>& rates, double relative_step,
    const petri::AnalyzerOptions& engine) {
  if (!(relative_step > 0.0) || relative_step >= 1.0) {
    throw std::invalid_argument("coa_sensitivity: relative_step must be in (0,1)");
  }
  const double base_coa =
      avail::capacity_oriented_availability_detailed(design, rates, engine).coa;

  std::vector<SensitivityEntry> out;
  for (const auto& [role, r] : rates) {
    if (design.count(role) == 0) continue;
    for (bool perturb_mu : {true, false}) {
      const double base_value = perturb_mu ? r.mu_eq : r.lambda_eq;
      const double up = coa_with(design, rates, role, perturb_mu, 1.0 + relative_step, engine);
      const double down = coa_with(design, rates, role, perturb_mu, 1.0 - relative_step, engine);
      SensitivityEntry entry;
      entry.parameter = std::string(perturb_mu ? "mu_eq(" : "lambda_eq(") +
                        enterprise::to_string(role) + ")";
      entry.base_value = base_value;
      entry.derivative = (up - down) / (2.0 * relative_step * base_value);
      entry.elasticity = entry.derivative * base_value / base_coa;
      out.push_back(std::move(entry));
    }
  }
  std::sort(out.begin(), out.end(), [](const SensitivityEntry& a, const SensitivityEntry& b) {
    return std::abs(a.elasticity) > std::abs(b.elasticity);
  });
  return out;
}

}  // namespace

std::vector<SensitivityEntry> coa_sensitivity(
    const enterprise::RedundancyDesign& design,
    const std::map<enterprise::ServerRole, avail::AggregatedRates>& rates, double relative_step) {
  return sensitivity(design, rates, relative_step, petri::AnalyzerOptions{});
}

std::vector<SensitivityEntry> coa_sensitivity(const Session& session,
                                              const enterprise::RedundancyDesign& design,
                                              double relative_step) {
  petri::AnalyzerOptions engine = session.scenario().engine().analyzer_options();
  // Elasticities carry no per-solve diagnostics, so a diverged solve could
  // not be surfaced to the caller — always escalate it instead.  That covers
  // the COA solves below; the memoized base rates were solved under the
  // session's own (possibly non-throwing) engine, so vet their diagnostics
  // with the same criterion SrnAnalyzer uses before building on them.
  engine.throw_on_divergence = true;
  const double hours = session.scenario().patch_interval_hours();
  for (const auto& [role, diag] : session.aggregation_diagnostics(hours)) {
    if (diag.badly_diverged()) {
      throw std::runtime_error(std::string("coa_sensitivity: lower-layer aggregation for role ") +
                               enterprise::to_string(role) + " did not converge");
    }
  }
  return sensitivity(design, session.aggregated_rates(hours), relative_step, engine);
}

}  // namespace patchsec::core
