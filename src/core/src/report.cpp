#include "patchsec/core/report.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace patchsec::core {

void write_scatter_csv(std::ostream& out, const std::vector<DesignEvaluation>& evals) {
  out << "design,asp_before,asp_after,coa\n";
  for (const DesignEvaluation& e : evals) {
    out << e.design.name() << ',' << e.before_patch.attack_success_probability << ','
        << e.after_patch.attack_success_probability << ',' << std::setprecision(10) << e.coa
        << '\n';
  }
}

void write_radar_csv(std::ostream& out, const std::vector<DesignEvaluation>& evals) {
  out << "design,phase,aim,asp,noev,noap,noep,coa\n";
  for (const DesignEvaluation& e : evals) {
    const auto row = [&](const char* phase, const harm::SecurityMetrics& m) {
      out << e.design.name() << ',' << phase << ',' << m.attack_impact << ','
          << m.attack_success_probability << ',' << m.exploitable_vulnerabilities << ','
          << m.attack_paths << ',' << m.entry_points << ',' << std::setprecision(10) << e.coa
          << '\n';
    };
    row("before", e.before_patch);
    row("after", e.after_patch);
  }
}

void write_table(std::ostream& out, const std::vector<DesignEvaluation>& evals) {
  out << std::left << std::setw(28) << "design" << std::right << std::setw(7) << "phase"
      << std::setw(8) << "AIM" << std::setw(9) << "ASP" << std::setw(6) << "NoEV" << std::setw(6)
      << "NoAP" << std::setw(6) << "NoEP" << std::setw(11) << "COA" << '\n';
  for (const DesignEvaluation& e : evals) {
    const auto row = [&](const char* phase, const harm::SecurityMetrics& m) {
      out << std::left << std::setw(28) << e.design.name() << std::right << std::setw(7) << phase
          << std::setw(8) << std::fixed << std::setprecision(1) << m.attack_impact << std::setw(9)
          << std::setprecision(4) << m.attack_success_probability << std::setw(6)
          << m.exploitable_vulnerabilities << std::setw(6) << m.attack_paths << std::setw(6)
          << m.entry_points << std::setw(11) << std::setprecision(5) << e.coa << '\n';
      out.unsetf(std::ios::fixed);
    };
    row("before", e.before_patch);
    row("after", e.after_patch);
  }
}

void write_json(std::ostream& out, const std::vector<DesignEvaluation>& evals) {
  const auto metrics_json = [&out](const harm::SecurityMetrics& m) {
    out << "{\"aim\":" << m.attack_impact << ",\"asp\":" << m.attack_success_probability
        << ",\"noev\":" << m.exploitable_vulnerabilities << ",\"noap\":" << m.attack_paths
        << ",\"noep\":" << m.entry_points << "}";
  };
  out << "[";
  for (std::size_t i = 0; i < evals.size(); ++i) {
    const DesignEvaluation& e = evals[i];
    if (i != 0) out << ",";
    out << "\n  {\"design\":\"" << e.design.name() << "\",\"servers\":"
        << e.design.total_servers() << ",\"before\":";
    metrics_json(e.before_patch);
    out << ",\"after\":";
    metrics_json(e.after_patch);
    out << ",\"coa\":" << std::setprecision(10) << e.coa << "}";
  }
  out << "\n]\n";
}

std::string summary_line(const DesignEvaluation& eval) {
  std::ostringstream out;
  out << eval.design.name() << ": ASP(after)=" << std::setprecision(4)
      << eval.after_patch.attack_success_probability << ", COA=" << std::setprecision(6)
      << eval.coa;
  return out.str();
}

}  // namespace patchsec::core
