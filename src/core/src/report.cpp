#include "patchsec/core/report.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace patchsec::core {

namespace {

/// The EvalReport emitters reuse the DesignEvaluation formatting verbatim.
std::vector<DesignEvaluation> strip_diagnostics(const std::vector<EvalReport>& reports) {
  std::vector<DesignEvaluation> evals;
  evals.reserve(reports.size());
  for (const EvalReport& r : reports) evals.push_back(r.metrics());
  return evals;
}

/// One "{aim,asp,noev,noap,noep}" JSON object — shared by both write_json
/// overloads so the two outputs cannot drift apart.
void metrics_json(std::ostream& out, const harm::SecurityMetrics& m) {
  out << "{\"aim\":" << m.attack_impact << ",\"asp\":" << m.attack_success_probability
      << ",\"noev\":" << m.exploitable_vulnerabilities << ",\"noap\":" << m.attack_paths
      << ",\"noep\":" << m.entry_points << "}";
}

/// The common per-design JSON prefix: {"design":...,"servers":N,...,
/// "before":{...},"after":{...},"coa":C — the caller closes the object.
void design_json_prefix(std::ostream& out, const DesignEvaluation& e) {
  out << "{\"design\":\"" << e.design.name() << "\",\"servers\":" << e.design.total_servers()
      << ",\"before\":";
  metrics_json(out, e.before_patch);
  out << ",\"after\":";
  metrics_json(out, e.after_patch);
  out << ",\"coa\":" << e.coa;
}

}  // namespace

void write_scatter_csv(std::ostream& out, const std::vector<DesignEvaluation>& evals) {
  out << "design,asp_before,asp_after,coa\n";
  for (const DesignEvaluation& e : evals) {
    out << e.design.name() << ',' << e.before_patch.attack_success_probability << ','
        << e.after_patch.attack_success_probability << ',' << std::setprecision(10) << e.coa
        << '\n';
  }
}

void write_radar_csv(std::ostream& out, const std::vector<DesignEvaluation>& evals) {
  out << "design,phase,aim,asp,noev,noap,noep,coa\n";
  for (const DesignEvaluation& e : evals) {
    const auto row = [&](const char* phase, const harm::SecurityMetrics& m) {
      out << e.design.name() << ',' << phase << ',' << m.attack_impact << ','
          << m.attack_success_probability << ',' << m.exploitable_vulnerabilities << ','
          << m.attack_paths << ',' << m.entry_points << ',' << std::setprecision(10) << e.coa
          << '\n';
    };
    row("before", e.before_patch);
    row("after", e.after_patch);
  }
}

void write_table(std::ostream& out, const std::vector<DesignEvaluation>& evals) {
  out << std::left << std::setw(28) << "design" << std::right << std::setw(7) << "phase"
      << std::setw(8) << "AIM" << std::setw(9) << "ASP" << std::setw(6) << "NoEV" << std::setw(6)
      << "NoAP" << std::setw(6) << "NoEP" << std::setw(11) << "COA" << '\n';
  for (const DesignEvaluation& e : evals) {
    const auto row = [&](const char* phase, const harm::SecurityMetrics& m) {
      out << std::left << std::setw(28) << e.design.name() << std::right << std::setw(7) << phase
          << std::setw(8) << std::fixed << std::setprecision(1) << m.attack_impact << std::setw(9)
          << std::setprecision(4) << m.attack_success_probability << std::setw(6)
          << m.exploitable_vulnerabilities << std::setw(6) << m.attack_paths << std::setw(6)
          << m.entry_points << std::setw(11) << std::setprecision(5) << e.coa << '\n';
      out.unsetf(std::ios::fixed);
    };
    row("before", e.before_patch);
    row("after", e.after_patch);
  }
}

void write_json(std::ostream& out, const std::vector<DesignEvaluation>& evals) {
  // Uniform precision for every element; restored afterwards so the caller's
  // stream state is untouched.
  const std::streamsize old_precision = out.precision(10);
  out << "[";
  for (std::size_t i = 0; i < evals.size(); ++i) {
    if (i != 0) out << ",";
    out << "\n  ";
    design_json_prefix(out, evals[i]);
    out << "}";
  }
  out << "\n]\n";
  out.precision(old_precision);
}

std::string summary_line(const DesignEvaluation& eval) {
  std::ostringstream out;
  out << eval.design.name() << ": ASP(after)=" << std::setprecision(4)
      << eval.after_patch.attack_success_probability << ", COA=" << std::setprecision(6)
      << eval.coa;
  return out.str();
}

void write_scatter_csv(std::ostream& out, const std::vector<EvalReport>& reports) {
  write_scatter_csv(out, strip_diagnostics(reports));
}

void write_radar_csv(std::ostream& out, const std::vector<EvalReport>& reports) {
  write_radar_csv(out, strip_diagnostics(reports));
}

void write_table(std::ostream& out, const std::vector<EvalReport>& reports) {
  write_table(out, strip_diagnostics(reports));
}

std::string summary_line(const EvalReport& report) { return summary_line(report.metrics()); }

void write_json(std::ostream& out, const std::vector<EvalReport>& reports) {
  // Uniform precision for every element; restored afterwards so the caller's
  // stream state is untouched.
  const std::streamsize old_precision = out.precision(10);
  const auto stage_json = [&out](const petri::SolveDiagnostics& d) {
    out << "{\"states\":" << d.tangible_states << ",\"vanishing\":" << d.vanishing_markings
        << ",\"transitions\":" << d.transitions << ",\"iterations\":" << d.solver_iterations
        << ",\"residual\":" << d.residual << ",\"converged\":" << (d.converged ? "true" : "false")
        << ",\"wall_s\":" << d.wall_time_seconds;
    if (d.flat_states != 0) out << ",\"flat_states\":" << d.flat_states;
    out << "}";
  };
  out << "[";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const EvalReport& r = reports[i];
    if (i != 0) out << ",";
    out << "\n  ";
    design_json_prefix(out, r.metrics());
    out << ",\"patch_interval_hours\":" << r.patch_interval_hours;
    out << ",\"diagnostics\":{\"converged\":" << (r.converged() ? "true" : "false")
        << ",\"total_iterations\":" << r.total_solver_iterations()
        << ",\"wall_s\":" << r.wall_time_seconds << ",\"availability\":";
    stage_json(r.availability_diagnostics);
    out << ",\"aggregation\":{";
    bool first = true;
    for (const auto& [role, d] : r.aggregation_diagnostics) {
      if (!first) out << ",";
      first = false;
      out << "\"" << enterprise::to_string(role) << "\":";
      stage_json(d);
    }
    out << "}}";
    if (!r.verification.empty()) {
      const auto escaped = [](const std::string& s) {
        std::string out_s;
        out_s.reserve(s.size());
        for (char c : s) {
          if (c == '"' || c == '\\') out_s.push_back('\\');
          out_s.push_back(c);
        }
        return out_s;
      };
      out << ",\"verify\":{\"clean\":" << (r.lint_clean() ? "true" : "false") << ",\"stages\":[";
      for (std::size_t s = 0; s < r.verification.size(); ++s) {
        const StageVerification& stage = r.verification[s];
        const petri::VerifyCertificates& c = stage.report.certificates;
        if (s != 0) out << ",";
        out << "{\"stage\":\"" << escaped(stage.stage)
            << "\",\"p_semiflows\":" << c.p_semiflows.size()
            << ",\"t_semiflows\":" << c.t_semiflows.size()
            << ",\"bounded\":" << (c.structurally_bounded ? "true" : "false")
            << ",\"conserving\":" << (c.token_conserving ? "true" : "false")
            << ",\"findings\":[";
        for (std::size_t f = 0; f < stage.report.findings.size(); ++f) {
          const petri::VerifyFinding& finding = stage.report.findings[f];
          if (f != 0) out << ",";
          out << "{\"rule\":\"" << escaped(finding.rule) << "\",\"severity\":\""
              << petri::to_string(finding.severity) << "\",\"subject\":\""
              << escaped(finding.subject) << "\",\"message\":\"" << escaped(finding.message)
              << "\"}";
        }
        out << "]}";
      }
      out << "]}";
    }
    if (!r.transient.empty()) {
      const auto array_json = [&out](const char* key, const std::vector<double>& values) {
        out << ",\"" << key << "\":[";
        for (std::size_t j = 0; j < values.size(); ++j) {
          if (j != 0) out << ",";
          out << values[j];
        }
        out << "]";
      };
      out << ",\"transient\":{\"horizon_hours\":" << r.transient.horizon_hours();
      array_json("time_points_hours", r.transient.time_points_hours);
      array_json("coa", r.transient.coa);
      if (!r.transient.half_width_95.empty()) {
        array_json("half_width_95", r.transient.half_width_95);
      }
      out << ",\"accumulated_coa_hours\":" << r.transient.accumulated_coa_hours
          << ",\"interval_coa\":" << r.transient.interval_coa()
          << ",\"uniformization\":{\"rate\":" << r.transient_diagnostics.uniformization_rate
          << ",\"left\":" << r.transient_diagnostics.left_point
          << ",\"right\":" << r.transient_diagnostics.right_point
          << ",\"matvecs\":" << r.transient_diagnostics.matvec_count
          << ",\"rhs\":" << r.transient_diagnostics.rhs_count << ",\"kernel\":\""
          << r.transient_diagnostics.kernel << "\"}}";
    }
    out << "}";
  }
  out << "\n]\n";
  out.precision(old_precision);
}

}  // namespace patchsec::core
