#include "patchsec/core/economics.hpp"

#include <stdexcept>

namespace patchsec::core {

namespace {

CostBreakdown cost_of(const enterprise::RedundancyDesign& design,
                      const harm::SecurityMetrics& after_patch, double coa,
                      const CostModel& model) {
  // Negated so NaN is rejected too.
  if (!(model.annual_attack_probability >= 0.0 && model.annual_attack_probability <= 1.0)) {
    throw std::invalid_argument("annual_attack_probability must be in [0,1]");
  }
  constexpr double kHoursPerYear = 8760.0;
  CostBreakdown cost;
  cost.infrastructure = model.server_cost_per_year * design.total_servers();
  cost.downtime = (1.0 - coa) * kHoursPerYear * model.downtime_cost_per_hour;
  cost.breach_risk =
      after_patch.attack_success_probability * model.annual_attack_probability * model.breach_cost;
  cost.patching = model.patch_labor_cost * model.patches_per_year * design.total_servers();
  return cost;
}

template <typename Eval>
const Eval& cheapest(const std::vector<Eval>& evals, const CostModel& model) {
  if (evals.empty()) throw std::invalid_argument("cheapest_design: no candidates");
  const Eval* best = &evals.front();
  double best_cost = annual_cost(*best, model).total();
  for (const Eval& e : evals) {
    const double c = annual_cost(e, model).total();
    if (c < best_cost) {
      best = &e;
      best_cost = c;
    }
  }
  return *best;
}

}  // namespace

CostBreakdown annual_cost(const DesignEvaluation& eval, const CostModel& model) {
  return cost_of(eval.design, eval.after_patch, eval.coa, model);
}

CostBreakdown annual_cost(const EvalReport& report, const CostModel& model) {
  return cost_of(report.design, report.after_patch, report.coa, model);
}

const DesignEvaluation& cheapest_design(const std::vector<DesignEvaluation>& evals,
                                        const CostModel& model) {
  return cheapest(evals, model);
}

const EvalReport& cheapest_design(const std::vector<EvalReport>& reports, const CostModel& model) {
  return cheapest(reports, model);
}

}  // namespace patchsec::core
