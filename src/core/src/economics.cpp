#include "patchsec/core/economics.hpp"

#include <stdexcept>

namespace patchsec::core {

CostBreakdown annual_cost(const DesignEvaluation& eval, const CostModel& model) {
  if (model.annual_attack_probability < 0.0 || model.annual_attack_probability > 1.0) {
    throw std::invalid_argument("annual_attack_probability must be in [0,1]");
  }
  constexpr double kHoursPerYear = 8760.0;
  CostBreakdown cost;
  cost.infrastructure = model.server_cost_per_year * eval.design.total_servers();
  cost.downtime = (1.0 - eval.coa) * kHoursPerYear * model.downtime_cost_per_hour;
  cost.breach_risk = eval.after_patch.attack_success_probability *
                     model.annual_attack_probability * model.breach_cost;
  cost.patching =
      model.patch_labor_cost * model.patches_per_year * eval.design.total_servers();
  return cost;
}

const DesignEvaluation& cheapest_design(const std::vector<DesignEvaluation>& evals,
                                        const CostModel& model) {
  if (evals.empty()) throw std::invalid_argument("cheapest_design: no candidates");
  const DesignEvaluation* best = &evals.front();
  double best_cost = annual_cost(*best, model).total();
  for (const DesignEvaluation& e : evals) {
    const double c = annual_cost(e, model).total();
    if (c < best_cost) {
      best = &e;
      best_cost = c;
    }
  }
  return *best;
}

}  // namespace patchsec::core
