#include "patchsec/core/evaluation.hpp"

namespace patchsec::core {

Evaluator::Evaluator(std::map<enterprise::ServerRole, enterprise::ServerSpec> specs,
                     enterprise::ReachabilityPolicy policy, double patch_interval_hours)
    : specs_(std::move(specs)), policy_(std::move(policy)),
      patch_interval_hours_(patch_interval_hours) {
  for (const auto& [role, spec] : specs_) {
    rates_.emplace(role, avail::aggregate_server(spec, patch_interval_hours_));
  }
}

Evaluator Evaluator::paper_case_study(double patch_interval_hours) {
  return Evaluator(enterprise::paper_server_specs(), enterprise::ReachabilityPolicy::three_tier(),
                   patch_interval_hours);
}

DesignEvaluation Evaluator::evaluate(const enterprise::RedundancyDesign& design) const {
  const enterprise::NetworkModel network(design, specs_, policy_);
  const harm::Harm before = network.build_harm();

  DesignEvaluation result;
  result.design = design;
  result.before_patch = before.evaluate();
  result.after_patch = before.after_critical_patch().evaluate();
  result.coa = avail::capacity_oriented_availability(design, rates_);
  return result;
}

std::vector<DesignEvaluation> Evaluator::evaluate_all(
    const std::vector<enterprise::RedundancyDesign>& designs) const {
  std::vector<DesignEvaluation> out;
  out.reserve(designs.size());
  for (const enterprise::RedundancyDesign& d : designs) out.push_back(evaluate(d));
  return out;
}

}  // namespace patchsec::core
