#include "patchsec/core/evaluation.hpp"

// This translation unit intentionally implements the deprecated shim.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#elif defined(_MSC_VER)
#pragma warning(disable : 4996)
#endif

namespace patchsec::core {

namespace {

Scenario shim_scenario(std::map<enterprise::ServerRole, enterprise::ServerSpec> specs,
                       enterprise::ReachabilityPolicy policy, double patch_interval_hours) {
  EngineOptions engine;
  engine.throw_on_divergence = true;  // the historical Evaluator behaviour
  return Scenario()
      .with_specs(std::move(specs))
      .with_policy(std::move(policy))
      .with_patch_interval(patch_interval_hours)
      .with_engine(engine);
}

}  // namespace

Evaluator::Evaluator(std::map<enterprise::ServerRole, enterprise::ServerSpec> specs,
                     enterprise::ReachabilityPolicy policy, double patch_interval_hours)
    : session_(std::make_shared<const Session>(
          shim_scenario(std::move(specs), std::move(policy), patch_interval_hours))) {
  // The original Evaluator aggregated eagerly in its constructor; preserve
  // that (including when construction throws on degenerate specs).
  (void)session_->aggregated_rates();
}

Evaluator Evaluator::paper_case_study(double patch_interval_hours) {
  return Evaluator(enterprise::paper_server_specs(), enterprise::ReachabilityPolicy::three_tier(),
                   patch_interval_hours);
}

DesignEvaluation Evaluator::evaluate(const enterprise::RedundancyDesign& design) const {
  return session_->evaluate(design).metrics();
}

std::vector<DesignEvaluation> Evaluator::evaluate_all(
    const std::vector<enterprise::RedundancyDesign>& designs) const {
  std::vector<DesignEvaluation> out;
  out.reserve(designs.size());
  for (const EvalReport& report : session_->evaluate_all(designs)) out.push_back(report.metrics());
  return out;
}

const std::map<enterprise::ServerRole, avail::AggregatedRates>& Evaluator::aggregated_rates()
    const {
  return session_->aggregated_rates();
}

const std::map<enterprise::ServerRole, enterprise::ServerSpec>& Evaluator::specs() const {
  return session_->scenario().specs();
}

double Evaluator::patch_interval_hours() const {
  return session_->scenario().patch_interval_hours();
}

}  // namespace patchsec::core
