#include "patchsec/core/decision.hpp"

namespace patchsec::core {

bool satisfies(const DesignEvaluation& eval, const TwoMetricBounds& bounds) {
  return eval.after_patch.attack_success_probability <= bounds.asp_upper &&
         eval.coa >= bounds.coa_lower;
}

bool satisfies(const DesignEvaluation& eval, const MultiMetricBounds& bounds) {
  const harm::SecurityMetrics& m = eval.after_patch;
  return m.attack_success_probability <= bounds.asp_upper &&
         m.exploitable_vulnerabilities <= bounds.noev_upper &&
         m.attack_paths <= bounds.noap_upper && m.entry_points <= bounds.noep_upper &&
         eval.coa >= bounds.coa_lower;
}

std::vector<DesignEvaluation> filter_designs(const std::vector<DesignEvaluation>& evals,
                                             const TwoMetricBounds& bounds) {
  std::vector<DesignEvaluation> out;
  for (const DesignEvaluation& e : evals) {
    if (satisfies(e, bounds)) out.push_back(e);
  }
  return out;
}

std::vector<DesignEvaluation> filter_designs(const std::vector<DesignEvaluation>& evals,
                                             const MultiMetricBounds& bounds) {
  std::vector<DesignEvaluation> out;
  for (const DesignEvaluation& e : evals) {
    if (satisfies(e, bounds)) out.push_back(e);
  }
  return out;
}

}  // namespace patchsec::core
