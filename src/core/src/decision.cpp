#include "patchsec/core/decision.hpp"

namespace patchsec::core {

namespace {

template <typename Eval, typename Bounds>
std::vector<Eval> filter(const std::vector<Eval>& evals, const Bounds& bounds) {
  std::vector<Eval> out;
  for (const Eval& e : evals) {
    if (satisfies(e, bounds)) out.push_back(e);
  }
  return out;
}

}  // namespace

bool satisfies(const DesignEvaluation& eval, const TwoMetricBounds& bounds) {
  return eval.after_patch.attack_success_probability <= bounds.asp_upper &&
         eval.coa >= bounds.coa_lower;
}

bool satisfies(const EvalReport& report, const TwoMetricBounds& bounds) {
  return satisfies(report.metrics(), bounds);
}

bool satisfies(const DesignEvaluation& eval, const MultiMetricBounds& bounds) {
  const harm::SecurityMetrics& m = eval.after_patch;
  return m.attack_success_probability <= bounds.asp_upper &&
         m.exploitable_vulnerabilities <= bounds.noev_upper &&
         m.attack_paths <= bounds.noap_upper && m.entry_points <= bounds.noep_upper &&
         eval.coa >= bounds.coa_lower;
}

bool satisfies(const EvalReport& report, const MultiMetricBounds& bounds) {
  return satisfies(report.metrics(), bounds);
}

std::vector<DesignEvaluation> filter_designs(const std::vector<DesignEvaluation>& evals,
                                             const TwoMetricBounds& bounds) {
  return filter(evals, bounds);
}

std::vector<DesignEvaluation> filter_designs(const std::vector<DesignEvaluation>& evals,
                                             const MultiMetricBounds& bounds) {
  return filter(evals, bounds);
}

std::vector<EvalReport> filter_designs(const std::vector<EvalReport>& reports,
                                       const TwoMetricBounds& bounds) {
  return filter(reports, bounds);
}

std::vector<EvalReport> filter_designs(const std::vector<EvalReport>& reports,
                                       const MultiMetricBounds& bounds) {
  return filter(reports, bounds);
}

}  // namespace patchsec::core
