#pragma once
/// \file srn_simulator.hpp
/// \brief Discrete-event Monte-Carlo simulation of an SrnModel.  A
/// first-class evaluation backend (core::EvalBackend::kSimulation) and the
/// statistical oracle of the differential validation harness: the same net,
/// executed by sampling exponential firings, must agree with the analytic
/// (reachability + steady-state) pipeline within confidence bounds.
///
/// Two steady-state engines:
///  * batch means — one long trajectory split into batches (serial);
///  * independent replications — many short trajectories, fanned out over
///    threads.  Each replication draws from its own counter-based RNG stream
///    (seeded from SimulationOptions::seed and the replication index), so the
///    estimate is bit-identical for a given seed regardless of thread count.
///
/// All engines run on the flattened petri::CompiledNet with reusable
/// event-loop workspaces (PR 3's allocation-free style): once warm, firing a
/// transition allocates nothing.

#include <cstdint>
#include <functional>
#include <vector>

#include "patchsec/petri/compiled_net.hpp"
#include "patchsec/petri/srn_model.hpp"

namespace patchsec::sim {

struct SimulationOptions {
  std::uint64_t seed = 42;
  double warmup_hours = 2000.0;  ///< discarded transient prefix (batch means
                                 ///< and replications alike).
  // --- batch-means engine ---------------------------------------------------
  double batch_hours = 20000.0;  ///< length of one batch-means batch.
  std::size_t batches = 16;      ///< number of batches (>= 2).
  // --- independent-replication engine --------------------------------------
  std::size_t replications = 32;   ///< independent trajectories (>= 2).
  double horizon_hours = 20000.0;  ///< measured horizon per replication
                                   ///< (after the warmup).
  unsigned threads = 0;  ///< worker threads for replications; 0 = hardware
                         ///< concurrency.  Estimates do not depend on this.
  // --- shared ---------------------------------------------------------------
  std::size_t max_vanishing_depth = 4096;  ///< immediate-chain bound.

  /// Throws std::invalid_argument with a precise message when any knob is
  /// unusable: batches < 2, replications < 2, or non-positive (or NaN)
  /// warmup_hours / batch_hours / horizon_hours.  Every engine validates its
  /// options through this before running.
  void validate() const;
};

/// Per-run execution counters, surfaced next to the estimate (and through
/// core::EvalReport when the simulation backend produced the report).
struct SimDiagnostics {
  std::size_t replications = 0;  ///< replications (or batches) aggregated.
  double half_width_95 = 0.0;    ///< 95% CI half width of the estimate.
  std::uint64_t events_fired = 0;  ///< timed + immediate firings executed.
  double wall_time_seconds = 0.0;
  unsigned threads_used = 1;
};

/// Replicated estimate of a transient reward curve: per-time-point means and
/// 95% half widths, plus the time-averaged reward over [0, t_back] from the
/// same replications (interval availability when the reward is COA).  The
/// finite-horizon counterpart of ctmc::TransientSolver::reward_curve and the
/// statistical oracle of the transient differential mode.
struct TransientCurveEstimate {
  std::vector<double> time_points;    ///< the grid evaluated (hours).
  std::vector<double> mean;           ///< E[reward(X_t)] per grid point.
  std::vector<double> half_width_95;  ///< 95% CI half width per grid point.
  double interval_mean = 0.0;          ///< mean of (1/T) int_0^T reward dt.
  double interval_half_width_95 = 0.0;  ///< its 95% CI half width.
  SimDiagnostics diagnostics;
};
// Note: per-point band checks against this estimate live in ONE place,
// core::EvalReport::transient_point_agrees — no convenience comparator here,
// so verdict semantics (floors, quadrature combination) cannot fork.

struct SimulationEstimate {
  double mean = 0.0;
  double half_width_95 = 0.0;  ///< 95% CI half width (batch or replication sample).
  std::size_t batches = 0;     ///< batches or replications aggregated.
  double total_time = 0.0;     ///< simulated model-time, all trajectories.
  SimDiagnostics diagnostics;

  [[nodiscard]] double lower() const noexcept { return mean - half_width_95; }
  [[nodiscard]] double upper() const noexcept { return mean + half_width_95; }
  /// True when `value` lies inside the CI rescaled to z standard errors
  /// (z = 1.96 keeps the stored 95% half width).
  [[nodiscard]] bool contains(double value, double z = 1.96) const noexcept {
    const double hw = half_width_95 * (z / 1.96);
    return value >= mean - hw && value <= mean + hw;
  }
};

/// Executes net trajectories and estimates time-averaged rewards.  The model
/// must outlive the simulator.  All methods are const; concurrent calls on
/// one simulator are safe when the model's guard/rate closures are pure.
class SrnSimulator {
 public:
  explicit SrnSimulator(const petri::SrnModel& model);

  /// Batch-means estimate of the steady-state (time-averaged) reward: one
  /// trajectory of warmup + batches * batch_hours model-time, serial.
  [[nodiscard]] SimulationEstimate steady_state_reward(const petri::RewardFunction& reward,
                                                       const SimulationOptions& options = {}) const;

  /// Fraction of time `predicate` holds (availability-style measure).
  [[nodiscard]] SimulationEstimate steady_state_probability(
      const std::function<bool(const petri::Marking&)>& predicate,
      const SimulationOptions& options = {}) const;

  /// Independent-replication estimate of the steady-state reward:
  /// `options.replications` trajectories of warmup + horizon_hours each, CI
  /// from the replication sample, fanned out over `options.threads` workers.
  /// Deterministic for a given seed regardless of thread count.
  [[nodiscard]] SimulationEstimate steady_state_reward_replicated(
      const petri::RewardFunction& reward, const SimulationOptions& options = {}) const;

  /// Replicated probability estimate (see steady_state_reward_replicated).
  [[nodiscard]] SimulationEstimate steady_state_probability_replicated(
      const std::function<bool(const petri::Marking&)>& predicate,
      const SimulationOptions& options = {}) const;

  /// Transient estimate by independent replications: E[reward(marking at
  /// time t)] starting from the initial marking.  The Monte-Carlo
  /// counterpart of uniformization (ctmc::transient_reward); CI from the
  /// replication sample.
  [[nodiscard]] SimulationEstimate transient_reward(const petri::RewardFunction& reward,
                                                    double t, std::size_t replications = 2000,
                                                    std::uint64_t seed = 42) const;

  /// Finite-horizon replicated estimate of the whole reward curve: each of
  /// `options.replications` trajectories runs once from time 0 (or from
  /// `start` when non-null — the patch-window entry marking) to the last
  /// grid point with NO warmup discard, recording reward(X_t) at every grid
  /// point and accumulating the reward-time integral as it goes.  Threaded
  /// exactly like steady_state_reward_replicated (counter-based streams,
  /// per-slot results, serial index-ordered reduction): bit-identical for a
  /// given seed regardless of thread count.  Uses options.seed /
  /// .replications / .threads / .max_vanishing_depth; the steady-state
  /// horizon and warmup knobs are ignored.  `time_points` must be non-empty,
  /// non-negative and ascending.
  [[nodiscard]] TransientCurveEstimate transient_reward_curve(
      const petri::RewardFunction& reward, const std::vector<double>& time_points,
      const SimulationOptions& options = {}, const petri::Marking* start = nullptr) const;

 private:
  const petri::SrnModel& model_;
  petri::CompiledNet net_;
};

}  // namespace patchsec::sim
