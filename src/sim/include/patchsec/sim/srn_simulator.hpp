#pragma once
// Discrete-event Monte-Carlo simulation of an SrnModel.  Used as an
// independent oracle for the analytic (reachability + steady-state) pipeline:
// the same net, executed by sampling exponential firings, must agree with the
// solver within confidence bounds.

#include <cstdint>
#include <random>
#include <vector>

#include "patchsec/petri/srn_model.hpp"

namespace patchsec::sim {

struct SimulationOptions {
  std::uint64_t seed = 42;
  double warmup_hours = 2000.0;     ///< discarded transient prefix.
  double batch_hours = 20000.0;     ///< length of one batch-means batch.
  std::size_t batches = 16;         ///< number of batches (>= 2).
};

struct SimulationEstimate {
  double mean = 0.0;
  double half_width_95 = 0.0;  ///< 95% CI half width from batch means.
  std::size_t batches = 0;
  double total_time = 0.0;

  [[nodiscard]] double lower() const noexcept { return mean - half_width_95; }
  [[nodiscard]] double upper() const noexcept { return mean + half_width_95; }
};

/// Executes a net trajectory and estimates time-averaged rewards.
class SrnSimulator {
 public:
  explicit SrnSimulator(const petri::SrnModel& model);

  /// Batch-means estimate of the steady-state (time-averaged) reward.
  [[nodiscard]] SimulationEstimate steady_state_reward(const petri::RewardFunction& reward,
                                                       const SimulationOptions& options = {});

  /// Fraction of time `predicate` holds (availability-style measure).
  [[nodiscard]] SimulationEstimate steady_state_probability(
      const std::function<bool(const petri::Marking&)>& predicate,
      const SimulationOptions& options = {});

  /// Transient estimate by independent replications: E[reward(marking at
  /// time t)] starting from the initial marking.  The Monte-Carlo
  /// counterpart of uniformization (ctmc::transient_reward); CI from the
  /// replication sample.
  [[nodiscard]] SimulationEstimate transient_reward(const petri::RewardFunction& reward,
                                                    double t, std::size_t replications = 2000,
                                                    std::uint64_t seed = 42);

 private:
  const petri::SrnModel& model_;
};

}  // namespace patchsec::sim
