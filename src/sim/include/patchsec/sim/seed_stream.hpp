#pragma once
/// \file seed_stream.hpp
/// \brief Counter-based seed derivation shared by every component with a
/// reproduce-from-seed contract: replication r of a simulation, scenario i
/// of a generator campaign.  `stream_seed(master, index)` depends only on
/// its arguments — never on thread schedule or prior draws — which is what
/// makes threaded replications bit-identical to serial ones and lets one
/// logged u64 rebuild a differential case exactly (docs/TESTING.md).
///
/// All users (sim::SrnSimulator, testgen::ScenarioGenerator,
/// testgen::DifferentialRunner) must derive through this header; private
/// copies would let the streams drift apart and silently break cross-module
/// reproduction.

#include <cstdint>

namespace patchsec::sim {

/// splitmix64 finalizer: decorrelates consecutive counters into full-width,
/// statistically independent 64-bit values.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// The seed of stream `index` under `master` (replication index, scenario
/// counter, ...).  Finalize the master first so nearby master seeds do not
/// produce overlapping stream families.
[[nodiscard]] constexpr std::uint64_t stream_seed(std::uint64_t master,
                                                  std::uint64_t index) noexcept {
  return splitmix64(splitmix64(master) ^ index);
}

}  // namespace patchsec::sim
