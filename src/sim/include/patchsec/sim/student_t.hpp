#pragma once
/// \file student_t.hpp
/// \brief Student-t 97.5% quantile for small-sample confidence intervals.
///
/// Every CI the simulation layer reports (batch means, independent
/// replications, transient curve points) is a t-interval: with n samples the
/// half width is t_{0.975, n-1} * s / sqrt(n).  Small replication/batch
/// counts need t, not z — a z-based CI under-covers (93% instead of 95% at
/// n = 16), which the differential harness would see as excess statistical
/// misses.

#include <cstddef>

namespace patchsec::sim {

/// Student-t 97.5% quantile: exact table for dof <= 8 (where the expansion
/// below is off by up to 44%), then the Cornish-Fisher expansion around the
/// normal quantile (~4e-3 low at dof 9, three-decimal accurate from
/// dof ~15; the envelope is pinned in tests/test_seed_stream.cpp).
[[nodiscard]] inline double t_quantile_975(std::size_t dof) noexcept {
  constexpr double kExact[] = {12.7062, 4.3027, 3.1824, 2.7764,
                               2.5706,  2.4469, 2.3646, 2.3060};
  if (dof == 0) return kExact[0];  // degenerate: callers require n >= 2
  if (dof <= 8) return kExact[dof - 1];
  const double z = 1.959963985;
  const double v = static_cast<double>(dof);
  const double z3 = z * z * z;
  const double z5 = z3 * z * z;
  return z + (z3 + z) / (4.0 * v) + (5.0 * z5 + 16.0 * z3 + 3.0 * z) / (96.0 * v * v);
}

}  // namespace patchsec::sim
