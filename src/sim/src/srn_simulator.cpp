#include "patchsec/sim/srn_simulator.hpp"

#include "patchsec/sim/seed_stream.hpp"
#include "patchsec/sim/student_t.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <mutex>
#include <random>
#include <stdexcept>
#include <thread>
#include <utility>

namespace patchsec::sim {

namespace {

using petri::CompiledNet;
using petri::CompiledTransition;
using petri::Marking;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Replication i's RNG stream is independent of i's neighbors and of which
// thread runs it (the shared counter-based derivation of seed_stream.hpp).
std::mt19937_64 replication_rng(std::uint64_t seed, std::uint64_t replication) {
  return std::mt19937_64(stream_seed(seed, replication));
}

// Reusable per-trajectory buffers: the event loop fires millions of
// transitions, so the enabled list, the per-transition rates, the
// double-buffered marking and the firing target are allocated once and
// recycled.  One workspace per thread; never shared.
struct EventLoopWorkspace {
  std::vector<const CompiledTransition*> enabled;
  std::vector<double> rates;
  Marking marking;
  Marking next;
  std::uint64_t events = 0;
};

// Follow immediate transitions until a tangible marking is reached, sampling
// among competing immediates by weight.  ws.marking is settled in place.
void settle(const CompiledNet& net, EventLoopWorkspace& ws, std::mt19937_64& rng,
            std::size_t max_depth) {
  if (!net.has_immediates()) return;
  for (std::size_t depth = 0; depth <= max_depth; ++depth) {
    net.enabled_immediates_into(ws.marking, ws.enabled);
    if (ws.enabled.empty()) return;
    double total = 0.0;
    for (const CompiledTransition* t : ws.enabled) total += t->weight;
    std::uniform_real_distribution<double> u(0.0, total);
    double pick = u(rng);
    const CompiledTransition* chosen = ws.enabled.back();
    for (const CompiledTransition* t : ws.enabled) {
      pick -= t->weight;
      if (pick <= 0.0) {
        chosen = t;
        break;
      }
    }
    net.fire_into(*chosen, ws.marking, ws.next);
    ws.marking.swap(ws.next);
    ++ws.events;
  }
  throw std::runtime_error("simulator: vanishing loop detected");
}

// The event-selection kernel shared by every trajectory loop (steady-state
// advance, one-point transient, transient curve).  Splitting it here is
// load-bearing for determinism: all loops must consume the RNG identically
// (one exponential draw per tangible sojourn, one uniform draw per firing),
// so the kernel lives in exactly one place.

// Collect the enabled timed transitions and their checked rates into the
// workspace; returns the total rate (0 when the marking is dead).
double collect_timed_rates(const CompiledNet& net, EventLoopWorkspace& ws) {
  net.enabled_timed_into(ws.marking, ws.enabled);
  ws.rates.clear();
  double total_rate = 0.0;
  for (const CompiledTransition* tr : ws.enabled) {
    const double r = net.checked_rate(*tr, ws.marking);
    ws.rates.push_back(r);
    total_rate += r;
  }
  return total_rate;
}

// Pick one collected transition by rate (consuming exactly one uniform
// draw), fire it and settle any immediates.
void fire_one(const CompiledNet& net, EventLoopWorkspace& ws, std::mt19937_64& rng,
              double total_rate, std::size_t max_depth) {
  std::uniform_real_distribution<double> u(0.0, total_rate);
  double pick = u(rng);
  const CompiledTransition* chosen = ws.enabled.back();
  for (std::size_t i = 0; i < ws.enabled.size(); ++i) {
    pick -= ws.rates[i];
    if (pick <= 0.0) {
      chosen = ws.enabled[i];
      break;
    }
  }
  net.fire_into(*chosen, ws.marking, ws.next);
  ws.marking.swap(ws.next);
  ++ws.events;
  settle(net, ws, rng, max_depth);
}

// Advance the trajectory by `horizon` model-time hours.  When `reward` is
// non-null, returns the integral of reward(marking) dt over the horizon;
// otherwise returns 0 (pure warmup).  ws.marking must be tangible on entry
// and is tangible on exit.
double advance(const CompiledNet& net, const petri::RewardFunction* reward, double horizon,
               EventLoopWorkspace& ws, std::mt19937_64& rng, std::size_t max_depth) {
  double reward_time = 0.0;
  double t = 0.0;
  while (t < horizon) {
    const double total_rate = collect_timed_rates(net, ws);
    if (ws.enabled.empty()) {
      // Dead marking: the reward holds for the remainder of the horizon.
      if (reward != nullptr) reward_time += (*reward)(ws.marking) * (horizon - t);
      return reward_time;
    }
    std::exponential_distribution<double> dwell_dist(total_rate);
    double dwell = dwell_dist(rng);
    if (t + dwell > horizon) dwell = horizon - t;
    if (reward != nullptr) reward_time += (*reward)(ws.marking) * dwell;
    t += dwell;
    if (t >= horizon) return reward_time;
    fire_one(net, ws, rng, total_rate, max_depth);
  }
  return reward_time;
}

// Sample mean and 95% CI half width of `values` (n >= 2), summed in index
// order so the result is independent of how the values were produced.
void mean_and_half_width(const std::vector<double>& values, double& mean, double& half_width) {
  const double n = static_cast<double>(values.size());
  double sum = 0.0;
  for (double v : values) sum += v;
  mean = sum / n;
  double var = 0.0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= n - 1.0;
  half_width = t_quantile_975(values.size() - 1) * std::sqrt(var / n);
}

petri::RewardFunction indicator(const std::function<bool(const Marking&)>& predicate) {
  return [&predicate](const Marking& m) { return predicate(m) ? 1.0 : 0.0; };
}

// The replication driver shared by every replicated estimator (steady-state
// and transient curve alike): run body(i, ws) for i in [0, n) over at most
// `threads_option` workers (0 = hardware concurrency), one EventLoopWorkspace
// per worker, failing fast on the first exception.  Each replication owns its
// counter-based RNG stream and writes into per-replication slots, so the
// threaded run computes exactly what the serial run computes, in any
// schedule; callers reduce the slots serially in index order, which makes
// every estimate bit-identical across thread counts.  Returns the worker
// count actually used (for SimDiagnostics::threads_used).
template <typename Body>
unsigned run_replications(std::size_t n, unsigned threads_option, const Body& body) {
  unsigned workers = threads_option != 0 ? threads_option : std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  if (workers > n) workers = static_cast<unsigned>(n);

  if (workers <= 1) {
    EventLoopWorkspace ws;
    for (std::size_t i = 0; i < n; ++i) body(i, ws);
    return 1;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const auto worker = [&] {
    EventLoopWorkspace ws;
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= n) return;
      try {
        body(i, ws);
      } catch (...) {
        next.store(n);  // cancel the remaining queue: fail fast
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers);
  try {
    for (unsigned t = 0; t < workers; ++t) threads.emplace_back(worker);
  } catch (...) {
    // Thread spawn failed partway (std::system_error): drain the queue so
    // already-running workers finish, join them, then propagate — a joinable
    // std::thread destructor would call std::terminate.
    next.store(n);
    for (std::thread& t : threads) t.join();
    throw;
  }
  for (std::thread& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return workers;
}

}  // namespace

void SimulationOptions::validate() const {
  if (batches < 2) throw std::invalid_argument("SimulationOptions: need at least 2 batches");
  if (!(warmup_hours > 0.0)) {
    throw std::invalid_argument("SimulationOptions: warmup_hours must be positive");
  }
  if (!(batch_hours > 0.0)) {
    throw std::invalid_argument("SimulationOptions: batch_hours must be positive");
  }
  if (replications < 2) {
    throw std::invalid_argument("SimulationOptions: need at least 2 replications");
  }
  if (!(horizon_hours > 0.0)) {
    throw std::invalid_argument("SimulationOptions: horizon_hours must be positive");
  }
}

SrnSimulator::SrnSimulator(const petri::SrnModel& model) : model_(model), net_(model) {}

SimulationEstimate SrnSimulator::steady_state_reward(const petri::RewardFunction& reward,
                                                     const SimulationOptions& options) const {
  if (!reward) throw std::invalid_argument("steady_state_reward: null reward");
  options.validate();

  const auto start = Clock::now();
  std::mt19937_64 rng(options.seed);
  EventLoopWorkspace ws;
  ws.marking = model_.initial_marking();
  settle(net_, ws, rng, options.max_vanishing_depth);

  (void)advance(net_, nullptr, options.warmup_hours, ws, rng, options.max_vanishing_depth);

  std::vector<double> batch_means;
  batch_means.reserve(options.batches);
  for (std::size_t b = 0; b < options.batches; ++b) {
    const double reward_time =
        advance(net_, &reward, options.batch_hours, ws, rng, options.max_vanishing_depth);
    batch_means.push_back(reward_time / options.batch_hours);
  }

  SimulationEstimate est;
  mean_and_half_width(batch_means, est.mean, est.half_width_95);
  est.batches = batch_means.size();
  est.total_time =
      options.warmup_hours + options.batch_hours * static_cast<double>(options.batches);
  est.diagnostics.replications = batch_means.size();
  est.diagnostics.half_width_95 = est.half_width_95;
  est.diagnostics.events_fired = ws.events;
  est.diagnostics.threads_used = 1;
  est.diagnostics.wall_time_seconds = seconds_since(start);
  return est;
}

SimulationEstimate SrnSimulator::steady_state_reward_replicated(
    const petri::RewardFunction& reward, const SimulationOptions& options) const {
  if (!reward) throw std::invalid_argument("steady_state_reward_replicated: null reward");
  options.validate();

  const auto start = Clock::now();
  const std::size_t n = options.replications;
  std::vector<double> rep_means(n, 0.0);
  std::vector<std::uint64_t> rep_events(n, 0);

  const unsigned workers = run_replications(
      n, options.threads, [&](std::size_t i, EventLoopWorkspace& ws) {
        std::mt19937_64 rng = replication_rng(options.seed, i);
        const std::uint64_t events_before = ws.events;
        ws.marking = model_.initial_marking();
        settle(net_, ws, rng, options.max_vanishing_depth);
        (void)advance(net_, nullptr, options.warmup_hours, ws, rng, options.max_vanishing_depth);
        const double reward_time =
            advance(net_, &reward, options.horizon_hours, ws, rng, options.max_vanishing_depth);
        rep_means[i] = reward_time / options.horizon_hours;
        rep_events[i] = ws.events - events_before;
      });

  SimulationEstimate est;
  mean_and_half_width(rep_means, est.mean, est.half_width_95);
  est.batches = n;
  est.total_time = static_cast<double>(n) * (options.warmup_hours + options.horizon_hours);
  est.diagnostics.replications = n;
  est.diagnostics.half_width_95 = est.half_width_95;
  for (std::uint64_t e : rep_events) est.diagnostics.events_fired += e;
  est.diagnostics.threads_used = workers;
  est.diagnostics.wall_time_seconds = seconds_since(start);
  return est;
}

TransientCurveEstimate SrnSimulator::transient_reward_curve(const petri::RewardFunction& reward,
                                                            const std::vector<double>& time_points,
                                                            const SimulationOptions& options,
                                                            const petri::Marking* start) const {
  if (!reward) throw std::invalid_argument("transient_reward_curve: null reward");
  if (time_points.empty()) throw std::invalid_argument("transient_reward_curve: empty time grid");
  double previous = 0.0;
  for (double t : time_points) {
    if (t < 0.0) throw std::invalid_argument("transient_reward_curve: negative time point");
    if (t < previous) {
      throw std::invalid_argument("transient_reward_curve: time grid must be ascending");
    }
    previous = t;
  }
  if (options.replications < 2) {
    throw std::invalid_argument("SimulationOptions: need at least 2 replications");
  }
  if (start != nullptr && start->size() != model_.place_count()) {
    throw std::invalid_argument("transient_reward_curve: start marking size mismatch");
  }

  const auto wall_start = Clock::now();
  const std::size_t n = options.replications;
  const std::size_t points = time_points.size();
  const double horizon = time_points.back();
  std::vector<double> rep_values(n * points, 0.0);  // row-major per replication
  std::vector<double> rep_interval(n, 0.0);
  std::vector<std::uint64_t> rep_events(n, 0);

  const unsigned workers = run_replications(
      n, options.threads, [&](std::size_t i, EventLoopWorkspace& ws) {
        std::mt19937_64 rng = replication_rng(options.seed, i);
        const std::uint64_t events_before = ws.events;
        ws.marking = start != nullptr ? *start : model_.initial_marking();
        settle(net_, ws, rng, options.max_vanishing_depth);

        double now = 0.0;
        double integral = 0.0;
        std::size_t g = 0;
        for (;;) {
          const double r = reward(ws.marking);
          const double total_rate = collect_timed_rates(net_, ws);
          double next_event = horizon;
          bool fires = false;
          if (!ws.enabled.empty()) {
            std::exponential_distribution<double> dwell(total_rate);
            next_event = now + dwell(rng);
            fires = next_event < horizon;
          }
          // The current marking holds on [now, next_event): record it at
          // every grid point in that window and accumulate its reward-time.
          const double hold_until = fires ? next_event : horizon;
          while (g < points && time_points[g] < hold_until) {
            rep_values[i * points + g] = r;
            ++g;
          }
          integral += r * (hold_until - now);
          if (!fires) {
            // Dead marking or the next event falls past the horizon: the
            // marking also covers any grid points at exactly the horizon.
            while (g < points) {
              rep_values[i * points + g] = r;
              ++g;
            }
            break;
          }
          now = next_event;
          fire_one(net_, ws, rng, total_rate, options.max_vanishing_depth);
        }
        rep_interval[i] = horizon > 0.0 ? integral / horizon : reward(ws.marking);
        rep_events[i] = ws.events - events_before;
      });

  TransientCurveEstimate est;
  est.time_points = time_points;
  est.mean.resize(points);
  est.half_width_95.resize(points);
  // Serial, index-ordered reductions (one column at a time): bit-identical
  // across thread counts.
  std::vector<double> column(n);
  for (std::size_t j = 0; j < points; ++j) {
    for (std::size_t i = 0; i < n; ++i) column[i] = rep_values[i * points + j];
    mean_and_half_width(column, est.mean[j], est.half_width_95[j]);
  }
  mean_and_half_width(rep_interval, est.interval_mean, est.interval_half_width_95);
  est.diagnostics.replications = n;
  est.diagnostics.half_width_95 = est.interval_half_width_95;
  for (std::uint64_t e : rep_events) est.diagnostics.events_fired += e;
  est.diagnostics.threads_used = workers;
  est.diagnostics.wall_time_seconds = seconds_since(wall_start);
  return est;
}

SimulationEstimate SrnSimulator::steady_state_probability(
    const std::function<bool(const petri::Marking&)>& predicate,
    const SimulationOptions& options) const {
  if (!predicate) throw std::invalid_argument("steady_state_probability: null predicate");
  return steady_state_reward(indicator(predicate), options);
}

SimulationEstimate SrnSimulator::steady_state_probability_replicated(
    const std::function<bool(const petri::Marking&)>& predicate,
    const SimulationOptions& options) const {
  if (!predicate) {
    throw std::invalid_argument("steady_state_probability_replicated: null predicate");
  }
  return steady_state_reward_replicated(indicator(predicate), options);
}

SimulationEstimate SrnSimulator::transient_reward(const petri::RewardFunction& reward, double t,
                                                  std::size_t replications,
                                                  std::uint64_t seed) const {
  if (!reward) throw std::invalid_argument("transient_reward: null reward");
  if (t < 0.0) throw std::invalid_argument("transient_reward: negative time");
  if (replications < 2) throw std::invalid_argument("transient_reward: need >= 2 replications");

  const auto start = Clock::now();
  constexpr std::size_t kMaxDepth = 4096;
  std::mt19937_64 rng(seed);
  EventLoopWorkspace ws;
  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t rep = 0; rep < replications; ++rep) {
    ws.marking = model_.initial_marking();
    settle(net_, ws, rng, kMaxDepth);
    double now = 0.0;
    while (now < t) {
      const double total_rate = collect_timed_rates(net_, ws);
      if (ws.enabled.empty()) break;  // dead marking holds until t
      std::exponential_distribution<double> dwell(total_rate);
      now += dwell(rng);
      if (now >= t) break;
      fire_one(net_, ws, rng, total_rate, kMaxDepth);
    }
    const double value = reward(ws.marking);
    sum += value;
    sum_sq += value * value;
  }
  const double n = static_cast<double>(replications);
  SimulationEstimate est;
  est.mean = sum / n;
  const double var = std::max(0.0, (sum_sq - n * est.mean * est.mean) / (n - 1.0));
  est.half_width_95 = t_quantile_975(replications - 1) * std::sqrt(var / n);
  est.batches = replications;
  est.total_time = t * n;
  est.diagnostics.replications = replications;
  est.diagnostics.half_width_95 = est.half_width_95;
  est.diagnostics.events_fired = ws.events;
  est.diagnostics.threads_used = 1;
  est.diagnostics.wall_time_seconds = seconds_since(start);
  return est;
}

}  // namespace patchsec::sim
