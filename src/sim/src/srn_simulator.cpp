#include "patchsec/sim/srn_simulator.hpp"

#include "patchsec/sim/seed_stream.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <mutex>
#include <random>
#include <stdexcept>
#include <thread>
#include <utility>

namespace patchsec::sim {

namespace {

using petri::CompiledNet;
using petri::CompiledTransition;
using petri::Marking;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Replication i's RNG stream is independent of i's neighbors and of which
// thread runs it (the shared counter-based derivation of seed_stream.hpp).
std::mt19937_64 replication_rng(std::uint64_t seed, std::uint64_t replication) {
  return std::mt19937_64(stream_seed(seed, replication));
}

// Reusable per-trajectory buffers: the event loop fires millions of
// transitions, so the enabled list, the per-transition rates, the
// double-buffered marking and the firing target are allocated once and
// recycled.  One workspace per thread; never shared.
struct EventLoopWorkspace {
  std::vector<const CompiledTransition*> enabled;
  std::vector<double> rates;
  Marking marking;
  Marking next;
  std::uint64_t events = 0;
};

// Follow immediate transitions until a tangible marking is reached, sampling
// among competing immediates by weight.  ws.marking is settled in place.
void settle(const CompiledNet& net, EventLoopWorkspace& ws, std::mt19937_64& rng,
            std::size_t max_depth) {
  if (!net.has_immediates()) return;
  for (std::size_t depth = 0; depth <= max_depth; ++depth) {
    net.enabled_immediates_into(ws.marking, ws.enabled);
    if (ws.enabled.empty()) return;
    double total = 0.0;
    for (const CompiledTransition* t : ws.enabled) total += t->weight;
    std::uniform_real_distribution<double> u(0.0, total);
    double pick = u(rng);
    const CompiledTransition* chosen = ws.enabled.back();
    for (const CompiledTransition* t : ws.enabled) {
      pick -= t->weight;
      if (pick <= 0.0) {
        chosen = t;
        break;
      }
    }
    net.fire_into(*chosen, ws.marking, ws.next);
    ws.marking.swap(ws.next);
    ++ws.events;
  }
  throw std::runtime_error("simulator: vanishing loop detected");
}

// Advance the trajectory by `horizon` model-time hours.  When `reward` is
// non-null, returns the integral of reward(marking) dt over the horizon;
// otherwise returns 0 (pure warmup).  ws.marking must be tangible on entry
// and is tangible on exit.
double advance(const CompiledNet& net, const petri::RewardFunction* reward, double horizon,
               EventLoopWorkspace& ws, std::mt19937_64& rng, std::size_t max_depth) {
  double reward_time = 0.0;
  double t = 0.0;
  while (t < horizon) {
    net.enabled_timed_into(ws.marking, ws.enabled);
    if (ws.enabled.empty()) {
      // Dead marking: the reward holds for the remainder of the horizon.
      if (reward != nullptr) reward_time += (*reward)(ws.marking) * (horizon - t);
      return reward_time;
    }
    ws.rates.clear();
    double total_rate = 0.0;
    for (const CompiledTransition* tr : ws.enabled) {
      const double r = net.checked_rate(*tr, ws.marking);
      ws.rates.push_back(r);
      total_rate += r;
    }
    std::exponential_distribution<double> dwell_dist(total_rate);
    double dwell = dwell_dist(rng);
    if (t + dwell > horizon) dwell = horizon - t;
    if (reward != nullptr) reward_time += (*reward)(ws.marking) * dwell;
    t += dwell;
    if (t >= horizon) return reward_time;

    std::uniform_real_distribution<double> u(0.0, total_rate);
    double pick = u(rng);
    const CompiledTransition* chosen = ws.enabled.back();
    for (std::size_t i = 0; i < ws.enabled.size(); ++i) {
      pick -= ws.rates[i];
      if (pick <= 0.0) {
        chosen = ws.enabled[i];
        break;
      }
    }
    net.fire_into(*chosen, ws.marking, ws.next);
    ws.marking.swap(ws.next);
    ++ws.events;
    settle(net, ws, rng, max_depth);
  }
  return reward_time;
}

// Student-t 97.5% quantile: exact table for dof <= 8 (where the expansion
// below is off by up to 44%), then the Cornish-Fisher expansion around the
// normal quantile (exact to three decimals for dof >= 9).  Small
// replication/batch counts need t, not z — a z-based CI under-covers (93%
// instead of 95% at n = 16), which the differential harness would see as
// excess statistical misses.
double t_quantile_975(std::size_t dof) {
  static constexpr double kExact[] = {12.7062, 4.3027, 3.1824, 2.7764,
                                      2.5706,  2.4469, 2.3646, 2.3060};
  if (dof == 0) return kExact[0];  // unreachable: validate() requires n >= 2
  if (dof <= 8) return kExact[dof - 1];
  const double z = 1.959963985;
  const double v = static_cast<double>(dof);
  const double z3 = z * z * z;
  const double z5 = z3 * z * z;
  return z + (z3 + z) / (4.0 * v) + (5.0 * z5 + 16.0 * z3 + 3.0 * z) / (96.0 * v * v);
}

// Sample mean and 95% CI half width of `values` (n >= 2), summed in index
// order so the result is independent of how the values were produced.
void mean_and_half_width(const std::vector<double>& values, double& mean, double& half_width) {
  const double n = static_cast<double>(values.size());
  double sum = 0.0;
  for (double v : values) sum += v;
  mean = sum / n;
  double var = 0.0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= n - 1.0;
  half_width = t_quantile_975(values.size() - 1) * std::sqrt(var / n);
}

petri::RewardFunction indicator(const std::function<bool(const Marking&)>& predicate) {
  return [&predicate](const Marking& m) { return predicate(m) ? 1.0 : 0.0; };
}

}  // namespace

void SimulationOptions::validate() const {
  if (batches < 2) throw std::invalid_argument("SimulationOptions: need at least 2 batches");
  if (!(warmup_hours > 0.0)) {
    throw std::invalid_argument("SimulationOptions: warmup_hours must be positive");
  }
  if (!(batch_hours > 0.0)) {
    throw std::invalid_argument("SimulationOptions: batch_hours must be positive");
  }
  if (replications < 2) {
    throw std::invalid_argument("SimulationOptions: need at least 2 replications");
  }
  if (!(horizon_hours > 0.0)) {
    throw std::invalid_argument("SimulationOptions: horizon_hours must be positive");
  }
}

SrnSimulator::SrnSimulator(const petri::SrnModel& model) : model_(model), net_(model) {}

SimulationEstimate SrnSimulator::steady_state_reward(const petri::RewardFunction& reward,
                                                     const SimulationOptions& options) const {
  if (!reward) throw std::invalid_argument("steady_state_reward: null reward");
  options.validate();

  const auto start = Clock::now();
  std::mt19937_64 rng(options.seed);
  EventLoopWorkspace ws;
  ws.marking = model_.initial_marking();
  settle(net_, ws, rng, options.max_vanishing_depth);

  (void)advance(net_, nullptr, options.warmup_hours, ws, rng, options.max_vanishing_depth);

  std::vector<double> batch_means;
  batch_means.reserve(options.batches);
  for (std::size_t b = 0; b < options.batches; ++b) {
    const double reward_time =
        advance(net_, &reward, options.batch_hours, ws, rng, options.max_vanishing_depth);
    batch_means.push_back(reward_time / options.batch_hours);
  }

  SimulationEstimate est;
  mean_and_half_width(batch_means, est.mean, est.half_width_95);
  est.batches = batch_means.size();
  est.total_time =
      options.warmup_hours + options.batch_hours * static_cast<double>(options.batches);
  est.diagnostics.replications = batch_means.size();
  est.diagnostics.half_width_95 = est.half_width_95;
  est.diagnostics.events_fired = ws.events;
  est.diagnostics.threads_used = 1;
  est.diagnostics.wall_time_seconds = seconds_since(start);
  return est;
}

SimulationEstimate SrnSimulator::steady_state_reward_replicated(
    const petri::RewardFunction& reward, const SimulationOptions& options) const {
  if (!reward) throw std::invalid_argument("steady_state_reward_replicated: null reward");
  options.validate();

  const auto start = Clock::now();
  const std::size_t n = options.replications;
  std::vector<double> rep_means(n, 0.0);
  std::vector<std::uint64_t> rep_events(n, 0);

  // Each replication is an independent trajectory with its own counter-based
  // RNG stream and workspace; results land in per-replication slots, so the
  // threaded run computes exactly what the serial run computes, in any
  // schedule.  The final reduction below is serial and index-ordered, which
  // makes the estimate bit-identical across thread counts.
  const auto run_replication = [&](std::size_t i, EventLoopWorkspace& ws) {
    std::mt19937_64 rng = replication_rng(options.seed, i);
    const std::uint64_t events_before = ws.events;
    ws.marking = model_.initial_marking();
    settle(net_, ws, rng, options.max_vanishing_depth);
    (void)advance(net_, nullptr, options.warmup_hours, ws, rng, options.max_vanishing_depth);
    const double reward_time =
        advance(net_, &reward, options.horizon_hours, ws, rng, options.max_vanishing_depth);
    rep_means[i] = reward_time / options.horizon_hours;
    rep_events[i] = ws.events - events_before;
  };

  unsigned workers = options.threads != 0 ? options.threads : std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  if (workers > n) workers = static_cast<unsigned>(n);

  if (workers <= 1) {
    EventLoopWorkspace ws;
    for (std::size_t i = 0; i < n; ++i) run_replication(i, ws);
  } else {
    std::atomic<std::size_t> next{0};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    const auto worker = [&] {
      EventLoopWorkspace ws;
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= n) return;
        try {
          run_replication(i, ws);
        } catch (...) {
          next.store(n);  // cancel the remaining queue: fail fast
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          return;
        }
      }
    };
    std::vector<std::thread> threads;
    threads.reserve(workers);
    try {
      for (unsigned t = 0; t < workers; ++t) threads.emplace_back(worker);
    } catch (...) {
      next.store(n);
      for (std::thread& t : threads) t.join();
      throw;
    }
    for (std::thread& t : threads) t.join();
    if (first_error) std::rethrow_exception(first_error);
  }

  SimulationEstimate est;
  mean_and_half_width(rep_means, est.mean, est.half_width_95);
  est.batches = n;
  est.total_time = static_cast<double>(n) * (options.warmup_hours + options.horizon_hours);
  est.diagnostics.replications = n;
  est.diagnostics.half_width_95 = est.half_width_95;
  for (std::uint64_t e : rep_events) est.diagnostics.events_fired += e;
  est.diagnostics.threads_used = workers;
  est.diagnostics.wall_time_seconds = seconds_since(start);
  return est;
}

SimulationEstimate SrnSimulator::steady_state_probability(
    const std::function<bool(const petri::Marking&)>& predicate,
    const SimulationOptions& options) const {
  if (!predicate) throw std::invalid_argument("steady_state_probability: null predicate");
  return steady_state_reward(indicator(predicate), options);
}

SimulationEstimate SrnSimulator::steady_state_probability_replicated(
    const std::function<bool(const petri::Marking&)>& predicate,
    const SimulationOptions& options) const {
  if (!predicate) {
    throw std::invalid_argument("steady_state_probability_replicated: null predicate");
  }
  return steady_state_reward_replicated(indicator(predicate), options);
}

SimulationEstimate SrnSimulator::transient_reward(const petri::RewardFunction& reward, double t,
                                                  std::size_t replications,
                                                  std::uint64_t seed) const {
  if (!reward) throw std::invalid_argument("transient_reward: null reward");
  if (t < 0.0) throw std::invalid_argument("transient_reward: negative time");
  if (replications < 2) throw std::invalid_argument("transient_reward: need >= 2 replications");

  const auto start = Clock::now();
  constexpr std::size_t kMaxDepth = 4096;
  std::mt19937_64 rng(seed);
  EventLoopWorkspace ws;
  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t rep = 0; rep < replications; ++rep) {
    ws.marking = model_.initial_marking();
    settle(net_, ws, rng, kMaxDepth);
    double now = 0.0;
    while (now < t) {
      net_.enabled_timed_into(ws.marking, ws.enabled);
      if (ws.enabled.empty()) break;  // dead marking holds until t
      ws.rates.clear();
      double total_rate = 0.0;
      for (const CompiledTransition* tr : ws.enabled) {
        const double r = net_.checked_rate(*tr, ws.marking);
        ws.rates.push_back(r);
        total_rate += r;
      }
      std::exponential_distribution<double> dwell(total_rate);
      now += dwell(rng);
      if (now >= t) break;
      std::uniform_real_distribution<double> u(0.0, total_rate);
      double pick = u(rng);
      const CompiledTransition* chosen = ws.enabled.back();
      for (std::size_t i = 0; i < ws.enabled.size(); ++i) {
        pick -= ws.rates[i];
        if (pick <= 0.0) {
          chosen = ws.enabled[i];
          break;
        }
      }
      net_.fire_into(*chosen, ws.marking, ws.next);
      ws.marking.swap(ws.next);
      ++ws.events;
      settle(net_, ws, rng, kMaxDepth);
    }
    const double value = reward(ws.marking);
    sum += value;
    sum_sq += value * value;
  }
  const double n = static_cast<double>(replications);
  SimulationEstimate est;
  est.mean = sum / n;
  const double var = std::max(0.0, (sum_sq - n * est.mean * est.mean) / (n - 1.0));
  est.half_width_95 = t_quantile_975(replications - 1) * std::sqrt(var / n);
  est.batches = replications;
  est.total_time = t * n;
  est.diagnostics.replications = replications;
  est.diagnostics.half_width_95 = est.half_width_95;
  est.diagnostics.events_fired = ws.events;
  est.diagnostics.threads_used = 1;
  est.diagnostics.wall_time_seconds = seconds_since(start);
  return est;
}

}  // namespace patchsec::sim
