#include "patchsec/sim/srn_simulator.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace patchsec::sim {

namespace {

using petri::Marking;
using petri::SrnModel;
using petri::TransitionId;

// Reusable per-run buffers: the event loop fires millions of transitions, so
// the enumeration scratch, the double-buffered marking and the firing target
// are allocated once and recycled (SrnModel's *_into API).
struct SimScratch {
  std::vector<TransitionId> enabled;
  Marking next;
};

// Follow immediate transitions until a tangible marking is reached, sampling
// among competing immediates by weight.  `m` is settled in place.
void settle(const SrnModel& model, Marking& m, std::mt19937_64& rng, SimScratch& scratch) {
  for (std::size_t depth = 0; depth < 4096; ++depth) {
    model.enabled_immediates_into(m, scratch.enabled);
    if (scratch.enabled.empty()) return;
    double total = 0.0;
    for (TransitionId t : scratch.enabled) total += model.weight(t);
    std::uniform_real_distribution<double> u(0.0, total);
    double pick = u(rng);
    TransitionId chosen = scratch.enabled.back();
    for (TransitionId t : scratch.enabled) {
      pick -= model.weight(t);
      if (pick <= 0.0) {
        chosen = t;
        break;
      }
    }
    model.fire_into(chosen, m, scratch.next);
    m.swap(scratch.next);
  }
  throw std::runtime_error("simulator: vanishing loop detected");
}

}  // namespace

SrnSimulator::SrnSimulator(const petri::SrnModel& model) : model_(model) {}

SimulationEstimate SrnSimulator::steady_state_reward(const petri::RewardFunction& reward,
                                                     const SimulationOptions& options) {
  if (!reward) throw std::invalid_argument("steady_state_reward: null reward");
  if (options.batches < 2) throw std::invalid_argument("need at least 2 batches");
  if (!(options.batch_hours > 0.0)) throw std::invalid_argument("batch_hours must be positive");

  std::mt19937_64 rng(options.seed);
  SimScratch scratch;
  Marking m = model_.initial_marking();
  settle(model_, m, rng, scratch);

  const auto advance = [&](double horizon, bool accumulate, double& reward_time) -> void {
    double t = 0.0;
    while (t < horizon) {
      model_.enabled_timed_into(m, scratch.enabled);
      if (scratch.enabled.empty()) {
        // Dead marking: the reward holds for the remainder of the horizon.
        if (accumulate) reward_time += reward(m) * (horizon - t);
        return;
      }
      double total_rate = 0.0;
      for (TransitionId tr : scratch.enabled) total_rate += model_.rate(tr, m);
      std::exponential_distribution<double> dwell_dist(total_rate);
      double dwell = dwell_dist(rng);
      if (t + dwell > horizon) dwell = horizon - t;
      if (accumulate) reward_time += reward(m) * dwell;
      t += dwell;
      if (t >= horizon) return;

      std::uniform_real_distribution<double> u(0.0, total_rate);
      double pick = u(rng);
      TransitionId chosen = scratch.enabled.back();
      for (TransitionId tr : scratch.enabled) {
        pick -= model_.rate(tr, m);
        if (pick <= 0.0) {
          chosen = tr;
          break;
        }
      }
      model_.fire_into(chosen, m, scratch.next);
      m.swap(scratch.next);
      settle(model_, m, rng, scratch);
    }
  };

  double unused = 0.0;
  advance(options.warmup_hours, false, unused);

  std::vector<double> batch_means;
  batch_means.reserve(options.batches);
  for (std::size_t b = 0; b < options.batches; ++b) {
    double reward_time = 0.0;
    advance(options.batch_hours, true, reward_time);
    batch_means.push_back(reward_time / options.batch_hours);
  }

  double mean = 0.0;
  for (double v : batch_means) mean += v;
  mean /= static_cast<double>(batch_means.size());
  double var = 0.0;
  for (double v : batch_means) var += (v - mean) * (v - mean);
  var /= static_cast<double>(batch_means.size() - 1);

  SimulationEstimate est;
  est.mean = mean;
  est.half_width_95 = 1.96 * std::sqrt(var / static_cast<double>(batch_means.size()));
  est.batches = batch_means.size();
  est.total_time = options.warmup_hours +
                   options.batch_hours * static_cast<double>(options.batches);
  return est;
}

SimulationEstimate SrnSimulator::transient_reward(const petri::RewardFunction& reward, double t,
                                                  std::size_t replications, std::uint64_t seed) {
  if (!reward) throw std::invalid_argument("transient_reward: null reward");
  if (t < 0.0) throw std::invalid_argument("transient_reward: negative time");
  if (replications < 2) throw std::invalid_argument("transient_reward: need >= 2 replications");

  std::mt19937_64 rng(seed);
  SimScratch scratch;
  double sum = 0.0, sum_sq = 0.0;
  Marking m;
  for (std::size_t rep = 0; rep < replications; ++rep) {
    m = model_.initial_marking();
    settle(model_, m, rng, scratch);
    double now = 0.0;
    while (now < t) {
      model_.enabled_timed_into(m, scratch.enabled);
      if (scratch.enabled.empty()) break;  // dead marking holds until t
      double total_rate = 0.0;
      for (TransitionId tr : scratch.enabled) total_rate += model_.rate(tr, m);
      std::exponential_distribution<double> dwell(total_rate);
      now += dwell(rng);
      if (now >= t) break;
      std::uniform_real_distribution<double> u(0.0, total_rate);
      double pick = u(rng);
      TransitionId chosen = scratch.enabled.back();
      for (TransitionId tr : scratch.enabled) {
        pick -= model_.rate(tr, m);
        if (pick <= 0.0) {
          chosen = tr;
          break;
        }
      }
      model_.fire_into(chosen, m, scratch.next);
      m.swap(scratch.next);
      settle(model_, m, rng, scratch);
    }
    const double value = reward(m);
    sum += value;
    sum_sq += value * value;
  }
  const double n = static_cast<double>(replications);
  SimulationEstimate est;
  est.mean = sum / n;
  const double var = std::max(0.0, (sum_sq - n * est.mean * est.mean) / (n - 1.0));
  est.half_width_95 = 1.96 * std::sqrt(var / n);
  est.batches = replications;
  est.total_time = t * n;
  return est;
}

SimulationEstimate SrnSimulator::steady_state_probability(
    const std::function<bool(const petri::Marking&)>& predicate,
    const SimulationOptions& options) {
  if (!predicate) throw std::invalid_argument("steady_state_probability: null predicate");
  return steady_state_reward(
      [&predicate](const Marking& m) { return predicate(m) ? 1.0 : 0.0; }, options);
}

}  // namespace patchsec::sim
