#pragma once
// Capacity-oriented availability for heterogeneous redundancy: every server
// instance carries its own aggregated patch/recovery rates, so tiers are no
// longer exchangeable token pools.  The upper-layer SRN gets one up/down
// place pair per instance; the COA reward generalizes Table VI (fraction of
// running servers, zero when any deployed tier is completely down).

#include <vector>

#include "patchsec/avail/aggregation.hpp"
#include "patchsec/enterprise/heterogeneous.hpp"
#include "patchsec/petri/srn_model.hpp"

namespace patchsec::avail {

/// Per-instance aggregated rates.
struct InstanceRates {
  enterprise::ServerRole role = enterprise::ServerRole::kWeb;
  AggregatedRates rates;
};

struct HeterogeneousNetworkSrn {
  petri::SrnModel model;
  std::vector<petri::PlaceId> up_places;  ///< parallel to the instance list.
  std::vector<enterprise::ServerRole> roles;

  [[nodiscard]] petri::RewardFunction coa_reward() const;
};

/// Build the per-instance upper-layer SRN.
[[nodiscard]] HeterogeneousNetworkSrn build_heterogeneous_srn(
    const std::vector<InstanceRates>& instances);

/// COA from per-instance rates (SRN steady state).
[[nodiscard]] double heterogeneous_coa(const std::vector<InstanceRates>& instances);

/// Independent closed form (instances are independent 2-state chains);
/// exact for this model class and used as a test oracle.
[[nodiscard]] double heterogeneous_coa_closed_form(const std::vector<InstanceRates>& instances);

/// End-to-end: aggregate every instance's lower-layer SRN, then compute COA.
[[nodiscard]] double heterogeneous_coa(const enterprise::HeterogeneousNetwork& network,
                                       double patch_interval_hours = 720.0);

}  // namespace patchsec::avail
