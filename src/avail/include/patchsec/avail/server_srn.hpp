#pragma once
// Lower-layer SRN sub-models for one server (paper Fig. 5 + Table III):
// hardware, OS, service and patch-clock nets coupled through guard
// functions.  The patch sequence implemented (Sec. III-D assumptions):
//
//   clock fires (rate tau_p, monthly)            Pclock  -> Parm
//   patch starts when the service is up          Parm    -> Ptrigger
//   service leaves production                    Psvcup  -> Psvcrtp
//   application patch (rate alpha_svc)           Psvcrtp -> Psvcp
//   OS patch triggered by finished app patch     Posup   -> Posrtp
//   OS patch (rate alpha_os)                     Posrtp  -> Posp
//   clock reset + service ready to reboot        (immediates on #Posp == 1)
//   OS reboot (rate beta_os)                     Posp    -> Posup
//   service reboot (rate beta_svc, needs OS up)  Psvcprrb-> Psvcup
//
// Failures: hardware fails any time except during the patch window; OS and
// service software fail only in production (patches are pre-tested).

#include <string>

#include "patchsec/enterprise/server.hpp"
#include "patchsec/petri/srn_model.hpp"

namespace patchsec::avail {

/// Names of every place/transition plus resolved ids, so callers (tests,
/// benches, the aggregator) can reference the net without string lookups.
struct ServerSrn {
  petri::SrnModel model;

  // hardware
  petri::PlaceId hw_up, hw_down;
  // OS
  petri::PlaceId os_up, os_down, os_failed, os_ready_to_patch, os_patched;
  // service
  petri::PlaceId svc_up, svc_down, svc_failed, svc_ready_to_patch, svc_patched,
      svc_ready_to_reboot;
  // patch clock
  petri::PlaceId clock_idle, clock_armed, clock_triggered;

  /// True when the marking is inside the patch window (any patch-phase place
  /// occupied); hardware and software failures are suppressed here.
  [[nodiscard]] bool in_patch_window(const petri::Marking& m) const;

  /// Service is down *due to patch* (the p_pd states of Eq. 2).
  [[nodiscard]] bool service_patch_down(const petri::Marking& m) const;

  /// The service-reboot transition is enabled: service ready to reboot with
  /// hardware and OS up (the p_prrb state of Eq. 2).
  [[nodiscard]] bool service_reboot_enabled(const petri::Marking& m) const;

  /// Service in production.
  [[nodiscard]] bool service_up(const petri::Marking& m) const;
};

/// The rates of the server sub-models in the form of Table IV (mean times in
/// hours, derived from the spec's failure behaviour and critical-vulnerability
/// counts).
struct ServerSrnParameters {
  double hw_mtbf, hw_mttr;
  double os_mtbf, os_mttr, os_patch, os_reboot_after_patch, os_reboot_after_failure;
  double svc_mtbf, svc_mttr, svc_patch, svc_reboot_after_patch, svc_reboot_after_failure;
  double patch_interval;
};

[[nodiscard]] ServerSrnParameters server_srn_parameters(const enterprise::ServerSpec& spec,
                                                        double patch_interval_hours = 720.0);

/// Patch-policy variants (paper Sec. V: "Some patches might not need to
/// reboot the application or the OS").
struct ServerSrnOptions {
  double patch_interval_hours = 720.0;
  /// When false, patches take effect without any reboot: the OS- and
  /// service-reboot phases collapse to immediate transitions and the patch
  /// downtime is just the patch durations.
  bool reboot_required = true;
  /// Override the patch-work durations derived from the spec's critical
  /// vulnerability counts (used by multi-stage campaigns where each month
  /// patches a different vulnerability subset).  Negative = use the spec.
  double app_patch_hours_override = -1.0;
  double os_patch_hours_override = -1.0;
};

/// Build the Fig. 5 SRN for one server.  `patch_interval_hours` is 1/tau_p
/// (720 h = monthly).  Throws std::invalid_argument when the spec has no
/// critical vulnerability at all (nothing to patch: the model degenerates).
[[nodiscard]] ServerSrn build_server_srn(const enterprise::ServerSpec& spec,
                                         double patch_interval_hours = 720.0);

/// Build with explicit policy options.
[[nodiscard]] ServerSrn build_server_srn(const enterprise::ServerSpec& spec,
                                         const ServerSrnOptions& options);

}  // namespace patchsec::avail
