#pragma once
// Aggregation of the lower-layer server SRN into the two-state (up / down-
// due-to-patch) abstraction used by the network model (paper Sec. III-D2,
// Eqs. (1)-(2), Table V):
//
//   lambda_eq = tau_p                                  (Eq. 1)
//   mu_eq     = beta_svc * p_prrb / p_pd               (Eq. 2)
//
// where p_pd is the steady-state probability that the service is down due to
// patching and p_prrb the probability that the service-reboot transition is
// enabled (service ready to reboot, OS and hardware back up).

#include "patchsec/avail/server_srn.hpp"
#include "patchsec/enterprise/server.hpp"
#include "patchsec/petri/reachability.hpp"

namespace patchsec::avail {

/// Aggregated per-service rates (one row of Table V).
struct AggregatedRates {
  double lambda_eq = 0.0;  ///< patch rate (1/h).
  double mu_eq = 0.0;      ///< recovery rate (1/h).
  double p_patch_down = 0.0;
  double p_reboot_enabled = 0.0;

  /// Mean time to patch (hours) = 1/lambda_eq.
  [[nodiscard]] double mttp_hours() const { return 1.0 / lambda_eq; }
  /// Mean time to recovery (hours) = 1/mu_eq.
  [[nodiscard]] double mttr_hours() const { return 1.0 / mu_eq; }
};

/// Build the server SRN, solve its steady state and aggregate.  The
/// closed-form sanity bound: mu_eq ~= 1 / (patch + reboot durations).
[[nodiscard]] AggregatedRates aggregate_server(const enterprise::ServerSpec& spec,
                                               double patch_interval_hours = 720.0);

/// Aggregate under explicit policy options (campaign stages, reboot-free
/// patches).  Throws std::domain_error when the options leave nothing to
/// patch in a cycle.
[[nodiscard]] AggregatedRates aggregate_server(const enterprise::ServerSpec& spec,
                                               const ServerSrnOptions& options);

/// Aggregation result carrying the lower-layer solve diagnostics (state
/// counts, solver iterations, residual, converged flag, wall time).
struct ServerAggregation {
  AggregatedRates rates;
  petri::SolveDiagnostics diagnostics;
};

/// Aggregate under explicit policy options AND an explicit solver
/// configuration — the fully-threaded form used by core::Session.  With
/// engine.throw_on_divergence == false a non-converged steady-state solve is
/// reported through the returned diagnostics instead of thrown.  A non-null
/// `workspace` reuses the caller's linalg::StationarySolver across solves
/// (core::Session passes one per worker thread, so schedule sweeps re-solve
/// the same-structure server SRN without rebuilding solver state).
[[nodiscard]] ServerAggregation aggregate_server_detailed(
    const enterprise::ServerSpec& spec, const ServerSrnOptions& options,
    const petri::AnalyzerOptions& engine, linalg::StationarySolver* workspace = nullptr);

/// Closed-form approximation of mu_eq ignoring failures (the patch phases in
/// sequence): 1 / (1/alpha_svc + 1/alpha_os + 1/beta_os + 1/beta_svc).
/// Exposed as a test oracle and for quick what-if sweeps.
[[nodiscard]] double mu_eq_closed_form(const enterprise::ServerSpec& spec);

}  // namespace patchsec::avail
