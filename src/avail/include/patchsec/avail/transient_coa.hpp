#pragma once
// Transient availability analysis: the COA trajectory after a patch event,
// computed by uniformization on the upper-layer CTMC.  Answers "how deep is
// the capacity dip when patch day hits, and how fast does it heal?" — a
// question the steady-state COA of the paper averages away.

#include <map>
#include <vector>

#include "patchsec/avail/network_srn.hpp"

namespace patchsec::avail {

/// One point of the COA(t) curve.
struct CoaPoint {
  double hours = 0.0;
  double coa = 0.0;
};

/// Expected COA at the given time points, starting from a marking where
/// `initial_down` servers of each role are down for patching (clamped to the
/// tier size).  Time 0 reflects the initial dip; as t grows the curve
/// approaches the steady-state COA.
[[nodiscard]] std::vector<CoaPoint> transient_coa_curve(
    const enterprise::RedundancyDesign& design,
    const std::map<enterprise::ServerRole, AggregatedRates>& rates,
    const std::map<enterprise::ServerRole, unsigned>& initial_down,
    const std::vector<double>& time_points_hours);

/// Expected accumulated capacity shortfall (integral of steady-COA minus
/// COA(t)) over [0, horizon] after the patch event — "lost server-fraction
/// hours" of one patch wave.
[[nodiscard]] double patch_dip_shortfall(
    const enterprise::RedundancyDesign& design,
    const std::map<enterprise::ServerRole, AggregatedRates>& rates,
    const std::map<enterprise::ServerRole, unsigned>& initial_down, double horizon_hours,
    std::size_t steps = 128);

}  // namespace patchsec::avail
