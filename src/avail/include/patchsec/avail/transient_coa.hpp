#pragma once
// Transient availability analysis: the COA trajectory after a patch event,
// computed by uniformization on the upper-layer CTMC.  Answers "how deep is
// the capacity dip when patch day hits, and how fast does it heal?" — a
// question the steady-state COA of the paper averages away.
//
// transient_coa_detailed() is the engine behind core::Session::
// evaluate_transient: one reachability build and one uniformized-matrix
// build (via a reusable ctmc::TransientSolver workspace) amortized over the
// whole time grid, returning the COA curve, the accumulated COA (capacity
// delivered over the window, in server-fraction hours) and diagnostics.

#include <map>
#include <vector>

#include "patchsec/avail/network_srn.hpp"
#include "patchsec/ctmc/transient_solver.hpp"
#include "patchsec/petri/reachability.hpp"

namespace patchsec::avail {

/// One point of the COA(t) curve.
struct CoaPoint {
  double hours = 0.0;
  double coa = 0.0;
};

/// Inputs of one transient COA evaluation beyond the grid itself.
struct TransientCoaOptions {
  /// Per role, how many servers start the window down for patching (clamped
  /// to the tier size; roles not deployed are ignored).  Empty = the all-up
  /// initial marking.
  std::map<enterprise::ServerRole, unsigned> initial_down;
  /// Uniformization truncation policy.
  ctmc::TransientOptions uniformization;
  /// Reachability-graph limits for the upper-layer exploration.
  petri::ReachabilityOptions reachability;
};

/// The full transient evaluation: curve, window integral, and how much work
/// the engine did.
struct CoaCurveEvaluation {
  std::vector<CoaPoint> curve;
  /// int_0^T coa(s) ds over the window [0, t_back] — "capacity delivered",
  /// in server-fraction hours.  accumulated/T is the interval COA.
  double accumulated_coa_hours = 0.0;
  /// Model-size half of petri::SolveDiagnostics (tangible states,
  /// transitions, wall time); solver_iterations counts uniformization
  /// vector-matrix products and converged is always true (uniformization is
  /// a finite sum, not an iteration to a fixpoint).
  petri::SolveDiagnostics diagnostics;
  /// Uniformization internals (Lambda, Fox-Glynn window, matvec count).
  ctmc::TransientDiagnostics transient;
};

/// COA(t) at every grid point (ascending, non-negative, hours) for a design,
/// from per-role aggregated rates.  A non-null `workspace` reuses the
/// caller's ctmc::TransientSolver: a second curve on the same design+rates
/// skips the uniformized-matrix rebuild (core::Session passes one per worker
/// thread).  Throws std::invalid_argument on an empty or descending grid.
[[nodiscard]] CoaCurveEvaluation transient_coa_detailed(
    const enterprise::RedundancyDesign& design,
    const std::map<enterprise::ServerRole, AggregatedRates>& rates,
    const std::vector<double>& time_points_hours, const TransientCoaOptions& options = {},
    ctmc::TransientSolver* workspace = nullptr);

/// Batched transient COA: evaluate the SAME design/rates/grid from B
/// different patch-wave initial markings in ONE panel solve — the network
/// SRN, reachability graph, reward vector and uniformized matrix are built
/// once, and every uniformization expansion term costs one matrix sweep for
/// all B waves (ctmc::TransientSolver::reward_curve_multi).  This is the
/// design-sweep shape: COA dip curves for a whole patch campaign's wave
/// plan in a single pass.
///
/// Returns one CoaCurveEvaluation per wave, ordered like `waves`.
/// `options.initial_down` is ignored (the waves replace it); each result's
/// `diagnostics`/`transient` describe the SHARED batch solve (matvec_count
/// counts sweeps; transient.rhs_count records B), so summing them across
/// results would double-count.  Throws like transient_coa_detailed, plus
/// std::invalid_argument on an empty wave list.
[[nodiscard]] std::vector<CoaCurveEvaluation> transient_coa_batch(
    const enterprise::RedundancyDesign& design,
    const std::map<enterprise::ServerRole, AggregatedRates>& rates,
    const std::vector<double>& time_points_hours,
    const std::vector<std::map<enterprise::ServerRole, unsigned>>& waves,
    const TransientCoaOptions& options = {}, ctmc::TransientSolver* workspace = nullptr);

/// The patch-window entry marking of `net`: per role, `initial_down` servers
/// (clamped to the tier size) moved from up to down.  Shared by the analytic
/// path above and the simulation backend (which must start its replications
/// from the same marking for the differential cross-check to be meaningful).
[[nodiscard]] petri::Marking patch_window_marking(
    const NetworkSrn& net, const std::map<enterprise::ServerRole, unsigned>& initial_down);

/// Expected COA at the given time points, starting from a marking where
/// `initial_down` servers of each role are down for patching (clamped to the
/// tier size).  Time 0 reflects the initial dip; as t grows the curve
/// approaches the steady-state COA.
[[nodiscard]] std::vector<CoaPoint> transient_coa_curve(
    const enterprise::RedundancyDesign& design,
    const std::map<enterprise::ServerRole, AggregatedRates>& rates,
    const std::map<enterprise::ServerRole, unsigned>& initial_down,
    const std::vector<double>& time_points_hours);

/// Expected accumulated capacity shortfall (integral of steady-COA minus
/// COA(t)) over [0, horizon] after the patch event — "lost server-fraction
/// hours" of one patch wave.
[[nodiscard]] double patch_dip_shortfall(
    const enterprise::RedundancyDesign& design,
    const std::map<enterprise::ServerRole, AggregatedRates>& rates,
    const std::map<enterprise::ServerRole, unsigned>& initial_down, double horizon_hours,
    std::size_t steps = 128);

}  // namespace patchsec::avail
