#pragma once
// Upper-layer SRN for the whole network (paper Fig. 4): per service tier one
// pair of places (up / down-due-to-patch) initially holding as many tokens as
// the tier has servers.  The patch ("down") transition has the
// marking-dependent rate lambda_eq * #Pup; recovery proceeds independently
// per server (mu_eq * #Pdown).  Capacity-oriented availability is the
// expected steady-state reward of Table VI, generalized to any design:
//
//   reward(m) = (sum of up servers) / (total servers)  if every tier has at
//               least one server up, else 0.

#include <map>
#include <vector>

#include "patchsec/avail/aggregation.hpp"
#include "patchsec/enterprise/design.hpp"
#include "patchsec/petri/lumping.hpp"
#include "patchsec/petri/srn_model.hpp"

namespace patchsec::avail {

struct NetworkSrn {
  petri::SrnModel model;
  /// Per role: the "service up" place (token count = running servers).
  std::map<enterprise::ServerRole, petri::PlaceId> up_places;
  /// Per role: the "down due to patch" place.
  std::map<enterprise::ServerRole, petri::PlaceId> down_places;
  enterprise::RedundancyDesign design;

  /// The Table VI reward: fraction of running servers, zero when any tier is
  /// completely down (the service as a whole is unavailable).
  [[nodiscard]] petri::RewardFunction coa_reward() const;
};

/// Build the Fig. 4 upper-layer SRN for a design from per-role aggregated
/// rates.
[[nodiscard]] NetworkSrn build_network_srn(
    const enterprise::RedundancyDesign& design,
    const std::map<enterprise::ServerRole, AggregatedRates>& rates);

/// Capacity-oriented availability of a design: lower-layer aggregation per
/// role followed by the upper-layer steady-state reward.  This is the
/// end-to-end Table VI computation.
[[nodiscard]] double capacity_oriented_availability(
    const enterprise::RedundancyDesign& design,
    const std::map<enterprise::ServerRole, enterprise::ServerSpec>& specs,
    double patch_interval_hours = 720.0);

/// Same, but from precomputed aggregated rates (used when sweeping designs so
/// the lower-layer SRNs are solved once).
[[nodiscard]] double capacity_oriented_availability(
    const enterprise::RedundancyDesign& design,
    const std::map<enterprise::ServerRole, AggregatedRates>& rates);

/// COA plus the upper-layer solve diagnostics.
struct CoaEvaluation {
  double coa = 0.0;
  petri::SolveDiagnostics diagnostics;
};

/// COA under an explicit solver configuration — the fully-threaded form used
/// by core::Session.  With engine.throw_on_divergence == false a
/// non-converged steady-state solve is reported through the returned
/// diagnostics instead of thrown.  A non-null `workspace` reuses the caller's
/// linalg::StationarySolver across solves: re-evaluating the same design at
/// another cadence (or sweeping same-shape designs) hits the cached transpose
/// structure instead of rebuilding it.
[[nodiscard]] CoaEvaluation capacity_oriented_availability_detailed(
    const enterprise::RedundancyDesign& design,
    const std::map<enterprise::ServerRole, AggregatedRates>& rates,
    const petri::AnalyzerOptions& engine, linalg::StationarySolver* workspace = nullptr);

/// Closed-form cross-check using independent birth-death chains per tier
/// (valid because tiers are independent in the upper model).
[[nodiscard]] double coa_closed_form(const enterprise::RedundancyDesign& design,
                                     const std::map<enterprise::ServerRole, AggregatedRates>& rates);

/// Ablation variant: *synchronized* patching — a tier's servers are all
/// patched in the same maintenance window (the whole tier goes down at rate
/// lambda_eq and comes back at mu_eq), instead of the paper's independent
/// per-server patch clocks.  Deliberately pessimistic: redundancy buys no
/// availability during patching under this policy.
[[nodiscard]] NetworkSrn build_network_srn_synchronized(
    const enterprise::RedundancyDesign& design,
    const std::map<enterprise::ServerRole, AggregatedRates>& rates);

/// COA under synchronized patching.
[[nodiscard]] double capacity_oriented_availability_synchronized(
    const enterprise::RedundancyDesign& design,
    const std::map<enterprise::ServerRole, AggregatedRates>& rates);

/// The fully replicated (per-server) form of the upper-layer model: one
/// up/down place pair and one constant-rate patch/recovery transition pair
/// PER SERVER, plus the symmetry annotation declaring the servers of each
/// tier exchangeable.  Semantically equivalent to build_network_srn (whose
/// marking-dependent `lambda * #Pup` rates are exactly the counting
/// abstraction of these replicas) but with a `2^N`-sized flat state space —
/// the oracle-side input of petri::lump_model in the lumping test layer.
struct ReplicatedNetworkSrn {
  petri::SrnModel model;
  petri::SymmetrySpec symmetry;  ///< one group per deployed tier; replica i = (up_i, down_i).
  /// Per role: one "up" / "down for patching" place per server.
  std::map<enterprise::ServerRole, std::vector<petri::PlaceId>> up_places;
  std::map<enterprise::ServerRole, std::vector<petri::PlaceId>> down_places;
  enterprise::RedundancyDesign design;

  /// The Table VI reward on per-server markings; symmetric under any
  /// permutation of a tier's servers, so its lift through
  /// LumpedNet::lift_reward is exact.
  [[nodiscard]] petri::RewardFunction coa_reward() const;
};

/// Build the per-server replicated upper-layer SRN for a design.
[[nodiscard]] ReplicatedNetworkSrn build_network_srn_replicated(
    const enterprise::RedundancyDesign& design,
    const std::map<enterprise::ServerRole, AggregatedRates>& rates);

}  // namespace patchsec::avail
