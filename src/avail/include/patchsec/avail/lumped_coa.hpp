#pragma once
/// \file lumped_coa.hpp
/// \brief Capacity-oriented availability on the symmetry-lumped quotient:
/// the upper-layer network model evaluated by product form over its
/// independent per-tier birth-death chains instead of on the joint chain.
///
/// The counting-form NetworkSrn already encodes the per-tier token-count
/// quotient of the per-server replicated model (build_network_srn_replicated
/// + petri::lump_model reproduce it, which the lumping test layer verifies).
/// This header adds the second exact reduction: the tiers are independent
/// components, the Table VI COA reward is separable —
///
///   COA = (1/N) * sum_r  E[#up_r] * prod_{q != r} P(#up_q > 0)
///
/// — and both the stationary and (from the deterministic patch-window
/// marking) the transient analysis run on four chains of k_r + 1 states
/// instead of one chain of prod_r (k_r + 1) states.  A 50-servers-per-tier
/// design solves 204 states instead of 6,765,201 — exactly, not
/// approximately; tests/test_lumping.cpp pins the agreement to 1e-10.

#include <map>
#include <vector>

#include "patchsec/avail/network_srn.hpp"
#include "patchsec/avail/transient_coa.hpp"
#include "patchsec/petri/lumping.hpp"

namespace patchsec::avail {

/// The counting-form network model packaged for product-form analysis: the
/// per-tier component split and the COA reward in separable form.
struct LumpedNetworkModel {
  NetworkSrn net;               ///< the counting-form upper-layer SRN.
  petri::ComponentSplit split;  ///< one component per deployed tier.
  std::vector<enterprise::ServerRole> roles;  ///< role of each component, in split order.
  petri::SeparableReward coa;   ///< Table VI COA as sum-of-products over tiers.
};

/// Assemble the lumped form of the upper-layer model for a design.
[[nodiscard]] LumpedNetworkModel build_lumped_network(
    const enterprise::RedundancyDesign& design,
    const std::map<enterprise::ServerRole, AggregatedRates>& rates);

/// Steady-state COA by product form — the lumped counterpart of
/// capacity_oriented_availability_detailed.  The returned diagnostics report
/// the per-tier chains actually solved (tangible_states = sum of tier chain
/// sizes) and the joint space that was avoided (flat_states = product).
[[nodiscard]] CoaEvaluation capacity_oriented_availability_lumped_detailed(
    const enterprise::RedundancyDesign& design,
    const std::map<enterprise::ServerRole, AggregatedRates>& rates,
    const petri::AnalyzerOptions& engine = {});

/// Transient COA curve by product form — the lumped counterpart of
/// transient_coa_detailed.  Each tier's distribution is advanced by its own
/// uniformization from the patch-window marking; the accumulated COA
/// integrates the product curve by Gauss-Legendre panels (see
/// petri::FactoredAnalyzer::reward_curve).
[[nodiscard]] CoaCurveEvaluation transient_coa_lumped_detailed(
    const enterprise::RedundancyDesign& design,
    const std::map<enterprise::ServerRole, AggregatedRates>& rates,
    const std::vector<double>& time_points_hours, const TransientCoaOptions& options = {});

}  // namespace patchsec::avail
