#include "patchsec/avail/network_srn.hpp"

#include <stdexcept>
#include <vector>

#include "patchsec/linalg/steady_state.hpp"
#include "patchsec/petri/reachability.hpp"

namespace patchsec::avail {

namespace {

constexpr std::array<enterprise::ServerRole, enterprise::kRoleCount> kRoles{
    enterprise::ServerRole::kDns, enterprise::ServerRole::kWeb, enterprise::ServerRole::kApp,
    enterprise::ServerRole::kDb};

}  // namespace

petri::RewardFunction NetworkSrn::coa_reward() const {
  // Capture plain values: (up-place id, tier size) pairs plus the total.
  std::vector<std::pair<petri::PlaceId, unsigned>> tiers;
  unsigned total = 0;
  for (const auto& [role, place] : up_places) {
    const unsigned n = design.count(role);
    tiers.emplace_back(place, n);
    total += n;
  }
  if (total == 0) throw std::logic_error("coa_reward: empty design");
  return [tiers, total](const petri::Marking& m) -> double {
    unsigned running = 0;
    for (const auto& [place, n] : tiers) {
      const petri::TokenCount up = m[place];
      if (up == 0) return 0.0;  // a whole tier is down: no service
      running += up;
    }
    return static_cast<double>(running) / static_cast<double>(total);
  };
}

NetworkSrn build_network_srn(const enterprise::RedundancyDesign& design,
                             const std::map<enterprise::ServerRole, AggregatedRates>& rates) {
  NetworkSrn net;
  net.design = design;
  for (enterprise::ServerRole role : kRoles) {
    const unsigned n = design.count(role);
    if (n == 0) continue;
    const auto it = rates.find(role);
    if (it == rates.end()) {
      throw std::invalid_argument(std::string("missing aggregated rates for role ") +
                                  enterprise::to_string(role));
    }
    const double lambda = it->second.lambda_eq;
    const double mu = it->second.mu_eq;
    if (!(lambda > 0.0) || !(mu > 0.0)) {
      throw std::invalid_argument("aggregated rates must be positive");
    }
    std::string base = enterprise::to_string(role);
    const petri::PlaceId up = net.model.add_place("P" + base + "up", n);
    const petri::PlaceId down = net.model.add_place("P" + base + "pd", 0);
    net.up_places.emplace(role, up);
    net.down_places.emplace(role, down);

    // Patch: marking-dependent rate lambda * #Pup (paper Sec. III-D2).
    net.model.add_timed_transition("T" + base + "d", [lambda, up](const petri::Marking& m) {
      return lambda * static_cast<double>(m[up]);
    });
    const petri::TransitionId td = net.model.transition("T" + base + "d");
    net.model.add_input_arc(td, up);
    net.model.add_output_arc(td, down);
    // Guard keeps the rate function positive: disabled at #Pup == 0 anyway
    // through the input arc, but the rate function must not be evaluated at 0.
    net.model.set_guard(td, [up](const petri::Marking& m) { return m[up] > 0; });

    // Recovery: each patched server recovers independently (mu * #Ppd).
    net.model.add_timed_transition("T" + base + "up", [mu, down](const petri::Marking& m) {
      return mu * static_cast<double>(m[down]);
    });
    const petri::TransitionId tu = net.model.transition("T" + base + "up");
    net.model.add_input_arc(tu, down);
    net.model.add_output_arc(tu, up);
    net.model.set_guard(tu, [down](const petri::Marking& m) { return m[down] > 0; });
  }
  if (net.up_places.empty()) throw std::invalid_argument("design deploys no servers");
  return net;
}

double capacity_oriented_availability(
    const enterprise::RedundancyDesign& design,
    const std::map<enterprise::ServerRole, enterprise::ServerSpec>& specs,
    double patch_interval_hours) {
  std::map<enterprise::ServerRole, AggregatedRates> rates;
  for (enterprise::ServerRole role : kRoles) {
    if (design.count(role) == 0) continue;
    const auto it = specs.find(role);
    if (it == specs.end()) {
      throw std::invalid_argument(std::string("missing spec for role ") +
                                  enterprise::to_string(role));
    }
    rates.emplace(role, aggregate_server(it->second, patch_interval_hours));
  }
  return capacity_oriented_availability(design, rates);
}

double capacity_oriented_availability(
    const enterprise::RedundancyDesign& design,
    const std::map<enterprise::ServerRole, AggregatedRates>& rates) {
  return capacity_oriented_availability_detailed(design, rates, petri::AnalyzerOptions{}).coa;
}

CoaEvaluation capacity_oriented_availability_detailed(
    const enterprise::RedundancyDesign& design,
    const std::map<enterprise::ServerRole, AggregatedRates>& rates,
    const petri::AnalyzerOptions& engine, linalg::StationarySolver* workspace) {
  const NetworkSrn net = build_network_srn(design, rates);
  const petri::SrnAnalyzer analyzer(net.model, engine, workspace);
  return CoaEvaluation{analyzer.expected_reward(net.coa_reward()), analyzer.diagnostics()};
}

NetworkSrn build_network_srn_synchronized(
    const enterprise::RedundancyDesign& design,
    const std::map<enterprise::ServerRole, AggregatedRates>& rates) {
  NetworkSrn net;
  net.design = design;
  for (enterprise::ServerRole role : kRoles) {
    const unsigned n = design.count(role);
    if (n == 0) continue;
    const auto it = rates.find(role);
    if (it == rates.end()) {
      throw std::invalid_argument(std::string("missing aggregated rates for role ") +
                                  enterprise::to_string(role));
    }
    std::string base = enterprise::to_string(role);
    const petri::PlaceId up = net.model.add_place("P" + base + "up", n);
    const petri::PlaceId down = net.model.add_place("P" + base + "pd", 0);
    net.up_places.emplace(role, up);
    net.down_places.emplace(role, down);

    // The whole tier moves at once: arc multiplicity n, constant rates.
    const petri::TransitionId td =
        net.model.add_timed_transition("T" + base + "d", it->second.lambda_eq);
    net.model.add_input_arc(td, up, n);
    net.model.add_output_arc(td, down, n);
    const petri::TransitionId tu =
        net.model.add_timed_transition("T" + base + "up", it->second.mu_eq);
    net.model.add_input_arc(tu, down, n);
    net.model.add_output_arc(tu, up, n);
  }
  if (net.up_places.empty()) throw std::invalid_argument("design deploys no servers");
  return net;
}

double capacity_oriented_availability_synchronized(
    const enterprise::RedundancyDesign& design,
    const std::map<enterprise::ServerRole, AggregatedRates>& rates) {
  const NetworkSrn net = build_network_srn_synchronized(design, rates);
  const petri::SrnAnalyzer analyzer(net.model);
  return analyzer.expected_reward(net.coa_reward());
}

petri::RewardFunction ReplicatedNetworkSrn::coa_reward() const {
  std::vector<std::vector<petri::PlaceId>> tiers;
  unsigned total = 0;
  for (const auto& [role, places] : up_places) {
    tiers.push_back(places);
    total += static_cast<unsigned>(places.size());
  }
  if (total == 0) throw std::logic_error("coa_reward: empty design");
  return [tiers, total](const petri::Marking& m) -> double {
    unsigned running = 0;
    for (const std::vector<petri::PlaceId>& tier : tiers) {
      unsigned up = 0;
      for (const petri::PlaceId p : tier) up += m[p];
      if (up == 0) return 0.0;  // a whole tier is down: no service
      running += up;
    }
    return static_cast<double>(running) / static_cast<double>(total);
  };
}

ReplicatedNetworkSrn build_network_srn_replicated(
    const enterprise::RedundancyDesign& design,
    const std::map<enterprise::ServerRole, AggregatedRates>& rates) {
  ReplicatedNetworkSrn net;
  net.design = design;
  for (enterprise::ServerRole role : kRoles) {
    const unsigned n = design.count(role);
    if (n == 0) continue;
    const auto it = rates.find(role);
    if (it == rates.end()) {
      throw std::invalid_argument(std::string("missing aggregated rates for role ") +
                                  enterprise::to_string(role));
    }
    const double lambda = it->second.lambda_eq;
    const double mu = it->second.mu_eq;
    if (!(lambda > 0.0) || !(mu > 0.0)) {
      throw std::invalid_argument("aggregated rates must be positive");
    }
    const std::string base = enterprise::to_string(role);
    petri::ReplicaGroup group;
    auto& ups = net.up_places[role];
    auto& downs = net.down_places[role];
    for (unsigned i = 0; i < n; ++i) {
      const std::string suffix = std::to_string(i);
      const petri::PlaceId up = net.model.add_place("P" + base + "up" + suffix, 1);
      const petri::PlaceId down = net.model.add_place("P" + base + "pd" + suffix, 0);
      ups.push_back(up);
      downs.push_back(down);
      // Constant per-server rates: each server carries its own exponential
      // patch clock and recovery clock (the independent-patching policy).
      const petri::TransitionId td =
          net.model.add_timed_transition("T" + base + "d" + suffix, lambda);
      net.model.add_input_arc(td, up);
      net.model.add_output_arc(td, down);
      const petri::TransitionId tu =
          net.model.add_timed_transition("T" + base + "up" + suffix, mu);
      net.model.add_input_arc(tu, down);
      net.model.add_output_arc(tu, up);
      group.replicas.push_back({up, down});
    }
    net.symmetry.groups.push_back(std::move(group));
  }
  if (net.up_places.empty()) throw std::invalid_argument("design deploys no servers");
  return net;
}

double coa_closed_form(const enterprise::RedundancyDesign& design,
                       const std::map<enterprise::ServerRole, AggregatedRates>& rates) {
  // Tiers are independent birth-death chains over #up = 0..n with
  //   k -> k-1 at rate k*lambda,   k -> k+1 at rate (n-k)*mu.
  // COA = (1/N) * sum_r E[up_r] * prod_{r' != r} P(up_{r'} > 0).
  struct Tier {
    double expected_up = 0.0;
    double p_alive = 0.0;
  };
  std::vector<Tier> tiers;
  unsigned total = 0;
  for (enterprise::ServerRole role : kRoles) {
    const unsigned n = design.count(role);
    if (n == 0) continue;
    const auto it = rates.find(role);
    if (it == rates.end()) throw std::invalid_argument("coa_closed_form: missing rates");
    std::vector<double> birth(n), death(n);
    for (unsigned i = 0; i < n; ++i) {
      birth[i] = static_cast<double>(n - i) * it->second.mu_eq;   // i up -> i+1 up
      death[i] = static_cast<double>(i + 1) * it->second.lambda_eq;  // i+1 up -> i up
    }
    const std::vector<double> pi = linalg::birth_death_steady_state(birth, death);
    Tier tier;
    for (unsigned k = 0; k <= n; ++k) tier.expected_up += static_cast<double>(k) * pi[k];
    tier.p_alive = 1.0 - pi[0];
    tiers.push_back(tier);
    total += n;
  }
  if (total == 0) throw std::invalid_argument("coa_closed_form: empty design");

  double coa = 0.0;
  for (std::size_t r = 0; r < tiers.size(); ++r) {
    double term = tiers[r].expected_up;
    for (std::size_t q = 0; q < tiers.size(); ++q) {
      if (q != r) term *= tiers[q].p_alive;
    }
    coa += term;
  }
  return coa / static_cast<double>(total);
}

}  // namespace patchsec::avail
