#include "patchsec/avail/transient_coa.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace patchsec::avail {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

petri::Marking patch_window_marking(
    const NetworkSrn& net, const std::map<enterprise::ServerRole, unsigned>& initial_down) {
  petri::Marking start = net.model.initial_marking();
  for (const auto& [role, down] : initial_down) {
    const auto up_it = net.up_places.find(role);
    if (up_it == net.up_places.end()) continue;  // role not deployed
    const petri::TokenCount capped = std::min<petri::TokenCount>(down, start[up_it->second]);
    start[up_it->second] -= capped;
    start[net.down_places.at(role)] += capped;
  }
  return start;
}

CoaCurveEvaluation transient_coa_detailed(
    const enterprise::RedundancyDesign& design,
    const std::map<enterprise::ServerRole, AggregatedRates>& rates,
    const std::vector<double>& time_points_hours, const TransientCoaOptions& options,
    ctmc::TransientSolver* workspace) {
  if (time_points_hours.empty()) {
    throw std::invalid_argument("transient_coa: no time points");
  }
  const auto start_time = Clock::now();

  const NetworkSrn net = build_network_srn(design, rates);
  const petri::ReachabilityGraph graph =
      petri::build_reachability_graph(net.model, options.reachability);

  const petri::RewardFunction reward = net.coa_reward();
  std::vector<double> rewards;
  rewards.reserve(graph.tangible_count());
  for (const petri::Marking& m : graph.tangible_markings) rewards.push_back(reward(m));

  std::vector<double> initial(graph.tangible_count(), 0.0);
  initial[graph.index_of(patch_window_marking(net, options.initial_down))] = 1.0;

  ctmc::TransientSolver local;
  ctmc::TransientSolver& solver = workspace != nullptr ? *workspace : local;
  solver.set_options(options.uniformization);
  solver.prepare(graph.chain);

  std::vector<double> values;
  CoaCurveEvaluation result;
  result.accumulated_coa_hours =
      solver.reward_curve(initial, rewards, time_points_hours, values);
  result.curve.reserve(values.size());
  for (std::size_t j = 0; j < values.size(); ++j) {
    result.curve.push_back({time_points_hours[j], values[j]});
  }
  result.transient = solver.diagnostics();
  result.diagnostics.tangible_states = graph.tangible_count();
  result.diagnostics.vanishing_markings = graph.vanishing_markings_seen;
  result.diagnostics.transitions = graph.chain.transitions().size();
  result.diagnostics.solver_iterations = result.transient.matvec_count;
  result.diagnostics.converged = true;  // a finite sum, not a fixpoint iteration
  result.diagnostics.wall_time_seconds =
      std::chrono::duration<double>(Clock::now() - start_time).count();
  return result;
}

std::vector<CoaCurveEvaluation> transient_coa_batch(
    const enterprise::RedundancyDesign& design,
    const std::map<enterprise::ServerRole, AggregatedRates>& rates,
    const std::vector<double>& time_points_hours,
    const std::vector<std::map<enterprise::ServerRole, unsigned>>& waves,
    const TransientCoaOptions& options, ctmc::TransientSolver* workspace) {
  if (time_points_hours.empty()) {
    throw std::invalid_argument("transient_coa_batch: no time points");
  }
  if (waves.empty()) throw std::invalid_argument("transient_coa_batch: no waves");
  const auto start_time = Clock::now();

  // One model build serves the whole batch — this is the point of batching:
  // the per-wave marginal cost is one panel column, not a solve.
  const NetworkSrn net = build_network_srn(design, rates);
  const petri::ReachabilityGraph graph =
      petri::build_reachability_graph(net.model, options.reachability);

  const petri::RewardFunction reward = net.coa_reward();
  std::vector<double> rewards;
  rewards.reserve(graph.tangible_count());
  for (const petri::Marking& m : graph.tangible_markings) rewards.push_back(reward(m));

  std::vector<std::vector<double>> initials(waves.size());
  for (std::size_t b = 0; b < waves.size(); ++b) {
    initials[b].assign(graph.tangible_count(), 0.0);
    initials[b][graph.index_of(patch_window_marking(net, waves[b]))] = 1.0;
  }

  ctmc::TransientSolver local;
  ctmc::TransientSolver& solver = workspace != nullptr ? *workspace : local;
  solver.set_options(options.uniformization);
  solver.prepare(graph.chain);

  std::vector<std::vector<double>> curves;
  const std::vector<double> accumulated =
      solver.reward_curve_multi(initials, rewards, time_points_hours, curves);

  const double wall = std::chrono::duration<double>(Clock::now() - start_time).count();
  std::vector<CoaCurveEvaluation> results(waves.size());
  for (std::size_t b = 0; b < waves.size(); ++b) {
    CoaCurveEvaluation& result = results[b];
    result.accumulated_coa_hours = accumulated[b];
    result.curve.reserve(curves[b].size());
    for (std::size_t j = 0; j < curves[b].size(); ++j) {
      result.curve.push_back({time_points_hours[j], curves[b][j]});
    }
    // Shared-solve diagnostics, replicated per wave (see the header note).
    result.transient = solver.diagnostics();
    result.diagnostics.tangible_states = graph.tangible_count();
    result.diagnostics.vanishing_markings = graph.vanishing_markings_seen;
    result.diagnostics.transitions = graph.chain.transitions().size();
    result.diagnostics.solver_iterations = result.transient.matvec_count;
    result.diagnostics.converged = true;  // a finite sum, not a fixpoint iteration
    result.diagnostics.wall_time_seconds = wall;
  }
  return results;
}

std::vector<CoaPoint> transient_coa_curve(
    const enterprise::RedundancyDesign& design,
    const std::map<enterprise::ServerRole, AggregatedRates>& rates,
    const std::map<enterprise::ServerRole, unsigned>& initial_down,
    const std::vector<double>& time_points_hours) {
  TransientCoaOptions options;
  options.initial_down = initial_down;
  // The historical contract accepts an arbitrary-order grid; the solver
  // wants it ascending.  Evaluate sorted, then emit in caller order.
  std::vector<double> sorted = time_points_hours;
  for (double t : sorted) {
    if (t < 0.0) throw std::invalid_argument("transient_coa_curve: negative time");
  }
  std::sort(sorted.begin(), sorted.end());
  const CoaCurveEvaluation eval = transient_coa_detailed(design, rates, sorted, options);
  std::vector<CoaPoint> curve;
  curve.reserve(time_points_hours.size());
  for (double t : time_points_hours) {
    const auto it = std::lower_bound(
        eval.curve.begin(), eval.curve.end(), t,
        [](const CoaPoint& p, double hours) { return p.hours < hours; });
    curve.push_back({t, it->coa});
  }
  return curve;
}

double patch_dip_shortfall(const enterprise::RedundancyDesign& design,
                           const std::map<enterprise::ServerRole, AggregatedRates>& rates,
                           const std::map<enterprise::ServerRole, unsigned>& initial_down,
                           double horizon_hours, std::size_t steps) {
  if (!(horizon_hours > 0.0)) throw std::invalid_argument("patch_dip_shortfall: horizon");
  if (steps == 0) throw std::invalid_argument("patch_dip_shortfall: steps must be positive");

  // One model build serves both measures: the steady-state COA comes from
  // the same chain and reward vector the transient expansion uses.
  const NetworkSrn net = build_network_srn(design, rates);
  const petri::ReachabilityGraph graph = petri::build_reachability_graph(net.model);
  const petri::RewardFunction reward = net.coa_reward();
  std::vector<double> rewards;
  rewards.reserve(graph.tangible_count());
  for (const petri::Marking& m : graph.tangible_markings) rewards.push_back(reward(m));
  std::vector<double> initial(graph.tangible_count(), 0.0);
  initial[graph.index_of(patch_window_marking(net, initial_down))] = 1.0;

  ctmc::TransientSolver solver;
  solver.prepare(graph.chain);
  const double accumulated = solver.accumulated_reward(initial, rewards, horizon_hours);

  const linalg::SteadyStateResult ss = graph.chain.steady_state();
  double steady = 0.0;
  for (std::size_t i = 0; i < rewards.size(); ++i) steady += ss.distribution[i] * rewards[i];
  return steady * horizon_hours - accumulated;
}

}  // namespace patchsec::avail
