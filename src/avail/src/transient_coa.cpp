#include "patchsec/avail/transient_coa.hpp"

#include <algorithm>
#include <stdexcept>

#include "patchsec/ctmc/transient.hpp"
#include "patchsec/petri/reachability.hpp"

namespace patchsec::avail {

namespace {

/// Build the chain once and return everything needed for transient rewards.
struct Prepared {
  petri::ReachabilityGraph graph;
  std::vector<double> rewards;      // reward per tangible state
  std::vector<double> initial;      // initial distribution
  double steady_coa = 0.0;
};

Prepared prepare(const enterprise::RedundancyDesign& design,
                 const std::map<enterprise::ServerRole, AggregatedRates>& rates,
                 const std::map<enterprise::ServerRole, unsigned>& initial_down) {
  const NetworkSrn net = build_network_srn(design, rates);
  Prepared prep;
  prep.graph = petri::build_reachability_graph(net.model);

  const petri::RewardFunction reward = net.coa_reward();
  prep.rewards.reserve(prep.graph.tangible_count());
  for (const petri::Marking& m : prep.graph.tangible_markings) {
    prep.rewards.push_back(reward(m));
  }

  // Construct the post-patch-event marking: per role, `initial_down` servers
  // (clamped) are moved from up to down.
  petri::Marking start = net.model.initial_marking();
  for (const auto& [role, down] : initial_down) {
    const auto up_it = net.up_places.find(role);
    if (up_it == net.up_places.end()) continue;  // role not deployed
    const petri::TokenCount capped =
        std::min<petri::TokenCount>(down, start[up_it->second]);
    start[up_it->second] -= capped;
    start[net.down_places.at(role)] += capped;
  }
  prep.initial.assign(prep.graph.tangible_count(), 0.0);
  prep.initial[prep.graph.index_of(start)] = 1.0;

  const linalg::SteadyStateResult ss = prep.graph.chain.steady_state();
  for (std::size_t i = 0; i < prep.rewards.size(); ++i) {
    prep.steady_coa += ss.distribution[i] * prep.rewards[i];
  }
  return prep;
}

}  // namespace

std::vector<CoaPoint> transient_coa_curve(
    const enterprise::RedundancyDesign& design,
    const std::map<enterprise::ServerRole, AggregatedRates>& rates,
    const std::map<enterprise::ServerRole, unsigned>& initial_down,
    const std::vector<double>& time_points_hours) {
  if (time_points_hours.empty()) {
    throw std::invalid_argument("transient_coa_curve: no time points");
  }
  const Prepared prep = prepare(design, rates, initial_down);
  std::vector<CoaPoint> curve;
  curve.reserve(time_points_hours.size());
  for (double t : time_points_hours) {
    if (t < 0.0) throw std::invalid_argument("transient_coa_curve: negative time");
    curve.push_back(
        {t, ctmc::transient_reward(prep.graph.chain, prep.initial, prep.rewards, t)});
  }
  return curve;
}

double patch_dip_shortfall(const enterprise::RedundancyDesign& design,
                           const std::map<enterprise::ServerRole, AggregatedRates>& rates,
                           const std::map<enterprise::ServerRole, unsigned>& initial_down,
                           double horizon_hours, std::size_t steps) {
  if (!(horizon_hours > 0.0)) throw std::invalid_argument("patch_dip_shortfall: horizon");
  const Prepared prep = prepare(design, rates, initial_down);
  const double accumulated = ctmc::accumulated_reward(prep.graph.chain, prep.initial,
                                                      prep.rewards, horizon_hours, steps);
  return prep.steady_coa * horizon_hours - accumulated;
}

}  // namespace patchsec::avail
