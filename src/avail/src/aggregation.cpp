#include "patchsec/avail/aggregation.hpp"

#include <stdexcept>

#include "patchsec/petri/reachability.hpp"

namespace patchsec::avail {

AggregatedRates aggregate_server(const enterprise::ServerSpec& spec,
                                 double patch_interval_hours) {
  ServerSrnOptions options;
  options.patch_interval_hours = patch_interval_hours;
  return aggregate_server(spec, options);
}

AggregatedRates aggregate_server(const enterprise::ServerSpec& spec,
                                 const ServerSrnOptions& options) {
  return aggregate_server_detailed(spec, options, petri::AnalyzerOptions{}).rates;
}

ServerAggregation aggregate_server_detailed(const enterprise::ServerSpec& spec,
                                            const ServerSrnOptions& options,
                                            const petri::AnalyzerOptions& engine,
                                            linalg::StationarySolver* workspace) {
  const double patch_interval_hours = options.patch_interval_hours;
  const ServerSrn srn = build_server_srn(spec, options);
  const petri::SrnAnalyzer analyzer(srn.model, engine, workspace);

  AggregatedRates rates;
  rates.p_patch_down =
      analyzer.probability([&srn](const petri::Marking& m) { return srn.service_patch_down(m); });
  rates.p_reboot_enabled = analyzer.probability(
      [&srn](const petri::Marking& m) { return srn.service_reboot_enabled(m); });
  if (!(rates.p_patch_down > 0.0)) {
    throw std::domain_error("aggregate_server: patch-down probability is zero; no patch occurs");
  }
  const double beta_svc = 1.0 / spec.times.svc_reboot;
  rates.lambda_eq = 1.0 / patch_interval_hours;  // Eq. (1)
  if (rates.p_reboot_enabled > 0.0) {
    rates.mu_eq = beta_svc * rates.p_reboot_enabled / rates.p_patch_down;  // Eq. (2)
  } else {
    // Reboot-free policy: Eq. (2)'s reboot state vanishes.  Use the
    // two-state-consistency identity instead: the aggregated chain must
    // reproduce the detailed patch-down probability, so
    // mu = lambda * (1 - p_pd) / p_pd.
    rates.mu_eq = rates.lambda_eq * (1.0 - rates.p_patch_down) / rates.p_patch_down;
  }
  return ServerAggregation{rates, analyzer.diagnostics()};
}

double mu_eq_closed_form(const enterprise::ServerSpec& spec) {
  const double downtime = spec.app_patch_hours() + spec.os_patch_hours() +
                          spec.times.os_reboot + spec.times.svc_reboot;
  if (!(downtime > 0.0)) throw std::domain_error("mu_eq_closed_form: zero patch downtime");
  return 1.0 / downtime;
}

}  // namespace patchsec::avail
