#include "patchsec/avail/server_srn.hpp"

#include <stdexcept>

namespace patchsec::avail {

namespace {
double rate_from_mean_hours(double hours, const char* what) {
  if (!(hours > 0.0)) throw std::invalid_argument(std::string(what) + ": mean time must be positive");
  return 1.0 / hours;
}

/// Value-type bundle of place ids captured by the guard lambdas.  The guards
/// outlive the builder function, so they must not reference the ServerSrn
/// object itself.
struct Ids {
  petri::PlaceId hw_up, hw_down;
  petri::PlaceId os_up, os_down, os_failed, os_rtp, os_patched;
  petri::PlaceId svc_up, svc_down, svc_failed, svc_rtp, svc_patched, svc_rrb;
  petri::PlaceId clock_idle, clock_armed, clock_triggered;

  [[nodiscard]] bool in_patch_window(const petri::Marking& m) const {
    return m[svc_rtp] == 1 || m[svc_patched] == 1 || m[svc_rrb] == 1 || m[os_rtp] == 1 ||
           m[os_patched] == 1;
  }
};

}  // namespace

bool ServerSrn::in_patch_window(const petri::Marking& m) const {
  return m[svc_ready_to_patch] == 1 || m[svc_patched] == 1 || m[svc_ready_to_reboot] == 1 ||
         m[os_ready_to_patch] == 1 || m[os_patched] == 1;
}

bool ServerSrn::service_patch_down(const petri::Marking& m) const {
  return m[svc_ready_to_patch] == 1 || m[svc_patched] == 1 || m[svc_ready_to_reboot] == 1;
}

bool ServerSrn::service_reboot_enabled(const petri::Marking& m) const {
  return m[svc_ready_to_reboot] == 1 && m[os_up] == 1 && m[hw_up] == 1;
}

bool ServerSrn::service_up(const petri::Marking& m) const { return m[svc_up] == 1; }

ServerSrnParameters server_srn_parameters(const enterprise::ServerSpec& spec,
                                          double patch_interval_hours) {
  const enterprise::FailureRecoveryTimes& t = spec.times;
  ServerSrnParameters p{};
  p.hw_mtbf = t.hw_mtbf;
  p.hw_mttr = t.hw_mttr;
  p.os_mtbf = t.os_mtbf;
  p.os_mttr = t.os_mttr;
  p.os_patch = spec.os_patch_hours();
  p.os_reboot_after_patch = t.os_reboot;
  p.os_reboot_after_failure = t.os_reboot;
  p.svc_mtbf = t.svc_mtbf;
  p.svc_mttr = t.svc_mttr;
  p.svc_patch = spec.app_patch_hours();
  p.svc_reboot_after_patch = t.svc_reboot;
  p.svc_reboot_after_failure = t.svc_reboot;
  p.patch_interval = patch_interval_hours;
  return p;
}

ServerSrn build_server_srn(const enterprise::ServerSpec& spec, double patch_interval_hours) {
  ServerSrnOptions options;
  options.patch_interval_hours = patch_interval_hours;
  return build_server_srn(spec, options);
}

ServerSrn build_server_srn(const enterprise::ServerSpec& spec, const ServerSrnOptions& options) {
  ServerSrnParameters p = server_srn_parameters(spec, options.patch_interval_hours);
  if (options.app_patch_hours_override >= 0.0) p.svc_patch = options.app_patch_hours_override;
  if (options.os_patch_hours_override >= 0.0) p.os_patch = options.os_patch_hours_override;
  if (!(p.svc_patch > 0.0) && !(p.os_patch > 0.0)) {
    throw std::invalid_argument("build_server_srn: server has no critical vulnerability to patch");
  }
  // A layer with zero critical vulnerabilities patches "instantaneously"; we
  // model that with a very fast transition instead of restructuring the net.
  constexpr double kInstantHours = 1e-9;
  const double alpha_svc = rate_from_mean_hours(std::max(p.svc_patch, kInstantHours), "svc patch");
  const double alpha_os = rate_from_mean_hours(std::max(p.os_patch, kInstantHours), "os patch");

  ServerSrn s;
  petri::SrnModel& net = s.model;

  // ---- places --------------------------------------------------------------
  s.hw_up = net.add_place("Phwup", 1);
  s.hw_down = net.add_place("Phwd", 0);
  s.os_up = net.add_place("Posup", 1);
  s.os_down = net.add_place("Posd", 0);
  s.os_failed = net.add_place("Posfd", 0);
  s.os_ready_to_patch = net.add_place("Posrtp", 0);
  s.os_patched = net.add_place("Posp", 0);
  s.svc_up = net.add_place("Psvcup", 1);
  s.svc_down = net.add_place("Psvcd", 0);
  s.svc_failed = net.add_place("Psvcfd", 0);
  s.svc_ready_to_patch = net.add_place("Psvcrtp", 0);
  s.svc_patched = net.add_place("Psvcp", 0);
  s.svc_ready_to_reboot = net.add_place("Psvcprrb", 0);
  s.clock_idle = net.add_place("Pclock", 1);
  s.clock_armed = net.add_place("Parm", 0);
  s.clock_triggered = net.add_place("Ptrigger", 0);

  const Ids ids{s.hw_up,  s.hw_down,    s.os_up,      s.os_down,
                s.os_failed, s.os_ready_to_patch, s.os_patched, s.svc_up,
                s.svc_down,  s.svc_failed, s.svc_ready_to_patch, s.svc_patched,
                s.svc_ready_to_reboot, s.clock_idle, s.clock_armed, s.clock_triggered};

  // Guard helpers (Table III).  All capture the id bundle by value.
  const auto hw_is_up = [ids](const petri::Marking& m) { return m[ids.hw_up] == 1; };
  const auto hw_is_down = [ids](const petri::Marking& m) { return m[ids.hw_down] == 1; };
  const auto hw_os_up = [ids](const petri::Marking& m) {
    return m[ids.hw_up] == 1 && m[ids.os_up] == 1;
  };
  const auto hw_or_osf_down = [ids](const petri::Marking& m) {
    return m[ids.hw_down] == 1 || m[ids.os_failed] == 1;
  };
  const auto outside_patch_window = [ids](const petri::Marking& m) {
    return !ids.in_patch_window(m);
  };

  // ---- hardware (Fig. 5a) ---------------------------------------------------
  {
    const auto thwd = net.add_timed_transition("Thwd", rate_from_mean_hours(p.hw_mtbf, "hw mtbf"));
    net.add_input_arc(thwd, s.hw_up);
    net.add_output_arc(thwd, s.hw_down);
    net.set_guard(thwd, outside_patch_window);  // "hardware will not fail during the patch period"

    const auto thwup = net.add_timed_transition("Thwup", rate_from_mean_hours(p.hw_mttr, "hw mttr"));
    net.add_input_arc(thwup, s.hw_down);
    net.add_output_arc(thwup, s.hw_up);
  }

  // ---- OS (Fig. 5b) ----------------------------------------------------------
  {
    const auto tosd = net.add_immediate_transition("Tosd");  // gosd: hw down
    net.add_input_arc(tosd, s.os_up);
    net.add_output_arc(tosd, s.os_down);
    net.set_guard(tosd, hw_is_down);

    const auto tosdrb = net.add_timed_transition(
        "Tosdrb", rate_from_mean_hours(p.os_reboot_after_failure, "os reboot"));
    net.add_input_arc(tosdrb, s.os_down);
    net.add_output_arc(tosdrb, s.os_up);
    net.set_guard(tosdrb, hw_is_up);  // gosdrb

    const auto tosfd = net.add_timed_transition("Tosfd", rate_from_mean_hours(p.os_mtbf, "os mtbf"));
    net.add_input_arc(tosfd, s.os_up);
    net.add_output_arc(tosfd, s.os_failed);
    net.set_guard(tosfd, [ids](const petri::Marking& m) {
      // Pre-tested patches: the OS does not fail inside the patch window; it
      // also cannot fail while the hardware is down (it is not running).
      return m[ids.hw_up] == 1 && !ids.in_patch_window(m);
    });

    const auto tosfup = net.add_timed_transition("Tosfup", rate_from_mean_hours(p.os_mttr, "os mttr"));
    net.add_input_arc(tosfup, s.os_failed);
    net.add_output_arc(tosfup, s.os_up);
    net.set_guard(tosfup, hw_is_up);  // gosfup

    const auto tosptrig = net.add_immediate_transition("Tosptrig");  // gosptrig: svc patched
    net.add_input_arc(tosptrig, s.os_up);
    net.add_output_arc(tosptrig, s.os_ready_to_patch);
    net.set_guard(tosptrig, [ids](const petri::Marking& m) { return m[ids.svc_patched] == 1; });

    const auto tosp = net.add_timed_transition("Tosp", alpha_os);
    net.add_input_arc(tosp, s.os_ready_to_patch);
    net.add_output_arc(tosp, s.os_patched);
    net.set_guard(tosp, hw_is_up);  // gosp

    const auto tosrpd = net.add_immediate_transition("Tosrpd");  // gosrpd: hw down
    net.add_input_arc(tosrpd, s.os_ready_to_patch);
    net.add_output_arc(tosrpd, s.os_down);
    net.set_guard(tosrpd, hw_is_down);

    const auto tospd = net.add_immediate_transition("Tospd");  // gospd: hw down
    net.add_input_arc(tospd, s.os_patched);
    net.add_output_arc(tospd, s.os_down);
    net.set_guard(tospd, hw_is_down);

    // Without a reboot requirement the patched OS returns to service
    // immediately -- but only after the clock reset and the service's
    // ready-to-reboot hand-off observed #Posp == 1 (hence low priority).
    const auto tosprb =
        options.reboot_required
            ? net.add_timed_transition(
                  "Tosprb", rate_from_mean_hours(p.os_reboot_after_patch, "os reboot"))
            : net.add_immediate_transition("Tosprb", 1.0, /*priority=*/1);
    net.add_input_arc(tosprb, s.os_patched);
    net.add_output_arc(tosprb, s.os_up);
    net.set_guard(tosprb, hw_is_up);  // gosprb
  }

  // ---- service (Fig. 5c) -----------------------------------------------------
  {
    const auto tsvcd = net.add_immediate_transition("Tsvcd");  // gsvcd
    net.add_input_arc(tsvcd, s.svc_up);
    net.add_output_arc(tsvcd, s.svc_down);
    net.set_guard(tsvcd, hw_or_osf_down);

    const auto tsvcdrb = net.add_timed_transition(
        "Tsvcdrb", rate_from_mean_hours(p.svc_reboot_after_failure, "svc reboot"));
    net.add_input_arc(tsvcdrb, s.svc_down);
    net.add_output_arc(tsvcdrb, s.svc_up);
    net.set_guard(tsvcdrb, hw_os_up);  // gsvcdrb

    const auto tsvcfd = net.add_timed_transition("Tsvcfd",
                                                 rate_from_mean_hours(p.svc_mtbf, "svc mtbf"));
    net.add_input_arc(tsvcfd, s.svc_up);
    net.add_output_arc(tsvcfd, s.svc_failed);
    net.set_guard(tsvcfd, [ids](const petri::Marking& m) {
      // Software failures only in production with healthy HW/OS and not
      // inside the patch window.
      return m[ids.hw_up] == 1 && m[ids.os_up] == 1 && !ids.in_patch_window(m);
    });

    const auto tsvcfup = net.add_timed_transition("Tsvcfup",
                                                  rate_from_mean_hours(p.svc_mttr, "svc mttr"));
    net.add_input_arc(tsvcfup, s.svc_failed);
    net.add_output_arc(tsvcfup, s.svc_up);
    net.set_guard(tsvcfup, hw_os_up);  // gsvcfup

    const auto tsvcptrig = net.add_immediate_transition("Tsvcptrig");  // gsvcptrig
    net.add_input_arc(tsvcptrig, s.svc_up);
    net.add_output_arc(tsvcptrig, s.svc_ready_to_patch);
    net.set_guard(tsvcptrig, [ids](const petri::Marking& m) { return m[ids.clock_triggered] == 1; });

    const auto tsvcp = net.add_timed_transition("Tsvcp", alpha_svc);
    net.add_input_arc(tsvcp, s.svc_ready_to_patch);
    net.add_output_arc(tsvcp, s.svc_patched);
    net.set_guard(tsvcp, hw_os_up);  // gsvcp

    const auto tsvcrpd = net.add_immediate_transition("Tsvcrpd");  // gsvcrpd
    net.add_input_arc(tsvcrpd, s.svc_ready_to_patch);
    net.add_output_arc(tsvcrpd, s.svc_down);
    net.set_guard(tsvcrpd, hw_or_osf_down);

    const auto tsvcrrb = net.add_immediate_transition("Tsvcrrb", 1.0, /*priority=*/5);  // gsvcrrb
    net.add_input_arc(tsvcrrb, s.svc_patched);
    net.add_output_arc(tsvcrrb, s.svc_ready_to_reboot);
    net.set_guard(tsvcrrb, [ids](const petri::Marking& m) { return m[ids.os_patched] == 1; });

    const auto tsvcrrbd = net.add_immediate_transition("Tsvcrrbd");  // gsvcrrbd
    net.add_input_arc(tsvcrrbd, s.svc_ready_to_reboot);
    net.add_output_arc(tsvcrrbd, s.svc_down);
    net.set_guard(tsvcrrbd, hw_or_osf_down);

    const auto tsvcprb =
        options.reboot_required
            ? net.add_timed_transition(
                  "Tsvcprb", rate_from_mean_hours(p.svc_reboot_after_patch, "svc reboot"))
            : net.add_immediate_transition("Tsvcprb", 1.0, /*priority=*/1);
    net.add_input_arc(tsvcprb, s.svc_ready_to_reboot);
    net.add_output_arc(tsvcprb, s.svc_up);
    net.set_guard(tsvcprb, hw_os_up);  // gsvcprb: service reboots only after the OS is back
  }

  // ---- patch clock (Fig. 5d) -------------------------------------------------
  {
    const auto tinterval = net.add_timed_transition(
        "Tinterval", rate_from_mean_hours(p.patch_interval, "patch interval"));
    net.add_input_arc(tinterval, s.clock_idle);
    net.add_output_arc(tinterval, s.clock_armed);
    net.set_guard(tinterval, [ids](const petri::Marking& m) {  // ginterval
      return m[ids.svc_up] == 1 || m[ids.svc_down] == 1 || m[ids.svc_failed] == 1;
    });

    const auto tpolicy = net.add_immediate_transition("Tpolicy");  // gpolicy: service up
    net.add_input_arc(tpolicy, s.clock_armed);
    net.add_output_arc(tpolicy, s.clock_triggered);
    net.set_guard(tpolicy, [ids](const petri::Marking& m) { return m[ids.svc_up] == 1; });

    const auto treset = net.add_immediate_transition("Treset", 1.0, /*priority=*/5);  // greset
    net.add_input_arc(treset, s.clock_triggered);
    net.add_output_arc(treset, s.clock_idle);
    net.set_guard(treset, [ids](const petri::Marking& m) { return m[ids.os_patched] == 1; });
  }

  return s;
}

}  // namespace patchsec::avail
