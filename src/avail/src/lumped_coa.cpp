#include "patchsec/avail/lumped_coa.hpp"

#include <chrono>
#include <stdexcept>

namespace patchsec::avail {

LumpedNetworkModel build_lumped_network(
    const enterprise::RedundancyDesign& design,
    const std::map<enterprise::ServerRole, AggregatedRates>& rates) {
  LumpedNetworkModel lumped;
  lumped.net = build_network_srn(design, rates);

  unsigned total = 0;
  for (const auto& [role, up] : lumped.net.up_places) {
    lumped.split.components.push_back({up, lumped.net.down_places.at(role)});
    lumped.roles.push_back(role);
    total += design.count(role);
  }

  // COA = (1/N) sum_r #up_r * prod_{q != r} [#up_q > 0]: one term per tier,
  // the tier's own factor counts its running servers, every other tier
  // contributes its service-alive indicator.
  const std::size_t tiers = lumped.roles.size();
  for (std::size_t r = 0; r < tiers; ++r) {
    petri::SeparableReward::Term term;
    term.coefficient = 1.0 / static_cast<double>(total);
    term.factors.resize(tiers);
    for (std::size_t q = 0; q < tiers; ++q) {
      const petri::PlaceId up = lumped.net.up_places.at(lumped.roles[q]);
      if (q == r) {
        term.factors[q] = [up](const petri::Marking& m) {
          return static_cast<double>(m[up]);
        };
      } else {
        term.factors[q] = [up](const petri::Marking& m) {
          return m[up] > 0 ? 1.0 : 0.0;
        };
      }
    }
    lumped.coa.terms.push_back(std::move(term));
  }
  return lumped;
}

CoaEvaluation capacity_oriented_availability_lumped_detailed(
    const enterprise::RedundancyDesign& design,
    const std::map<enterprise::ServerRole, AggregatedRates>& rates,
    const petri::AnalyzerOptions& engine) {
  const LumpedNetworkModel lumped = build_lumped_network(design, rates);
  const petri::FactoredAnalyzer analyzer(lumped.net.model, lumped.split, engine);
  return CoaEvaluation{analyzer.expected_reward(lumped.coa), analyzer.diagnostics()};
}

CoaCurveEvaluation transient_coa_lumped_detailed(
    const enterprise::RedundancyDesign& design,
    const std::map<enterprise::ServerRole, AggregatedRates>& rates,
    const std::vector<double>& time_points_hours, const TransientCoaOptions& options) {
  if (time_points_hours.empty()) {
    throw std::invalid_argument("transient_coa_lumped: no time points");
  }
  const auto start_time = std::chrono::steady_clock::now();

  const LumpedNetworkModel lumped = build_lumped_network(design, rates);
  petri::AnalyzerOptions analyzer_options;
  analyzer_options.reachability = options.reachability;
  const petri::FactoredAnalyzer analyzer(
      lumped.net.model, lumped.split, analyzer_options,
      patch_window_marking(lumped.net, options.initial_down));

  CoaCurveEvaluation result;
  std::vector<double> values;
  result.accumulated_coa_hours = analyzer.reward_curve(
      lumped.coa, time_points_hours, values, options.uniformization, &result.transient);
  result.curve.reserve(values.size());
  for (std::size_t j = 0; j < values.size(); ++j) {
    result.curve.push_back({time_points_hours[j], values[j]});
  }
  result.diagnostics = analyzer.diagnostics();
  result.diagnostics.solver_iterations = result.transient.matvec_count;
  result.diagnostics.converged = true;  // a finite sum, not a fixpoint iteration
  result.diagnostics.wall_time_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_time).count();
  return result;
}

}  // namespace patchsec::avail
