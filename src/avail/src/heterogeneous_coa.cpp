#include "patchsec/avail/heterogeneous_coa.hpp"

#include <map>
#include <stdexcept>

#include "patchsec/petri/reachability.hpp"

namespace patchsec::avail {

petri::RewardFunction HeterogeneousNetworkSrn::coa_reward() const {
  const std::vector<petri::PlaceId> ups = up_places;  // value captures
  const std::vector<enterprise::ServerRole> rs = roles;
  const double total = static_cast<double>(ups.size());
  return [ups, rs, total](const petri::Marking& m) -> double {
    // A deployed tier with zero running instances means no service.
    std::map<enterprise::ServerRole, unsigned> role_up;
    unsigned running = 0;
    for (std::size_t i = 0; i < ups.size(); ++i) {
      role_up[rs[i]] += m[ups[i]];
      running += m[ups[i]];
    }
    for (const auto& [role, up] : role_up) {
      if (up == 0) return 0.0;
    }
    return static_cast<double>(running) / total;
  };
}

HeterogeneousNetworkSrn build_heterogeneous_srn(const std::vector<InstanceRates>& instances) {
  if (instances.empty()) throw std::invalid_argument("heterogeneous srn: no instances");
  HeterogeneousNetworkSrn net;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const double lambda = instances[i].rates.lambda_eq;
    const double mu = instances[i].rates.mu_eq;
    if (!(lambda > 0.0) || !(mu > 0.0)) {
      throw std::invalid_argument("heterogeneous srn: rates must be positive");
    }
    // Built via append (not operator+ on a temporary) to dodge a GCC 12
    // -Wrestrict false positive at -O3.
    std::string base = "s";
    base += std::to_string(i);
    const petri::PlaceId up = net.model.add_place("P" + base + "up", 1);
    const petri::PlaceId down = net.model.add_place("P" + base + "pd", 0);
    const petri::TransitionId td = net.model.add_timed_transition("T" + base + "d", lambda);
    net.model.add_input_arc(td, up);
    net.model.add_output_arc(td, down);
    const petri::TransitionId tu = net.model.add_timed_transition("T" + base + "up", mu);
    net.model.add_input_arc(tu, down);
    net.model.add_output_arc(tu, up);
    net.up_places.push_back(up);
    net.roles.push_back(instances[i].role);
  }
  return net;
}

double heterogeneous_coa(const std::vector<InstanceRates>& instances) {
  const HeterogeneousNetworkSrn net = build_heterogeneous_srn(instances);
  const petri::SrnAnalyzer analyzer(net.model);
  return analyzer.expected_reward(net.coa_reward());
}

double heterogeneous_coa_closed_form(const std::vector<InstanceRates>& instances) {
  if (instances.empty()) throw std::invalid_argument("heterogeneous coa: no instances");
  // Instances are independent.  Group by role; per role compute, via an
  // explicit subset convolution, E[#up * 1{tier alive}] and P(alive); then
  //   COA = (1/N) sum_r E[up_r * 1{alive_r}] * prod_{q != r} P(alive_q).
  struct Group {
    std::vector<double> availability;
    double p_alive = 0.0;
    double e_up_alive = 0.0;  // equals E[#up]: #up = 0 contributes nothing.
  };
  std::map<enterprise::ServerRole, Group> groups;
  for (const InstanceRates& inst : instances) {
    groups[inst.role].availability.push_back(inst.rates.mu_eq /
                                             (inst.rates.mu_eq + inst.rates.lambda_eq));
  }
  for (auto& [role, g] : groups) {
    double p_all_down = 1.0;
    double e_up = 0.0;
    for (double a : g.availability) {
      p_all_down *= (1.0 - a);
      e_up += a;
    }
    g.p_alive = 1.0 - p_all_down;
    g.e_up_alive = e_up;  // E[#up * 1{alive}] = E[#up] since 0 up => term 0
  }
  double coa = 0.0;
  for (const auto& [role, g] : groups) {
    double term = g.e_up_alive;
    for (const auto& [other_role, other] : groups) {
      if (other_role != role) term *= other.p_alive;
    }
    coa += term;
  }
  return coa / static_cast<double>(instances.size());
}

double heterogeneous_coa(const enterprise::HeterogeneousNetwork& network,
                         double patch_interval_hours) {
  std::vector<InstanceRates> rates;
  rates.reserve(network.instances().size());
  for (const enterprise::ServerInstance& inst : network.instances()) {
    rates.push_back({inst.role, aggregate_server(inst.spec, patch_interval_hours)});
  }
  return heterogeneous_coa(rates);
}

}  // namespace patchsec::avail
