#pragma once
/// \file path_classes.hpp
/// \brief Attack-path classes: instance paths grouped by a caller-supplied
/// node label (typically the server role), with aggregated per-class metrics
/// and effort-weighted exposure — the attacker's strategy space of the
/// patch-scheduling game (`patchsec::game`).
///
/// Under redundancy, instance paths multiply with the tier sizes (~k^4 for a
/// uniform k-per-tier 3-tier design — see PathEnumerationOptions), but the
/// paths through "dns3 -> web1 -> app2 -> db1" and "dns1 -> web2 -> app1 ->
/// db1" are the same *attack strategy* aimed at different replicas.  A
/// PathClass collapses every instance path with the same label sequence into
/// one strategy: the class success probability treats the instance paths as
/// independent alternatives (the attacker aims the strategy at whichever
/// replica succeeds), the class impact is the worst instance path, and the
/// class risk sums impact x probability over its members.  The class
/// universe is design-independent for any fixed policy (adding replicas adds
/// instance paths, not label sequences), which is what lets a game's
/// attacker allocate effort over classes while the defender moves through a
/// design grid.

#include <functional>
#include <string>
#include <vector>

#include "patchsec/harm/harm.hpp"

namespace patchsec::harm {

/// One attack-path class: every instance path whose node labels spell
/// `signature`, with aggregated metrics.
struct PathClass {
  std::vector<std::string> signature;  ///< node labels along the path, in order.
  std::size_t instance_paths = 0;      ///< member instance paths.
  double max_impact = 0.0;             ///< worst-case member impact (AIM of the class).
  /// P(at least one member path succeeds), members independent:
  /// 1 - prod_members (1 - p_member).
  double success_probability = 0.0;
  double total_risk = 0.0;  ///< sum over members of impact * probability.

  /// "dns-web-app-db" — the canonical display form of the signature.
  [[nodiscard]] std::string name() const;
};

/// Group the model's attack paths by the label sequence `label` assigns to
/// their nodes (e.g. the lower-cased role name for enterprise networks) and
/// aggregate per-class metrics.  Classes come back sorted by signature
/// (lexicographic) so the order is canonical across designs and runs.
/// `stats` (optional) reports the enumeration totals, including any paths
/// the cap truncated — truncated paths are missing from the classes exactly
/// as they are missing from SecurityMetrics.
[[nodiscard]] std::vector<PathClass> aggregate_path_classes(
    const Harm& model, const std::function<std::string(GraphNodeId)>& label,
    const PathEnumerationOptions& options = {}, PathEnumerationStats* stats = nullptr);

/// Effort-weighted exposure of a network under an attacker allocation:
/// sum_c weights[c] * classes[c].success_probability.  `weights` must have
/// one entry per class (throws std::invalid_argument otherwise).  This is
/// the coupling term of the game's defender constraint: the defender's
/// feasible cadences depend on where the attacker concentrates effort.
[[nodiscard]] double weighted_exposure(const std::vector<PathClass>& classes,
                                       const std::vector<double>& weights);

}  // namespace patchsec::harm
